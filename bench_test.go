// Package bench provides one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark runs the corresponding experiment at a
// reduced scale (a subset of workloads, shorter instruction windows) and
// reports the figure's headline numbers as custom benchmark metrics, so
// `go test -bench=.` regenerates the whole evaluation in miniature and the
// full CLI (`pexp -fig N`) regenerates any figure at paper scale.
package bench

import (
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchWorkloads is the reduced set used by the benchmarks: two 2MB-heavy
// streamers, a 4KB-heavy gather, a long-stride workload, a graph, a chaser,
// and two QMM kernels — one representative per behaviour class.
var benchWorkloads = []string{
	"libquantum", "bwaves", "soplex", "milc", "pr.road", "mcf", "qmm_fp_12", "qmm_fp_67",
}

func benchOptions(b *testing.B) experiments.Options {
	b.Helper()
	o := experiments.DefaultOptions()
	o.Warmup = 50_000
	o.Instructions = 200_000
	o.Parallelism = runtime.NumCPU()
	o.Mixes = 3
	ws, err := experiments.WorkloadsByName(benchWorkloads)
	if err != nil {
		b.Fatal(err)
	}
	o.Workloads = ws
	return o
}

// BenchmarkTableI exercises the baseline machine (no prefetching) across the
// bench workloads, the reference configuration of Table I.
func BenchmarkTableI(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		for _, w := range o.Workloads {
			res, err := sim.Run(o.Config, sim.PrefSpec{Base: "none"}, w, sim.RunOpt{
				Warmup: o.Warmup, Instructions: o.Instructions, Seed: o.Seed, Samples: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if w.Name == "libquantum" {
				b.ReportMetric(res.IPC, "libquantum-IPC")
			}
		}
	}
}

// BenchmarkFigure2 regenerates the missed-opportunity probability
// distribution.
func BenchmarkFigure2(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PerPrefetcher["spp"].Mean, "spp-mean-P")
		b.ReportMetric(r.PerPrefetcher["spp"].Max, "spp-max-P")
	}
}

// BenchmarkFigure3 regenerates the 2MB-page-usage profiles.
func BenchmarkFigure3(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3(o)
		if err != nil {
			b.Fatal(err)
		}
		lq := r.Series["libquantum"]
		b.ReportMetric(lq[len(lq)-1]*100, "libquantum-2MB-%")
	}
}

// BenchmarkFigure4 regenerates the SPP vs SPP-PSA-Magic study.
func BenchmarkFigure4(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomean["SPP"], "SPP-geomean-%")
		b.ReportMetric(r.Geomean["SPP-PSA-Magic"], "Magic-geomean-%")
	}
}

// BenchmarkFigure5 adds the 2MB-indexed Magic variant.
func BenchmarkFigure5(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomean["SPP-PSA-Magic-2MB"], "Magic2MB-geomean-%")
		b.ReportMetric(r.Speedup["SPP-PSA-Magic-2MB"]["milc"], "milc-Magic2MB-%")
	}
}

// BenchmarkFigure8 regenerates the SPP PSA-variant comparison.
func BenchmarkFigure8(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomean["PSA"], "PSA-%")
		b.ReportMetric(r.Geomean["PSA-2MB"], "PSA-2MB-%")
		b.ReportMetric(r.Geomean["PSA-SD"], "PSA-SD-%")
	}
}

// BenchmarkFigure9 regenerates the per-suite geomeans for all four
// prefetchers.
func BenchmarkFigure9(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomean["spp"]["PSA-SD"]["ALL"], "SPP-PSA-SD-%")
		b.ReportMetric(r.Geomean["vldp"]["PSA-SD"]["ALL"], "VLDP-PSA-SD-%")
		b.ReportMetric(r.Geomean["ppf"]["PSA-SD"]["ALL"], "PPF-PSA-SD-%")
		b.ReportMetric(r.Geomean["bop"]["PSA-SD"]["ALL"], "BOP-PSA-SD-%")
	}
}

// BenchmarkFigure10 regenerates the latency/coverage/accuracy breakdown.
func BenchmarkFigure10(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure10(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows["PSA-SD"]["milc"].SpeedupPct, "milc-PSA-SD-%")
		b.ReportMetric(r.Rows["PSA"]["bwaves"].L2LatReductionPct, "bwaves-L2latRed-%")
	}
}

// BenchmarkFigure11 regenerates the selection-logic comparison.
func BenchmarkFigure11(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomean["spp"]["SD-Proposed"], "SPP-SD-Proposed-%")
		b.ReportMetric(r.Geomean["spp"]["SD-Standard"], "SPP-SD-Standard-%")
		b.ReportMetric(r.Geomean["spp"]["ISO-Storage"], "SPP-ISO-%")
	}
}

// BenchmarkFigure12 regenerates the constrained sweeps at two points per axis
// (full sweeps via `pexp -fig 12`).
func BenchmarkFigure12(b *testing.B) {
	o := benchOptions(b)
	// The sweep multiplies runs by ~14 configurations; trim the workload set
	// further to keep the benchmark bounded.
	ws, err := experiments.WorkloadsByName([]string{"libquantum", "milc", "soplex", "pr.road"})
	if err != nil {
		b.Fatal(err)
	}
	o.Workloads = ws
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure12(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Sweeps["L2 MSHR"]["8-entry"]["spp"]["PSA-SD"], "MSHR8-SPP-SD-%")
		b.ReportMetric(r.Sweeps["DRAM rate"]["400MT/s"]["spp"]["PSA"], "400MTs-SPP-PSA-%")
	}
}

// BenchmarkFigure13 regenerates the L1D-prefetching comparison.
func BenchmarkFigure13(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure13(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup["IPCP"], "IPCP-x")
		b.ReportMetric(r.Speedup["IPCP++"], "IPCP++-x")
		b.ReportMetric(r.Speedup["SPP-PSA-SD"], "SPP-PSA-SD-x")
	}
}

// BenchmarkFigure14 regenerates the 4-core mixes.
func BenchmarkFigure14(b *testing.B) {
	o := benchOptions(b)
	o.Instructions = 100_000
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure14(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Summary["SPP-PSA-SD"].Mean, "SPP-PSA-SD-mean-%")
	}
}

// BenchmarkFigure15 regenerates the 8-core mixes.
func BenchmarkFigure15(b *testing.B) {
	o := benchOptions(b)
	o.Instructions = 100_000
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure15(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Summary["SPP-PSA-SD"].Mean, "SPP-PSA-SD-mean-%")
	}
}

// BenchmarkNonIntensive regenerates the Section VI-B1 extended-set numbers.
func BenchmarkNonIntensive(b *testing.B) {
	o := benchOptions(b)
	// Use the bench subset plus the non-intensive extras.
	var ws []trace.Workload
	ws = append(ws, o.Workloads...)
	for _, w := range trace.All() {
		if !w.Intensive {
			ws = append(ws, w)
		}
	}
	o.Workloads = ws
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomean["PSA-SD"], "extended-PSA-SD-%")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per second), the cost metric for everything above.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := trace.ByName("libquantum")
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	b.ResetTimer()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg, sim.PrefSpec{Base: "spp"}, w, sim.RunOpt{
			Warmup: 10_000, Instructions: 200_000, Seed: uint64(i + 1), Samples: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		total += res.Instructions
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim-instr/s")
}

// BenchmarkAblation regenerates the modelling-decision sensitivity study.
func BenchmarkAblation(b *testing.B) {
	o := benchOptions(b)
	ws, err := experiments.WorkloadsByName([]string{"libquantum", "milc", "pr.road"})
	if err != nil {
		b.Fatal(err)
	}
	o.Workloads = ws
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablation(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomean["default"], "default-%")
		b.ReportMetric(r.Geomean["serial-rows"], "serial-rows-%")
	}
}

// BenchmarkExtensions regenerates the beyond-the-paper study (SMS, AMPM,
// temporal, TLB prefetcher).
func BenchmarkExtensions(b *testing.B) {
	o := benchOptions(b)
	ws, err := experiments.WorkloadsByName([]string{"libquantum", "milc", "pr.road"})
	if err != nil {
		b.Fatal(err)
	}
	o.Workloads = ws
	for i := 0; i < b.N; i++ {
		r, err := experiments.Extensions(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PSAGeomean["ampm"], "AMPM-PSA2MB-%")
		b.ReportMetric(r.SpeedupOverNone["temporal"], "temporal-x")
	}
}
