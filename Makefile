GO ?= go

.PHONY: build test race vet fuzz-seeds golden-update staticcheck e2e e2e-cluster serve check bench bench-smoke bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race is the tier the determinism and cache-concurrency tests are written
# for: runBatch at Parallelism 8, single-flight cache fills, concurrent
# writers to one cache directory.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fuzz-seeds replays every checked-in fuzz seed corpus as plain tests (no
# fuzzing engine) under the race detector, catching trace-format,
# batch-decoder, submit-decoder, flat-page-table, traceparent-parser,
# pangloss-delta-cache and vamp-region-map regressions deterministically.
fuzz-seeds:
	$(GO) test -race -run=Fuzz ./internal/trace/ ./internal/service/ ./internal/vm/ ./internal/dtrace/ ./internal/prefetch/pangloss/ ./internal/prefetch/vamp/

# bench runs the pinned workload×prefetcher microbenchmark suite and writes
# BENCH_<date>.json (see cmd/pbench -h for comparing against a baseline).
bench:
	$(GO) run ./cmd/pbench

# bench-compare runs the full pinned suite against the most recent committed
# full-format BENCH_<date>.json and prints per-row and geomean deltas. It
# never gates: throughput on shared machines is informational. The result is
# written to BENCH_compare.json (untracked) so CI can archive it.
bench-compare:
	$(GO) run ./cmd/pbench -out BENCH_compare.json \
		-compare "$$(ls BENCH_2*-*.json 2>/dev/null | grep -v _smoke | sort | tail -1)"

# bench-smoke is the CI regression gate: a shortened run compared against the
# committed smoke-format reference, failing when allocations per access
# regress past 2x. Throughput is reported but not gated (CI machines vary too
# much); alloc counts are deterministic enough to gate.
bench-smoke:
	$(GO) run ./cmd/pbench -smoke -out BENCH_smoke.json \
		-compare BENCH_2026-08-07_smoke.json -max-allocs-ratio 2

# golden-update regenerates the checked-in figure snapshots after an
# intentional figure change. Inspect the diff before committing.
golden-update:
	$(GO) test ./internal/experiments -run TestGolden -update

# staticcheck runs when the binary is available (CI installs it; locally
# `go install honnef.co/go/tools/cmd/staticcheck@latest`) and is skipped
# otherwise so check works in hermetic environments.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# e2e drives the daemon end to end: an httptest psimd serving real
# simulations to concurrent experiment clients, with byte-parity and
# cross-client dedup assertions.
e2e:
	$(GO) test -race -run 'TestE2E' -v ./internal/service/

# e2e-cluster drives a 3-node in-process cluster: byte-identical figures vs
# a local run, zero duplicate simulations cluster-wide (cross-node cache
# fills), and survival of a node killed mid-batch.
e2e-cluster:
	$(GO) test -race -run 'TestE2ECluster' -v ./internal/service/

# serve runs the simulation daemon on localhost:8080.
serve:
	$(GO) run ./cmd/psimd

# check is the full CI gate.
check: vet staticcheck build test race fuzz-seeds
