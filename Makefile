GO ?= go

.PHONY: build test race vet fuzz-seeds golden-update check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race is the tier the determinism and cache-concurrency tests are written
# for: runBatch at Parallelism 8, single-flight cache fills, concurrent
# writers to one cache directory.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fuzz-seeds replays every checked-in fuzz seed corpus as plain tests (no
# fuzzing engine), catching trace-format regressions deterministically.
fuzz-seeds:
	$(GO) test -run=Fuzz ./internal/trace/

# golden-update regenerates the checked-in figure snapshots after an
# intentional figure change. Inspect the diff before committing.
golden-update:
	$(GO) test ./internal/experiments -run TestGolden -update

# check is the full CI gate.
check: vet build test race fuzz-seeds
