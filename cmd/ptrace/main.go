// Command ptrace records workload generators into compact binary traces
// (PSAT format) and inspects existing trace files. Recorded traces replay in
// psim via its -trace flag, making the simulator fully trace-driven.
//
// Usage:
//
//	ptrace -record milc.psat -workload milc -n 1000000
//	ptrace -info milc.psat
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// footprint tallies how many times each page (at one page-size granularity)
// is touched, then folds the per-page counts into a telemetry.Histogram so
// -info can print the reuse distribution.
type footprint struct {
	shift uint
	pages map[uint64]uint64
}

func newFootprint(pageBits uint) *footprint {
	return &footprint{shift: pageBits, pages: map[uint64]uint64{}}
}

func (f *footprint) touch(vaddr uint64) { f.pages[vaddr>>f.shift]++ }

// histogram buckets pages by accesses-per-page (powers of four).
func (f *footprint) histogram() *telemetry.Histogram {
	h := telemetry.NewHistogram(1, 4, 16, 64, 256, 1024, 4096, 16384)
	for _, n := range f.pages {
		h.Observe(n)
	}
	return h
}

// printFootprint renders one page-size row plus its reuse histogram.
func printFootprint(label string, pageBytes uint64, f *footprint) {
	h := f.histogram()
	touched := uint64(len(f.pages))
	fmt.Printf("%s pages:     %d touched (%.1f MiB footprint, %.1f accesses/page)\n",
		label, touched, float64(touched*pageBytes)/(1<<20), h.Mean())
	var rows []string
	lo := uint64(1)
	for _, b := range h.Buckets() {
		if b.Count == 0 {
			if !b.Overflow {
				lo = b.UpperBound + 1
			}
			continue
		}
		switch {
		case b.Overflow:
			rows = append(rows, fmt.Sprintf(">%d:%d", lo-1, b.Count))
		case b.UpperBound == lo:
			rows = append(rows, fmt.Sprintf("%d:%d", lo, b.Count))
			lo = b.UpperBound + 1
		default:
			rows = append(rows, fmt.Sprintf("%d-%d:%d", lo, b.UpperBound, b.Count))
			lo = b.UpperBound + 1
		}
	}
	fmt.Printf("  accesses/page: %s\n", strings.Join(rows, " "))
}

func main() {
	var (
		record   = flag.String("record", "", "output trace file to record into")
		workload = flag.String("workload", "", "workload to record (see psim -workloads)")
		n        = flag.Uint64("n", 1_000_000, "accesses to record")
		seed     = flag.Uint64("seed", 1, "generator seed")
		info     = flag.String("info", "", "trace file to summarise")
	)
	flag.Parse()

	switch {
	case *record != "":
		if *workload == "" {
			fmt.Fprintln(os.Stderr, "ptrace: -record requires -workload")
			os.Exit(2)
		}
		w, err := trace.ByName(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tw := trace.NewWriter(f)
		got, err := trace.Record(tw, w.New(*seed), *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st, _ := f.Stat()
		fmt.Printf("recorded %d accesses of %s into %s (%d bytes, %.2f B/access)\n",
			got, w.Name, *record, st.Size(), float64(st.Size())/float64(got))

	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r := trace.NewFileReader(f)
		var a trace.Access
		var count, writes, instrs uint64
		minV, maxV := ^uint64(0), uint64(0)
		fp4k, fp2m := newFootprint(12), newFootprint(21)
		for r.Next(&a) {
			count++
			instrs += uint64(a.Gap) + 1
			if a.Write {
				writes++
			}
			if uint64(a.VAddr) < minV {
				minV = uint64(a.VAddr)
			}
			if uint64(a.VAddr) > maxV {
				maxV = uint64(a.VAddr)
			}
			fp4k.touch(uint64(a.VAddr))
			fp2m.touch(uint64(a.VAddr))
		}
		if err := r.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("accesses:      %d (%d writes, %.1f%%)\n", count, writes,
			float64(writes)/float64(count)*100)
		fmt.Printf("instructions:  %d\n", instrs)
		fmt.Printf("vaddr range:   %#x .. %#x\n", minV, maxV)
		// The same footprint at both granularities shows how much a 2MB
		// mapping would cover: many 4KB pages folding into few 2MB pages is
		// exactly the locality page-size-aware prefetching exploits.
		printFootprint("4KB", 4<<10, fp4k)
		printFootprint("2MB", 2<<20, fp2m)
		// The digest is the replay's cache identity: psim -trace folds it
		// into simulation result-cache keys as the workload's ContentID.
		digest, err := trace.FileDigest(*info)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("digest:        %s\n", digest)

	default:
		flag.Usage()
		os.Exit(2)
	}
}
