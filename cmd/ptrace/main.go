// Command ptrace records workload generators into compact binary traces
// (PSAT format) and inspects existing trace files. Recorded traces replay in
// psim via its -trace flag, making the simulator fully trace-driven.
//
// Usage:
//
//	ptrace -record milc.psat -workload milc -n 1000000
//	ptrace -info milc.psat
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		record   = flag.String("record", "", "output trace file to record into")
		workload = flag.String("workload", "", "workload to record (see psim -workloads)")
		n        = flag.Uint64("n", 1_000_000, "accesses to record")
		seed     = flag.Uint64("seed", 1, "generator seed")
		info     = flag.String("info", "", "trace file to summarise")
	)
	flag.Parse()

	switch {
	case *record != "":
		if *workload == "" {
			fmt.Fprintln(os.Stderr, "ptrace: -record requires -workload")
			os.Exit(2)
		}
		w, err := trace.ByName(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tw := trace.NewWriter(f)
		got, err := trace.Record(tw, w.New(*seed), *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st, _ := f.Stat()
		fmt.Printf("recorded %d accesses of %s into %s (%d bytes, %.2f B/access)\n",
			got, w.Name, *record, st.Size(), float64(st.Size())/float64(got))

	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r := trace.NewFileReader(f)
		var a trace.Access
		var count, writes, instrs uint64
		minV, maxV := ^uint64(0), uint64(0)
		for r.Next(&a) {
			count++
			instrs += uint64(a.Gap) + 1
			if a.Write {
				writes++
			}
			if uint64(a.VAddr) < minV {
				minV = uint64(a.VAddr)
			}
			if uint64(a.VAddr) > maxV {
				maxV = uint64(a.VAddr)
			}
		}
		if err := r.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("accesses:      %d (%d writes, %.1f%%)\n", count, writes,
			float64(writes)/float64(count)*100)
		fmt.Printf("instructions:  %d\n", instrs)
		fmt.Printf("vaddr range:   %#x .. %#x\n", minV, maxV)
		// The digest is the replay's cache identity: psim -trace folds it
		// into simulation result-cache keys as the workload's ContentID.
		digest, err := trace.FileDigest(*info)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("digest:        %s\n", digest)

	default:
		flag.Usage()
		os.Exit(2)
	}
}
