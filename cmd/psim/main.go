// Command psim runs a single simulation: one workload, one prefetching
// configuration, and prints the full metric set.
//
// Usage:
//
//	psim -workload milc -pref spp -variant psa-sd
//	psim -workload libquantum -pref none -l1 ipcp++
//	psim -workloads                      # list the catalogue
//	psim -print-config                   # show Table I
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vm"
)

// writeArtifact writes one telemetry export to path, reporting failures
// without aborting the (already printed) result.
func writeArtifact(path, what string, write func(io.Writer) error) bool {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, what+":", err)
		return false
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, what+":", err)
		return false
	}
	return true
}

// replayWorkload wraps a recorded PSAT trace file as a workload. The OS-side
// page-size policy is applied at simulation time, so the same trace can be
// replayed under any THP fraction. The workload's ContentID is a digest of
// the file's bytes, so result-cache entries follow the trace's contents —
// re-recording a file under the same path is a different workload, never a
// stale hit.
func replayWorkload(path string, thpFrac float64) (trace.Workload, error) {
	digest, err := trace.FileDigest(path)
	if err != nil {
		return trace.Workload{}, err
	}
	return trace.Workload{
		Name:      path,
		Suite:     "TRACE",
		Intensive: true,
		THP:       vm.FractionTHP{Frac: thpFrac, Seed: 1},
		ContentID: digest,
		New: func(uint64) trace.Reader {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return trace.NewFileReader(f)
		},
	}, nil
}

// defaultCacheDir matches pexp's default, so the two commands share entries.
func defaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "psat-repro", "simcache")
	}
	return ".simcache"
}

// writeHeapProfile snapshots live-heap allocations into path (-memprofile).
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize the final live set
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
	}
}

func main() { os.Exit(run()) }

func run() int {
	var (
		workload    = flag.String("workload", "", "workload name (see -workloads)")
		traceFile   = flag.String("trace", "", "replay a recorded PSAT trace instead of a generator")
		thpFrac     = flag.Float64("thp", 0.85, "THP 2MB fraction when replaying a trace")
		pref        = flag.String("pref", "spp", "L2 prefetcher: none, spp, vldp, ppf, bop, sms, ampm, temporal, pangloss, vamp")
		variant     = flag.String("variant", "psa-sd", "variant: original, psa, psa-2mb, psa-sd, psa-magic, psa-magic-2mb, sd-standard, sd-page-size, iso")
		l1          = flag.String("l1", "", "L1D prefetcher: nextline, ipcp, ipcp++ (empty: none)")
		warmup      = flag.Uint64("warmup", 250_000, "warm-up instructions")
		instr       = flag.Uint64("instr", 1_000_000, "measured instructions")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		listWs      = flag.Bool("workloads", false, "list workloads and exit")
		printConfig = flag.Bool("print-config", false, "print the Table I configuration and exit")
		noCache     = flag.Bool("no-cache", false, "disable the simulation result cache")
		cacheDir    = flag.String("cache-dir", defaultCacheDir(), "simulation result cache directory")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")

		telemetryOut = flag.String("telemetry-out", "", "write the per-epoch telemetry series as JSONL to this file")
		telemetryCSV = flag.String("telemetry-csv", "", "write the per-epoch telemetry series as CSV to this file")
		eventsOut    = flag.String("events-out", "", "write prefetch lifecycle events as JSONL to this file")
		eventsChrome = flag.String("events-chrome", "", "write prefetch lifecycle events as a Chrome trace_event JSON file")
		epochLen     = flag.Uint64("epoch", sim.DefaultEpochInstructions, "telemetry epoch length in retired instructions")
		traceCap     = flag.Int("events-cap", telemetry.DefaultTraceCap, "lifecycle event ring capacity (newest events win)")
	)
	flag.Parse()

	cfg := sim.DefaultConfig()
	if *printConfig {
		fmt.Println(cfg.String())
		return 0
	}
	if *listWs {
		for _, w := range trace.All() {
			tag := ""
			if !w.Intensive {
				tag = " (non-intensive)"
			}
			fmt.Printf("%-18s %-7s %s%s\n", w.Name, w.Suite, w.Description, tag)
		}
		return 0
	}
	if *workload == "" && *traceFile == "" {
		flag.Usage()
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeHeapProfile(*memProfile)
	}

	// Ctrl-C cancels at the next simulation-chunk boundary; an interrupted
	// run writes nothing to the cache.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var w trace.Workload
	var err error
	if *traceFile != "" {
		w, err = replayWorkload(*traceFile, *thpFrac)
	} else {
		w, err = trace.ByName(*workload)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	v, err := core.ParseVariant(*variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	spec := sim.PrefSpec{Base: *pref, Variant: v, L1: sim.L1Pref(*l1)}
	opt := sim.RunOpt{Warmup: *warmup, Instructions: *instr, Seed: *seed, Samples: 8}

	// Telemetry needs a live simulation: a cache-hit replay has no epochs or
	// lifecycle events to report, so any telemetry flag bypasses the result
	// cache. Instrumentation is observational — the computed Result (and
	// anything already cached for this key) is unaffected.
	var ins *sim.Instrumentation
	if *telemetryOut != "" || *telemetryCSV != "" || *eventsOut != "" || *eventsChrome != "" {
		ins = &sim.Instrumentation{EpochInstructions: *epochLen}
		if *telemetryOut != "" || *telemetryCSV != "" {
			ins.Collector = telemetry.NewCollector()
		}
		if *eventsOut != "" || *eventsChrome != "" {
			ins.Tracer = telemetry.NewTracer(*traceCap)
		}
		ctx = sim.WithInstrumentation(ctx, ins)
		if !*noCache {
			*noCache = true
			fmt.Fprintln(os.Stderr, "(telemetry requested: result cache bypassed for this run)")
		}
	}

	runSim := func(ctx context.Context) (sim.Result, error) { return sim.RunContext(ctx, cfg, spec, w, opt) }
	var res sim.Result
	// Trace replays cache like any workload: their key carries a digest of
	// the file's contents (Workload.ContentID), so edits or re-recordings
	// under the same path can never return a stale entry.
	if !*noCache {
		store, serr := simcache.New(*cacheDir)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "warning: result cache disabled:", serr)
			res, err = runSim(ctx)
		} else {
			var hit bool
			res, hit, err = store.DoContext(ctx, simcache.Key(cfg, spec, w, opt), runSim)
			if hit {
				fmt.Fprintln(os.Stderr, "(result served from cache; -no-cache to re-simulate)")
			}
		}
	} else {
		res, err = runSim(ctx)
	}
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted")
			return 130
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	fmt.Printf("workload:      %s (%s)\n", res.Workload, w.Suite)
	fmt.Printf("prefetcher:    %s\n", res.Spec)
	fmt.Printf("instructions:  %d over %d cycles\n", res.Instructions, res.Cycles)
	fmt.Printf("IPC:           %.4f\n", res.IPC)
	fmt.Printf("2MB fraction:  %.1f%%\n", res.Frac2MFinal*100)
	fmt.Printf("L1D: hits %d misses %d mpki %.1f avg-lat %.1f\n",
		res.L1D.DemandHits, res.L1D.DemandMisses, res.L1D.MPKI(res.Instructions), res.L1D.AvgDemandLatency())
	fmt.Printf("L2C: hits %d misses %d mpki %.1f avg-lat %.1f pf-issued %d useful %d late %d acc %.2f cov %.2f\n",
		res.L2.DemandHits, res.L2.DemandMisses, res.L2.MPKI(res.Instructions), res.L2.AvgDemandLatency(),
		res.L2.PrefetchIssued, res.L2.PrefetchUseful, res.L2.PrefetchLate, res.L2.Accuracy(), res.L2.Coverage())
	fmt.Printf("LLC: hits %d misses %d mpki %.1f avg-lat %.1f pf-issued %d useful %d acc %.2f cov %.2f\n",
		res.LLC.DemandHits, res.LLC.DemandMisses, res.LLC.MPKI(res.Instructions), res.LLC.AvgDemandLatency(),
		res.LLC.PrefetchIssued, res.LLC.PrefetchUseful, res.LLC.Accuracy(), res.LLC.Coverage())
	fmt.Printf("engine: proposed %d issued %d discarded %d (safe-crossing %d, P=%.3f)\n",
		res.Engine.Proposed, res.Engine.Issued, res.Engine.DiscardedBoundary,
		res.Engine.DiscardedSafe, res.Engine.DiscardProbability())
	fmt.Printf("TLB: L1 %d/%d L2 %d/%d walks %d\n",
		res.TLBL1Hits, res.TLBL1Misses, res.TLBL2Hits, res.TLBL2Misses, res.Walks)
	fmt.Printf("DRAM: reads %d writes %d row-hit %.2f\n",
		res.DRAM.Reads, res.DRAM.Writes, res.DRAM.RowHitRate())

	if ins != nil {
		ok := true
		if *telemetryOut != "" {
			ok = writeArtifact(*telemetryOut, "telemetry-out", ins.Collector.WriteJSONL) && ok
		}
		if *telemetryCSV != "" {
			ok = writeArtifact(*telemetryCSV, "telemetry-csv", ins.Collector.WriteCSV) && ok
		}
		if *eventsOut != "" {
			ok = writeArtifact(*eventsOut, "events-out", ins.Tracer.WriteJSONL) && ok
		}
		if *eventsChrome != "" {
			ok = writeArtifact(*eventsChrome, "events-chrome", ins.Tracer.WriteChromeTrace) && ok
		}
		if ins.Collector != nil {
			fmt.Printf("telemetry: %d epochs of %d instructions\n", len(ins.Collector.Epochs()), *epochLen)
		}
		if ins.Tracer != nil {
			fmt.Printf("telemetry: %d lifecycle events recorded (%d retained, %d overwritten)\n",
				ins.Tracer.Total(), len(ins.Tracer.Events()), ins.Tracer.Dropped())
		}
		if !ok {
			return 1
		}
	}
	return 0
}
