// Command pexp regenerates the paper's tables and figures.
//
// Usage:
//
//	pexp -fig 8                      # regenerate Figure 8 at default scale
//	pexp -fig 9 -instr 2000000       # longer measured window
//	pexp -fig 14 -mixes 100          # the paper's full 100 mixes
//	pexp -fig all                    # everything (slow)
//	pexp -list                       # show available experiments
//
// Simulation results are memoized in a content-addressed disk cache (keyed
// by machine config, prefetcher spec, workload, and run options), so
// re-running a figure — or resuming an interrupted `-fig all` — only
// simulates what is missing. Disable with -no-cache, relocate with
// -cache-dir, invalidate by deleting the directory.
//
// With -server URL the batches are dispatched to a psimd daemon instead of
// simulating locally: the daemon owns the cache and de-duplicates identical
// requests across all its clients, so concurrent pexp runs of the same
// figure cost one set of simulations.
//
// Ctrl-C (or SIGTERM) cancels cleanly: workers stop at the next simulation
// boundary and no partial cache entries are left behind.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/dtrace"
	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/simcache"
)

// defaultCacheDir places the result cache under the OS user cache directory,
// falling back to a dot directory in the working tree.
func defaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "psat-repro", "simcache")
	}
	return ".simcache"
}

// writeHeapProfile snapshots live-heap allocations into path (-memprofile).
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize the final live set
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
	}
}

// writeStitchedTrace merges the client's own spans with every endpoint's
// flight-recorder dump, keeps the traces this run started, and writes the
// result as Chrome trace_event JSON (load it in Perfetto or chrome://tracing:
// one process track per node, one thread lane per trace).
func writeStitchedTrace(mc *service.MultiClient, flight *dtrace.Recorder, path string) error {
	local := flight.Snapshot(dtrace.Filter{})
	sets := [][]dtrace.SpanData{local}
	// A fresh context: the run's context is typically done (or canceled) by
	// the time the trace is collected.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, ep := range mc.Endpoints() {
		spans, err := service.NewClient(ep).Flight(ctx, "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %s: %v (skipping)\n", ep, err)
			continue
		}
		sets = append(sets, spans)
	}
	// The daemons' rings also hold other clients' spans; keep the traces the
	// local recorder knows about.
	ours := map[string]bool{}
	for _, d := range local {
		ours[d.TraceID] = true
	}
	var spans []dtrace.SpanData
	for _, d := range dtrace.Stitch(sets...) {
		if ours[d.TraceID] {
			spans = append(spans, d)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dtrace.WriteChromeTrace(f, spans); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace: %d spans, %d trace(s), %d endpoint(s) -> %s\n",
		len(spans), len(dtrace.TraceIDs(spans)), len(mc.Endpoints()), path)
	return nil
}

func main() { os.Exit(run()) }

func run() int {
	var (
		fig        = flag.String("fig", "", "experiment to run (fig2..fig15, nonintensive, table1, all)")
		list       = flag.Bool("list", false, "list available experiments")
		warmup     = flag.Uint64("warmup", 200_000, "warm-up instructions per run")
		instr      = flag.Uint64("instr", 1_000_000, "measured instructions per run")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		par        = flag.Int("par", runtime.NumCPU(), "parallel simulations")
		mixes      = flag.Int("mixes", 20, "multi-core mixes for fig14/fig15")
		wl         = flag.String("workloads", "", "comma-separated workload subset (default: all intensive)")
		check      = flag.Bool("check", false, "verify the paper-shape invariants and exit nonzero on violation")
		base       = flag.String("base", "", "prefetcher for per-prefetcher studies (fig8): spp, vldp, ppf, bop, sms, ampm, temporal, pangloss, vamp")
		htmlOut    = flag.String("html", "", "also write an HTML report (with SVG charts) to this file")
		noCache    = flag.Bool("no-cache", false, "disable the simulation result cache")
		cacheDir   = flag.String("cache-dir", defaultCacheDir(), "simulation result cache directory")
		quiet      = flag.Bool("quiet", false, "suppress live progress reporting")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		server     = flag.String("server", "", "dispatch simulations to psimd daemon(s): one base URL or a comma-separated cluster list (e.g. http://a:8080,http://b:8080)")

		telemetryDir = flag.String("telemetry-dir", "", "write per-job telemetry series under this directory (e.g. results/telemetry); cache-hit and remote jobs emit none")
		epochLen     = flag.Uint64("epoch", 0, "telemetry epoch length in instructions (default: the simulator's standard epoch)")
		traceOut     = flag.String("trace-out", "", "write a stitched distributed trace (Chrome trace_event JSON, Perfetto-loadable) of every batch to this file; requires -server")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:", strings.Join(experiments.Names, ", "))
		return 0
	}
	if *fig == "" {
		flag.Usage()
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeHeapProfile(*memProfile)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}

	// Ctrl-C propagates as a context: workers stop at the next simulation
	// boundary, and errored runs are never written to the cache.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	o := experiments.DefaultOptions()
	o.Warmup = *warmup
	o.Instructions = *instr
	o.Seed = *seed
	o.Parallelism = *par
	o.Mixes = *mixes
	o.Base = *base
	o.Context = ctx
	o.TelemetryDir = *telemetryDir
	o.EpochInstructions = *epochLen
	if !*quiet {
		o.Progress = os.Stderr
	}
	if *traceOut != "" && *server == "" {
		fmt.Fprintln(os.Stderr, "pexp: -trace-out requires -server (the trace follows batches across daemons)")
		return 2
	}
	var flight *dtrace.Recorder
	var mc *service.MultiClient
	switch {
	case *server != "":
		// The daemon owns caching and cross-client dedup; no local store.
		// Several endpoints form a failover rotation over one cluster.
		var err error
		mc, err = service.NewMultiClient(service.ParseEndpoints(*server))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pexp:", err)
			return 2
		}
		o.Remote = mc
		if *traceOut != "" {
			// The client records its own batch/submit spans; every server
			// span of the same traces is fetched and stitched in afterwards.
			flight = dtrace.NewRecorder("pexp", 0)
			o.Context = dtrace.NewContext(o.Context, flight, dtrace.SpanContext{})
		}
	case !*noCache:
		store, err := simcache.New(*cacheDir)
		if err != nil {
			// A cache that cannot be opened degrades to uncached runs.
			fmt.Fprintln(os.Stderr, "warning: result cache disabled:", err)
		} else {
			o.Cache = store
		}
	}
	if *wl != "" {
		ws, err := experiments.WorkloadsByName(strings.Split(*wl, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		o.Workloads = ws
	}

	names := []string{*fig}
	if *fig == "all" {
		names = experiments.Names
	}
	var collected []struct {
		Name   string
		Result experiments.Renderer
	}
	for _, name := range names {
		start := time.Now()
		r, err := experiments.Run(name, o)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "\ninterrupted; partial results are cached and a rerun resumes from them")
				return 130
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Print(r.Render())
		if *check {
			if errs := experiments.CheckAll(r); len(errs) > 0 {
				for _, e := range errs {
					fmt.Fprintln(os.Stderr, "SHAPE VIOLATION:", e)
				}
				return 1
			}
			fmt.Println("shape checks: PASS")
		}
		fmt.Printf("[%s took %.1fs]\n\n", name, time.Since(start).Seconds())
		collected = append(collected, struct {
			Name   string
			Result experiments.Renderer
		}{name, r})
	}
	if o.Cache != nil {
		s := o.Cache.Stats()
		fmt.Fprintf(os.Stderr, "cache %s: %d hits, %d shared, %d simulated (%.0f%% hit rate)\n",
			o.Cache.Dir(), s.Hits, s.Shared, s.Misses, s.HitRate()*100)
	}
	if flight != nil {
		if err := writeStitchedTrace(mc, flight, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "trace-out:", err)
			return 1
		}
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := experiments.WriteHTMLReport(f, "Page Size Aware Cache Prefetching — reproduction report", collected); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println("HTML report written to", *htmlOut)
	}
	return 0
}
