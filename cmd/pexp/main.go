// Command pexp regenerates the paper's tables and figures.
//
// Usage:
//
//	pexp -fig 8                      # regenerate Figure 8 at default scale
//	pexp -fig 9 -instr 2000000       # longer measured window
//	pexp -fig 14 -mixes 100          # the paper's full 100 mixes
//	pexp -fig all                    # everything (slow)
//	pexp -list                       # show available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "", "experiment to run (fig2..fig15, nonintensive, table1, all)")
		list    = flag.Bool("list", false, "list available experiments")
		warmup  = flag.Uint64("warmup", 200_000, "warm-up instructions per run")
		instr   = flag.Uint64("instr", 1_000_000, "measured instructions per run")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		par     = flag.Int("par", runtime.NumCPU(), "parallel simulations")
		mixes   = flag.Int("mixes", 20, "multi-core mixes for fig14/fig15")
		wl      = flag.String("workloads", "", "comma-separated workload subset (default: all intensive)")
		check   = flag.Bool("check", false, "verify the paper-shape invariants and exit nonzero on violation")
		base    = flag.String("base", "", "prefetcher for per-prefetcher studies (fig8): spp, vldp, ppf, bop, sms, ampm, temporal")
		htmlOut = flag.String("html", "", "also write an HTML report (with SVG charts) to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:", strings.Join(experiments.Names, ", "))
		return
	}
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}

	o := experiments.DefaultOptions()
	o.Warmup = *warmup
	o.Instructions = *instr
	o.Seed = *seed
	o.Parallelism = *par
	o.Mixes = *mixes
	o.Base = *base
	if *wl != "" {
		ws, err := experiments.WorkloadsByName(strings.Split(*wl, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		o.Workloads = ws
	}

	names := []string{*fig}
	if *fig == "all" {
		names = experiments.Names
	}
	var collected []struct {
		Name   string
		Result experiments.Renderer
	}
	for _, name := range names {
		start := time.Now()
		r, err := experiments.Run(name, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(r.Render())
		if *check {
			if errs := experiments.CheckAll(r); len(errs) > 0 {
				for _, e := range errs {
					fmt.Fprintln(os.Stderr, "SHAPE VIOLATION:", e)
				}
				os.Exit(1)
			}
			fmt.Println("shape checks: PASS")
		}
		fmt.Printf("[%s took %.1fs]\n\n", name, time.Since(start).Seconds())
		collected = append(collected, struct {
			Name   string
			Result experiments.Renderer
		}{name, r})
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := experiments.WriteHTMLReport(f, "Page Size Aware Cache Prefetching — reproduction report", collected); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("HTML report written to", *htmlOut)
	}
}
