// Command pbench is the simulator's performance-regression harness: it runs a
// pinned set of workload×prefetcher microbenchmarks through testing.Benchmark
// and reports, per benchmark and as geomeans, the three numbers that define
// the hot path's health:
//
//	accesses/s   — simulated L1D accesses per wall-clock second (throughput)
//	ns/access    — wall-clock nanoseconds per simulated access (latency)
//	allocs/access — heap allocations per simulated access (steady-state GC load)
//
// Results are written as BENCH_<date>.json so every PR leaves a comparable
// trajectory point. With -compare the run is diffed against a previous file
// and -max-allocs-ratio turns the diff into a CI gate: an allocs/access
// geomean regression beyond the ratio exits non-zero.
//
// Usage:
//
//	pbench                          # full pinned set, writes BENCH_<date>.json
//	pbench -smoke                   # reduced set + short windows (CI)
//	pbench -compare BENCH_old.json -max-allocs-ratio 2
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// pin is one pinned microbenchmark: a workload and a prefetching spec.
type pin struct {
	Workload string
	Spec     sim.PrefSpec
	// Smoke marks the subset that runs under -smoke (CI's quick gate).
	Smoke bool
}

// pins is the pinned microbenchmark set: one representative per behaviour
// class (sequential streamer, page-crossing strides, pointer chase, 4KB-heavy
// gather, graph) crossed with the four paper prefetchers and the baseline
// machine, so a regression in any hot subsystem (cache, TLB/walks, engine,
// each prefetcher's tables) moves at least one row.
var pins = []pin{
	{Workload: "libquantum", Spec: sim.PrefSpec{Base: "none"}, Smoke: true},
	{Workload: "libquantum", Spec: sim.PrefSpec{Base: "spp", Variant: core.PSASD}, Smoke: true},
	// milc and mcf are the walk-bound rows (TLB-miss and page-walk heavy):
	// both run under -smoke so the CI gate watches the translation path, not
	// just the streaming one.
	{Workload: "milc", Spec: sim.PrefSpec{Base: "spp", Variant: core.PSA2MB}, Smoke: true},
	{Workload: "mcf", Spec: sim.PrefSpec{Base: "ppf", Variant: core.PSA}, Smoke: true},
	{Workload: "soplex", Spec: sim.PrefSpec{Base: "vldp", Variant: core.Original}},
	{Workload: "pr.road", Spec: sim.PrefSpec{Base: "bop", Variant: core.PSA}},
	{Workload: "bwaves", Spec: sim.PrefSpec{Base: "spp", Variant: core.PSA, L1: sim.L1IPCPPP}},
	// The crossing families: pangloss under dueling exercises both delta-cache
	// geometries plus the sampling-duel machinery on an irregular workload;
	// vamp exercises the virtual-candidate issue path (TLB probe + translation
	// per crossing candidate). Both run under -smoke so the CI gate watches the
	// new paths.
	{Workload: "pr.road", Spec: sim.PrefSpec{Base: "pangloss", Variant: core.PSASD}, Smoke: true},
	{Workload: "milc", Spec: sim.PrefSpec{Base: "vamp", Variant: core.PSA}, Smoke: true},
}

// Bench is one benchmark's measurements.
type Bench struct {
	Name     string `json:"name"`
	Workload string `json:"workload"`
	Spec     string `json:"spec"`

	Iters        int    `json:"iters"`
	Instructions uint64 `json:"instructions"` // retired per iteration
	Accesses     uint64 `json:"accesses"`     // L1D accesses per iteration

	NsPerAccess     float64 `json:"ns_per_access"`
	AccessesPerSec  float64 `json:"accesses_per_sec"`
	AllocsPerAccess float64 `json:"allocs_per_access"`
	BytesPerAccess  float64 `json:"bytes_per_access"`
}

// Report is the BENCH_<date>.json schema.
type Report struct {
	Schema int    `json:"schema"`
	Date   string `json:"date"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	// NumCPU is the machine's logical CPU count; GoMaxProcs is the
	// scheduler's parallelism at measurement time. Schema 1 published a
	// single "cpus" field that conflated the two, which made reports from
	// GOMAXPROCS-limited CI runners look like single-core machines.
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Commit     string `json:"commit,omitempty"`
	Smoke      bool   `json:"smoke,omitempty"`

	Warmup       uint64 `json:"warmup"`
	Instructions uint64 `json:"instructions"`

	Benchmarks []Bench `json:"benchmarks"`

	// Geomeans across the set: the headline trajectory numbers.
	GeomeanAccessesPerSec  float64 `json:"geomean_accesses_per_sec"`
	GeomeanNsPerAccess     float64 `json:"geomean_ns_per_access"`
	GeomeanAllocsPerAccess float64 `json:"geomean_allocs_per_access"`

	// Baseline holds the comparison against a previous report (-compare).
	Baseline *BaselineDiff `json:"baseline,omitempty"`
}

// BaselineDiff summarises this run against a previous report.
type BaselineDiff struct {
	File string `json:"file"`
	Date string `json:"date"`
	// SpeedupAccessesPerSec is new/old geomean accesses/s over the
	// benchmarks present in both reports (>1 is faster).
	SpeedupAccessesPerSec float64 `json:"speedup_accesses_per_sec"`
	// AllocsRatio is new/old geomean allocs/access (<1 is fewer).
	AllocsRatio float64 `json:"allocs_ratio"`
	Compared    int     `json:"compared"`
	// Rows holds the per-benchmark deltas over the shared set, in the
	// current report's order.
	Rows []RowDiff `json:"rows,omitempty"`
}

// RowDiff is one shared benchmark's old-vs-new delta.
type RowDiff struct {
	Name string `json:"name"`
	// SpeedupAccessesPerSec is new/old accesses/s for this row.
	SpeedupAccessesPerSec float64 `json:"speedup_accesses_per_sec"`
	OldAccessesPerSec     float64 `json:"old_accesses_per_sec"`
	NewAccessesPerSec     float64 `json:"new_accesses_per_sec"`
	AllocsRatio           float64 `json:"allocs_ratio"`
}

func main() {
	var (
		out        = flag.String("out", "", "output JSON path (default BENCH_<date>.json)")
		smoke      = flag.Bool("smoke", false, "reduced set and short windows (CI gate)")
		compare    = flag.String("compare", "", "previous BENCH_*.json to diff against")
		maxAllocs  = flag.Float64("max-allocs-ratio", 0, "fail when allocs/access geomean exceeds this ratio of -compare (0 disables)")
		benchtime  = flag.Duration("benchtime", time.Second, "minimum measurement time per benchmark")
		only       = flag.String("only", "", "run only benchmarks whose name contains this substring")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the measurement runs to this file")
	)
	flag.Parse()

	rep := Report{
		Schema:     2,
		Date:       time.Now().Format("2006-01-02"),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Commit:     gitCommit(),
		Smoke:      *smoke,
	}
	rep.Warmup, rep.Instructions = 50_000, 250_000
	if *smoke {
		rep.Warmup, rep.Instructions = 20_000, 80_000
	}
	opt := sim.RunOpt{Warmup: rep.Warmup, Instructions: rep.Instructions, Seed: 1, Samples: 1}
	cfg := sim.DefaultConfig()

	stopProf := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		// main exits via os.Exit (defers never run): stop explicitly once
		// the measurement loop is done.
		stopProf = func() { pprof.StopCPUProfile(); f.Close() }
	}

	for _, p := range pins {
		if *smoke && !p.Smoke {
			continue
		}
		name := p.Workload + "/" + p.Spec.String()
		if *only != "" && !strings.Contains(name, *only) {
			continue
		}
		w, err := trace.ByName(p.Workload)
		if err != nil {
			fatalf("unknown pinned workload %q: %v", p.Workload, err)
		}
		fmt.Fprintf(os.Stderr, "%-32s ", name)

		// One deterministic run yields the per-iteration access count the
		// wall-clock and allocation totals are normalised by.
		ref, err := sim.Run(cfg, p.Spec, w, opt)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		accesses := ref.L1D.Hits + ref.L1D.Misses
		if accesses == 0 {
			fatalf("%s: zero L1D accesses", name)
		}

		r := benchmark(func() {
			if _, err := sim.Run(cfg, p.Spec, w, opt); err != nil {
				fatalf("%s: %v", name, err)
			}
		}, *benchtime)

		perIter := float64(r.T.Nanoseconds()) / float64(r.N)
		b := Bench{
			Name:         name,
			Workload:     p.Workload,
			Spec:         p.Spec.String(),
			Iters:        r.N,
			Instructions: ref.Instructions,
			Accesses:     accesses,

			NsPerAccess:     perIter / float64(accesses),
			AccessesPerSec:  float64(accesses) / (perIter / 1e9),
			AllocsPerAccess: float64(r.AllocsPerOp()) / float64(accesses),
			BytesPerAccess:  float64(r.AllocedBytesPerOp()) / float64(accesses),
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		fmt.Fprintf(os.Stderr, "%10.2f Macc/s  %6.2f ns/acc  %8.4f allocs/acc\n",
			b.AccessesPerSec/1e6, b.NsPerAccess, b.AllocsPerAccess)
	}

	stopProf()
	if len(rep.Benchmarks) == 0 {
		fatalf("no benchmarks selected (check -only / -smoke)")
	}

	rep.GeomeanAccessesPerSec = geomean(rep.Benchmarks, func(b Bench) float64 { return b.AccessesPerSec })
	rep.GeomeanNsPerAccess = geomean(rep.Benchmarks, func(b Bench) float64 { return b.NsPerAccess })
	rep.GeomeanAllocsPerAccess = geomean(rep.Benchmarks, func(b Bench) float64 { return b.AllocsPerAccess })
	fmt.Fprintf(os.Stderr, "%-32s %10.2f Macc/s  %6.2f ns/acc  %8.4f allocs/acc\n",
		"geomean", rep.GeomeanAccessesPerSec/1e6, rep.GeomeanNsPerAccess, rep.GeomeanAllocsPerAccess)

	gate := 0
	if *compare != "" {
		diff, err := diffBaseline(*compare, &rep)
		if err != nil {
			fatalf("compare: %v", err)
		}
		rep.Baseline = diff
		for _, r := range diff.Rows {
			fmt.Fprintf(os.Stderr, "%-32s %10.2f -> %7.2f Macc/s  %+6.1f%%  allocs %.2fx\n",
				r.Name, r.OldAccessesPerSec/1e6, r.NewAccessesPerSec/1e6,
				(r.SpeedupAccessesPerSec-1)*100, r.AllocsRatio)
		}
		fmt.Fprintf(os.Stderr, "vs %s (%s, %d benchmarks): %.2fx accesses/s, %.2fx allocs/access\n",
			diff.File, diff.Date, diff.Compared, diff.SpeedupAccessesPerSec, diff.AllocsRatio)
		if *maxAllocs > 0 && diff.AllocsRatio > *maxAllocs {
			fmt.Fprintf(os.Stderr, "FAIL: allocs/access regressed %.2fx (limit %.2fx)\n",
				diff.AllocsRatio, *maxAllocs)
			gate = 2
		}
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatalf("write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	os.Exit(gate)
}

// benchmark measures fn with testing.Benchmark, re-running with a longer
// minimum when the default 1s budget yielded a single iteration (tiny-N
// results are noisy and their alloc counts dominated by warm-up).
func benchmark(fn func(), minTime time.Duration) testing.BenchmarkResult {
	run := func() testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
	}
	r := run()
	for r.N < 3 && r.T < 4*minTime {
		extra := run()
		if extra.N > r.N {
			r = extra
		}
		if extra.N >= 3 {
			break
		}
	}
	return r
}

func geomean(bs []Bench, f func(Bench) float64) float64 {
	if len(bs) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range bs {
		v := f(b)
		if v <= 0 {
			// allocs/access can legitimately reach 0 after pooling; floor it
			// so the geomean stays defined (and tiny) rather than collapsing.
			v = 1e-6
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(bs)))
}

// diffBaseline loads a previous report and compares geomeans over the
// benchmark names present in both.
func diffBaseline(path string, cur *Report) (*BaselineDiff, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var old Report
	if err := json.Unmarshal(data, &old); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	oldBy := make(map[string]Bench, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	var curShared, oldShared []Bench
	for _, b := range cur.Benchmarks {
		if ob, ok := oldBy[b.Name]; ok {
			curShared = append(curShared, b)
			oldShared = append(oldShared, ob)
		}
	}
	if len(curShared) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in common", path)
	}
	acc := func(b Bench) float64 { return b.AccessesPerSec }
	alc := func(b Bench) float64 { return b.AllocsPerAccess }
	diff := &BaselineDiff{
		File:                  path,
		Date:                  old.Date,
		SpeedupAccessesPerSec: geomean(curShared, acc) / geomean(oldShared, acc),
		AllocsRatio:           geomean(curShared, alc) / geomean(oldShared, alc),
		Compared:              len(curShared),
	}
	for i, b := range curShared {
		ob := oldShared[i]
		ar := 1.0
		if ob.AllocsPerAccess > 0 {
			ar = b.AllocsPerAccess / ob.AllocsPerAccess
		} else if b.AllocsPerAccess > 0 {
			ar = math.Inf(1)
		}
		diff.Rows = append(diff.Rows, RowDiff{
			Name:                  b.Name,
			SpeedupAccessesPerSec: b.AccessesPerSec / ob.AccessesPerSec,
			OldAccessesPerSec:     ob.AccessesPerSec,
			NewAccessesPerSec:     b.AccessesPerSec,
			AllocsRatio:           ar,
		})
	}
	return diff, nil
}

// gitCommit returns the working tree's short commit hash ("" outside a git
// checkout), with "+dirty" appended when tracked files are modified —
// committed BENCH files then record exactly which code produced them.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	commit := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil &&
		len(bytes.TrimSpace(st)) > 0 {
		commit += "+dirty"
	}
	return commit
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pbench: "+format+"\n", args...)
	os.Exit(1)
}
