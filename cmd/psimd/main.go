// Command psimd is the simulation service daemon: it accepts batches of
// simulations over HTTP/JSON, runs them on a bounded worker pool backed by
// the shared content-addressed result cache, and streams per-job progress
// and results over SSE. Two clients asking for the same simulation cost one
// run (cross-request single-flight plus the disk cache).
//
// Usage:
//
//	psimd                                  # listen on localhost:8080
//	psimd -addr :9090 -par 16 -queue 128   # bigger box
//	pexp -fig 8 -server http://localhost:8080
//
// Cluster mode gangs several daemons into one logical service: each
// simulation key has a single owning node on a consistent-hash ring, cache
// entries flow between nodes on demand, and idle nodes steal queued work:
//
//	psimd -addr :8080 -cluster -node-id a -peers b=http://h2:8080,c=http://h3:8080
//	pexp -fig 8 -server http://h1:8080,http://h2:8080,http://h3:8080
//
// Endpoints: POST /v1/sims, GET /v1/jobs/{id}, GET /v1/jobs/{id}/events
// (SSE), DELETE /v1/jobs/{id}, GET /healthz, GET /metrics (Prometheus text),
// GET /debug/flight (the span flight recorder, see -flight-cap); cluster mode
// adds the peer protocol under /v1/cluster/* and /v1/cache/*. -debug-addr
// serves net/http/pprof on a separate (private) listener.
//
// SIGINT/SIGTERM drains gracefully: admission stops, accepted jobs finish
// (bounded by -drain), then the HTTP server shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"net/url"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/dtrace"
	"repro/internal/service"
	"repro/internal/simcache"
)

// defaultCacheDir matches pexp/psim, so the daemon shares their entries.
func defaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "psat-repro", "simcache")
	}
	return ".simcache"
}

func main() { os.Exit(run()) }

func run() int {
	var (
		addr     = flag.String("addr", "localhost:8080", "listen address")
		cacheDir = flag.String("cache-dir", defaultCacheDir(), "simulation result cache directory")
		noCache  = flag.Bool("no-cache", false, "disable the result cache (every sim executes)")
		workers  = flag.Int("workers", 4, "jobs making progress concurrently")
		par      = flag.Int("par", runtime.NumCPU(), "concurrent simulations across all jobs")
		queue    = flag.Int("queue", 64, "admission queue depth (full queue returns 429)")
		maxBatch = flag.Int("max-batch", 4096, "maximum simulations per request")
		timeout  = flag.Duration("timeout", 0, "default per-job deadline (0: none)")
		drain    = flag.Duration("drain", 60*time.Second, "graceful-drain bound on SIGTERM before in-flight jobs are canceled")
		noTel    = flag.Bool("no-telemetry", false, "disable live simulation telemetry (SSE job snapshots and psimd_live_* gauges)")

		clustered = flag.Bool("cluster", false, "join a psimd cluster (requires the result cache)")
		peers     = flag.String("peers", "", "comma-separated seed peers: id=http://host:port or bare URLs")
		nodeID    = flag.String("node-id", "", "stable cluster identity (default: advertise URL's host:port)")
		advertise = flag.String("advertise", "", "URL peers dial to reach this node (default: http://<addr>)")

		flightCap = flag.Int("flight-cap", dtrace.DefaultCap, "span flight-recorder capacity (newest spans retained, served at /debug/flight; 0 disables tracing)")
		debugAddr = flag.String("debug-addr", "", "separate listener for net/http/pprof (e.g. localhost:6061); empty disables profiling")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:          *workers,
		SimParallelism:   *par,
		QueueDepth:       *queue,
		MaxBatch:         *maxBatch,
		DefaultTimeout:   *timeout,
		DisableTelemetry: *noTel,
	}
	if !*noCache {
		store, err := simcache.New(*cacheDir)
		if err != nil {
			log.Printf("warning: result cache disabled: %v", err)
		} else {
			cfg.Store = store
		}
	}

	if *clustered {
		if cfg.Store == nil {
			log.Printf("psimd: -cluster requires the result cache (cross-node fills land there); remove -no-cache or fix -cache-dir")
			return 1
		}
		seeds, err := cluster.ParsePeers(*peers)
		if err != nil {
			log.Printf("psimd: %v", err)
			return 1
		}
		adv := strings.TrimRight(*advertise, "/")
		if adv == "" {
			host := *addr
			if strings.HasPrefix(host, ":") {
				host = "localhost" + host
			}
			adv = "http://" + host
		}
		id := *nodeID
		if id == "" {
			if u, perr := url.Parse(adv); perr == nil && u.Host != "" {
				id = u.Host
			} else {
				id = adv
			}
		}
		cfg.Cluster = &cluster.Options{
			Self:  cluster.NodeInfo{ID: id, URL: adv},
			Seeds: seeds,
		}
	}

	if *flightCap > 0 {
		// The recorder's node identity is what stitched multi-node traces
		// group tracks by: the cluster ID when clustered, else the listen
		// address.
		node := *addr
		if cfg.Cluster != nil {
			node = cfg.Cluster.Self.ID
		}
		cfg.Flight = dtrace.NewRecorder(node, *flightCap)
		if cfg.Cluster != nil {
			cfg.Cluster.Flight = cfg.Flight
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := service.New(cfg)
	srv.Start()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		err := httpSrv.ListenAndServe()
		if !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	cacheNote := "disabled"
	if cfg.Store != nil {
		cacheNote = cfg.Store.Dir()
	}
	log.Printf("psimd listening on %s (workers=%d par=%d queue=%d cache=%s)",
		*addr, *workers, *par, *queue, cacheNote)
	if c := srv.Cluster(); c != nil {
		log.Printf("%s: %d seed peer(s)", c, len(cfg.Cluster.Seeds))
	}
	if *debugAddr != "" {
		// Profiling lives on its own listener so the public API port never
		// exposes pprof; bind it to localhost (or a firewalled interface).
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				log.Printf("psimd: debug listener: %v", err)
			}
		}()
		log.Printf("pprof on http://%s/debug/pprof/", *debugAddr)
	}

	select {
	case err := <-errc:
		log.Printf("psimd: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining
	log.Printf("draining (up to %s)...", *drain)
	if err := srv.Drain(*drain); err != nil {
		log.Printf("psimd: %v", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("psimd: shutdown: %v", err)
	}
	if st := srv.Stats(); st.Hits+st.Shared+st.Misses > 0 {
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d shared, %d simulated (%.0f%% hit rate)\n",
			st.Hits, st.Shared, st.Misses, st.HitRate()*100)
	}
	log.Printf("psimd stopped")
	return 0
}
