package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/mem"
)

// Binary trace format ("PSAT"): a fixed header followed by delta-encoded
// access records. Addresses and PCs are written as signed varint deltas from
// the previous record, which compresses strided streams to a couple of bytes
// per access.
const (
	fileMagic   = "PSAT"
	fileVersion = 1
)

// Writer streams accesses into a binary trace.
type Writer struct {
	w           *bufio.Writer
	lastVA      int64
	lastPC      int64
	count       uint64
	wroteHeader bool
}

// NewWriter creates a trace writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (t *Writer) header() error {
	if t.wroteHeader {
		return nil
	}
	t.wroteHeader = true
	if _, err := t.w.WriteString(fileMagic); err != nil {
		return err
	}
	return t.w.WriteByte(fileVersion)
}

// Write appends one access record.
func (t *Writer) Write(a Access) error {
	if err := t.header(); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte

	// flags byte: bit0 write, bits 1..7 gap (gaps ≥127 are clamped).
	gap := a.Gap
	if gap > 127 {
		gap = 127
	}
	flags := byte(gap << 1)
	if a.Write {
		flags |= 1
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}

	dv := int64(a.VAddr) - t.lastVA
	t.lastVA = int64(a.VAddr)
	n := binary.PutVarint(buf[:], dv)
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}

	dp := int64(a.PC) - t.lastPC
	t.lastPC = int64(a.PC)
	n = binary.PutVarint(buf[:], dp)
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	t.count++
	return nil
}

// Count returns the number of records written so far.
func (t *Writer) Count() uint64 { return t.count }

// Flush flushes buffered records to the underlying writer.
func (t *Writer) Flush() error {
	if err := t.header(); err != nil {
		return err
	}
	return t.w.Flush()
}

// FileReader replays a binary trace as a Reader. It is not safe for
// concurrent use.
type FileReader struct {
	r      *bufio.Reader
	lastVA int64
	lastPC int64
	err    error
	header bool
}

// NewFileReader creates a replaying Reader over r. The header is validated
// lazily on the first Next call; Err reports format errors afterwards.
func NewFileReader(r io.Reader) *FileReader {
	return &FileReader{r: bufio.NewReader(r)}
}

// Err returns the terminal error, if any (nil on clean EOF).
func (t *FileReader) Err() error { return t.err }

func (t *FileReader) readHeader() error {
	var magic [5]byte
	if _, err := io.ReadFull(t.r, magic[:]); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	if string(magic[:4]) != fileMagic {
		return errors.New("trace: bad magic, not a PSAT trace")
	}
	if magic[4] != fileVersion {
		return fmt.Errorf("trace: unsupported version %d", magic[4])
	}
	return nil
}

// Next implements Reader.
func (t *FileReader) Next(a *Access) bool {
	if t.err != nil {
		return false
	}
	if !t.header {
		t.header = true
		if err := t.readHeader(); err != nil {
			t.err = err
			return false
		}
	}
	flags, err := t.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			t.err = err
		}
		return false
	}
	dv, err := binary.ReadVarint(t.r)
	if err != nil {
		t.err = fmt.Errorf("trace: truncated record: %w", err)
		return false
	}
	dp, err := binary.ReadVarint(t.r)
	if err != nil {
		t.err = fmt.Errorf("trace: truncated record: %w", err)
		return false
	}
	t.lastVA += dv
	t.lastPC += dp
	a.VAddr = mem.Addr(uint64(t.lastVA))
	a.PC = mem.Addr(uint64(t.lastPC))
	a.Write = flags&1 != 0
	a.Gap = int(flags >> 1)
	return true
}

// Record drains up to n accesses from src into w.
func Record(w *Writer, src Reader, n uint64) (uint64, error) {
	var a Access
	var i uint64
	for i = 0; i < n && src.Next(&a); i++ {
		if err := w.Write(a); err != nil {
			return i, err
		}
	}
	return i, w.Flush()
}

// FileDigest returns the content identity of a trace file —
// "sha256:<hex>" over its raw bytes — used as the Workload.ContentID of a
// replay, so simulation cache entries follow the file's contents, not its
// path.
func FileDigest(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("trace: digest %s: %w", path, err)
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}
