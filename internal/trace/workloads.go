package trace

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/vm"
)

// Suite labels, matching Figure 9's grouping.
const (
	SuiteSPEC06 = "SPEC06"
	SuiteSPEC17 = "SPEC17"
	SuiteGAP    = "GAP"
	SuiteCloud  = "CLOUD"
	SuiteML     = "ML"
	SuiteQMM    = "QMM"
)

const mb = mem.Addr(1) << 20

// thp builds a fixed-fraction THP policy with a per-workload seed.
func thp(frac float64, seed uint64) vm.THPPolicy {
	return vm.FractionTHP{Frac: frac, Seed: seed}
}

func streams(gap int, specs ...StreamSpec) func(uint64) Reader {
	return func(seed uint64) Reader { return NewStreams(seed, gap, specs...) }
}

// seq builds n sequential element-granular streams: consecutive 8-byte
// accesses, so 7 of 8 land in the same cache block (L1 hits), giving
// realistic L2 MPKIs instead of one miss per reference.
func seq(foot mem.Addr, n int) []StreamSpec {
	out := make([]StreamSpec, n)
	for i := range out {
		out[i] = StreamSpec{Stride: 8, Footprint: foot}
	}
	return out
}

// catalogue lists every workload stand-in. The THP fractions mirror the
// paper's Figure 3 measurements and its per-workload commentary (e.g. soplex,
// hmmer, omnetpp, gcc_s and graph_analytics operate mainly on 4KB pages; most
// fp workloads keep ≈85-99% of memory in 2MB pages).
var catalogue = []Workload{
	// ----------------------------- SPEC CPU 2006 -----------------------------
	{Name: "gcc", Description: "index scan + data gathers with moderate locality; mostly 4KB pages", Suite: SuiteSPEC06, Intensive: true, THP: thp(0.30, 1),
		New: func(s uint64) Reader { return NewGather(s, 5, 4*mb, 24*mb, 55) }},
	{Name: "bwaves", Description: "five sequential element streams over 24MB arrays; 2MB-page heavy", Suite: SuiteSPEC06, Intensive: true, THP: thp(0.95, 2),
		New: streams(5, seq(24*mb, 5)...)},
	{Name: "mcf", Description: "pointer chase over 1M nodes with payload scans; THP share ramps up", Suite: SuiteSPEC06, Intensive: true,
		THP: vm.RampTHP{StartFrac: 0.4, EndFrac: 0.9, RampRegions: 12, Seed: 3},
		New: func(s uint64) Reader { return NewChase(s, 8, 1<<20, 192, 1) }},
	{Name: "milc", Description: "two 80-block strided streams (page-crossing on every access) plus a fine stream", Suite: SuiteSPEC06, Intensive: true, THP: thp(0.98, 4),
		// Strides of 80 blocks cross a 4KB page every access: only 2MB-grain
		// delta tracking can express this pattern (the paper's PSA-2MB win).
		New: streams(5,
			StreamSpec{Stride: 80 * 64, Footprint: 32 * mb},
			StreamSpec{Stride: 80 * 64, Footprint: 32 * mb},
			StreamSpec{Stride: 8, Footprint: 8 * mb})},
	{Name: "cactus", Description: "small-plane 3D stencil with fine-grain 4KB patterns", Suite: SuiteSPEC06, Intensive: true, THP: thp(0.85, 5),
		New: func(s uint64) Reader { return NewStencil(s, 5, 48, 48, 2<<20) }},
	{Name: "leslie3d", Description: "mid-plane 3D stencil sweep", Suite: SuiteSPEC06, Intensive: true, THP: thp(0.90, 6),
		New: func(s uint64) Reader { return NewStencil(s, 4, 96, 96, 2<<20) }},
	{Name: "gobmk", Description: "low-locality gathers over a small index set", Suite: SuiteSPEC06, Intensive: true, THP: thp(0.30, 7),
		New: func(s uint64) Reader { return NewGather(s, 6, 2*mb, 12*mb, 40) }},
	{Name: "soplex", Description: "high-locality gathers; mainly 4KB pages (the paper's 4KB outlier)", Suite: SuiteSPEC06, Intensive: true, THP: thp(0.15, 8),
		New: func(s uint64) Reader { return NewGather(s, 6, 8*mb, 20*mb, 70) }},
	{Name: "hmmer", Description: "two fine streams; mainly 4KB pages", Suite: SuiteSPEC06, Intensive: true, THP: thp(0.15, 9),
		New: streams(5, StreamSpec{Stride: 8, Footprint: 6 * mb},
			StreamSpec{Stride: 16, Footprint: 6 * mb, Write: true})},
	{Name: "GemsFDTD", Description: "large-plane stencil: interleaved streams offset by thousands of blocks", Suite: SuiteSPEC06, Intensive: true, THP: thp(0.92, 10),
		New: func(s uint64) Reader { return NewStencil(s, 4, 256, 256, 3<<20) }},
	{Name: "libquantum", Description: "one read and one write sequential stream over 32MB; ~all 2MB pages", Suite: SuiteSPEC06, Intensive: true, THP: thp(0.99, 11),
		New: streams(5, StreamSpec{Stride: 8, Footprint: 32 * mb},
			StreamSpec{Stride: 8, Footprint: 32 * mb, Write: true})},
	{Name: "lbm", Description: "five-stream lattice sweep incl. a write stream", Suite: SuiteSPEC06, Intensive: true, THP: thp(0.95, 12),
		New: streams(6, append(seq(24*mb, 4),
			StreamSpec{Stride: 8, Footprint: 24 * mb, Write: true})...)},
	{Name: "omnetpp", Description: "pointer chase with short payload scans; mainly 4KB pages", Suite: SuiteSPEC06, Intensive: true, THP: thp(0.20, 13),
		New: func(s uint64) Reader { return NewChase(s, 7, 1<<19, 256, 2) }},
	{Name: "astar", Description: "mixed index scan + gathers", Suite: SuiteSPEC06, Intensive: true, THP: thp(0.50, 14),
		New: func(s uint64) Reader { return NewGather(s, 5, 4*mb, 16*mb, 60) }},
	{Name: "wrf", Description: "asymmetric-plane stencil", Suite: SuiteSPEC06, Intensive: true, THP: thp(0.80, 15),
		New: func(s uint64) Reader { return NewStencil(s, 5, 128, 64, 2<<20) }},
	{Name: "sphinx3", Description: "gathers with high locality", Suite: SuiteSPEC06, Intensive: true, THP: thp(0.70, 16),
		New: func(s uint64) Reader { return NewGather(s, 6, 6*mb, 12*mb, 80) }},

	// ----------------------------- SPEC CPU 2017 -----------------------------
	{Name: "gcc_s", Description: "as gcc; mainly 4KB pages", Suite: SuiteSPEC17, Intensive: true, THP: thp(0.20, 20),
		New: func(s uint64) Reader { return NewGather(s, 5, 4*mb, 20*mb, 50) }},
	{Name: "bwaves_s", Description: "six sequential streams over 28MB arrays", Suite: SuiteSPEC17, Intensive: true, THP: thp(0.95, 21),
		New: streams(5, seq(28*mb, 6)...)},
	{Name: "mcf_s", Description: "denser pointer chase; THP ramps", Suite: SuiteSPEC17, Intensive: true,
		THP: vm.RampTHP{StartFrac: 0.4, EndFrac: 0.9, RampRegions: 16, Seed: 22},
		New: func(s uint64) Reader { return NewChase(s, 7, 1<<20, 128, 1) }},
	{Name: "cactuBSSN_s", Description: "small stencil, fine-grain patterns", Suite: SuiteSPEC17, Intensive: true, THP: thp(0.85, 23),
		New: func(s uint64) Reader { return NewStencil(s, 4, 64, 32, 2<<20) }},
	{Name: "lbm_s", Description: "six-stream lattice sweep", Suite: SuiteSPEC17, Intensive: true, THP: thp(0.95, 24),
		New: streams(6, append(seq(32*mb, 5),
			StreamSpec{Stride: 8, Footprint: 32 * mb, Write: true})...)},
	{Name: "omnetpp_s", Description: "pointer chase, larger nodes; mainly 4KB", Suite: SuiteSPEC17, Intensive: true, THP: thp(0.20, 25),
		New: func(s uint64) Reader { return NewChase(s, 7, 1<<19, 320, 2) }},
	{Name: "wrf_s", Description: "stencil", Suite: SuiteSPEC17, Intensive: true, THP: thp(0.80, 26),
		New: func(s uint64) Reader { return NewStencil(s, 5, 160, 96, 2<<20) }},
	{Name: "xalancbmk_s", Description: "small-node pointer chase", Suite: SuiteSPEC17, Intensive: true, THP: thp(0.40, 27),
		New: func(s uint64) Reader { return NewChase(s, 6, 1<<18, 96, 3) }},
	{Name: "x264_s", Description: "three streams with mixed 8-24B strides", Suite: SuiteSPEC17, Intensive: true, THP: thp(0.60, 28),
		New: streams(5, StreamSpec{Stride: 24, Footprint: 8 * mb},
			StreamSpec{Stride: 8, Footprint: 8 * mb},
			StreamSpec{Stride: 8, Footprint: 4 * mb, Write: true})},
	{Name: "cam4_s", Description: "stencil", Suite: SuiteSPEC17, Intensive: true, THP: thp(0.70, 29),
		New: func(s uint64) Reader { return NewStencil(s, 5, 96, 48, 2<<20) }},
	{Name: "pop2_s", Description: "stencil", Suite: SuiteSPEC17, Intensive: true, THP: thp(0.75, 30),
		New: func(s uint64) Reader { return NewStencil(s, 5, 192, 128, 2<<20) }},
	{Name: "leela_s", Description: "light gathers", Suite: SuiteSPEC17, Intensive: true, THP: thp(0.30, 31),
		New: func(s uint64) Reader { return NewGather(s, 6, 2*mb, 8*mb, 45) }},
	{Name: "fotonik3d_s", Description: "large-plane stencil (the paper's PSA showcase)", Suite: SuiteSPEC17, Intensive: true, THP: thp(0.90, 32),
		New: func(s uint64) Reader { return NewStencil(s, 4, 288, 288, 3<<20) }},
	{Name: "roms_s", Description: "large-plane stencil", Suite: SuiteSPEC17, Intensive: true, THP: thp(0.85, 33),
		New: func(s uint64) Reader { return NewStencil(s, 4, 224, 160, 3<<20) }},
	{Name: "xz_s", Description: "gathers with moderate locality", Suite: SuiteSPEC17, Intensive: true, THP: thp(0.50, 34),
		New: func(s uint64) Reader { return NewGather(s, 6, 8*mb, 16*mb, 65) }},

	// --------------------------------- GAP -----------------------------------
	{Name: "bfs.road", Description: "CSR road-graph traversal, short diagonal links", Suite: SuiteGAP, Intensive: true, THP: thp(0.80, 40),
		New: func(s uint64) Reader { return NewRoadGraph(s, 4, 3<<20, 256, 5) }},
	{Name: "cc.road", Description: "road graph with wider link window", Suite: SuiteGAP, Intensive: true, THP: thp(0.80, 41),
		New: func(s uint64) Reader { return NewRoadGraph(s, 4, 3<<20, 384, 15) }},
	{Name: "bc.road", Description: "road graph, moderate writes", Suite: SuiteGAP, Intensive: true, THP: thp(0.80, 42),
		New: func(s uint64) Reader { return NewRoadGraph(s, 5, 3<<20, 320, 10) }},
	{Name: "sssp.road", Description: "road graph with frequent relaxation writes", Suite: SuiteGAP, Intensive: true, THP: thp(0.80, 43),
		New: func(s uint64) Reader { return NewRoadGraph(s, 5, 3<<20, 256, 25) }},
	{Name: "tc.road", Description: "tight 4KB-grain neighbour reuse (hurt by 2MB-grain indexing)", Suite: SuiteGAP, Intensive: true, THP: thp(0.80, 44),
		// Triangle counting: tight neighbour windows, fine 4KB-grain reuse —
		// the workload the paper calls out as hurt by 2MB-grain indexing.
		New: func(s uint64) Reader { return NewRoadGraph(s, 3, 3<<20, 64, 0) }},
	{Name: "pr.road", Description: "road pagerank: streams + near-diagonal gathers + rank writes", Suite: SuiteGAP, Intensive: true, THP: thp(0.80, 45),
		New: func(s uint64) Reader { return NewRoadGraph(s, 4, 3<<20, 192, 30) }},

	// ------------------------------- CloudSuite ------------------------------
	{Name: "data_caching", Description: "memcached-style bucket probes, chain walks, blob reads", Suite: SuiteCloud, Intensive: true, THP: thp(0.60, 50),
		New: func(s uint64) Reader { return NewHashServe(s, 5, 24*mb, 16*mb) }},
	{Name: "graph_analytics", Description: "wide-window graph gathers; mainly 4KB pages", Suite: SuiteCloud, Intensive: true, THP: thp(0.15, 51),
		New: func(s uint64) Reader { return NewRoadGraph(s, 4, 4<<20, 1<<17, 10) }},

	// ----------------------------------- ML ----------------------------------
	{Name: "mlpack_cf", Description: "naive matmul: row stream + column stride + accumulator writes", Suite: SuiteML, Intensive: true, THP: thp(0.90, 60),
		New: func(s uint64) Reader { return NewMatmul(s, 4, 1400) }},
	{Name: "sat_solver", Description: "small-node pointer chase with payload scans", Suite: SuiteML, Intensive: true, THP: thp(0.50, 61),
		New: func(s uint64) Reader { return NewChase(s, 6, 1<<19, 80, 3) }},
}

// qmmNames lists the Qualcomm trace names exactly as they appear on the
// Figure 8 x-axis.
var qmmNames = []string{
	"qmm_int_315", "qmm_fp_12", "qmm_int_345", "qmm_int_398", "qmm_fp_87",
	"qmm_int_763", "qmm_fp_4", "qmm_fp_8", "qmm_fp_96", "qmm_fp_1",
	"qmm_fp_65", "qmm_int_906", "qmm_fp_95", "qmm_fp_67", "qmm_fp_133",
	"qmm_fp_15", "qmm_fp_14", "qmm_fp_136", "qmm_fp_48", "qmm_fp_5",
	"qmm_fp_7", "qmm_fp_101", "qmm_fp_45", "qmm_fp_30", "qmm_fp_139",
	"qmm_fp_105", "qmm_fp_128", "qmm_fp_71", "qmm_fp_51", "qmm_fp_111",
	"qmm_fp_110", "qmm_fp_6", "qmm_fp_134", "qmm_int_859", "qmm_fp_130",
	"qmm_fp_116", "qmm_fp_112", "qmm_fp_127", "qmm_int_21",
}

// nonIntensive lists SPEC stand-ins with footprints that mostly fit in the
// LLC (MPKI < 1), used by the paper's Section VI-B1 extended evaluation.
var nonIntensive = []Workload{}

func init() {
	// QMM workloads are derived entirely from their names: seed drives the
	// stream mixture and the THP fraction (0.55..0.98).
	for i, name := range qmmNames {
		s := uint64(i)*0x9e3779b97f4a7c15 + 12345
		frac := 0.55 + float64((s>>7)%44)/100
		name := name
		catalogue = append(catalogue, Workload{
			Name: name, Suite: SuiteQMM, Intensive: true,
			Description: "seed-derived industrial kernel: 2-3 strided streams, occasional multi-block strides and rare jumps",
			THP:         thp(frac, s),
			New:         func(seed uint64) Reader { return NewQMM(seed ^ s) },
		})
	}

	small := []struct {
		name  string
		suite string
	}{
		{"perlbench", SuiteSPEC06}, {"namd", SuiteSPEC06}, {"povray", SuiteSPEC06},
		{"gamess", SuiteSPEC06}, {"h264ref", SuiteSPEC06}, {"dealII", SuiteSPEC06},
		{"imagick_s", SuiteSPEC17}, {"nab_s", SuiteSPEC17},
		{"exchange2_s", SuiteSPEC17}, {"deepsjeng_s", SuiteSPEC17},
	}
	for i, w := range small {
		foot := mem.Addr(768+128*mem.Addr(i%3)) << 10 // 768KB..1MB: mostly LLC-resident
		nonIntensive = append(nonIntensive, Workload{
			Name: w.name, Suite: w.suite, Intensive: false,
			Description: "LLC-resident streams (non-intensive control)",
			THP:         thp(0.5, uint64(100+i)),
			New: streams(6, StreamSpec{Stride: 64, Footprint: foot},
				StreamSpec{Stride: 128, Footprint: foot}),
		})
	}
}

// Intensive returns the paper's 80 memory-intensive workloads.
func Intensive() []Workload {
	out := make([]Workload, 0, len(catalogue))
	for _, w := range catalogue {
		if w.Intensive {
			out = append(out, w)
		}
	}
	return out
}

// All returns the intensive set plus the non-intensive SPEC extras.
func All() []Workload {
	return append(Intensive(), nonIntensive...)
}

// ByName finds a workload in the full set.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("trace: unknown workload %q", name)
}

// Suites returns the distinct suite labels of the intensive set, sorted.
func Suites() []string {
	seen := map[string]bool{}
	for _, w := range Intensive() {
		seen[w.Suite] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// BySuite returns the intensive workloads of one suite.
func BySuite(suite string) []Workload {
	var out []Workload
	for _, w := range Intensive() {
		if w.Suite == suite {
			out = append(out, w)
		}
	}
	return out
}
