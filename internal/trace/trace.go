// Package trace provides the workload substrate: a memory-access trace
// interface and a catalogue of deterministic synthetic workload generators
// standing in for the paper's trace sets (SPEC CPU 2006/2017, GAP road
// graphs, CloudSuite, mlpack, and the Qualcomm QMM/CVP-1 traces).
//
// The generators are parameterised along the two axes the paper's mechanism
// is sensitive to: the spatial shape of the access pattern relative to 4KB
// region boundaries, and the fraction of the footprint the OS backs with 2MB
// pages (each workload carries a THP policy mirroring the Figure 3
// measurements).
package trace

import (
	"repro/internal/mem"
	"repro/internal/vm"
)

// Access is one traced memory operation. Gap is the number of non-memory
// instructions preceding it, so instruction counts (and IPC) are meaningful.
type Access struct {
	PC    mem.Addr
	VAddr mem.Addr
	Write bool
	Gap   int
}

// Reader produces a stream of accesses. Generators are infinite; the core
// stops at its instruction budget.
type Reader interface {
	// Next fills a with the next access and reports whether one was
	// produced.
	Next(a *Access) bool
}

// Workload names a reproducible benchmark stand-in.
type Workload struct {
	// Name is the benchmark name as used in the paper's figures.
	Name string
	// Description summarises the modelled access behaviour.
	Description string
	// Suite groups workloads for Figure 9: SPEC06, SPEC17, GAP, CLOUD, ML,
	// QMM.
	Suite string
	// Intensive marks LLC-MPKI ≥ 1 workloads (the paper's main set).
	Intensive bool
	// THP is the transparent-huge-page policy the OS applies to this
	// workload's memory, controlling its Figure 3 profile.
	THP vm.THPPolicy
	// ContentID pins the workload's contents when Name alone does not:
	// catalogue generators leave it empty (the generator code is versioned
	// by simcache.SchemaVersion), while trace-file replays carry a digest of
	// the file's bytes (see FileDigest) so re-recording a trace under the
	// same path is a different workload.
	ContentID string
	// New creates the access stream. Streams are deterministic given seed.
	New func(seed uint64) Reader
}

// rng is a splitmix64 PRNG — deterministic, allocation-free.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed*0x9e3779b97f4a7c15 + 1} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Base virtual addresses: each workload region is 2MB-aligned and regions are
// spaced far apart so distinct arrays never share a huge page.
const (
	regionSpacing = mem.Addr(1) << 32
	baseAddr      = mem.Addr(0x10000000)
)

// arrayBase returns the virtual base address of a workload's k-th array.
func arrayBase(k int) mem.Addr { return baseAddr + mem.Addr(k)*regionSpacing }
