package trace

import (
	"sync"

	"repro/internal/mem"
)

// ---------------------------------------------------------------------------
// Multi-stream sequential / strided generator (lbm-, bwaves-, libquantum-like)
// ---------------------------------------------------------------------------

// StreamSpec describes one strided stream.
type StreamSpec struct {
	Stride    int64    // bytes between consecutive accesses (may be negative)
	Footprint mem.Addr // bytes before the stream wraps
	Write     bool
}

type streamReader struct {
	specs []StreamSpec
	pos   []int64
	bases []mem.Addr
	gap   int
	turn  int
	r     *rng
}

// NewStreams builds a reader that round-robins over the given strided
// streams with `gap` non-memory instructions between accesses.
func NewStreams(seed uint64, gap int, specs ...StreamSpec) Reader {
	s := &streamReader{specs: specs, gap: gap, r: newRNG(seed)}
	s.pos = make([]int64, len(specs))
	s.bases = make([]mem.Addr, len(specs))
	for i := range specs {
		s.bases[i] = arrayBase(i)
		if specs[i].Stride < 0 {
			s.pos[i] = int64(specs[i].Footprint) - 64
		}
	}
	return s
}

func (s *streamReader) Next(a *Access) bool {
	i := s.turn
	s.turn = (s.turn + 1) % len(s.specs)
	sp := s.specs[i]
	a.PC = 0x400000 + mem.Addr(i)*8
	a.VAddr = s.bases[i] + mem.Addr(s.pos[i])
	a.Write = sp.Write
	a.Gap = s.gap
	s.pos[i] += sp.Stride
	if s.pos[i] >= int64(sp.Footprint) {
		s.pos[i] = 0
	} else if s.pos[i] < 0 {
		s.pos[i] = int64(sp.Footprint) - 64
	}
	return true
}

// ---------------------------------------------------------------------------
// Stencil generator (GemsFDTD-, fotonik3d-, roms-, leslie3d-like)
// ---------------------------------------------------------------------------

type stencilReader struct {
	nx, ny, n int64 // plane geometry in elements (8B each)
	i         int64
	phase     int
	gap       int
}

// NewStencil builds a 3D 7-point-ish stencil sweep over an n-element grid
// with plane dimensions nx × ny. Neighbour accesses at ±nx and ±nx·ny
// elements produce multiple interleaved streams offset by thousands of
// blocks — exactly the pattern that profits from 2MB-wide speculation.
func NewStencil(seed uint64, gap int, nx, ny, n int64) Reader {
	return &stencilReader{nx: nx, ny: ny, n: n, gap: gap}
}

func (s *stencilReader) Next(a *Access) bool {
	const elem = 8
	offsets := [5]int64{0, s.nx, -s.nx, s.nx * s.ny, -s.nx * s.ny}
	idx := s.i + offsets[s.phase]
	for idx < 0 {
		idx += s.n
	}
	idx %= s.n
	a.PC = 0x410000 + mem.Addr(s.phase)*8
	a.VAddr = arrayBase(0) + mem.Addr(idx)*elem
	a.Write = false
	a.Gap = s.gap
	s.phase++
	if s.phase == len(offsets) {
		// Write the centre element of the output grid and advance.
		s.phase = 0
		a.Write = true
		a.VAddr = arrayBase(1) + mem.Addr(s.i)*elem
		s.i = (s.i + 1) % s.n
	}
	return true
}

// ---------------------------------------------------------------------------
// Pointer-chase generator (mcf-, omnetpp-, sat_solver-like)
// ---------------------------------------------------------------------------

type chaseReader struct {
	perm     []int32
	pos      int32
	nodeSize mem.Addr
	gap      int
	// aux adds a small sequential side stream (node payload scanning).
	auxLen, auxLeft int
	auxAddr         mem.Addr
}

// chasePerms memoizes the Sattolo cycle per (seed, nodes): building one over a
// million nodes costs more than a whole warmup chunk, every simulation of a
// given workload rebuilds the identical permutation, and readers only ever
// read it — so batches (and the flat-vs-radix differential running simulations
// in parallel) can share one slice. Bounded to keep long-running daemons flat.
var chasePerms struct {
	sync.Mutex
	m map[[2]uint64][]int32
}

func chasePerm(seed uint64, nodes int) []int32 {
	key := [2]uint64{seed, uint64(nodes)}
	chasePerms.Lock()
	defer chasePerms.Unlock()
	if p, ok := chasePerms.m[key]; ok {
		return p
	}
	r := newRNG(seed)
	perm := make([]int32, nodes)
	for i := range perm {
		perm[i] = int32(i)
	}
	// Sattolo: a single cycle visiting every node.
	for i := nodes - 1; i > 0; i-- {
		j := r.intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	if chasePerms.m == nil {
		chasePerms.m = make(map[[2]uint64][]int32)
	}
	if len(chasePerms.m) >= 64 {
		for k := range chasePerms.m {
			delete(chasePerms.m, k)
			break
		}
	}
	chasePerms.m[key] = perm
	return perm
}

// NewChase builds a pointer chase over nodes nodes arranged in one random
// cycle (Sattolo's algorithm), with nodeSize bytes per node and auxLen
// sequential payload accesses after each hop.
func NewChase(seed uint64, gap, nodes int, nodeSize mem.Addr, auxLen int) Reader {
	return &chaseReader{perm: chasePerm(seed, nodes), nodeSize: nodeSize, gap: gap, auxLen: auxLen}
}

func (c *chaseReader) Next(a *Access) bool {
	if c.auxLeft > 0 {
		c.auxLeft--
		c.auxAddr += mem.BlockSize
		a.PC = 0x420010
		a.VAddr = c.auxAddr
		a.Write = false
		a.Gap = c.gap
		return true
	}
	c.pos = c.perm[c.pos]
	a.PC = 0x420000
	a.VAddr = arrayBase(0) + mem.Addr(c.pos)*c.nodeSize
	a.Write = false
	a.Gap = c.gap
	if c.auxLen > 0 {
		c.auxLeft = c.auxLen
		c.auxAddr = a.VAddr
	}
	return true
}

// ---------------------------------------------------------------------------
// Gather generator (soplex-, sphinx3-, astar-like)
// ---------------------------------------------------------------------------

type gatherReader struct {
	idxFoot  mem.Addr
	dataFoot mem.Addr
	locality int // percent of gathers near the previous one
	idxPos   mem.Addr
	lastData mem.Addr
	phase    int
	gap      int
	r        *rng
}

// NewGather interleaves a sequential index-array scan with data gathers;
// locality (0..100) is the share of gathers landing near the previous one.
func NewGather(seed uint64, gap int, idxFoot, dataFoot mem.Addr, locality int) Reader {
	return &gatherReader{idxFoot: idxFoot, dataFoot: dataFoot, locality: locality, gap: gap, r: newRNG(seed)}
}

func (g *gatherReader) Next(a *Access) bool {
	a.Gap = g.gap
	a.Write = false
	if g.phase == 0 {
		g.phase = 1
		a.PC = 0x430000
		a.VAddr = arrayBase(0) + g.idxPos
		g.idxPos = (g.idxPos + 8) % g.idxFoot
		return true
	}
	g.phase = 0
	a.PC = 0x430008
	if g.r.intn(100) < g.locality {
		g.lastData = (g.lastData + mem.Addr(g.r.intn(8))*mem.BlockSize) % g.dataFoot
	} else {
		g.lastData = mem.Addr(g.r.next()) % g.dataFoot
	}
	a.VAddr = arrayBase(1) + mem.BlockAlign(g.lastData)
	return true
}

// ---------------------------------------------------------------------------
// Road-graph generator (GAP bfs/cc/bc/sssp/tc/pr over the road input)
// ---------------------------------------------------------------------------

type graphReader struct {
	nodes     int64
	node      int64
	degLeft   int
	window    int64 // neighbour locality window (road graphs are near-diagonal)
	valElem   mem.Addr
	phase     int
	gap       int
	writeFrac int // percent of value accesses that are writes (pr/sssp update)
	r         *rng
}

// NewRoadGraph models CSR traversal of a road-like graph: a sequential scan
// of the offsets array, low-degree near-diagonal neighbour gathers into the
// values array, and optional result writes.
func NewRoadGraph(seed uint64, gap int, nodes int64, window int64, writeFrac int) Reader {
	return &graphReader{nodes: nodes, window: window, valElem: 8, gap: gap, writeFrac: writeFrac, r: newRNG(seed)}
}

func (g *graphReader) Next(a *Access) bool {
	a.Gap = g.gap
	a.Write = false
	switch g.phase {
	case 0: // offsets[node] — sequential
		a.PC = 0x440000
		a.VAddr = arrayBase(0) + mem.Addr(g.node)*4
		g.degLeft = 2 + g.r.intn(3) // road graphs: degree 2..4
		g.phase = 1
	case 1: // values[neighbour] — near-diagonal gather
		a.PC = 0x440008
		// Road graphs (renumbered for locality, as GAP does) are dominated by
		// short diagonal links: ±1..±8 neighbours for street segments, with a
		// modest share of longer ramp/bridge links within the window.
		var d int64
		switch {
		case g.r.intn(100) < 85:
			d = int64(1 + g.r.intn(8))
			if g.r.intn(2) == 0 {
				d = -d
			}
		case g.r.intn(100) < 60:
			d = int64(16 + g.r.intn(48))
			if g.r.intn(2) == 0 {
				d = -d
			}
		default:
			d = int64(g.r.intn(int(2*g.window+1))) - g.window
		}
		nbr := g.node + d
		if nbr < 0 {
			nbr += g.nodes
		}
		nbr %= g.nodes
		a.VAddr = arrayBase(1) + mem.Addr(nbr)*g.valElem
		if g.r.intn(100) < g.writeFrac {
			a.Write = true
		}
		g.degLeft--
		if g.degLeft == 0 {
			g.phase = 2
		}
	case 2: // result[node] — sequential write
		a.PC = 0x440010
		a.VAddr = arrayBase(2) + mem.Addr(g.node)*g.valElem
		a.Write = true
		g.node = (g.node + 1) % g.nodes
		g.phase = 0
	}
	return true
}

// ---------------------------------------------------------------------------
// Dense linear algebra generator (mlpack-like)
// ---------------------------------------------------------------------------

type matmulReader struct {
	n       int64 // square matrix dimension in elements
	i, j, k int64
	phase   int
	gap     int
}

// NewMatmul models naive row×column matrix multiply: A scanned row-wise
// (sequential), B column-wise (stride n elements, crossing a 4KB page every
// few accesses for large n), C accumulated.
func NewMatmul(seed uint64, gap int, n int64) Reader {
	return &matmulReader{n: n, gap: gap}
}

func (m *matmulReader) Next(a *Access) bool {
	const elem = 8
	a.Gap = m.gap
	a.Write = false
	switch m.phase {
	case 0: // A[i][k]
		a.PC = 0x450000
		a.VAddr = arrayBase(0) + mem.Addr(m.i*m.n+m.k)*elem
		m.phase = 1
	case 1: // B[k][j] — large stride
		a.PC = 0x450008
		a.VAddr = arrayBase(1) + mem.Addr(m.k*m.n+m.j)*elem
		m.phase = 2
	case 2: // C[i][j]
		a.PC = 0x450010
		a.VAddr = arrayBase(2) + mem.Addr(m.i*m.n+m.j)*elem
		a.Write = true
		m.phase = 0
		m.k++
		if m.k == m.n {
			m.k = 0
			m.j++
			if m.j == m.n {
				m.j = 0
				m.i = (m.i + 1) % m.n
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Hash-table serving generator (CloudSuite data_caching-like)
// ---------------------------------------------------------------------------

type hashReader struct {
	tableFoot mem.Addr
	blobFoot  mem.Addr
	chainLeft int
	blobLeft  int
	cur       mem.Addr
	gap       int
	r         *rng
}

// NewHashServe models a memcached-style service: random bucket probes with
// short chain walks and occasional sequential value-blob reads.
func NewHashServe(seed uint64, gap int, tableFoot, blobFoot mem.Addr) Reader {
	return &hashReader{tableFoot: tableFoot, blobFoot: blobFoot, gap: gap, r: newRNG(seed)}
}

func (h *hashReader) Next(a *Access) bool {
	a.Gap = h.gap
	a.Write = false
	switch {
	case h.chainLeft > 0:
		h.chainLeft--
		h.cur += mem.BlockSize
		a.PC = 0x460008
		a.VAddr = h.cur
	case h.blobLeft > 0:
		h.blobLeft--
		h.cur += mem.BlockSize
		a.PC = 0x460010
		a.VAddr = h.cur
	default:
		a.PC = 0x460000
		h.cur = arrayBase(0) + mem.BlockAlign(mem.Addr(h.r.next())%h.tableFoot)
		a.VAddr = h.cur
		h.chainLeft = h.r.intn(3)
		if h.r.intn(4) == 0 {
			h.blobLeft = 4 + h.r.intn(8)
			h.cur = arrayBase(1) + mem.BlockAlign(mem.Addr(h.r.next())%h.blobFoot)
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// QMM-like mixture generator (Qualcomm CVP-1 industrial traces)
// ---------------------------------------------------------------------------

type qmmReader struct {
	specs   []StreamSpec
	pos     []int64
	bases   []mem.Addr
	jumpPct int // percent of accesses that jump randomly within the stream
	gap     int
	turn    int
	r       *rng
}

// NewQMM derives a stream mixture entirely from the seed: 2-5 strided
// streams with strides up to ±32 blocks, a random-jump share, and a gap of
// 1-4 — a family of industrial-looking kernels.
func NewQMM(seed uint64) Reader {
	r := newRNG(seed)
	n := 2 + r.intn(2)
	q := &qmmReader{r: r}
	q.gap = 4 + r.intn(4)
	q.jumpPct = r.intn(2)
	for i := 0; i < n; i++ {
		// Mostly element-scale strides (high L1 reuse); occasionally a
		// multi-block stride that crosses 4KB pages quickly.
		stride := int64(8 * (1 + r.intn(8)))
		if r.intn(5) == 0 {
			stride = int64(1+r.intn(32)) * 64
		}
		if r.intn(4) == 0 {
			stride = -stride
		}
		foot := mem.Addr(4+r.intn(28)) << 20 // 4..32 MB
		q.specs = append(q.specs, StreamSpec{
			Stride:    stride,
			Footprint: foot,
			Write:     r.intn(5) == 0,
		})
		q.bases = append(q.bases, arrayBase(i))
		start := int64(0)
		if stride < 0 {
			start = int64(foot) - 64
		}
		q.pos = append(q.pos, start)
	}
	return q
}

func (q *qmmReader) Next(a *Access) bool {
	i := q.turn
	q.turn = (q.turn + 1) % len(q.specs)
	sp := q.specs[i]
	if q.jumpPct > 0 && q.r.intn(100) < q.jumpPct {
		q.pos[i] = int64(mem.BlockAlign(mem.Addr(q.r.next()) % sp.Footprint))
	}
	a.PC = 0x470000 + mem.Addr(i)*8
	a.VAddr = q.bases[i] + mem.Addr(q.pos[i])
	a.Write = sp.Write
	a.Gap = q.gap
	q.pos[i] += sp.Stride
	if q.pos[i] >= int64(sp.Footprint) {
		q.pos[i] = 0
	} else if q.pos[i] < 0 {
		q.pos[i] = int64(sp.Footprint) - 64
	}
	return true
}
