package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	memp "repro/internal/mem"
)

func toAddr(v uint64) memp.Addr { return memp.Addr(v) }

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	src := NewStreams(1, 3, StreamSpec{Stride: 8, Footprint: 1 << 20},
		StreamSpec{Stride: -64, Footprint: 1 << 20, Write: true})
	n, err := Record(w, src, 5000)
	if err != nil || n != 5000 {
		t.Fatalf("Record: n=%d err=%v", n, err)
	}

	// Replaying must reproduce the generator exactly.
	ref := NewStreams(1, 3, StreamSpec{Stride: 8, Footprint: 1 << 20},
		StreamSpec{Stride: -64, Footprint: 1 << 20, Write: true})
	r := NewFileReader(bytes.NewReader(buf.Bytes()))
	var got, want Access
	for i := 0; i < 5000; i++ {
		if !r.Next(&got) {
			t.Fatalf("replay ended at %d: %v", i, r.Err())
		}
		ref.Next(&want)
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if r.Next(&got) {
		t.Error("replay produced extra records")
	}
	if r.Err() != nil {
		t.Errorf("clean EOF reported error: %v", r.Err())
	}
}

func TestCompressionOnStrides(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	src := NewStreams(1, 2, StreamSpec{Stride: 8, Footprint: 1 << 22})
	Record(w, src, 10000)
	// A pure stride should cost ~3 bytes per record (flags + 2 tiny deltas).
	if per := float64(buf.Len()) / 10000; per > 4 {
		t.Errorf("stride trace costs %.1f bytes/record, want ≤ 4", per)
	}
}

func TestBadMagicRejected(t *testing.T) {
	r := NewFileReader(bytes.NewReader([]byte("NOPE\x01abcdef")))
	var a Access
	if r.Next(&a) {
		t.Error("bad magic accepted")
	}
	if r.Err() == nil {
		t.Error("no error reported for bad magic")
	}
}

func TestBadVersionRejected(t *testing.T) {
	r := NewFileReader(bytes.NewReader([]byte("PSAT\x63abc")))
	var a Access
	if r.Next(&a) {
		t.Error("bad version accepted")
	}
}

func TestTruncatedTraceReportsError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Access{VAddr: 0x1000, PC: 0x400000, Gap: 2})
	w.Write(Access{VAddr: 0x2000, PC: 0x400004, Gap: 2})
	w.Flush()
	cut := buf.Bytes()[:buf.Len()-1]
	r := NewFileReader(bytes.NewReader(cut))
	var a Access
	n := 0
	for r.Next(&a) {
		n++
	}
	if n != 1 {
		t.Errorf("read %d records from truncated trace, want 1", n)
	}
	if r.Err() == nil {
		t.Error("truncation not reported")
	}
}

func TestGapClamped(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Access{VAddr: 0x1000, Gap: 500})
	w.Flush()
	r := NewFileReader(bytes.NewReader(buf.Bytes()))
	var a Access
	if !r.Next(&a) {
		t.Fatal(r.Err())
	}
	if a.Gap != 127 {
		t.Errorf("gap = %d, want clamp at 127", a.Gap)
	}
}

// Property: arbitrary access sequences round-trip exactly (within the gap
// clamp).
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var in []Access
		for i, v := range raw {
			a := Access{
				VAddr: toAddr(v),
				PC:    toAddr(v >> 7),
				Write: v&1 != 0,
				Gap:   int(v % 128),
			}
			in = append(in, a)
			if err := w.Write(a); err != nil {
				return false
			}
			_ = i
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewFileReader(bytes.NewReader(buf.Bytes()))
		var got Access
		for i := range in {
			if !r.Next(&got) || got != in[i] {
				return false
			}
		}
		return !r.Next(&got) && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
