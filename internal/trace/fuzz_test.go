package trace

import (
	"bytes"
	"testing"

	"repro/internal/mem"
)

// FuzzFileReader feeds arbitrary bytes to the trace decoder: it must never
// panic, and must either produce records or report an error.
func FuzzFileReader(f *testing.F) {
	// Seed with a valid tiny trace and a few corruptions.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Access{VAddr: 0x1000, PC: 0x400000, Gap: 3})
	w.Write(Access{VAddr: 0x2000, PC: 0x400004, Write: true, Gap: 1})
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add([]byte("PSAT\x01"))
	f.Add([]byte("JUNK"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewFileReader(bytes.NewReader(data))
		var a Access
		n := 0
		for r.Next(&a) && n < 10000 {
			n++
			if a.Gap < 0 || a.Gap > 127 {
				t.Fatalf("decoded gap %d out of range", a.Gap)
			}
		}
		// After Next returns false, Err must be stable and further Next
		// calls must keep returning false.
		err1 := r.Err()
		if r.Next(&a) {
			t.Fatal("Next returned true after stream end")
		}
		if r.Err() != err1 && err1 != nil {
			t.Fatal("Err changed after stream end")
		}
	})
}

// FuzzBatchReader: batched decode must be a pure re-chunking of Next. For
// arbitrary (possibly corrupt) trace bytes and arbitrary slab sizes, a reader
// drained through NextBatch yields exactly the access sequence of a reader
// drained one record at a time — including where the stream ends.
func FuzzBatchReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 20; i++ {
		w.Write(Access{VAddr: mem.Addr(0x1000 + i*64), PC: 0x400000, Gap: i % 8, Write: i%3 == 0})
	}
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid, uint8(4))
	f.Add(valid, uint8(1))
	f.Add(valid[:len(valid)-3], uint8(7))
	f.Add([]byte("JUNK"), uint8(3))
	f.Add([]byte{}, uint8(5))

	f.Fuzz(func(t *testing.T, data []byte, slab uint8) {
		n := int(slab%16) + 1
		batched := NewFileReader(bytes.NewReader(data))
		serial := NewFileReader(bytes.NewReader(data))
		dst := make([]Access, n)
		var want Access
		total := 0
		for total < 10000 {
			got := batched.NextBatch(dst)
			if got < 0 || got > n {
				t.Fatalf("NextBatch returned %d for slab %d", got, n)
			}
			for i := 0; i < got; i++ {
				if !serial.Next(&want) {
					t.Fatalf("batched decode produced %d extra accesses", got-i)
				}
				if dst[i] != want {
					t.Fatalf("access %d diverged: batch %+v serial %+v", total+i, dst[i], want)
				}
			}
			total += got
			if got < n {
				break
			}
		}
		if serial.Next(&want) && total < 10000 {
			t.Fatal("batched decode ended early")
		}
	})
}

// FuzzGenerators drives every catalogue generator from fuzzed seeds: streams
// must stay deterministic per seed and produce sane accesses.
func FuzzGenerators(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(999), uint8(40))
	f.Fuzz(func(t *testing.T, seed uint64, pick uint8) {
		ws := Intensive()
		w := ws[int(pick)%len(ws)]
		r1, r2 := w.New(seed), w.New(seed)
		var a, b Access
		for i := 0; i < 200; i++ {
			ok1, ok2 := r1.Next(&a), r2.Next(&b)
			if ok1 != ok2 || a != b {
				t.Fatalf("%s: nondeterministic at %d", w.Name, i)
			}
			if !ok1 {
				break
			}
			if a.VAddr == 0 || a.VAddr > mem.Addr(1)<<48 {
				t.Fatalf("%s: implausible vaddr %#x", w.Name, a.VAddr)
			}
		}
	})
}
