package trace

import (
	"bytes"
	"testing"

	"repro/internal/mem"
)

// FuzzFileReader feeds arbitrary bytes to the trace decoder: it must never
// panic, and must either produce records or report an error.
func FuzzFileReader(f *testing.F) {
	// Seed with a valid tiny trace and a few corruptions.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Access{VAddr: 0x1000, PC: 0x400000, Gap: 3})
	w.Write(Access{VAddr: 0x2000, PC: 0x400004, Write: true, Gap: 1})
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add([]byte("PSAT\x01"))
	f.Add([]byte("JUNK"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewFileReader(bytes.NewReader(data))
		var a Access
		n := 0
		for r.Next(&a) && n < 10000 {
			n++
			if a.Gap < 0 || a.Gap > 127 {
				t.Fatalf("decoded gap %d out of range", a.Gap)
			}
		}
		// After Next returns false, Err must be stable and further Next
		// calls must keep returning false.
		err1 := r.Err()
		if r.Next(&a) {
			t.Fatal("Next returned true after stream end")
		}
		if r.Err() != err1 && err1 != nil {
			t.Fatal("Err changed after stream end")
		}
	})
}

// FuzzGenerators drives every catalogue generator from fuzzed seeds: streams
// must stay deterministic per seed and produce sane accesses.
func FuzzGenerators(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(999), uint8(40))
	f.Fuzz(func(t *testing.T, seed uint64, pick uint8) {
		ws := Intensive()
		w := ws[int(pick)%len(ws)]
		r1, r2 := w.New(seed), w.New(seed)
		var a, b Access
		for i := 0; i < 200; i++ {
			ok1, ok2 := r1.Next(&a), r2.Next(&b)
			if ok1 != ok2 || a != b {
				t.Fatalf("%s: nondeterministic at %d", w.Name, i)
			}
			if !ok1 {
				break
			}
			if a.VAddr == 0 || a.VAddr > mem.Addr(1)<<48 {
				t.Fatalf("%s: implausible vaddr %#x", w.Name, a.VAddr)
			}
		}
	})
}
