package trace

import (
	"testing"

	"repro/internal/mem"
)

func take(r Reader, n int) []Access {
	out := make([]Access, 0, n)
	var a Access
	for i := 0; i < n && r.Next(&a); i++ {
		out = append(out, a)
	}
	return out
}

func TestCatalogueCounts(t *testing.T) {
	if got := len(Intensive()); got != 80 {
		t.Errorf("intensive workloads = %d, want 80 (the paper's set)", got)
	}
	if got := len(All()); got <= 80 {
		t.Errorf("All() = %d, want > 80 (non-intensive extras)", got)
	}
}

func TestCatalogueNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range All() {
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		if w.New == nil {
			t.Errorf("workload %q has no generator", w.Name)
		}
		if w.THP == nil {
			t.Errorf("workload %q has no THP policy", w.Name)
		}
	}
}

func TestSuiteGrouping(t *testing.T) {
	suites := Suites()
	want := map[string]bool{
		SuiteSPEC06: true, SuiteSPEC17: true, SuiteGAP: true,
		SuiteCloud: true, SuiteML: true, SuiteQMM: true,
	}
	if len(suites) != len(want) {
		t.Errorf("suites = %v", suites)
	}
	for _, s := range suites {
		if !want[s] {
			t.Errorf("unexpected suite %q", s)
		}
		if len(BySuite(s)) == 0 {
			t.Errorf("suite %q empty", s)
		}
	}
	if got := len(BySuite(SuiteQMM)); got != 39 {
		t.Errorf("QMM workloads = %d, want 39", got)
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("milc")
	if err != nil || w.Name != "milc" {
		t.Errorf("ByName(milc) = %v, %v", w.Name, err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("ByName of unknown workload did not error")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, w := range All() {
		a := take(w.New(42), 200)
		b := take(w.New(42), 200)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: access %d differs between identical seeds", w.Name, i)
				break
			}
		}
	}
}

func TestGeneratorsProduceAlignedSaneAccesses(t *testing.T) {
	for _, w := range All() {
		accs := take(w.New(7), 2000)
		if len(accs) != 2000 {
			t.Errorf("%s: generator ended early (%d)", w.Name, len(accs))
			continue
		}
		for i, a := range accs {
			if a.Gap < 0 || a.Gap > 64 {
				t.Errorf("%s: access %d has gap %d", w.Name, i, a.Gap)
				break
			}
			if a.PC == 0 {
				t.Errorf("%s: access %d has zero PC", w.Name, i)
				break
			}
		}
	}
}

func TestStreamsWrapAtFootprint(t *testing.T) {
	r := NewStreams(1, 0, StreamSpec{Stride: 64, Footprint: 4 * mem.BlockSize})
	var seen []mem.Addr
	var a Access
	for i := 0; i < 8; i++ {
		r.Next(&a)
		seen = append(seen, a.VAddr)
	}
	if seen[0] != seen[4] {
		t.Errorf("stream did not wrap after footprint: %v", seen)
	}
}

func TestNegativeStrideStream(t *testing.T) {
	r := NewStreams(1, 0, StreamSpec{Stride: -64, Footprint: 1 << 20})
	var a Access
	r.Next(&a)
	first := a.VAddr
	r.Next(&a)
	if a.VAddr != first-64 {
		t.Errorf("negative stride: %#x then %#x", first, a.VAddr)
	}
}

func TestChaseVisitsAllNodes(t *testing.T) {
	const nodes = 64
	r := NewChase(9, 0, nodes, 64, 0)
	seen := map[mem.Addr]bool{}
	var a Access
	for i := 0; i < nodes; i++ {
		r.Next(&a)
		seen[a.VAddr] = true
	}
	// Sattolo's algorithm guarantees a single cycle through all nodes.
	if len(seen) != nodes {
		t.Errorf("chase visited %d distinct nodes in %d steps, want %d", len(seen), nodes, nodes)
	}
}

func TestRoadGraphPhases(t *testing.T) {
	r := NewRoadGraph(3, 1, 1000, 8, 50)
	accs := take(r, 300)
	var offs, vals, writes int
	for _, a := range accs {
		switch a.PC {
		case 0x440000:
			offs++
		case 0x440008:
			vals++
		}
		if a.Write {
			writes++
		}
	}
	if offs == 0 || vals == 0 {
		t.Errorf("graph phases missing: offsets=%d values=%d", offs, vals)
	}
	if vals < offs {
		t.Errorf("fewer neighbour accesses (%d) than nodes (%d)", vals, offs)
	}
	if writes == 0 {
		t.Error("no writes despite writeFrac=50")
	}
}

func TestMatmulColumnStride(t *testing.T) {
	const n = 512
	r := NewMatmul(1, 0, n)
	var bAddrs []mem.Addr
	var a Access
	for i := 0; i < 30; i++ {
		r.Next(&a)
		if a.PC == 0x450008 {
			bAddrs = append(bAddrs, a.VAddr)
		}
	}
	if len(bAddrs) < 2 {
		t.Fatal("no B-matrix accesses")
	}
	if bAddrs[1]-bAddrs[0] != n*8 {
		t.Errorf("B column stride = %d bytes, want %d", bAddrs[1]-bAddrs[0], n*8)
	}
}

func TestQMMVariantsDiffer(t *testing.T) {
	a := take(NewQMM(1), 100)
	b := take(NewQMM(999), 100)
	same := 0
	for i := range a {
		if a[i].VAddr == b[i].VAddr {
			same++
		}
	}
	if same == len(a) {
		t.Error("different QMM seeds produced identical traces")
	}
}

func TestHashServeMixesPatterns(t *testing.T) {
	r := NewHashServe(5, 1, 1<<24, 1<<24)
	accs := take(r, 500)
	pcs := map[mem.Addr]int{}
	for _, a := range accs {
		pcs[a.PC]++
	}
	if pcs[0x460000] == 0 {
		t.Error("no bucket probes")
	}
	if pcs[0x460008]+pcs[0x460010] == 0 {
		t.Error("no chain/blob accesses")
	}
}

func TestGatherLocalityKnob(t *testing.T) {
	local := take(NewGather(3, 0, 1<<20, 1<<26, 95), 4000)
	remote := take(NewGather(3, 0, 1<<20, 1<<26, 0), 4000)
	near := func(accs []Access) int {
		n := 0
		var prev mem.Addr
		for _, a := range accs {
			if a.PC != 0x430008 {
				continue
			}
			if prev != 0 && (a.VAddr-prev) < 1<<12 {
				n++
			}
			prev = a.VAddr
		}
		return n
	}
	if near(local) <= near(remote) {
		t.Errorf("locality knob ineffective: local=%d remote=%d", near(local), near(remote))
	}
}

func TestAllWorkloadsDescribed(t *testing.T) {
	for _, w := range All() {
		if w.Description == "" {
			t.Errorf("workload %q lacks a description", w.Name)
		}
	}
}
