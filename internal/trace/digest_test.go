package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFileDigest: the digest is deterministic, content-addressed (rewriting
// the same path with different bytes changes it), and carries the scheme
// prefix cache keys embed.
func TestFileDigest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.psat")
	if err := os.WriteFile(path, []byte("first contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	d1, err := FileDigest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(d1, "sha256:") {
		t.Errorf("digest %q lacks sha256: prefix", d1)
	}
	d2, err := FileDigest(path)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("digest not deterministic: %s vs %s", d1, d2)
	}

	// Re-recording the file under the same name is a different workload.
	if err := os.WriteFile(path, []byte("second contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	d3, err := FileDigest(path)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Error("digest unchanged after file contents changed")
	}

	if _, err := FileDigest(filepath.Join(t.TempDir(), "missing.psat")); err == nil {
		t.Error("digest of a missing file did not error")
	}
}
