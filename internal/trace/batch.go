package trace

// BatchReader is an optional extension of Reader: a source that can decode a
// slab of accesses per call, amortising the per-access interface dispatch of
// Next across a whole batch. The CPU's fetch loop type-asserts for it and
// consumes decoded slabs when available; plain Readers keep working
// unchanged.
type BatchReader interface {
	Reader
	// NextBatch fills dst from the front and returns the number of accesses
	// produced; fewer than len(dst) (including 0) means the trace drained.
	NextBatch(dst []Access) int
}

// fillBatch fills dst by repeated Next calls on a concrete reader type. The
// type parameter makes the Next call direct (devirtualised and inlinable into
// the decode loop) rather than an interface dispatch per access — the whole
// point of batching for the generator catalogue, whose per-access work is a
// handful of arithmetic ops.
func fillBatch[R Reader](r R, dst []Access) int {
	n := 0
	for n < len(dst) && r.Next(&dst[n]) {
		n++
	}
	return n
}

// NextBatch implements BatchReader for every catalogue generator and the
// trace-file replayer.
func (s *streamReader) NextBatch(dst []Access) int  { return fillBatch(s, dst) }
func (s *stencilReader) NextBatch(dst []Access) int { return fillBatch(s, dst) }
func (c *chaseReader) NextBatch(dst []Access) int   { return fillBatch(c, dst) }
func (g *gatherReader) NextBatch(dst []Access) int  { return fillBatch(g, dst) }
func (g *graphReader) NextBatch(dst []Access) int   { return fillBatch(g, dst) }
func (m *matmulReader) NextBatch(dst []Access) int  { return fillBatch(m, dst) }
func (h *hashReader) NextBatch(dst []Access) int    { return fillBatch(h, dst) }
func (q *qmmReader) NextBatch(dst []Access) int     { return fillBatch(q, dst) }
func (t *FileReader) NextBatch(dst []Access) int    { return fillBatch(t, dst) }
