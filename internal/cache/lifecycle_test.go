package cache

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/mem"
)

// orderObserver logs every callback in arrival order, for ordering tests.
type orderObserver struct {
	log []string
}

func (o *orderObserver) OnAccess(info AccessInfo) {
	o.log = append(o.log, fmt.Sprintf("access hit=%v", info.Hit))
}
func (o *orderObserver) OnPrefetchUseful(b mem.Addr, id uint8, _ int) {
	o.log = append(o.log, fmt.Sprintf("useful %#x", b))
}
func (o *orderObserver) OnPrefetchUnused(b mem.Addr, id uint8, _ int) {
	o.log = append(o.log, fmt.Sprintf("unused %#x", b))
}

// lifeObserver records lifecycle events (and nothing else).
type lifeObserver struct {
	NopObserver
	events []LifecycleEvent
	levels []string
}

func (o *lifeObserver) OnPrefetchLifecycle(cache string, ev LifecycleEvent) {
	o.events = append(o.events, ev)
	o.levels = append(o.levels, cache)
}

// TestObserverOrderingOnHitPath pins the callback contract on the hit path:
// a demand hit on a prefetched line reports usefulness first, then the
// access itself — both after hit/miss resolution, so the engine observes a
// consistent view (feedback before training).
func TestObserverOrderingOnHitPath(t *testing.T) {
	c := smallCache(&fixedPort{latency: 100})
	obs := &orderObserver{}
	c.SetObserver(obs)

	c.Access(&mem.Request{PAddr: 0x2000, Type: mem.Prefetch, FillL2: true}, 0)
	obs.log = nil
	c.Access(load(0x2000), 500)
	want := []string{"useful 0x2000", "access hit=true"}
	if !reflect.DeepEqual(obs.log, want) {
		t.Errorf("hit-path callback order = %v, want %v", obs.log, want)
	}
}

// TestObserverOrderingOnMissFillPath pins the miss path: the victim's
// unused-eviction feedback (from the fill) precedes the miss's OnAccess.
func TestObserverOrderingOnMissFillPath(t *testing.T) {
	c := New(Config{Name: "c", Sets: 1, Ways: 1, Latency: 1, MSHREntries: 4},
		&fixedPort{latency: 10})
	obs := &orderObserver{}
	c.SetObserver(obs)

	c.Access(&mem.Request{PAddr: 0x40, Type: mem.Prefetch, FillL2: true}, 0)
	obs.log = nil
	c.Access(load(0x80), 100) // evicts the unused prefetch, then fills
	want := []string{"unused 0x40", "access hit=false"}
	if !reflect.DeepEqual(obs.log, want) {
		t.Errorf("miss-path callback order = %v, want %v", obs.log, want)
	}
}

func TestLifecycleFillUseEvents(t *testing.T) {
	c := smallCache(&fixedPort{latency: 100})
	obs := &lifeObserver{}
	c.SetObserver(obs)

	pf := &mem.Request{PAddr: 0x2000, Type: mem.Prefetch, FillL2: true,
		PrefID: 3, PageSize: mem.Page2M, PageSizeKnown: true, CrossedPage: true}
	c.Access(pf, 5)
	if len(obs.events) != 1 {
		t.Fatalf("events after prefetch fill = %d, want 1", len(obs.events))
	}
	fill := obs.events[0]
	if fill.Kind != LifeFill || fill.Block != 0x2000 || fill.At != 5 || fill.Done != 115 {
		t.Errorf("fill event = %+v", fill)
	}
	if fill.Req.PageSize != mem.Page2M || !fill.Req.CrossedPage || fill.PrefID != 3 {
		t.Errorf("fill attribution = %+v", fill)
	}
	if obs.levels[0] != "L2" {
		t.Errorf("level = %q", obs.levels[0])
	}

	// On-time use.
	c.Access(load(0x2000), 500)
	use := obs.events[1]
	if use.Kind != LifeUse || use.Late || use.PrefID != 3 {
		t.Errorf("use event = %+v", use)
	}
}

func TestLifecycleLateUseAndEvict(t *testing.T) {
	c := New(Config{Name: "c", Sets: 1, Ways: 1, Latency: 1, MSHREntries: 4},
		&fixedPort{latency: 100})
	obs := &lifeObserver{}
	c.SetObserver(obs)

	// Late use: the demand lands while the fill is in flight.
	c.Access(&mem.Request{PAddr: 0x40, Type: mem.Prefetch, FillL2: true}, 0)
	c.Access(load(0x40), 10)
	if ev := obs.events[1]; ev.Kind != LifeUse || !ev.Late {
		t.Errorf("late use event = %+v", ev)
	}

	// Unused evict: a fresh prefetch evicted by a demand miss.
	c.Access(&mem.Request{PAddr: 0x80, Type: mem.Prefetch, FillL2: true}, 300)
	c.Access(load(0xc0), 500)
	var kinds []LifecycleKind
	for _, ev := range obs.events {
		kinds = append(kinds, ev.Kind)
	}
	want := []LifecycleKind{LifeFill, LifeUse, LifeFill, LifeEvict}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("lifecycle kinds = %v, want %v", kinds, want)
	}
	evict := obs.events[3]
	if evict.Block != 0x80 || evict.At != 501 {
		t.Errorf("evict event = %+v (At should be the evicting access's MSHR start)", evict)
	}
}

func TestLifecycleDropEvent(t *testing.T) {
	// One MSHR entry: the demand reserve (entries/4 = 0 free required) makes
	// any prefetch that finds the single entry busy... with 4 entries and
	// reserve 1, three in-flight demands leave one free entry ≤ reserve.
	c := New(Config{Name: "c", Sets: 16, Ways: 4, Latency: 1, MSHREntries: 4},
		&fixedPort{latency: 1000})
	obs := &lifeObserver{}
	c.SetObserver(obs)
	c.Access(load(0x1000), 0)
	c.Access(load(0x2000), 0)
	c.Access(load(0x3000), 0)
	c.Access(&mem.Request{PAddr: 0x4000, Type: mem.Prefetch, FillL2: true}, 0)
	if c.Stats.PrefetchDropped != 1 {
		t.Fatalf("PrefetchDropped = %d, want 1", c.Stats.PrefetchDropped)
	}
	last := obs.events[len(obs.events)-1]
	if last.Kind != LifeDrop || last.Block != 0x4000 {
		t.Errorf("drop event = %+v", last)
	}
}

func TestLifecycleSilentForNoFillLevel(t *testing.T) {
	c := smallCache(&fixedPort{latency: 100})
	obs := &lifeObserver{}
	c.SetObserver(obs)
	c.AccessNoFill(&mem.Request{PAddr: 0x4000, Type: mem.Prefetch}, 0)
	if len(obs.events) != 0 {
		t.Errorf("no-fill level emitted %d lifecycle events, want 0", len(obs.events))
	}
}

func TestTeeFansOutAndResolvesLifecycle(t *testing.T) {
	c := smallCache(&fixedPort{latency: 100})
	a := &orderObserver{}
	life := &lifeObserver{}
	c.SetObserver(Tee(nil, a, life))

	c.Access(&mem.Request{PAddr: 0x2000, Type: mem.Prefetch, FillL2: true}, 0)
	c.Access(load(0x2000), 500)

	if want := []string{"useful 0x2000", "access hit=true"}; !reflect.DeepEqual(a.log, want) {
		t.Errorf("teed observer log = %v, want %v", a.log, want)
	}
	if len(life.events) != 2 {
		t.Errorf("teed lifecycle observer saw %d events, want 2", len(life.events))
	}
	if Tee() != nil {
		t.Error("empty Tee should be nil")
	}
	if Tee(nil, a) != Observer(a) {
		t.Error("single-observer Tee should unwrap")
	}
}

// TestStatsEdgeCases pins the zero-denominator and late-prefetch corners of
// the derived metrics.
func TestStatsEdgeCases(t *testing.T) {
	// Late prefetches count as useful in accuracy but NOT in coverage
	// (coverage credits fully hidden misses only).
	s := Stats{PrefetchLate: 10, PrefetchUnused: 10}
	if got := s.Accuracy(); got != 0.5 {
		t.Errorf("late-only Accuracy = %v, want 0.5", got)
	}
	if got := s.Coverage(); got != 0 {
		t.Errorf("late-only Coverage = %v, want 0 (late ≠ eliminated miss)", got)
	}

	// Prefetching without a single outcome yet: all metrics well-defined.
	s = Stats{PrefetchIssued: 5}
	if s.Accuracy() != 0 || s.Coverage() != 0 {
		t.Error("outcome-free stats must yield zero accuracy/coverage")
	}

	// Coverage with useful prefetches and zero demand misses is 1.
	s = Stats{PrefetchUseful: 3}
	if got := s.Coverage(); got != 1 {
		t.Errorf("all-useful Coverage = %v, want 1", got)
	}

	// AvgDemandLatency: zero count is 0, not NaN.
	s = Stats{DemandLatencySum: 1000}
	if got := s.AvgDemandLatency(); got != 0 {
		t.Errorf("zero-count AvgDemandLatency = %v", got)
	}
	if got := (&Stats{DemandMisses: 5}).MPKI(0); got != 0 {
		t.Errorf("zero-instruction MPKI = %v", got)
	}
}
