package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// fixedPort is a next level with constant latency that records requests.
type fixedPort struct {
	latency mem.Cycle
	reqs    []mem.Request
}

func (p *fixedPort) Access(req *mem.Request, at mem.Cycle) mem.Cycle {
	p.reqs = append(p.reqs, *req)
	return at + p.latency
}

func smallCache(next mem.Port) *Cache {
	return New(Config{Name: "L2", Sets: 16, Ways: 4, Latency: 10, MSHREntries: 4}, next)
}

func load(addr mem.Addr) *mem.Request {
	return &mem.Request{PAddr: addr, Type: mem.Load}
}

func TestMissThenHit(t *testing.T) {
	next := &fixedPort{latency: 100}
	c := smallCache(next)

	done := c.Access(load(0x1000), 0)
	if done != 110 {
		t.Errorf("miss completion = %d, want 110 (10 lookup + 100 next)", done)
	}
	if c.Stats.DemandMisses != 1 {
		t.Errorf("DemandMisses = %d", c.Stats.DemandMisses)
	}

	done = c.Access(load(0x1000), 200)
	if done != 210 {
		t.Errorf("hit completion = %d, want 210", done)
	}
	if c.Stats.DemandHits != 1 {
		t.Errorf("DemandHits = %d", c.Stats.DemandHits)
	}
	if len(next.reqs) != 1 {
		t.Errorf("next level saw %d requests, want 1", len(next.reqs))
	}
}

func TestHitUnderFillMerges(t *testing.T) {
	next := &fixedPort{latency: 100}
	c := smallCache(next)
	c.Access(load(0x1000), 0) // fill completes at 110
	// A second access at cycle 50 (fill in flight) completes at fill time,
	// without a second request below.
	done := c.Access(load(0x1040), 50)
	_ = done
	done = c.Access(load(0x1000), 50)
	if done != 110 {
		t.Errorf("merged completion = %d, want 110", done)
	}
	if got := len(next.reqs); got != 2 {
		t.Errorf("next level saw %d requests, want 2", got)
	}
}

func TestLRUEviction(t *testing.T) {
	next := &fixedPort{latency: 1}
	c := New(Config{Name: "c", Sets: 1, Ways: 2, Latency: 1, MSHREntries: 8}, next)
	a, b, d := mem.Addr(0x0), mem.Addr(0x40), mem.Addr(0x80)
	c.Access(load(a), 0)
	c.Access(load(b), 10)
	c.Access(load(a), 20) // a is MRU
	c.Access(load(d), 30) // evicts b
	if !c.Contains(a) {
		t.Error("MRU line evicted")
	}
	if c.Contains(b) {
		t.Error("LRU line survived")
	}
	if !c.Contains(d) {
		t.Error("new line not present")
	}
}

func TestMSHRStallWhenFull(t *testing.T) {
	next := &fixedPort{latency: 1000}
	c := New(Config{Name: "c", Sets: 64, Ways: 4, Latency: 0, MSHREntries: 2}, next)
	c.Access(load(0x0000), 0) // occupies MSHR 0 until 1000
	c.Access(load(0x1000), 0) // occupies MSHR 1 until 1000
	done := c.Access(load(0x2000), 0)
	if done != 2000 {
		t.Errorf("third concurrent miss completed at %d, want 2000 (stalled on MSHR)", done)
	}
}

func TestStoreMarksDirtyAndWritebackOnEvict(t *testing.T) {
	next := &fixedPort{latency: 1}
	c := New(Config{Name: "c", Sets: 1, Ways: 1, Latency: 1, MSHREntries: 2}, next)
	c.Access(&mem.Request{PAddr: 0x0, Type: mem.Store}, 0)
	c.Access(load(0x40), 100) // evicts dirty line
	if c.Stats.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", c.Stats.Writebacks)
	}
	var sawWB bool
	for _, r := range next.reqs {
		if r.Type == mem.Writeback && r.PAddr == 0x0 {
			sawWB = true
		}
	}
	if !sawWB {
		t.Error("writeback did not reach next level")
	}
}

func TestPrefetchFillAndUseful(t *testing.T) {
	next := &fixedPort{latency: 100}
	c := smallCache(next)
	pf := &mem.Request{PAddr: 0x2000, Type: mem.Prefetch, FillL2: true, PrefID: 1}
	c.Access(pf, 0)
	if c.Stats.PrefetchIssued != 1 {
		t.Errorf("PrefetchIssued = %d", c.Stats.PrefetchIssued)
	}
	// Demand hit long after fill: useful.
	c.Access(load(0x2000), 500)
	if c.Stats.PrefetchUseful != 1 {
		t.Errorf("PrefetchUseful = %d", c.Stats.PrefetchUseful)
	}
	// Second demand hit must not double-count.
	c.Access(load(0x2000), 600)
	if c.Stats.PrefetchUseful != 1 {
		t.Errorf("PrefetchUseful double-counted: %d", c.Stats.PrefetchUseful)
	}
}

func TestLatePrefetch(t *testing.T) {
	next := &fixedPort{latency: 100}
	c := smallCache(next)
	c.Access(&mem.Request{PAddr: 0x2000, Type: mem.Prefetch, FillL2: true}, 0) // ready at 110
	done := c.Access(load(0x2000), 50)
	if done != 110 {
		t.Errorf("late-prefetch demand completed at %d, want 110", done)
	}
	if c.Stats.PrefetchLate != 1 {
		t.Errorf("PrefetchLate = %d, want 1", c.Stats.PrefetchLate)
	}
	if c.Stats.PrefetchUseful != 0 {
		t.Errorf("PrefetchUseful = %d, want 0", c.Stats.PrefetchUseful)
	}
}

func TestPrefetchHitIsSilentDrop(t *testing.T) {
	next := &fixedPort{latency: 100}
	c := smallCache(next)
	c.Access(load(0x3000), 0)
	hits := c.Stats.Hits
	c.Access(&mem.Request{PAddr: 0x3000, Type: mem.Prefetch, FillL2: true}, 200)
	if c.Stats.Hits != hits {
		t.Error("prefetch hit counted in Hits")
	}
	if len(next.reqs) != 1 {
		t.Error("prefetch to present block went below")
	}
}

func TestAccessNoFillSkipsSelf(t *testing.T) {
	next := &fixedPort{latency: 100}
	c := smallCache(next)
	c.AccessNoFill(&mem.Request{PAddr: 0x4000, Type: mem.Prefetch}, 0)
	if c.Contains(0x4000) {
		t.Error("AccessNoFill installed the block")
	}
	if len(next.reqs) != 1 {
		t.Errorf("request did not go below: %d", len(next.reqs))
	}
	if c.Stats.PrefetchIssued != 1 {
		t.Errorf("PrefetchIssued = %d", c.Stats.PrefetchIssued)
	}
}

type recordingObserver struct {
	NopObserver
	accesses []AccessInfo
	useful   []mem.Addr
	unused   []mem.Addr
	prefIDs  []uint8
}

func (r *recordingObserver) OnAccess(info AccessInfo) { r.accesses = append(r.accesses, info) }
func (r *recordingObserver) OnPrefetchUseful(b mem.Addr, id uint8, _ int) {
	r.useful = append(r.useful, b)
	r.prefIDs = append(r.prefIDs, id)
}
func (r *recordingObserver) OnPrefetchUnused(b mem.Addr, id uint8, _ int) {
	r.unused = append(r.unused, b)
}

func TestObserverEvents(t *testing.T) {
	next := &fixedPort{latency: 10}
	c := New(Config{Name: "c", Sets: 1, Ways: 1, Latency: 1, MSHREntries: 4}, next)
	obs := &recordingObserver{}
	c.SetObserver(obs)

	c.Access(load(0x0), 0)
	if len(obs.accesses) != 1 || obs.accesses[0].Hit {
		t.Fatalf("observer did not see the demand miss: %+v", obs.accesses)
	}
	// Prefetch requests are invisible to OnAccess.
	c.Access(&mem.Request{PAddr: 0x40, Type: mem.Prefetch, FillL2: true, PrefID: 7}, 10)
	if len(obs.accesses) != 1 {
		t.Error("observer saw a prefetch request")
	}
	// Demand hit on the prefetched line reports usefulness with the ID.
	c.Access(load(0x40), 100)
	if len(obs.useful) != 1 || obs.useful[0] != 0x40 || obs.prefIDs[0] != 7 {
		t.Errorf("useful event wrong: %v ids=%v", obs.useful, obs.prefIDs)
	}
	// Evicting an unused prefetched line reports it.
	c.Access(&mem.Request{PAddr: 0x80, Type: mem.Prefetch, FillL2: true}, 200)
	c.Access(load(0xc0), 300) // single-way set: evicts 0x80 unused
	if len(obs.unused) != 1 || obs.unused[0] != 0x80 {
		t.Errorf("unused event wrong: %v", obs.unused)
	}
}

func TestPageWalkCountsAsDemandTraffic(t *testing.T) {
	next := &fixedPort{latency: 10}
	c := smallCache(next)
	c.Access(&mem.Request{PAddr: 0x5000, Type: mem.PageWalk}, 0)
	if c.Stats.DemandMisses != 1 {
		t.Errorf("page walk not accounted in demand misses: %d", c.Stats.DemandMisses)
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	var s Stats
	s.PrefetchUseful = 30
	s.PrefetchLate = 10
	s.PrefetchUnused = 10
	if got := s.Accuracy(); got != 0.8 {
		t.Errorf("Accuracy = %v, want 0.8", got)
	}
	s.DemandMisses = 70
	if got := s.Coverage(); got != 0.3 {
		t.Errorf("Coverage = %v, want 0.3", got)
	}
	s.DemandLatencySum = 500
	s.DemandCount = 50
	if got := s.AvgDemandLatency(); got != 10 {
		t.Errorf("AvgDemandLatency = %v", got)
	}
	if got := s.MPKI(1000); got != 70 {
		t.Errorf("MPKI = %v", got)
	}
	var empty Stats
	if empty.Accuracy() != 0 || empty.Coverage() != 0 || empty.AvgDemandLatency() != 0 || empty.MPKI(0) != 0 {
		t.Error("empty stats should yield zero metrics")
	}
}

// Property: a cache never holds two lines for the same block, and Contains
// agrees with a shadow set after an arbitrary access sequence.
func TestCacheShadowConsistency(t *testing.T) {
	f := func(seq []uint16) bool {
		next := &fixedPort{latency: 5}
		c := New(Config{Name: "c", Sets: 4, Ways: 2, Latency: 1, MSHREntries: 8}, next)
		for i, raw := range seq {
			addr := mem.Addr(raw) << mem.BlockBits
			c.Access(load(addr), mem.Cycle(i*10))
			if !c.Contains(addr) {
				return false // just-accessed block must be present
			}
		}
		// No duplicate tags within any set.
		for s := 0; s < 4; s++ {
			seen := map[mem.Addr]bool{}
			for _, l := range c.setLines(s) {
				if !l.valid {
					continue
				}
				if seen[l.block] {
					return false
				}
				seen[l.block] = true
				if c.SetIndex(l.block) != s {
					return false // line in wrong set
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: completion time is never before issue time plus lookup latency.
func TestCompletionMonotoneProperty(t *testing.T) {
	f := func(seq []uint16) bool {
		next := &fixedPort{latency: 50}
		c := smallCache(next)
		at := mem.Cycle(0)
		for _, raw := range seq {
			addr := mem.Addr(raw) << mem.BlockBits
			done := c.Access(load(addr), at)
			if done < at+10 {
				return false
			}
			at += 3
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
