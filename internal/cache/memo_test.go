package cache

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// memoPair constructs two identically configured caches over independent
// recording next levels: one built with the fused path (line-hit memo and
// packed partial-tag probe armed) and one legacy. mem.FusedPath is restored
// before returning, so the pair can be built inside property iterations.
func memoPair(sets, ways int) (fused, legacy *Cache, fn, ln *fixedPort) {
	saved := mem.FusedPath
	defer func() { mem.FusedPath = saved }()
	fn, ln = &fixedPort{latency: 40}, &fixedPort{latency: 40}
	cfg := Config{Name: "c", Sets: sets, Ways: ways, Latency: 4, MSHREntries: 4}
	mem.FusedPath = true
	fused = New(cfg, fn)
	mem.FusedPath = false
	legacy = New(cfg, ln)
	return
}

// TestMemoDifferentialProperty drives random mixed-type request sequences —
// heavy set conflict (2 sets × 2 ways over 32 blocks), repeated same-cycle
// accesses, stores, prefetches and writebacks — through a fused cache and a
// legacy cache in lockstep. Completion cycles, the full stats block, and the
// request stream reaching the next level must be identical at every step: the
// memo, the packed probe and the miss-memoization are optimisations, never
// semantic changes.
func TestMemoDifferentialProperty(t *testing.T) {
	types := [4]mem.AccessType{mem.Load, mem.Store, mem.Prefetch, mem.Writeback}
	f := func(seq []uint16) bool {
		fused, legacy, fn, ln := memoPair(2, 2)
		at := mem.Cycle(0)
		for _, raw := range seq {
			addr := mem.Addr(raw&0x1F) << mem.BlockBits
			typ := types[(raw>>5)&3]
			// Advance time by 0..31 cycles: zero keeps repeat accesses on
			// the same cycle, small steps land inside in-flight fills.
			at += mem.Cycle(raw >> 11)
			df := fused.Access(&mem.Request{PAddr: addr, Type: typ}, at)
			dl := legacy.Access(&mem.Request{PAddr: addr, Type: typ}, at)
			if df != dl {
				t.Logf("addr=%#x type=%v at=%d: fused done %d, legacy done %d",
					addr, typ, at, df, dl)
				return false
			}
			if fused.Stats != legacy.Stats {
				t.Logf("stats diverged after addr=%#x type=%v at=%d:\nfused  %+v\nlegacy %+v",
					addr, typ, at, fused.Stats, legacy.Stats)
				return false
			}
		}
		if !reflect.DeepEqual(fn.reqs, ln.reqs) {
			t.Logf("next-level traffic diverged:\nfused  %d reqs\nlegacy %d reqs",
				len(fn.reqs), len(ln.reqs))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// memoCache builds a single-set fused cache so every access conflicts, with a
// slow next level so fills and misses are clearly distinguishable.
func memoCache(t *testing.T, ways int) (*Cache, *fixedPort) {
	t.Helper()
	saved := mem.FusedPath
	mem.FusedPath = true
	t.Cleanup(func() { mem.FusedPath = saved })
	next := &fixedPort{latency: 100}
	c := New(Config{Name: "c", Sets: 1, Ways: ways, Latency: 10, MSHREntries: 8}, next)
	return c, next
}

// TestMemoInvalidatedByEviction: once a fill evicts the memoed line, a repeat
// access must miss and go below — the memo may never serve a block the set no
// longer holds.
func TestMemoInvalidatedByEviction(t *testing.T) {
	c, next := memoCache(t, 2)
	a, b, d := mem.Addr(0x0), mem.Addr(0x40), mem.Addr(0x80)
	c.Access(load(a), 0)   // miss, fills way 0
	c.Access(load(a), 200) // hit: arms the memo
	c.Access(load(a), 300) // memo fast path
	if got := len(next.reqs); got != 1 {
		t.Fatalf("next saw %d requests before eviction, want 1", got)
	}
	c.Access(load(b), 400) // fills way 1 (bumps the set generation)
	c.Access(load(d), 600) // evicts a (b is more recent)
	if c.Contains(a) {
		t.Fatal("a still present after conflict fills")
	}
	misses := c.Stats.DemandMisses
	c.Access(load(a), 1000)
	if c.Stats.DemandMisses != misses+1 {
		t.Error("access to evicted memoed block did not miss")
	}
	if got := len(next.reqs); got != 4 {
		t.Errorf("next saw %d requests, want 4 (evicted block must refetch)", got)
	}
}

// TestMemoInvalidationPreservesRecency: the memo fast path skips the LRU
// touch, which is exact only because any other access to the set invalidates
// the memo first. This pins the exactness: after memo hits on a, a hit on b
// must invalidate the memo so the following hit on a goes through the full
// path and bumps a's recency — the next fill then evicts b, not a.
func TestMemoInvalidationPreservesRecency(t *testing.T) {
	c, _ := memoCache(t, 2)
	a, b, d := mem.Addr(0x0), mem.Addr(0x40), mem.Addr(0x80)
	c.Access(load(a), 0)
	c.Access(load(b), 200)
	c.Access(load(a), 400) // hit: arms the memo
	c.Access(load(a), 500) // memo fast path (no LRU touch)
	c.Access(load(b), 600) // touches b, invalidates the memo
	c.Access(load(a), 700) // full hit path: a becomes MRU again
	c.Access(load(d), 800) // must evict b, the older touch
	if !c.Contains(a) {
		t.Error("a evicted: memo hit failed to restore recency after invalidation")
	}
	if c.Contains(b) {
		t.Error("b survived: victim selection diverged from true LRU order")
	}
}

// TestMemoStoreDirtyReachesWriteback: a store served by the memo fast path
// must still mark the line dirty, so its eventual eviction writes back.
func TestMemoStoreDirtyReachesWriteback(t *testing.T) {
	c, next := memoCache(t, 1)
	a, b := mem.Addr(0x0), mem.Addr(0x40)
	c.Access(load(a), 0)
	c.Access(load(a), 200)                                 // arms the memo
	c.Access(&mem.Request{PAddr: a, Type: mem.Store}, 300) // memo path: dirty
	c.Access(load(b), 400)                                 // evicts a
	if c.Stats.Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1", c.Stats.Writebacks)
	}
	var wb int
	for _, r := range next.reqs {
		if r.Type == mem.Writeback && mem.BlockAlign(r.PAddr) == a {
			wb++
		}
	}
	if wb != 1 {
		t.Errorf("next saw %d writebacks of a, want 1", wb)
	}
}

// TestMemoPrefetchSilentDrop: prefetching the memoed block is a silent drop —
// no stats movement, no downstream traffic, and the line stays resident.
func TestMemoPrefetchSilentDrop(t *testing.T) {
	c, next := memoCache(t, 2)
	a := mem.Addr(0x0)
	c.Access(load(a), 0)
	c.Access(load(a), 200) // arms the memo
	stats, reqs := c.Stats, len(next.reqs)
	done := c.Access(&mem.Request{PAddr: a, Type: mem.Prefetch}, 300)
	if done != 310 {
		t.Errorf("prefetch drop completion = %d, want 310 (lookup latency only)", done)
	}
	if c.Stats != stats {
		t.Errorf("silent prefetch drop moved stats:\nbefore %+v\nafter  %+v", stats, c.Stats)
	}
	if len(next.reqs) != reqs {
		t.Error("silent prefetch drop reached the next level")
	}
	if !c.Contains(a) {
		t.Error("memoed block gone after prefetch drop")
	}
}

// TestMemoNotArmedWithAccessObserver: levels with an OnAccess consumer (the
// prefetch engine) must never take the memo fast path — every demand access
// there has to reach the observer.
func TestMemoNotArmedWithAccessObserver(t *testing.T) {
	c, _ := memoCache(t, 2)
	obs := &recordingObserver{}
	c.SetObserver(obs)
	a := mem.Addr(0x0)
	c.Access(load(a), 0)
	c.Access(load(a), 200)
	c.Access(load(a), 300)
	c.Access(load(a), 400)
	if got := len(obs.accesses); got != 4 {
		t.Errorf("observer saw %d accesses, want 4 (memo must stay disarmed)", got)
	}
}
