package cache

import (
	"fmt"

	"repro/internal/mem"
)

// Descent is the fused entry to one core's memory-hierarchy slice: the
// precomputed level array (top first) over which every demand access and
// page-walk reference descends. mem.FusedPath holds the construction-time
// toggle; with it on, New links each level's devirtualized next-level
// pointer, so the chain Descent validates here runs core→L1→L2→LLC→DRAM
// entirely through direct calls — the only interface dispatch left on a miss
// is the final hop into DRAM. Descent implements mem.Port so it can serve as
// the walker's target, but its Access is a concrete method — callers holding
// a *Descent (the core's memory system) reach the top cache without any
// interface dispatch.
type Descent struct {
	top    *Cache
	levels []*Cache
}

// NewDescent assembles the descent over levels (top first), validating that
// each level's next Port is the following level: the fused path devirtualizes
// exactly this chain, so a mismatched assembly would silently fall back to
// interface dispatch mid-descent.
func NewDescent(levels ...*Cache) *Descent {
	if len(levels) == 0 {
		panic("cache: empty descent")
	}
	for i := 0; i < len(levels)-1; i++ {
		if next, ok := levels[i].next.(*Cache); !ok || next != levels[i+1] {
			panic(fmt.Sprintf("cache: descent level %s does not chain to %s",
				levels[i].cfg.Name, levels[i+1].cfg.Name))
		}
	}
	return &Descent{top: levels[0], levels: levels}
}

// Access implements mem.Port: descend from the top level.
func (d *Descent) Access(req *mem.Request, at mem.Cycle) mem.Cycle {
	return d.top.access(req, at, true)
}

// Levels returns the precomputed level array, top first.
func (d *Descent) Levels() []*Cache { return d.levels }
