// Package cache implements the set-associative cache substrate: tag arrays
// with LRU replacement, Miss Status Holding Registers (MSHRs) that bound
// outstanding misses and merge requests to in-flight blocks, prefetch fills
// with per-line provenance bits (used by the paper's set-dueling annotation),
// and observer hooks through which the prefetching engine in internal/core
// watches accesses and receives usefulness feedback.
//
// Timing model: Access computes a completion cycle by chaining through the
// next-level Port. Resource contention (MSHR occupancy, lower-level banks and
// buses) is modelled with next-free times, which preserves queueing behaviour
// while letting the simulator skip idle cycles.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// ReplPolicy selects the replacement policy of a cache.
type ReplPolicy uint8

// Replacement policies. The paper's evaluation uses LRU at every level; the
// alternatives exist to show the page-size machinery is replacement-agnostic.
const (
	// ReplLRU is least-recently-used (the evaluation default, Table I).
	ReplLRU ReplPolicy = iota
	// ReplSRRIP is static re-reference interval prediction (2-bit RRPV).
	ReplSRRIP
	// ReplRandom picks victims pseudo-randomly.
	ReplRandom
)

// String implements fmt.Stringer.
func (p ReplPolicy) String() string {
	switch p {
	case ReplSRRIP:
		return "srrip"
	case ReplRandom:
		return "random"
	}
	return "lru"
}

// line is one cache block's state.
type line struct {
	block      mem.Addr // block-aligned address (tag + index)
	valid      bool
	dirty      bool
	prefetched bool // filled by a prefetch and not yet demanded
	prefID     uint8
	core       uint8     // core that triggered the fill
	rrpv       uint8     // SRRIP re-reference prediction value
	readyAt    mem.Cycle // fill completion; hits before this merge with the fill
}

// Config describes one cache level.
type Config struct {
	Name        string
	Sets, Ways  int
	Latency     mem.Cycle // tag+data access latency
	MSHREntries int

	// Replacement selects the victim policy (LRU by default).
	Replacement ReplPolicy

	// PromoteLatency enables prefetch-to-demand MSHR promotion: a demand
	// that merges with an in-flight *prefetch* fill re-issues the request
	// downstream at demand priority and completes at the earlier of the
	// prefetch's promised fill and the re-issued demand path (bounded below
	// by issue + Latency + PromoteLatency when there is no next level).
	// Zero disables promotion. Merges with in-flight demand fills are never
	// accelerated.
	PromoteLatency mem.Cycle
}

// Stats aggregates a cache's counters.
type Stats struct {
	Hits, Misses uint64 // all request types
	DemandHits   uint64
	DemandMisses uint64

	PrefetchIssued  uint64 // prefetch requests that allocated an MSHR here
	PrefetchUseful  uint64 // demand hits on prefetched lines
	PrefetchLate    uint64 // demand merged with an in-flight prefetch fill
	PrefetchUnused  uint64 // prefetched lines evicted without a demand hit
	PrefetchDropped uint64 // prefetches dropped for lack of a free MSHR entry

	Writebacks uint64

	// DemandLatencySum accumulates completion−issue for demand accesses so
	// Figure 10's access-latency metric can be derived.
	DemandLatencySum uint64
	DemandCount      uint64
}

// MPKI returns demand misses per kilo-instruction given an instruction count.
func (s *Stats) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.DemandMisses) / float64(instructions) * 1000
}

// AvgDemandLatency returns the mean demand access latency in cycles.
func (s *Stats) AvgDemandLatency() float64 {
	if s.DemandCount == 0 {
		return 0
	}
	return float64(s.DemandLatencySum) / float64(s.DemandCount)
}

// Accuracy returns useful/(useful+unused) prefetches, the paper's prefetching
// accuracy metric. Late prefetches count as useful.
func (s *Stats) Accuracy() float64 {
	denom := s.PrefetchUseful + s.PrefetchLate + s.PrefetchUnused
	if denom == 0 {
		return 0
	}
	return float64(s.PrefetchUseful+s.PrefetchLate) / float64(denom)
}

// Coverage returns the fraction of would-be demand misses eliminated by
// prefetching: useful / (useful + demand misses).
func (s *Stats) Coverage() float64 {
	denom := float64(s.PrefetchUseful) + float64(s.DemandMisses)
	if denom == 0 {
		return 0
	}
	return float64(s.PrefetchUseful) / denom
}

// AccessInfo is what an Observer sees for each access processed by the cache.
type AccessInfo struct {
	Req  *mem.Request
	Hit  bool
	At   mem.Cycle // issue cycle
	Done mem.Cycle // completion cycle
	Set  int       // set index of the accessed block
}

// Observer receives access and prefetch-feedback events. The prefetching
// engine (internal/core) implements it; all methods are optional via the
// embeddable NopObserver.
type Observer interface {
	// OnAccess fires for every request the cache processes (after hit/miss
	// resolution). Prefetch requests do not generate OnAccess.
	OnAccess(info AccessInfo)
	// OnPrefetchUseful fires when a demand access hits a prefetched line.
	// core is the core that issued the prefetch (relevant at a shared LLC).
	OnPrefetchUseful(block mem.Addr, prefID uint8, core int)
	// OnPrefetchUnused fires when a prefetched line is evicted untouched.
	OnPrefetchUnused(block mem.Addr, prefID uint8, core int)
}

// AccessSink is an optional Observer refinement: an observer whose OnAccess
// is a no-op (a feedback-only observer, like the LLC's prefetch-outcome
// router) returns false from WantsOnAccess, and the cache then skips the
// per-access OnAccess dispatch entirely. A level with no OnAccess consumer is
// also what arms the line-hit memo there. Observers without the method are
// assumed to consume every access.
type AccessSink interface{ WantsOnAccess() bool }

// wantsOnAccess resolves an observer's OnAccess interest (nil: none).
func wantsOnAccess(o Observer) bool {
	if o == nil {
		return false
	}
	if s, ok := o.(AccessSink); ok {
		return s.WantsOnAccess()
	}
	return true
}

// NopObserver implements Observer with no-ops; embed it to implement a
// subset of the interface.
type NopObserver struct{}

// OnAccess implements Observer.
func (NopObserver) OnAccess(AccessInfo) {}

// OnPrefetchUseful implements Observer.
func (NopObserver) OnPrefetchUseful(mem.Addr, uint8, int) {}

// OnPrefetchUnused implements Observer.
func (NopObserver) OnPrefetchUnused(mem.Addr, uint8, int) {}

// LifecycleKind classifies a prefetch lifecycle transition.
type LifecycleKind uint8

// Lifecycle transitions reported through LifecycleObserver.
const (
	// LifeFill is an issued prefetch allocating here: At is the issue cycle,
	// Done the fill-completion cycle.
	LifeFill LifecycleKind = iota + 1
	// LifeUse is the first demand hit on a prefetched line (Late: the hit
	// merged with the still-in-flight fill).
	LifeUse
	// LifeEvict is a prefetched line evicted without a demand hit.
	LifeEvict
	// LifeDrop is a prefetch dropped at the MSHR demand reserve.
	LifeDrop
)

// LifecycleEvent is one prefetch lifecycle transition at a cache.
type LifecycleEvent struct {
	Kind  LifecycleKind
	Block mem.Addr
	At    mem.Cycle // issue cycle (fill/drop) or event cycle (use/evict)
	Done  mem.Cycle // fill completion (fill events only)
	Late  bool      // use merged with the in-flight fill
	// Req is the request driving the transition: the prefetch itself for
	// fill/drop, the demand access for use, the fill triggering the eviction
	// for evict. It carries the page-size and boundary-crossing attribution.
	Req    *mem.Request
	PrefID uint8
	Core   uint8
}

// LifecycleObserver is an optional extension of Observer: an observer that
// also implements it receives prefetch lifecycle events. The cache resolves
// the type assertion once in SetObserver, so the hot path pays only a nil
// check when tracing is off.
type LifecycleObserver interface {
	OnPrefetchLifecycle(cache string, ev LifecycleEvent)
}

// tee fans observer callbacks out to several observers in order; lifecycle
// events go to the children that implement LifecycleObserver, OnAccess to
// the children that declared interest in it.
type tee struct {
	obs  []Observer
	acc  []Observer
	life []LifecycleObserver
}

// Tee combines observers into one (nil entries are skipped). A single
// non-nil observer is returned unwrapped, so the common untraced
// configuration pays no indirection.
func Tee(os ...Observer) Observer {
	t := &tee{}
	for _, o := range os {
		if o == nil {
			continue
		}
		t.obs = append(t.obs, o)
		if wantsOnAccess(o) {
			t.acc = append(t.acc, o)
		}
		if lo, ok := o.(LifecycleObserver); ok {
			t.life = append(t.life, lo)
		}
	}
	switch {
	case len(t.obs) == 0:
		return nil
	case len(t.obs) == 1:
		return t.obs[0] // SetObserver re-resolves LifecycleObserver itself
	}
	return t
}

// WantsOnAccess implements AccessSink: a tee consumes accesses only when one
// of its children does.
func (t *tee) WantsOnAccess() bool { return len(t.acc) > 0 }

// OnAccess implements Observer.
func (t *tee) OnAccess(info AccessInfo) {
	for _, o := range t.acc {
		o.OnAccess(info)
	}
}

// OnPrefetchUseful implements Observer.
func (t *tee) OnPrefetchUseful(block mem.Addr, prefID uint8, core int) {
	for _, o := range t.obs {
		o.OnPrefetchUseful(block, prefID, core)
	}
}

// OnPrefetchUnused implements Observer.
func (t *tee) OnPrefetchUnused(block mem.Addr, prefID uint8, core int) {
	for _, o := range t.obs {
		o.OnPrefetchUnused(block, prefID, core)
	}
}

// OnPrefetchLifecycle implements LifecycleObserver.
func (t *tee) OnPrefetchLifecycle(cache string, ev LifecycleEvent) {
	for _, o := range t.life {
		o.OnPrefetchLifecycle(cache, ev)
	}
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg   Config
	lines []line // sets × ways
	// tags mirrors lines[i].block for valid ways (tagInvalid otherwise) in a
	// dense parallel array: the lookup scan touches 8 contiguous bytes per
	// way instead of a whole line struct, which is most of what find costs on
	// miss-heavy workloads.
	tags []mem.Addr
	// lrus mirrors each way's last-touch tick in the same dense layout, so the
	// LRU victim scan reads 8 contiguous bytes per way like the tag scan does.
	lrus []uint64
	tick uint64

	// setMask is Sets-1 when Sets is a power of two, replacing the modulo in
	// SetIndex with a mask on the hot path; zero selects the generic path
	// (the shared LLC's sets scale with core count and may not stay pow2).
	setMask mem.Addr

	// wbPool supplies the scratch request for dirty-victim writebacks: the
	// downstream Access completes synchronously and never retains the request.
	wbPool mem.RequestPool
	// prPool supplies the scratch copy for prefetch-promotion re-issues, the
	// same synchronous-downstream lifetime as wbPool.
	prPool mem.RequestPool

	// mshrFree holds the next-free cycle of each MSHR entry. A request that
	// finds every entry busy stalls until the earliest one frees — this is
	// how MSHR pressure throttles both demands and prefetches (Fig. 12A).
	mshrFree []mem.Cycle
	// pfDropUntil is a proven drop watermark for the prefetch reserve check:
	// when the last full scan found free ≤ reserve, no entry frees before the
	// earliest busy completion seen, and slot values only ever grow — so any
	// prefetch arriving before that cycle must drop too, without rescanning.
	pfDropUntil mem.Cycle
	// mshrMaxDone is the largest completion time ever written into mshrFree
	// (monotone upper bound on every slot): a request at or past it proves the
	// whole pool free without a scan.
	mshrMaxDone mem.Cycle

	// lastMissBlock/lastMissTick memoize the most recent failed lookup. Tags
	// change only in fill, which bumps tick, so an equal (block, tick) pair
	// proves the block is still absent: the Contains probe right before a
	// prefetch issue makes the issue's own lookup a guaranteed miss, and the
	// memo skips that second set scan.
	lastMissBlock mem.Addr
	lastMissTick  uint64
	// mru[s] is the way of set s's most recent hit or fill. Tags are unique
	// within a set, so probing it first returns the same index as the scan —
	// and consecutive accesses inside one block (the common case for demand
	// streams) resolve in a single compare.
	mru []int32

	// partial packs one hashed byte per way into uint64 words (partialWords
	// words per set), so a probe rejects a whole set with one XOR and a SWAR
	// zero-byte test and verifies only flagged candidate ways against the full
	// tag array. Nil on the legacy (non-fused) path, which scans tags.
	partial      []uint64
	partialWords int

	// setGen[s] counts every replacement-state mutation of set s (any touch
	// or fill). The hit memo records the generation it was formed under; an
	// unchanged generation proves nothing in the set moved since, so the
	// memoed way, its recency, and the victim ordering are all still exact.
	setGen []uint64
	// memoBlock..memoReady are the line-grain hit memo (fused path, levels
	// with no OnAccess consumer): a completed demand hit on a non-prefetched
	// line records (block, set, way, generation), and while the generation
	// holds, repeat accesses to the same block short-circuit the tag probe,
	// the replacement update, and the observer dispatch. Skipping the LRU
	// tick is exact: a valid memo proves the set untouched since formation,
	// so the memoed way stays the set's unique most-recent way — and the
	// victim scan only compares recencies within a set — whether or not the
	// repeat hits bump it further.
	memoBlock mem.Addr
	memoSet   int
	memoGI    int
	memoGen   uint64
	memoReady mem.Cycle

	// fused records mem.FusedPath at construction (the toggle is
	// construction-time, like vm.FlatVM).
	fused bool

	next mem.Port
	// nextCache is the devirtualized next level, linked at construction when
	// the fused path is on and next is itself a *Cache: the miss descent then
	// runs through direct calls instead of interface dispatch.
	nextCache *Cache
	observer  Observer
	// accObs is the observer iff it consumes OnAccess (see AccessSink);
	// feedback-only observers leave it nil and the hot path skips dispatch.
	accObs Observer
	// life is the observer's LifecycleObserver facet, resolved once in
	// SetObserver: the access path pays a nil check, never a type assertion.
	life LifecycleObserver

	rng uint64 // state for ReplRandom

	Stats Stats
}

// New creates a cache over the given next level. next may be nil for leaf
// testing (misses then cost only the local latency).
func New(cfg Config, next mem.Port) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: bad geometry %d×%d", cfg.Name, cfg.Sets, cfg.Ways))
	}
	if cfg.MSHREntries <= 0 {
		panic(fmt.Sprintf("cache %s: MSHR entries must be positive", cfg.Name))
	}
	c := &Cache{
		cfg:      cfg,
		lines:    make([]line, cfg.Sets*cfg.Ways),
		tags:     make([]mem.Addr, cfg.Sets*cfg.Ways),
		lrus:     make([]uint64, cfg.Sets*cfg.Ways),
		mshrFree: make([]mem.Cycle, cfg.MSHREntries),
		mru:      make([]int32, cfg.Sets),
		setGen:   make([]uint64, cfg.Sets),
		next:     next,
		fused:    mem.FusedPath,
		rng:      uint64(len(cfg.Name))*0x9e3779b97f4a7c15 + 1,
	}
	for i := range c.tags {
		c.tags[i] = tagInvalid
	}
	c.lastMissBlock = tagInvalid
	c.memoBlock = tagInvalid
	if cfg.Sets&(cfg.Sets-1) == 0 {
		c.setMask = mem.Addr(cfg.Sets - 1)
	}
	if c.fused {
		c.partialWords = (cfg.Ways + 7) / 8
		c.partial = make([]uint64, cfg.Sets*c.partialWords)
		c.nextCache, _ = next.(*Cache)
	}
	return c
}

// tagInvalid marks an empty way in the tag array; it is never block-aligned,
// so it cannot collide with a real block address.
const tagInvalid = ^mem.Addr(0)

// SetObserver attaches the access/feedback observer. If the observer also
// implements LifecycleObserver it additionally receives prefetch lifecycle
// events; combine observers with Tee to trace alongside a prefetch engine.
func (c *Cache) SetObserver(o Observer) {
	c.observer = o
	c.accObs = nil
	if wantsOnAccess(o) {
		c.accObs = o
	}
	c.life, _ = o.(LifecycleObserver)
}

// SetLifecycleObserver attaches (or, with nil, detaches) the prefetch
// lifecycle sink without touching the access/feedback observer chain. This
// keeps pure lifecycle consumers — the telemetry tracer — off the per-access
// OnAccess dispatch path entirely: they cost a nil check except when a
// prefetched block changes state. It replaces any lifecycle interest the
// regular observer declared.
func (c *Cache) SetLifecycleObserver(lo LifecycleObserver) {
	c.life = lo
}

// MSHRBusy returns how many MSHR entries are occupied at cycle `at` (a
// telemetry gauge: sampled at epoch boundaries it exposes miss-level
// parallelism pressure).
func (c *Cache) MSHRBusy(at mem.Cycle) int {
	busy := 0
	for _, f := range c.mshrFree {
		if f > at {
			busy++
		}
	}
	return busy
}

// Name returns the configured cache name.
func (c *Cache) Name() string { return c.cfg.Name }

// Sets returns the number of sets (used for set-dueling leader mapping).
func (c *Cache) Sets() int { return c.cfg.Sets }

// SetIndex returns the set index for an address.
func (c *Cache) SetIndex(a mem.Addr) int {
	if c.setMask != 0 {
		return int(mem.BlockNumber(a) & c.setMask)
	}
	return int(mem.BlockNumber(a)) % c.cfg.Sets
}

func (c *Cache) setLines(set int) []line {
	return c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways]
}

func (c *Cache) find(block mem.Addr) *line {
	return c.findAt(c.SetIndex(block), block)
}

// findAt is find with the set index already computed: the access path derives
// it once per request and reuses it for the lookup, the observer callback, and
// the fill.
func (c *Cache) findAt(si int, block mem.Addr) *line {
	if gi := c.findIdx(si, block); gi >= 0 {
		return &c.lines[gi]
	}
	return nil
}

// findIdx returns the global way index of block in set si, or -1: index form
// of findAt, for paths that also update the dense replacement mirrors.
func (c *Cache) findIdx(si int, block mem.Addr) int {
	if c.partial != nil {
		// Fused probe order: the most-recently-used way first (one load and
		// compare — hit-heavy sets resolve here, and the repeat-hit memo in
		// access() already absorbed the hottest repeats before this point),
		// then the register-only negative memo, then the packed partial
		// array — an eighth of the tag array's footprint — so on a miss the
		// full tags are never scanned, only touched to verify a candidate.
		base := si * c.cfg.Ways
		if m := base + int(c.mru[si]); c.tags[m] == block {
			return m
		}
		if block == c.lastMissBlock && c.tick == c.lastMissTick {
			return -1
		}
		return c.findIdxPacked(si, base, block)
	}
	base := si * c.cfg.Ways
	if m := base + int(c.mru[si]); c.tags[m] == block {
		return m
	}
	if block == c.lastMissBlock && c.tick == c.lastMissTick {
		return -1
	}
	for i, t := range c.tags[base : base+c.cfg.Ways] {
		if t == block {
			c.mru[si] = int32(i)
			return base + i
		}
	}
	c.lastMissBlock, c.lastMissTick = block, c.tick
	return -1
}

// SWAR constants for the packed partial-tag probe: lane replication and the
// per-byte high bits of the classic zero-byte detector.
const (
	swarLanes = 0x0101010101010101
	swarHigh  = 0x8080808080808080
)

// partialOf hashes a block address to its one-byte partial tag. Any function
// works for correctness (candidates are verified against the full tags); the
// multiplicative hash keeps false-positive verifies rare and is independent
// of the set-index width, so one formula serves every level.
func partialOf(block mem.Addr) uint64 {
	return uint64(block) * 0x9e3779b97f4a7c15 >> 56
}

// findIdxPacked is the fused-path set probe: XOR the set's packed partial
// tags against the replicated probe byte, flag zero bytes with the SWAR
// detector (no false negatives; rare false positives from the borrow chain),
// and verify flagged ways against the full tag array. Tags are unique within
// a set, so at most one verify succeeds and probe order cannot change the
// result.
func (c *Cache) findIdxPacked(si, base int, block mem.Addr) int {
	pat := partialOf(block) * swarLanes
	w0 := si * c.partialWords
	for wi := 0; wi < c.partialWords; wi++ {
		x := c.partial[w0+wi] ^ pat
		m := (x - swarLanes) &^ x & swarHigh
		for m != 0 {
			way := wi<<3 + bits.TrailingZeros64(m)>>3
			if way < c.cfg.Ways && c.tags[base+way] == block {
				c.mru[si] = int32(way)
				return base + way
			}
			m &= m - 1
		}
	}
	c.lastMissBlock, c.lastMissTick = block, c.tick
	return -1
}

// setPartial stores way's partial-tag byte in the packed probe array.
func (c *Cache) setPartial(si, way int, p uint64) {
	i := si*c.partialWords + way>>3
	sh := uint(way&7) * 8
	c.partial[i] = c.partial[i]&^(0xFF<<sh) | p<<sh
}

// Contains reports whether block is present (valid) in the cache, including
// lines whose fill is still in flight.
func (c *Cache) Contains(block mem.Addr) bool {
	return c.find(mem.BlockAlign(block)) != nil
}

// InFlight reports whether block is present but its fill has not completed by
// cycle at.
func (c *Cache) InFlight(block mem.Addr, at mem.Cycle) bool {
	l := c.find(mem.BlockAlign(block))
	return l != nil && l.readyAt > at
}

// TryDropPrefetch accounts a proven MSHR-reserve drop for a prefetch issued
// at cycle `at` whose block is known absent (the caller just probed it):
// when the drop watermark proves the lookup would find the free pool at or
// below the demand reserve — lookup completes before both the proven-drop
// horizon and the earliest possible all-free time — the prefetch's only
// effect is the drop counter, so the caller can skip building the request
// and walking the access path. Returns false (caller issues normally) when
// the drop is not provable, the fused path is off, or a lifecycle tracer is
// attached (the drop event needs the full request).
func (c *Cache) TryDropPrefetch(at mem.Cycle) bool {
	if !c.fused || c.life != nil {
		return false
	}
	lookupDone := at + c.cfg.Latency
	if lookupDone < c.mshrMaxDone && lookupDone < c.pfDropUntil {
		c.Stats.PrefetchDropped++
		return true
	}
	return false
}

// allocMSHR reserves the earliest-free MSHR entry at or after `at` and
// returns the cycle at which the miss may proceed. The entry is tentatively
// held; the caller must release it by storing the final completion time.
func (c *Cache) allocMSHR(at mem.Cycle) (idx int, start mem.Cycle) {
	if at >= c.mshrMaxDone {
		// Every slot value is ≤ mshrMaxDone, so the whole pool is free and the
		// scan below would return its first entry at `at`.
		return 0, at
	}
	best := 0
	for i, f := range c.mshrFree {
		if f <= at {
			return i, at
		}
		if f < c.mshrFree[best] {
			best = i
		}
	}
	return best, c.mshrFree[best]
}

// victim picks the replacement victim way in a set: an invalid way if any,
// otherwise per the configured policy. si is the set's index; the invalid-way
// scan reads the dense tag mirror (tagInvalid ⇔ !valid) instead of the line
// structs.
func (c *Cache) victim(si int, set []line) int {
	base := si * c.cfg.Ways
	if c.cfg.Replacement == ReplLRU {
		// Invalid ways hold lru 0 and valid ways tick ≥ 1, so one
		// first-strict-min scan over the dense mirror is exactly
		// "first invalid way, else first least-recently-used way".
		v := 0
		lrus := c.lrus[base : base+c.cfg.Ways]
		for i, l := range lrus {
			if l < lrus[v] {
				v = i
			}
		}
		return v
	}
	for i, t := range c.tags[base : base+c.cfg.Ways] {
		if t == tagInvalid {
			return i
		}
	}
	switch c.cfg.Replacement {
	case ReplSRRIP:
		// Find a distant-re-reference line, aging the set until one exists.
		for {
			for i := range set {
				if set[i].rrpv >= 3 {
					return i
				}
			}
			for i := range set {
				set[i].rrpv++
			}
		}
	case ReplRandom:
		c.rng = c.rng*6364136223846793005 + 1442695040888963407
		return int(c.rng>>33) % len(set)
	default:
		v := 0
		lrus := c.lrus[base : base+c.cfg.Ways]
		for i, l := range lrus {
			if l < lrus[v] {
				v = i
			}
		}
		return v
	}
}

// touchAt updates replacement state on a hit of the way at global index gi in
// set si. Bumping the set generation invalidates any hit memo formed there.
func (c *Cache) touchAt(si, gi int) {
	c.tick++
	c.lrus[gi] = c.tick
	c.lines[gi].rrpv = 0
	c.setGen[si]++
}

// forward sends a request to the next level: through the devirtualized
// concrete chain when the fused path linked one, the Port interface
// otherwise. Callers have already checked next != nil.
func (c *Cache) forward(req *mem.Request, at mem.Cycle) mem.Cycle {
	if c.nextCache != nil {
		return c.nextCache.access(req, at, true)
	}
	return c.next.Access(req, at)
}

// fill installs block into the cache with the given fill-completion time,
// evicting (and writing back) the victim. The writeback is injected at the
// triggering access's present time `now`, not at the future fill time:
// requests are processed in program order, and future-stamped traffic would
// poison the monotonic next-free state of shared downstream resources.
func (c *Cache) fill(si int, block mem.Addr, readyAt, now mem.Cycle, req *mem.Request) {
	set := c.setLines(si)
	vi := c.victim(si, set)
	v := &set[vi]
	if v.valid {
		if v.prefetched {
			c.Stats.PrefetchUnused++
			if c.observer != nil {
				c.observer.OnPrefetchUnused(v.block, v.prefID, int(v.core))
			}
			if c.life != nil {
				c.life.OnPrefetchLifecycle(c.cfg.Name, LifecycleEvent{
					Kind: LifeEvict, Block: v.block, At: now, Req: req,
					PrefID: v.prefID, Core: v.core,
				})
			}
		}
		if v.dirty {
			c.Stats.Writebacks++
			if c.next != nil {
				wb := c.wbPool.GetDirty()
				*wb = mem.Request{PAddr: v.block, Type: mem.Writeback, Core: req.Core}
				c.forward(wb, now) // occupies downstream bandwidth
			}
		}
	}
	c.tick++
	c.tags[si*c.cfg.Ways+vi] = block
	c.lrus[si*c.cfg.Ways+vi] = c.tick
	c.mru[si] = int32(vi)
	c.setGen[si]++
	if c.partial != nil {
		c.setPartial(si, vi, partialOf(block))
	}
	*v = line{
		block:      block,
		valid:      true,
		dirty:      req.Type == mem.Store || req.Type == mem.Writeback,
		prefetched: req.Type == mem.Prefetch,
		prefID:     req.PrefID,
		core:       uint8(req.Core),
		rrpv:       2, // SRRIP long re-reference insertion
		readyAt:    readyAt,
	}
}

// Access implements mem.Port. It resolves hit/miss, models MSHR occupancy and
// merging, fills on miss, and returns the completion cycle. Prefetch requests
// follow the same path but never notify OnAccess, hit-drop silently, and — at
// a level where FillL2 is false (L2 directing the fill to the LLC) — the
// caller should use AccessNoFill instead.
func (c *Cache) Access(req *mem.Request, at mem.Cycle) mem.Cycle {
	return c.access(req, at, true)
}

// AccessNoFill behaves like Access but does not install the block in this
// cache on a miss: the request still occupies an MSHR entry here and fills
// every level below. This models L2 prefetches whose confidence directs the
// block into the LLC only.
func (c *Cache) AccessNoFill(req *mem.Request, at mem.Cycle) mem.Cycle {
	return c.access(req, at, false)
}

func (c *Cache) access(req *mem.Request, at mem.Cycle, fillHere bool) mem.Cycle {
	block := mem.BlockAlign(req.PAddr)

	// Line-hit memo: a repeat access to the last demand-hit block, in a set
	// nothing has touched since (generation match) and past the line's fill
	// completion, resolves without the tag probe, the replacement update, or
	// the observer dispatch. Only armed on the fused path at levels with no
	// OnAccess consumer (every demand access there must otherwise reach the
	// prefetch engine) — see the memo field docs for why skipping the LRU
	// bump is exact.
	if block == c.memoBlock && c.memoGen == c.setGen[c.memoSet] &&
		at >= c.memoReady && c.accObs == nil {
		switch req.Type {
		case mem.Prefetch:
			// Prefetching an already-present block is a silent drop.
			return at + c.cfg.Latency
		case mem.Store, mem.Writeback:
			c.lines[c.memoGI].dirty = true
		}
		if req.Type != mem.Writeback {
			c.Stats.Hits++
			c.Stats.DemandHits++
			c.Stats.DemandLatencySum += uint64(c.cfg.Latency)
			c.Stats.DemandCount++
		}
		return at + c.cfg.Latency
	}

	demand := req.Type.IsDemand() || req.Type == mem.PageWalk

	if req.Type == mem.Writeback {
		// Writebacks update in place on hit or forward below; they carry no
		// completion dependence for the core.
		si := c.SetIndex(block)
		if gi := c.findIdx(si, block); gi >= 0 {
			c.lines[gi].dirty = true
			c.touchAt(si, gi)
			return at + c.cfg.Latency
		}
		if c.next != nil {
			return c.forward(req, at+c.cfg.Latency)
		}
		return at + c.cfg.Latency
	}

	lookupDone := at + c.cfg.Latency
	si := c.SetIndex(block)
	if gi := c.findIdx(si, block); gi >= 0 {
		l := &c.lines[gi]
		done := lookupDone
		merged := l.readyAt > at // fill still in flight: MSHR merge semantics
		if merged && l.readyAt > done {
			done = l.readyAt
			if l.prefetched && demand && c.cfg.PromoteLatency > 0 && c.next != nil &&
				l.readyAt-lookupDone > c.cfg.PromoteLatency {
				// The prefetch is scheduled further out than a fresh demand
				// path: promote it by re-issuing the request downstream as a
				// demand. The re-issue consumes real downstream capacity
				// (mild traffic overcount, but promotion is rare — only
				// deeply queued prefetches qualify), so promotion can never
				// manufacture bandwidth.
				re := c.prPool.Get()
				*re = *req
				if promoted := c.forward(re, lookupDone); promoted < done {
					done = promoted
					l.readyAt = promoted
				}
			}
		}
		c.touchAt(si, gi)
		if req.Type == mem.Store {
			l.dirty = true
		}
		if req.Type == mem.Prefetch {
			// Prefetching an already-present block is a silent drop.
			return done
		}
		c.Stats.Hits++
		if demand {
			c.Stats.DemandHits++
			c.Stats.DemandLatencySum += uint64(done - at)
			c.Stats.DemandCount++
			if l.prefetched {
				l.prefetched = false
				if merged {
					c.Stats.PrefetchLate++
				} else {
					c.Stats.PrefetchUseful++
				}
				if c.observer != nil {
					c.observer.OnPrefetchUseful(block, l.prefID, int(l.core))
				}
				if c.life != nil {
					c.life.OnPrefetchLifecycle(c.cfg.Name, LifecycleEvent{
						Kind: LifeUse, Block: block, At: done, Late: merged,
						Req: req, PrefID: l.prefID, Core: l.core,
					})
				}
			}
			if c.fused && c.accObs == nil && !merged {
				// Arm the memo for repeat hits: the line is valid, ready, and
				// (after the use accounting above) no longer prefetched.
				c.memoBlock, c.memoSet, c.memoGI = block, si, gi
				c.memoGen = c.setGen[si]
				c.memoReady = l.readyAt
			}
		}
		if c.accObs != nil {
			c.accObs.OnAccess(AccessInfo{Req: req, Hit: true, At: at, Done: done, Set: si})
		}
		return done
	}

	// Miss path: take an MSHR entry (stalling if all are busy), forward the
	// request below, and fill on return. Prefetches never stall demands: a
	// quarter of the MSHR entries is reserved for demand misses, and a
	// prefetch that cannot allocate outside the reserve is dropped, so a
	// lookahead burst cannot head-block the demand stream. The prefetch path
	// folds the reserve count and the allocation into one scan of the pool.
	var idx int
	start := lookupDone
	if req.Type == mem.Prefetch {
		free, firstFree := 0, -1
		reserve := c.cfg.MSHREntries / 4
		if lookupDone >= c.mshrMaxDone {
			// Whole pool provably free: the scan would stop at free = reserve+1
			// with the first entry as the allocation target.
			free, firstFree = reserve+1, 0
		} else if lookupDone >= c.pfDropUntil {
			minBusy := mem.Cycle(1) << 62
			for i, f := range c.mshrFree {
				if f <= lookupDone {
					free++
					if firstFree < 0 {
						firstFree = i
					}
					if free > reserve {
						break // enough free entries proven; exact count not needed
					}
				} else if f < minBusy {
					minBusy = f
				}
			}
			if free <= reserve {
				// Nothing frees before minBusy and slot values only grow, so
				// every prefetch arriving before then drops without a scan.
				c.pfDropUntil = minBusy
			}
		}
		if free <= reserve {
			c.Stats.PrefetchDropped++
			if c.life != nil {
				c.life.OnPrefetchLifecycle(c.cfg.Name, LifecycleEvent{
					Kind: LifeDrop, Block: block, At: at, Req: req,
					PrefID: req.PrefID, Core: uint8(req.Core),
				})
			}
			return lookupDone
		}
		idx = firstFree // free > 0 here: the reserve is at least one entry
	} else {
		idx, start = c.allocMSHR(lookupDone)
	}
	c.Stats.Misses++
	if demand {
		c.Stats.DemandMisses++
	}
	if req.Type == mem.Prefetch {
		c.Stats.PrefetchIssued++
	}
	done := start
	if c.next != nil {
		done = c.forward(req, start)
	}
	c.mshrFree[idx] = done
	if done > c.mshrMaxDone {
		c.mshrMaxDone = done
	}
	if fillHere {
		c.fill(si, block, done, start, req)
	}
	if demand {
		c.Stats.DemandLatencySum += uint64(done - at)
		c.Stats.DemandCount++
	}
	if req.Type == mem.Prefetch && fillHere && c.life != nil {
		// Levels that do not install the block (AccessNoFill) stay silent:
		// the level that fills — the LLC for low-confidence candidates —
		// records its own fill event.
		c.life.OnPrefetchLifecycle(c.cfg.Name, LifecycleEvent{
			Kind: LifeFill, Block: block, At: at, Done: done, Req: req,
			PrefID: req.PrefID, Core: uint8(req.Core),
		})
	}
	if req.Type != mem.Prefetch && c.accObs != nil {
		c.accObs.OnAccess(AccessInfo{Req: req, Hit: false, At: at, Done: done, Set: si})
	}
	return done
}
