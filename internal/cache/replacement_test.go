package cache

import (
	"testing"

	"repro/internal/mem"
)

func TestReplPolicyString(t *testing.T) {
	if ReplLRU.String() != "lru" || ReplSRRIP.String() != "srrip" || ReplRandom.String() != "random" {
		t.Error("ReplPolicy strings wrong")
	}
}

func policyCache(p ReplPolicy, ways int) *Cache {
	next := &fixedPort{latency: 10}
	return New(Config{Name: "c", Sets: 1, Ways: ways, Latency: 1, MSHREntries: 8, Replacement: p}, next)
}

func TestSRRIPKeepsReusedLines(t *testing.T) {
	c := policyCache(ReplSRRIP, 4)
	hot := mem.Addr(0x0)
	c.Access(load(hot), 0)
	// Touch hot repeatedly while streaming through many one-shot lines.
	for i := 1; i <= 12; i++ {
		c.Access(load(mem.Addr(i)*mem.BlockSize), mem.Cycle(i*20))
		c.Access(load(hot), mem.Cycle(i*20+5))
	}
	if !c.Contains(hot) {
		t.Error("SRRIP evicted a continuously reused line during a scan")
	}
}

func TestSRRIPVictimIsDistantRRPV(t *testing.T) {
	c := policyCache(ReplSRRIP, 2)
	c.Access(load(0x0), 0)
	c.Access(load(0x40), 10)
	c.Access(load(0x0), 20) // rrpv(0x0)=0; rrpv(0x40)=2
	c.Access(load(0x80), 30)
	if c.Contains(0x40) {
		t.Error("distant-RRPV line survived instead of being the victim")
	}
	if !c.Contains(0x0) {
		t.Error("recently reused line evicted")
	}
}

func TestRandomPolicyStillCachesAndIsDeterministic(t *testing.T) {
	run := func() []bool {
		c := policyCache(ReplRandom, 2)
		for i := 0; i < 8; i++ {
			c.Access(load(mem.Addr(i)*mem.BlockSize), mem.Cycle(i*10))
		}
		var present []bool
		for i := 0; i < 8; i++ {
			present = append(present, c.Contains(mem.Addr(i)*mem.BlockSize))
		}
		return present
	}
	a, b := run(), run()
	live := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random replacement not deterministic across identical runs")
		}
		if a[i] {
			live++
		}
	}
	if live != 2 {
		t.Errorf("%d lines present in a 2-way set", live)
	}
}

func TestPoliciesAgreeOnHitBehaviour(t *testing.T) {
	// Hit/miss accounting must be identical across policies for a
	// non-evicting access pattern.
	for _, p := range []ReplPolicy{ReplLRU, ReplSRRIP, ReplRandom} {
		c := policyCache(p, 4)
		c.Access(load(0x0), 0)
		c.Access(load(0x0), 10)
		if c.Stats.DemandHits != 1 || c.Stats.DemandMisses != 1 {
			t.Errorf("%v: hits/misses = %d/%d", p, c.Stats.DemandHits, c.Stats.DemandMisses)
		}
	}
}
