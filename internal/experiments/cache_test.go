package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/simcache"
)

// TestWarmCacheRunsZeroSims is the acceptance criterion for the result
// cache: after one full figure run, a second identical invocation (a fresh
// store on the same directory, as a new process would open) performs zero
// simulations and reproduces the figure exactly.
func TestWarmCacheRunsZeroSims(t *testing.T) {
	dir := t.TempDir()
	o := tinyOptions(t)
	o.Workloads = o.Workloads[:3]
	o.Warmup = 20_000
	o.Instructions = 80_000

	cold, err := simcache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	o.Cache = cold
	r1, err := Figure8(o)
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Stats(); s.Misses == 0 {
		t.Fatalf("cold run executed no sims: %+v", s)
	}

	warm, err := simcache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	o.Cache = warm
	r2, err := Figure8(o)
	if err != nil {
		t.Fatal(err)
	}
	s := warm.Stats()
	if s.Misses != 0 {
		t.Errorf("warm run executed %d sims, want 0", s.Misses)
	}
	if s.Hits == 0 {
		t.Error("warm run recorded no hits")
	}
	if r1.Render() != r2.Render() {
		t.Error("cached figure differs from simulated figure")
	}
}

// TestWarmCacheCrossingStudy repeats the zero-sims warm-replay check for the
// crossing study: its jobs mix physical (pangloss) and virtual (vamp)
// candidate paths, so this also proves the new engine statistics survive the
// cache's JSON round trip byte-identically.
func TestWarmCacheCrossingStudy(t *testing.T) {
	dir := t.TempDir()
	o := tinyOptions(t)
	o.Workloads = o.Workloads[:2]
	o.Warmup = 20_000
	o.Instructions = 80_000

	cold, err := simcache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	o.Cache = cold
	r1, err := Crossing(o)
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Stats(); s.Misses == 0 {
		t.Fatalf("cold run executed no sims: %+v", s)
	}

	warm, err := simcache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	o.Cache = warm
	r2, err := Crossing(o)
	if err != nil {
		t.Fatal(err)
	}
	s := warm.Stats()
	if s.Misses != 0 {
		t.Errorf("warm run executed %d sims, want 0", s.Misses)
	}
	if r1.Render() != r2.Render() {
		t.Error("cached crossing study differs from simulated study")
	}
}

// TestCachedBatchMatchesUncached: results served through the cache must be
// indistinguishable from direct simulation, including single-flight-shared
// duplicates within one batch.
func TestCachedBatchMatchesUncached(t *testing.T) {
	o := tinyOptions(t)
	o.Workloads = o.Workloads[:2]
	o.Warmup = 20_000
	o.Instructions = 80_000
	jobs := detJobs(t, o)
	// Duplicate the whole batch so the single-flight path is exercised.
	jobs = append(jobs, jobs...)

	direct, err := runBatch(o, jobs)
	if err != nil {
		t.Fatal(err)
	}
	store, err := simcache.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o.Cache = store
	cached, err := runBatch(o, jobs)
	if err != nil {
		t.Fatal(err)
	}
	db, cb := mustJSON(t, direct), mustJSON(t, cached)
	if !bytes.Equal(db, cb) {
		t.Errorf("cached batch differs:\ndirect %s\ncached %s", db, cb)
	}
	s := store.Stats()
	if s.Misses > uint64(len(jobs)/2) {
		t.Errorf("duplicates were not de-duplicated: %+v", s)
	}
	if s.Hits+s.Shared == 0 {
		t.Errorf("no hits on duplicated jobs: %+v", s)
	}
	// The on-disk entries round-trip through JSON exactly.
	for i, j := range jobs[:3] {
		key := simcache.Key(o.Config, j.Spec, j.Workload, o.runOpt())
		got, ok := store.Get(key)
		if !ok {
			t.Fatalf("job %d not stored", i)
		}
		if !bytes.Equal(mustJSON(t, got), mustJSON(t, direct[i])) {
			t.Errorf("job %d stored entry differs from direct result", i)
		}
	}
}

// TestRunBatchJoinsAllErrors: when several workers fail, every error must
// surface, not just the first.
func TestRunBatchJoinsAllErrors(t *testing.T) {
	o := tinyOptions(t)
	o.Warmup = 5_000
	o.Instructions = 10_000
	w := o.Workloads[0]
	jobs := []Job{
		{Workload: w, Spec: sim.PrefSpec{Base: "spp"}},
		{Workload: w, Spec: sim.PrefSpec{Base: "bogus-alpha"}},
		{Workload: w, Spec: sim.PrefSpec{Base: "spp"}},
		{Workload: w, Spec: sim.PrefSpec{Base: "bogus-beta"}},
	}
	_, err := runBatch(o, jobs)
	if err == nil {
		t.Fatal("failing jobs produced no error")
	}
	for _, want := range []string{"bogus-alpha", "bogus-beta"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
	// The same holds on the cached path, and errors must not be cached.
	store, serr := simcache.New(t.TempDir())
	if serr != nil {
		t.Fatal(serr)
	}
	o.Cache = store
	for run := 0; run < 2; run++ {
		if _, err := runBatch(o, jobs); err == nil ||
			!strings.Contains(err.Error(), "bogus-alpha") ||
			!strings.Contains(err.Error(), "bogus-beta") {
			t.Errorf("cached run %d: joined error = %v", run, err)
		}
	}
}

// TestOptionsRunOptStable guards the cache contract: runOpt derivation must
// only depend on the option fields folded into the key.
func TestOptionsRunOptStable(t *testing.T) {
	o := DefaultOptions()
	a, err := json.Marshal(o.runOpt())
	if err != nil {
		t.Fatal(err)
	}
	o.Parallelism = 1 // parallelism must not leak into the sim inputs
	o.Label = "x"
	b, err := json.Marshal(o.runOpt())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("runOpt depends on non-simulation options: %s vs %s", a, b)
	}
}
