// Package experiments regenerates every table and figure of the paper's
// evaluation: the missed-opportunity probability (Fig. 2), page-usage
// profiles (Fig. 3), the Magic studies (Figs. 4-5), the per-workload and
// per-suite speedups (Figs. 8-9), the metric breakdown (Fig. 10), the
// selection-logic comparison (Fig. 11), the constrained sweeps (Fig. 12), the
// L1D-prefetching comparison (Fig. 13), and the multi-core distributions
// (Figs. 14-15). Each experiment returns a structured result with a Render
// method producing the textual equivalent of the paper's plot.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"

	"repro/internal/progress"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Options scales an experiment run.
type Options struct {
	Config       sim.Config
	Warmup       uint64
	Instructions uint64
	Seed         uint64
	Parallelism  int
	// Workloads overrides the workload set (default: the 80 intensive ones).
	Workloads []trace.Workload
	// Mixes is the number of random multi-core mixes (Figs. 14-15).
	Mixes int
	// Base selects the prefetcher for per-prefetcher studies (fig8); "spp"
	// when empty.
	Base string
	// Cache memoizes single-core simulation results on disk, so repeated or
	// interrupted figure runs only simulate cache misses. Nil disables
	// caching.
	Cache *simcache.Store
	// Progress receives live per-batch status lines (jobs done/total, cache
	// hit rate, sims/sec, ETA), rewritten in place with carriage returns.
	// Nil disables reporting.
	Progress io.Writer
	// Label prefixes progress lines; Run sets it to the experiment name.
	Label string
	// Context cancels in-flight batches: workers stop at the next
	// simulation-chunk boundary and the batch returns the context's error.
	// Nil means context.Background() (uncancellable, the historical
	// behaviour).
	Context context.Context
	// Remote dispatches single-core batches to a simulation service (psimd)
	// instead of simulating locally; the service owns caching and dedup.
	// Multi-core mix runs (figs 14-15) always simulate locally. Nil runs
	// everything locally.
	Remote BatchRunner
	// TelemetryDir, when set, writes a per-epoch telemetry series (JSONL) for
	// every locally simulated job under TelemetryDir/<experiment>/. Jobs
	// served from the result cache or a Remote runner produce no artifact
	// (there is no live simulation to sample); combine with a disabled cache
	// to force artifacts for every job.
	TelemetryDir string
	// EpochInstructions is the telemetry sampling period
	// (sim.DefaultEpochInstructions when zero).
	EpochInstructions uint64
}

// BatchRunner executes a batch of single-core simulations somewhere else —
// implemented by service.Client over psimd's HTTP API. The runner reports
// per-job completions (and whether each was served from a cache) to tr.
type BatchRunner interface {
	RunBatch(ctx context.Context, cfg sim.Config, jobs []Job, opt sim.RunOpt, tr *progress.Tracker) ([]sim.Result, error)
}

// DefaultOptions returns a laptop-scale configuration: long enough for the
// shapes to be stable, short enough that regenerating a figure takes minutes.
func DefaultOptions() Options {
	return Options{
		Config:       sim.DefaultConfig(),
		Warmup:       200_000,
		Instructions: 1_000_000,
		Seed:         1,
		Parallelism:  8,
		Mixes:        20,
	}
}

func (o Options) workloads() []trace.Workload {
	if len(o.Workloads) != 0 {
		return o.Workloads
	}
	return trace.Intensive()
}

func (o Options) runOpt() sim.RunOpt {
	return sim.RunOpt{
		Warmup:       o.Warmup,
		Instructions: o.Instructions,
		Seed:         o.Seed,
		Samples:      8,
	}
}

// ctx returns the batch context, defaulting to Background.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Job is one simulation in a batch: a workload paired with a prefetcher
// configuration. Exported so remote batch runners (the psimd client) can
// receive the exact work a figure wants.
type Job struct {
	Workload trace.Workload
	Spec     sim.PrefSpec
}

// runBatch executes all jobs with bounded parallelism, returning results in
// job order. When a result cache is configured, each job first consults it
// and only cache misses simulate. A Remote runner, when set, executes the
// whole batch on a simulation service instead. Every failed job's error is
// surfaced, joined, rather than just the first; a canceled context stops
// workers at the next simulation boundary.
func runBatch(o Options, jobs []Job) ([]sim.Result, error) {
	ctx := o.ctx()
	tr := progress.New(o.Progress, o.Label, len(jobs))
	if o.Remote != nil {
		results, err := o.Remote.RunBatch(ctx, o.Config, jobs, o.runOpt(), tr)
		tr.Finish()
		return results, err
	}
	results := make([]sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	par := o.Parallelism
	if par <= 0 {
		par = 1
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// A panicking simulation (a broken prefetcher, a corrupt trace)
			// must fail its own job, not the whole process: the recovery
			// converts it into this job's error, joined with the rest below.
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("experiments: job %s/%s panicked: %v\n%s",
						j.Workload.Name, j.Spec, r, debug.Stack())
				}
			}()
			if errs[i] = ctx.Err(); errs[i] != nil {
				return // canceled while queued: don't start the simulation
			}
			var hit bool
			results[i], hit, errs[i] = runOne(ctx, o, j)
			tr.Step(hit)
		}(i, j)
	}
	wg.Wait()
	tr.Finish()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// runOne executes (or recalls) a single simulation, reporting whether it was
// served from the cache. In-process duplicates of one key — common when
// figure batches share baselines — are de-duplicated by the store's
// single-flight DoContext.
func runOne(ctx context.Context, o Options, j Job) (sim.Result, bool, error) {
	run := func(ctx context.Context) (sim.Result, error) {
		if o.TelemetryDir == "" {
			return sim.RunContext(ctx, o.Config, j.Spec, j.Workload, o.runOpt())
		}
		ins := &sim.Instrumentation{
			Collector:         telemetry.NewCollector(),
			EpochInstructions: o.EpochInstructions,
		}
		r, err := sim.RunContext(sim.WithInstrumentation(ctx, ins), o.Config, j.Spec, j.Workload, o.runOpt())
		if err == nil {
			err = writeJobTelemetry(o, j, ins.Collector)
		}
		return r, err
	}
	if o.Cache == nil {
		r, err := run(ctx)
		return r, false, err
	}
	key := simcache.Key(o.Config, j.Spec, j.Workload, o.runOpt())
	return o.Cache.DoContext(ctx, key, run)
}

// writeJobTelemetry writes one job's epoch series under
// TelemetryDir/<experiment>/<workload>__<spec>.jsonl.
func writeJobTelemetry(o Options, j Job, c *telemetry.Collector) error {
	dir := filepath.Join(o.TelemetryDir, sanitizeName(o.Label))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := sanitizeName(j.Workload.Name) + "__" + sanitizeName(j.Spec.String()) + ".jsonl"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := c.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sanitizeName makes a workload or spec name filesystem-safe (trace-replay
// workloads are named by their path; L1 specs contain '+').
func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':', '*', '?', '"', '<', '>', '|', ' ':
			return '-'
		}
		return r
	}, s)
}

// speedupPct converts an IPC pair into percent speedup.
func speedupPct(base, variant float64) float64 {
	if base <= 0 {
		return 0
	}
	return (variant/base - 1) * 100
}

// Names of experiments, for the CLI.
var Names = []string{
	"fig2", "fig3", "fig4", "fig5", "fig8", "fig9", "fig10",
	"fig11", "fig12", "fig13", "fig14", "fig15", "nonintensive", "table1",
	"ablation", "extensions", "crossing",
}

// Renderer is any experiment result that can print itself.
type Renderer interface {
	Render() string
}

// Run dispatches an experiment by name.
func Run(name string, o Options) (Renderer, error) {
	if o.Label == "" {
		o.Label = strings.ToLower(name)
		// Bare figure numbers ("-fig 8") label as the canonical name.
		if _, err := strconv.Atoi(o.Label); err == nil {
			o.Label = "fig" + o.Label
		}
	}
	switch strings.ToLower(name) {
	case "fig2", "2":
		return Figure2(o)
	case "fig3", "3":
		return Figure3(o)
	case "fig4", "4":
		return Figure4(o)
	case "fig5", "5":
		return Figure5(o)
	case "fig8", "8":
		if o.Base != "" && o.Base != "spp" {
			return variantStudy(o, o.Base)
		}
		return Figure8(o)
	case "fig9", "9":
		return Figure9(o)
	case "fig10", "10":
		return Figure10(o)
	case "fig11", "11":
		return Figure11(o)
	case "fig12", "12":
		return Figure12(o)
	case "fig13", "13":
		return Figure13(o)
	case "fig14", "14":
		return Figure14(o)
	case "fig15", "15":
		return Figure15(o)
	case "nonintensive":
		return NonIntensive(o)
	case "ablation":
		return Ablation(o)
	case "extensions":
		return Extensions(o)
	case "crossing":
		return Crossing(o)
	case "table1":
		return TableI(o)
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)",
		name, strings.Join(Names, ", "))
}

// TableIResult is the machine configuration (Table I).
type TableIResult struct{ Text string }

// Render implements Renderer.
func (t *TableIResult) Render() string { return t.Text }

// TableI reports the simulated system configuration.
func TableI(o Options) (*TableIResult, error) {
	return &TableIResult{Text: "Table I — system configuration\n" + o.Config.String() + "\n"}, nil
}

// nineBenchmarks are the workloads of Figures 3, 4, and 5.
var nineBenchmarks = []string{
	"lbm", "milc", "libquantum", "mcf", "soplex", "bwaves",
	"fotonik3d_s", "roms_s", "pr.road",
}

// WorkloadsByName resolves a list of workload names against the catalogue.
func WorkloadsByName(names []string) ([]trace.Workload, error) {
	out := make([]trace.Workload, 0, len(names))
	for _, n := range names {
		w, err := trace.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// representative10 are the Figure 10 workloads (the paper's selection,
// mapped onto our catalogue names).
var representative10 = []string{
	"bwaves", "milc", "GemsFDTD", "astar", "gcc_s", "cactuBSSN_s",
	"fotonik3d_s", "pr.road", "graph_analytics",
	"qmm_fp_15", "qmm_int_906", "qmm_fp_67", "qmm_fp_95", "qmm_fp_112",
}

// sortedSuites returns the suite grouping used by Figure 9: SPEC (06+17),
// GAP+ML+CLOUD, QMM, ALL.
func suiteOf(w trace.Workload) string {
	switch w.Suite {
	case trace.SuiteSPEC06, trace.SuiteSPEC17:
		return "SPEC"
	case trace.SuiteGAP, trace.SuiteML, trace.SuiteCloud:
		return "GAP+ML+CLOUD"
	default:
		return "QMM"
	}
}

func suiteOrder() []string { return []string{"SPEC", "GAP+ML+CLOUD", "QMM", "ALL"} }
