package experiments

import (
	"fmt"

	"repro/internal/sim"
)

// Checker is implemented by experiment results that can verify the paper's
// qualitative claims about themselves. Check returns one error per violated
// claim; an empty slice means the figure's shape reproduced.
//
// The checks encode the *verdicts* of EXPERIMENTS.md: orderings, signs, and
// coarse magnitude bands — never absolute numbers.
type Checker interface {
	Check() []error
}

// Check implements Checker for Figure 2: discard probabilities are
// meaningful (≈0.1 means for the lookahead prefetchers, visible tails).
func (r *Fig2Result) Check() []error {
	var errs []error
	for _, base := range sim.BaseNames() {
		s, ok := r.PerPrefetcher[base]
		if !ok {
			errs = append(errs, fmt.Errorf("fig2: missing prefetcher %s", base))
			continue
		}
		if s.Mean < 0 || s.Mean > 1 || s.Max > 1 {
			errs = append(errs, fmt.Errorf("fig2: %s probabilities out of range: %+v", base, s))
		}
	}
	if spp := r.PerPrefetcher["spp"]; spp.Mean < 0.02 {
		errs = append(errs, fmt.Errorf("fig2: SPP mean discard probability %.3f too low — the missed opportunity should be ≈1 in 10", spp.Mean))
	}
	// The 1-in-2 tail needs the full workload population to show up.
	if spp := r.PerPrefetcher["spp"]; spp.N >= 20 && spp.Max < 0.3 {
		errs = append(errs, fmt.Errorf("fig2: SPP max %.3f lacks the ≈1-in-2 tail", spp.Max))
	}
	return errs
}

// Check implements Checker for Figure 3: 2MB-heavy workloads stay high for
// the whole run; soplex stays low.
func (r *Fig3Result) Check() []error {
	var errs []error
	for _, name := range []string{"lbm", "milc", "libquantum", "bwaves", "fotonik3d_s", "roms_s", "pr.road"} {
		series := r.Series[name]
		if len(series) == 0 {
			errs = append(errs, fmt.Errorf("fig3: missing series %s", name))
			continue
		}
		for _, f := range series {
			if f < 0.6 {
				errs = append(errs, fmt.Errorf("fig3: %s dipped to %.2f — should stay 2MB-heavy", name, f))
				break
			}
		}
	}
	if sp := r.Series["soplex"]; len(sp) > 0 && sp[len(sp)-1] > 0.5 {
		errs = append(errs, fmt.Errorf("fig3: soplex ended at %.2f — should be 4KB-dominated", sp[len(sp)-1]))
	}
	return errs
}

// Check implements Checker for Figures 4 and 5: Magic ≥ original in geomean;
// in the Figure 5 form, Magic-2MB clearly wins milc.
func (r *MagicResult) Check() []error {
	var errs []error
	if r.Geomean["SPP-PSA-Magic"] < r.Geomean["SPP"]-0.5 {
		errs = append(errs, fmt.Errorf("fig%d: Magic geomean %.1f%% below SPP %.1f%%", r.Figure,
			r.Geomean["SPP-PSA-Magic"], r.Geomean["SPP"]))
	}
	if r.Figure == 5 {
		m2 := r.Speedup["SPP-PSA-Magic-2MB"]["milc"]
		m1 := r.Speedup["SPP-PSA-Magic"]["milc"]
		if m2 <= m1 {
			errs = append(errs, fmt.Errorf("fig5: milc Magic-2MB %.1f%% not above Magic %.1f%%", m2, m1))
		}
	}
	// soplex is 4KB-bound: Magic ≈ original.
	d := r.Speedup["SPP-PSA-Magic"]["soplex"] - r.Speedup["SPP"]["soplex"]
	if d > 3 || d < -3 {
		errs = append(errs, fmt.Errorf("fig%d: soplex Magic−SPP gap %.1f points — should be flat", r.Figure, d))
	}
	return errs
}

// Check implements Checker for Figure 8 (and the per-prefetcher variant
// studies): PSA non-negative in geomean; SD not far below the best variant.
func (r *Fig8Result) Check() []error {
	var errs []error
	if r.Geomean["PSA"] < -0.5 {
		errs = append(errs, fmt.Errorf("fig8(%s): PSA geomean %.1f%% negative", r.Base, r.Geomean["PSA"]))
	}
	best := r.Geomean["PSA"]
	if r.Geomean["PSA-2MB"] > best {
		best = r.Geomean["PSA-2MB"]
	}
	if r.Geomean["PSA-SD"] < best-2 {
		errs = append(errs, fmt.Errorf("fig8(%s): PSA-SD %.1f%% trails the best variant %.1f%% by >2 points",
			r.Base, r.Geomean["PSA-SD"], best))
	}
	return errs
}

// Check implements Checker for Figure 9: every prefetcher's PSA is
// non-negative overall and BOP's three variants coincide.
func (r *Fig9Result) Check() []error {
	var errs []error
	for _, base := range sim.BaseNames() {
		if g := r.Geomean[base]["PSA"]["ALL"]; g < -0.5 {
			errs = append(errs, fmt.Errorf("fig9: %s PSA overall %.1f%% negative", base, g))
		}
	}
	b := r.Geomean["bop"]
	if b["PSA"]["ALL"] != b["PSA-2MB"]["ALL"] || b["PSA"]["ALL"] != b["PSA-SD"]["ALL"] {
		errs = append(errs, fmt.Errorf("fig9: BOP variants differ (%v / %v / %v) — must be identical",
			b["PSA"]["ALL"], b["PSA-2MB"]["ALL"], b["PSA-SD"]["ALL"]))
	}
	return errs
}

// Check implements Checker for Figure 11: SD-Proposed beats SD-Standard for
// SPP and VLDP, and ISO storage is no substitute for page-size awareness.
func (r *Fig11Result) Check() []error {
	var errs []error
	for _, base := range []string{"spp", "vldp"} {
		if r.Geomean[base]["SD-Proposed"] < r.Geomean[base]["SD-Standard"]-0.5 {
			errs = append(errs, fmt.Errorf("fig11: %s SD-Proposed %.1f%% below SD-Standard %.1f%%",
				base, r.Geomean[base]["SD-Proposed"], r.Geomean[base]["SD-Standard"]))
		}
	}
	for _, base := range []string{"spp", "vldp", "ppf"} {
		if iso := r.Geomean[base]["ISO-Storage"]; iso > r.Geomean[base]["SD-Proposed"] {
			errs = append(errs, fmt.Errorf("fig11: %s ISO storage %.1f%% beats SD-Proposed %.1f%% — capacity must not substitute awareness",
				base, iso, r.Geomean[base]["SD-Proposed"]))
		}
	}
	return errs
}

// Check implements Checker for Figure 13: IPCP++ ≥ IPCP, and the strongest
// page-size-aware L2 prefetcher beats the IPCP class.
func (r *Fig13Result) Check() []error {
	var errs []error
	if r.Speedup["IPCP++"] < r.Speedup["IPCP"]-0.005 {
		errs = append(errs, fmt.Errorf("fig13: IPCP++ %.3f below IPCP %.3f", r.Speedup["IPCP++"], r.Speedup["IPCP"]))
	}
	bestL2 := 0.0
	for _, n := range []string{"SPP-PSA-SD", "SPP-PSA", "PPF-PSA", "PPF-PSA-SD"} {
		if r.Speedup[n] > bestL2 {
			bestL2 = r.Speedup[n]
		}
	}
	if bestL2 < r.Speedup["IPCP++"] {
		errs = append(errs, fmt.Errorf("fig13: best page-size-aware L2 prefetcher %.3f below IPCP++ %.3f", bestL2, r.Speedup["IPCP++"]))
	}
	if r.Speedup["BOP-PSA"] != r.Speedup["BOP-PSA-SD"] {
		errs = append(errs, fmt.Errorf("fig13: BOP PSA and PSA-SD diverged"))
	}
	return errs
}

// Check implements Checker for Figures 14/15: most mixes gain (median ≥ 0)
// for the SPP schemes.
func (r *MultiResult) Check() []error {
	var errs []error
	for _, s := range []string{"SPP-PSA", "SPP-PSA-SD"} {
		if sum, ok := r.Summary[s]; ok && sum.Median < -1 {
			errs = append(errs, fmt.Errorf("fig%d: %s median %.1f%% — most mixes should gain",
				14+(r.Cores/8), s, sum.Median))
		}
	}
	return errs
}

// CheckAll runs r's checks if it implements Checker, returning a summary
// error count.
func CheckAll(r Renderer) []error {
	if c, ok := r.(Checker); ok {
		return c.Check()
	}
	return nil
}
