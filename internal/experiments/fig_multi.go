package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/progress"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// MultiResult holds the distribution of weighted speedups over random mixes
// for each prefetcher variant (Figures 14 and 15).
type MultiResult struct {
	Cores    int
	Schemes  []string
	Summary  map[string]stats.Summary
	Speedups map[string][]float64 // per-mix weighted-speedup % over original
}

// Figure14 runs the 4-core evaluation.
func Figure14(o Options) (*MultiResult, error) { return multicore(o, 4) }

// Figure15 runs the 8-core evaluation.
func Figure15(o Options) (*MultiResult, error) { return multicore(o, 8) }

// mixesFor deterministically draws n random mixes of k workloads each.
func mixesFor(o Options, cores, n int) [][]trace.Workload {
	ws := o.workloads()
	state := o.Seed*0x9e3779b97f4a7c15 + uint64(cores)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	mixes := make([][]trace.Workload, n)
	for i := range mixes {
		mix := make([]trace.Workload, cores)
		for c := range mix {
			mix[c] = ws[next()%uint64(len(ws))]
		}
		mixes[i] = mix
	}
	return mixes
}

// multicore evaluates PSA and PSA-SD for every base prefetcher over random
// mixes, reporting weighted speedup over the original prefetcher as in
// Section V-B: WS = Σ IPC_mc/IPC_iso, normalised by the baseline's WS.
func multicore(o Options, cores int) (*MultiResult, error) {
	nMixes := o.Mixes
	if nMixes <= 0 {
		nMixes = 20
	}
	mixes := mixesFor(o, cores, nMixes)
	cfg := o.Config
	cfg.PhysBytes = 32 << 30
	// Both multi-core configurations share an identical dual-channel DRAM,
	// which is exactly the paper's argument for the lower 8-core gains (our
	// synthetic workloads demand roughly twice the bandwidth of SimPointed
	// traces, so the channel count keeps the contention regime comparable).
	cfg.DRAM.Channels = 2
	opt := o.runOpt()

	// Isolation IPCs per (workload, spec) are shared across mixes: compute
	// them once on the multi-core-spec machine.
	type schemeDef struct {
		name string
		spec sim.PrefSpec
	}
	var schemes []schemeDef
	var baselines []schemeDef
	for _, base := range sim.BaseNames() {
		baselines = append(baselines, schemeDef{base + "-original", sim.PrefSpec{Base: base, Variant: core.Original}})
		schemes = append(schemes,
			schemeDef{strings.ToUpper(base) + "-PSA", sim.PrefSpec{Base: base, Variant: core.PSA}},
			schemeDef{strings.ToUpper(base) + "-PSA-SD", sim.PrefSpec{Base: base, Variant: core.PSASD}},
		)
	}

	// Gather the distinct workloads appearing in any mix.
	distinct := map[string]trace.Workload{}
	for _, mix := range mixes {
		for _, w := range mix {
			distinct[w.Name] = w
		}
	}

	iso := map[string]float64{} // "spec/workload" → isolation IPC
	var isoMu sync.Mutex
	var isoJobs []Job
	for _, s := range append(append([]schemeDef{}, baselines...), schemes...) {
		for _, w := range distinct {
			isoJobs = append(isoJobs, Job{Workload: w, Spec: s.spec})
		}
	}
	po := o
	po.Config = cfg
	isoRes, err := runBatch(po, isoJobs)
	if err != nil {
		return nil, err
	}
	for i, r := range isoRes {
		isoMu.Lock()
		iso[isoJobs[i].Spec.String()+"/"+isoJobs[i].Workload.Name] = r.IPC
		isoMu.Unlock()
	}

	// Weighted speedup of one (mix, spec). Mix runs always simulate locally
	// (a Remote runner only covers single-core batches), but they honour the
	// batch context at epoch boundaries.
	ws := func(mix []trace.Workload, spec sim.PrefSpec) (float64, error) {
		res, err := sim.RunMultiContext(o.ctx(), cfg, spec, mix, opt)
		if err != nil {
			return 0, err
		}
		isoIPC := make([]float64, len(mix))
		for i, w := range mix {
			isoIPC[i] = iso[spec.String()+"/"+w.Name]
		}
		return stats.WeightedSpeedup(res.IPC, isoIPC), nil
	}

	out := &MultiResult{
		Cores:    cores,
		Summary:  map[string]stats.Summary{},
		Speedups: map[string][]float64{},
	}
	type mixJob struct {
		mixIdx int
		scheme int // -1.. baseline index encoded separately
		name   string
		spec   sim.PrefSpec
	}
	// For each mix: baseline WS per base prefetcher, then scheme WS.
	par := o.Parallelism
	if par <= 0 {
		par = 1
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	var mu sync.Mutex
	wsVals := map[string][]float64{} // name → per-mix WS
	record := func(name string, idx int, v float64) {
		mu.Lock()
		defer mu.Unlock()
		if wsVals[name] == nil {
			wsVals[name] = make([]float64, len(mixes))
		}
		wsVals[name][idx] = v
	}
	nRuns := len(mixes) * (len(baselines) + len(schemes))
	tr := progress.New(o.Progress, o.Label+" mixes", nRuns)
	var errs []error // every failed run's error, joined below
	runMix := func(name string, spec sim.PrefSpec, idx int) {
		defer wg.Done()
		sem <- struct{}{}
		defer func() { <-sem }()
		v, err := ws(mixes[idx], spec)
		tr.Step(false)
		if err != nil {
			mu.Lock()
			errs = append(errs, fmt.Errorf("mix %d, %s: %w", idx, name, err))
			mu.Unlock()
			return
		}
		record(name, idx, v)
	}
	for idx := range mixes {
		for _, b := range baselines {
			wg.Add(1)
			go runMix(b.name, b.spec, idx)
		}
		for _, s := range schemes {
			wg.Add(1)
			go runMix(s.name, s.spec, idx)
		}
	}
	wg.Wait()
	tr.Finish()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	for _, s := range schemes {
		base := strings.ToLower(strings.SplitN(s.name, "-", 2)[0]) + "-original"
		var pct []float64
		for idx := range mixes {
			b := wsVals[base][idx]
			if b <= 0 {
				continue
			}
			pct = append(pct, (wsVals[s.name][idx]/b-1)*100)
		}
		out.Schemes = append(out.Schemes, s.name)
		out.Speedups[s.name] = pct
		out.Summary[s.name] = stats.Summarize(pct)
	}
	return out, nil
}

// Render implements Renderer.
func (r *MultiResult) Render() string {
	var b strings.Builder
	fig := 14
	if r.Cores == 8 {
		fig = 15
	}
	fmt.Fprintf(&b, "Figure %d — %d-core weighted speedup %% over original, distribution across mixes\n",
		fig, r.Cores)
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s %8s %8s %16s (n=%d)\n",
		"scheme", "min", "p25", "median", "p75", "max", "mean", "mean 95%CI", r.Summary[r.Schemes[0]].N)
	for _, s := range r.Schemes {
		sum := r.Summary[s]
		lo, hi := stats.BootstrapCI(r.Speedups[s], 0.95, 500)
		fmt.Fprintf(&b, "%-14s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f   [%5.1f,%5.1f]\n",
			s, sum.Min, sum.P25, sum.Median, sum.P75, sum.Max, sum.Mean, lo, hi)
	}
	return b.String()
}
