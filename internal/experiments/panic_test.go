package experiments

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// panicReader panics after a fixed number of accesses, standing in for a
// broken generator or prefetcher deep inside a simulation.
type panicReader struct{ left int }

func (r *panicReader) Next(a *trace.Access) bool {
	if r.left <= 0 {
		panic("injected simulation failure")
	}
	r.left--
	a.VAddr = 0x40000000 + mem.Addr(r.left)*mem.BlockSize
	a.PC = 0x400000
	a.Gap = 1
	return true
}

// TestRunBatchRecoversPanics: a panic inside one simulation must fail only
// that job — surfaced through the batch's joined error with the job named —
// while the remaining jobs complete instead of the process crashing.
func TestRunBatchRecoversPanics(t *testing.T) {
	o := tinyOptions(t)
	o.Warmup = 5_000
	o.Instructions = 20_000
	o.Parallelism = 2

	bad := trace.Workload{
		Name: "panicker",
		New:  func(uint64) trace.Reader { return &panicReader{left: 100} },
	}
	jobs := []Job{
		{Workload: o.Workloads[0], Spec: sim.PrefSpec{Base: "none"}},
		{Workload: bad, Spec: sim.PrefSpec{Base: "none"}},
		{Workload: o.Workloads[1], Spec: sim.PrefSpec{Base: "none"}},
	}
	_, err := runBatch(o, jobs)
	if err == nil {
		t.Fatal("batch with a panicking job returned no error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "panicked") || !strings.Contains(msg, "panicker") {
		t.Errorf("error does not attribute the panic to its job: %v", msg)
	}
	if strings.Contains(msg, o.Workloads[0].Name+"/") {
		t.Errorf("healthy job appears in the error: %v", msg)
	}

	// The same jobs without the saboteur must run clean — the recovery path
	// must not leak state (a held semaphore slot would hang this batch).
	good := []Job{jobs[0], jobs[2]}
	if _, err := runBatch(o, good); err != nil {
		t.Fatalf("healthy batch failed after recovered panic: %v", err)
	}
}
