package experiments

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

// detJobs builds a small cross-prefetcher batch over a reduced workload set.
func detJobs(t *testing.T, o Options) []Job {
	t.Helper()
	var jobs []Job
	for _, w := range o.Workloads {
		jobs = append(jobs,
			Job{Workload: w, Spec: sim.PrefSpec{Base: "none"}},
			Job{Workload: w, Spec: sim.PrefSpec{Base: "spp", Variant: core.PSA}},
			Job{Workload: w, Spec: sim.PrefSpec{Base: "bop", Variant: core.PSASD}},
			// The two crossing families: pangloss exercises the Markov chain
			// walker, vamp the virtual-candidate translation path (TLB-probe
			// gated) — both must be as parallelism- and replay-deterministic
			// as the original four.
			Job{Workload: w, Spec: sim.PrefSpec{Base: "pangloss", Variant: core.PSASD}},
			Job{Workload: w, Spec: sim.PrefSpec{Base: "vamp", Variant: core.PSA}},
		)
	}
	return jobs
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunBatchDeterminism is the soundness precondition for the result
// cache: a batch's results must not depend on worker parallelism, and two
// runs with identical options must be byte-identical.
func TestRunBatchDeterminism(t *testing.T) {
	o := tinyOptions(t)
	o.Workloads = o.Workloads[:3]
	o.Warmup = 20_000
	o.Instructions = 80_000
	jobs := detJobs(t, o)

	o.Parallelism = 1
	serial, err := runBatch(o, jobs)
	if err != nil {
		t.Fatal(err)
	}
	o.Parallelism = 8
	parallel, err := runBatch(o, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sb, pb := mustJSON(t, serial), mustJSON(t, parallel); !bytes.Equal(sb, pb) {
		t.Errorf("parallelism changed results:\nserial   %s\nparallel %s", sb, pb)
	}

	o.Parallelism = runtime.GOMAXPROCS(0)
	maxprocs, err := runBatch(o, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sb, mb := mustJSON(t, serial), mustJSON(t, maxprocs); !bytes.Equal(sb, mb) {
		t.Errorf("GOMAXPROCS parallelism changed results:\nserial   %s\nmaxprocs %s", sb, mb)
	}

	again, err := runBatch(o, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := mustJSON(t, parallel), mustJSON(t, again); !bytes.Equal(a, b) {
		t.Error("two identical-seed runs diverged")
	}
}

// TestRunBatchPoolingEquivalence: the pooled request path (the default) and
// fresh per-access allocation must be observationally identical — the
// zero-allocation overhaul is an optimisation, never a semantic change. A
// divergence here means some component retained a pooled *mem.Request beyond
// its synchronous Access call.
func TestRunBatchPoolingEquivalence(t *testing.T) {
	o := tinyOptions(t)
	o.Workloads = o.Workloads[:3]
	o.Warmup = 20_000
	o.Instructions = 80_000
	jobs := detJobs(t, o)

	pooled, err := runBatch(o, jobs)
	if err != nil {
		t.Fatal(err)
	}

	mem.FreshRequests = true
	defer func() { mem.FreshRequests = false }()
	fresh, err := runBatch(o, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if pb, fb := mustJSON(t, pooled), mustJSON(t, fresh); !bytes.Equal(pb, fb) {
		t.Errorf("pooled and fresh-allocation runs diverged:\npooled %s\nfresh  %s", pb, fb)
	}
}

// TestRunBatchFlatVMEquivalence: the dense-array translation structures (flat
// page table, parallel-array TLB and walk cache) and the pointer-radix
// originals must be observationally identical — the vm flattening is an
// optimisation, never a semantic change. The batch runs a quick
// workload×prefetcher matrix at full parallelism under both settings; any
// walk-reference, TLB-replacement or page-size divergence shows up as a
// byte-level result diff.
func TestRunBatchFlatVMEquivalence(t *testing.T) {
	o := tinyOptions(t)
	o.Workloads = o.Workloads[:3]
	o.Warmup = 20_000
	o.Instructions = 80_000
	o.Parallelism = runtime.GOMAXPROCS(0)
	jobs := detJobs(t, o)

	if !vm.FlatVM {
		t.Fatal("FlatVM must default to true")
	}
	flat, err := runBatch(o, jobs)
	if err != nil {
		t.Fatal(err)
	}

	vm.FlatVM = false
	defer func() { vm.FlatVM = true }()
	radix, err := runBatch(o, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if fb, rb := mustJSON(t, flat), mustJSON(t, radix); !bytes.Equal(fb, rb) {
		t.Errorf("flat and radix vm runs diverged:\nflat  %s\nradix %s", fb, rb)
	}
}

// TestFusedPathEquivalence: the devirtualized hierarchy descent (direct
// *cache.Cache calls core→L1D→L2→LLC→DRAM, line-hit memo, packed partial-tag
// probe, batched prefetch drain, MSHR-saturation prefetch drop) must be
// observationally identical to the legacy mem.Port dispatch chain — the fused
// path is an optimisation, never a semantic change. The batch runs the quick
// workload×prefetcher matrix, widened with the remaining engine families
// (ppf, vldp) and an L1-prefetching row, at full parallelism under both
// settings; any hit/miss, replacement, MSHR, stats or timing divergence shows
// up as a byte-level result diff.
func TestFusedPathEquivalence(t *testing.T) {
	o := tinyOptions(t)
	o.Warmup = 20_000
	o.Instructions = 80_000
	o.Parallelism = runtime.GOMAXPROCS(0)
	jobs := detJobs(t, o)
	for _, w := range o.Workloads[:2] {
		jobs = append(jobs,
			Job{Workload: w, Spec: sim.PrefSpec{Base: "ppf", Variant: core.PSA}},
			Job{Workload: w, Spec: sim.PrefSpec{Base: "vldp", Variant: core.Original}},
			Job{Workload: w, Spec: sim.PrefSpec{Base: "spp", Variant: core.PSA2MB, L1: sim.L1IPCPPP}},
			Job{Workload: w, Spec: sim.PrefSpec{Base: "pangloss", Variant: core.PSA2MB}},
			Job{Workload: w, Spec: sim.PrefSpec{Base: "vamp", Variant: core.PSASD}},
		)
	}

	if !mem.FusedPath {
		t.Fatal("FusedPath must default to true")
	}
	fused, err := runBatch(o, jobs)
	if err != nil {
		t.Fatal(err)
	}

	mem.FusedPath = false
	defer func() { mem.FusedPath = true }()
	legacy, err := runBatch(o, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if fb, lb := mustJSON(t, fused), mustJSON(t, legacy); !bytes.Equal(fb, lb) {
		t.Errorf("fused and legacy descent runs diverged:\nfused  %s\nlegacy %s", fb, lb)
	}
}

// TestRunBatchSeedSensitivity: the seed must actually matter, or the cache
// key's Seed component would be dead weight.
func TestRunBatchSeedSensitivity(t *testing.T) {
	o := tinyOptions(t)
	// soplex and pr.road drive their generators from the run seed; pure
	// stream workloads (libquantum, milc) are intentionally seed-invariant.
	o.Workloads = o.Workloads[2:4]
	o.Warmup = 20_000
	o.Instructions = 80_000
	jobs := detJobs(t, o)
	r1, err := runBatch(o, jobs)
	if err != nil {
		t.Fatal(err)
	}
	o.Seed = 2
	r2, err := runBatch(o, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(mustJSON(t, r1), mustJSON(t, r2)) {
		t.Error("seed change produced identical results")
	}
}
