package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

// tinyOptions runs experiments at smoke-test scale over a reduced workload
// set: fast enough for CI, large enough to exercise every code path.
func tinyOptions(t *testing.T) Options {
	t.Helper()
	o := DefaultOptions()
	o.Warmup = 30_000
	o.Instructions = 120_000
	o.Parallelism = 8
	o.Mixes = 2
	names := []string{"libquantum", "milc", "soplex", "pr.road", "qmm_fp_12", "mlpack_cf"}
	ws, err := WorkloadsByName(names)
	if err != nil {
		t.Fatal(err)
	}
	o.Workloads = ws
	return o
}

func TestRunDispatchesAllNames(t *testing.T) {
	if _, err := Run("bogus", DefaultOptions()); err == nil {
		t.Error("unknown experiment did not error")
	}
	// table1 is cheap enough to run through the dispatcher.
	r, err := Run("table1", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Render(), "Table I") {
		t.Error("table1 render missing header")
	}
}

func TestFigure2(t *testing.T) {
	o := tinyOptions(t)
	r, err := Figure2(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range []string{"spp", "vldp", "ppf", "bop"} {
		s, ok := r.PerPrefetcher[base]
		if !ok {
			t.Fatalf("missing prefetcher %s", base)
		}
		if s.N != len(o.Workloads) {
			t.Errorf("%s: N = %d", base, s.N)
		}
		if s.Max < 0 || s.Max > 1 {
			t.Errorf("%s: probability out of range: %+v", base, s)
		}
	}
	// 2MB-heavy workloads must show a nonzero missed opportunity for at
	// least one prefetcher.
	if r.PerWorkload["spp"]["libquantum"] <= 0 {
		t.Error("libquantum shows no discarded safe crossings under SPP")
	}
	// 4KB-heavy soplex must show almost none.
	if r.PerWorkload["spp"]["soplex"] > 0.05 {
		t.Errorf("soplex discard probability = %v", r.PerWorkload["spp"]["soplex"])
	}
	if !strings.Contains(r.Render(), "Figure 2") {
		t.Error("render missing title")
	}
}

func TestFigure3(t *testing.T) {
	o := tinyOptions(t)
	r, err := Figure3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != len(nineBenchmarks) {
		t.Fatalf("series = %d", len(r.Series))
	}
	// libquantum stays ~100% 2MB; soplex stays low — the Figure 3 shapes.
	lq := r.Series["libquantum"]
	if lq[len(lq)-1] < 0.9 {
		t.Errorf("libquantum final 2MB fraction = %v", lq[len(lq)-1])
	}
	sp := r.Series["soplex"]
	if sp[len(sp)-1] > 0.5 {
		t.Errorf("soplex final 2MB fraction = %v", sp[len(sp)-1])
	}
	if !strings.Contains(r.Render(), "Figure 3") {
		t.Error("render missing title")
	}
}

func TestFigure4And5Shapes(t *testing.T) {
	o := tinyOptions(t)
	r4, err := Figure4(o)
	if err != nil {
		t.Fatal(err)
	}
	// Magic page-size awareness must not lose to the original in geomean.
	if r4.Geomean["SPP-PSA-Magic"] < r4.Geomean["SPP"] {
		t.Errorf("SPP-PSA-Magic geomean (%v) below SPP (%v)",
			r4.Geomean["SPP-PSA-Magic"], r4.Geomean["SPP"])
	}
	r5, err := Figure5(o)
	if err != nil {
		t.Fatal(err)
	}
	// milc: the 2MB-indexed variant must beat both (its long strides are
	// inexpressible with 4KB deltas) — the paper's Figure 5 highlight.
	milc2 := r5.Speedup["SPP-PSA-Magic-2MB"]["milc"]
	milc1 := r5.Speedup["SPP-PSA-Magic"]["milc"]
	if milc2 <= milc1 {
		t.Errorf("milc: Magic-2MB (%v%%) not above Magic (%v%%)", milc2, milc1)
	}
	if !strings.Contains(r5.Render(), "Figure 5") {
		t.Error("render missing title")
	}
}

func TestFigure8Shapes(t *testing.T) {
	o := tinyOptions(t)
	r, err := Figure8(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Geomean["PSA"] < 0 {
		t.Errorf("SPP-PSA geomean = %v%%, expected non-negative", r.Geomean["PSA"])
	}
	if r.Geomean["PSA-SD"] < r.Geomean["PSA-2MB"]-1 && r.Geomean["PSA-SD"] < r.Geomean["PSA"]-1 {
		t.Errorf("PSA-SD (%v%%) well below both PSA (%v%%) and PSA-2MB (%v%%)",
			r.Geomean["PSA-SD"], r.Geomean["PSA"], r.Geomean["PSA-2MB"])
	}
	if len(r.Order) != len(o.Workloads) {
		t.Errorf("order = %d", len(r.Order))
	}
	out := r.Render()
	if !strings.Contains(out, "GeoMean") || !strings.Contains(out, "milc") {
		t.Error("render incomplete")
	}
}

func TestFigure13Shapes(t *testing.T) {
	o := tinyOptions(t)
	r, err := Figure13(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Order {
		if r.Speedup[n] <= 0 {
			t.Errorf("%s speedup = %v", n, r.Speedup[n])
		}
	}
	// BOP-PSA and BOP-PSA-SD coincide.
	if r.Speedup["BOP-PSA"] != r.Speedup["BOP-PSA-SD"] {
		t.Error("BOP PSA and PSA-SD diverged")
	}
	if !strings.Contains(r.Render(), "Figure 13") {
		t.Error("render missing title")
	}
}

func TestFigure14Runs(t *testing.T) {
	o := tinyOptions(t)
	o.Warmup = 20_000
	o.Instructions = 60_000
	r, err := Figure14(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores != 4 {
		t.Errorf("cores = %d", r.Cores)
	}
	if len(r.Schemes) != 8 { // 4 prefetchers × {PSA, PSA-SD}
		t.Errorf("schemes = %v", r.Schemes)
	}
	for _, s := range r.Schemes {
		if len(r.Speedups[s]) != o.Mixes {
			t.Errorf("%s: %d mixes", s, len(r.Speedups[s]))
		}
	}
	if !strings.Contains(r.Render(), "Figure 14") {
		t.Error("render missing title")
	}
}

func TestMixesDeterministic(t *testing.T) {
	o := tinyOptions(t)
	a := mixesFor(o, 4, 5)
	b := mixesFor(o, 4, 5)
	for i := range a {
		for c := range a[i] {
			if a[i][c].Name != b[i][c].Name {
				t.Fatal("mixes not deterministic")
			}
		}
	}
	// Different core counts draw different mixes.
	c8 := mixesFor(o, 8, 5)
	if len(c8[0]) != 8 {
		t.Errorf("8-core mix size = %d", len(c8[0]))
	}
}

func TestSuiteGroupingForFig9(t *testing.T) {
	counts := map[string]int{}
	for _, w := range trace.Intensive() {
		counts[suiteOf(w)]++
	}
	if counts["SPEC"] != 31 || counts["GAP+ML+CLOUD"] != 10 || counts["QMM"] != 39 {
		t.Errorf("suite grouping = %v", counts)
	}
}

func TestAblationRuns(t *testing.T) {
	o := tinyOptions(t)
	o.Workloads = o.Workloads[:3]
	r, err := Ablation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Order) != 4 {
		t.Fatalf("configs = %v", r.Order)
	}
	for _, n := range r.Order {
		if _, ok := r.Geomean[n]; !ok {
			t.Errorf("missing config %s", n)
		}
	}
	if !strings.Contains(r.Render(), "Ablation") {
		t.Error("render missing title")
	}
}

func TestExtensionsRuns(t *testing.T) {
	o := tinyOptions(t)
	o.Workloads = o.Workloads[:3]
	r, err := Extensions(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range []string{"sms", "ampm", "temporal"} {
		if _, ok := r.SpeedupOverNone[base]; !ok {
			t.Errorf("missing base %s", base)
		}
	}
	if r.TemporalMetadataBytes < 100<<10 {
		t.Errorf("temporal metadata = %d", r.TemporalMetadataBytes)
	}
	if r.TLBPrefetchWalkReduction <= 0 {
		t.Errorf("TLB prefetch walk reduction = %v", r.TLBPrefetchWalkReduction)
	}
	if !strings.Contains(r.Render(), "Extensions") {
		t.Error("render missing title")
	}
}

func TestShapeChecksPassAtTinyScale(t *testing.T) {
	o := tinyOptions(t)
	r2, err := Figure2(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range r2.Check() {
		t.Errorf("fig2: %v", e)
	}
	r5, err := Figure5(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range r5.Check() {
		t.Errorf("fig5: %v", e)
	}
	r8, err := Figure8(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range r8.Check() {
		t.Errorf("fig8: %v", e)
	}
}

func TestShapeChecksCatchViolations(t *testing.T) {
	// Hand-built violating results must be flagged.
	bad8 := &Fig8Result{Base: "spp", Geomean: map[string]float64{
		"PSA": -5, "PSA-2MB": 3, "PSA-SD": -4,
	}}
	if len(bad8.Check()) == 0 {
		t.Error("negative PSA geomean not flagged")
	}
	bad13 := &Fig13Result{Speedup: map[string]float64{
		"IPCP": 1.2, "IPCP++": 1.0, "SPP-PSA": 0.9, "SPP-PSA-SD": 0.9,
		"PPF-PSA": 0.9, "PPF-PSA-SD": 0.9, "BOP-PSA": 1.0, "BOP-PSA-SD": 1.0,
	}}
	if len(bad13.Check()) < 2 {
		t.Error("fig13 violations not flagged")
	}
	badMulti := &MultiResult{Cores: 4, Summary: map[string]stats.Summary{
		"SPP-PSA": {Median: -10}, "SPP-PSA-SD": {Median: 2},
	}}
	if len(badMulti.Check()) == 0 {
		t.Error("negative multicore median not flagged")
	}
	if CheckAll(&TableIResult{}) != nil {
		t.Error("non-Checker result produced checks")
	}
}

func TestFigure9Shapes(t *testing.T) {
	o := tinyOptions(t)
	o.Workloads = o.Workloads[:4]
	r, err := Figure9(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range r.Check() {
		t.Error(e)
	}
	out := r.Render()
	for _, want := range []string{"SPP", "VLDP", "PPF", "BOP", "ALL"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %s", want)
		}
	}
}

func TestFigure10Runs(t *testing.T) {
	o := tinyOptions(t)
	r, err := Figure10(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows["PSA"]) != len(representative10) {
		t.Errorf("rows = %d", len(r.Rows["PSA"]))
	}
	if !strings.Contains(r.Render(), "Figure 10") {
		t.Error("render missing title")
	}
}

func TestFigure11Shapes(t *testing.T) {
	o := tinyOptions(t)
	o.Workloads = o.Workloads[:4]
	r, err := Figure11(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range []string{"spp", "vldp", "ppf"} {
		if len(r.Geomean[base]) != 4 {
			t.Errorf("%s schemes = %d", base, len(r.Geomean[base]))
		}
	}
	if !strings.Contains(r.Render(), "SD-Proposed") {
		t.Error("render missing scheme")
	}
}

func TestFigure12Runs(t *testing.T) {
	o := tinyOptions(t)
	o.Workloads = o.Workloads[:2]
	o.Instructions = 60_000
	o.Warmup = 20_000
	r, err := Figure12(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, sweep := range []string{"L2 MSHR", "LLC size", "DRAM rate"} {
		if len(r.Points[sweep]) == 0 {
			t.Errorf("sweep %s empty", sweep)
		}
	}
	if !strings.Contains(r.Render(), "400MT/s") {
		t.Error("render missing sweep point")
	}
}

func TestNonIntensiveRuns(t *testing.T) {
	o := tinyOptions(t)
	// NonIntensive overrides Workloads itself with trace.All(); shrink the
	// run length instead.
	o.Instructions = 40_000
	o.Warmup = 15_000
	r, err := NonIntensive(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range []string{"spp", "vldp", "ppf", "bop"} {
		if _, ok := r.Geomean[base]; !ok {
			t.Errorf("missing base %s", base)
		}
	}
	if !strings.Contains(r.Render(), "non-intensive") {
		t.Error("render missing title")
	}
}

func TestPerPrefetcherVariantStudyViaBase(t *testing.T) {
	o := tinyOptions(t)
	o.Workloads = o.Workloads[:3]
	o.Base = "vldp"
	r, err := Run("fig8", o)
	if err != nil {
		t.Fatal(err)
	}
	f8, ok := r.(*Fig8Result)
	if !ok {
		t.Fatalf("unexpected result type %T", r)
	}
	if f8.Base != "vldp" {
		t.Errorf("base = %s", f8.Base)
	}
}

func TestHTMLReport(t *testing.T) {
	o := tinyOptions(t)
	r8, err := Figure8(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	err = WriteHTMLReport(&buf, "report", []struct {
		Name   string
		Result Renderer
	}{{"fig8", r8}, {"table1", &TableIResult{Text: "Table I"}}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "PSA-SD", "Table I", "shape checks: PASS", "</html>"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// A violating result must be reported as such.
	bad := &Fig8Result{Base: "spp", Geomean: map[string]float64{"PSA": -9, "PSA-2MB": -9, "PSA-SD": -20}}
	buf.Reset()
	WriteHTMLReport(&buf, "bad", []struct {
		Name   string
		Result Renderer
	}{{"fig8", bad}})
	if !strings.Contains(buf.String(), "shape violations") {
		t.Error("violations not surfaced in report")
	}
}
