package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ---------------------------------------------------------------------------
// Crossing study — physical (PPM) vs virtual (TLB-gated) page crossing
// ---------------------------------------------------------------------------

// CrossingResult compares the two ways a prefetch earns the right to cross a
// 4KB line on one axis: pangloss crosses physically, licensed by the PPM
// page-size bit; vamp crosses virtually, licensed by a TLB-resident
// translation of the target page. Both land in the engine's CrossedPage4K
// counter (computed on physical addresses), so crossed-prefetches-per-kilo-
// instruction is directly comparable between the two mechanisms.
type CrossingResult struct {
	Families []string // base prefetchers, in render order
	Variants []string // speedup columns (relative to each family's Original)
	// Speedup[family][variant][workload] is percent speedup over the
	// family's Original variant.
	Speedup map[string]map[string]map[string]float64
	Geomean map[string]map[string]float64
	// CrossedPKI[family][variant] is the mean number of issued prefetches
	// that crossed a 4KB line per kilo-instruction, across workloads —
	// including the Original variants, whose boundary policy pins it to 0.
	CrossedPKI map[string]map[string]float64
	// VASharePct[family][variant] is the percentage of issued prefetches
	// that originated as virtual candidates (0 for physical-only families).
	VASharePct map[string]map[string]float64
	// UntranslatedPct[family][variant] is the percentage of virtual
	// candidates dropped at the TLB-residency gate, relative to issued+dropped.
	UntranslatedPct map[string]map[string]float64
	Order           []string
}

// crossingFamilies are the two new prefetcher families: one crossing in
// physical address space under PPM, one in virtual address space under the
// TLB-residency gate.
func crossingFamilies() []string { return []string{"pangloss", "vamp"} }

// crossingVariants maps the engine variants the study sweeps to their column
// names; Original is the per-family baseline and the zero point of the
// crossing axis.
var crossingVariants = []core.Variant{core.Original, core.PSA, core.PSA2MB, core.PSASD}

// Crossing runs both families through the Original/PSA/PSA-2MB/PSA-SD sweep
// across the workload set.
func Crossing(o Options) (*CrossingResult, error) {
	res := &CrossingResult{
		Families:        crossingFamilies(),
		Variants:        []string{"PSA", "PSA-2MB", "PSA-SD"},
		Speedup:         map[string]map[string]map[string]float64{},
		Geomean:         map[string]map[string]float64{},
		CrossedPKI:      map[string]map[string]float64{},
		VASharePct:      map[string]map[string]float64{},
		UntranslatedPct: map[string]map[string]float64{},
	}
	for _, w := range o.workloads() {
		res.Order = append(res.Order, w.Name)
	}
	for _, base := range res.Families {
		var jobs []Job
		for _, w := range o.workloads() {
			for _, v := range crossingVariants {
				jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: base, Variant: v}})
			}
		}
		rs, err := runBatch(o, jobs)
		if err != nil {
			return nil, err
		}
		type key struct {
			w string
			v core.Variant
		}
		byKey := map[key]sim.Result{}
		for i, r := range rs {
			byKey[key{jobs[i].Workload.Name, jobs[i].Spec.Variant}] = r
		}
		res.Speedup[base] = map[string]map[string]float64{}
		res.Geomean[base] = map[string]float64{}
		res.CrossedPKI[base] = map[string]float64{}
		res.VASharePct[base] = map[string]float64{}
		res.UntranslatedPct[base] = map[string]float64{}
		for _, v := range crossingVariants {
			var crossed, issued, va, untr, kiloInstr float64
			for _, w := range res.Order {
				r := byKey[key{w, v}]
				crossed += float64(r.Engine.CrossedPage4K)
				issued += float64(r.Engine.Issued)
				va += float64(r.Engine.VAIssued)
				untr += float64(r.Engine.DiscardedUntranslated)
				kiloInstr += float64(r.Instructions) / 1000
			}
			name := v.String()
			if kiloInstr > 0 {
				res.CrossedPKI[base][name] = crossed / kiloInstr
			}
			if issued > 0 {
				res.VASharePct[base][name] = va / issued * 100
			}
			if va+untr > 0 {
				res.UntranslatedPct[base][name] = untr / (va + untr) * 100
			}
			if v == core.Original {
				continue
			}
			per := map[string]float64{}
			var bases, vars []float64
			for _, w := range res.Order {
				b, r := byKey[key{w, core.Original}], byKey[key{w, v}]
				per[w] = speedupPct(b.IPC, r.IPC)
				bases = append(bases, b.IPC)
				vars = append(vars, r.IPC)
			}
			res.Speedup[base][name] = per
			res.Geomean[base][name] = stats.GeomeanSpeedup(bases, vars)
		}
	}
	return res, nil
}

// Render implements Renderer.
func (r *CrossingResult) Render() string {
	var b strings.Builder
	b.WriteString("Crossing — PPM physical crossing (pangloss) vs TLB-gated virtual crossing (vamp)\n")
	for _, base := range r.Families {
		fmt.Fprintf(&b, "%s: speedup %% over %s original\n",
			strings.ToUpper(base), strings.ToUpper(base))
		fmt.Fprintf(&b, "  %-18s %10s %10s %10s\n", "workload", "PSA", "PSA-2MB", "PSA-SD")
		for _, w := range r.Order {
			fmt.Fprintf(&b, "  %-18s %10.1f %10.1f %10.1f\n", w,
				r.Speedup[base]["PSA"][w], r.Speedup[base]["PSA-2MB"][w], r.Speedup[base]["PSA-SD"][w])
		}
		fmt.Fprintf(&b, "  %-18s %10.1f %10.1f %10.1f\n", "GeoMean",
			r.Geomean[base]["PSA"], r.Geomean[base]["PSA-2MB"], r.Geomean[base]["PSA-SD"])
	}
	b.WriteString("crossed 4KB lines per kilo-instruction (0 under the Original boundary)\n")
	fmt.Fprintf(&b, "  %-10s %10s %10s %10s %10s\n", "family", "Original", "PSA", "PSA-2MB", "PSA-SD")
	for _, base := range r.Families {
		fmt.Fprintf(&b, "  %-10s %10.3f %10.3f %10.3f %10.3f\n", base,
			r.CrossedPKI[base]["Original"], r.CrossedPKI[base]["PSA"],
			r.CrossedPKI[base]["PSA-2MB"], r.CrossedPKI[base]["PSA-SD"])
	}
	b.WriteString("virtual-candidate share of issued prefetches (%) / dropped at TLB gate (%)\n")
	for _, base := range r.Families {
		fmt.Fprintf(&b, "  %-10s", base)
		for _, v := range []string{"Original", "PSA", "PSA-2MB", "PSA-SD"} {
			fmt.Fprintf(&b, " %6.1f/%-6.1f", r.VASharePct[base][v], r.UntranslatedPct[base][v])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
