package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------------
// Figure 2 — probability of discarding a safe page-crossing prefetch
// ---------------------------------------------------------------------------

// Fig2Result holds, per prefetcher, the distribution of the probability that
// a proposed prefetch is discarded at the 4KB boundary although its block
// resides in a 2MB page.
type Fig2Result struct {
	PerPrefetcher map[string]stats.Summary
	PerWorkload   map[string]map[string]float64 // prefetcher → workload → p
}

// Figure2 evaluates the four original prefetchers across the workload set.
func Figure2(o Options) (*Fig2Result, error) {
	res := &Fig2Result{
		PerPrefetcher: map[string]stats.Summary{},
		PerWorkload:   map[string]map[string]float64{},
	}
	for _, base := range sim.BaseNames() {
		var jobs []Job
		for _, w := range o.workloads() {
			jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: base, Variant: core.Original}})
		}
		rs, err := runBatch(o, jobs)
		if err != nil {
			return nil, err
		}
		var ps []float64
		perW := map[string]float64{}
		for i, r := range rs {
			p := r.Engine.DiscardProbability()
			ps = append(ps, p)
			perW[jobs[i].Workload.Name] = p
		}
		res.PerPrefetcher[base] = stats.Summarize(ps)
		res.PerWorkload[base] = perW
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2 — P(prefetch discarded at 4KB boundary | block in 2MB page)\n")
	b.WriteString("violin summaries per prefetcher:\n")
	fmt.Fprintf(&b, "%-6s %8s %8s %8s %8s %8s %8s %8s\n",
		"pref", "min", "p25", "median", "p75", "p90", "max", "mean")
	for _, base := range sim.BaseNames() {
		s := r.PerPrefetcher[base]
		fmt.Fprintf(&b, "%-6s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			strings.ToUpper(base), s.Min, s.P25, s.Median, s.P75, s.P90, s.Max, s.Mean)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 3 — fraction of memory mapped to 2MB pages over execution
// ---------------------------------------------------------------------------

// Fig3Result holds per-workload time series of the 2MB-mapped fraction.
type Fig3Result struct {
	Series map[string][]float64
	Order  []string
}

// Figure3 samples the THP allocator over execution of the nine benchmarks.
func Figure3(o Options) (*Fig3Result, error) {
	ws, err := WorkloadsByName(nineBenchmarks)
	if err != nil {
		return nil, err
	}
	var jobs []Job
	for _, w := range ws {
		jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: "none"}})
	}
	rs, err := runBatch(o, jobs)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{Series: map[string][]float64{}, Order: nineBenchmarks}
	for i, r := range rs {
		res.Series[jobs[i].Workload.Name] = r.Frac2MOverTime
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3 — % of allocated memory mapped to 2MB pages over execution\n")
	for _, name := range r.Order {
		fmt.Fprintf(&b, "%-14s", name)
		for _, f := range r.Series[name] {
			fmt.Fprintf(&b, " %5.1f", f*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figures 4 & 5 — the Magic studies on SPP
// ---------------------------------------------------------------------------

// MagicResult holds per-workload speedups over a no-prefetch baseline for the
// SPP Magic variants.
type MagicResult struct {
	Figure   int
	Variants []string
	// Speedup[variant][workload] is percent speedup over no prefetching.
	Speedup map[string]map[string]float64
	Geomean map[string]float64
	Order   []string
}

func magicStudy(o Options, figure int, variants map[string]core.Variant, order []string) (*MagicResult, error) {
	ws, err := WorkloadsByName(nineBenchmarks)
	if err != nil {
		return nil, err
	}
	var jobs []Job
	for _, w := range ws {
		jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: "none"}})
		for _, v := range variants {
			jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: "spp", Variant: v}})
		}
	}
	rs, err := runBatch(o, jobs)
	if err != nil {
		return nil, err
	}
	byKey := map[string]sim.Result{}
	for i, r := range rs {
		byKey[jobs[i].Workload.Name+"/"+jobs[i].Spec.String()] = r
	}
	res := &MagicResult{
		Figure:   figure,
		Variants: order,
		Speedup:  map[string]map[string]float64{},
		Geomean:  map[string]float64{},
		Order:    nineBenchmarks,
	}
	for name, v := range variants {
		per := map[string]float64{}
		var bases, vars []float64
		for _, w := range ws {
			base := byKey[w.Name+"/no-prefetch"]
			variant := byKey[w.Name+"/"+sim.PrefSpec{Base: "spp", Variant: v}.String()]
			per[w.Name] = speedupPct(base.IPC, variant.IPC)
			bases = append(bases, base.IPC)
			vars = append(vars, variant.IPC)
		}
		res.Speedup[name] = per
		res.Geomean[name] = stats.GeomeanSpeedup(bases, vars)
	}
	return res, nil
}

// Figure4 compares SPP original with the oracle page-size-aware SPP
// (SPP-PSA-Magic) over a no-prefetch baseline.
func Figure4(o Options) (*MagicResult, error) {
	return magicStudy(o, 4, map[string]core.Variant{
		"SPP":           core.Original,
		"SPP-PSA-Magic": core.PSAMagic,
	}, []string{"SPP", "SPP-PSA-Magic"})
}

// Figure5 adds the 2MB-indexed oracle variant (SPP-PSA-Magic-2MB).
func Figure5(o Options) (*MagicResult, error) {
	return magicStudy(o, 5, map[string]core.Variant{
		"SPP":               core.Original,
		"SPP-PSA-Magic":     core.PSAMagic,
		"SPP-PSA-Magic-2MB": core.PSAMagic2MB,
	}, []string{"SPP", "SPP-PSA-Magic", "SPP-PSA-Magic-2MB"})
}

// Render implements Renderer.
func (r *MagicResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d — speedup %% over no-prefetch baseline\n", r.Figure)
	fmt.Fprintf(&b, "%-14s", "workload")
	for _, v := range r.Variants {
		fmt.Fprintf(&b, " %18s", v)
	}
	b.WriteByte('\n')
	for _, w := range r.Order {
		fmt.Fprintf(&b, "%-14s", w)
		for _, v := range r.Variants {
			fmt.Fprintf(&b, " %18.1f", r.Speedup[v][w])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-14s", "GeoMean")
	for _, v := range r.Variants {
		fmt.Fprintf(&b, " %18.1f", r.Geomean[v])
	}
	b.WriteByte('\n')
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 8 — SPP PSA variants across all workloads
// ---------------------------------------------------------------------------

// Fig8Result holds per-workload speedups of the PSA variants over the
// original prefetcher.
type Fig8Result struct {
	Base     string
	Variants []string
	Speedup  map[string]map[string]float64 // variant → workload → %
	Geomean  map[string]float64
	Order    []string
}

// Figure8 evaluates SPP-PSA, SPP-PSA-2MB, and SPP-PSA-SD over SPP original
// across the full workload set.
func Figure8(o Options) (*Fig8Result, error) { return variantStudy(o, "spp") }

// variantStudy runs the PSA/PSA-2MB/PSA-SD comparison for one base
// prefetcher.
func variantStudy(o Options, base string) (*Fig8Result, error) {
	variants := []core.Variant{core.Original, core.PSA, core.PSA2MB, core.PSASD}
	var jobs []Job
	for _, w := range o.workloads() {
		for _, v := range variants {
			jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: base, Variant: v}})
		}
	}
	rs, err := runBatch(o, jobs)
	if err != nil {
		return nil, err
	}
	ipc := map[string]map[core.Variant]float64{}
	for i, r := range rs {
		w := jobs[i].Workload.Name
		if ipc[w] == nil {
			ipc[w] = map[core.Variant]float64{}
		}
		ipc[w][jobs[i].Spec.Variant] = r.IPC
	}
	res := &Fig8Result{
		Base:     base,
		Variants: []string{"PSA", "PSA-2MB", "PSA-SD"},
		Speedup:  map[string]map[string]float64{},
		Geomean:  map[string]float64{},
	}
	for _, w := range o.workloads() {
		res.Order = append(res.Order, w.Name)
	}
	for _, v := range []core.Variant{core.PSA, core.PSA2MB, core.PSASD} {
		per := map[string]float64{}
		var bases, vars []float64
		for _, w := range res.Order {
			per[w] = speedupPct(ipc[w][core.Original], ipc[w][v])
			bases = append(bases, ipc[w][core.Original])
			vars = append(vars, ipc[w][v])
		}
		res.Speedup[v.String()] = per
		res.Geomean[v.String()] = stats.GeomeanSpeedup(bases, vars)
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — %s page-size-aware variants, speedup %% over %s original\n",
		strings.ToUpper(r.Base), strings.ToUpper(r.Base))
	fmt.Fprintf(&b, "%-18s %10s %10s %10s\n", "workload", "PSA", "PSA-2MB", "PSA-SD")
	for _, w := range r.Order {
		fmt.Fprintf(&b, "%-18s %10.1f %10.1f %10.1f\n",
			w, r.Speedup["PSA"][w], r.Speedup["PSA-2MB"][w], r.Speedup["PSA-SD"][w])
	}
	fmt.Fprintf(&b, "%-18s %10.1f %10.1f %10.1f\n",
		"GeoMean", r.Geomean["PSA"], r.Geomean["PSA-2MB"], r.Geomean["PSA-SD"])
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 9 — per-suite geomeans for all four prefetchers
// ---------------------------------------------------------------------------

// Fig9Result holds per-suite geomean speedups for every base prefetcher and
// PSA variant.
type Fig9Result struct {
	// Geomean[base][variant][suite] is geomean percent speedup.
	Geomean map[string]map[string]map[string]float64
}

// Figure9 evaluates the PSA, PSA-2MB, and PSA-SD versions of SPP, VLDP, PPF,
// and BOP across benchmark suites.
func Figure9(o Options) (*Fig9Result, error) {
	res := &Fig9Result{Geomean: map[string]map[string]map[string]float64{}}
	variants := []core.Variant{core.Original, core.PSA, core.PSA2MB, core.PSASD}
	for _, base := range sim.BaseNames() {
		var jobs []Job
		for _, w := range o.workloads() {
			for _, v := range variants {
				jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: base, Variant: v}})
			}
		}
		rs, err := runBatch(o, jobs)
		if err != nil {
			return nil, err
		}
		type key struct {
			w string
			v core.Variant
		}
		ipc := map[key]float64{}
		for i, r := range rs {
			ipc[key{jobs[i].Workload.Name, jobs[i].Spec.Variant}] = r.IPC
		}
		res.Geomean[base] = map[string]map[string]float64{}
		for _, v := range []core.Variant{core.PSA, core.PSA2MB, core.PSASD} {
			per := map[string]float64{}
			bySuite := map[string][][2]float64{}
			for _, w := range o.workloads() {
				pair := [2]float64{ipc[key{w.Name, core.Original}], ipc[key{w.Name, v}]}
				bySuite[suiteOf(w)] = append(bySuite[suiteOf(w)], pair)
				bySuite["ALL"] = append(bySuite["ALL"], pair)
			}
			for suite, pairs := range bySuite {
				var bases, vars []float64
				for _, p := range pairs {
					bases = append(bases, p[0])
					vars = append(vars, p[1])
				}
				per[suite] = stats.GeomeanSpeedup(bases, vars)
			}
			res.Geomean[base][v.String()] = per
		}
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9 — geomean speedup % over each prefetcher's original version\n")
	fmt.Fprintf(&b, "%-6s %-9s", "pref", "variant")
	for _, s := range suiteOrder() {
		fmt.Fprintf(&b, " %13s", s)
	}
	b.WriteByte('\n')
	for _, base := range sim.BaseNames() {
		for _, v := range []string{"PSA", "PSA-2MB", "PSA-SD"} {
			fmt.Fprintf(&b, "%-6s %-9s", strings.ToUpper(base), v)
			for _, s := range suiteOrder() {
				fmt.Fprintf(&b, " %13.1f", r.Geomean[base][v][s])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 10 — sources of improvement: latency, coverage, accuracy
// ---------------------------------------------------------------------------

// Fig10Row holds the metric deltas of one workload for one variant.
type Fig10Row struct {
	SpeedupPct                            float64
	L2LatReductionPct, LLCLatReductionPct float64 // positive is better
	L2CovDelta, LLCCovDelta               float64 // percentage points
	L2AccDelta, LLCAccDelta               float64 // percentage points
}

// Fig10Result holds per-workload metric deltas for SPP-PSA and SPP-PSA-SD
// over SPP original.
type Fig10Result struct {
	Rows  map[string]map[string]Fig10Row // variant → workload → row
	Order []string
}

// Figure10 computes the access-latency, coverage, and accuracy effects of the
// PSA and PSA-SD versions of SPP on representative workloads.
func Figure10(o Options) (*Fig10Result, error) {
	ws, err := WorkloadsByName(representative10)
	if err != nil {
		return nil, err
	}
	variants := map[string]core.Variant{"PSA": core.PSA, "PSA-SD": core.PSASD}
	var jobs []Job
	for _, w := range ws {
		jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: "spp", Variant: core.Original}})
		for _, v := range variants {
			jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: "spp", Variant: v}})
		}
	}
	rs, err := runBatch(o, jobs)
	if err != nil {
		return nil, err
	}
	byKey := map[string]sim.Result{}
	for i, r := range rs {
		byKey[jobs[i].Workload.Name+"/"+jobs[i].Spec.String()] = r
	}
	res := &Fig10Result{Rows: map[string]map[string]Fig10Row{}, Order: representative10}
	for vn, v := range variants {
		rows := map[string]Fig10Row{}
		for _, w := range ws {
			base := byKey[w.Name+"/"+sim.PrefSpec{Base: "spp", Variant: core.Original}.String()]
			varr := byKey[w.Name+"/"+sim.PrefSpec{Base: "spp", Variant: v}.String()]
			row := Fig10Row{SpeedupPct: speedupPct(base.IPC, varr.IPC)}
			if l := base.L2.AvgDemandLatency(); l > 0 {
				row.L2LatReductionPct = (1 - varr.L2.AvgDemandLatency()/l) * 100
			}
			if l := base.LLC.AvgDemandLatency(); l > 0 {
				row.LLCLatReductionPct = (1 - varr.LLC.AvgDemandLatency()/l) * 100
			}
			row.L2CovDelta = (varr.L2.Coverage() - base.L2.Coverage()) * 100
			row.LLCCovDelta = (varr.LLC.Coverage() - base.LLC.Coverage()) * 100
			row.L2AccDelta = (varr.L2.Accuracy() - base.L2.Accuracy()) * 100
			row.LLCAccDelta = (varr.LLC.Accuracy() - base.LLC.Accuracy()) * 100
			rows[w.Name] = row
		}
		res.Rows[vn] = rows
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10 — sources of improvement over SPP original\n")
	for _, v := range []string{"PSA", "PSA-SD"} {
		fmt.Fprintf(&b, "SPP-%s:\n", v)
		fmt.Fprintf(&b, "  %-16s %8s %9s %9s %8s %8s %8s %8s\n",
			"workload", "speedup%", "L2latRed%", "LLClatRed%", "L2covΔ", "LLCcovΔ", "L2accΔ", "LLCaccΔ")
		for _, w := range r.Order {
			row := r.Rows[v][w]
			fmt.Fprintf(&b, "  %-16s %8.1f %9.1f %9.1f %8.1f %8.1f %8.1f %8.1f\n",
				w, row.SpeedupPct, row.L2LatReductionPct, row.LLCLatReductionPct,
				row.L2CovDelta, row.LLCCovDelta, row.L2AccDelta, row.LLCAccDelta)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 11 — selection-logic implementations
// ---------------------------------------------------------------------------

// Fig11Result compares SD-Standard, SD-Page-Size, SD-Proposed, and
// ISO-storage per prefetcher (BOP excluded: its SD variants are identical).
type Fig11Result struct {
	// Geomean[base][scheme] is geomean % speedup over the original version.
	Geomean map[string]map[string]float64
	Schemes []string
}

// Figure11 evaluates the alternative selection-logic implementations.
func Figure11(o Options) (*Fig11Result, error) {
	schemes := map[string]core.Variant{
		"SD-Standard":  core.SDStandard,
		"SD-Page-Size": core.SDPageSize,
		"SD-Proposed":  core.PSASD,
		"ISO-Storage":  core.ISOStorage,
	}
	order := []string{"SD-Standard", "SD-Page-Size", "SD-Proposed", "ISO-Storage"}
	res := &Fig11Result{Geomean: map[string]map[string]float64{}, Schemes: order}
	for _, base := range []string{"spp", "vldp", "ppf"} {
		var jobs []Job
		for _, w := range o.workloads() {
			jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: base, Variant: core.Original}})
			for _, v := range schemes {
				jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: base, Variant: v}})
			}
		}
		rs, err := runBatch(o, jobs)
		if err != nil {
			return nil, err
		}
		type key struct {
			w string
			v core.Variant
		}
		ipc := map[key]float64{}
		for i, r := range rs {
			ipc[key{jobs[i].Workload.Name, jobs[i].Spec.Variant}] = r.IPC
		}
		res.Geomean[base] = map[string]float64{}
		for name, v := range schemes {
			var bases, vars []float64
			for _, w := range o.workloads() {
				bases = append(bases, ipc[key{w.Name, core.Original}])
				vars = append(vars, ipc[key{w.Name, v}])
			}
			res.Geomean[base][name] = stats.GeomeanSpeedup(bases, vars)
		}
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11 — selection-logic implementations, geomean speedup % over original\n")
	fmt.Fprintf(&b, "%-6s", "pref")
	for _, s := range r.Schemes {
		fmt.Fprintf(&b, " %13s", s)
	}
	b.WriteByte('\n')
	for _, base := range []string{"spp", "vldp", "ppf"} {
		fmt.Fprintf(&b, "%-6s", strings.ToUpper(base))
		for _, s := range r.Schemes {
			fmt.Fprintf(&b, " %13.1f", r.Geomean[base][s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 12 — constrained evaluation sweeps
// ---------------------------------------------------------------------------

// Fig12Result holds the geomean speedups of PSA and PSA-SD under the three
// constraint sweeps.
type Fig12Result struct {
	// Sweeps[sweep][point][base][variant] = geomean % speedup over original.
	Sweeps map[string]map[string]map[string]map[string]float64
	Points map[string][]string
}

// Figure12 sweeps L2 MSHR size, LLC size, and DRAM bandwidth.
func Figure12(o Options) (*Fig12Result, error) {
	res := &Fig12Result{
		Sweeps: map[string]map[string]map[string]map[string]float64{},
		Points: map[string][]string{},
	}
	type point struct {
		name string
		cfg  sim.Config
	}
	mkPoints := func(sweep string) []point {
		var pts []point
		switch sweep {
		case "L2 MSHR":
			for _, n := range []int{8, 16, 32, 64, 128} {
				c := o.Config
				c.L2.MSHREntries = n
				pts = append(pts, point{fmt.Sprintf("%d-entry", n), c})
			}
		case "LLC size":
			for _, kb := range []int{256, 512, 1024, 2048} {
				c := o.Config
				c.LLC.Sets = kb << 10 / (64 * c.LLC.Ways)
				pts = append(pts, point{fmt.Sprintf("%dKB", kb), c})
			}
		case "DRAM rate":
			for _, mt := range []int{400, 800, 1600, 3200, 6400} {
				c := o.Config
				c.DRAM.TransferMTps = mt
				pts = append(pts, point{fmt.Sprintf("%dMT/s", mt), c})
			}
		}
		return pts
	}
	variants := map[string]core.Variant{"PSA": core.PSA, "PSA-SD": core.PSASD}
	for _, sweep := range []string{"L2 MSHR", "LLC size", "DRAM rate"} {
		res.Sweeps[sweep] = map[string]map[string]map[string]float64{}
		for _, pt := range mkPoints(sweep) {
			res.Points[sweep] = append(res.Points[sweep], pt.name)
			res.Sweeps[sweep][pt.name] = map[string]map[string]float64{}
			po := o
			po.Config = pt.cfg
			for _, base := range sim.BaseNames() {
				var jobs []Job
				for _, w := range po.workloads() {
					jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: base, Variant: core.Original}})
					for _, v := range variants {
						jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: base, Variant: v}})
					}
				}
				rs, err := runBatch(po, jobs)
				if err != nil {
					return nil, err
				}
				type key struct {
					w string
					v core.Variant
				}
				ipc := map[key]float64{}
				for i, r := range rs {
					ipc[key{jobs[i].Workload.Name, jobs[i].Spec.Variant}] = r.IPC
				}
				per := map[string]float64{}
				for vn, v := range variants {
					var bases, vars []float64
					for _, w := range po.workloads() {
						bases = append(bases, ipc[key{w.Name, core.Original}])
						vars = append(vars, ipc[key{w.Name, v}])
					}
					per[vn] = stats.GeomeanSpeedup(bases, vars)
				}
				res.Sweeps[sweep][pt.name][base] = per
			}
		}
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 12 — constrained evaluation, geomean speedup % over original\n")
	for _, sweep := range []string{"L2 MSHR", "LLC size", "DRAM rate"} {
		fmt.Fprintf(&b, "(%s)\n", sweep)
		fmt.Fprintf(&b, "  %-10s", "point")
		for _, base := range sim.BaseNames() {
			fmt.Fprintf(&b, " %9s-PSA %8s-SD", strings.ToUpper(base), strings.ToUpper(base))
		}
		b.WriteByte('\n')
		for _, pt := range r.Points[sweep] {
			fmt.Fprintf(&b, "  %-10s", pt)
			for _, base := range sim.BaseNames() {
				fmt.Fprintf(&b, " %13.1f %11.1f",
					r.Sweeps[sweep][pt][base]["PSA"], r.Sweeps[sweep][pt][base]["PSA-SD"])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 13 — comparison with L1D prefetching
// ---------------------------------------------------------------------------

// Fig13Result holds the speedup over a no-prefetch baseline for the L1D
// prefetchers and the PSA/PSA-SD versions of the L2 prefetchers.
type Fig13Result struct {
	Speedup map[string]float64 // scheme → geomean speedup (× over no-prefetch)
	Order   []string
}

// Figure13 compares next-line, IPCP, and IPCP++ at the L1D against the
// page-size-aware L2 prefetchers. The baseline has no prefetching anywhere.
func Figure13(o Options) (*Fig13Result, error) {
	specs := []struct {
		name string
		spec sim.PrefSpec
	}{
		{"NL", sim.PrefSpec{Base: "none", L1: sim.L1NextLine}},
		{"IPCP", sim.PrefSpec{Base: "none", L1: sim.L1IPCP}},
		{"IPCP++", sim.PrefSpec{Base: "none", L1: sim.L1IPCPPP}},
		{"SPP-PSA", sim.PrefSpec{Base: "spp", Variant: core.PSA}},
		{"SPP-PSA-SD", sim.PrefSpec{Base: "spp", Variant: core.PSASD}},
		{"VLDP-PSA", sim.PrefSpec{Base: "vldp", Variant: core.PSA}},
		{"VLDP-PSA-SD", sim.PrefSpec{Base: "vldp", Variant: core.PSASD}},
		{"PPF-PSA", sim.PrefSpec{Base: "ppf", Variant: core.PSA}},
		{"PPF-PSA-SD", sim.PrefSpec{Base: "ppf", Variant: core.PSASD}},
		{"BOP-PSA", sim.PrefSpec{Base: "bop", Variant: core.PSA}},
		{"BOP-PSA-SD", sim.PrefSpec{Base: "bop", Variant: core.PSASD}},
	}
	var jobs []Job
	for _, w := range o.workloads() {
		jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: "none"}})
		for _, s := range specs {
			jobs = append(jobs, Job{Workload: w, Spec: s.spec})
		}
	}
	rs, err := runBatch(o, jobs)
	if err != nil {
		return nil, err
	}
	byKey := map[string]float64{}
	for i, r := range rs {
		byKey[jobs[i].Workload.Name+"/"+jobs[i].Spec.String()] = r.IPC
	}
	res := &Fig13Result{Speedup: map[string]float64{}}
	for _, s := range specs {
		var bases, vars []float64
		for _, w := range o.workloads() {
			bases = append(bases, byKey[w.Name+"/no-prefetch"])
			vars = append(vars, byKey[w.Name+"/"+s.spec.String()])
		}
		res.Speedup[s.name] = stats.Geomean(ratios(bases, vars))
		res.Order = append(res.Order, s.name)
	}
	return res, nil
}

func ratios(base, variant []float64) []float64 {
	out := make([]float64, len(base))
	for i := range base {
		if base[i] <= 0 {
			out[i] = 1
			continue
		}
		out[i] = variant[i] / base[i]
	}
	return out
}

// Render implements Renderer.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 13 — geomean speedup (×) over a no-prefetch baseline\n")
	for _, n := range r.Order {
		fmt.Fprintf(&b, "  %-12s %6.3f\n", n, r.Speedup[n])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Non-intensive workloads (Section VI-B1)
// ---------------------------------------------------------------------------

// NonIntensiveResult extends the evaluation with the non-intensive SPEC
// workloads.
type NonIntensiveResult struct {
	// Geomean[base][variant] across the extended set.
	Geomean map[string]map[string]float64
}

// NonIntensive evaluates all prefetchers over intensive plus non-intensive
// workloads.
func NonIntensive(o Options) (*NonIntensiveResult, error) {
	o.Workloads = trace.All()
	res := &NonIntensiveResult{Geomean: map[string]map[string]float64{}}
	for _, base := range sim.BaseNames() {
		fig, err := variantStudy(o, base)
		if err != nil {
			return nil, err
		}
		res.Geomean[base] = fig.Geomean
	}
	return res, nil
}

// Render implements Renderer.
func (r *NonIntensiveResult) Render() string {
	var b strings.Builder
	b.WriteString("Section VI-B1 — geomean speedup % including non-intensive workloads\n")
	fmt.Fprintf(&b, "%-6s %10s %10s %10s\n", "pref", "PSA", "PSA-2MB", "PSA-SD")
	for _, base := range sim.BaseNames() {
		fmt.Fprintf(&b, "%-6s %10.1f %10.1f %10.1f\n", strings.ToUpper(base),
			r.Geomean[base]["PSA"], r.Geomean[base]["PSA-2MB"], r.Geomean[base]["PSA-SD"])
	}
	return b.String()
}
