package experiments

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"
)

// Series is implemented by results that can expose a single labelled series
// for charting (bars in the HTML report).
type Series interface {
	Series() (title string, labels []string, values []float64)
}

// Series implements the charting hook for Figure 8: the variant geomeans.
func (r *Fig8Result) Series() (string, []string, []float64) {
	labels := []string{"PSA", "PSA-2MB", "PSA-SD"}
	values := make([]float64, len(labels))
	for i, l := range labels {
		values[i] = r.Geomean[l]
	}
	return fmt.Sprintf("%s variants — geomean speedup %% over original", strings.ToUpper(r.Base)),
		labels, values
}

// Series implements the charting hook for Figure 13.
func (r *Fig13Result) Series() (string, []string, []float64) {
	values := make([]float64, len(r.Order))
	for i, n := range r.Order {
		values[i] = (r.Speedup[n] - 1) * 100
	}
	return "L1D vs page-size-aware L2 prefetching — % over no-prefetch", r.Order, values
}

// Series implements the charting hook for Figure 2 (per-prefetcher means).
func (r *Fig2Result) Series() (string, []string, []float64) {
	labels := make([]string, 0, len(r.PerPrefetcher))
	for b := range r.PerPrefetcher {
		labels = append(labels, b)
	}
	sort.Strings(labels)
	values := make([]float64, len(labels))
	for i, b := range labels {
		values[i] = r.PerPrefetcher[b].Mean * 100
	}
	return "mean %% of prefetches discarded at 4KB boundary while in a 2MB page", labels, values
}

// Series implements the charting hook for the ablation study.
func (r *AblationResult) Series() (string, []string, []float64) {
	values := make([]float64, len(r.Order))
	for i, n := range r.Order {
		values[i] = r.Geomean[n]
	}
	return "SPP-PSA geomean speedup % per model configuration", r.Order, values
}

// Series implements the charting hook for the multi-core distributions
// (medians).
func (r *MultiResult) Series() (string, []string, []float64) {
	values := make([]float64, len(r.Schemes))
	for i, s := range r.Schemes {
		values[i] = r.Summary[s].Median
	}
	return fmt.Sprintf("%d-core median weighted speedup %% over original", r.Cores),
		r.Schemes, values
}

// svgBars renders a minimal horizontal bar chart. Negative values extend
// left of the zero axis.
func svgBars(labels []string, values []float64) string {
	const (
		rowH     = 22
		chartW   = 560
		labelW   = 150
		pad      = 6
		zeroFrac = 0.25 // zero axis position when negatives exist
	)
	maxAbs := 1e-9
	hasNeg := false
	for _, v := range values {
		a := v
		if a < 0 {
			hasNeg = true
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	zeroX := float64(labelW)
	if hasNeg {
		zeroX = labelW + zeroFrac*(chartW-labelW)
	}
	scale := (float64(chartW) - zeroX - 60) / maxAbs

	var b strings.Builder
	h := len(labels)*rowH + 2*pad
	fmt.Fprintf(&b, `<svg width="%d" height="%d" xmlns="http://www.w3.org/2000/svg" font-family="monospace" font-size="12">`,
		chartW, h)
	fmt.Fprintf(&b, `<line x1="%.0f" y1="0" x2="%.0f" y2="%d" stroke="#999"/>`, zeroX, zeroX, h)
	for i, v := range values {
		y := pad + i*rowH
		w := v * scale
		x := zeroX
		color := "#4878a8"
		if w < 0 {
			x = zeroX + w
			w = -w
			color = "#a85048"
		}
		fmt.Fprintf(&b, `<text x="4" y="%d">%s</text>`, y+14, html.EscapeString(labels[i]))
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"/>`,
			x, y+3, w, rowH-8, color)
		tx := zeroX + v*scale + 4
		if v < 0 {
			tx = zeroX + 4
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d">%.1f</text>`, tx, y+14, v)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// WriteHTMLReport renders a set of experiment results as a single static
// HTML page: an SVG bar chart where the result exposes a Series, and the
// textual rendering verbatim below it.
func WriteHTMLReport(w io.Writer, title string, results []struct {
	Name   string
	Result Renderer
}) error {
	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>%s</title>",
		html.EscapeString(title))
	b.WriteString(`<style>body{font-family:sans-serif;max-width:900px;margin:2em auto}
pre{background:#f6f6f6;padding:1em;overflow-x:auto}h2{border-bottom:1px solid #ccc}</style></head><body>`)
	fmt.Fprintf(&b, "<h1>%s</h1>", html.EscapeString(title))
	for _, r := range results {
		fmt.Fprintf(&b, "<h2>%s</h2>", html.EscapeString(r.Name))
		if s, ok := r.Result.(Series); ok {
			chartTitle, labels, values := s.Series()
			fmt.Fprintf(&b, "<p>%s</p>%s", html.EscapeString(chartTitle), svgBars(labels, values))
		}
		fmt.Fprintf(&b, "<pre>%s</pre>", html.EscapeString(r.Result.Render()))
		if errs := CheckAll(r.Result); errs != nil {
			fmt.Fprintf(&b, "<p><b>shape violations:</b> %d</p>", len(errs))
		} else if _, ok := r.Result.(Checker); ok {
			b.WriteString("<p>shape checks: PASS</p>")
		}
	}
	b.WriteString("</body></html>")
	_, err := io.WriteString(w, b.String())
	return err
}
