package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/prefetch/temporal"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ---------------------------------------------------------------------------
// Ablation — the modelling decisions DESIGN.md calls out
// ---------------------------------------------------------------------------

// AblationResult quantifies the effect of each simulator modelling decision
// on the headline metric (SPP-PSA geomean speedup over SPP original).
type AblationResult struct {
	// Geomean[config] is the SPP-PSA geomean % speedup under the config.
	Geomean map[string]float64
	Order   []string
}

// Ablation re-runs the SPP-PSA headline comparison with each modelling
// feature removed in turn: the finite prefetch queue, MSHR promotion, and
// FR-FCFS row batching.
func Ablation(o Options) (*AblationResult, error) {
	configs := []struct {
		name string
		mod  func(*sim.Config)
	}{
		{"default", func(*sim.Config) {}},
		{"unbounded-PQ", func(c *sim.Config) { c.PQDepth = 1 << 40 }},
		{"no-promotion", func(c *sim.Config) { c.DisablePromotion = true }},
		{"serial-rows", func(c *sim.Config) { c.DRAM.RowSlots = 1 }},
	}
	res := &AblationResult{Geomean: map[string]float64{}}
	for _, cc := range configs {
		po := o
		po.Config = o.Config
		cc.mod(&po.Config)
		var jobs []Job
		for _, w := range po.workloads() {
			jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: "spp", Variant: core.Original}})
			jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: "spp", Variant: core.PSA}})
		}
		rs, err := runBatch(po, jobs)
		if err != nil {
			return nil, err
		}
		var bases, vars []float64
		for i := 0; i < len(rs); i += 2 {
			bases = append(bases, rs[i].IPC)
			vars = append(vars, rs[i+1].IPC)
		}
		res.Geomean[cc.name] = stats.GeomeanSpeedup(bases, vars)
		res.Order = append(res.Order, cc.name)
	}
	return res, nil
}

// Render implements Renderer.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation — SPP-PSA geomean speedup % over SPP original per model config\n")
	for _, n := range r.Order {
		fmt.Fprintf(&b, "  %-14s %6.1f\n", n, r.Geomean[n])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Extensions — prefetchers and mechanisms beyond the paper's evaluation
// ---------------------------------------------------------------------------

// ExtensionsResult covers the extra prefetchers (SMS, AMPM, temporal), the
// TLB prefetcher, and the spatial-vs-temporal contrast.
type ExtensionsResult struct {
	// PSAGeomean[base] is the PSA geomean % speedup over that base's
	// original version, for the extended bases.
	PSAGeomean map[string]float64
	// SpeedupOverNone[base] is the base prefetcher's geomean × over a
	// no-prefetch baseline (temporal vs spatial contrast).
	SpeedupOverNone map[string]float64
	// TemporalMetadataBytes vs SpatialMetadataApprox document the metadata
	// argument of Section II-A.
	TemporalMetadataBytes int
	// TLBPrefetchWalkReduction is the relative reduction in demand page
	// walks with the footnote-3 TLB prefetcher enabled (4KB-heavy subset).
	TLBPrefetchWalkReduction float64
}

// Extensions evaluates everything built beyond the paper's scope.
func Extensions(o Options) (*ExtensionsResult, error) {
	res := &ExtensionsResult{
		PSAGeomean:            map[string]float64{},
		SpeedupOverNone:       map[string]float64{},
		TemporalMetadataBytes: temporal.New(temporal.DefaultConfig(), 12).MetadataBytes(),
	}

	// SMS confines candidates to sub-page spatial regions and temporal
	// replay is boundary-insensitive at this reach, so for them PSA ≡
	// original by construction; AMPM's zones are page-indexed, making its
	// 2MB-zone variant (PSA-2MB) the page-size-aware form with teeth.
	extended := []string{"sms", "ampm", "temporal"}
	variantFor := map[string]core.Variant{
		"sms": core.PSA, "ampm": core.PSA2MB, "temporal": core.PSA,
	}
	var jobs []Job
	for _, w := range o.workloads() {
		jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: "none"}})
		for _, base := range extended {
			jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: base, Variant: core.Original}})
			jobs = append(jobs, Job{Workload: w, Spec: sim.PrefSpec{Base: base, Variant: variantFor[base]}})
		}
	}
	rs, err := runBatch(o, jobs)
	if err != nil {
		return nil, err
	}
	ipc := map[string]float64{}
	for i, r := range rs {
		ipc[jobs[i].Workload.Name+"/"+jobs[i].Spec.String()] = r.IPC
	}
	for _, base := range extended {
		var none, orig, psa []float64
		for _, w := range o.workloads() {
			none = append(none, ipc[w.Name+"/no-prefetch"])
			orig = append(orig, ipc[w.Name+"/"+sim.PrefSpec{Base: base, Variant: core.Original}.String()])
			psa = append(psa, ipc[w.Name+"/"+sim.PrefSpec{Base: base, Variant: variantFor[base]}.String()])
		}
		res.PSAGeomean[base] = stats.GeomeanSpeedup(orig, psa)
		res.SpeedupOverNone[base] = stats.Geomean(ratios(none, orig))
	}

	// TLB prefetcher: demand-walk reduction on the 4KB-heavy subset.
	walkWs, err := WorkloadsByName([]string{"soplex", "gcc", "omnetpp"})
	if err != nil {
		return nil, err
	}
	var withW, withoutW uint64
	for _, w := range walkWs {
		base, err := sim.Run(o.Config, sim.PrefSpec{Base: "none"}, w, o.runOpt())
		if err != nil {
			return nil, err
		}
		cfg := o.Config
		cfg.MMU.TLBPrefetch = true
		pref, err := sim.Run(cfg, sim.PrefSpec{Base: "none"}, w, o.runOpt())
		if err != nil {
			return nil, err
		}
		withoutW += base.Walks
		withW += pref.Walks
	}
	if withoutW > 0 {
		res.TLBPrefetchWalkReduction = 1 - float64(withW)/float64(withoutW)
	}
	return res, nil
}

// Render implements Renderer.
func (r *ExtensionsResult) Render() string {
	var b strings.Builder
	b.WriteString("Extensions beyond the paper's evaluation\n")
	b.WriteString("extended prefetchers (× over no-prefetch; page-size-aware % over own original):\n")
	for _, base := range []string{"sms", "ampm", "temporal"} {
		label := "PSA"
		if base == "ampm" {
			label = "PSA-2MB"
		}
		fmt.Fprintf(&b, "  %-9s %6.3fx  %s %+5.1f%%\n",
			strings.ToUpper(base), r.SpeedupOverNone[base], label, r.PSAGeomean[base])
	}
	b.WriteString("temporal × = 1.0 on this stream-heavy set: its misses are compulsory and\n")
	b.WriteString("temporal replay fundamentally cannot cover them (Section II-A's contrast).\n")
	fmt.Fprintf(&b, "temporal metadata: %d KB of full addresses (spatial prefetchers store KB-scale deltas)\n",
		r.TemporalMetadataBytes>>10)
	fmt.Fprintf(&b, "TLB prefetcher (footnote 3): %.0f%% fewer demand page walks on 4KB-heavy workloads\n",
		r.TLBPrefetchWalkReduction*100)
	return b.String()
}
