package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/experiments -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden figure files")

// goldenOptions pins every input that feeds a figure: scale, seed,
// workloads. Parallelism is deliberately above 1 — determinism across worker
// counts is guaranteed by TestRunBatchDeterminism, so goldens double as a
// regression check on that guarantee.
func goldenOptions(t *testing.T) Options {
	t.Helper()
	o := DefaultOptions()
	o.Warmup = 20_000
	o.Instructions = 80_000
	o.Seed = 1
	o.Parallelism = 4
	ws, err := WorkloadsByName([]string{"libquantum", "milc", "soplex", "pr.road"})
	if err != nil {
		t.Fatal(err)
	}
	o.Workloads = ws
	return o
}

// TestGoldenFigures snapshot-tests Render() for Figure 2, Figure 8, the
// crossing study, and Table 1 at a tiny fixed-seed scale, so a figure-shape
// regression (changed metric derivation, broken aggregation, perturbed
// simulation) fails CI instead of waiting for someone to eyeball results/.
func TestGoldenFigures(t *testing.T) {
	for _, name := range []string{"fig2", "fig8", "crossing", "table1"} {
		name := name
		t.Run(name, func(t *testing.T) {
			r, err := Run(name, goldenOptions(t))
			if err != nil {
				t.Fatal(err)
			}
			got := r.Render()
			path := filepath.Join("testdata", "golden_"+name+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create goldens)", err)
			}
			if got != string(want) {
				t.Errorf("%s render drifted from golden.\n--- got ---\n%s--- want ---\n%s"+
					"(intentional? regenerate with: go test ./internal/experiments -run TestGolden -update)",
					name, got, want)
			}
		})
	}
}
