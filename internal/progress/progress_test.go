package progress

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock steps a deterministic amount per call so rate limiting and ETA
// are testable.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func TestSnapshotMath(t *testing.T) {
	s := Snapshot{Label: "fig8", Done: 50, Total: 100, Hits: 20, Executed: 30, Elapsed: 10 * time.Second}
	if got := s.HitRate(); got != 0.4 {
		t.Errorf("hit rate = %v", got)
	}
	if got := s.SimsPerSec(); got != 3 {
		t.Errorf("sims/sec = %v", got)
	}
	if got := s.ETA(); got != 10*time.Second {
		t.Errorf("ETA = %v", got)
	}
	line := s.String()
	for _, want := range []string{"fig8: 50/100 sims", "40% cached", "3.0 sims/s", "ETA 10s"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	// Degenerate cases must not divide by zero.
	empty := Snapshot{}
	if empty.HitRate() != 0 || empty.SimsPerSec() != 0 || empty.ETA() != 0 {
		t.Error("empty snapshot produced nonzero rates")
	}
	if got := (Snapshot{}).String(); !strings.Contains(got, "batch: 0/0") {
		t.Errorf("unlabeled line = %q", got)
	}
}

func TestTrackerCounts(t *testing.T) {
	tr := New(nil, "x", 4)
	tr.Step(true)
	tr.Step(false)
	tr.Step(false)
	s := tr.Snapshot()
	if s.Done != 3 || s.Hits != 1 || s.Executed != 2 || s.Total != 4 {
		t.Errorf("snapshot = %+v", s)
	}
	tr.Finish() // silent tracker: must not panic
}

func TestTrackerPrintsAndRateLimits(t *testing.T) {
	var buf strings.Builder
	clock := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	tr := New(&buf, "fig2", 3)
	tr.now, tr.start, tr.lastPrint = clock.now, clock.t, clock.t
	tr.Step(false) // 1ms since start: rate-limited away
	tr.Step(true)  // still under the print interval
	if buf.Len() != 0 {
		t.Errorf("printed too early: %q", buf.String())
	}
	tr.Step(false) // final job always prints
	if !strings.Contains(buf.String(), "fig2: 3/3 sims") {
		t.Errorf("final step line = %q", buf.String())
	}
	tr.Finish()
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("Finish did not terminate the line")
	}
}

func TestTrackerPrintsAfterInterval(t *testing.T) {
	var buf strings.Builder
	clock := &fakeClock{t: time.Unix(0, 0), step: printEvery}
	tr := New(&buf, "fig9", 100)
	tr.now, tr.start, tr.lastPrint = clock.now, clock.t, clock.t
	tr.Step(false)
	if !strings.Contains(buf.String(), "fig9: 1/100 sims") {
		t.Errorf("line = %q", buf.String())
	}
	if !strings.Contains(buf.String(), "ETA") {
		t.Errorf("line missing ETA: %q", buf.String())
	}
}

func TestTrackerConcurrentSteps(t *testing.T) {
	var buf syncWriter
	tr := New(&buf, "par", 64)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.Step(i%2 == 0)
		}(i)
	}
	wg.Wait()
	tr.Finish()
	s := tr.Snapshot()
	if s.Done != 64 || s.Hits != 32 || s.Executed != 32 {
		t.Errorf("snapshot = %+v", s)
	}
}

// syncWriter is a goroutine-safe strings.Builder.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}
