package progress

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock steps a deterministic amount per call so rate limiting and ETA
// are testable.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func TestSnapshotMath(t *testing.T) {
	s := Snapshot{Label: "fig8", Done: 50, Total: 100, Hits: 20, Executed: 30, Elapsed: 10 * time.Second}
	if got := s.HitRate(); got != 0.4 {
		t.Errorf("hit rate = %v", got)
	}
	if got := s.SimsPerSec(); got != 3 {
		t.Errorf("sims/sec = %v", got)
	}
	// 30 executed sims over 10s → 1/3 s per sim; 50 jobs remain.
	if got, want := s.ETA(), 10*time.Second/30*50; got != want {
		t.Errorf("ETA = %v, want %v", got, want)
	}
	line := s.String()
	for _, want := range []string{"fig8: 50/100 sims", "40% cached", "3.0 sims/s", "ETA 17s"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	// Degenerate cases must not divide by zero.
	empty := Snapshot{}
	if empty.HitRate() != 0 || empty.SimsPerSec() != 0 || empty.ETA() != 0 {
		t.Error("empty snapshot produced nonzero rates")
	}
	// A batch that has only replayed cache hits has no execution rate to
	// extrapolate: ETA must be 0, not a division by zero or a tiny
	// per-hit estimate.
	allHits := Snapshot{Done: 10, Total: 100, Hits: 10, Elapsed: time.Second}
	if got := allHits.ETA(); got != 0 {
		t.Errorf("all-hits ETA = %v, want 0", got)
	}
	if got := allHits.SimsPerSec(); got != 0 {
		t.Errorf("all-hits sims/sec = %v, want 0", got)
	}
	if got := (Snapshot{}).String(); !strings.Contains(got, "batch: 0/0") {
		t.Errorf("unlabeled line = %q", got)
	}
}

func TestTrackerCounts(t *testing.T) {
	tr := New(nil, "x", 4)
	tr.Step(true)
	tr.Step(false)
	tr.Step(false)
	s := tr.Snapshot()
	if s.Done != 3 || s.Hits != 1 || s.Executed != 2 || s.Total != 4 {
		t.Errorf("snapshot = %+v", s)
	}
	tr.Finish() // silent tracker: must not panic
}

func TestTrackerPrintsAndRateLimits(t *testing.T) {
	var buf strings.Builder
	clock := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	tr := New(&buf, "fig2", 3)
	tr.now, tr.start, tr.lastPrint = clock.now, clock.t, clock.t
	tr.Step(false) // 1ms since start: rate-limited away
	tr.Step(true)  // still under the print interval
	if buf.Len() != 0 {
		t.Errorf("printed too early: %q", buf.String())
	}
	tr.Step(false) // final job always prints
	if !strings.Contains(buf.String(), "fig2: 3/3 sims") {
		t.Errorf("final step line = %q", buf.String())
	}
	tr.Finish()
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("Finish did not terminate the line")
	}
}

func TestTrackerPrintsAfterInterval(t *testing.T) {
	var buf strings.Builder
	clock := &fakeClock{t: time.Unix(0, 0), step: printEvery}
	tr := New(&buf, "fig9", 100)
	tr.now, tr.start, tr.lastPrint = clock.now, clock.t, clock.t
	tr.Step(false)
	if !strings.Contains(buf.String(), "fig9: 1/100 sims") {
		t.Errorf("line = %q", buf.String())
	}
	if !strings.Contains(buf.String(), "ETA") {
		t.Errorf("line missing ETA: %q", buf.String())
	}
}

func TestTrackerConcurrentSteps(t *testing.T) {
	var buf syncWriter
	tr := New(&buf, "par", 64)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.Step(i%2 == 0)
		}(i)
	}
	wg.Wait()
	tr.Finish()
	s := tr.Snapshot()
	if s.Done != 64 || s.Hits != 32 || s.Executed != 32 {
		t.Errorf("snapshot = %+v", s)
	}
}

// TestTrackerETAExcludesHits drives a tracker with the fake clock through a
// cache-warm prefix followed by executed sims and checks the ETA rate is the
// per-executed-simulation cost, unaffected by how many hits replayed.
func TestTrackerETAExcludesHits(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0), step: 100 * time.Millisecond}
	tr := New(nil, "resume", 10)
	tr.now, tr.start = clock.now, clock.t

	// Resumed run: the first four jobs replay from the cache.
	for i := 0; i < 4; i++ {
		tr.Step(true)
	}
	if got := tr.Snapshot().ETA(); got != 0 {
		t.Errorf("hit-only prefix ETA = %v, want 0 (no execution rate yet)", got)
	}

	// Two sims execute. Each Step and each Snapshot ticks the clock 100ms;
	// compute the expected rate from the snapshot itself rather than
	// replicating the tick count.
	tr.Step(false)
	tr.Step(false)
	s := tr.Snapshot()
	if s.Executed != 2 || s.Done != 6 {
		t.Fatalf("snapshot = %+v", s)
	}
	want := s.Elapsed / 2 * 4 // per-sim cost × 4 remaining jobs
	if got := s.ETA(); got != want {
		t.Errorf("ETA = %v, want %v", got, want)
	}
	// Had the denominator been all six finished jobs, the estimate would be
	// a third of that — the bias this guards against.
	if wrong := s.Elapsed / 6 * 4; want == wrong {
		t.Fatal("test cannot distinguish the two formulas")
	}
}

// syncWriter is a goroutine-safe strings.Builder.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}
