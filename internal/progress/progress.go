// Package progress reports live status for a batch of simulations: jobs
// done/total, cache hit rate, simulation throughput, and an ETA. Lines are
// rewritten in place with carriage returns, so the output is meant for a
// terminal; pass a nil writer to keep the counters without printing.
package progress

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// printEvery rate-limits terminal updates.
const printEvery = 100 * time.Millisecond

// Snapshot is the tracker's state at one instant.
type Snapshot struct {
	Label    string
	Done     int // jobs finished (hit or simulated)
	Total    int
	Hits     int // jobs served from the result cache
	Executed int // jobs that ran a simulation
	Elapsed  time.Duration
}

// HitRate returns cache hits over finished jobs.
func (s Snapshot) HitRate() float64 {
	if s.Done == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Done)
}

// SimsPerSec returns executed simulations per wall-clock second.
func (s Snapshot) SimsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Executed) / s.Elapsed.Seconds()
}

// ETA estimates time to completion. Cache-hit replays finish in
// microseconds, so only executed simulations carry timing signal: dividing
// elapsed time by all finished jobs would let a cache-warm prefix (typical
// when resuming an interrupted figure) make the all-miss tail look nearly
// free. The estimate therefore prices every remaining job at the observed
// per-executed-simulation cost — pessimistic when the tail has hits, but
// hits then drain the estimate at their real (instant) speed. With no
// executed simulation yet there is no rate to extrapolate: ETA is 0.
func (s Snapshot) ETA() time.Duration {
	if s.Executed == 0 || s.Done >= s.Total {
		return 0
	}
	perSim := s.Elapsed / time.Duration(s.Executed)
	return perSim * time.Duration(s.Total-s.Done)
}

// String renders the one-line status.
func (s Snapshot) String() string {
	label := s.Label
	if label == "" {
		label = "batch"
	}
	line := fmt.Sprintf("%s: %d/%d sims", label, s.Done, s.Total)
	if s.Hits > 0 {
		line += fmt.Sprintf(", %.0f%% cached", s.HitRate()*100)
	}
	if rate := s.SimsPerSec(); rate > 0 {
		line += fmt.Sprintf(", %.1f sims/s", rate)
	}
	if eta := s.ETA(); eta > 0 {
		line += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
	}
	return line
}

// Tracker accumulates batch progress and optionally renders it.
type Tracker struct {
	mu        sync.Mutex
	w         io.Writer // nil: count only
	label     string
	total     int
	done      int
	hits      int
	executed  int
	start     time.Time
	lastPrint time.Time
	now       func() time.Time // test hook
}

// New starts tracking a batch of total jobs. w may be nil for a silent
// tracker; label prefixes every printed line.
func New(w io.Writer, label string, total int) *Tracker {
	t := &Tracker{w: w, label: label, total: total, now: time.Now}
	t.start = t.now()
	t.lastPrint = t.start // first line appears after printEvery
	return t
}

// Step records one finished job; cacheHit marks it as served from the result
// cache rather than simulated.
func (t *Tracker) Step(cacheHit bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	if cacheHit {
		t.hits++
	} else {
		t.executed++
	}
	if t.w == nil {
		return
	}
	if now := t.now(); now.Sub(t.lastPrint) >= printEvery || t.done == t.total {
		t.lastPrint = now
		fmt.Fprintf(t.w, "\r\x1b[K%s", t.snapshotLocked())
	}
}

// Finish prints the final state and terminates the status line.
func (t *Tracker) Finish() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w == nil || t.total == 0 {
		return
	}
	fmt.Fprintf(t.w, "\r\x1b[K%s\n", t.snapshotLocked())
}

// Snapshot returns the current state.
func (t *Tracker) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

func (t *Tracker) snapshotLocked() Snapshot {
	return Snapshot{
		Label:    t.label,
		Done:     t.done,
		Total:    t.total,
		Hits:     t.hits,
		Executed: t.executed,
		Elapsed:  t.now().Sub(t.start),
	}
}
