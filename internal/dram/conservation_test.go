package dram

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// TestBusCapacityConserved is the invariant behind the priority-modelling
// bugs found during bring-up: for ANY interleaving of demand, prefetch, and
// writeback traffic, per-channel completion times must be spaced at least one
// burst apart — the bus can never deliver more than its rated bandwidth.
func TestBusCapacityConserved(t *testing.T) {
	f := func(seq []uint32) bool {
		d := New(DefaultConfig())
		var dones []mem.Cycle
		at := mem.Cycle(0)
		for _, raw := range seq {
			req := &mem.Request{PAddr: mem.Addr(raw) << mem.BlockBits}
			switch raw % 3 {
			case 0:
				req.Type = mem.Load
			case 1:
				req.Type = mem.Prefetch
			default:
				req.Type = mem.Writeback
			}
			dones = append(dones, d.Access(req, at))
			at += mem.Cycle(raw % 7) // jittered, non-decreasing issue times
		}
		sort.Slice(dones, func(i, j int) bool { return dones[i] < dones[j] })
		for i := 1; i < len(dones); i++ {
			if dones[i]-dones[i-1] < d.BurstCycles() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCompletionAfterIssue: no request completes before its issue time plus
// the row-hit latency and one burst.
func TestCompletionAfterIssue(t *testing.T) {
	f := func(seq []uint32) bool {
		d := New(DefaultConfig())
		at := mem.Cycle(0)
		for _, raw := range seq {
			req := &mem.Request{PAddr: mem.Addr(raw) << mem.BlockBits, Type: mem.Load}
			done := d.Access(req, at)
			if done < at+d.cfg.RowHitLatency+d.burstCycles {
				return false
			}
			at += 3
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRowSlotsConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RowSlots = 1
	serial := New(cfg)
	batched := New(DefaultConfig())
	// Two interleaved sequential streams in different rows of the same bank:
	// the serial controller thrashes; the batched one holds both rows open.
	rows := func(d *DRAM) float64 {
		// Pick two addresses mapping to the same bank but different rows.
		var a, b mem.Addr
		ch0, bank0, _ := d.mapAddr(0)
		found := false
		for cand := mem.Addr(1 << 13); cand < 1<<26 && !found; cand += 1 << 13 {
			ch, bank, row := d.mapAddr(cand)
			if ch == ch0 && bank == bank0 && row != 0 {
				b = cand
				found = true
			}
		}
		if !found {
			t.Fatal("no same-bank different-row address found")
		}
		for i := 0; i < 64; i++ {
			d.Access(&mem.Request{PAddr: a + mem.Addr(i)*mem.BlockSize, Type: mem.Load}, mem.Cycle(i*500))
			d.Access(&mem.Request{PAddr: b + mem.Addr(i)*mem.BlockSize, Type: mem.Load}, mem.Cycle(i*500+250))
		}
		return d.Stats.RowHitRate()
	}
	if rs, rb := rows(serial), rows(batched); rs >= rb {
		t.Errorf("serial controller row-hit rate %.2f not below batched %.2f", rs, rb)
	}
}
