package dram

import (
	"testing"

	"repro/internal/mem"
)

func read(addr mem.Addr) *mem.Request { return &mem.Request{PAddr: addr, Type: mem.Load} }

func TestBurstCyclesFromRate(t *testing.T) {
	d := New(DefaultConfig())
	// 8 transfers at 3200 MT/s under a 4GHz core: 10 cycles per block.
	if d.BurstCycles() != 10 {
		t.Errorf("BurstCycles = %d, want 10", d.BurstCycles())
	}
	cfg := DefaultConfig()
	cfg.TransferMTps = 400
	if got := New(cfg).BurstCycles(); got != 80 {
		t.Errorf("400MT/s BurstCycles = %d, want 80", got)
	}
}

func TestRowHitVsMissLatency(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	first := d.Access(read(0x0), 0)
	wantFirst := cfg.RowMissLatency + d.BurstCycles()
	if first != wantFirst {
		t.Errorf("first access done at %d, want %d", first, wantFirst)
	}
	// Next block in the same row: row hit, but serialized behind the bus.
	second := d.Access(read(0x40), 0)
	if second <= first {
		t.Errorf("bus not serialized: second=%d first=%d", second, first)
	}
	if d.Stats.RowHits != 1 || d.Stats.RowMisses != 1 {
		t.Errorf("row stats = %+v", d.Stats)
	}
}

func TestSequentialStreamMostlyRowHits(t *testing.T) {
	d := New(DefaultConfig())
	for i := 0; i < 512; i++ {
		d.Access(read(mem.Addr(i)*mem.BlockSize), mem.Cycle(i*1000))
	}
	if rate := d.Stats.RowHitRate(); rate < 0.9 {
		t.Errorf("sequential stream row-hit rate = %v, want > 0.9", rate)
	}
}

func TestRandomStreamMostlyRowMisses(t *testing.T) {
	d := New(DefaultConfig())
	x := uint64(12345)
	for i := 0; i < 512; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		addr := mem.Addr(x) % (1 << 30)
		d.Access(read(mem.BlockAlign(addr)), mem.Cycle(i*1000))
	}
	if rate := d.Stats.RowHitRate(); rate > 0.3 {
		t.Errorf("random stream row-hit rate = %v, want < 0.3", rate)
	}
}

func TestBandwidthSaturation(t *testing.T) {
	// Back-to-back requests at cycle 0 serialize on the bus: completion of
	// the Nth is at least N * burst cycles.
	d := New(DefaultConfig())
	var last mem.Cycle
	const n = 100
	for i := 0; i < n; i++ {
		last = d.Access(read(mem.Addr(i)*mem.BlockSize), 0)
	}
	if min := mem.Cycle(n) * d.BurstCycles(); last < min {
		t.Errorf("100 simultaneous accesses completed at %d, want ≥ %d", last, min)
	}
}

func TestLowerRateIsSlower(t *testing.T) {
	fast := New(DefaultConfig())
	slowCfg := DefaultConfig()
	slowCfg.TransferMTps = 400
	slow := New(slowCfg)
	var fDone, sDone mem.Cycle
	for i := 0; i < 64; i++ {
		a := mem.Addr(i) * mem.BlockSize
		fDone = fast.Access(read(a), 0)
		sDone = slow.Access(read(a), 0)
	}
	if sDone <= fDone {
		t.Errorf("400MT/s (%d) not slower than 3200MT/s (%d)", sDone, fDone)
	}
}

func TestWriteCounted(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(&mem.Request{PAddr: 0x0, Type: mem.Writeback}, 0)
	if d.Stats.Writes != 1 || d.Stats.Reads != 0 {
		t.Errorf("stats = %+v", d.Stats)
	}
}

func TestChannelInterleave(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 2
	d := New(cfg)
	ch0, _, _ := d.mapAddr(0x0)
	ch1, _, _ := d.mapAddr(0x40)
	if ch0 == ch1 {
		t.Error("consecutive blocks mapped to the same channel")
	}
	// Two channels double the effective bandwidth for a streaming pattern.
	var last mem.Cycle
	for i := 0; i < 64; i++ {
		last = d.Access(read(mem.Addr(i)*mem.BlockSize), 0)
	}
	single := New(DefaultConfig())
	var lastSingle mem.Cycle
	for i := 0; i < 64; i++ {
		lastSingle = single.Access(read(mem.Addr(i)*mem.BlockSize), 0)
	}
	if last >= lastSingle {
		t.Errorf("2-channel (%d) not faster than 1-channel (%d)", last, lastSingle)
	}
}
