// Package dram models main memory timing: channels, banks, open-row policy
// with row-buffer hit/miss latencies, and a data bus whose bandwidth is
// derived from the configured transfer rate (MT/s). Spatial prefetch streams
// naturally enjoy row-buffer hits, reproducing the energy/ordering argument
// the paper inherits from prior spatial-prefetching work.
package dram

import (
	"math/bits"

	"repro/internal/mem"
)

// Config describes the DRAM subsystem. Latencies are in core cycles.
type Config struct {
	Channels       int
	BanksPerChan   int
	RowBytes       mem.Addr // row-buffer size per bank
	TransferMTps   int      // bus rate in mega-transfers/s (e.g. 3200)
	CoreGHz        float64  // core frequency used to convert bus time to cycles
	RowHitLatency  mem.Cycle
	RowMissLatency mem.Cycle
	// RowSlots is the number of open-row streams batched per bank
	// (DefaultRowSlots when zero).
	RowSlots int
}

// DefaultConfig mirrors Table I's 3200 MT/s DRAM under a 4GHz core.
func DefaultConfig() Config {
	return Config{
		Channels:       1,
		BanksPerChan:   8,
		RowBytes:       8 << 10,
		TransferMTps:   3200,
		CoreGHz:        4,
		RowHitLatency:  90,
		RowMissLatency: 250,
	}
}

// Stats aggregates DRAM counters.
type Stats struct {
	Reads, Writes      uint64
	RowHits, RowMisses uint64
}

// RowHitRate returns the fraction of accesses that hit in an open row.
func (s *Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// DefaultRowSlots is the default number of batched open-row streams modelled
// per bank (a 32-deep FR-FCFS queue batches a handful of interleaved spatial
// streams; a strictly serial controller would have 1).
const DefaultRowSlots = 4

type rowSlot struct {
	row   mem.Addr
	valid bool
	lru   uint64
}

// DRAM is the main-memory timing model. It implements mem.Port.
type DRAM struct {
	cfg Config

	burstCycles mem.Cycle // bus occupancy per 64B block
	tick        uint64

	// busFree is a single capacity-conserving accumulator per channel:
	// every transfer adds one burst. Prefetch pressure on demands is bounded
	// upstream (the engine's serialised, depth-limited prefetch queue and
	// the MSHR demand reserve), so the bus itself is strictly first-come
	// first-served and total throughput never exceeds the bus rate.
	busFree  []mem.Cycle   // per channel
	bankFree [][]mem.Cycle // per channel × bank
	// Each bank tracks rowSlots recently-open rows rather than one: a real
	// FR-FCFS queue batches same-row requests, so two spatial streams
	// interleaved at one bank (a demand stream and the prefetch stream
	// running ahead of it) do not pay an activation per request. The serial
	// model cannot reorder the queue; the extra slots emulate its batching.
	openRow  [][][]rowSlot
	rowSlots int

	// chanMask/rowShift/bankMask strength-reduce mapAddr's divisions to
	// masks and shifts when the geometry is power-of-two (the default
	// config is); rowShift < 0 selects the generic divide path. The two
	// paths compute identical values.
	chanMask mem.Addr
	rowShift int
	bankMask uint64

	Stats Stats
}

// New creates a DRAM model.
func New(cfg Config) *DRAM {
	if cfg.Channels <= 0 || cfg.BanksPerChan <= 0 {
		panic("dram: bad geometry")
	}
	if cfg.TransferMTps <= 0 || cfg.CoreGHz <= 0 {
		panic("dram: bad rate")
	}
	// A 64B block needs 8 transfers on a 64-bit bus. Time per block is
	// 8/MTps microseconds·1e-6; in core cycles: 8 * (CoreGHz*1000) / MTps.
	burst := mem.Cycle(8 * cfg.CoreGHz * 1000 / float64(cfg.TransferMTps))
	if burst < 1 {
		burst = 1
	}
	d := &DRAM{cfg: cfg, burstCycles: burst, rowSlots: cfg.RowSlots}
	if d.rowSlots <= 0 {
		d.rowSlots = DefaultRowSlots
	}
	d.rowShift = -1
	blocksPerRow := cfg.RowBytes >> mem.BlockBits
	rowDiv := mem.Addr(cfg.Channels) * blocksPerRow
	if pow2(uint64(cfg.Channels)) && pow2(uint64(cfg.BanksPerChan)) &&
		blocksPerRow > 0 && pow2(uint64(rowDiv)) {
		d.chanMask = mem.Addr(cfg.Channels - 1)
		d.rowShift = bits.TrailingZeros64(uint64(rowDiv))
		d.bankMask = uint64(cfg.BanksPerChan - 1)
	}
	d.busFree = make([]mem.Cycle, cfg.Channels)
	d.bankFree = make([][]mem.Cycle, cfg.Channels)
	d.openRow = make([][][]rowSlot, cfg.Channels)
	for ch := 0; ch < cfg.Channels; ch++ {
		d.bankFree[ch] = make([]mem.Cycle, cfg.BanksPerChan)
		d.openRow[ch] = make([][]rowSlot, cfg.BanksPerChan)
		for b := range d.openRow[ch] {
			d.openRow[ch][b] = make([]rowSlot, d.rowSlots)
		}
	}
	return d
}

// BurstCycles returns the bus occupancy per block in core cycles.
func (d *DRAM) BurstCycles() mem.Cycle { return d.burstCycles }

// BusyBanks returns how many banks (across all channels) are still busy at
// cycle `at` (a telemetry gauge: sampled at epoch boundaries it exposes
// bank-level queueing pressure).
func (d *DRAM) BusyBanks(at mem.Cycle) int {
	busy := 0
	for _, banks := range d.bankFree {
		for _, f := range banks {
			if f > at {
				busy++
			}
		}
	}
	return busy
}

// mapAddr decomposes a block address into channel, bank, and row.
// Consecutive blocks stripe across channels; the bank is a hash of the row
// (permutation-based interleaving), so concurrent streams at different rows
// land on different banks instead of thrashing one row buffer.
func (d *DRAM) mapAddr(a mem.Addr) (ch, bank int, row mem.Addr) {
	blk := mem.BlockNumber(a)
	if d.rowShift >= 0 {
		ch = int(blk & d.chanMask)
		rowGlobal := blk >> d.rowShift
		bank = int((uint64(rowGlobal) * 0x9e3779b9) >> 16 & d.bankMask)
		return ch, bank, rowGlobal
	}
	ch = int(blk) % d.cfg.Channels
	blocksPerRow := d.cfg.RowBytes >> mem.BlockBits
	rowGlobal := blk / (mem.Addr(d.cfg.Channels) * blocksPerRow)
	bank = int((uint64(rowGlobal) * 0x9e3779b9) >> 16 % uint64(d.cfg.BanksPerChan))
	return ch, bank, rowGlobal
}

func pow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// Access implements mem.Port.
func (d *DRAM) Access(req *mem.Request, at mem.Cycle) mem.Cycle {
	ch, bank, row := d.mapAddr(req.PAddr)

	start := at
	if d.bankFree[ch][bank] > start {
		start = d.bankFree[ch][bank]
	}

	// Row hits pipeline: successive CAS commands to an open row keep the
	// bank busy only for one burst interval, so a sequential stream is
	// bus-limited, not latency-limited. A row miss occupies the bank for the
	// precharge+activate window before its burst.
	var lat mem.Cycle
	var bankBusyUntil mem.Cycle
	d.tick++
	slots := d.openRow[ch][bank]
	hit := false
	for i := range slots {
		if slots[i].valid && slots[i].row == row {
			slots[i].lru = d.tick
			hit = true
			break
		}
	}
	if hit {
		lat = d.cfg.RowHitLatency
		d.Stats.RowHits++
		bankBusyUntil = start + d.burstCycles
	} else {
		lat = d.cfg.RowMissLatency
		d.Stats.RowMisses++
		v := 0
		for i := range slots {
			if !slots[i].valid {
				v = i
				break
			}
			if slots[i].lru < slots[v].lru {
				v = i
			}
		}
		slots[v] = rowSlot{row: row, valid: true, lru: d.tick}
		bankBusyUntil = start + (lat - d.cfg.RowHitLatency) + d.burstCycles
	}
	d.bankFree[ch][bank] = bankBusyUntil

	dataReady := start + lat
	if d.busFree[ch] > dataReady {
		dataReady = d.busFree[ch]
	}
	done := dataReady + d.burstCycles
	d.busFree[ch] = done

	if req.Type == mem.Writeback {
		d.Stats.Writes++
	} else {
		d.Stats.Reads++
	}
	return done
}
