package simcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func testWorkload(t *testing.T, name string) trace.Workload {
	t.Helper()
	w, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// sampleResult fills every top-level field so round-trip tests notice a
// field that stops surviving serialization.
func sampleResult() sim.Result {
	return sim.Result{
		Workload:       "milc",
		Spec:           "spp-PSA",
		Instructions:   123456,
		Cycles:         654321,
		IPC:            0.1887,
		L1D:            cache.Stats{Hits: 10, Misses: 2, DemandHits: 9, DemandMisses: 1, DemandLatencySum: 55, DemandCount: 10},
		L2:             cache.Stats{PrefetchIssued: 7, PrefetchUseful: 5, PrefetchLate: 1, PrefetchUnused: 1},
		LLC:            cache.Stats{Writebacks: 3},
		Engine:         core.Stats{Proposed: 100, Issued: 80, DiscardedBoundary: 20, DiscardedSafe: 11},
		TLBL1Hits:      42,
		TLBL1Misses:    7,
		Walks:          5,
		Frac2MOverTime: []float64{0.5, 0.75, 0.9},
		Frac2MFinal:    0.9,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleResult()
	key := Key(sim.DefaultConfig(), sim.PrefSpec{Base: "spp"}, testWorkload(t, "milc"), sim.DefaultRunOpt())
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v", n, err)
	}
}

func TestKeySensitivity(t *testing.T) {
	cfg := sim.DefaultConfig()
	spec := sim.PrefSpec{Base: "spp", Variant: core.PSA}
	w := testWorkload(t, "milc")
	opt := sim.DefaultRunOpt()
	base := Key(cfg, spec, w, opt)

	// The same inputs must produce the same key.
	if Key(cfg, spec, w, opt) != base {
		t.Fatal("key not deterministic")
	}

	mutations := map[string]func() string{
		"config/L2 MSHRs": func() string {
			c := cfg
			c.L2.MSHREntries++
			return Key(c, spec, w, opt)
		},
		"config/DRAM rate": func() string {
			c := cfg
			c.DRAM.TransferMTps *= 2
			return Key(c, spec, w, opt)
		},
		"config/replacement": func() string {
			c := cfg
			c.Replacement = cache.ReplSRRIP
			return Key(c, spec, w, opt)
		},
		"spec/base": func() string {
			sp := spec
			sp.Base = "bop"
			return Key(cfg, sp, w, opt)
		},
		"spec/variant": func() string {
			sp := spec
			sp.Variant = core.PSASD
			return Key(cfg, sp, w, opt)
		},
		"spec/l1": func() string {
			sp := spec
			sp.L1 = sim.L1IPCP
			return Key(cfg, sp, w, opt)
		},
		"workload": func() string {
			return Key(cfg, spec, testWorkload(t, "soplex"), opt)
		},
		"opt/warmup": func() string {
			op := opt
			op.Warmup++
			return Key(cfg, spec, w, op)
		},
		"opt/instructions": func() string {
			op := opt
			op.Instructions++
			return Key(cfg, spec, w, op)
		},
		"opt/seed": func() string {
			op := opt
			op.Seed++
			return Key(cfg, spec, w, op)
		},
		"opt/samples": func() string {
			op := opt
			op.Samples++
			return Key(cfg, spec, w, op)
		},
	}
	seen := map[string]string{base: "base"}
	for name, mutate := range mutations {
		k := mutate()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

// TestKeyTHPPolicy: two workloads differing only in THP policy must key
// differently (the policy shapes the page-size mix the results depend on).
func TestKeyTHPPolicy(t *testing.T) {
	w := testWorkload(t, "milc")
	w2 := w
	w2.THP = nil
	cfg, spec, opt := sim.DefaultConfig(), sim.PrefSpec{Base: "spp"}, sim.DefaultRunOpt()
	if Key(cfg, spec, w, opt) == Key(cfg, spec, w2, opt) {
		t.Error("THP policy not part of the key")
	}
}

func TestCorruptedEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key(sim.DefaultConfig(), sim.PrefSpec{Base: "spp"}, testWorkload(t, "milc"), sim.DefaultRunOpt())
	if err := s.Put(key, sampleResult()); err != nil {
		t.Fatal(err)
	}
	// Truncate the entry mid-JSON, as a crashed pre-rename writer or bit rot
	// would.
	var entry string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			entry = path
		}
		return nil
	})
	if entry == "" {
		t.Fatal("entry file not found")
	}
	if err := os.WriteFile(entry, []byte(`{"Workload":"mi`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupted entry served as a hit")
	}
	if s.Stats().Corrupt != 1 {
		t.Errorf("corrupt counter = %d", s.Stats().Corrupt)
	}
	if _, err := os.Stat(entry); !os.IsNotExist(err) {
		t.Error("corrupted entry not removed")
	}
	// Do must recompute and repopulate.
	res, hit, err := s.Do(key, func() (sim.Result, error) { return sampleResult(), nil })
	if err != nil || hit {
		t.Fatalf("Do after corruption: hit=%v err=%v", hit, err)
	}
	if res.Workload != "milc" {
		t.Errorf("recomputed result = %+v", res)
	}
	if _, ok := s.Get(key); !ok {
		t.Error("entry not repopulated")
	}
}

func TestDoSingleFlight(t *testing.T) {
	s, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var executions atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})
	fn := func() (sim.Result, error) {
		executions.Add(1)
		close(started)
		<-release
		return sampleResult(), nil
	}
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]sim.Result, waiters)
	hits := make([]bool, waiters)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], hits[0], _ = s.Do("k", fn)
	}()
	<-started // the flight is in progress; everyone else must join it
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], hits[i], _ = s.Do("k", func() (sim.Result, error) {
				executions.Add(1)
				return sampleResult(), nil
			})
		}(i)
	}
	// The flight stays blocked on release, and the store is empty on disk,
	// so every waiter that enters Do before the close below must join the
	// flight; the sleep gives them ample time to get there.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := executions.Load(); n != 1 {
		t.Errorf("executions = %d, want 1", n)
	}
	if hits[0] {
		t.Error("the executing call reported a hit")
	}
	for i := 1; i < waiters; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Errorf("waiter %d got a different result", i)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Shared != waiters-1 {
		t.Errorf("stats = %+v", st)
	}
	// A later Do is a plain disk hit.
	if _, hit, _ := s.Do("k", fn); !hit {
		t.Error("post-flight Do missed")
	}
}

func TestDoErrorNotCached(t *testing.T) {
	s, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, _, err := s.Do("k", func() (sim.Result, error) { return sim.Result{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	var ran bool
	if _, hit, err := s.Do("k", func() (sim.Result, error) { ran = true; return sampleResult(), nil }); err != nil || hit {
		t.Fatalf("second Do: hit=%v err=%v", hit, err)
	}
	if !ran {
		t.Error("error was cached: second Do did not execute")
	}
}

// TestConcurrentWriters exercises many stores (standing in for processes)
// hammering one cache directory with overlapping keys; every subsequent read
// must decode cleanly.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	const stores, keys = 4, 16
	var wg sync.WaitGroup
	for i := 0; i < stores; i++ {
		s, err := New(dir)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *Store) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("%064d", k)
				res := sampleResult()
				res.Instructions = uint64(k)
				if err := s.Put(key, res); err != nil {
					t.Error(err)
				}
				if got, ok := s.Get(key); ok && got.Instructions != uint64(k) {
					t.Errorf("key %d decoded to instructions %d", k, got.Instructions)
				}
			}
		}(s)
	}
	wg.Wait()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		got, ok := s.Get(fmt.Sprintf("%064d", k))
		if !ok {
			t.Fatalf("key %d missing after concurrent writes", k)
		}
		if got.Instructions != uint64(k) {
			t.Errorf("key %d = instructions %d", k, got.Instructions)
		}
	}
	if n, err := s.Len(); err != nil || n != keys {
		t.Errorf("Len = %d, %v", n, err)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty stats hit rate nonzero")
	}
	s = Stats{Hits: 3, Shared: 1, Misses: 4}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v", got)
	}
}

func TestNewRejectsEmptyDir(t *testing.T) {
	if _, err := New(""); err == nil {
		t.Error("empty dir accepted")
	}
}
