package simcache

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestKeyContentID: two workloads differing only in ContentID (the same
// trace path after re-recording) must key separately — the stale-replay
// hazard the digest exists to close.
func TestKeyContentID(t *testing.T) {
	w := testWorkload(t, "milc")
	cfg, spec, opt := sim.DefaultConfig(), sim.PrefSpec{Base: "spp"}, sim.DefaultRunOpt()
	base := Key(cfg, spec, w, opt)

	w.ContentID = "sha256:aaaa"
	k1 := Key(cfg, spec, w, opt)
	w.ContentID = "sha256:bbbb"
	k2 := Key(cfg, spec, w, opt)

	if base == k1 || k1 == k2 {
		t.Errorf("ContentID did not separate keys: base=%s k1=%s k2=%s", base, k1, k2)
	}
}

// TestDoContextCanceledWaiter: a waiter whose own context dies while joined
// to a flight returns its context error without disturbing the owner.
func TestDoContextCanceledWaiter(t *testing.T) {
	s, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key(sim.DefaultConfig(), sim.PrefSpec{Base: "spp"}, testWorkload(t, "milc"), sim.DefaultRunOpt())
	gate := make(chan struct{})
	ownerStarted := make(chan struct{})
	owner := func(ctx context.Context) (sim.Result, error) {
		close(ownerStarted)
		<-gate
		return sampleResult(), nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var ownerRes sim.Result
	var ownerErr error
	go func() {
		defer wg.Done()
		ownerRes, _, ownerErr = s.DoContext(context.Background(), key, owner)
	}()
	<-ownerStarted // the flight is registered; anyone else now joins it

	// Second caller joins the flight, then gives up.
	wctx, wcancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := s.DoContext(wctx, key, owner)
		waiterErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter join
	wcancel()
	select {
	case err := <-waiterErr:
		if err != context.Canceled {
			t.Errorf("waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter never returned")
	}

	close(gate)
	wg.Wait()
	if ownerErr != nil {
		t.Fatalf("owner: %v", ownerErr)
	}
	if ownerRes.IPC != sampleResult().IPC {
		t.Error("owner result corrupted by waiter cancellation")
	}
}

// TestDoContextOwnerCanceledRetry: when the flight's owner dies of its own
// context cancellation, a live waiter takes over as the new owner instead of
// inheriting the cancellation — cross-request single-flight stays safe under
// per-request deadlines.
func TestDoContextOwnerCanceledRetry(t *testing.T) {
	s, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key(sim.DefaultConfig(), sim.PrefSpec{Base: "spp"}, testWorkload(t, "milc"), sim.DefaultRunOpt())

	octx, ocancel := context.WithCancel(context.Background())
	ownerStarted := make(chan struct{})
	var calls atomic.Int32
	fn := func(ctx context.Context) (sim.Result, error) {
		if calls.Add(1) == 1 {
			close(ownerStarted)
			<-ctx.Done() // first owner only dies of cancellation
			return sim.Result{}, ctx.Err()
		}
		return sampleResult(), nil
	}

	ownerErr := make(chan error, 1)
	go func() {
		_, _, err := s.DoContext(octx, key, fn)
		ownerErr <- err
	}()
	<-ownerStarted

	// The waiter joins, the owner is canceled, and the waiter must rerun the
	// computation itself and succeed.
	waiterDone := make(chan struct{})
	var waiterRes sim.Result
	var waiterErr error
	go func() {
		defer close(waiterDone)
		waiterRes, _, waiterErr = s.DoContext(context.Background(), key, fn)
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter join the flight
	ocancel()

	if err := <-ownerErr; err != context.Canceled {
		t.Errorf("owner error = %v, want context.Canceled", err)
	}
	select {
	case <-waiterDone:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never took over the canceled flight")
	}
	if waiterErr != nil {
		t.Fatalf("waiter inherited the owner's cancellation: %v", waiterErr)
	}
	if waiterRes.IPC != sampleResult().IPC {
		t.Error("waiter returned a wrong result")
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("computation ran %d times, want 2 (canceled owner + retrying waiter)", n)
	}
	// The retried result is durable: a fresh lookup hits.
	if _, ok := s.Get(key); !ok {
		t.Error("retried result was not cached")
	}
}
