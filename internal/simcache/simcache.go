// Package simcache memoizes simulation results on disk. sim.Run is a pure
// function of (machine config, prefetch spec, workload, run options), so its
// Result can be content-addressed: the cache key is a SHA-256 over the JSON
// encoding of every input plus a schema version, and the value is the Result
// serialized as JSON. Re-running an experiment with a warm cache performs
// zero simulations; an interrupted sweep resumes from whatever finished.
//
// The store is safe for concurrent use within a process (in-flight
// computations of the same key are de-duplicated single-flight style) and
// across processes (entries are written to a temp file and renamed into
// place, so readers never observe partial writes). A corrupted or truncated
// entry is treated as a miss and removed.
//
// Invalidation: pass a different directory, delete entries, or bump
// SchemaVersion when the meaning of a Result changes (new fields derived
// differently, generator behaviour changes, etc.).
package simcache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/trace"
)

// SchemaVersion is folded into every key. Bump it whenever sim.Result's
// derivation changes in a way that makes previously stored entries stale
// (e.g. a workload generator or timing-model fix that alters results without
// altering any Key input).
//
// v2: keys gained the workload ContentID (trace-file digest), closing the
// stale-replay hazard where a re-recorded trace file kept its old entry.
//
// v3: the CPU model became chunk-invariant (in-flight trace accesses and the
// current cycle's consumed retire/fetch bandwidth now persist across Run
// calls), which slightly shifts cycle counts relative to v2 entries.
const SchemaVersion = 3

// keyBlob is the canonical serialized form of everything a simulation's
// outcome depends on. Workloads are identified by catalogue name plus their
// THP policy (rendered via %#v, which covers the policy's concrete type and
// parameters); the generator code itself is versioned by SchemaVersion.
type keyBlob struct {
	Schema    int
	Config    sim.Config
	Spec      sim.PrefSpec
	Workload  string
	Suite     string
	Intensive bool
	THP       string
	// ContentID distinguishes workloads whose name does not pin their
	// contents — a replayed trace file is keyed by a digest of its bytes, so
	// re-recording the file under the same path changes the key.
	ContentID string
	Opt       sim.RunOpt
}

// Key derives the content address of one simulation.
func Key(cfg sim.Config, spec sim.PrefSpec, w trace.Workload, opt sim.RunOpt) string {
	b, err := json.Marshal(keyBlob{
		Schema:    SchemaVersion,
		Config:    cfg,
		Spec:      spec,
		Workload:  w.Name,
		Suite:     w.Suite,
		Intensive: w.Intensive,
		THP:       fmt.Sprintf("%#v", w.THP),
		ContentID: w.ContentID,
		Opt:       opt,
	})
	if err != nil {
		// Every field is plain data; Marshal cannot fail. Guard anyway so a
		// future non-serializable Config field fails loudly, not silently
		// with colliding keys.
		panic("simcache: key not serializable: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Stats counts cache traffic since the Store was created.
type Stats struct {
	// Hits were served from disk without simulating.
	Hits uint64
	// Shared were served by waiting on another goroutine's in-flight
	// computation of the same key (no simulation, no disk read).
	Shared uint64
	// Misses executed the simulation.
	Misses uint64
	// Corrupt entries were found undecodable and discarded (each also
	// counts toward Misses once recomputed via Do).
	Corrupt uint64
}

// HitRate returns hits (disk + shared) over all lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Shared + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Shared) / float64(total)
}

// call is one in-flight computation, shared by every goroutine that wants
// its key.
type call struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// Store is a disk-backed result cache rooted at one directory.
type Store struct {
	dir string

	mu       sync.Mutex
	inflight map[string]*call

	hits, shared, misses, corrupt atomic.Uint64
}

// New opens (creating if needed) a store rooted at dir.
func New(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("simcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simcache: %w", err)
	}
	return &Store{dir: dir, inflight: map[string]*call{}}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:    s.hits.Load(),
		Shared:  s.shared.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
	}
}

// path shards entries by the first byte of the key so one directory never
// holds the full sweep (a full-scale figure is tens of thousands of entries).
// Keys shorter than the shard prefix (only seen in tests) go unsharded.
func (s *Store) path(key string) string {
	if len(key) <= 2 {
		return filepath.Join(s.dir, key+".json")
	}
	return filepath.Join(s.dir, key[:2], key[2:]+".json")
}

// Get loads the entry for key, reporting whether it exists and decodes
// cleanly. Undecodable entries are removed and reported as a miss. Get does
// not touch the hit/miss counters; it is the raw lookup used by Do and by
// tests.
func (s *Store) Get(key string) (sim.Result, bool) {
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return sim.Result{}, false
	}
	var res sim.Result
	if err := json.Unmarshal(b, &res); err != nil {
		// Corrupted or truncated by a crashed writer predating atomic
		// renames, or by bit rot: recover by treating it as a miss.
		s.corrupt.Add(1)
		os.Remove(s.path(key))
		return sim.Result{}, false
	}
	return res, true
}

// GetCounted is Get plus hit accounting: a successful load increments the
// hit counter, matching what Do would have recorded. It exists for callers
// that probe the cache directly (the cluster layer's local fast path) rather
// than through Do.
func (s *Store) GetCounted(key string) (sim.Result, bool) {
	res, ok := s.Get(key)
	if ok {
		s.hits.Add(1)
	}
	return res, ok
}

// GetRaw loads the serialized entry for key, validating that it decodes as a
// sim.Result (undecodable entries are removed, like Get). The raw bytes are
// what the cross-node cache protocol ships: re-marshalling on every transfer
// would burn CPU and could perturb byte-identical comparisons.
func (s *Store) GetRaw(key string) ([]byte, bool) {
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	var res sim.Result
	if err := json.Unmarshal(b, &res); err != nil {
		s.corrupt.Add(1)
		os.Remove(s.path(key))
		return nil, false
	}
	return b, true
}

// Put stores res under key atomically: the entry is written to a temp file
// in the same directory and renamed into place, so concurrent writers of the
// same key race benignly (identical content) and readers never see a partial
// entry.
func (s *Store) Put(key string, res sim.Result) error {
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("simcache: %w", err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("simcache: encode %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "put-*")
	if err != nil {
		return fmt.Errorf("simcache: %w", err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simcache: write %s: %w", key, errFirst(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simcache: %w", err)
	}
	return nil
}

func errFirst(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Do returns the cached result for key, or computes it with fn, stores it,
// and returns it. Concurrent calls for the same key execute fn once; the
// rest wait and share the outcome. hit reports whether the result was served
// without running fn in this call (from disk or from another goroutine's
// flight). Errors are never cached.
func (s *Store) Do(key string, fn func() (sim.Result, error)) (res sim.Result, hit bool, err error) {
	return s.DoContext(context.Background(), key,
		func(context.Context) (sim.Result, error) { return fn() })
}

// DoContext is Do with cancellation. fn receives the context of the call
// that actually executes it (the flight's owner); waiters sharing a flight
// stop waiting as soon as their own context is done. If the owner's context
// is canceled while a waiter's is still live, the waiter takes over and
// recomputes instead of inheriting a cancellation that is not its own — this
// is what makes cross-request single-flight safe in a server, where the
// first requester of a key may hit its deadline while others still want the
// result. Errors (including cancellations) are never cached.
func (s *Store) DoContext(ctx context.Context, key string, fn func(context.Context) (sim.Result, error)) (res sim.Result, hit bool, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return sim.Result{}, false, err
		}
		if res, ok := s.Get(key); ok {
			s.hits.Add(1)
			return res, true, nil
		}
		s.mu.Lock()
		if c, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return sim.Result{}, false, ctx.Err()
			}
			if c.err == nil {
				s.shared.Add(1)
				return c.res, true, nil
			}
			if errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded) {
				continue // the owner died of its own context; try again as owner
			}
			return c.res, true, c.err
		}
		c := &call{done: make(chan struct{})}
		s.inflight[key] = c
		s.mu.Unlock()

		c.res, c.err = fn(ctx)
		s.misses.Add(1)
		if c.err == nil {
			// A failed Put (full disk, read-only dir) degrades to uncached
			// operation; the computed result is still good.
			_ = s.Put(key, c.res)
		}
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(c.done)
		return c.res, false, c.err
	}
}

// Len reports how many entries the store currently holds on disk.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
