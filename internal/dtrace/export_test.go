package dtrace

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/tracecheck"
)

// twoNodeTrace simulates one request crossing two nodes: the client span on
// node-a parents a server span on node-b via its SpanContext, exactly as the
// traceparent header does in production.
func twoNodeTrace(t *testing.T) (a, b *Recorder, trace TraceID) {
	t.Helper()
	a = NewRecorder("node-a", 32)
	b = NewRecorder("node-b", 32)
	root := a.StartSpan(SpanContext{}, "batch")
	trace = root.Context().Trace
	child := a.StartSpan(root.Context(), "submit")
	remote := b.StartSpan(child.Context(), "job.run")
	remote.Annotate("job-1")
	remote.End()
	child.End()
	root.End()
	return a, b, trace
}

func TestStitchDedups(t *testing.T) {
	a, b, _ := twoNodeTrace(t)
	sa, sb := a.Snapshot(Filter{}), b.Snapshot(Filter{})
	// Fetching node-b's dump twice must not duplicate its spans.
	got := Stitch(sa, sb, sb)
	if len(got) != 3 {
		t.Fatalf("stitched %d spans, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].StartNS < got[i-1].StartNS {
			t.Fatal("stitched spans are not sorted by start time")
		}
	}
}

func TestTreeOfConnectivity(t *testing.T) {
	a, b, trace := twoNodeTrace(t)
	spans := Stitch(a.Snapshot(Filter{}), b.Snapshot(Filter{}))
	st := TreeOf(trace.String(), spans)
	if st.Spans != 3 || st.Roots != 1 || st.Orphans != 0 {
		t.Fatalf("tree = %+v, want 3 spans, 1 root, 0 orphans", st)
	}
	if !st.Connected() {
		t.Fatal("cross-node trace must stitch into one connected tree")
	}
	if len(st.Nodes) != 2 || st.Nodes[0] != "node-a" || st.Nodes[1] != "node-b" {
		t.Fatalf("nodes = %v, want [node-a node-b]", st.Nodes)
	}

	// Dropping node-b's dump breaks nothing structurally on node-a's side…
	onlyA := TreeOf(trace.String(), a.Snapshot(Filter{}))
	if !onlyA.Connected() {
		t.Fatalf("node-a's own spans form %+v, want a connected subtree", onlyA)
	}
	// …but dropping node-a's dump orphans the server span.
	onlyB := TreeOf(trace.String(), b.Snapshot(Filter{}))
	if onlyB.Orphans != 1 || onlyB.Connected() {
		t.Fatalf("node-b alone = %+v, want 1 orphan (parent lives on node-a)", onlyB)
	}
}

func TestChromeExportIsLoadable(t *testing.T) {
	a, b, trace := twoNodeTrace(t)
	// A failed span exercises the error arg.
	bad := a.StartSpan(SpanContext{Trace: trace, Span: NewSpanID(), Flags: 1}, "steal.wait")
	bad.SetStart(time.Now().Add(-time.Millisecond))
	bad.Annotate("timeout")
	bad.Fail(errors.New("steal window expired"))
	bad.End()

	spans := Stitch(a.Snapshot(Filter{}), b.Snapshot(Filter{}))
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	events := tracecheck.ValidateChromeTrace(t, buf.Bytes())

	var procs, threads, slices int
	names := map[string]bool{}
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			args := ev["args"].(map[string]any)
			switch ev["name"] {
			case "process_name":
				procs++
				names[args["name"].(string)] = true
			case "thread_name":
				threads++
			}
		case "X":
			slices++
			args := ev["args"].(map[string]any)
			if args["trace_id"] != trace.String() {
				t.Fatalf("slice %v carries trace %v, want %s", ev["name"], args["trace_id"], trace)
			}
		}
	}
	if procs != 2 || !names["node-a"] || !names["node-b"] {
		t.Fatalf("export has %d process tracks %v, want node-a and node-b", procs, names)
	}
	if threads != 2 {
		t.Fatalf("export has %d thread lanes, want one per (node, trace) = 2", threads)
	}
	if slices != 4 {
		t.Fatalf("export has %d slices, want 4", slices)
	}
}
