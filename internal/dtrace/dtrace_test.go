package dtrace

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Flags: 1}
	s := sc.Traceparent()
	if len(s) != traceparentLen {
		t.Fatalf("traceparent %q has length %d, want %d", s, len(s), traceparentLen)
	}
	got, err := ParseTraceparent(s)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", s, err)
	}
	if got != sc {
		t.Fatalf("round trip = %+v, want %+v", got, sc)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, err := ParseTraceparent(valid); err != nil {
		t.Fatalf("canonical W3C example rejected: %v", err)
	}
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"short", valid[:54]},
		{"long", valid + "0"},
		{"bad version", "01" + valid[2:]},
		{"ff version", "ff" + valid[2:]},
		{"uppercase trace id", strings.ToUpper(valid)},
		{"zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01"},
		{"zero span id", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01"},
		{"missing dash", strings.Replace(valid, "-", "_", 1)},
		{"dash shifted", "00-0af7651916cd43dd8448eb211c80319-cb7ad6b7169203331-01"},
		{"non-hex trace", "00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01"},
		{"non-hex flags", valid[:53] + "zz"},
		{"whitespace", " " + valid[1:]},
	}
	for _, c := range cases {
		if _, err := ParseTraceparent(c.in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted", c.name, c.in)
		}
	}
}

func TestNewIDsNonZeroAndDistinct(t *testing.T) {
	seenT := map[TraceID]bool{}
	seenS := map[SpanID]bool{}
	for i := 0; i < 100; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if tid.IsZero() || sid.IsZero() {
			t.Fatal("generated a zero ID")
		}
		if seenT[tid] || seenS[sid] {
			t.Fatal("generated a duplicate ID within 100 draws")
		}
		seenT[tid], seenS[sid] = true, true
	}
}

func TestInjectExtract(t *testing.T) {
	rec := NewRecorder("n", 16)
	ctx, sp := Start(NewContext(context.Background(), rec, SpanContext{}), "op")
	h := http.Header{}
	Inject(ctx, h)
	got, ok := Extract(h)
	if !ok {
		t.Fatalf("Extract failed on injected header %q", h.Get(Header))
	}
	if got != sp.Context() {
		t.Fatalf("extracted %+v, want %+v", got, sp.Context())
	}

	// An untraced context injects nothing.
	h2 := http.Header{}
	Inject(context.Background(), h2)
	if v := h2.Get(Header); v != "" {
		t.Fatalf("untraced Inject wrote %q", v)
	}
	if _, ok := Extract(http.Header{}); ok {
		t.Fatal("Extract succeeded on empty header")
	}
	// Malformed headers degrade to untraced.
	h3 := http.Header{}
	h3.Set(Header, "garbage")
	if _, ok := Extract(h3); ok {
		t.Fatal("Extract accepted garbage")
	}
}

func TestDisabledPathIsFree(t *testing.T) {
	ctx := context.Background()
	if got := NewContext(ctx, nil, SpanContext{}); got != ctx {
		t.Fatal("NewContext with no recorder and no span must return ctx unchanged")
	}
	ctx2, sp := Start(ctx, "op")
	if sp != nil {
		t.Fatal("Start without a recorder must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without a recorder must return ctx unchanged")
	}
	// Every span method must be a nil-receiver no-op.
	sp.Annotate("x")
	sp.SetStart(time.Now())
	sp.Fail(context.Canceled)
	sp.End()
	if sp.Context().Valid() {
		t.Fatal("nil span must report a zero context")
	}
	var rec *Recorder
	if s := rec.StartSpan(SpanContext{}, "op"); s != nil {
		t.Fatal("nil recorder must start nil spans")
	}
	if rec.Total() != 0 || rec.Dropped() != 0 || rec.Node() != "" || rec.Snapshot(Filter{}) != nil {
		t.Fatal("nil recorder accessors must be zero")
	}
}

func TestSpanNesting(t *testing.T) {
	rec := NewRecorder("n", 16)
	ctx := NewContext(context.Background(), rec, SpanContext{})
	ctx, parent := Start(ctx, "parent")
	_, child := Start(ctx, "child")
	if child.Context().Trace != parent.Context().Trace {
		t.Fatal("child must inherit the parent's trace ID")
	}
	child.End()
	parent.End()

	spans := rec.Snapshot(Filter{})
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	byName := map[string]SpanData{}
	for _, d := range spans {
		byName[d.Name] = d
	}
	if byName["child"].ParentID != byName["parent"].SpanID {
		t.Fatalf("child parent = %q, want %q", byName["child"].ParentID, byName["parent"].SpanID)
	}
	if byName["parent"].ParentID != "" {
		t.Fatalf("root span has parent %q", byName["parent"].ParentID)
	}
	if byName["parent"].Node != "n" {
		t.Fatalf("span node = %q, want n", byName["parent"].Node)
	}
}

func TestStartSpanExplicitParent(t *testing.T) {
	rec := NewRecorder("n", 16)
	remote := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Flags: 1}
	sp := rec.StartSpan(remote, "server.op")
	if sp.Context().Trace != remote.Trace {
		t.Fatal("explicit parent must pin the trace ID")
	}
	sp.Fail(context.DeadlineExceeded)
	sp.End()
	got := rec.Snapshot(Filter{Trace: remote.Trace.String()})
	if len(got) != 1 {
		t.Fatalf("snapshot by trace = %d spans, want 1", len(got))
	}
	if got[0].ParentID != remote.Span.String() {
		t.Fatalf("parent = %q, want %q", got[0].ParentID, remote.Span.String())
	}
	if !got[0].Error || got[0].Ref != context.DeadlineExceeded.Error() {
		t.Fatalf("failed span exported as %+v", got[0])
	}
}
