package dtrace

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
	"testing"
)

// fill records n root spans named seq-<i> on distinct traces and returns the
// trace ID of the last one.
func fill(r *Recorder, n int) TraceID {
	var last TraceID
	for i := 0; i < n; i++ {
		sp := r.StartSpan(SpanContext{}, "seq-"+strconv.Itoa(i))
		last = sp.Context().Trace
		sp.End()
	}
	return last
}

func TestRingWraparound(t *testing.T) {
	r := NewRecorder("n", 8)
	fill(r, 20)
	if r.Total() != 20 {
		t.Fatalf("Total = %d, want 20", r.Total())
	}
	if r.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", r.Dropped())
	}
	got := r.Snapshot(Filter{})
	if len(got) != 8 {
		t.Fatalf("snapshot holds %d spans, want capacity 8", len(got))
	}
	// Oldest-first: the survivors are seq-12..seq-19 in order.
	for i, d := range got {
		if want := "seq-" + strconv.Itoa(12+i); d.Name != want {
			t.Fatalf("snapshot[%d] = %q, want %q", i, d.Name, want)
		}
	}
}

func TestSnapshotFilters(t *testing.T) {
	r := NewRecorder("n", 64)
	keep := fill(r, 5)
	bad := r.StartSpan(SpanContext{Trace: keep, Span: NewSpanID(), Flags: 1}, "boom")
	bad.Fail(fmt.Errorf("kaput"))
	bad.End()

	if got := r.Snapshot(Filter{Trace: keep.String()}); len(got) != 2 {
		t.Fatalf("trace filter kept %d spans, want 2 (seq-4 + boom)", len(got))
	}
	errs := r.Snapshot(Filter{ErrorsOnly: true})
	if len(errs) != 1 || errs[0].Name != "boom" || errs[0].Ref != "kaput" {
		t.Fatalf("errors-only = %+v, want the single failed span", errs)
	}
	lim := r.Snapshot(Filter{Limit: 2})
	if len(lim) != 2 || lim[0].Name != "seq-4" || lim[1].Name != "boom" {
		t.Fatalf("limit filter must keep the newest spans, got %+v", lim)
	}
	if got := r.Snapshot(Filter{Trace: "not-a-trace"}); len(got) != 0 {
		t.Fatalf("unknown trace matched %d spans", len(got))
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRecorder("node-x", 16)
	fill(r, 3)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, Filter{}); err != nil {
		t.Fatal(err)
	}
	if bytes.Count(buf.Bytes(), []byte("\n")) != 3 {
		t.Fatalf("JSONL output is not one line per span:\n%s", buf.String())
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := r.Snapshot(Filter{})
	if len(got) != len(want) {
		t.Fatalf("read %d spans, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("span %d: read %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRefTruncation(t *testing.T) {
	r := NewRecorder("n", 4)
	sp := r.StartSpan(SpanContext{}, "op")
	long := string(bytes.Repeat([]byte("x"), 200))
	sp.Annotate(long)
	sp.End()
	got := r.Snapshot(Filter{})
	if len(got) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(got))
	}
	if len(got[0].Ref) > 48 || got[0].Ref != long[:len(got[0].Ref)] {
		t.Fatalf("ref %q must be a prefix of the annotation, at most 48 bytes", got[0].Ref)
	}
}

func TestNameTableOverflow(t *testing.T) {
	r := NewRecorder("n", 4)
	// Exhaust the 255-entry name table; overflow must degrade, not corrupt.
	for i := 0; i < 300; i++ {
		sp := r.StartSpan(SpanContext{}, "name-"+strconv.Itoa(i))
		sp.End()
	}
	for _, d := range r.Snapshot(Filter{}) {
		if d.Name == "" {
			t.Fatal("overflowed name table produced an empty span name")
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder("n", 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := r.StartSpan(SpanContext{}, "g"+strconv.Itoa(g))
				sp.Annotate("iter")
				if i%7 == 0 {
					sp.Fail(fmt.Errorf("g%d", g))
				}
				sp.End()
				r.Snapshot(Filter{Limit: 10})
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("Total = %d, want 800", r.Total())
	}
	if got := r.Snapshot(Filter{}); len(got) != 128 {
		t.Fatalf("snapshot holds %d spans, want 128", len(got))
	}
}
