package dtrace

import (
	"encoding/json"
	"io"
	"sort"
)

// Stitch merges span sets fetched from several nodes (plus the client's own
// recorder) into one oldest-first slice, dropping duplicates — a span can
// arrive twice when a flight dump is fetched more than once. Identity is
// (trace, span, node): span IDs are random per process, so cross-node
// collisions are not a practical concern, but a node re-recording an ID is
// kept distinct from another node reporting it.
func Stitch(sets ...[]SpanData) []SpanData {
	type key struct{ trace, span, node string }
	seen := map[key]struct{}{}
	var out []SpanData
	for _, set := range sets {
		for _, d := range set {
			k := key{d.TraceID, d.SpanID, d.Node}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartNS < out[j].StartNS })
	return out
}

// TraceIDs returns the distinct trace IDs present in spans, sorted.
func TraceIDs(spans []SpanData) []string {
	seen := map[string]struct{}{}
	for _, d := range spans {
		seen[d.TraceID] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// TreeStats describes the shape of one trace's stitched span set — the
// connectivity check the cluster e2e harness asserts on: a cross-node batch
// must stitch into ONE tree (single root, no orphans) covering every node
// that touched it.
type TreeStats struct {
	// Spans is how many spans the trace has.
	Spans int
	// Roots counts spans with no parent reference.
	Roots int
	// Orphans counts spans whose parent ID is not among the spans — a break
	// in the tree (a hop whose parent was never exported, or propagation
	// losing the traceparent).
	Orphans int
	// Nodes is the sorted set of reporting nodes.
	Nodes []string
}

// Connected reports whether the spans form a single tree: exactly one root
// and no orphans.
func (s TreeStats) Connected() bool { return s.Roots == 1 && s.Orphans == 0 }

// TreeOf computes the tree shape of one trace within spans.
func TreeOf(trace string, spans []SpanData) TreeStats {
	ids := map[string]struct{}{}
	for _, d := range spans {
		if d.TraceID == trace {
			ids[d.SpanID] = struct{}{}
		}
	}
	var st TreeStats
	nodes := map[string]struct{}{}
	for _, d := range spans {
		if d.TraceID != trace {
			continue
		}
		st.Spans++
		if d.Node != "" {
			nodes[d.Node] = struct{}{}
		}
		switch {
		case d.ParentID == "":
			st.Roots++
		default:
			if _, ok := ids[d.ParentID]; !ok {
				st.Orphans++
			}
		}
	}
	st.Nodes = make([]string, 0, len(nodes))
	for n := range nodes {
		st.Nodes = append(st.Nodes, n)
	}
	sort.Strings(st.Nodes)
	return st
}

// chromeEvent is one trace_event record; see the Chrome Trace Event Format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes stitched spans in Chrome trace_event JSON (the
// array form chrome://tracing and Perfetto load directly). Each node becomes
// a process (named by a process_name metadata record) and each trace a
// thread within it, so a multi-node batch renders as one timeline with a
// track per node. Timestamps are wall-clock microseconds; spans are complete
// ("X") slices carrying their span/parent IDs and annotation in args.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	// Stable process numbering: nodes sorted, pid 1..N.
	pidOf := map[string]int{}
	for _, n := range nodeSet(spans) {
		pidOf[n] = len(pidOf) + 1
	}
	// Thread numbering per (node, trace), in first-seen order after a sort
	// by start time so tid assignment is deterministic.
	ordered := append([]SpanData(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].StartNS < ordered[j].StartNS })
	type laneKey struct {
		node, trace string
	}
	tidOf := map[laneKey]int{}
	nextTID := map[string]int{}

	out := make([]chromeEvent, 0, len(ordered)+2*len(pidOf))
	for node, pid := range pidOf {
		name := node
		if name == "" {
			name = "(unattributed)"
		}
		out = append(out, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": name},
		})
	}
	// Metadata first, then slices by timestamp.
	sort.SliceStable(out, func(i, j int) bool { return out[i].PID < out[j].PID })

	for _, d := range ordered {
		lk := laneKey{d.Node, d.TraceID}
		tid, ok := tidOf[lk]
		if !ok {
			nextTID[d.Node]++
			tid = nextTID[d.Node]
			tidOf[lk] = tid
			out = append(out, chromeEvent{
				Name: "thread_name", Phase: "M", PID: pidOf[d.Node], TID: tid,
				Args: map[string]any{"name": "trace " + shortID(d.TraceID)},
			})
		}
		dur := (d.EndNS - d.StartNS) / 1000
		if dur <= 0 {
			dur = 1 // Perfetto drops zero-width slices; keep markers visible
		}
		args := map[string]any{
			"trace_id": d.TraceID,
			"span_id":  d.SpanID,
		}
		if d.ParentID != "" {
			args["parent_id"] = d.ParentID
		}
		if d.Ref != "" {
			args["ref"] = d.Ref
		}
		if d.Error {
			args["error"] = true
		}
		out = append(out, chromeEvent{
			Name:  d.Name,
			Phase: "X",
			TS:    d.StartNS / 1000,
			Dur:   dur,
			PID:   pidOf[d.Node],
			TID:   tid,
			Args:  args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

func nodeSet(spans []SpanData) []string {
	seen := map[string]struct{}{}
	for _, d := range spans {
		seen[d.Node] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func shortID(id string) string {
	if len(id) > 8 {
		return id[:8]
	}
	return id
}
