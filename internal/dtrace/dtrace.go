// Package dtrace is a zero-dependency distributed tracing layer for the
// simulation service: span trees scoped to a batch → job → simulation →
// cluster-hop hierarchy, identified by a 128-bit trace ID that propagates
// across processes in a W3C traceparent-style HTTP header.
//
// The design follows the repo's telemetry discipline (see internal/telemetry):
//
//   - Off is free. Tracing rides a context; a context without a recorder
//     makes Start return a nil *Span whose every method is a nil-check no-op,
//     so untraced paths pay one context lookup and nothing else.
//   - Recording never allocates per event. Each node keeps a preallocated,
//     pointer-free span ring (a flight recorder): span names are interned
//     into a small table and free-text annotations are truncated into a
//     fixed byte array, so the GC never scans the ring and the newest spans
//     are always available for live inspection (GET /debug/flight).
//   - Attribution over aggregation. Counters say how many proxies or
//     failovers happened; spans say which simulation of which batch stalled
//     where, on which node, and why — the per-event accounting the paper
//     applies to prefetches, applied to the service layer.
//
// Spans recorded on different nodes under one trace ID are stitched into a
// single tree (Stitch, TreeOf) and exported as Chrome trace_event JSON
// (WriteChromeTrace), which Perfetto renders as one timeline with a track
// per node.
package dtrace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// TraceID identifies one distributed operation (a batch, end to end) across
// every node that touches it.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is unset (the invalid all-zero value).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is unset (the invalid all-zero value).
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// idCounter breaks ties when the random source misbehaves; IDs must never be
// zero (the traceparent spec reserves all-zero as invalid).
var idCounter atomic.Uint64

// NewTraceID returns a random non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for {
		if _, err := rand.Read(t[:]); err != nil {
			binary.BigEndian.PutUint64(t[:8], uint64(time.Now().UnixNano()))
			binary.BigEndian.PutUint64(t[8:], idCounter.Add(1))
		}
		if !t.IsZero() {
			return t
		}
	}
}

// NewSpanID returns a random non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for {
		if _, err := rand.Read(s[:]); err != nil {
			binary.BigEndian.PutUint64(s[:], uint64(time.Now().UnixNano())^idCounter.Add(1))
		}
		if !s.IsZero() {
			return s
		}
	}
}

// SpanContext is the propagated identity of the current position in a trace:
// which trace this work belongs to and which span is its parent.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
	// Flags is the traceparent trace-flags byte; bit 0 (sampled) is set on
	// every context this package creates.
	Flags byte
}

// Valid reports whether the context identifies a trace (non-zero trace and
// span IDs, as the traceparent spec requires).
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Header is the HTTP header spans propagate through, after the W3C Trace
// Context specification.
const Header = "traceparent"

// traceparentLen is the exact length of a version-00 traceparent value:
// "00-" + 32 + "-" + 16 + "-" + 2.
const traceparentLen = 55

// Traceparent renders the context in W3C traceparent form:
// 00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>.
func (sc SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", sc.Trace, sc.Span, sc.Flags)
}

// hexVal decodes one lowercase hex digit; ok is false for anything else
// (uppercase included — the spec requires lowercase on the wire).
func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// hexDecode fills dst from 2·len(dst) lowercase hex digits.
func hexDecode(dst []byte, s string) bool {
	if len(s) != 2*len(dst) {
		return false
	}
	for i := range dst {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

// ParseTraceparent parses a version-00 traceparent value. It is strict in
// what it accepts — exact length, lowercase hex, version 00, non-zero trace
// and span IDs — because a malformed header from an arbitrary client must
// degrade to "untraced", never to a corrupt trace identity.
func ParseTraceparent(s string) (SpanContext, error) {
	if len(s) != traceparentLen {
		return SpanContext{}, fmt.Errorf("dtrace: traceparent length %d, want %d", len(s), traceparentLen)
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, fmt.Errorf("dtrace: traceparent missing field separators")
	}
	if s[0] != '0' || s[1] != '0' {
		return SpanContext{}, fmt.Errorf("dtrace: unsupported traceparent version %q", s[:2])
	}
	var sc SpanContext
	if !hexDecode(sc.Trace[:], s[3:35]) {
		return SpanContext{}, fmt.Errorf("dtrace: bad trace-id %q", s[3:35])
	}
	if !hexDecode(sc.Span[:], s[36:52]) {
		return SpanContext{}, fmt.Errorf("dtrace: bad span-id %q", s[36:52])
	}
	var fl [1]byte
	if !hexDecode(fl[:], s[53:55]) {
		return SpanContext{}, fmt.Errorf("dtrace: bad trace-flags %q", s[53:55])
	}
	sc.Flags = fl[0]
	if sc.Trace.IsZero() {
		return SpanContext{}, fmt.Errorf("dtrace: all-zero trace-id is invalid")
	}
	if sc.Span.IsZero() {
		return SpanContext{}, fmt.Errorf("dtrace: all-zero span-id is invalid")
	}
	return sc, nil
}

// Inject writes the context's current span identity into h, so the receiving
// process parents its spans under ours. A context with no valid span identity
// writes nothing.
func Inject(ctx context.Context, h http.Header) {
	st := stateFrom(ctx)
	if !st.sc.Valid() {
		return
	}
	h.Set(Header, st.sc.Traceparent())
}

// Extract parses the traceparent header out of h; ok is false when absent or
// malformed (the caller should then treat the request as untraced).
func Extract(h http.Header) (SpanContext, bool) {
	v := h.Get(Header)
	if v == "" {
		return SpanContext{}, false
	}
	sc, err := ParseTraceparent(v)
	if err != nil {
		return SpanContext{}, false
	}
	return sc, true
}

// ctxKey keys the trace state in a context.
type ctxKey struct{}

// state is what a context carries: where spans are recorded and the current
// position in the trace.
type state struct {
	rec *Recorder
	sc  SpanContext
}

func stateFrom(ctx context.Context) state {
	st, _ := ctx.Value(ctxKey{}).(state)
	return st
}

// NewContext returns a context that records spans into rec, parented under
// sc (the zero SpanContext starts fresh traces). A nil recorder with a zero
// context returns ctx unchanged — the free "tracing off" path.
func NewContext(ctx context.Context, rec *Recorder, sc SpanContext) context.Context {
	if rec == nil && !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, state{rec: rec, sc: sc})
}

// RecorderFrom returns the context's recorder (nil when untraced).
func RecorderFrom(ctx context.Context) *Recorder { return stateFrom(ctx).rec }

// SpanContextFrom returns the context's current span identity (zero when
// untraced).
func SpanContextFrom(ctx context.Context) SpanContext { return stateFrom(ctx).sc }

// Span is one in-flight operation. It is recorded into the flight ring on
// End. The nil *Span is the disabled span: every method no-ops, so call
// sites never branch on whether tracing is on.
type Span struct {
	rec    *Recorder
	sc     SpanContext
	parent SpanID
	name   string
	start  int64 // unix nanos
	ref    string
	failed bool
}

// Start opens a child span of ctx's current position and returns a context
// positioned at the new span (children started from it nest correctly).
// Without a recorder in ctx it returns ctx unchanged and a nil span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	st := stateFrom(ctx)
	if st.rec == nil {
		return ctx, nil
	}
	sp := st.rec.StartSpan(st.sc, name)
	return context.WithValue(ctx, ctxKey{}, state{rec: st.rec, sc: sp.sc}), sp
}

// StartSpan opens a child span of parent (a zero parent starts a new trace)
// without threading a context. Nil-safe: a nil recorder returns a nil span.
func (r *Recorder) StartSpan(parent SpanContext, name string) *Span {
	if r == nil {
		return nil
	}
	sc := SpanContext{Trace: parent.Trace, Span: NewSpanID(), Flags: parent.Flags | 1}
	if sc.Trace.IsZero() {
		sc.Trace = NewTraceID()
	}
	return &Span{
		rec:    r,
		sc:     sc,
		parent: parent.Span,
		name:   name,
		start:  time.Now().UnixNano(),
	}
}

// Context returns the span's identity, for propagation or manual parenting.
// Nil-safe (zero context).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetStart backdates the span (e.g. a queue-wait span recorded at pickup
// using the admission timestamp). Nil-safe.
func (s *Span) SetStart(t time.Time) {
	if s != nil {
		s.start = t.UnixNano()
	}
}

// Annotate attaches a short free-text reference (cache-key prefix, endpoint,
// workload/spec) to the span; it is truncated to the ring's fixed annotation
// capacity on record. Nil-safe.
func (s *Span) Annotate(ref string) {
	if s != nil {
		s.ref = ref
	}
}

// Fail marks the span failed and, if the annotation is empty, stores the
// error text. A nil error or nil span is a no-op.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.failed = true
	if s.ref == "" {
		s.ref = err.Error()
	}
}

// End records the span into the flight ring. Nil-safe; ending twice records
// twice (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.record(s.sc, s.parent, s.name, s.start, time.Now().UnixNano(), s.ref, s.failed)
}
