package dtrace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"io"
	"strings"
	"sync"
)

// refCap bounds a span's free-text annotation in the ring. Annotations are
// short by construction (key prefixes, endpoint hosts, workload/spec names);
// longer ones are truncated, never allocated around.
const refCap = 48

// spanRecord is one completed span packed pointer-free for the ring: the
// span name is an index into the recorder's interned name table and the
// annotation lives in a fixed byte array, so the preallocated ring contains
// no heap pointers — the GC never scans it (same discipline as the telemetry
// tracer's record).
type spanRecord struct {
	traceHi, traceLo uint64
	span, parent     uint64
	start, end       int64 // unix nanos
	name             uint8 // index into Recorder.names
	flags            uint8
	refLen           uint8
	_                uint8
	ref              [refCap]byte
}

const recFlagError = 1 << 0

// DefaultCap is the default flight-ring capacity (~400KB of records): deep
// enough to hold every span of a large multi-node batch, bounded so a
// long-lived daemon's recorder never grows.
const DefaultCap = 1 << 12

// Recorder is a node's span flight recorder: a preallocated ring keeping the
// newest Cap spans, safe for concurrent recording from every request path.
// A nil *Recorder drops everything for free.
type Recorder struct {
	node string

	mu    sync.Mutex
	recs  []spanRecord
	head  int // next overwrite position once full
	total uint64
	names []string // interned span names (fixed call-site vocabulary)
}

// NewRecorder builds a flight recorder identified as node (the identity
// every exported span carries), keeping the newest capacity spans
// (DefaultCap if capacity <= 0).
func NewRecorder(node string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Recorder{node: node, recs: make([]spanRecord, 0, capacity)}
}

// Node returns the identity exported spans carry.
func (r *Recorder) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// internName returns name's index, appending on first sight. The vocabulary
// is the fixed set of call sites (~20 names); index 255 absorbs overflow.
func (r *Recorder) internName(name string) uint8 {
	for i, v := range r.names {
		if v == name {
			return uint8(i)
		}
	}
	if len(r.names) >= 255 {
		return 255
	}
	r.names = append(r.names, name)
	return uint8(len(r.names) - 1)
}

// record appends one completed span, overwriting the oldest once the ring is
// full. Nil-safe.
func (r *Recorder) record(sc SpanContext, parent SpanID, name string, start, end int64, ref string, failed bool) {
	if r == nil {
		return
	}
	rec := spanRecord{
		traceHi: binary.BigEndian.Uint64(sc.Trace[:8]),
		traceLo: binary.BigEndian.Uint64(sc.Trace[8:]),
		span:    binary.BigEndian.Uint64(sc.Span[:]),
		parent:  binary.BigEndian.Uint64(parent[:]),
		start:   start,
		end:     end,
	}
	if failed {
		rec.flags |= recFlagError
	}
	n := copy(rec.ref[:], ref)
	rec.refLen = uint8(n)

	r.mu.Lock()
	rec.name = r.internName(name)
	r.total++
	if len(r.recs) < cap(r.recs) {
		r.recs = append(r.recs, rec)
	} else {
		r.recs[r.head] = rec
		r.head = (r.head + 1) % len(r.recs)
	}
	r.mu.Unlock()
}

// Total returns the lifetime number of recorded spans (overwritten ones
// included). Nil-safe.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many spans ring wrap-around has overwritten. Nil-safe.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.recs))
}

// SpanData is the exported (wire/JSON) form of a recorded span. IDs are hex
// strings — the form they propagate in — and times are unix nanoseconds.
type SpanData struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	Node     string `json:"node,omitempty"`
	StartNS  int64  `json:"start_ns"`
	EndNS    int64  `json:"end_ns"`
	Ref      string `json:"ref,omitempty"`
	Error    bool   `json:"error,omitempty"`
}

// Filter selects spans out of a snapshot. The zero Filter selects all.
type Filter struct {
	// Trace keeps only spans of this trace ID (32 hex digits); empty keeps
	// every trace.
	Trace string
	// ErrorsOnly keeps only failed spans.
	ErrorsOnly bool
	// Limit keeps the newest N spans after the other filters; 0 is unlimited.
	Limit int
}

func (r *Recorder) unpack(rec spanRecord) SpanData {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], rec.traceHi)
	binary.BigEndian.PutUint64(t[8:], rec.traceLo)
	var sp, par SpanID
	binary.BigEndian.PutUint64(sp[:], rec.span)
	binary.BigEndian.PutUint64(par[:], rec.parent)
	name := "?"
	if int(rec.name) < len(r.names) {
		name = r.names[rec.name]
	}
	d := SpanData{
		TraceID: t.String(),
		SpanID:  sp.String(),
		Name:    name,
		Node:    r.node,
		StartNS: rec.start,
		EndNS:   rec.end,
		Ref:     string(rec.ref[:rec.refLen]),
		Error:   rec.flags&recFlagError != 0,
	}
	if !par.IsZero() {
		d.ParentID = par.String()
	}
	return d
}

// Snapshot returns the retained spans oldest-first, filtered. Nil-safe
// (empty snapshot).
func (r *Recorder) Snapshot(f Filter) []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	recs := make([]spanRecord, 0, len(r.recs))
	recs = append(recs, r.recs[r.head:]...)
	recs = append(recs, r.recs[:r.head]...)
	names := append([]string(nil), r.names...)
	r.mu.Unlock()

	view := &Recorder{node: r.node, names: names}
	out := make([]SpanData, 0, len(recs))
	for _, rec := range recs {
		d := view.unpack(rec)
		if f.Trace != "" && d.TraceID != f.Trace {
			continue
		}
		if f.ErrorsOnly && !d.Error {
			continue
		}
		out = append(out, d)
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// WriteJSONL writes the filtered snapshot as one JSON object per line — the
// GET /debug/flight format.
func (r *Recorder) WriteJSONL(w io.Writer, f Filter) error {
	enc := json.NewEncoder(w)
	for _, d := range r.Snapshot(f) {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a WriteJSONL stream back into spans (the client side of
// /debug/flight). Blank lines are skipped; a malformed line is an error.
func ReadJSONL(rd io.Reader) ([]SpanData, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []SpanData
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var d SpanData
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
