package dtrace

import "testing"

// FuzzTraceparent hammers the W3C traceparent parser with arbitrary input.
// The parser must never panic, and any value it accepts must re-render to a
// canonical form that parses back to the same identity (so a propagated
// header survives arbitrarily many hops unchanged).
func FuzzTraceparent(f *testing.F) {
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01")
	f.Add("traceparent")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		sc, err := ParseTraceparent(s)
		if err != nil {
			return
		}
		if !sc.Valid() {
			t.Fatalf("parser accepted %q but produced an invalid SpanContext %+v", s, sc)
		}
		rendered := sc.Traceparent()
		back, err := ParseTraceparent(rendered)
		if err != nil {
			t.Fatalf("re-render of accepted input %q does not parse: %q: %v", s, rendered, err)
		}
		if back != sc {
			t.Fatalf("round trip drifted: %q -> %+v -> %q -> %+v", s, sc, rendered, back)
		}
	})
}
