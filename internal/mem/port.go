package mem

// Port is the timing interface every memory component implements: submit a
// request at a given cycle and learn when its data is available. Caches,
// DRAM, and the page-table walker's target all present this interface, which
// lets the hierarchy be assembled as a chain of Ports.
type Port interface {
	// Access submits req at cycle `at` and returns the completion cycle.
	Access(req *Request, at Cycle) Cycle
}

// PortFunc adapts a function to the Port interface.
type PortFunc func(req *Request, at Cycle) Cycle

// Access implements Port.
func (f PortFunc) Access(req *Request, at Cycle) Cycle { return f(req, at) }
