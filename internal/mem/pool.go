package mem

// FreshRequests, when true, makes every RequestPool.Get return a newly
// allocated Request instead of reusing the pool's scratch entry. It exists
// for the differential determinism tests, which run pooled against
// fresh-allocation paths and require byte-identical results — proving reuse
// leaks no state between requests. It is a package variable rather than a
// sim.Config field so the content-addressed result cache (which marshals
// Config into its keys) is unaffected.
var FreshRequests bool

// RequestPool is a single-entry scratch pool for Request values. The
// simulator's access path is synchronous — Port.Access(req, at) returns
// before its caller issues another request, and no component retains *Request
// beyond the call — so every issuing site (core demand path, prefetch engine,
// page-table walker, writeback path) can reuse one per-site scratch entry and
// keep the steady-state hot path allocation-free.
//
// A pool must not be shared between sites whose requests can be live at the
// same time (e.g. a demand access and the prefetches its observer issues).
type RequestPool struct{ scratch Request }

// Get returns a zeroed *Request for the caller to fill and pass down the
// hierarchy. The pointer is valid until the pool's next Get.
func (p *RequestPool) Get() *Request {
	if FreshRequests {
		return &Request{}
	}
	p.scratch = Request{}
	return &p.scratch
}

// GetDirty returns the scratch entry without zeroing it. Callers must
// overwrite it with a full composite-literal assignment (*req = Request{...}),
// which zeroes every unmentioned field itself — the result is byte-identical
// to Get plus field writes, minus the redundant clear. Under FreshRequests it
// still allocates, so the pooled-vs-fresh differential covers these sites too.
func (p *RequestPool) GetDirty() *Request {
	if FreshRequests {
		return &Request{}
	}
	return &p.scratch
}
