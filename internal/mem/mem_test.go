package mem

import (
	"testing"
	"testing/quick"
)

func TestPageSizeGeometry(t *testing.T) {
	if Page4K.Bytes() != 4096 {
		t.Errorf("Page4K.Bytes() = %d, want 4096", Page4K.Bytes())
	}
	if Page2M.Bytes() != 2<<20 {
		t.Errorf("Page2M.Bytes() = %d, want %d", Page2M.Bytes(), 2<<20)
	}
	if Page4K.Blocks() != 64 {
		t.Errorf("Page4K.Blocks() = %d, want 64", Page4K.Blocks())
	}
	if Page2M.Blocks() != 32768 {
		t.Errorf("Page2M.Blocks() = %d, want 32768", Page2M.Blocks())
	}
	if Page4K.String() != "4KB" || Page2M.String() != "2MB" {
		t.Errorf("String() = %q, %q", Page4K.String(), Page2M.String())
	}
}

func TestBlockAlign(t *testing.T) {
	cases := []struct{ in, want Addr }{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 64},
		{65, 64},
		{0xdeadbeef, 0xdeadbec0},
	}
	for _, c := range cases {
		if got := BlockAlign(c.in); got != c.want {
			t.Errorf("BlockAlign(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestBlockOffsetInPage(t *testing.T) {
	// Last block of a 4KB page has offset 63; first block of the next page 0.
	a := Addr(PageSize4K - BlockSize)
	if got := BlockOffsetInPage(a, Page4K); got != 63 {
		t.Errorf("offset = %d, want 63", got)
	}
	if got := BlockOffsetInPage(a+BlockSize, Page4K); got != 0 {
		t.Errorf("offset = %d, want 0", got)
	}
	// Same address within a 2MB page keeps counting.
	if got := BlockOffsetInPage(a+BlockSize, Page2M); got != 64 {
		t.Errorf("2MB offset = %d, want 64", got)
	}
	last2M := Addr(PageSize2M - BlockSize)
	if got := BlockOffsetInPage(last2M, Page2M); got != 32767 {
		t.Errorf("2MB last offset = %d, want 32767", got)
	}
}

func TestSamePage(t *testing.T) {
	a := Addr(0x1000 - 64) // last block of page 0
	b := Addr(0x1000)      // first block of page 1
	if SamePage(a, b, Page4K) {
		t.Error("blocks straddling a 4KB boundary reported as same 4KB page")
	}
	if !SamePage(a, b, Page2M) {
		t.Error("blocks within one 2MB region reported as different 2MB pages")
	}
}

func TestAccessTypeString(t *testing.T) {
	want := map[AccessType]string{
		Load: "load", Store: "store", Fetch: "fetch",
		PageWalk: "pagewalk", Prefetch: "prefetch", Writeback: "writeback",
	}
	for ty, s := range want {
		if ty.String() != s {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), s)
		}
	}
	if AccessType(99).String() != "AccessType(99)" {
		t.Errorf("unknown type String() = %q", AccessType(99).String())
	}
}

func TestIsDemand(t *testing.T) {
	for _, ty := range []AccessType{Load, Store, Fetch} {
		if !ty.IsDemand() {
			t.Errorf("%v.IsDemand() = false, want true", ty)
		}
	}
	for _, ty := range []AccessType{PageWalk, Prefetch, Writeback} {
		if ty.IsDemand() {
			t.Errorf("%v.IsDemand() = true, want false", ty)
		}
	}
}

// Property: for any address and page size, the page base is aligned, contains
// the address, and the block offset is within range.
func TestPageDecompositionProperties(t *testing.T) {
	f := func(raw uint64, big bool) bool {
		a := Addr(raw)
		s := Page4K
		if big {
			s = Page2M
		}
		base := PageBase(a, s)
		if base%s.Bytes() != 0 {
			return false
		}
		if a < base || a >= base+s.Bytes() {
			return false
		}
		off := BlockOffsetInPage(a, s)
		if off < 0 || off >= s.Blocks() {
			return false
		}
		// Reconstruct the block address from page base + offset.
		return base+Addr(off)*BlockSize == BlockAlign(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: page numbers partition the address space consistently with
// SamePage.
func TestPageNumberConsistency(t *testing.T) {
	f := func(a, b uint64, big bool) bool {
		s := Page4K
		if big {
			s = Page2M
		}
		same := PageNumber(Addr(a), s) == PageNumber(Addr(b), s)
		return same == SamePage(Addr(a), Addr(b), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
