// Package mem defines the address-space primitives shared by every component
// of the simulator: byte addresses, cache-block and page geometry, page sizes,
// access types, and the memory request that flows through the hierarchy.
//
// The simulator models an x86-64-like system with 64-byte cache blocks and
// three concurrently supported page sizes: 4KB, 2MB (the pair the paper
// evaluates, since Linux THP transparently provides only 2MB pages), and 1GB
// (explicit hugetlbfs-style mappings, exercising the paper's "Additional Page
// Sizes" extension of PPM).
package mem

import "fmt"

// Addr is a byte address. Whether it is virtual or physical is determined by
// context; the two spaces never mix inside a single structure.
type Addr uint64

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle int64

// Geometry constants for blocks and pages.
const (
	BlockBits = 6 // 64-byte cache blocks
	BlockSize = 1 << BlockBits

	PageBits4K = 12
	PageSize4K = 1 << PageBits4K
	PageBits2M = 21
	PageSize2M = 1 << PageBits2M
	PageBits1G = 30
	PageSize1G = 1 << PageBits1G

	// BlocksPerPage4K and BlocksPerPage2M bound the per-page block offsets,
	// and therefore the delta ranges a spatial prefetcher can observe:
	// deltas within a 4KB page range -63..+63, within a 2MB page
	// -32767..+32767 (Section III-C of the paper).
	BlocksPerPage4K = PageSize4K / BlockSize // 64
	BlocksPerPage2M = PageSize2M / BlockSize // 32768
)

// PageSize identifies one of the concurrently supported page sizes.
type PageSize uint8

const (
	// Page4K is a standard 4KB page.
	Page4K PageSize = iota
	// Page2M is a 2MB large page (Linux THP).
	Page2M
	// Page1G is a 1GB large page. Linux provides no transparent support for
	// it (hugetlbfs mappings are explicit), so the evaluation's THP policies
	// never choose it; the machinery supports it end to end per the paper's
	// "Additional Page Sizes" discussion — with three concurrent sizes the
	// PPM needs ⌈log₂ 3⌉ = 2 bits per L1D MSHR entry.
	Page1G
)

// NumPageSizes is the number of concurrently supported page sizes; PPM needs
// ⌈log₂ NumPageSizes⌉ bits per L1D MSHR entry (Section IV-A).
const NumPageSizes = 3

// PPMBits is the per-MSHR-entry storage PPM requires for this configuration.
const PPMBits = 2

// Bits returns the number of page-offset bits for the size.
func (s PageSize) Bits() uint {
	switch s {
	case Page2M:
		return PageBits2M
	case Page1G:
		return PageBits1G
	}
	return PageBits4K
}

// Bytes returns the page size in bytes.
func (s PageSize) Bytes() Addr { return 1 << s.Bits() }

// Blocks returns the number of cache blocks per page of this size.
func (s PageSize) Blocks() int { return int(s.Bytes() >> BlockBits) }

// String implements fmt.Stringer.
func (s PageSize) String() string {
	switch s {
	case Page2M:
		return "2MB"
	case Page1G:
		return "1GB"
	}
	return "4KB"
}

// BlockAlign clears the block-offset bits of a.
func BlockAlign(a Addr) Addr { return a &^ (BlockSize - 1) }

// BlockNumber returns the cache-block number of a (address divided by 64).
func BlockNumber(a Addr) Addr { return a >> BlockBits }

// PageBase returns the base address of the page of size s containing a.
func PageBase(a Addr, s PageSize) Addr { return a &^ (s.Bytes() - 1) }

// PageNumber returns the page number of a for page size s.
func PageNumber(a Addr, s PageSize) Addr { return a >> s.Bits() }

// BlockOffsetInPage returns the index (in blocks) of a within its page of
// size s: 0..63 for 4KB pages, 0..32767 for 2MB pages.
func BlockOffsetInPage(a Addr, s PageSize) int {
	return int((a >> BlockBits) & Addr(s.Blocks()-1))
}

// SamePage reports whether a and b lie in the same page of size s.
func SamePage(a, b Addr, s PageSize) bool {
	return PageNumber(a, s) == PageNumber(b, s)
}

// AccessType classifies a memory request.
type AccessType uint8

const (
	// Load is a demand data read.
	Load AccessType = iota
	// Store is a demand data write (write-allocate).
	Store
	// Fetch is an instruction fetch.
	Fetch
	// PageWalk is a page-table-walker read.
	PageWalk
	// Prefetch is a prefetcher-generated read.
	Prefetch
	// Writeback is a dirty-eviction write to the next level.
	Writeback
)

// String implements fmt.Stringer.
func (t AccessType) String() string {
	switch t {
	case Load:
		return "load"
	case Store:
		return "store"
	case Fetch:
		return "fetch"
	case PageWalk:
		return "pagewalk"
	case Prefetch:
		return "prefetch"
	case Writeback:
		return "writeback"
	}
	return fmt.Sprintf("AccessType(%d)", uint8(t))
}

// IsDemand reports whether the access is a demand reference (load, store, or
// instruction fetch), as opposed to prefetcher or walker traffic.
func (t AccessType) IsDemand() bool { return t == Load || t == Store || t == Fetch }

// Request is a memory reference travelling down the hierarchy. Addresses
// below the L1 are physical; VAddr is carried for bookkeeping only.
type Request struct {
	PAddr Addr // physical address (block granularity is enforced by caches)
	VAddr Addr // originating virtual address, 0 for walker traffic
	PC    Addr // program counter of the triggering instruction
	Type  AccessType
	Core  int

	// PageSize is the size of the physical page containing PAddr, taken
	// from the address-translation metadata at L1 miss time. It is
	// meaningful only when PageSizeKnown is set: this is the single bit the
	// Page-size Propagation Module (PPM) adds to each L1D MSHR entry.
	PageSize      PageSize
	PageSizeKnown bool

	// FillL2 directs a Prefetch request's fill level: true fills the L2
	// (and below), false fills only the LLC. Ignored for demand requests.
	FillL2 bool

	// PrefID annotates which competing prefetcher issued a Prefetch
	// request (set-dueling annotation bit, Section IV-B2). Zero otherwise.
	PrefID uint8

	// CrossedPage marks a Prefetch whose target lies outside the trigger
	// access's 4KB page — the prefetches page-size awareness unlocks. Set by
	// the issuing engine; carried for lifecycle-tracing attribution only.
	CrossedPage bool
}
