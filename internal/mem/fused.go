package mem

// FusedPath, when true (the default), selects the fused memory-hierarchy
// descent at construction time: cache levels whose next Port is itself a
// cache link a concrete next-level pointer so the miss path runs through
// direct calls instead of interface dispatch, lookups use the packed
// partial-tag probe, consecutive same-block hits short-circuit through the
// generation-stamped line memo, and the prefetch engine batch-drains
// candidates with proven-drop accounting. False selects the legacy
// interface-dispatched path.
//
// Like vm.FlatVM, the toggle is consulted only while a system is being
// assembled — flipping it mid-simulation has no effect — and both settings
// must produce byte-identical results: the fused-vs-legacy differential
// (TestFusedPathEquivalence) runs the full quick workload×prefetcher matrix
// under both and compares encoded figures. It is a package variable rather
// than a sim.Config field so the content-addressed result cache (which
// marshals Config into its keys) is unaffected and no simcache SchemaVersion
// bump is needed.
var FusedPath = true
