package mem

// RequestArena is a per-simulation scratch arena for page-walk requests. The
// walker's references are issued strictly one at a time (each Access completes
// before the next reference is formed), but a single translation can emit a
// burst of them — up to four levels for the demand walk plus the background
// walks of the TLB prefetcher — so the arena hands out slots from a fixed ring
// sized to cover the longest burst, recycling the oldest slot once the ring
// wraps. One arena is shared by every MMU of a simulated system: walker
// scratch is per-simulation state, not per-core, exactly like the allocator
// the walks ultimately describe.
//
// Like RequestPool, the arena honours FreshRequests: the differential
// determinism tests run the ring against per-request heap allocation and
// require byte-identical results, proving slot recycling leaks no state
// between walks.
type RequestArena struct {
	ring []Request
	next int
}

// walkBurst bounds the number of walker references that can be formed from a
// single Translate call: a 4-level demand walk plus two background
// TLB-prefetch walks of up to 4 references each.
const walkBurst = 16

// NewRequestArena creates an arena with capacity for n simultaneous scratch
// requests; n < walkBurst is raised to walkBurst.
func NewRequestArena(n int) *RequestArena {
	if n < walkBurst {
		n = walkBurst
	}
	return &RequestArena{ring: make([]Request, n)}
}

// Get returns a zeroed *Request valid until the ring wraps back around to its
// slot (at least len(ring)-1 Gets later).
func (a *RequestArena) Get() *Request {
	if FreshRequests {
		return &Request{}
	}
	if a.next == len(a.ring) {
		a.next = 0
	}
	r := &a.ring[a.next]
	a.next++
	*r = Request{}
	return r
}
