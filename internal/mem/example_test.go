package mem_test

import (
	"fmt"

	"repro/internal/mem"
)

// The geometry helpers decompose physical addresses the way the prefetchers
// do: a block sits at some offset inside its residing page, and the paper's
// whole question is whether speculation may leave that page.
func ExamplePageSize() {
	addr := mem.Addr(0x40000FC0) // last block of the first 4KB page

	fmt.Println(mem.BlockOffsetInPage(addr, mem.Page4K))
	fmt.Println(mem.BlockOffsetInPage(addr, mem.Page2M))
	next := addr + mem.BlockSize
	fmt.Println(mem.SamePage(addr, next, mem.Page4K))
	fmt.Println(mem.SamePage(addr, next, mem.Page2M))
	// Output:
	// 63
	// 63
	// false
	// true
}

// PPM's storage cost follows from the number of concurrently supported page
// sizes.
func ExamplePageSize_ppmBits() {
	fmt.Printf("%d page sizes -> %d bits per L1D MSHR entry\n",
		mem.NumPageSizes, mem.PPMBits)
	for _, s := range []mem.PageSize{mem.Page4K, mem.Page2M, mem.Page1G} {
		fmt.Printf("%s: %d blocks per page\n", s, s.Blocks())
	}
	// Output:
	// 3 page sizes -> 2 bits per L1D MSHR entry
	// 4KB: 64 blocks per page
	// 2MB: 32768 blocks per page
	// 1GB: 16777216 blocks per page
}
