// Package tracecheck validates Chrome trace_event JSON structurally — the
// invariants Perfetto and chrome://tracing loading depend on — so every
// exporter in the repo (the telemetry lifecycle tracer, the dtrace span
// stitcher) is held to one definition of "loadable".
package tracecheck

import (
	"encoding/json"
	"testing"
)

// ValidateChromeTrace unmarshals data as a trace_event JSON array and
// asserts the structural invariants:
//
//   - the document is a JSON array of objects
//   - every event has "ph" and "name"; every non-metadata event has "ts"
//   - non-metadata timestamps are non-decreasing in document order
//   - complete ("X") events have a positive "dur"
//   - instant ("i") events carry a scope "s"
//   - metadata ("M") events are process_name/thread_name with an args.name
//
// It returns the decoded events for exporter-specific assertions.
func ValidateChromeTrace(t testing.TB, data []byte) []map[string]any {
	t.Helper()
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	lastTS := -1.0
	for i, e := range events {
		ph, ok := e["ph"].(string)
		if !ok {
			t.Fatalf("event %d missing ph: %v", i, e)
		}
		if _, ok := e["name"]; !ok {
			t.Fatalf("event %d missing name: %v", i, e)
		}
		if ph == "M" {
			name := e["name"]
			if name != "process_name" && name != "thread_name" {
				t.Errorf("event %d: unexpected metadata record %v", i, name)
			}
			args, _ := e["args"].(map[string]any)
			if args == nil || args["name"] == nil {
				t.Errorf("metadata event %d missing args.name: %v", i, e)
			}
			continue
		}
		ts, ok := e["ts"].(float64)
		if !ok {
			t.Fatalf("event %d missing ts: %v", i, e)
		}
		if ts < lastTS {
			t.Fatalf("timestamps not monotonic: %v after %v (event %d)", ts, lastTS, i)
		}
		lastTS = ts
		switch ph {
		case "X":
			dur, ok := e["dur"].(float64)
			if !ok || dur <= 0 {
				t.Errorf("complete event %d has non-positive dur: %v", i, e)
			}
		case "i":
			if e["s"] == nil {
				t.Errorf("instant event %d missing scope: %v", i, e)
			}
		default:
			t.Errorf("event %d has unexpected phase %v", i, ph)
		}
	}
	return events
}
