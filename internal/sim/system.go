package sim

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/prefetch/ipcp"
	"repro/internal/trace"
	"repro/internal/vm"
)

// coreNode is one core's private slice of the system.
type coreNode struct {
	id        int
	space     *vm.AddressSpace
	codeSpace *vm.AddressSpace
	mmu       *vm.MMU
	l1i       *cache.Cache
	l1d       *cache.Cache
	l2        *cache.Cache
	llc       *cache.Cache
	// desc is the fused descent over this core's private levels and the
	// shared LLC: the single entry point demand accesses and page-walk
	// references take into the hierarchy (direct calls all the way to DRAM
	// when mem.FusedPath linked the chain).
	desc *cache.Descent
	engine    *core.Engine
	cpu       *cpu.Core
	reader    trace.Reader

	l1Kind  L1Pref
	l1pf    *ipcp.Prefetcher
	candBuf []ipcp.Candidate

	// Scratch request pools for the three request-issuing sites of this core.
	// The access path is synchronous and single-goroutine per system, and the
	// three sites are never live at once within one pool, so each reuses one
	// entry instead of allocating per access.
	demandPool mem.RequestPool
	fetchPool  mem.RequestPool
	l1pfPool   mem.RequestPool
}

// system is a fully assembled machine.
type system struct {
	cfg     Config
	spec    PrefSpec
	alloc   *vm.Allocator
	dramDev *dram.DRAM
	llc     *cache.Cache
	nodes   []*coreNode
}

// newSystem assembles cores sharing one LLC (sets scaled per core) and one
// DRAM. Each core gets its own address space over the shared allocator, its
// own trace reader, and its own prefetch engine.
func newSystem(cfg Config, spec PrefSpec, workloads []trace.Workload, seed uint64) (*system, error) {
	s := &system{cfg: cfg, spec: spec}
	s.alloc = vm.NewAllocator(cfg.PhysBytes, seed)
	s.dramDev = dram.New(cfg.DRAM)

	// Demand merges with in-flight prefetches are promoted to demand
	// priority: they complete no later than a fresh demand miss travelling
	// the remaining path to DRAM.
	dramLat := cfg.DRAM.RowMissLatency + s.dramDev.BurstCycles()
	llcCfg := cfg.LLC
	llcCfg.Replacement = cfg.Replacement
	// Table I specifies the LLC per core (2MB): the shared LLC scales its
	// capacity with the core count, and its MSHR pool grows at 16 entries
	// per additional core beyond the single-core 64 — shared-LLC pressure
	// rises with core count without starving wide machines.
	llcCfg.Sets *= len(workloads)
	if n := len(workloads); n > 4 {
		llcCfg.MSHREntries = llcCfg.MSHREntries * n / 4
	}
	llcCfg.PromoteLatency = dramLat
	if cfg.DisablePromotion {
		llcCfg.PromoteLatency = 0
	}
	s.llc = cache.New(llcCfg, s.dramDev)

	oracle := core.Oracle(s.alloc.PageSizeOf)
	engines := make([]*core.Engine, len(workloads))

	// Walk scratch is per-simulation state, like the allocator: one arena
	// serves every core's walker.
	walkArena := mem.NewRequestArena(0)

	for i, w := range workloads {
		n := &coreNode{id: i, l1Kind: spec.L1}
		n.space = vm.NewAddressSpace(s.alloc, w.THP)
		l2Cfg := named(cfg.L2, i)
		l2Cfg.Replacement = cfg.Replacement
		l2Cfg.PromoteLatency = cfg.LLC.Latency + dramLat
		l1Cfg := named(cfg.L1D, i)
		l1Cfg.Replacement = cfg.Replacement
		l1Cfg.PromoteLatency = cfg.L2.Latency + cfg.LLC.Latency + dramLat
		if cfg.DisablePromotion {
			l2Cfg.PromoteLatency = 0
			l1Cfg.PromoteLatency = 0
		}
		n.l2 = cache.New(l2Cfg, s.llc)
		n.l1d = cache.New(l1Cfg, n.l2)
		n.l1i = cache.New(named(cfg.L1I, i), n.l2)
		// Instruction pages are always 4KB (Linux maps code with 4KB pages;
		// Section IV-A): the code address space never uses large pages.
		n.codeSpace = vm.NewAddressSpace(s.alloc, vm.FractionTHP{Frac: 0})
		n.llc = s.llc
		n.desc = cache.NewDescent(n.l1d, n.l2, s.llc)
		// The walker's references descend through the same fused chain as
		// demand accesses (they enter at the L1D, exactly as before).
		n.mmu = vm.NewMMU(n.space, cfg.MMU, i, n.desc)
		n.mmu.SetWalkArena(walkArena)
		n.reader = w.New(seed + uint64(i)*997)

		if spec.Base != "" && spec.Base != "none" {
			factory, err := factoryFor(spec.Base, spec.Variant)
			if err != nil {
				return nil, err
			}
			n.engine = core.New(factory, spec.Variant, n.l2, s.llc, oracle, i)
			// Virtual-side candidates (vamp) translate through the core's own
			// TLBs: resident pages issue, everything else is dropped — VA
			// prefetching must never force a page walk.
			n.engine.SetTranslator(residentTranslator(n.mmu))
			if cfg.PQDepth > 0 {
				n.engine.PQDepth = cfg.PQDepth
			}
			n.l2.SetObserver(n.engine)
			engines[i] = n.engine
		}
		if spec.L1 == L1IPCP || spec.L1 == L1IPCPPP {
			n.l1pf = ipcp.New(ipcp.DefaultConfig())
		}
		n.cpu = cpu.New(cfg.Core, n)
		s.nodes = append(s.nodes, n)
	}
	s.llc.SetObserver(&core.LLCFeedback{Engines: engines})
	return s, nil
}

// residentTranslator adapts an MMU's statistics-neutral TLB probe to the
// engine's Translator hook: virtual candidates resolve only against
// TLB-resident pages, so prefetch speculation never walks the page table.
func residentTranslator(m *vm.MMU) core.Translator {
	return func(v mem.Addr) (mem.Addr, mem.PageSize, bool) {
		tr, ok := m.ResidentTranslate(v)
		if !ok {
			return 0, 0, false
		}
		return tr.PAddr, tr.Size, true
	}
}

func named(c cache.Config, coreID int) cache.Config {
	if coreID > 0 {
		c.Name = c.Name + string(rune('0'+coreID))
	}
	return c
}

// Access implements cpu.MemSystem for one core: translate (TLB hierarchy and
// page walks through the caches), perform the demand access, and run the L1D
// prefetcher if configured.
func (n *coreNode) Access(pc, vaddr mem.Addr, write bool, at mem.Cycle) mem.Cycle {
	tr, ready := n.mmu.Translate(vaddr, at)
	typ := mem.Load
	if write {
		typ = mem.Store
	}
	req := n.demandPool.GetDirty()
	// PPM: the page size from the translation metadata accompanies the
	// request; on an L1D miss it is stored in the MSHR's extra bit and
	// travels to the L2 prefetcher.
	*req = mem.Request{
		PAddr:         tr.PAddr,
		VAddr:         vaddr,
		PC:            pc,
		Type:          typ,
		Core:          n.id,
		PageSize:      tr.Size,
		PageSizeKnown: true,
	}
	done := n.desc.Access(req, ready)
	n.l1Prefetch(pc, vaddr, at, tr)
	return done
}

// FetchInstr implements cpu.InstrFetcher: instruction blocks travel through
// the L1I into the shared L2. Instruction pages are 4KB, so the propagated
// page-size bit is always zero for this traffic — exactly the paper's
// implementation choice for L1I misses.
func (n *coreNode) FetchInstr(pc mem.Addr, at mem.Cycle) mem.Cycle {
	tr := n.codeSpace.Translate(pc)
	req := n.fetchPool.GetDirty()
	*req = mem.Request{
		PAddr:         tr.PAddr,
		VAddr:         pc,
		PC:            pc,
		Type:          mem.Fetch,
		Core:          n.id,
		PageSize:      mem.Page4K,
		PageSizeKnown: true,
	}
	return n.l1i.Access(req, at)
}

// l1Prefetch runs the configured first-level prefetcher on the access.
func (n *coreNode) l1Prefetch(pc, vaddr mem.Addr, at mem.Cycle, tr vm.Translation) {
	switch n.l1Kind {
	case L1None:
		return
	case L1NextLine:
		cand := mem.BlockAlign(vaddr) + mem.BlockSize
		if mem.SamePage(vaddr, cand, mem.Page4K) {
			n.issueL1(cand, vaddr, tr, at, pc)
		}
	case L1IPCP, L1IPCPPP:
		n.candBuf = n.l1pf.Operate(pc, vaddr, n.candBuf[:0])
		for _, c := range n.candBuf {
			if mem.SamePage(vaddr, c.VAddr, mem.Page4K) {
				n.issueL1(c.VAddr, vaddr, tr, at, pc)
				continue
			}
			// IPCP++ may cross the 4KB virtual boundary, but only when the
			// target page's translation is TLB-resident (Section VI-B5).
			if n.l1Kind == L1IPCPPP && n.mmu.Resident(c.VAddr) {
				n.issueL1(c.VAddr, vaddr, tr, at, pc)
			}
		}
	}
}

// issueL1 translates a virtual candidate without demand-populating mappings
// and injects the prefetch at the L1D.
func (n *coreNode) issueL1(cand, trigger mem.Addr, tr vm.Translation, at mem.Cycle, pc mem.Addr) {
	var paddr mem.Addr
	var size mem.PageSize
	if mem.SamePage(trigger, cand, tr.Size) {
		// Same page as the trigger: reuse its translation.
		paddr = mem.PageBase(tr.PAddr, tr.Size) + (cand & (tr.Size.Bytes() - 1))
		size = tr.Size
	} else {
		ct, ok := n.space.LookupOnly(cand)
		if !ok {
			return // prefetching must never create mappings
		}
		paddr, size = ct.PAddr, ct.Size
	}
	req := n.l1pfPool.GetDirty()
	*req = mem.Request{
		PAddr:         mem.BlockAlign(paddr),
		VAddr:         cand,
		PC:            pc,
		Type:          mem.Prefetch,
		Core:          n.id,
		PageSize:      size,
		PageSizeKnown: true,
		FillL2:        true,
	}
	n.l1d.Access(req, at)
}
