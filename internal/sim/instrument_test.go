package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func instrumentedRun(t *testing.T, ins *Instrumentation, spec PrefSpec, name string, opt RunOpt) Result {
	t.Helper()
	w := mustWorkload(t, name)
	r, err := RunContext(WithInstrumentation(context.Background(), ins), DefaultConfig(), spec, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestInstrumentedMatchesPlain pins the central telemetry contract: attaching
// a collector and tracer — with an epoch length deliberately misaligned with
// the Frac2M sampling chunks — must not change a single bit of the result.
// This is what lets telemetry ride along without invalidating cached results.
func TestInstrumentedMatchesPlain(t *testing.T) {
	spec := PrefSpec{Base: "spp", Variant: core.PSASD}
	plain := mustRun(t, spec, "libquantum")

	ins := &Instrumentation{
		Collector:         telemetry.NewCollector(),
		Tracer:            telemetry.NewTracer(0),
		EpochInstructions: 7777, // misaligned with the 100K sample chunks
	}
	instr := instrumentedRun(t, ins, spec, "libquantum", testOpt)
	if !reflect.DeepEqual(plain, instr) {
		t.Errorf("instrumented run diverged from plain run:\nplain %+v\ninstr %+v", plain, instr)
	}
	if len(ins.Collector.Epochs()) == 0 {
		t.Fatal("collector recorded no epochs")
	}
	if ins.Tracer.Total() == 0 {
		t.Fatal("tracer recorded no lifecycle events")
	}
}

// telemetrySchema is the golden probe set of a single-core instrumented run
// with a prefetch engine attached. Extending the probe set is fine — update
// the list — but renaming or dropping a metric breaks downstream consumers
// (plots, psimd dashboards) and must be deliberate.
var telemetrySchema = []string{
	"dram_busy_banks", "dram_reads", "dram_row_hit_rate", "dram_row_hits",
	"dram_row_misses", "dram_writes", "frac_2m", "ipc",
	"l1d_accuracy", "l1d_coverage", "l1d_demand_hits", "l1d_demand_misses",
	"l1d_hit_ratio", "l1d_mpki", "l1d_mshr_busy", "l1d_pf_dropped",
	"l1d_pf_issued", "l1d_pf_late", "l1d_pf_unused", "l1d_pf_useful",
	"l2_accuracy", "l2_coverage", "l2_demand_hits", "l2_demand_misses",
	"l2_hit_ratio", "l2_mpki", "l2_mshr_busy", "l2_pf_dropped",
	"l2_pf_issued", "l2_pf_late", "l2_pf_unused", "l2_pf_useful",
	"llc_accuracy", "llc_coverage", "llc_demand_hits", "llc_demand_misses",
	"llc_hit_ratio", "llc_mpki", "llc_mshr_busy", "llc_pf_dropped",
	"llc_pf_issued", "llc_pf_late", "llc_pf_unused", "llc_pf_useful",
	"pf_cross4k", "pf_cross4k_rate", "pf_discarded_boundary", "pf_issued",
	"pf_proposed", "pf_queue_dropped", "ppm_2m", "ppm_4k",
	"psasd_psel", "psasd_winner",
	"rob_occupancy",
	"tlb_hits_2m", "tlb_hits_4k",
	"tlb_l1_hits", "tlb_l1_misses", "tlb_l2_hits", "tlb_l2_misses",
	"walks", "walks_2m", "walks_4k",
}

// TestTelemetrySchemaGolden pins the emitted schema: every epoch carries
// exactly the golden metric set, and the JSONL export parses back with the
// headline series (IPC, L2 MPKI, accuracy/coverage, cross-4KB count, PSA-SD
// winner) present and sane.
func TestTelemetrySchemaGolden(t *testing.T) {
	ins := &Instrumentation{Collector: telemetry.NewCollector(), EpochInstructions: 100_000}
	instrumentedRun(t, ins, PrefSpec{Base: "spp", Variant: core.PSASD}, "libquantum", testOpt)

	epochs := ins.Collector.Epochs()
	if len(epochs) != 4 {
		t.Fatalf("epochs = %d, want 4 (400K instructions / 100K epoch)", len(epochs))
	}
	var total uint64
	for _, ep := range epochs {
		total += ep.Instructions
		var names []string
		for n := range ep.Metrics {
			names = append(names, n)
		}
		sort.Strings(names)
		if !reflect.DeepEqual(names, telemetrySchema) {
			t.Fatalf("epoch %d schema drifted:\ngot  %v\nwant %v", ep.Index, names, telemetrySchema)
		}
	}
	if total != testOpt.Instructions {
		t.Errorf("epoch instructions sum = %d, want %d", total, testOpt.Instructions)
	}

	var buf bytes.Buffer
	if err := ins.Collector.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	for i := 0; i < 4; i++ {
		var ep telemetry.Epoch
		if err := dec.Decode(&ep); err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		if ep.Metrics["ipc"] <= 0 || ep.Metrics["ipc"] > 4 {
			t.Errorf("epoch %d ipc = %v", i, ep.Metrics["ipc"])
		}
		if acc := ep.Metrics["l2_accuracy"]; acc < 0 || acc > 1 {
			t.Errorf("epoch %d l2_accuracy = %v", i, acc)
		}
		if cov := ep.Metrics["l2_coverage"]; cov < 0 || cov > 1 {
			t.Errorf("epoch %d l2_coverage = %v", i, cov)
		}
		if w := ep.Metrics["psasd_winner"]; w != 0 && w != 1 {
			t.Errorf("epoch %d psasd_winner = %v", i, w)
		}
	}
	// libquantum is 2MB-heavy under PSA-SD: page-crossing prefetches must
	// actually appear in the series.
	var crossed float64
	for _, ep := range epochs {
		crossed += ep.Metrics["pf_cross4k"]
	}
	if crossed == 0 {
		t.Error("no cross-4KB prefetches recorded on a 2MB-heavy workload")
	}
}

// TestTracerAttribution checks the lifecycle stream carries the page-size and
// boundary-crossing attribution end to end through a real run.
func TestTracerAttribution(t *testing.T) {
	ins := &Instrumentation{Tracer: telemetry.NewTracer(0)}
	instrumentedRun(t, ins, PrefSpec{Base: "spp", Variant: core.PSA}, "libquantum", testOpt)

	events := ins.Tracer.Events()
	if len(events) == 0 {
		t.Fatal("no events")
	}
	kinds := map[telemetry.EventKind]int{}
	var crossed, sized2m int
	for _, e := range events {
		kinds[e.Kind]++
		if e.CrossedPage {
			crossed++
		}
		if e.PageSize == "2MB" {
			sized2m++
		}
		if e.Kind == telemetry.EvFill && e.At < e.Issue {
			t.Fatalf("fill completes before issue: %+v", e)
		}
	}
	if kinds[telemetry.EvFill] == 0 || kinds[telemetry.EvUse] == 0 {
		t.Errorf("event kinds = %v, want fills and uses", kinds)
	}
	if crossed == 0 {
		t.Error("no boundary-crossing events under PSA on a 2MB-heavy workload")
	}
	if sized2m == 0 {
		t.Error("no 2MB-attributed events on a 2MB-heavy workload")
	}
}

func TestInstrumentationContextCarrier(t *testing.T) {
	if got := InstrumentationFrom(context.Background()); got != nil {
		t.Errorf("empty context yielded %+v", got)
	}
	ins := &Instrumentation{}
	if got := InstrumentationFrom(WithInstrumentation(context.Background(), ins)); got != ins {
		t.Error("instrumentation did not round-trip through the context")
	}
	if ctx := context.Background(); WithInstrumentation(ctx, nil) != ctx {
		t.Error("nil instrumentation should not wrap the context")
	}
}

// BenchmarkTelemetryOverhead guards the cost of instrumentation: the enabled
// run (collector + tracer, default epoch) must stay within a few percent of
// the disabled run, and the disabled path must not allocate on the hot path.
// CI runs it with -benchtime 1x as a smoke guard; run locally with real
// benchtime to measure the overhead ratio.
func BenchmarkTelemetryOverhead(b *testing.B) {
	w, err := trace.ByName("libquantum")
	if err != nil {
		b.Fatal(err)
	}
	opt := RunOpt{Warmup: 20_000, Instructions: 200_000, Seed: 1, Samples: 1}
	spec := PrefSpec{Base: "spp", Variant: core.PSASD}

	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(DefaultConfig(), spec, w, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ins := &Instrumentation{
				Collector: telemetry.NewCollector(),
				Tracer:    telemetry.NewTracer(0),
			}
			ctx := WithInstrumentation(context.Background(), ins)
			if _, err := RunContext(ctx, DefaultConfig(), spec, w, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
