package sim

import (
	"context"

	"repro/internal/cache"
	"repro/internal/telemetry"
)

// Instrumentation bundles the optional observability hooks for one run: a
// metric collector sampled at epoch boundaries and a prefetch-lifecycle
// tracer. Both are strictly observational — an instrumented run retires the
// same instructions in the same cycles as a plain one (pinned by
// TestInstrumentedMatchesPlain) — so telemetry never invalidates cached
// results; it only rides along.
type Instrumentation struct {
	Collector *telemetry.Collector
	Tracer    *telemetry.Tracer
	// EpochInstructions is the sampling period in retired instructions;
	// DefaultEpochInstructions when zero and a Collector is set.
	EpochInstructions uint64
}

// DefaultEpochInstructions is the default telemetry sampling period.
const DefaultEpochInstructions = 100_000

type insKey struct{}

// WithInstrumentation returns a context carrying ins. The context is the
// carrier because runs are dispatched through layers that must not know about
// telemetry (the result cache, the service's simFn): RunContext picks the
// instrumentation up on the far side without any signature change.
func WithInstrumentation(ctx context.Context, ins *Instrumentation) context.Context {
	if ins == nil {
		return ctx
	}
	return context.WithValue(ctx, insKey{}, ins)
}

// InstrumentationFrom returns the instrumentation carried by ctx, or nil.
func InstrumentationFrom(ctx context.Context) *Instrumentation {
	ins, _ := ctx.Value(insKey{}).(*Instrumentation)
	return ins
}

// enabled reports whether any hook is present.
func (ins *Instrumentation) enabled() bool {
	return ins != nil && (ins.Collector != nil || ins.Tracer != nil)
}

// epochLen returns the epoch period in instructions, or 0 when no collector
// is attached (the run loop then never closes epochs).
func (ins *Instrumentation) epochLen() uint64 {
	if ins == nil || ins.Collector == nil {
		return 0
	}
	if ins.EpochInstructions > 0 {
		return ins.EpochInstructions
	}
	return DefaultEpochInstructions
}

// traceObserver adapts a telemetry.Tracer as a cache lifecycle observer.
type traceObserver struct {
	tr *telemetry.Tracer
}

// OnPrefetchLifecycle implements cache.LifecycleObserver.
func (o *traceObserver) OnPrefetchLifecycle(level string, ev cache.LifecycleEvent) {
	e := telemetry.Event{
		Level:  level,
		Block:  uint64(ev.Block),
		At:     int64(ev.At),
		Late:   ev.Late,
		PrefID: ev.PrefID,
		Core:   ev.Core,
	}
	if ev.Req != nil {
		e.PC = uint64(ev.Req.PC)
		if ev.Req.PageSizeKnown {
			e.PageSize = ev.Req.PageSize.String()
		}
		e.CrossedPage = ev.Req.CrossedPage
	}
	switch ev.Kind {
	case cache.LifeFill:
		e.Kind = telemetry.EvFill
		e.Issue = int64(ev.At)
		e.At = int64(ev.Done)
	case cache.LifeUse:
		e.Kind = telemetry.EvUse
	case cache.LifeEvict:
		e.Kind = telemetry.EvEvict
	case cache.LifeDrop:
		e.Kind = telemetry.EvDrop
	}
	o.tr.Record(e)
}

// attach wires the instrumentation into an assembled system. The tracer
// becomes each cache's lifecycle sink — a dedicated hook off the per-access
// observer path, so the prefetch engine's feedback chain is untouched and
// demand accesses pay nothing. The collector registers probes over the
// system's counters; counter probes baseline at registration, so attaching
// after warm-up keeps warm-up counts out of the first epoch.
func (ins *Instrumentation) attach(sys *system) {
	if !ins.enabled() {
		return
	}
	if ins.Tracer != nil {
		obs := &traceObserver{tr: ins.Tracer}
		for _, n := range sys.nodes {
			n.l1d.SetLifecycleObserver(obs)
			n.l2.SetLifecycleObserver(obs)
		}
		sys.llc.SetLifecycleObserver(obs)
	}
	if ins.Collector != nil {
		ins.registerProbes(sys)
	}
}

// registerProbes installs the standard probe set over a single-core system
// (node 0): per-level cache counters and derived ratios, prefetch-engine
// counters with page-size attribution, TLB and page-walk traffic by page
// size, DRAM traffic and row-buffer behaviour, and occupancy gauges.
func (ins *Instrumentation) registerProbes(sys *system) {
	c := ins.Collector
	n := sys.nodes[0]

	cacheProbes(c, "l1d", n.l1d, n)
	cacheProbes(c, "l2", n.l2, n)
	cacheProbes(c, "llc", sys.llc, n)

	// Prefetch engine (absent for spec "none").
	if e := n.engine; e != nil {
		c.AddCounter("pf_proposed", func() uint64 { return e.Stats.Proposed })
		c.AddCounter("pf_issued", func() uint64 { return e.Stats.Issued })
		c.AddCounter("pf_cross4k", func() uint64 { return e.Stats.CrossedPage4K })
		c.AddCounter("pf_discarded_boundary", func() uint64 { return e.Stats.DiscardedBoundary })
		c.AddCounter("pf_queue_dropped", func() uint64 { return e.Stats.QueueDropped })
		c.AddCounter("ppm_4k", func() uint64 { return e.Stats.PPM4K })
		c.AddCounter("ppm_2m", func() uint64 { return e.Stats.PPM2M })
		c.AddDerived("pf_cross4k_rate", func(lk telemetry.Lookup) float64 {
			return ratio(lk("pf_cross4k"), lk("pf_issued"))
		})
		c.AddGauge("psasd_psel", func() float64 { return float64(e.Csel()) })
		c.AddGauge("psasd_winner", func() float64 {
			if e.PrefersB() {
				return 1
			}
			return 0
		})
	}

	// TLB hierarchy and page walks, by page size where the paper cares.
	l1tlb, l2tlb := n.mmu.L1(), n.mmu.L2()
	c.AddCounter("tlb_l1_hits", func() uint64 { return l1tlb.Hits })
	c.AddCounter("tlb_l1_misses", func() uint64 { return l1tlb.Misses })
	c.AddCounter("tlb_l2_hits", func() uint64 { return l2tlb.Hits })
	c.AddCounter("tlb_l2_misses", func() uint64 { return l2tlb.Misses })
	c.AddCounter("tlb_hits_4k", func() uint64 {
		return l1tlb.HitsBy[0] + l2tlb.HitsBy[0]
	})
	c.AddCounter("tlb_hits_2m", func() uint64 {
		return l1tlb.HitsBy[1] + l2tlb.HitsBy[1]
	})
	c.AddCounter("walks", func() uint64 { return n.mmu.Walks })
	c.AddCounter("walks_4k", func() uint64 { return n.mmu.WalksBy[0] })
	c.AddCounter("walks_2m", func() uint64 { return n.mmu.WalksBy[1] })

	// DRAM.
	d := sys.dramDev
	c.AddCounter("dram_reads", func() uint64 { return d.Stats.Reads })
	c.AddCounter("dram_writes", func() uint64 { return d.Stats.Writes })
	c.AddCounter("dram_row_hits", func() uint64 { return d.Stats.RowHits })
	c.AddCounter("dram_row_misses", func() uint64 { return d.Stats.RowMisses })
	c.AddDerived("dram_row_hit_rate", func(lk telemetry.Lookup) float64 {
		return ratio(lk("dram_row_hits"), lk("dram_row_hits")+lk("dram_row_misses"))
	})

	// Core and allocator gauges plus the headline derived series.
	c.AddGauge("rob_occupancy", func() float64 { return float64(n.cpu.ROBOccupancy()) })
	c.AddGauge("dram_busy_banks", func() float64 {
		return float64(d.BusyBanks(n.cpu.Cycle))
	})
	c.AddGauge("frac_2m", func() float64 { return sys.alloc.Frac2M() })
	c.AddDerived("ipc", func(lk telemetry.Lookup) float64 {
		return ratio(lk("instructions"), lk("cycles"))
	})
}

// cacheProbes registers one cache level's counters, gauges, and derived
// ratios under the given prefix.
func cacheProbes(c *telemetry.Collector, prefix string, cc *cache.Cache, n *coreNode) {
	c.AddCounter(prefix+"_demand_hits", func() uint64 { return cc.Stats.DemandHits })
	c.AddCounter(prefix+"_demand_misses", func() uint64 { return cc.Stats.DemandMisses })
	c.AddCounter(prefix+"_pf_issued", func() uint64 { return cc.Stats.PrefetchIssued })
	c.AddCounter(prefix+"_pf_useful", func() uint64 { return cc.Stats.PrefetchUseful })
	c.AddCounter(prefix+"_pf_late", func() uint64 { return cc.Stats.PrefetchLate })
	c.AddCounter(prefix+"_pf_unused", func() uint64 { return cc.Stats.PrefetchUnused })
	c.AddCounter(prefix+"_pf_dropped", func() uint64 { return cc.Stats.PrefetchDropped })
	c.AddGauge(prefix+"_mshr_busy", func() float64 {
		return float64(cc.MSHRBusy(n.cpu.Cycle))
	})
	c.AddDerived(prefix+"_mpki", func(lk telemetry.Lookup) float64 {
		instr := lk("instructions")
		if instr == 0 {
			return 0
		}
		return lk(prefix+"_demand_misses") / instr * 1000
	})
	c.AddDerived(prefix+"_hit_ratio", func(lk telemetry.Lookup) float64 {
		h := lk(prefix + "_demand_hits")
		return ratio(h, h+lk(prefix+"_demand_misses"))
	})
	// Accuracy counts late prefetches as useful (cache.Stats.Accuracy);
	// coverage credits fully hidden misses only (cache.Stats.Coverage).
	c.AddDerived(prefix+"_accuracy", func(lk telemetry.Lookup) float64 {
		good := lk(prefix+"_pf_useful") + lk(prefix+"_pf_late")
		return ratio(good, good+lk(prefix+"_pf_unused"))
	})
	c.AddDerived(prefix+"_coverage", func(lk telemetry.Lookup) float64 {
		u := lk(prefix + "_pf_useful")
		return ratio(u, u+lk(prefix+"_demand_misses"))
	})
}

// ratio returns num/den with 0/0 = 0.
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
