package sim

import (
	"context"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/trace"
)

// RunOpt controls a run's length.
type RunOpt struct {
	Warmup       uint64 // instructions to warm structures (stats then reset)
	Instructions uint64 // measured instructions
	Seed         uint64
	Samples      int // Frac2M samples taken across the measured window (Fig. 3)
}

// DefaultRunOpt returns a laptop-scale default: 250K warmup, 1M measured.
// The paper uses 250M+250M on ChampSim; the shape-level results reproduce at
// this scale because the footprints dwarf the caches either way.
func DefaultRunOpt() RunOpt {
	return RunOpt{Warmup: 250_000, Instructions: 1_000_000, Seed: 1, Samples: 16}
}

// Result carries everything the experiments derive their figures from.
type Result struct {
	Workload string
	Spec     string

	Instructions uint64
	Cycles       mem.Cycle
	IPC          float64

	L1D, L2, LLC cache.Stats
	Engine       core.Stats
	DRAM         dram.Stats

	TLBL1Hits, TLBL1Misses uint64
	TLBL2Hits, TLBL2Misses uint64
	Walks                  uint64

	// Frac2MOverTime samples the fraction of mapped memory backed by 2MB
	// pages across the run (Figure 3); Frac2MFinal is the last sample.
	Frac2MOverTime []float64
	Frac2MFinal    float64
}

// Run simulates one workload on a single-core machine with the given
// prefetching spec.
func Run(cfg Config, spec PrefSpec, w trace.Workload, opt RunOpt) (Result, error) {
	return RunContext(context.Background(), cfg, spec, w, opt)
}

// RunContext is Run with cancellation: the context is checked at every
// sampling boundary (opt.Instructions/opt.Samples retired instructions), so a
// canceled run stops within one chunk and returns ctx.Err(). Results of
// canceled runs are partial and must not be cached.
//
// The context may also carry an *Instrumentation (WithInstrumentation): the
// run then additionally stops at every telemetry epoch boundary to sample the
// collector's probes. Execution is chunk-invariant (the CPU model carries
// in-flight state across Run calls), so instrumented and plain runs produce
// identical results.
func RunContext(ctx context.Context, cfg Config, spec PrefSpec, w trace.Workload, opt RunOpt) (Result, error) {
	sys, err := newSystem(cfg, spec, []trace.Workload{w}, opt.Seed)
	if err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	n := sys.nodes[0]

	if opt.Warmup > 0 {
		n.cpu.Run(n.reader, opt.Warmup)
	}
	resetStats(sys)
	ins := InstrumentationFrom(ctx)
	ins.attach(sys)
	instrStart, cycleStart := n.cpu.Instructions, n.cpu.Cycle

	samples := opt.Samples
	if samples <= 0 {
		samples = 1
	}
	res := Result{Workload: w.Name, Spec: spec.String()}
	if opt.Instructions > 0 {
		// Preallocated only when the loop will sample: a zero-length run must
		// keep the nil slice (JSON null) it always produced.
		res.Frac2MOverTime = make([]float64, 0, samples+1)
	}
	chunk := opt.Instructions / uint64(samples)
	if chunk == 0 {
		chunk = opt.Instructions
	}
	epoch := ins.epochLen()

	// The loop advances to the nearest of the next Frac2M sample point and the
	// next telemetry epoch boundary. Frac2M samples land exactly where the
	// uninstrumented loop put them (every `chunk` retired instructions and at
	// the drain point), so the series is invariant under instrumentation.
	var run, lastEpochClose uint64
	nextSample := minU64(chunk, opt.Instructions)
	nextEpoch := uint64(0)
	if epoch > 0 {
		nextEpoch = minU64(epoch, opt.Instructions)
	}
	for run < opt.Instructions {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		target := nextSample
		if epoch > 0 && nextEpoch < target {
			target = nextEpoch
		}
		got := n.cpu.Run(n.reader, target-run)
		run += got
		drained := run < target
		if run == nextSample || drained {
			res.Frac2MOverTime = append(res.Frac2MOverTime, sys.alloc.Frac2M())
			nextSample = minU64(nextSample+chunk, opt.Instructions)
		}
		if epoch > 0 && (run == nextEpoch || (drained && run > lastEpochClose)) {
			ins.Collector.EndEpoch(n.cpu.Instructions-instrStart, uint64(n.cpu.Cycle-cycleStart))
			lastEpochClose = run
			nextEpoch = minU64(nextEpoch+epoch, opt.Instructions)
		}
		if drained {
			break // trace drained
		}
	}

	res.Instructions = n.cpu.Instructions - instrStart
	res.Cycles = n.cpu.Cycle - cycleStart
	if res.Cycles > 0 {
		res.IPC = float64(res.Instructions) / float64(res.Cycles)
	}
	res.L1D = n.l1d.Stats
	res.L2 = n.l2.Stats
	res.LLC = sys.llc.Stats
	if n.engine != nil {
		res.Engine = n.engine.Stats
	}
	res.DRAM = sys.dramDev.Stats
	res.TLBL1Hits, res.TLBL1Misses = n.mmu.L1().Hits, n.mmu.L1().Misses
	res.TLBL2Hits, res.TLBL2Misses = n.mmu.L2().Hits, n.mmu.L2().Misses
	res.Walks = n.mmu.Walks
	if len(res.Frac2MOverTime) > 0 {
		res.Frac2MFinal = res.Frac2MOverTime[len(res.Frac2MOverTime)-1]
	}
	return res, nil
}

// resetStats zeroes the measurable counters after warmup, keeping all
// microarchitectural state warm.
func resetStats(sys *system) {
	sys.llc.Stats = cache.Stats{}
	sys.dramDev.Stats = dram.Stats{}
	for _, n := range sys.nodes {
		n.l1d.Stats = cache.Stats{}
		n.l2.Stats = cache.Stats{}
		if n.engine != nil {
			n.engine.Stats = core.Stats{}
		}
		n.mmu.L1().Hits, n.mmu.L1().Misses = 0, 0
		n.mmu.L2().Hits, n.mmu.L2().Misses = 0, 0
		n.mmu.L1().HitsBy = [mem.NumPageSizes]uint64{}
		n.mmu.L2().HitsBy = [mem.NumPageSizes]uint64{}
		n.mmu.Walks, n.mmu.WalkRefs = 0, 0
		n.mmu.WalksBy = [mem.NumPageSizes]uint64{}
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// MultiResult is the outcome of a multi-core mix run.
type MultiResult struct {
	Workloads []string
	// IPC per core over the measured window.
	IPC []float64
	// DRAM aggregates the shared memory system's traffic over the window.
	DRAM dram.Stats
}

// RunMulti simulates a mix of workloads, one per core, over a shared LLC and
// DRAM, following the standard multi-core methodology: all cores advance in
// shared-time epochs; a core that reaches its warm-up or measurement
// instruction count KEEPS RUNNING so the contention others see never drops;
// each core's IPC is measured over its own first `Instructions` retired after
// the shared warm-up boundary.
func RunMulti(cfg Config, spec PrefSpec, mix []trace.Workload, opt RunOpt) (MultiResult, error) {
	return RunMultiContext(context.Background(), cfg, spec, mix, opt)
}

// RunMultiContext is RunMulti with cancellation, checked at every shared-time
// epoch boundary (a few thousand cycles), so canceled mixes stop promptly.
func RunMultiContext(ctx context.Context, cfg Config, spec PrefSpec, mix []trace.Workload, opt RunOpt) (MultiResult, error) {
	cfg.PhysBytes = maxAddr(cfg.PhysBytes, mem.Addr(len(mix))*(8<<30)/2)
	sys, err := newSystem(cfg, spec, mix, opt.Seed)
	if err != nil {
		return MultiResult{}, err
	}

	const epochCycles = 2000
	n := len(sys.nodes)
	drained := make([]bool, n)

	// runEpochs advances every core (drained ones excepted) in lock-step
	// epochs until stop() is true, checked at epoch boundaries.
	runEpochs := func(stop func() bool, onEpoch func()) {
		for ctx.Err() == nil && !stop() {
			var minCycle mem.Cycle = 1 << 62
			active := false
			for i, node := range sys.nodes {
				if drained[i] {
					continue
				}
				active = true
				if node.cpu.Cycle < minCycle {
					minCycle = node.cpu.Cycle
				}
			}
			if !active {
				return
			}
			epochEnd := minCycle + epochCycles
			for i, node := range sys.nodes {
				if drained[i] || node.cpu.Cycle >= epochEnd {
					continue
				}
				before := node.cpu.Instructions
				node.cpu.RunUntil(node.reader, 1<<60, epochEnd)
				if node.cpu.Instructions == before && node.cpu.Cycle < epochEnd {
					drained[i] = true
				}
			}
			if onEpoch != nil {
				onEpoch()
			}
		}
	}

	// Warm-up: until every core has retired opt.Warmup instructions.
	if opt.Warmup > 0 {
		runEpochs(func() bool {
			for i, node := range sys.nodes {
				if !drained[i] && node.cpu.Instructions < opt.Warmup {
					return false
				}
			}
			return true
		}, nil)
	}
	resetStats(sys)

	starts := make([]uint64, n)
	cycleStart := make([]mem.Cycle, n)
	doneCycle := make([]mem.Cycle, n)
	measured := make([]bool, n)
	for i, node := range sys.nodes {
		starts[i] = node.cpu.Instructions
		cycleStart[i] = node.cpu.Cycle
	}
	record := func() {
		for i, node := range sys.nodes {
			if !measured[i] && (drained[i] || node.cpu.Instructions >= starts[i]+opt.Instructions) {
				measured[i] = true
				doneCycle[i] = node.cpu.Cycle
			}
		}
	}
	runEpochs(func() bool {
		record()
		for i := range sys.nodes {
			if !measured[i] {
				return false
			}
		}
		return true
	}, record)
	record()
	if err := ctx.Err(); err != nil {
		return MultiResult{}, err
	}

	res := MultiResult{DRAM: sys.dramDev.Stats}
	for i, node := range sys.nodes {
		res.Workloads = append(res.Workloads, mix[i].Name)
		instr := node.cpu.Instructions - starts[i]
		if instr > opt.Instructions {
			instr = opt.Instructions
		}
		cyc := doneCycle[i] - cycleStart[i]
		ipc := 0.0
		if cyc > 0 {
			ipc = float64(instr) / float64(cyc)
		}
		res.IPC = append(res.IPC, ipc)
	}
	return res, nil
}

func maxAddr(a, b mem.Addr) mem.Addr {
	if a > b {
		return a
	}
	return b
}
