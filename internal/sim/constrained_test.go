package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// These tests pin the directional behaviour behind Figure 12's constrained
// evaluation: performance must respond in the physically sensible direction
// to MSHR capacity, LLC size, and DRAM bandwidth, and the page-size-aware
// gains must survive at the constrained points.

func runWith(t *testing.T, cfg Config, spec PrefSpec, name string) Result {
	t.Helper()
	w, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(cfg, spec, w, RunOpt{Warmup: 80_000, Instructions: 300_000, Seed: 1, Samples: 1})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDRAMBandwidthDirection(t *testing.T) {
	slow := DefaultConfig()
	slow.DRAM.TransferMTps = 400
	fast := DefaultConfig()
	fast.DRAM.TransferMTps = 6400
	spec := PrefSpec{Base: "none"}
	a := runWith(t, slow, spec, "libquantum")
	b := runWith(t, fast, spec, "libquantum")
	if a.IPC >= b.IPC {
		t.Errorf("400MT/s IPC %.3f not below 6400MT/s %.3f", a.IPC, b.IPC)
	}
}

func TestLLCSizeDirection(t *testing.T) {
	small := DefaultConfig()
	small.LLC.Sets = 256 << 10 / (64 * small.LLC.Ways)
	big := DefaultConfig()
	spec := PrefSpec{Base: "none"}
	// A gather with LLC-scale reuse benefits from the larger LLC.
	a := runWith(t, small, spec, "sphinx3")
	b := runWith(t, big, spec, "sphinx3")
	if a.IPC > b.IPC*1.02 {
		t.Errorf("256KB LLC IPC %.3f above 2MB LLC %.3f", a.IPC, b.IPC)
	}
}

func TestL2MSHRDirection(t *testing.T) {
	small := DefaultConfig()
	small.L2.MSHREntries = 8
	big := DefaultConfig()
	big.L2.MSHREntries = 128
	spec := PrefSpec{Base: "spp", Variant: core.PSA}
	a := runWith(t, small, spec, "bwaves")
	b := runWith(t, big, spec, "bwaves")
	if a.IPC > b.IPC*1.02 {
		t.Errorf("8-entry L2 MSHR IPC %.3f above 128-entry %.3f", a.IPC, b.IPC)
	}
}

func TestPSAGainSurvivesConstrainedMSHR(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2.MSHREntries = 8
	orig := runWith(t, cfg, PrefSpec{Base: "spp", Variant: core.Original}, "libquantum")
	psa := runWith(t, cfg, PrefSpec{Base: "spp", Variant: core.PSA}, "libquantum")
	// An 8-entry MSHR starves prefetching almost entirely (tens of thousands
	// of drops), so both variants converge to the no-prefetch baseline; PSA
	// must at least stay within noise of the original.
	if psa.IPC < orig.IPC*0.95 {
		t.Errorf("PSA (%.3f) collapsed below original (%.3f) with an 8-entry L2 MSHR", psa.IPC, orig.IPC)
	}
}

func TestPSAGainSurvivesLowBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DRAM.TransferMTps = 800
	orig := runWith(t, cfg, PrefSpec{Base: "spp", Variant: core.Original}, "bwaves")
	psa := runWith(t, cfg, PrefSpec{Base: "spp", Variant: core.PSA}, "bwaves")
	if psa.IPC < orig.IPC*0.99 {
		t.Errorf("PSA (%.3f) below original (%.3f) at 800MT/s", psa.IPC, orig.IPC)
	}
}

func TestEightCoreContention(t *testing.T) {
	// 8 cores over one DRAM should degrade per-core IPC vs 4 cores (the
	// bandwidth argument behind Figure 15's lower speedups).
	var mix4, mix8 []trace.Workload
	for i := 0; i < 8; i++ {
		w, err := trace.ByName("libquantum")
		if err != nil {
			t.Fatal(err)
		}
		if i < 4 {
			mix4 = append(mix4, w)
		}
		mix8 = append(mix8, w)
	}
	opt := RunOpt{Warmup: 30_000, Instructions: 100_000, Seed: 1}
	r4, err := RunMulti(DefaultConfig(), PrefSpec{Base: "none"}, mix4, opt)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunMulti(DefaultConfig(), PrefSpec{Base: "none"}, mix8, opt)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if avg(r8.IPC) >= avg(r4.IPC) {
		t.Errorf("8-core per-core IPC %.3f not below 4-core %.3f (same DRAM)", avg(r8.IPC), avg(r4.IPC))
	}
}
