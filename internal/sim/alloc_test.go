package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// TestSteadyStateZeroAllocs drives a fully assembled system past warmup and
// asserts the per-access hot path — demand descent, TLB/page walks, prefetch
// engine, MSHRs, DRAM — allocates nothing in steady state, under both the
// fused descent and the legacy port-dispatch chain. Construction and
// first-touch page mapping amortize to zero; any per-access allocation (a
// leaked request, a growing table, a closure in the issue path) shows up as a
// nonzero rate.
func TestSteadyStateZeroAllocs(t *testing.T) {
	rows := []struct {
		workload string
		spec     PrefSpec
	}{
		{"milc", PrefSpec{Base: "spp", Variant: core.PSA2MB}},
		{"mcf", PrefSpec{Base: "ppf", Variant: core.PSA}},
	}
	for _, fused := range []bool{true, false} {
		mem.FusedPath = fused
		for _, row := range rows {
			w, err := trace.ByName(row.workload)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := newSystem(DefaultConfig(), row.spec, []trace.Workload{w}, 1)
			if err != nil {
				t.Fatal(err)
			}
			n := sys.nodes[0]
			reader := n.reader
			n.cpu.Run(reader, 150_000) // warm tables, TLBs, and touched pages
			const chunk = 10_000
			avg := testing.AllocsPerRun(20, func() {
				n.cpu.Run(reader, chunk)
			})
			// A fresh page still faults in occasionally after warmup (the
			// trace keeps expanding its footprint); allow a whisper of
			// mapping growth but nothing per-access.
			if perInstr := avg / chunk; perInstr > 0.0005 {
				t.Errorf("fused=%v %s/%s: steady state allocates %.1f allocs per %d instructions",
					fused, row.workload, row.spec.String(), avg, chunk)
			}
		}
	}
	mem.FusedPath = true
}
