// Package sim assembles the full simulated system — cores, TLBs, page
// tables, the three-level cache hierarchy, prefetch engines, and DRAM — and
// drives single-core and multi-core runs, producing the metrics the
// experiment harness aggregates into the paper's figures.
package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/prefetch/ampm"
	"repro/internal/prefetch/bop"
	"repro/internal/prefetch/nextline"
	"repro/internal/prefetch/pangloss"
	"repro/internal/prefetch/ppf"
	"repro/internal/prefetch/sms"
	"repro/internal/prefetch/spp"
	"repro/internal/prefetch/temporal"
	"repro/internal/prefetch/vamp"
	"repro/internal/prefetch/vldp"
	"repro/internal/vm"
)

// Config describes the simulated machine (Table I).
type Config struct {
	Core      cpu.Config
	L1I       cache.Config
	L1D       cache.Config
	L2        cache.Config
	LLC       cache.Config // per-core capacity; multi-core runs scale the sets
	MMU       vm.MMUConfig
	DRAM      dram.Config
	PhysBytes mem.Addr

	// PQDepth overrides the prefetch-queue backlog bound in cycles (the
	// engine's default when zero). Ablation knob.
	PQDepth mem.Cycle
	// DisablePromotion turns off prefetch-to-demand MSHR promotion.
	// Ablation knob.
	DisablePromotion bool
	// Replacement selects the cache replacement policy at every level
	// (LRU per Table I when zero). The page-size machinery is
	// replacement-agnostic.
	Replacement cache.ReplPolicy
}

// DefaultConfig mirrors Table I: 4GHz 4-wide core with a 352-entry ROB,
// 48KB/12-way L1D (5 cycles, 16 MSHRs), 512KB/8-way L2 (10 cycles, 32
// MSHRs), 2MB/16-way LLC per core (20 cycles, 64 MSHRs), 64-entry L1 DTLB,
// 1536-entry L2 TLB, 3200MT/s DRAM, 8GB physical memory.
func DefaultConfig() Config {
	return Config{
		Core: cpu.DefaultConfig(),
		L1I: cache.Config{
			Name: "L1I", Sets: 32 << 10 / (64 * 8), Ways: 8,
			Latency: 4, MSHREntries: 8,
		},
		L1D: cache.Config{
			Name: "L1D", Sets: 48 << 10 / (64 * 12), Ways: 12,
			Latency: 5, MSHREntries: 16,
		},
		L2: cache.Config{
			Name: "L2C", Sets: 512 << 10 / (64 * 8), Ways: 8,
			Latency: 10, MSHREntries: 32,
		},
		LLC: cache.Config{
			Name: "LLC", Sets: 2 << 20 / (64 * 16), Ways: 16,
			Latency: 20, MSHREntries: 64,
		},
		MMU:       vm.DefaultMMUConfig(),
		DRAM:      dram.DefaultConfig(),
		PhysBytes: 8 << 30,
	}
}

// String renders the configuration as a Table-I-style listing.
func (c Config) String() string {
	return fmt.Sprintf(
		"Core: %d-wide, %d-entry ROB\n"+
			"L1I: %dKB %d-way, %d-cycle, %d-entry MSHR\n"+
			"L1D: %dKB %d-way, %d-cycle, %d-entry MSHR\n"+
			"L2C: %dKB %d-way, %d-cycle, %d-entry MSHR\n"+
			"LLC: %dMB %d-way, %d-cycle, %d-entry MSHR (per core)\n"+
			"L1 DTLB: %d-entry %d-way; L2 TLB: %d-entry %d-way, %d-cycle\n"+
			"DRAM: %d MT/s, %d channel(s), %d banks\n"+
			"Physical memory: %dGB",
		c.Core.Width, c.Core.ROBSize,
		c.L1I.Sets*c.L1I.Ways*64>>10, c.L1I.Ways, c.L1I.Latency, c.L1I.MSHREntries,
		c.L1D.Sets*c.L1D.Ways*64>>10, c.L1D.Ways, c.L1D.Latency, c.L1D.MSHREntries,
		c.L2.Sets*c.L2.Ways*64>>10, c.L2.Ways, c.L2.Latency, c.L2.MSHREntries,
		c.LLC.Sets*c.LLC.Ways*64>>20, c.LLC.Ways, c.LLC.Latency, c.LLC.MSHREntries,
		c.MMU.L1Entries, c.MMU.L1Ways, c.MMU.L2Entries, c.MMU.L2Ways, c.MMU.L2Latency,
		c.DRAM.TransferMTps, c.DRAM.Channels, c.DRAM.BanksPerChan,
		c.PhysBytes>>30,
	)
}

// L1Pref selects the optional first-level prefetcher (Figure 13).
type L1Pref string

// L1 prefetcher choices.
const (
	L1None     L1Pref = ""
	L1NextLine L1Pref = "nextline"
	L1IPCP     L1Pref = "ipcp"   // stops at 4KB virtual page boundaries
	L1IPCPPP   L1Pref = "ipcp++" // crosses boundaries when the page is TLB-resident
)

// PrefSpec selects the prefetching configuration of a run.
type PrefSpec struct {
	// Base is the L2 prefetcher: "none", the paper's four ("spp", "vldp",
	// "ppf", "bop"), or an extended base ("sms", "ampm", "temporal",
	// "pangloss", "vamp").
	Base string
	// Variant is the page-size exploitation scheme wrapped around Base.
	Variant core.Variant
	// L1 optionally enables a first-level prefetcher instead.
	L1 L1Pref
}

// String implements fmt.Stringer.
func (s PrefSpec) String() string {
	if s.Base == "" || s.Base == "none" {
		if s.L1 != L1None {
			return "L1:" + string(s.L1)
		}
		return "no-prefetch"
	}
	out := s.Base + "-" + s.Variant.String()
	if s.L1 != L1None {
		out += "+L1:" + string(s.L1)
	}
	return out
}

// BaseNames lists the four spatial L2 prefetchers the paper evaluates.
func BaseNames() []string { return []string{"spp", "vldp", "ppf", "bop"} }

// ExtendedBaseNames adds the prefetchers implemented beyond the paper's four
// (SMS from ISCA '06, AMPM from ICS '09, a GHB-style temporal prefetcher for
// the spatial-vs-temporal contrast of Section II-A, the Pangloss Markov
// delta-chain prefetcher from DPC-3, and VA-AMPM-lite operating in virtual
// address space), demonstrating that the PPM machinery wraps further designs
// unmodified.
func ExtendedBaseNames() []string {
	return append(BaseNames(), "sms", "ampm", "temporal", "pangloss", "vamp")
}

// factoryFor builds the prefetcher factory for a base name. The ISOStorage
// variant doubles every table (Figure 11's iso-storage comparison).
func factoryFor(base string, variant core.Variant) (prefetch.Factory, error) {
	scale := 1
	if variant == core.ISOStorage {
		scale = 2
	}
	switch base {
	case "spp":
		return spp.Factory(spp.DefaultConfig().Scale(scale)), nil
	case "vldp":
		return vldp.Factory(vldp.DefaultConfig().Scale(scale)), nil
	case "ppf":
		return ppf.Factory(ppf.DefaultConfig().Scale(scale)), nil
	case "bop":
		return bop.Factory(bop.DefaultConfig().Scale(scale)), nil
	case "sms":
		return sms.Factory(sms.DefaultConfig().Scale(scale)), nil
	case "ampm":
		return ampm.Factory(ampm.DefaultConfig().Scale(scale)), nil
	case "temporal":
		return temporal.Factory(temporal.DefaultConfig().Scale(scale)), nil
	case "pangloss":
		return pangloss.Factory(pangloss.DefaultConfig().Scale(scale)), nil
	case "vamp":
		return vamp.Factory(vamp.DefaultConfig().Scale(scale)), nil
	case "nextline":
		return nextline.Factory(4), nil
	}
	return nil, fmt.Errorf("sim: unknown prefetcher base %q", base)
}
