package sim

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

var testOpt = RunOpt{Warmup: 100_000, Instructions: 400_000, Seed: 1, Samples: 4}

func mustRun(t *testing.T, spec PrefSpec, name string) Result {
	t.Helper()
	w, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(DefaultConfig(), spec, w, testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions == 0 || r.IPC <= 0 {
		t.Fatalf("%s/%s: degenerate result %+v", name, spec, r)
	}
	return r
}

func TestDefaultConfigMirrorsTableI(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.L1D.Sets * cfg.L1D.Ways * 64; got != 48<<10 {
		t.Errorf("L1D capacity = %d, want 48KB", got)
	}
	if got := cfg.L2.Sets * cfg.L2.Ways * 64; got != 512<<10 {
		t.Errorf("L2 capacity = %d, want 512KB", got)
	}
	if got := cfg.LLC.Sets * cfg.LLC.Ways * 64; got != 2<<20 {
		t.Errorf("LLC capacity = %d, want 2MB", got)
	}
	if cfg.Core.Width != 4 || cfg.Core.ROBSize != 352 {
		t.Errorf("core config %+v", cfg.Core)
	}
	if cfg.DRAM.TransferMTps != 3200 {
		t.Errorf("DRAM rate %d", cfg.DRAM.TransferMTps)
	}
	s := cfg.String()
	for _, want := range []string{"48KB", "512KB", "2MB", "352-entry ROB", "3200 MT/s", "1536-entry"} {
		if !contains(s, want) {
			t.Errorf("config string missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestDeterministicRuns(t *testing.T) {
	a := mustRun(t, PrefSpec{Base: "spp", Variant: core.PSA}, "libquantum")
	b := mustRun(t, PrefSpec{Base: "spp", Variant: core.PSA}, "libquantum")
	if a.IPC != b.IPC || a.Cycles != b.Cycles || a.L2 != b.L2 {
		t.Error("identical runs produced different results")
	}
}

// TestPaperShapeSPP asserts the qualitative results of Figures 4, 5, and 8 on
// representative workloads: prefetching beats no prefetching on streaming
// workloads; PSA beats original when 2MB pages dominate; PSA ≈ original when
// the workload lives on 4KB pages; PSA-2MB wins on milc's long strides.
func TestPaperShapeSPP(t *testing.T) {
	t.Run("libquantum", func(t *testing.T) {
		none := mustRun(t, PrefSpec{Base: "none"}, "libquantum")
		orig := mustRun(t, PrefSpec{Base: "spp", Variant: core.Original}, "libquantum")
		psa := mustRun(t, PrefSpec{Base: "spp", Variant: core.PSA}, "libquantum")
		if orig.IPC <= none.IPC {
			t.Errorf("SPP (%.3f) did not beat no-prefetch (%.3f)", orig.IPC, none.IPC)
		}
		if psa.IPC <= orig.IPC {
			t.Errorf("SPP-PSA (%.3f) did not beat SPP original (%.3f)", psa.IPC, orig.IPC)
		}
	})
	t.Run("milc-psa2mb", func(t *testing.T) {
		orig := mustRun(t, PrefSpec{Base: "spp", Variant: core.Original}, "milc")
		psa2 := mustRun(t, PrefSpec{Base: "spp", Variant: core.PSA2MB}, "milc")
		sd := mustRun(t, PrefSpec{Base: "spp", Variant: core.PSASD}, "milc")
		if psa2.IPC <= orig.IPC*1.05 {
			t.Errorf("SPP-PSA-2MB (%.3f) did not clearly beat original (%.3f) on milc's long strides",
				psa2.IPC, orig.IPC)
		}
		if sd.IPC <= orig.IPC {
			t.Errorf("SPP-PSA-SD (%.3f) below original (%.3f) on milc", sd.IPC, orig.IPC)
		}
	})
	t.Run("soplex-4kb-bound", func(t *testing.T) {
		orig := mustRun(t, PrefSpec{Base: "spp", Variant: core.Original}, "soplex")
		psa := mustRun(t, PrefSpec{Base: "spp", Variant: core.PSA}, "soplex")
		// soplex lives on 4KB pages: PSA has almost no opportunity.
		if math.Abs(psa.IPC-orig.IPC)/orig.IPC > 0.03 {
			t.Errorf("PSA (%.3f) deviates from original (%.3f) on a 4KB-dominated workload",
				psa.IPC, orig.IPC)
		}
		if psa.Engine.DiscardProbability() > 0.05 {
			t.Errorf("discard probability %.3f on a 4KB-dominated workload", psa.Engine.DiscardProbability())
		}
	})
}

func TestMagicMatchesPPMForData(t *testing.T) {
	// In this simulator the PPM bit always equals the oracle for data
	// accesses, so PSA and PSA-Magic must coincide.
	psa := mustRun(t, PrefSpec{Base: "spp", Variant: core.PSA}, "libquantum")
	magic := mustRun(t, PrefSpec{Base: "spp", Variant: core.PSAMagic}, "libquantum")
	if psa.IPC != magic.IPC {
		t.Errorf("PSA (%v) and PSA-Magic (%v) diverged", psa.IPC, magic.IPC)
	}
}

func TestBOPVariantsIdentical(t *testing.T) {
	// BOP has no page-indexed structure: PSA and PSA-2MB are the same
	// prefetcher (Section VI-B1).
	psa := mustRun(t, PrefSpec{Base: "bop", Variant: core.PSA}, "libquantum")
	psa2 := mustRun(t, PrefSpec{Base: "bop", Variant: core.PSA2MB}, "libquantum")
	if psa.IPC != psa2.IPC {
		t.Errorf("BOP-PSA (%v) and BOP-PSA-2MB (%v) diverged", psa.IPC, psa2.IPC)
	}
}

func TestAllBasesRun(t *testing.T) {
	for _, base := range BaseNames() {
		r := mustRun(t, PrefSpec{Base: base, Variant: core.PSASD}, "bwaves")
		if r.L2.PrefetchIssued == 0 && base != "bop" {
			t.Errorf("%s issued no prefetches", base)
		}
	}
}

func TestUnknownBaseErrors(t *testing.T) {
	w, _ := trace.ByName("milc")
	if _, err := Run(DefaultConfig(), PrefSpec{Base: "bogus"}, w, testOpt); err == nil {
		t.Error("unknown prefetcher base did not error")
	}
}

func TestFig2DiscardProbabilityRange(t *testing.T) {
	// Figure 2: with 2MB-heavy workloads a visible share of candidates is
	// discarded at the 4KB boundary although the block lives in a 2MB page.
	orig := mustRun(t, PrefSpec{Base: "spp", Variant: core.Original}, "libquantum")
	p := orig.Engine.DiscardProbability()
	if p <= 0.01 || p > 0.6 {
		t.Errorf("discard probability = %.3f, want within Figure 2's observed band", p)
	}
}

func TestFrac2MTracksTHPPolicy(t *testing.T) {
	high := mustRun(t, PrefSpec{Base: "none"}, "libquantum") // THP frac 0.99
	low := mustRun(t, PrefSpec{Base: "none"}, "soplex")      // THP frac 0.15
	if high.Frac2MFinal < 0.9 {
		t.Errorf("libquantum 2MB fraction = %.2f, want ≥ 0.9", high.Frac2MFinal)
	}
	if low.Frac2MFinal > 0.5 {
		t.Errorf("soplex 2MB fraction = %.2f, want low", low.Frac2MFinal)
	}
	if len(high.Frac2MOverTime) != testOpt.Samples {
		t.Errorf("samples = %d, want %d", len(high.Frac2MOverTime), testOpt.Samples)
	}
}

func TestL1PrefetchersRun(t *testing.T) {
	none := mustRun(t, PrefSpec{Base: "none"}, "bwaves")
	for _, l1 := range []L1Pref{L1NextLine, L1IPCP, L1IPCPPP} {
		r := mustRun(t, PrefSpec{Base: "none", L1: l1}, "bwaves")
		if r.L1D.PrefetchIssued == 0 {
			t.Errorf("%s issued no L1 prefetches", l1)
		}
		if r.IPC <= none.IPC {
			t.Errorf("%s (%.3f) did not beat no-prefetch (%.3f) on a stream", l1, r.IPC, none.IPC)
		}
	}
}

func TestIPCPPPCrossesMoreThanIPCP(t *testing.T) {
	a := mustRun(t, PrefSpec{Base: "none", L1: L1IPCP}, "bwaves")
	b := mustRun(t, PrefSpec{Base: "none", L1: L1IPCPPP}, "bwaves")
	if b.IPC < a.IPC {
		t.Errorf("IPCP++ (%.3f) below IPCP (%.3f) on a page-crossing stream", b.IPC, a.IPC)
	}
}

func TestRunMultiWeightedIPC(t *testing.T) {
	mixNames := []string{"libquantum", "milc", "soplex", "bwaves"}
	var mix []trace.Workload
	for _, n := range mixNames {
		w, err := trace.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		mix = append(mix, w)
	}
	opt := RunOpt{Warmup: 50_000, Instructions: 150_000, Seed: 1}
	res, err := RunMulti(DefaultConfig(), PrefSpec{Base: "spp", Variant: core.PSA}, mix, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != 4 {
		t.Fatalf("IPC entries = %d", len(res.IPC))
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 || ipc > 4.1 { // width 4; quantum boundaries may overshoot a hair
			t.Errorf("core %d IPC = %v", i, ipc)
		}
	}
	// Shared-resource contention: each core must run slower than in
	// isolation on the same (scaled) machine.
	for i, w := range mix {
		iso, err := Run(DefaultConfig(), PrefSpec{Base: "spp", Variant: core.PSA}, w,
			RunOpt{Warmup: 50_000, Instructions: 150_000, Seed: 1, Samples: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.IPC[i] > iso.IPC*1.15 {
			t.Errorf("%s: multicore IPC %.3f exceeds isolation %.3f", w.Name, res.IPC[i], iso.IPC)
		}
	}
}

func TestTLBAndWalksExercised(t *testing.T) {
	// soplex is 4KB-heavy with a large footprint: the TLB hierarchy and the
	// page-table walker must both see traffic.
	r := mustRun(t, PrefSpec{Base: "none"}, "soplex")
	if r.TLBL1Misses == 0 {
		t.Error("no L1 TLB misses on a 4KB-heavy workload")
	}
	if r.Walks == 0 {
		t.Error("no page walks on a 4KB-heavy workload")
	}
	// libquantum with 2MB pages should walk far less per instruction.
	lq := mustRun(t, PrefSpec{Base: "none"}, "libquantum")
	if float64(lq.Walks)/float64(lq.Instructions) >= float64(r.Walks)/float64(r.Instructions) {
		t.Error("2MB-heavy workload walked as much as the 4KB-heavy one")
	}
}

func TestExtendedBasesRun(t *testing.T) {
	for _, base := range []string{"sms", "ampm", "temporal"} {
		r := mustRun(t, PrefSpec{Base: base, Variant: core.PSA}, "bwaves")
		if base != "temporal" && r.L2.PrefetchIssued == 0 {
			t.Errorf("%s issued no prefetches on a stream", base)
		}
	}
}

func TestTLBPrefetchConfigWiredThrough(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MMU.TLBPrefetch = true
	// soplex is 4KB-heavy: the TLB prefetcher must cut demand walks.
	w, err := trace.ByName("soplex")
	if err != nil {
		t.Fatal(err)
	}
	opt := RunOpt{Warmup: 80_000, Instructions: 300_000, Seed: 1, Samples: 1}
	base, err := Run(DefaultConfig(), PrefSpec{Base: "none"}, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	pref, err := Run(cfg, PrefSpec{Base: "none"}, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if pref.Walks >= base.Walks {
		t.Errorf("TLB prefetch did not reduce demand walks: %d vs %d", pref.Walks, base.Walks)
	}
}

func TestPSAGainReplacementAgnostic(t *testing.T) {
	// The page-size machinery must keep its win under a different
	// replacement policy (SRRIP) — it never touches replacement state.
	cfg := DefaultConfig()
	cfg.Replacement = cache.ReplSRRIP
	w, err := trace.ByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	opt := RunOpt{Warmup: 80_000, Instructions: 300_000, Seed: 1, Samples: 1}
	orig, err := Run(cfg, PrefSpec{Base: "spp", Variant: core.Original}, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	psa, err := Run(cfg, PrefSpec{Base: "spp", Variant: core.PSA}, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if psa.IPC <= orig.IPC {
		t.Errorf("under SRRIP, PSA (%.3f) did not beat original (%.3f)", psa.IPC, orig.IPC)
	}
}

func TestL1IPathExercised(t *testing.T) {
	// Tight loops fetch each instruction block once (compulsory misses
	// only); code alternating across blocks re-probes the L1I and hits.
	sys, err := newSystem(DefaultConfig(), PrefSpec{Base: "none"}, []trace.Workload{mustWorkload(t, "bwaves")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := sys.nodes[0]
	n.cpu.Run(n.reader, 100_000)
	if n.l1i.Stats.DemandMisses == 0 {
		t.Error("L1I saw no compulsory misses")
	}
	if n.l1i.Stats.DemandMisses > 100 {
		t.Errorf("loop code thrashing the L1I: %d misses", n.l1i.Stats.DemandMisses)
	}

	// Alternating instruction blocks: 2 compulsory misses, then hits.
	a, b := mem.Addr(0x400000), mem.Addr(0x400100)
	for i := 0; i < 10; i++ {
		n.FetchInstr(a, mem.Cycle(1_000_000+i*100))
		n.FetchInstr(b, mem.Cycle(1_000_000+i*100+50))
	}
	if n.l1i.Stats.DemandHits < 18 {
		t.Errorf("alternating code blocks: L1I hits = %d, want ≥ 18", n.l1i.Stats.DemandHits)
	}
}

func mustWorkload(t *testing.T, name string) trace.Workload {
	t.Helper()
	w, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
