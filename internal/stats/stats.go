// Package stats provides the aggregation helpers used by the evaluation:
// geometric means of speedups, distribution summaries (the violin plots of
// Figures 2, 14, and 15 are reported as percentile tables), and weighted
// multi-core speedups.
package stats

import (
	"math"
	"sort"
)

// Geomean returns the geometric mean of xs. Non-positive values are clamped
// to a small epsilon so a single degenerate run cannot poison an aggregate.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x < 1e-9 {
			x = 1e-9
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// GeomeanSpeedup converts paired (baseline, variant) metrics into the
// geometric-mean speedup in percent, the unit of the paper's figures.
func GeomeanSpeedup(base, variant []float64) float64 {
	if len(base) != len(variant) || len(base) == 0 {
		return 0
	}
	ratios := make([]float64, len(base))
	for i := range base {
		if base[i] <= 0 {
			ratios[i] = 1
			continue
		}
		ratios[i] = variant[i] / base[i]
	}
	return (Geomean(ratios) - 1) * 100
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Summary is a distribution summary: the textual stand-in for a violin plot.
type Summary struct {
	Min, P25, Median, P75, P90, Max, Mean float64
	N                                     int
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		Min:    s[0],
		P25:    Percentile(s, 25),
		Median: Percentile(s, 50),
		P75:    Percentile(s, 75),
		P90:    Percentile(s, 90),
		Max:    s[len(s)-1],
		Mean:   Mean(s),
		N:      len(s),
	}
}

// Percentile returns the p-th percentile (0..100) of sorted xs by linear
// interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BootstrapCI returns a (lo, hi) percentile bootstrap confidence interval for
// the mean of xs at the given confidence level (e.g. 0.95), using a
// deterministic resampling stream so reports are reproducible.
func BootstrapCI(xs []float64, level float64, resamples int) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	if resamples <= 0 {
		resamples = 1000
	}
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	means := make([]float64, resamples)
	for r := range means {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[next()%uint64(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	return Percentile(means, alpha*100), Percentile(means, (1-alpha)*100)
}

// WeightedSpeedup computes the multi-core metric of Section V-B: the sum over
// mix members of IPC_multicore / IPC_isolation.
func WeightedSpeedup(multi, iso []float64) float64 {
	if len(multi) != len(iso) {
		return 0
	}
	ws := 0.0
	for i := range multi {
		if iso[i] <= 0 {
			continue
		}
		ws += multi[i] / iso[i]
	}
	return ws
}
