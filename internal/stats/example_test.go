package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// Speedup aggregation works the way the paper reports it: geometric means of
// per-workload IPC ratios, expressed in percent.
func ExampleGeomeanSpeedup() {
	baselineIPC := []float64{1.0, 0.5, 2.0}
	variantIPC := []float64{1.1, 0.55, 2.2} // +10% everywhere

	fmt.Printf("%.1f%%\n", stats.GeomeanSpeedup(baselineIPC, variantIPC))
	// Output:
	// 10.0%
}

// Distribution summaries stand in for the paper's violin plots.
func ExampleSummarize() {
	perWorkload := []float64{0.02, 0.05, 0.11, 0.09, 0.50}
	s := stats.Summarize(perWorkload)
	fmt.Printf("median %.2f max %.2f n=%d\n", s.Median, s.Max, s.N)
	// Output:
	// median 0.09 max 0.50 n=5
}

// WeightedSpeedup is the multi-core metric of Section V-B.
func ExampleWeightedSpeedup() {
	multicoreIPC := []float64{0.8, 1.6}
	isolationIPC := []float64{1.0, 2.0}
	fmt.Printf("%.1f\n", stats.WeightedSpeedup(multicoreIPC, isolationIPC))
	// Output:
	// 1.6
}
