package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeomean(t *testing.T) {
	if !approx(Geomean([]float64{2, 8}), 4) {
		t.Errorf("Geomean(2,8) = %v", Geomean([]float64{2, 8}))
	}
	if Geomean(nil) != 0 {
		t.Error("Geomean(nil) != 0")
	}
	if !approx(Geomean([]float64{5}), 5) {
		t.Error("single element geomean")
	}
	// Non-positive values are clamped, not NaN.
	if math.IsNaN(Geomean([]float64{0, 1})) {
		t.Error("Geomean produced NaN")
	}
}

func TestGeomeanSpeedup(t *testing.T) {
	base := []float64{1, 1, 1}
	variant := []float64{1.1, 1.1, 1.1}
	if got := GeomeanSpeedup(base, variant); !approx(got, 10.000000000000009) && math.Abs(got-10) > 1e-6 {
		t.Errorf("GeomeanSpeedup = %v, want 10", got)
	}
	if GeomeanSpeedup([]float64{1}, []float64{1, 2}) != 0 {
		t.Error("mismatched lengths should return 0")
	}
	// A zero baseline entry is treated as neutral.
	if got := GeomeanSpeedup([]float64{0, 1}, []float64{5, 1}); math.Abs(got) > 1e-6 {
		t.Errorf("zero baseline not neutral: %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.N != 5 || !approx(s.Mean, 3) {
		t.Errorf("Summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); !approx(got, 5) {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 0); got != 0 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("P100 = %v", got)
	}
	if Percentile(nil, 50) != 0 || Percentile([]float64{7}, 50) != 7 {
		t.Error("degenerate percentiles")
	}
}

func TestWeightedSpeedup(t *testing.T) {
	// Two apps at parity plus one at half speed: WS = 1 + 1 + 0.5.
	ws := WeightedSpeedup([]float64{1, 2, 0.5}, []float64{1, 2, 1})
	if !approx(ws, 2.5) {
		t.Errorf("WS = %v, want 2.5", ws)
	}
	if WeightedSpeedup([]float64{1}, []float64{}) != 0 {
		t.Error("mismatched lengths")
	}
	// Zero isolation IPC skipped, not Inf.
	if math.IsInf(WeightedSpeedup([]float64{1}, []float64{0}), 0) {
		t.Error("division by zero isolation IPC")
	}
}

// Property: geomean lies between min and max.
func TestGeomeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > 1e-6 && x < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return g >= s[0]-1e-9 && g <= s[len(s)-1]+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := append([]float64(nil), raw...)
		for i := range s {
			if math.IsNaN(s[i]) || math.IsInf(s[i], 0) {
				s[i] = 0
			}
		}
		sort.Float64s(s)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(s, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := []float64{10, 11, 9, 10.5, 9.5, 10.2, 9.8, 10.1}
	lo, hi := BootstrapCI(xs, 0.95, 500)
	if lo > hi {
		t.Fatalf("inverted CI [%v, %v]", lo, hi)
	}
	m := Mean(xs)
	if m < lo || m > hi {
		t.Errorf("mean %v outside its own CI [%v, %v]", m, lo, hi)
	}
	if hi-lo > 2 {
		t.Errorf("CI [%v, %v] too wide for tight data", lo, hi)
	}
	// Deterministic.
	lo2, hi2 := BootstrapCI(xs, 0.95, 500)
	if lo != lo2 || hi != hi2 {
		t.Error("bootstrap not deterministic")
	}
	if l, h := BootstrapCI(nil, 0.95, 10); l != 0 || h != 0 {
		t.Error("empty input CI not zero")
	}
}
