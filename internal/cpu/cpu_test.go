package cpu

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// sliceReader replays a fixed access list.
type sliceReader struct {
	accs []trace.Access
	i    int
}

func (s *sliceReader) Next(a *trace.Access) bool {
	if s.i >= len(s.accs) {
		return false
	}
	*a = s.accs[s.i]
	s.i++
	return true
}

// fixedMem returns a constant latency for loads.
type fixedMem struct {
	latency  mem.Cycle
	accesses int
}

func (m *fixedMem) Access(_, _ mem.Addr, _ bool, at mem.Cycle) mem.Cycle {
	m.accesses++
	return at + m.latency
}

func loadsWithGap(n, gap int) []trace.Access {
	out := make([]trace.Access, n)
	for i := range out {
		out[i] = trace.Access{PC: 0x400000, VAddr: mem.Addr(i) << 12, Gap: gap}
	}
	return out
}

func TestAllNonBlockingRetiresAtWidth(t *testing.T) {
	// Zero-latency memory: IPC should approach the width.
	ms := &fixedMem{latency: 0}
	c := New(Config{Width: 4, ROBSize: 64}, ms)
	n := c.Run(&sliceReader{accs: loadsWithGap(1000, 3)}, 1<<30)
	if n != 4000 {
		t.Fatalf("retired %d, want 4000", n)
	}
	if ipc := c.IPC(); ipc < 3.0 {
		t.Errorf("IPC = %v with zero-latency memory, want near 4", ipc)
	}
}

func TestLongLatencyLimitsIPC(t *testing.T) {
	fast := New(DefaultConfig(), &fixedMem{latency: 1})
	slow := New(DefaultConfig(), &fixedMem{latency: 400})
	fast.Run(&sliceReader{accs: loadsWithGap(2000, 2)}, 1<<30)
	slow.Run(&sliceReader{accs: loadsWithGap(2000, 2)}, 1<<30)
	if slow.IPC() >= fast.IPC() {
		t.Errorf("slow memory IPC %v not below fast %v", slow.IPC(), fast.IPC())
	}
}

func TestROBBoundsMLP(t *testing.T) {
	// With latency L and a tiny ROB, at most ROBSize loads overlap, so
	// cycles ≳ n/ROB × L. A big ROB overlaps many more.
	mkRun := func(rob int) mem.Cycle {
		c := New(Config{Width: 4, ROBSize: rob}, &fixedMem{latency: 500})
		c.Run(&sliceReader{accs: loadsWithGap(512, 0)}, 1<<30)
		return c.Cycle
	}
	small := mkRun(4)
	big := mkRun(512)
	if big >= small {
		t.Errorf("larger ROB not faster: rob4=%d cycles, rob512=%d", small, big)
	}
	if small < 500*512/4 {
		t.Errorf("tiny ROB overlapped more than its size: %d cycles", small)
	}
}

func TestStoresDrainThroughStoreBuffer(t *testing.T) {
	mkAccs := func() []trace.Access {
		accs := make([]trace.Access, 500)
		for i := range accs {
			accs[i] = trace.Access{PC: 1, VAddr: mem.Addr(i) << 12, Write: true, Gap: 1}
		}
		return accs
	}
	// Stores retire through the store buffer: much faster than if each store
	// blocked like a load, but throttled to the buffer's drain rate.
	ms := &fixedMem{latency: 400}
	c := New(DefaultConfig(), ms)
	c.Run(&sliceReader{accs: mkAccs()}, 1<<30)
	blockingIPC := 2.0 / 400 // if every store blocked for full latency
	if ipc := c.IPC(); ipc < 10*blockingIPC {
		t.Errorf("store-only stream IPC = %v, want well above blocking rate %v", ipc, blockingIPC)
	}
	if ms.accesses != 500 {
		t.Errorf("stores still must access memory: %d", ms.accesses)
	}
	if c.Stores != 500 || c.Loads != 0 {
		t.Errorf("load/store accounting: %d/%d", c.Loads, c.Stores)
	}

	// A larger store buffer drains faster under the same latency.
	small := New(Config{Width: 4, ROBSize: 352, StoreBuf: 4}, &fixedMem{latency: 400})
	small.Run(&sliceReader{accs: mkAccs()}, 1<<30)
	if small.IPC() >= c.IPC() {
		t.Errorf("4-entry store buffer (%v IPC) not slower than 64-entry (%v)", small.IPC(), c.IPC())
	}
}

func TestInstructionBudgetRespected(t *testing.T) {
	c := New(DefaultConfig(), &fixedMem{latency: 10})
	n := c.Run(&sliceReader{accs: loadsWithGap(10000, 4)}, 1234)
	if n != 1234 {
		t.Errorf("retired %d, want exactly 1234", n)
	}
}

func TestRunResumable(t *testing.T) {
	// Warm-up then measurement over the same reader must continue, not
	// restart.
	r := &sliceReader{accs: loadsWithGap(1000, 0)}
	c := New(DefaultConfig(), &fixedMem{latency: 5})
	first := c.Run(r, 300)
	second := c.Run(r, 300)
	if first != 300 || second != 300 {
		t.Errorf("runs retired %d, %d; want 300 each", first, second)
	}
	if c.Instructions != 600 {
		t.Errorf("total instructions = %d", c.Instructions)
	}
}

func TestTraceDrain(t *testing.T) {
	c := New(DefaultConfig(), &fixedMem{latency: 50})
	n := c.Run(&sliceReader{accs: loadsWithGap(10, 0)}, 1<<30)
	if n != 10 {
		t.Errorf("drained %d instructions, want 10", n)
	}
}

func TestGapCountsAsInstructions(t *testing.T) {
	c := New(DefaultConfig(), &fixedMem{latency: 0})
	n := c.Run(&sliceReader{accs: loadsWithGap(100, 9)}, 1<<30)
	if n != 1000 {
		t.Errorf("retired %d, want 1000 (gap 9 + 1 mem per record)", n)
	}
	if c.Loads != 100 {
		t.Errorf("loads = %d, want 100", c.Loads)
	}
}

// fetchMem implements InstrFetcher with a constant instruction-miss latency
// for new blocks.
type fetchMem struct {
	fixedMem
	ifetchLatency mem.Cycle
	fetches       int
}

func (m *fetchMem) FetchInstr(pc mem.Addr, at mem.Cycle) mem.Cycle {
	m.fetches++
	return at + m.ifetchLatency
}

func TestFrontEndStallsOnInstructionMisses(t *testing.T) {
	// Accesses spread across many instruction blocks with a slow front end
	// must run slower than the same stream with an ideal front end.
	mkAccs := func() []trace.Access {
		accs := make([]trace.Access, 400)
		for i := range accs {
			accs[i] = trace.Access{
				PC:    mem.Addr(i) * mem.BlockSize, // new instruction block each time
				VAddr: mem.Addr(i) << 12,
				Gap:   2,
			}
		}
		return accs
	}
	slow := &fetchMem{fixedMem: fixedMem{latency: 5}, ifetchLatency: 100}
	cSlow := New(DefaultConfig(), slow)
	cSlow.Run(&sliceReader{accs: mkAccs()}, 1<<30)

	ideal := &fixedMem{latency: 5}
	cIdeal := New(DefaultConfig(), ideal)
	cIdeal.Run(&sliceReader{accs: mkAccs()}, 1<<30)

	if cSlow.IPC() >= cIdeal.IPC() {
		t.Errorf("slow front end IPC %.3f not below ideal %.3f", cSlow.IPC(), cIdeal.IPC())
	}
	if slow.fetches < 399 {
		t.Errorf("instruction fetches = %d, want ≈400", slow.fetches)
	}
}

func TestFrontEndHitsAreFree(t *testing.T) {
	// A tight loop (single instruction block) fetches once and never stalls.
	accs := make([]trace.Access, 400)
	for i := range accs {
		accs[i] = trace.Access{PC: 0x400000, VAddr: mem.Addr(i) << 12, Gap: 2}
	}
	fm := &fetchMem{fixedMem: fixedMem{latency: 5}, ifetchLatency: 100}
	c := New(DefaultConfig(), fm)
	c.Run(&sliceReader{accs: accs}, 1<<30)
	if fm.fetches != 1 {
		t.Errorf("loop fetched %d instruction blocks, want 1", fm.fetches)
	}
	if ipc := c.IPC(); ipc < 2 {
		t.Errorf("loop IPC = %.3f, want near width", ipc)
	}
}

func TestChunkedRunMatchesMonolithic(t *testing.T) {
	// Splitting a run into arbitrary Run-call chunks must not change the
	// execution: the pending trace access survives call boundaries in the
	// core instead of being dropped. Chunk sizes deliberately misalign with
	// the gap structure so boundaries land mid-record.
	mkAccs := func() []trace.Access {
		accs := make([]trace.Access, 3000)
		for i := range accs {
			accs[i] = trace.Access{
				PC:    mem.Addr(i%17) * mem.BlockSize,
				VAddr: mem.Addr(i*67) << 8,
				Write: i%5 == 0,
				Gap:   i % 4,
			}
		}
		return accs
	}

	mono := New(DefaultConfig(), &fixedMem{latency: 37})
	monoTotal := mono.Run(&sliceReader{accs: mkAccs()}, 1<<30)

	for _, chunk := range []uint64{1, 7, 97, 1001} {
		ms := &fixedMem{latency: 37}
		c := New(DefaultConfig(), ms)
		r := &sliceReader{accs: mkAccs()}
		var total uint64
		for {
			got := c.Run(r, chunk)
			total += got
			if got < chunk {
				break
			}
		}
		if total != monoTotal {
			t.Errorf("chunk %d: retired %d, monolithic retired %d", chunk, total, monoTotal)
		}
		if c.Cycle != mono.Cycle || c.Loads != mono.Loads || c.Stores != mono.Stores {
			t.Errorf("chunk %d: cycle/loads/stores = %d/%d/%d, want %d/%d/%d",
				chunk, c.Cycle, c.Loads, c.Stores, mono.Cycle, mono.Loads, mono.Stores)
		}
	}
}

func TestChunkBoundaryKeepsRetireWidth(t *testing.T) {
	// A width-bound stream (zero-latency memory) exposes the per-cycle retire
	// budget: a chunk boundary landing mid-retire-burst must not grant the
	// resuming call a fresh Width in the same cycle.
	mkAccs := func() []trace.Access { return loadsWithGap(500, 3) }

	mono := New(Config{Width: 4, ROBSize: 64}, &fixedMem{latency: 0})
	mono.Run(&sliceReader{accs: mkAccs()}, 1<<30)

	for _, chunk := range []uint64{1, 3, 5} {
		c := New(Config{Width: 4, ROBSize: 64}, &fixedMem{latency: 0})
		r := &sliceReader{accs: mkAccs()}
		for {
			if got := c.Run(r, chunk); got < chunk {
				break
			}
		}
		if c.Cycle != mono.Cycle || c.Instructions != mono.Instructions {
			t.Errorf("chunk %d: cycles/instructions = %d/%d, want %d/%d",
				chunk, c.Cycle, c.Instructions, mono.Cycle, mono.Instructions)
		}
	}
}

func TestROBOccupancyGauge(t *testing.T) {
	c := New(Config{Width: 4, ROBSize: 32}, &fixedMem{latency: 1 << 40})
	c.Run(&sliceReader{accs: loadsWithGap(8, 0)}, 4)
	if got := c.ROBOccupancy(); got == 0 || got > 32 {
		t.Errorf("ROBOccupancy = %d, want within (0,32] while loads are outstanding", got)
	}
}

func TestRunUntilCycleBound(t *testing.T) {
	c := New(DefaultConfig(), &fixedMem{latency: 10})
	r := &sliceReader{accs: loadsWithGap(100000, 2)}
	n := c.RunUntil(r, 1<<60, 1000)
	if c.Cycle < 1000 {
		t.Errorf("stopped at cycle %d before the bound", c.Cycle)
	}
	if c.Cycle > 1100 {
		t.Errorf("overran the cycle bound: %d", c.Cycle)
	}
	if n == 0 {
		t.Error("retired nothing within the window")
	}
	// Resuming honours a later bound.
	c.RunUntil(r, 1<<60, 3000)
	if c.Cycle < 3000 || c.Cycle > 3100 {
		t.Errorf("second window ended at %d", c.Cycle)
	}
}
