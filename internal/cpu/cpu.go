// Package cpu models the out-of-order core: a 4-wide fetch/retire pipeline
// over a reorder buffer whose size bounds memory-level parallelism. Loads
// complete when the memory system returns their data; non-memory instructions
// and stores (drained through a store buffer) complete immediately. The model
// advances cycle by cycle but jumps over idle gaps, which makes long-latency
// phases cheap to simulate while preserving ROB-limited MLP — the property
// through which prefetching timeliness becomes IPC.
package cpu

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// Config describes the core (Table I: 4-wide, 352-entry ROB).
type Config struct {
	Width    int
	ROBSize  int
	StoreBuf int // store-buffer entries; stores drain to memory through it
}

// DefaultConfig mirrors Table I, with a 64-entry store buffer.
func DefaultConfig() Config { return Config{Width: 4, ROBSize: 352, StoreBuf: 64} }

// MemSystem is the core's view of the memory hierarchy: translate and
// access, returning the data-ready cycle. The sim package implements it with
// MMU + L1D (+ optional L1 prefetcher).
type MemSystem interface {
	Access(pc, vaddr mem.Addr, write bool, at mem.Cycle) mem.Cycle
}

// InstrFetcher is an optional extension of MemSystem: when implemented, the
// core fetches each new instruction block through it (the L1I path), and
// front-end misses stall instruction delivery.
type InstrFetcher interface {
	FetchInstr(pc mem.Addr, at mem.Cycle) mem.Cycle
}

// Core executes a trace against a memory system.
type Core struct {
	cfg Config
	ms  MemSystem

	// rob is a ring buffer of completion cycles. head and tail wrap by
	// conditional reset rather than modulo (ROBSize is 352, not a power of
	// two, and the push/retire loops are the innermost CPU path); tail always
	// equals (head+size) mod ROBSize.
	rob        []mem.Cycle
	robKind    []uint8 // 0 other, 1 load, 2 store
	head, tail int
	size       int

	// ifetch is the optional front end (nil: ideal instruction delivery).
	ifetch InstrFetcher
	// lastIBlock is the last instruction block fetched; fetchReady gates
	// instruction delivery after an L1I miss.
	lastIBlock mem.Addr
	fetchReady mem.Cycle

	// sbFree holds each store-buffer entry's next-free cycle. A store
	// retires once a slot is available; the slot is held until the write
	// completes in memory, so sustained store misses throttle to the memory
	// system's service rate instead of injecting unbounded traffic.
	sbFree []mem.Cycle

	// pending carries a trace access read but not yet pushed into the ROB
	// across Run/RunUntil boundaries. Keeping it in the core (rather than a
	// local of the run loop) makes execution independent of how callers chunk
	// their Run calls: an instruction fetched just before an instruction or
	// cycle bound is issued by the next call instead of being dropped.
	pending     trace.Access
	havePending bool
	pendGap     int // non-memory ops still to issue before pending

	// batch is the decoded slab consumed ahead of the fetch loop when the
	// reader implements trace.BatchReader: the source decodes batchSize
	// accesses per call instead of paying an interface dispatch per access.
	// batchSrc guards reader identity so a caller switching readers between
	// RunUntil calls never replays another stream's readahead.
	batch              []trace.Access
	batchPos, batchLen int
	batchSrc           trace.Reader

	// slotCycle/slotRetired/slotFetched carry the current cycle's consumed
	// retire and fetch bandwidth across RunUntil boundaries. When a call
	// returns mid-cycle (the instruction bound lands inside the retire burst),
	// the next call resumes the same cycle with the remaining budget instead
	// of granting a fresh Width — without this a chunked run retires more per
	// cycle at every chunk boundary than a monolithic one.
	slotCycle   mem.Cycle
	slotRetired int
	slotFetched int

	// Cycle is the current simulated time; Instructions the retired count.
	Cycle        mem.Cycle
	Instructions uint64
	Loads        uint64
	Stores       uint64

	// StallLoad / StallStore / StallOther attribute head-of-ROB stall cycles
	// (debug accounting).
	StallLoad, StallStore, StallOther mem.Cycle
}

// New creates a core over the memory system.
func New(cfg Config, ms MemSystem) *Core {
	if cfg.Width <= 0 || cfg.ROBSize <= 0 {
		panic("cpu: bad config")
	}
	sb := cfg.StoreBuf
	if sb <= 0 {
		sb = 64
	}
	c := &Core{cfg: cfg, ms: ms, rob: make([]mem.Cycle, cfg.ROBSize),
		robKind: make([]uint8, cfg.ROBSize), sbFree: make([]mem.Cycle, sb)}
	if f, ok := ms.(InstrFetcher); ok {
		c.ifetch = f
	}
	return c
}

// batchSize is the decoded-slab length: long enough to amortise the batch
// call, short enough that the readahead stays resident in L1/L2 (512 accesses
// × 32 bytes = 16KB).
const batchSize = 512

// nextAccess fills c.pending with the next trace access, draining the decoded
// slab first and refilling it from a BatchReader when the source supports
// batching. The readahead lives in the core, so chunked RunUntil calls see
// exactly the stream a monolithic run would.
func (c *Core) nextAccess(r trace.Reader) bool {
	if r != c.batchSrc {
		c.batchPos, c.batchLen, c.batchSrc = 0, 0, r
	}
	if c.batchPos < c.batchLen {
		c.pending = c.batch[c.batchPos]
		c.batchPos++
		return true
	}
	if br, ok := r.(trace.BatchReader); ok {
		if c.batch == nil {
			c.batch = make([]trace.Access, batchSize)
		}
		c.batchLen = br.NextBatch(c.batch)
		if c.batchLen == 0 {
			return false
		}
		c.pending = c.batch[0]
		c.batchPos = 1
		return true
	}
	return r.Next(&c.pending)
}

func (c *Core) push(done mem.Cycle) { c.pushKind(done, 0) }

func (c *Core) pushKind(done mem.Cycle, kind uint8) {
	c.rob[c.tail] = done
	c.robKind[c.tail] = kind
	if c.tail++; c.tail == c.cfg.ROBSize {
		c.tail = 0
	}
	c.size++
}

// IPC returns retired instructions per cycle so far.
func (c *Core) IPC() float64 {
	if c.Cycle == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycle)
}

// ROBOccupancy returns the number of in-flight ROB entries (a telemetry
// gauge; sampled at epoch boundaries it exposes how deeply the window is
// backed up behind long-latency misses).
func (c *Core) ROBOccupancy() int { return c.size }

// Run executes up to maxInstructions from the reader (the trace may end
// sooner) and returns the number retired. Run may be called repeatedly (e.g.
// a warm-up run followed by a measured run with fresh counters).
func (c *Core) Run(r trace.Reader, maxInstructions uint64) uint64 {
	return c.RunUntil(r, maxInstructions, 1<<62)
}

// RunUntil executes until maxInstructions retire, the trace drains, or the
// core's clock reaches untilCycle — whichever comes first. The cycle bound is
// what keeps multiple cores time-aligned on shared resources: the multi-core
// driver advances all cores epoch by epoch, so no core's requests run far
// ahead of its peers' clocks.
func (c *Core) RunUntil(r trace.Reader, maxInstructions uint64, untilCycle mem.Cycle) uint64 {
	start := c.Instructions
	fetchedAll := false

	for c.Instructions-start < maxInstructions && c.Cycle < untilCycle {
		// Retire up to Width completed instructions from the ROB head,
		// resuming any bandwidth already consumed this cycle by a previous
		// call that returned mid-cycle.
		retired, fetched := 0, 0
		if c.Cycle == c.slotCycle {
			retired, fetched = c.slotRetired, c.slotFetched
		}
		for c.size > 0 && retired < c.cfg.Width && c.rob[c.head] <= c.Cycle {
			if c.head++; c.head == c.cfg.ROBSize {
				c.head = 0
			}
			c.size--
			retired++
			c.Instructions++
			if c.Instructions-start >= maxInstructions {
				c.slotCycle, c.slotRetired, c.slotFetched = c.Cycle, retired, fetched
				return c.Instructions - start
			}
		}

		// Fetch up to Width instructions into the ROB.
		for !fetchedAll && c.size < c.cfg.ROBSize && fetched < c.cfg.Width {
			if !c.havePending {
				if !c.nextAccess(r) {
					fetchedAll = true
					break
				}
				c.pendGap = c.pending.Gap
				c.havePending = true
			}
			if c.fetchReady > c.Cycle {
				break // front-end stall: an instruction block is in flight
			}
			if c.ifetch != nil {
				if blk := mem.BlockAlign(c.pending.PC); blk != c.lastIBlock {
					c.lastIBlock = blk
					if done := c.ifetch.FetchInstr(c.pending.PC, c.Cycle); done > c.Cycle {
						c.fetchReady = done
						break
					}
				}
			}
			if c.pendGap > 0 {
				// Batch the cycle's worth of non-memory ops: the front-end
				// checks above are no-ops for repeats at the same cycle (the
				// instruction block was just fetched), so pushing k entries at
				// once retires exactly like pushing them one loop pass each.
				k := c.pendGap
				if w := c.cfg.Width - fetched; k > w {
					k = w
				}
				if s := c.cfg.ROBSize - c.size; k > s {
					k = s
				}
				c.pendGap -= k
				fetched += k - 1 // the loop footer counts the last one
				for j := 0; j < k; j++ {
					c.push(c.Cycle) // non-memory op: completes immediately
				}
			} else {
				if c.pending.Write {
					// Stores allocate a store-buffer slot; they retire as
					// soon as a slot is free and hold it until the write
					// completes in memory.
					c.Stores++
					// Any slot already free at the current cycle is as good as
					// the true earliest: the clock never goes backwards, so the
					// other free-now slots stay free for every later store and
					// the observable start times are identical. Only when the
					// whole buffer is busy does the argmin matter.
					slot, start := 0, c.sbFree[0]
					if start > c.Cycle {
						for i, f := range c.sbFree {
							if f <= c.Cycle {
								slot, start = i, f
								break
							}
							if f < start {
								slot, start = i, f
							}
						}
					}
					if start < c.Cycle {
						start = c.Cycle
					}
					c.sbFree[slot] = c.ms.Access(c.pending.PC, c.pending.VAddr, true, start)
					done := start
					c.pushKind(done, 2)
					c.havePending = false
					fetched++
					continue
				}
				done := c.ms.Access(c.pending.PC, c.pending.VAddr, c.pending.Write, c.Cycle)
				c.Loads++
				c.pushKind(done, 1)
				c.havePending = false
			}
			fetched++
		}

		if fetchedAll && c.size == 0 {
			break // trace drained
		}
		if retired == 0 && fetched == 0 && c.size > 0 {
			// Stalled on the ROB head (or a full ROB): jump to its completion,
			// or to front-end readiness if that comes first.
			next := c.rob[c.head]
			if c.fetchReady > c.Cycle && (c.fetchReady < next || c.size < c.cfg.ROBSize) {
				if c.fetchReady < next {
					next = c.fetchReady
				}
			}
			if next > c.Cycle {
				switch c.robKind[c.head] {
				case 1:
					c.StallLoad += next - c.Cycle
				case 2:
					c.StallStore += next - c.Cycle
				default:
					c.StallOther += next - c.Cycle
				}
				c.Cycle = next
				continue
			}
		}
		if retired == 0 && fetched == 0 && c.size == 0 && c.fetchReady > c.Cycle {
			c.Cycle = c.fetchReady // empty machine waiting on the front end
			continue
		}
		c.Cycle++
	}
	return c.Instructions - start
}
