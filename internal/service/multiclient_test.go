package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// testJobs builds n identical remote-runnable experiment jobs.
func testJobs(t *testing.T, n int) []experiments.Job {
	t.Helper()
	ws, err := experiments.WorkloadsByName([]string{"milc"})
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]experiments.Job, n)
	for i := range jobs {
		jobs[i] = experiments.Job{Workload: ws[0], Spec: sim.PrefSpec{Base: "spp"}}
	}
	return jobs
}

// flakyServer wraps a real daemon behind a handler that fails the first n
// submissions with the given status before letting traffic through.
func flakyServer(t *testing.T, n int32, status int, fn simFunc) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	s := New(Config{Workers: 1})
	if fn != nil {
		s.simFn = fn
	}
	s.Start()
	t.Cleanup(s.Close)
	inner := s.Handler()
	var failed atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/sims") && failed.Load() < n {
			failed.Add(1)
			http.Error(w, "transient", status)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(hs.Close)
	return hs, &failed
}

// TestSubmitRetriesTransient: a submission that hits transient 5xx answers is
// retried with backoff and succeeds once the endpoint recovers.
func TestSubmitRetriesTransient(t *testing.T) {
	hs, failed := flakyServer(t, 2, http.StatusServiceUnavailable, fixedSim(telemetryFixture()))
	c := NewClient(hs.URL)
	c.Backoff = Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Retries: 4}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := c.Submit(ctx, testRequest(1))
	if err != nil {
		t.Fatalf("Submit after transient failures: %v", err)
	}
	if v.ID == "" {
		t.Fatal("accepted job has no ID")
	}
	if got := failed.Load(); got != 2 {
		t.Fatalf("flaky endpoint served %d failures, want 2", got)
	}
	final, err := c.Follow(ctx, v.ID, nil)
	if err != nil || final.Status != StatusDone {
		t.Fatalf("Follow = %+v, %v", final, err)
	}
}

// TestSubmitTerminalNoRetry: a 4xx rejection (other than 429 backpressure) is
// a caller error — retrying cannot fix it, so the client must not.
func TestSubmitTerminalNoRetry(t *testing.T) {
	var requests atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	t.Cleanup(hs.Close)
	c := NewClient(hs.URL)
	c.Backoff = Backoff{Base: time.Millisecond, Retries: 4}

	if _, err := c.Submit(context.Background(), testRequest(1)); err == nil {
		t.Fatal("Submit succeeded against a 400 endpoint")
	}
	if got := requests.Load(); got != 1 {
		t.Fatalf("terminal 400 was retried: %d requests, want 1", got)
	}
}

// TestMultiClientSkipsDeadEndpoint: with one endpoint refusing connections,
// the batch fails over to the next endpoint in the rotation and completes.
func TestMultiClientSkipsDeadEndpoint(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // nothing listens here any more

	_, hs, _ := startServer(t, Config{Workers: 1}, fixedSim(telemetryFixture()))
	m, err := NewMultiClient([]string{deadURL, hs.URL})
	if err != nil {
		t.Fatal(err)
	}
	m.Backoff = Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	res, err := m.RunBatch(ctx, sim.DefaultConfig(), testJobs(t, 2), sim.RunOpt{Warmup: 1, Instructions: 1, Seed: 1, Samples: 1}, nil)
	if err != nil {
		t.Fatalf("RunBatch with a dead first endpoint: %v", err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
}

// TestMultiClientNoEndpoints: an empty endpoint list is a configuration
// error, reported at construction rather than first use.
func TestMultiClientNoEndpoints(t *testing.T) {
	if _, err := NewMultiClient(ParseEndpoints(" , ,")); err == nil {
		t.Fatal("NewMultiClient accepted an empty endpoint list")
	}
	eps := ParseEndpoints("http://a:1/, http://b:2")
	m, err := NewMultiClient(eps)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1", "http://b:2"}
	got := m.Endpoints()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Endpoints = %v, want %v", got, want)
	}
}

// TestMultiClientMidBatchFailover: the endpoint running a batch dies after
// accepting it — its event stream cuts out mid-flight. The batch must be
// resubmitted to the surviving endpoint and complete there.
func TestMultiClientMidBatchFailover(t *testing.T) {
	started := make(chan struct{}, 4)
	gate := make(chan struct{})
	defer close(gate)
	// Endpoint A accepts the batch and wedges; it will be killed abruptly at
	// the HTTP layer (the Server object stays alive for orderly cleanup).
	sa := New(Config{Workers: 1})
	sa.simFn = blockingSim(started, gate)
	sa.Start()
	t.Cleanup(sa.Close)
	hsA := httptest.NewServer(sa.Handler())
	killed := false
	t.Cleanup(func() {
		if !killed {
			hsA.Close()
		}
	})

	_, hsB, _ := startServer(t, Config{Workers: 1}, fixedSim(telemetryFixture()))

	m, err := NewMultiClient([]string{hsA.URL, hsB.URL})
	if err != nil {
		t.Fatal(err)
	}
	m.Backoff = Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	type out struct {
		res []sim.Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := m.RunBatch(ctx, sim.DefaultConfig(), testJobs(t, 2), sim.RunOpt{Warmup: 1, Instructions: 1, Seed: 1, Samples: 1}, nil)
		done <- out{res, err}
	}()

	waitStarted(t, started) // A is mid-simulation with the client following it
	hsA.CloseClientConnections()
	hsA.Close()
	killed = true

	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("batch did not survive endpoint death: %v", o.err)
		}
		if len(o.res) != 2 {
			t.Fatalf("got %d results, want 2", len(o.res))
		}
		for i, r := range o.res {
			if r.IPC != telemetryFixture().IPC {
				t.Fatalf("result %d = %+v, not from the surviving endpoint", i, r)
			}
		}
	case <-time.After(20 * time.Second):
		t.Fatal("failover batch never completed")
	}
}
