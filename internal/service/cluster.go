package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/dtrace"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// Cluster mode turns N psimd nodes into one logical simulation service.
// Every simulation already has a content address (the simcache SHA-256 key),
// so a consistent-hash ring over those keys gives each one an owner node:
// the single place it is computed and cached, which is what makes dedup
// exactly-once *cluster-wide* rather than per-node. A non-owner serves a
// request by checking its own store, then fetching the owner's cached entry
// (checksum-verified), then asking the owner to compute (proxy) — and if the
// owner is unreachable it fails over to computing locally, so a dead node
// degrades throughput, never availability. Idle nodes steal queued work from
// overloaded peers through the cluster.PendingTable the local execution path
// registers into while waiting for a simulation slot.

// simOutcome says how one simulation of a job was satisfied; it drives the
// job's hit/executed counters and the daemon's metrics.
type simOutcome uint8

const (
	// simExecutedLocal ran the simulation on this node.
	simExecutedLocal simOutcome = iota
	// simHitLocal was served by this node's store (disk or shared flight).
	simHitLocal
	// simHitRemote was served by a peer's cache with no new simulation.
	simHitRemote
	// simExecutedRemote was computed by a peer (proxied to the owner or
	// stolen by an idle node) on this job's behalf.
	simExecutedRemote
)

// hit reports whether the outcome avoided any new simulation.
func (o simOutcome) hit() bool { return o == simHitLocal || o == simHitRemote }

// String names the outcome for span annotations.
func (o simOutcome) String() string {
	switch o {
	case simHitLocal:
		return "hit-local"
	case simHitRemote:
		return "hit-remote"
	case simExecutedRemote:
		return "executed-remote"
	default:
		return "executed-local"
	}
}

// clusterSimPayload is everything a peer needs to execute one simulation —
// the opaque work-item payload of the steal protocol and the body of the
// proxy endpoint.
type clusterSimPayload struct {
	Config sim.Config `json:"config"`
	Spec   SimSpec    `json:"spec"`
	Opt    sim.RunOpt `json:"opt"`
}

// clusterSimRequest is the body of POST /v1/cluster/sim: a non-owner asking
// the owner to compute (or recall) one simulation.
type clusterSimRequest struct {
	clusterSimPayload
	// TimeoutMS carries the requester's remaining deadline; 0 means none.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// clusterSimResponse returns the result and whether the owner served it
// from cache (hit) or had to simulate.
type clusterSimResponse struct {
	Result sim.Result `json:"result"`
	Hit    bool       `json:"hit"`
}

// payloadOf serializes a unit for the cluster wire.
func payloadOf(cfg sim.Config, u unit, opt sim.RunOpt) clusterSimPayload {
	return clusterSimPayload{
		Config: cfg,
		Spec: SimSpec{
			Workload: u.w.Name,
			Base:     u.spec.Base,
			Variant:  u.spec.Variant.String(),
			L1:       string(u.spec.L1),
		},
		Opt: opt,
	}
}

// newClusterNode wires a cluster node to this server's store and execution
// pool. Cluster mode requires a store: the ring routes over cache keys, and
// cross-node fill needs somewhere to land.
func (s *Server) newClusterNode(opts cluster.Options) *cluster.Node {
	var n *cluster.Node
	n = cluster.NewNode(opts, cluster.Hooks{
		FetchLocal: func(key string) ([]byte, bool) {
			return s.cfg.Store.GetRaw(key)
		},
		StoreEntry: func(key string, body []byte) error {
			var res sim.Result
			if err := json.Unmarshal(body, &res); err != nil {
				return err
			}
			if err := s.cfg.Store.Put(key, res); err != nil {
				return err
			}
			// Wake any local waiter whose work a thief just completed.
			n.Pending().Deliver(key, body)
			return nil
		},
		Execute: func(ctx context.Context, item cluster.StealItem) ([]byte, error) {
			var pl clusterSimPayload
			if err := json.Unmarshal(item.Payload, &pl); err != nil {
				return nil, err
			}
			u, err := resolve(pl.Spec)
			if err != nil {
				return nil, err
			}
			// A traced victim hands its trace position along with the work:
			// the thief's execution spans join the same distributed trace.
			if psc, perr := dtrace.ParseTraceparent(item.Traceparent); perr == nil {
				sp := s.cfg.Flight.StartSpan(psc, "steal.exec")
				sp.Annotate(pl.Spec.Workload)
				ctx = dtrace.NewContext(ctx, s.cfg.Flight, sp.Context())
				defer func() {
					sp.Fail(err)
					sp.End()
				}()
			}
			var res sim.Result
			res, _, err = s.execUnit(ctx, pl.Config, u, pl.Opt)
			if err != nil {
				return nil, err
			}
			return json.Marshal(res)
		},
		IdleSlots: func() int { return cap(s.simSem) - len(s.simSem) },
		Draining:  s.Draining,
	})
	return n
}

// Cluster returns the server's cluster node (nil when not clustered).
func (s *Server) Cluster() *cluster.Node { return s.cluster }

// simulate satisfies one simulation of a job, routing through the cluster
// when one is configured: local cache, then the key's owner (its cache,
// then proxied execution), then local execution as the failover of last
// resort. Single-node servers go straight to local execution.
func (s *Server) simulate(ctx context.Context, cfg sim.Config, u unit, opt sim.RunOpt) (sim.Result, simOutcome, error) {
	if s.cluster == nil || s.cfg.Store == nil {
		res, hit, err := s.execUnit(ctx, cfg, u, opt)
		return res, localOutcome(hit), err
	}
	key := simcache.Key(cfg, u.spec, u.w, opt)
	// The local island first: it may hold the entry from an earlier fill.
	if res, ok := s.cfg.Store.GetCounted(key); ok {
		s.m.cacheHits.Add(1)
		if _, sp := dtrace.Start(ctx, "cache.lookup"); sp != nil {
			sp.Annotate("hit " + shortKey(key))
			sp.End()
		}
		return res, simHitLocal, nil
	}
	if owner, self := s.cluster.Owner(key); !self {
		if res, outcome, err, handled := s.remoteSimulate(ctx, owner, key, cfg, u, opt); handled {
			return res, outcome, err
		}
		// The owner is unreachable: this node computes — availability over
		// strict ownership. The heartbeat loop re-forms the ring around the
		// failure for subsequent keys.
		s.cluster.CountFailover()
		if _, sp := dtrace.Start(ctx, "failover"); sp != nil {
			sp.Annotate(owner.ID)
			sp.End()
		}
	}
	return s.stealableSimulate(ctx, key, cfg, u, opt)
}

func localOutcome(hit bool) simOutcome {
	if hit {
		return simHitLocal
	}
	return simExecutedLocal
}

// remoteSimulate asks the owner for key: first a checksum-verified fetch of
// its cached entry, then a proxied execution. handled is false when the
// owner could not be reached (or answered unusably) and the caller should
// fail over to local execution; a requester-side context error is returned
// as handled, since retrying locally cannot outlive the caller's deadline.
func (s *Server) remoteSimulate(ctx context.Context, owner cluster.NodeInfo, key string, cfg sim.Config, u unit, opt sim.RunOpt) (sim.Result, simOutcome, error, bool) {
	// cache.fill wraps the cross-node entry fetch; the span's context rides
	// the request header, so the owner's cache.serve span parents under it.
	fctx, fillSpan := dtrace.Start(ctx, "cache.fill")
	fillSpan.Annotate(owner.ID)
	body, ok, err := s.cluster.FetchRemote(fctx, owner.URL, key)
	if fillSpan != nil {
		if err != nil {
			fillSpan.Fail(err)
		} else if !ok {
			fillSpan.Annotate(owner.ID + " miss")
		}
		fillSpan.End()
	}
	if err == nil && ok {
		var res sim.Result
		if jerr := json.Unmarshal(body, &res); jerr == nil {
			_ = s.cfg.Store.Put(key, res) // warm the local island for next time
			s.cluster.CountRemoteHit()
			s.m.cacheHits.Add(1)
			return res, simHitRemote, nil, true
		}
		// Undecodable entry: fall through to a proxied execution.
	}
	if err != nil {
		if ctx.Err() != nil {
			return sim.Result{}, simExecutedRemote, ctx.Err(), true
		}
		s.cluster.ReportFailure(owner.ID)
		return sim.Result{}, 0, nil, false
	}

	req := clusterSimRequest{clusterSimPayload: payloadOf(cfg, u, opt)}
	if d, dok := ctx.Deadline(); dok {
		if ms := time.Until(d).Milliseconds(); ms > 0 {
			req.TimeoutMS = ms
		}
	}
	pctx, proxySpan := dtrace.Start(ctx, "proxy.exec")
	proxySpan.Annotate(owner.ID)
	resp, err := s.proxyExec(pctx, owner.URL, req)
	if proxySpan != nil {
		proxySpan.Fail(err)
		proxySpan.End()
	}
	if err != nil {
		if ctx.Err() != nil {
			return sim.Result{}, simExecutedRemote, ctx.Err(), true
		}
		s.cluster.ReportFailure(owner.ID)
		return sim.Result{}, 0, nil, false
	}
	_ = s.cfg.Store.Put(key, resp.Result)
	if resp.Hit {
		s.cluster.CountRemoteHit()
		s.m.cacheHits.Add(1)
		return resp.Result, simHitRemote, nil, true
	}
	s.cluster.CountProxied()
	return resp.Result, simExecutedRemote, nil, true
}

// proxyExec round-trips POST /v1/cluster/sim on the owner, accounting the
// latency in the cluster histogram.
func (s *Server) proxyExec(ctx context.Context, base string, req clusterSimRequest) (clusterSimResponse, error) {
	start := time.Now()
	defer func() { s.cluster.ObserveRemote(time.Since(start)) }()
	body, err := json.Marshal(req)
	if err != nil {
		return clusterSimResponse{}, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/cluster/sim", bytes.NewReader(body))
	if err != nil {
		return clusterSimResponse{}, err
	}
	hr.Header.Set("Content-Type", "application/json")
	dtrace.Inject(ctx, hr.Header)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		return clusterSimResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return clusterSimResponse{}, decodeError(resp)
	}
	var out clusterSimResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return clusterSimResponse{}, err
	}
	return out, nil
}

// stealableSimulate executes key locally, exposing it to idle peers while
// it waits for a simulation slot. Whichever comes first wins: a free local
// slot (the work is withdrawn from the steal table and runs here) or a
// thief's delivered result (served as a remote execution). A thief that
// claims the key and then dies is covered by the steal timeout, after which
// this node computes after all.
func (s *Server) stealableSimulate(ctx context.Context, key string, cfg sim.Config, u unit, opt sim.RunOpt) (sim.Result, simOutcome, error) {
	payload, err := json.Marshal(payloadOf(cfg, u, opt))
	if err != nil {
		res, hit, err := s.execUnit(ctx, cfg, u, opt)
		return res, localOutcome(hit), err
	}
	// A traced waiter registers its trace position with the work item, so a
	// thief's steal.exec span lands in the same trace.
	var tp string
	if sc := dtrace.SpanContextFrom(ctx); sc.Valid() {
		tp = sc.Traceparent()
	}
	p := s.cluster.Pending().Register(key, payload, tp)
	select {
	case s.simSem <- struct{}{}:
		if p.Withdraw() {
			defer func() { <-s.simSem }()
			res, hit, err := s.execHeld(ctx, cfg, u, opt)
			return res, localOutcome(hit), err
		}
		// A thief claimed the key between registration and our slot: give
		// the slot back and wait for the delivery instead of duplicating
		// the simulation.
		<-s.simSem
		return s.awaitStolen(ctx, key, cfg, u, opt, p)
	case <-p.Done():
		return s.stolenResult(ctx, key, cfg, u, opt, p.Result())
	case <-ctx.Done():
		p.Abandon()
		return sim.Result{}, simExecutedLocal, ctx.Err()
	}
}

// awaitStolen waits out a claimed key, falling back to local execution if
// the thief never delivers.
func (s *Server) awaitStolen(ctx context.Context, key string, cfg sim.Config, u unit, opt sim.RunOpt, p *cluster.Pending) (sim.Result, simOutcome, error) {
	_, waitSpan := dtrace.Start(ctx, "steal.wait")
	waitSpan.Annotate(shortKey(key))
	body, ok := p.Wait(ctx, s.cluster.StealTimeout())
	if waitSpan != nil {
		if !ok {
			waitSpan.Annotate(shortKey(key) + " timeout")
		}
		waitSpan.End()
	}
	if ok {
		return s.stolenResult(ctx, key, cfg, u, opt, body)
	}
	if err := ctx.Err(); err != nil {
		return sim.Result{}, simExecutedLocal, err
	}
	res, hit, err := s.execUnit(ctx, cfg, u, opt)
	return res, localOutcome(hit), err
}

// stolenResult decodes a thief's delivery; an undecodable body degrades to
// local execution (whose store lookup will usually find the entry the
// delivery hook already persisted).
func (s *Server) stolenResult(ctx context.Context, key string, cfg sim.Config, u unit, opt sim.RunOpt, body []byte) (sim.Result, simOutcome, error) {
	var res sim.Result
	if body != nil && json.Unmarshal(body, &res) == nil {
		return res, simExecutedRemote, nil
	}
	r, hit, err := s.execUnit(ctx, cfg, u, opt)
	return r, localOutcome(hit), err
}

// handleClusterSim serves POST /v1/cluster/sim: the owner side of proxied
// execution. It runs the simulation through the same store, single-flight,
// and semaphore as local jobs, so proxied and local requests for one key
// still cost one simulation.
func (s *Server) handleClusterSim(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, apiError{"draining"})
		return
	}
	var req clusterSimRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"bad cluster sim request: " + err.Error()})
		return
	}
	if req.Opt.Instructions == 0 {
		writeJSON(w, http.StatusBadRequest, apiError{"opt.Instructions must be positive"})
		return
	}
	u, err := resolve(req.Spec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	// A traced requester's proxy.exec span parents this node's execution:
	// cluster.exec is the owner-side half of the hop.
	if sc, ok := dtrace.Extract(r.Header); ok {
		sp := s.cfg.Flight.StartSpan(sc, "cluster.exec")
		sp.Annotate(req.Spec.Workload)
		ctx = dtrace.NewContext(ctx, s.cfg.Flight, sp.Context())
		defer sp.End()
	}
	res, hit, err := s.execUnit(ctx, req.Config, u, req.Opt)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, clusterSimResponse{Result: res, Hit: hit})
}

// shortKey truncates a content-addressed key to a span-annotation-sized
// prefix; the digest prefix is enough to correlate against cache entries.
func shortKey(key string) string {
	if len(key) > 16 {
		return key[:16]
	}
	return key
}
