package service

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dtrace"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/trace"
)

func clusterMisses(nodes []*clusterNode) uint64 {
	var n uint64
	for _, cn := range nodes {
		n += cn.store.Stats().Misses
	}
	return n
}

func clusterRemoteHits(nodes []*clusterNode) uint64 {
	var n uint64
	for _, cn := range nodes {
		n += cn.srv.Cluster().Stats().RemoteHits
	}
	return n
}

// TestE2ECluster: a figure produced against a 3-node cluster is byte-identical
// to the locally simulated figure, every unit is executed exactly once across
// the whole cluster (owner routing), and a repeat run replays entirely from
// the distributed cache — including warm cross-node fills for units the
// serving node does not own.
func TestE2ECluster(t *testing.T) {
	nodes := startCluster(t, 3, nil, func(i int, cfg *Config) {
		cfg.Workers = 4
		cfg.SimParallelism = 8
	})

	ws, err := experiments.WorkloadsByName([]string{"milc", "soplex"})
	if err != nil {
		t.Fatal(err)
	}
	o := experiments.DefaultOptions()
	o.Warmup = 20_000
	o.Instructions = 80_000
	o.Parallelism = 4
	o.Workloads = ws

	// Ground truth: simulate locally, no cache, no cluster.
	local, err := experiments.Figure8(o)
	if err != nil {
		t.Fatal(err)
	}

	endpoints := make([]string, len(nodes))
	for i, cn := range nodes {
		endpoints[i] = cn.hs.URL
	}
	mc, err := NewMultiClient(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	remote := o
	remote.Remote = mc

	first, err := experiments.Figure8(remote)
	if err != nil {
		t.Fatal(err)
	}
	if first.Render() != local.Render() {
		t.Fatalf("cluster figure differs from local:\n--- local ---\n%s--- cluster ---\n%s",
			local.Render(), first.Render())
	}
	simulated := clusterMisses(nodes)
	if simulated == 0 {
		t.Fatal("first cluster run executed no simulations")
	}

	// A second run lands on the next endpoint in the rotation and must be
	// served wholly from the distributed cache: zero additional executions
	// anywhere, with the units this endpoint does not own arriving as
	// checksum-verified cross-node fills.
	second, err := experiments.Figure8(remote)
	if err != nil {
		t.Fatal(err)
	}
	if second.Render() != local.Render() {
		t.Fatal("second cluster run produced a different figure")
	}
	if got := clusterMisses(nodes); got != simulated {
		t.Errorf("repeat run executed %d duplicate simulations", got-simulated)
	}
	if clusterRemoteHits(nodes) == 0 {
		t.Error("repeat run on a different endpoint produced no warm cross-node hits")
	}
}

// TestE2EClusterNodeFailure: a node that owns part of the figure dies in the
// middle of a batch. Its work fails over to the node serving the client, and
// the figure still comes out byte-identical — a dead node costs duplicated
// work, never correctness or availability.
func TestE2EClusterNodeFailure(t *testing.T) {
	// Non-client nodes simulate slowly so the kill reliably lands mid-batch;
	// slowSim is the real simulator plus a delay, so results are unchanged.
	slowSim := func(ctx context.Context, cfg sim.Config, spec sim.PrefSpec, w trace.Workload, opt sim.RunOpt) (sim.Result, error) {
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		}
		return sim.RunContext(ctx, cfg, spec, w, opt)
	}
	nodes := startCluster(t, 3, slowSim, func(i int, cfg *Config) {
		cfg.Workers = 4
		cfg.SimParallelism = 4
	})

	ws, err := experiments.WorkloadsByName([]string{"milc", "soplex"})
	if err != nil {
		t.Fatal(err)
	}
	o := experiments.DefaultOptions()
	o.Warmup = 20_000
	o.Instructions = 80_000
	o.Parallelism = 4
	o.Workloads = ws

	local, err := experiments.Figure8(o)
	if err != nil {
		t.Fatal(err)
	}

	// The client talks only to node 0; nodes 1 and 2 receive proxied work.
	mc, err := NewMultiClient([]string{nodes[0].hs.URL})
	if err != nil {
		t.Fatal(err)
	}
	remote := o
	remote.Remote = mc

	type out struct {
		fig *experiments.Fig8Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		fig, err := experiments.Figure8(remote)
		done <- out{fig, err}
	}()

	// Kill the first non-client node observed executing proxied work. The
	// kill is abrupt — connections severed at the HTTP layer — while the
	// Server object stays alive for orderly test cleanup.
	victim := -1
	deadline := time.After(60 * time.Second)
poll:
	for {
		for i := 1; i < len(nodes); i++ {
			if nodes[i].execs.Load() > 0 {
				victim = i
				break poll
			}
		}
		select {
		case o := <-done:
			// The batch outran the poll; nothing was mid-flight to kill,
			// but parity must still hold.
			if o.err != nil {
				t.Fatal(o.err)
			}
			if o.fig.Render() != local.Render() {
				t.Fatal("cluster figure differs from local")
			}
			t.Skip("batch completed before a proxied execution was observed; kill not exercised")
		case <-deadline:
			t.Fatal("no node ever received proxied work")
		case <-time.After(time.Millisecond):
		}
	}
	nodes[victim].hs.CloseClientConnections()
	nodes[victim].hs.Close()

	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("batch did not survive node %d's death: %v", victim, o.err)
		}
		if o.fig.Render() != local.Render() {
			t.Fatalf("post-failover figure differs from local:\n--- local ---\n%s--- cluster ---\n%s",
				local.Render(), o.fig.Render())
		}
	case <-time.After(120 * time.Second):
		t.Fatalf("batch never completed after node %d was killed", victim)
	}
	if got := nodes[0].srv.Cluster().Stats().Failovers; got == 0 {
		t.Error("client node recorded no failovers despite the owner dying mid-batch")
	}
}

// TestE2EClusterTrace runs a full figure against a traced 3-node cluster the
// way `pexp -server a,b,c -trace-out` does and asserts the observability
// contract: every client-started trace stitches into ONE connected span tree,
// and at least one of them crosses nodes (the serving daemon plus the peer
// that owned or computed a unit). When E2E_FLIGHT_DIR is set (CI does), each
// node's flight-recorder dump is written there as a build artifact.
func TestE2EClusterTrace(t *testing.T) {
	recs := make([]*dtrace.Recorder, 3)
	nodes := startCluster(t, 3, nil, func(i int, cfg *Config) {
		cfg.Workers = 4
		cfg.SimParallelism = 8
		recs[i] = dtrace.NewRecorder(fmt.Sprintf("node%d", i), 0)
		cfg.Flight = recs[i]
		cfg.Cluster.Flight = recs[i]
	})

	ws, err := experiments.WorkloadsByName([]string{"milc", "soplex"})
	if err != nil {
		t.Fatal(err)
	}
	o := experiments.DefaultOptions()
	o.Warmup = 20_000
	o.Instructions = 80_000
	o.Parallelism = 4
	o.Workloads = ws

	endpoints := make([]string, len(nodes))
	for i, cn := range nodes {
		endpoints[i] = cn.hs.URL
	}
	mc, err := NewMultiClient(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	o.Remote = mc
	client := dtrace.NewRecorder("pexp", 0)
	o.Context = dtrace.NewContext(context.Background(), client, dtrace.SpanContext{})
	if _, err := experiments.Figure2(o); err != nil {
		t.Fatal(err)
	}

	sets := [][]dtrace.SpanData{client.Snapshot(dtrace.Filter{})}
	for _, r := range recs {
		sets = append(sets, r.Snapshot(dtrace.Filter{}))
	}
	spans := dtrace.Stitch(sets...)

	if dir := os.Getenv("E2E_FLIGHT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, r := range append([]*dtrace.Recorder{client}, recs...) {
			name := "pexp"
			if i > 0 {
				name = fmt.Sprintf("node%d", i-1)
			}
			f, err := os.Create(filepath.Join(dir, name+"-flight.jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			if err := r.WriteJSONL(f, dtrace.Filter{}); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}

	traces := dtrace.TraceIDs(sets[0])
	if len(traces) == 0 {
		t.Fatal("client recorded no traces")
	}
	crossed := 0
	for _, tr := range traces {
		st := dtrace.TreeOf(tr, spans)
		if !st.Connected() {
			t.Errorf("trace %s: %d spans, %d roots, %d orphans over %v — want one connected tree",
				tr, st.Spans, st.Roots, st.Orphans, st.Nodes)
		}
		daemons := 0
		for _, n := range st.Nodes {
			if n != "pexp" {
				daemons++
			}
		}
		if daemons >= 2 {
			crossed++
		}
	}
	if crossed == 0 {
		t.Errorf("no trace covered 2+ daemon nodes — cross-node hops (cache.fill/proxy.exec) lost the traceparent")
	}
	t.Logf("stitched %d spans across %d traces; %d trace(s) crossed nodes", len(spans), len(traces), crossed)
}
