package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/trace"
)

func clusterMisses(nodes []*clusterNode) uint64 {
	var n uint64
	for _, cn := range nodes {
		n += cn.store.Stats().Misses
	}
	return n
}

func clusterRemoteHits(nodes []*clusterNode) uint64 {
	var n uint64
	for _, cn := range nodes {
		n += cn.srv.Cluster().Stats().RemoteHits
	}
	return n
}

// TestE2ECluster: a figure produced against a 3-node cluster is byte-identical
// to the locally simulated figure, every unit is executed exactly once across
// the whole cluster (owner routing), and a repeat run replays entirely from
// the distributed cache — including warm cross-node fills for units the
// serving node does not own.
func TestE2ECluster(t *testing.T) {
	nodes := startCluster(t, 3, nil, func(i int, cfg *Config) {
		cfg.Workers = 4
		cfg.SimParallelism = 8
	})

	ws, err := experiments.WorkloadsByName([]string{"milc", "soplex"})
	if err != nil {
		t.Fatal(err)
	}
	o := experiments.DefaultOptions()
	o.Warmup = 20_000
	o.Instructions = 80_000
	o.Parallelism = 4
	o.Workloads = ws

	// Ground truth: simulate locally, no cache, no cluster.
	local, err := experiments.Figure8(o)
	if err != nil {
		t.Fatal(err)
	}

	endpoints := make([]string, len(nodes))
	for i, cn := range nodes {
		endpoints[i] = cn.hs.URL
	}
	mc, err := NewMultiClient(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	remote := o
	remote.Remote = mc

	first, err := experiments.Figure8(remote)
	if err != nil {
		t.Fatal(err)
	}
	if first.Render() != local.Render() {
		t.Fatalf("cluster figure differs from local:\n--- local ---\n%s--- cluster ---\n%s",
			local.Render(), first.Render())
	}
	simulated := clusterMisses(nodes)
	if simulated == 0 {
		t.Fatal("first cluster run executed no simulations")
	}

	// A second run lands on the next endpoint in the rotation and must be
	// served wholly from the distributed cache: zero additional executions
	// anywhere, with the units this endpoint does not own arriving as
	// checksum-verified cross-node fills.
	second, err := experiments.Figure8(remote)
	if err != nil {
		t.Fatal(err)
	}
	if second.Render() != local.Render() {
		t.Fatal("second cluster run produced a different figure")
	}
	if got := clusterMisses(nodes); got != simulated {
		t.Errorf("repeat run executed %d duplicate simulations", got-simulated)
	}
	if clusterRemoteHits(nodes) == 0 {
		t.Error("repeat run on a different endpoint produced no warm cross-node hits")
	}
}

// TestE2EClusterNodeFailure: a node that owns part of the figure dies in the
// middle of a batch. Its work fails over to the node serving the client, and
// the figure still comes out byte-identical — a dead node costs duplicated
// work, never correctness or availability.
func TestE2EClusterNodeFailure(t *testing.T) {
	// Non-client nodes simulate slowly so the kill reliably lands mid-batch;
	// slowSim is the real simulator plus a delay, so results are unchanged.
	slowSim := func(ctx context.Context, cfg sim.Config, spec sim.PrefSpec, w trace.Workload, opt sim.RunOpt) (sim.Result, error) {
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		}
		return sim.RunContext(ctx, cfg, spec, w, opt)
	}
	nodes := startCluster(t, 3, slowSim, func(i int, cfg *Config) {
		cfg.Workers = 4
		cfg.SimParallelism = 4
	})

	ws, err := experiments.WorkloadsByName([]string{"milc", "soplex"})
	if err != nil {
		t.Fatal(err)
	}
	o := experiments.DefaultOptions()
	o.Warmup = 20_000
	o.Instructions = 80_000
	o.Parallelism = 4
	o.Workloads = ws

	local, err := experiments.Figure8(o)
	if err != nil {
		t.Fatal(err)
	}

	// The client talks only to node 0; nodes 1 and 2 receive proxied work.
	mc, err := NewMultiClient([]string{nodes[0].hs.URL})
	if err != nil {
		t.Fatal(err)
	}
	remote := o
	remote.Remote = mc

	type out struct {
		fig *experiments.Fig8Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		fig, err := experiments.Figure8(remote)
		done <- out{fig, err}
	}()

	// Kill the first non-client node observed executing proxied work. The
	// kill is abrupt — connections severed at the HTTP layer — while the
	// Server object stays alive for orderly test cleanup.
	victim := -1
	deadline := time.After(60 * time.Second)
poll:
	for {
		for i := 1; i < len(nodes); i++ {
			if nodes[i].execs.Load() > 0 {
				victim = i
				break poll
			}
		}
		select {
		case o := <-done:
			// The batch outran the poll; nothing was mid-flight to kill,
			// but parity must still hold.
			if o.err != nil {
				t.Fatal(o.err)
			}
			if o.fig.Render() != local.Render() {
				t.Fatal("cluster figure differs from local")
			}
			t.Skip("batch completed before a proxied execution was observed; kill not exercised")
		case <-deadline:
			t.Fatal("no node ever received proxied work")
		case <-time.After(time.Millisecond):
		}
	}
	nodes[victim].hs.CloseClientConnections()
	nodes[victim].hs.Close()

	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("batch did not survive node %d's death: %v", victim, o.err)
		}
		if o.fig.Render() != local.Render() {
			t.Fatalf("post-failover figure differs from local:\n--- local ---\n%s--- cluster ---\n%s",
				local.Render(), o.fig.Render())
		}
	case <-time.After(120 * time.Second):
		t.Fatalf("batch never completed after node %d was killed", victim)
	}
	if got := nodes[0].srv.Cluster().Stats().Failovers; got == 0 {
		t.Error("client node recorded no failovers despite the owner dying mid-batch")
	}
}
