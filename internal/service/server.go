package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/dtrace"
)

// decodeSimRequest parses a POST /v1/sims body. Factored out of the handler
// so the fuzz harness exercises the exact decode path the daemon runs on
// arbitrary network input.
func decodeSimRequest(r io.Reader) (SimRequest, error) {
	var req SimRequest
	if err := json.NewDecoder(r).Decode(&req); err != nil {
		return SimRequest{}, err
	}
	return req, nil
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sims", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	if s.cluster != nil {
		// Peer-facing endpoints: membership gossip, work stealing, the
		// cross-node cache protocol, and owner-routed simulation.
		ch := s.cluster.Handler()
		mux.Handle("POST "+cluster.PathHeartbeat, ch)
		mux.Handle("POST "+cluster.PathSteal, ch)
		mux.Handle("GET "+cluster.PathState, ch)
		mux.Handle("GET "+cluster.PathCache+"{key}", ch)
		mux.Handle("PUT "+cluster.PathCache+"{key}", ch)
		mux.HandleFunc("POST /v1/cluster/sim", s.handleClusterSim)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.httpRequests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := decodeSimRequest(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"bad request body: " + err.Error()})
		return
	}
	// A traceparent header parents every server-side span of this batch
	// under the caller's trace; Extract degrades malformed values to
	// untraced rather than corrupting the trace identity.
	tsc, _ := dtrace.Extract(r.Header)
	j, err := s.submit(req, tsc)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Backpressure: tell the client when to come back rather than
		// buffering unbounded work.
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeJSON(w, http.StatusTooManyRequests, apiError{err.Error()})
		return
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.cancelJob(id) {
		writeJSON(w, http.StatusNotFound, apiError{"unknown job"})
		return
	}
	j, _ := s.lookup(id)
	writeJSON(w, http.StatusAccepted, j.view())
}

// handleEvents streams a job's lifecycle as Server-Sent Events. The stream
// replays the job's full history (every stream starts at seq 1), follows
// live updates, and ends after the terminal event — so a subscriber that
// connects at any point observes the same ordered sequence:
// queued, running, progress×N, then done/failed/canceled.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"unknown job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{"streaming unsupported"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	idx := 0
	for {
		j.mu.Lock()
		for idx < len(j.events) {
			e := j.events[idx]
			idx++
			j.mu.Unlock()
			data, _ := json.Marshal(e)
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
			fl.Flush()
			if e.Terminal() {
				return
			}
			j.mu.Lock()
		}
		ch := j.changed
		j.mu.Unlock()
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

// handleFlight serves the node's span flight recorder as JSONL, one SpanData
// per line, oldest-first. Query parameters filter the dump:
//
//	?trace=<32 hex>  only spans of that trace
//	?errors=1        only failed spans
//	?limit=N         the newest N spans after the other filters
//
// 404 when the daemon runs without a recorder (Config.Flight nil).
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Flight == nil {
		writeJSON(w, http.StatusNotFound, apiError{"flight recorder disabled"})
		return
	}
	f := dtrace.Filter{Trace: r.URL.Query().Get("trace")}
	if v := r.URL.Query().Get("errors"); v == "1" || v == "true" {
		f.ErrorsOnly = true
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, apiError{"bad limit"})
			return
		}
		f.Limit = n
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	_ = s.cfg.Flight.WriteJSONL(w, f)
}
