package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/trace"
)

// simFunc mirrors Server.simFn so tests can substitute controllable sims.
type simFunc func(ctx context.Context, cfg sim.Config, spec sim.PrefSpec, w trace.Workload, opt sim.RunOpt) (sim.Result, error)

// startServer builds, starts, and registers cleanup for a test daemon. fn
// replaces the real simulator when non-nil.
func startServer(t *testing.T, cfg Config, fn simFunc) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s := New(cfg)
	if fn != nil {
		s.simFn = fn
	}
	s.Start()
	t.Cleanup(s.Close)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs, NewClient(hs.URL)
}

// testRequest is a minimal valid request of n identical simulations.
func testRequest(n int) SimRequest {
	jobs := make([]SimSpec, n)
	for i := range jobs {
		jobs[i] = SimSpec{Workload: "milc", Base: "spp", Variant: "psa-sd"}
	}
	return SimRequest{Jobs: jobs, Opt: sim.RunOpt{Warmup: 1, Instructions: 1, Seed: 1, Samples: 1}}
}

// rawSubmit posts without the client's 429-retry loop, so tests can observe
// the rejection itself.
func rawSubmit(t *testing.T, url string, req SimRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sims", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// blockingSim returns a sim function that signals each start on started and
// then holds until gate closes (or the context dies).
func blockingSim(started chan<- struct{}, gate <-chan struct{}) simFunc {
	return func(ctx context.Context, cfg sim.Config, spec sim.PrefSpec, w trace.Workload, opt sim.RunOpt) (sim.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-gate:
			return sim.Result{Workload: w.Name, Spec: spec.String(), IPC: 1}, nil
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		}
	}
}

func waitStarted(t *testing.T, started <-chan struct{}) {
	t.Helper()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("simulation never started")
	}
}

// TestQueueBackpressure: with one worker busy and a one-slot queue occupied,
// the next submission is rejected with 429 and a Retry-After hint rather than
// buffered; once the backlog clears, submissions are accepted again.
func TestQueueBackpressure(t *testing.T) {
	started := make(chan struct{}, 4)
	gate := make(chan struct{})
	_, hs, c := startServer(t, Config{Workers: 1, QueueDepth: 1, SimParallelism: 1}, blockingSim(started, gate))

	a := rawSubmit(t, hs.URL, testRequest(1))
	if a.StatusCode != http.StatusAccepted {
		t.Fatalf("job A status = %d, want 202", a.StatusCode)
	}
	waitStarted(t, started) // A is off the queue and inside the simulator

	b := rawSubmit(t, hs.URL, testRequest(1))
	if b.StatusCode != http.StatusAccepted {
		t.Fatalf("job B status = %d, want 202 (queue has one slot)", b.StatusCode)
	}
	rej := rawSubmit(t, hs.URL, testRequest(1))
	if rej.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job C status = %d, want 429", rej.StatusCode)
	}
	if ra := rej.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carried no Retry-After header")
	}

	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, id := range []string{"j1", "j2"} {
		v, err := c.Follow(ctx, id, nil)
		if err != nil {
			t.Fatalf("follow %s: %v", id, err)
		}
		if v.Status != StatusDone {
			t.Errorf("job %s finished %s, want done", id, v.Status)
		}
	}
	// Backlog cleared: admission works again.
	if resp := rawSubmit(t, hs.URL, testRequest(1)); resp.StatusCode != http.StatusAccepted {
		t.Errorf("post-backlog submission status = %d, want 202", resp.StatusCode)
	}
}

// TestDeadlineCancellation: a request deadline propagates as a context into
// the simulation, which stops and fails the job with a deadline error.
func TestDeadlineCancellation(t *testing.T) {
	started := make(chan struct{}, 1)
	gate := make(chan struct{}) // never closed: only the deadline can end the sim
	_, _, c := startServer(t, Config{Workers: 1}, blockingSim(started, gate))

	req := testRequest(1)
	req.TimeoutMS = 50
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Follow(ctx, v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusFailed {
		t.Fatalf("status = %s, want failed", final.Status)
	}
	if !strings.Contains(final.Error, "deadline") {
		t.Errorf("error = %q, want a deadline error", final.Error)
	}
}

// TestCancelRunningJob: DELETE on a running job cancels its context; the job
// reports canceled, not failed.
func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	gate := make(chan struct{})
	_, _, c := startServer(t, Config{Workers: 1}, blockingSim(started, gate))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := c.Submit(ctx, testRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	waitStarted(t, started)
	if err := c.Cancel(ctx, v.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Follow(ctx, v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCanceled {
		t.Errorf("status = %s, want canceled", final.Status)
	}
}

// TestCrossRequestSingleFlight: N concurrent identical requests cost one
// simulation; the rest are served by the in-flight share or the disk entry it
// leaves behind.
func TestCrossRequestSingleFlight(t *testing.T) {
	const clients = 4
	store, err := simcache.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var executions atomic.Int32
	started := make(chan struct{}, clients)
	gate := make(chan struct{})
	inner := blockingSim(started, gate)
	counting := func(ctx context.Context, cfg sim.Config, spec sim.PrefSpec, w trace.Workload, opt sim.RunOpt) (sim.Result, error) {
		executions.Add(1)
		return inner(ctx, cfg, spec, w, opt)
	}
	s, _, c := startServer(t, Config{Store: store, Workers: clients, SimParallelism: clients}, counting)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	views := make([]JobView, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Submit(ctx, testRequest(1))
			if err != nil {
				errs[i] = err
				return
			}
			views[i], errs[i] = c.Follow(ctx, v.ID, nil)
		}(i)
	}
	// Hold the gate until every job is running, so the requests genuinely
	// overlap; then let the single owner finish.
	deadline := time.Now().Add(5 * time.Second)
	for s.m.jobsRunning.Load() != clients {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs running", s.m.jobsRunning.Load(), clients)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if views[i].Status != StatusDone || len(views[i].Results) != 1 {
			t.Fatalf("client %d: status %s, %d results", i, views[i].Status, len(views[i].Results))
		}
		got, _ := json.Marshal(views[i].Results[0])
		want, _ := json.Marshal(views[0].Results[0])
		if !bytes.Equal(got, want) {
			t.Errorf("client %d received a different result", i)
		}
	}
	if n := executions.Load(); n != 1 {
		t.Errorf("%d clients executed %d simulations, want 1", clients, n)
	}
	if st := store.Stats(); st.Misses != 1 || st.Hits+st.Shared != clients-1 {
		t.Errorf("cache stats = %+v, want 1 miss and %d hits+shared", st, clients-1)
	}
}

// TestSSEEventOrdering: a subscriber observes queued, running, one progress
// per simulation with monotonically increasing Done, then the terminal done —
// with strictly sequential Seq — and a late subscriber replays the identical
// history.
func TestSSEEventOrdering(t *testing.T) {
	const batch = 3
	quick := func(ctx context.Context, cfg sim.Config, spec sim.PrefSpec, w trace.Workload, opt sim.RunOpt) (sim.Result, error) {
		return sim.Result{Workload: w.Name, Spec: spec.String(), IPC: 1}, nil
	}
	_, _, c := startServer(t, Config{Workers: 1, SimParallelism: 1}, quick)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := c.Submit(ctx, testRequest(batch))
	if err != nil {
		t.Fatal(err)
	}
	var live []Event
	if _, err := c.Follow(ctx, v.ID, func(e Event) { live = append(live, e) }); err != nil {
		t.Fatal(err)
	}
	checkSequence := func(events []Event) {
		t.Helper()
		want := []string{"queued", "running", "progress", "progress", "progress", "done"}
		if len(events) != len(want) {
			t.Fatalf("got %d events, want %d: %+v", len(events), len(want), events)
		}
		lastDone := 0
		for i, e := range events {
			if e.Type != want[i] {
				t.Errorf("event %d type = %s, want %s", i, e.Type, want[i])
			}
			if e.Seq != i+1 {
				t.Errorf("event %d seq = %d, want %d", i, e.Seq, i+1)
			}
			if e.Done < lastDone {
				t.Errorf("event %d Done went backwards: %d after %d", i, e.Done, lastDone)
			}
			lastDone = e.Done
		}
		final := events[len(events)-1]
		if final.Done != batch || final.Status != StatusDone {
			t.Errorf("terminal event = %+v, want Done=%d status=done", final, batch)
		}
	}
	checkSequence(live)

	// A subscriber connecting after completion replays the same sequence.
	var replay []Event
	if err := c.Events(ctx, v.ID, func(e Event) { replay = append(replay, e) }); err != nil {
		t.Fatal(err)
	}
	checkSequence(replay)
}

// TestGracefulDrain: draining stops admission (503 on submit and /healthz)
// while already-accepted jobs — running and queued — finish normally.
func TestGracefulDrain(t *testing.T) {
	started := make(chan struct{}, 4)
	gate := make(chan struct{})
	s, hs, c := startServer(t, Config{Workers: 1, QueueDepth: 4}, blockingSim(started, gate))

	a := rawSubmit(t, hs.URL, testRequest(1))
	waitStarted(t, started) // A running
	b := rawSubmit(t, hs.URL, testRequest(1))
	if a.StatusCode != http.StatusAccepted || b.StatusCode != http.StatusAccepted {
		t.Fatalf("pre-drain submissions = %d, %d, want 202", a.StatusCode, b.StatusCode)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(10 * time.Second) }()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	if resp := rawSubmit(t, hs.URL, testRequest(1)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz while draining = %d, want 503", hresp.StatusCode)
	}

	close(gate) // accepted jobs finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, id := range []string{"j1", "j2"} {
		v, err := c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status != StatusDone {
			t.Errorf("job %s drained as %s, want done", id, v.Status)
		}
	}
}

// TestDrainTimeoutForceCancels: jobs that outlive the drain budget are
// force-canceled at the next simulation boundary and report canceled.
func TestDrainTimeoutForceCancels(t *testing.T) {
	started := make(chan struct{}, 1)
	gate := make(chan struct{}) // never closed: the job can only end by cancellation
	s, _, c := startServer(t, Config{Workers: 1}, blockingSim(started, gate))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := c.Submit(ctx, testRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	waitStarted(t, started)
	if err := s.Drain(50 * time.Millisecond); err == nil {
		t.Error("drain of a stuck job returned nil, want timeout error")
	}
	final, err := c.Job(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCanceled {
		t.Errorf("status = %s, want canceled", final.Status)
	}
}

// TestSubmitValidation: malformed requests are rejected with 400 before any
// work is queued.
func TestSubmitValidation(t *testing.T) {
	_, hs, _ := startServer(t, Config{Workers: 1, MaxBatch: 2}, nil)
	cases := []struct {
		name string
		req  SimRequest
	}{
		{"empty batch", SimRequest{Opt: sim.RunOpt{Instructions: 1}}},
		{"oversized batch", testRequest(3)},
		{"zero instructions", func() SimRequest { r := testRequest(1); r.Opt.Instructions = 0; return r }()},
		{"unknown workload", func() SimRequest { r := testRequest(1); r.Jobs[0].Workload = "nope"; return r }()},
		{"unknown variant", func() SimRequest { r := testRequest(1); r.Jobs[0].Variant = "nope"; return r }()},
		{"unknown l1", func() SimRequest { r := testRequest(1); r.Jobs[0].L1 = "nope"; return r }()},
	}
	for _, tc := range cases {
		if resp := rawSubmit(t, hs.URL, tc.req); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
}
