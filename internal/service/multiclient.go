package service

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/dtrace"
	"repro/internal/experiments"
	"repro/internal/progress"
	"repro/internal/sim"
)

// MultiClient fans pexp batches across several psimd endpoints — the client
// side of cluster mode. Each batch is pinned to one endpoint (jobs are
// in-memory daemon state, so a batch cannot migrate mid-flight), endpoints
// are rotated batch-to-batch to spread load, and a batch whose endpoint dies
// is resubmitted to the next endpoint in the rotation. The cluster's shared
// content-addressed cache makes resubmission cheap: units the dead node
// already finished were cached on their owning nodes and replay as hits.
type MultiClient struct {
	clients []*Client
	next    atomic.Uint64
	// Backoff paces retry cycles once every endpoint has been tried.
	// The zero value uses the defaults.
	Backoff Backoff
}

// ParseEndpoints splits a comma-separated -server value into cleaned base
// URLs, dropping empties.
func ParseEndpoints(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, strings.TrimRight(e, "/"))
		}
	}
	return out
}

// NewMultiClient builds a client over one or more endpoints. Per-endpoint
// submit retries are kept short (one transient retry) because failing over
// to the next endpoint beats hammering a dead one.
func NewMultiClient(endpoints []string) (*MultiClient, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("psimd: no endpoints")
	}
	m := &MultiClient{}
	for _, e := range endpoints {
		c := NewClient(e)
		if len(endpoints) > 1 {
			c.Backoff = Backoff{Retries: 1, Base: 50 * time.Millisecond, Max: time.Second}
		}
		m.clients = append(m.clients, c)
	}
	return m, nil
}

// Endpoints returns the configured base URLs.
func (m *MultiClient) Endpoints() []string {
	out := make([]string, len(m.clients))
	for i, c := range m.clients {
		out[i] = c.BaseURL
	}
	return out
}

// RunBatch implements experiments.BatchRunner with endpoint failover: the
// batch goes to the next endpoint in the rotation; a transient failure
// (endpoint unreachable, 5xx, job lost mid-flight) moves it to the following
// endpoint. After a full cycle of failures the schedule backs off
// exponentially before the next cycle, up to Backoff.Retries cycles.
func (m *MultiClient) RunBatch(ctx context.Context, cfg sim.Config, jobs []experiments.Job, opt sim.RunOpt, tr *progress.Tracker) (res []sim.Result, err error) {
	req, err := buildSimRequest(ctx, cfg, jobs, opt)
	if err != nil {
		return nil, err
	}
	// One batch span roots the whole failover saga; each (re)submission is a
	// child batch.attempt naming its endpoint, so a stitched trace shows
	// exactly which endpoints the batch tried and where it landed.
	ctx, batchSpan := dtrace.Start(ctx, "batch")
	if batchSpan != nil {
		batchSpan.Annotate(fmt.Sprintf("%d jobs", len(jobs)))
		defer func() {
			batchSpan.Fail(err)
			batchSpan.End()
		}()
	}
	bp := &batchProgress{}
	start := int(m.next.Add(1)-1) % len(m.clients)
	attempts := len(m.clients) * (m.Backoff.retries() + 1)
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		c := m.clients[(start+attempt)%len(m.clients)]
		actx, asp := dtrace.Start(ctx, "batch.attempt")
		if asp != nil {
			ref := c.BaseURL
			if attempt > 0 {
				ref = "retry " + c.BaseURL
			}
			asp.Annotate(ref)
		}
		res, err := c.runBatch(actx, req, len(jobs), tr, bp)
		if asp != nil {
			asp.Fail(err)
			asp.End()
		}
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !transientErr(err) {
			return nil, err
		}
		lastErr = err
		if attempt == attempts-1 {
			break
		}
		// Within the first pass each endpoint is fresh — fail over
		// immediately. Once the whole rotation has failed, back off before
		// cycling again.
		if cycle := (attempt + 1) / len(m.clients); cycle > 0 {
			if serr := m.Backoff.sleep(ctx, cycle-1, 0); serr != nil {
				return nil, serr
			}
		}
	}
	return nil, fmt.Errorf("psimd: batch failed on all %d endpoints: %w", len(m.clients), lastErr)
}
