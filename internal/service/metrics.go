package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
)

// latWindow is how many recent job latencies back the p50/p99 estimates.
const latWindow = 1024

// metrics holds the daemon's counters. Gauges derived from live structures
// (queue depth, in-flight sims) are read at scrape time.
type metrics struct {
	start time.Time

	httpRequests  atomic.Uint64
	jobsSubmitted atomic.Uint64
	jobsRejected  atomic.Uint64
	jobsDone      atomic.Uint64
	jobsFailed    atomic.Uint64
	jobsCanceled  atomic.Uint64
	jobsRunning   atomic.Int64

	cacheHits    atomic.Uint64 // sims served without executing (disk or shared flight)
	simsExecuted atomic.Uint64 // sims that actually ran

	pfIssued  atomic.Uint64 // L2-engine prefetches issued across completed sims
	pfCross4K atomic.Uint64 // ...of which crossed a 4KB page boundary

	latMu sync.Mutex
	lats  [latWindow]float64 // seconds, ring buffer
	latN  uint64             // total observations

	// queueWait distributes admission-to-pickup delay: how long jobs sit in
	// the admission queue before a worker starts them. Under load this is
	// the histogram that says whether the queue bound or the worker pool is
	// the bottleneck.
	queueWait cluster.Histogram
}

func newMetrics() metrics {
	return metrics{start: time.Now(), queueWait: cluster.NewLatencyHistogram()}
}

// observeLatency records one finished job's wall-clock duration.
func (m *metrics) observeLatency(d time.Duration) {
	m.latMu.Lock()
	m.lats[m.latN%latWindow] = d.Seconds()
	m.latN++
	m.latMu.Unlock()
}

// quantiles estimates job-latency quantiles over the recent window.
func (m *metrics) quantiles(qs ...float64) []float64 {
	m.latMu.Lock()
	n := int(m.latN)
	if n > latWindow {
		n = latWindow
	}
	window := make([]float64, n)
	copy(window, m.lats[:n])
	m.latMu.Unlock()
	out := make([]float64, len(qs))
	if n == 0 {
		return out
	}
	sort.Float64s(window)
	for i, q := range qs {
		idx := int(q * float64(n-1))
		out[i] = window[idx]
	}
	return out
}

// writeMetrics renders the Prometheus text exposition format.
func (s *Server) writeMetrics(w io.Writer) {
	m := &s.m
	gauge := func(name, help string, v interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	up := 1
	if s.Draining() {
		up = 0
	}
	gauge("psimd_up", "1 while accepting jobs, 0 while draining.", up)
	gauge("psimd_queue_depth", "Jobs admitted but not yet picked up by a worker.", len(s.queue))
	gauge("psimd_queue_capacity", "Admission queue bound.", cap(s.queue))
	gauge("psimd_jobs_inflight", "Jobs currently executing.", m.jobsRunning.Load())
	gauge("psimd_sims_inflight", "Simulations currently executing.", len(s.simSem))
	gauge("psimd_sim_parallelism", "Simulation worker-pool bound.", cap(s.simSem))

	counter("psimd_http_requests_total", "API requests served.", m.httpRequests.Load())
	fmt.Fprintf(w, "# HELP psimd_jobs_total Jobs by terminal disposition.\n# TYPE psimd_jobs_total counter\n")
	fmt.Fprintf(w, "psimd_jobs_total{status=\"submitted\"} %d\n", m.jobsSubmitted.Load())
	fmt.Fprintf(w, "psimd_jobs_total{status=\"rejected\"} %d\n", m.jobsRejected.Load())
	fmt.Fprintf(w, "psimd_jobs_total{status=\"done\"} %d\n", m.jobsDone.Load())
	fmt.Fprintf(w, "psimd_jobs_total{status=\"failed\"} %d\n", m.jobsFailed.Load())
	fmt.Fprintf(w, "psimd_jobs_total{status=\"canceled\"} %d\n", m.jobsCanceled.Load())

	st := s.Stats()
	counter("psimd_cache_hits_total", "Simulations served from the disk cache.", st.Hits)
	counter("psimd_cache_shared_total", "Simulations served by joining an in-flight computation.", st.Shared)
	counter("psimd_cache_misses_total", "Simulations computed (cache misses).", st.Misses)
	gauge("psimd_cache_hit_ratio", "Hits plus shared over all lookups since start.", fmt.Sprintf("%.4f", st.HitRate()))
	counter("psimd_sims_executed_total", "Simulations actually executed by this daemon.", m.simsExecuted.Load())

	issued, crossed := m.pfIssued.Load(), m.pfCross4K.Load()
	counter("psimd_pf_issued_total", "L2-engine prefetches issued across completed simulations.", issued)
	counter("psimd_pf_cross4k_total", "Issued prefetches that crossed a 4KB page boundary.", crossed)
	crossRate := 0.0
	if issued > 0 {
		crossRate = float64(crossed) / float64(issued)
	}
	gauge("psimd_pf_cross4k_rate", "Cross-page share of issued prefetches across completed simulations.", fmt.Sprintf("%.4f", crossRate))

	liveN, live := s.liveTelemetry()
	gauge("psimd_live_sims", "Executing simulations with at least one closed telemetry epoch.", liveN)
	gauge("psimd_live_ipc", "Mean latest-epoch IPC across executing simulations.", fmt.Sprintf("%.4f", live["ipc"]))
	gauge("psimd_live_cross4k_rate", "Mean latest-epoch cross-page prefetch rate across executing simulations.", fmt.Sprintf("%.4f", live["pf_cross4k_rate"]))
	fmt.Fprintf(w, "# HELP psimd_live_hit_ratio Mean latest-epoch demand hit ratio across executing simulations.\n# TYPE psimd_live_hit_ratio gauge\n")
	for _, lvl := range []string{"l1d", "l2", "llc"} {
		fmt.Fprintf(w, "psimd_live_hit_ratio{level=%q} %.4f\n", lvl, live[lvl+"_hit_ratio"])
	}

	uptime := time.Since(m.start).Seconds()
	gauge("psimd_uptime_seconds", "Seconds since daemon start.", fmt.Sprintf("%.1f", uptime))
	rate := 0.0
	if uptime > 0 {
		rate = float64(m.simsExecuted.Load()) / uptime
	}
	gauge("psimd_sims_per_second", "Executed simulations per second of uptime.", fmt.Sprintf("%.3f", rate))

	m.queueWait.Write(w, "psimd_queue_wait_seconds",
		"Seconds between job admission and worker pickup.")

	q := m.quantiles(0.5, 0.99)
	fmt.Fprintf(w, "# HELP psimd_job_latency_seconds Recent job wall-clock latency quantiles.\n# TYPE psimd_job_latency_seconds gauge\n")
	fmt.Fprintf(w, "psimd_job_latency_seconds{quantile=\"0.5\"} %.4f\n", q[0])
	fmt.Fprintf(w, "psimd_job_latency_seconds{quantile=\"0.99\"} %.4f\n", q[1])

	if s.cluster != nil {
		s.cluster.WriteMetrics(w)
	}
}
