package service

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// fixedSim returns a sim function producing a fixed, fully populated result,
// so telemetry aggregates are exactly predictable.
func fixedSim(res sim.Result) simFunc {
	return func(ctx context.Context, cfg sim.Config, spec sim.PrefSpec, w trace.Workload, opt sim.RunOpt) (sim.Result, error) {
		r := res
		r.Workload, r.Spec = w.Name, spec.String()
		return r, nil
	}
}

// telemetryFixture is a result with every counter the job aggregate reads.
func telemetryFixture() sim.Result {
	r := sim.Result{Instructions: 1000, Cycles: 2000, IPC: 0.5}
	r.L1D.DemandHits, r.L1D.DemandMisses = 900, 100
	r.L2.DemandHits, r.L2.DemandMisses = 60, 40
	r.LLC.DemandHits, r.LLC.DemandMisses = 30, 10
	r.L2.PrefetchUseful, r.L2.PrefetchLate, r.L2.PrefetchUnused = 16, 4, 20
	r.Engine.Issued, r.Engine.CrossedPage4K = 50, 10
	return r
}

// validateExposition asserts body is valid Prometheus text exposition: every
// family is announced with HELP and TYPE lines before its samples, every
// sample belongs to the family most recently announced (histogram families
// accept the _bucket/_sum/_count sample suffixes, with le required on
// _bucket), and every value parses as a float. It returns the families in
// announcement order and each family's sample count.
func validateExposition(t *testing.T, body string) ([]string, map[string]int) {
	t.Helper()
	var (
		helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
		typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
		sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? (\S+)$`)
	)
	seen := map[string]int{} // family → sample count
	var families []string
	current := ""     // family announced by the latest TYPE line
	currentType := "" // its declared type
	helped := ""      // family announced by the latest HELP line
	sc := bufio.NewScanner(strings.NewReader(body))
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		switch {
		case text == "":
			t.Errorf("line %d: blank line in exposition", line)
		case strings.HasPrefix(text, "# HELP "):
			m := helpRe.FindStringSubmatch(text)
			if m == nil {
				t.Fatalf("line %d: malformed HELP: %q", line, text)
			}
			if _, dup := seen[m[1]]; dup {
				t.Errorf("line %d: family %s announced twice", line, m[1])
			}
			helped = m[1]
		case strings.HasPrefix(text, "# TYPE "):
			m := typeRe.FindStringSubmatch(text)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE: %q", line, text)
			}
			if m[1] != helped {
				t.Errorf("line %d: TYPE %s does not follow its HELP (last HELP: %s)", line, m[1], helped)
			}
			current, currentType = m[1], m[2]
			seen[current] = 0
			families = append(families, current)
		case strings.HasPrefix(text, "#"):
			t.Errorf("line %d: unexpected comment %q", line, text)
		default:
			m := sampleRe.FindStringSubmatch(text)
			if m == nil {
				t.Fatalf("line %d: malformed sample: %q", line, text)
			}
			name := m[1]
			if currentType == "histogram" {
				// A histogram family's samples carry suffixed names.
				switch name {
				case current + "_sum", current + "_count":
					name = current
				case current + "_bucket":
					if !strings.Contains(m[2], `le="`) {
						t.Errorf("line %d: histogram bucket without le label: %q", line, text)
					}
					name = current
				}
			}
			if name != current {
				t.Errorf("line %d: sample %s outside its family block (current: %s)", line, m[1], current)
			}
			if m[4] == "+Inf" || m[4] == "-Inf" || m[4] == "NaN" {
				// Valid exposition values, but none of ours should produce them.
				t.Errorf("line %d: non-finite value %q", line, m[4])
			} else if _, err := strconv.ParseFloat(m[4], 64); err != nil {
				t.Errorf("line %d: value %q is not a float: %v", line, m[4], err)
			}
			seen[name]++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for fam, n := range seen {
		if n == 0 {
			t.Errorf("family %s has no samples", fam)
		}
	}
	return families, seen
}

func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// baseFamilies is the pinned family set a standalone daemon exposes; adding a
// family without updating this list (or emitting one twice) fails the
// exposition tests.
var baseFamilies = []string{
	"psimd_up", "psimd_queue_depth", "psimd_queue_capacity",
	"psimd_jobs_inflight", "psimd_sims_inflight", "psimd_sim_parallelism",
	"psimd_http_requests_total", "psimd_jobs_total",
	"psimd_cache_hits_total", "psimd_cache_shared_total",
	"psimd_cache_misses_total", "psimd_cache_hit_ratio",
	"psimd_sims_executed_total",
	"psimd_pf_issued_total", "psimd_pf_cross4k_total", "psimd_pf_cross4k_rate",
	"psimd_live_sims", "psimd_live_ipc", "psimd_live_cross4k_rate",
	"psimd_live_hit_ratio",
	"psimd_uptime_seconds", "psimd_sims_per_second",
	"psimd_queue_wait_seconds",
	"psimd_job_latency_seconds",
}

// TestMetricsExposition scrapes a standalone daemon's /metrics and asserts
// the whole body is well-formed, with exactly the pinned family set.
func TestMetricsExposition(t *testing.T) {
	_, hs, c := startServer(t, Config{Workers: 1}, fixedSim(telemetryFixture()))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := c.Submit(ctx, testRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Follow(ctx, v.ID, nil); err != nil {
		t.Fatal(err)
	}

	body := scrapeMetrics(t, hs.URL)
	families, seen := validateExposition(t, body)

	if len(families) != len(baseFamilies) {
		t.Errorf("exposed %d families, want %d", len(families), len(baseFamilies))
	}
	for _, fam := range baseFamilies {
		if _, ok := seen[fam]; !ok {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	if got := seen["psimd_jobs_total"]; got != 5 {
		t.Errorf("psimd_jobs_total has %d samples, want 5 (one per status)", got)
	}
	if got := seen["psimd_live_hit_ratio"]; got != 3 {
		t.Errorf("psimd_live_hit_ratio has %d samples, want 3 (one per level)", got)
	}
	// 13 bounded buckets + the +Inf bucket + _sum + _count, and the finished
	// job must have been observed.
	if got := seen["psimd_queue_wait_seconds"]; got != 16 {
		t.Errorf("queue wait histogram has %d samples, want 16", got)
	}
	if !strings.Contains(body, "psimd_queue_wait_seconds_count 1") {
		t.Errorf("/metrics missing queue wait observation for the finished job")
	}

	// The stub results flow into the completed-sim prefetch counters.
	for _, wantLine := range []string{
		"psimd_pf_issued_total 100",
		"psimd_pf_cross4k_total 20",
		"psimd_pf_cross4k_rate 0.2000",
	} {
		if !strings.Contains(body, wantLine) {
			t.Errorf("/metrics missing %q", wantLine)
		}
	}
}

// TestMetricsExpositionClustered: a cluster-mode daemon appends the
// psimd_cluster_* families — still one well-formed exposition — including a
// proxy latency histogram populated by the proxied request this test sends
// through a non-owning node.
func TestMetricsExpositionClustered(t *testing.T) {
	nodes := startCluster(t, 2, fixedSim(telemetryFixture()), nil)
	req := testRequest(1)
	_, owner := keyAndOwner(t, nodes, req)
	other := 1 - owner
	runOne(t, nodes[other].c, req) // cold on a non-owner: proxied to the owner

	body := scrapeMetrics(t, nodes[other].hs.URL)
	families, seen := validateExposition(t, body)

	clusterFamilies := []string{
		"psimd_cluster_peers", "psimd_cluster_ring_nodes", "psimd_cluster_stealable",
		"psimd_cluster_remote_hits_total", "psimd_cluster_proxied_total",
		"psimd_cluster_failovers_total", "psimd_cluster_entries_served_total",
		"psimd_cluster_steals_total", "psimd_cluster_proxy_latency_seconds",
	}
	if want := len(baseFamilies) + len(clusterFamilies); len(families) != want {
		t.Errorf("exposed %d families, want %d", len(families), want)
	}
	for _, fam := range clusterFamilies {
		if _, ok := seen[fam]; !ok {
			t.Errorf("family %s missing from clustered /metrics", fam)
		}
	}
	if got := seen["psimd_cluster_peers"]; got != 2 {
		t.Errorf("psimd_cluster_peers has %d samples, want 2 (alive/dead)", got)
	}
	if got := seen["psimd_cluster_steals_total"]; got != 2 {
		t.Errorf("psimd_cluster_steals_total has %d samples, want 2 (thief/victim)", got)
	}
	// 13 bounded buckets + the +Inf bucket + _sum + _count.
	if got := seen["psimd_cluster_proxy_latency_seconds"]; got != 16 {
		t.Errorf("proxy latency histogram has %d samples, want 16", got)
	}
	for _, wantLine := range []string{
		"psimd_cluster_proxied_total 1",
		"psimd_cluster_ring_nodes 2",
		`psimd_cluster_peers{state="alive"} 1`,
		// A cold proxied request round-trips twice: the cache fetch that
		// misses, then the proxied execution.
		"psimd_cluster_proxy_latency_seconds_count 2",
		`psimd_cluster_proxy_latency_seconds_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(body, wantLine) {
			t.Errorf("clustered /metrics missing %q", wantLine)
		}
	}
}

// TestJobTelemetrySnapshot: completed simulations fold into the job's
// telemetry aggregate, which both the job view and SSE events carry.
func TestJobTelemetrySnapshot(t *testing.T) {
	_, _, c := startServer(t, Config{Workers: 1}, fixedSim(telemetryFixture()))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := c.Submit(ctx, testRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	var progressed []*JobTelemetry
	final, err := c.Follow(ctx, v.ID, func(e Event) {
		if e.Type == "progress" {
			progressed = append(progressed, e.Telemetry)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("job status = %s, want done", final.Status)
	}
	tel := final.Telemetry
	if tel == nil {
		t.Fatal("done view has no telemetry snapshot")
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"IPC", tel.IPC, 0.5},
		{"L1DHitRatio", tel.L1DHitRatio, 0.9},
		{"L2HitRatio", tel.L2HitRatio, 0.6},
		{"LLCHitRatio", tel.LLCHitRatio, 0.75},
		{"L2MPKI", tel.L2MPKI, 40},
		{"L2Accuracy", tel.L2Accuracy, 0.5},
		{"L2Coverage", tel.L2Coverage, 16.0 / (16 + 40)},
		{"CrossPageRate", tel.CrossPageRate, 0.2},
	}
	for _, ck := range checks {
		if diff := ck.got - ck.want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s = %v, want %v", ck.name, ck.got, ck.want)
		}
	}
	if tel.Instructions != 2000 || tel.Cycles != 4000 {
		t.Errorf("aggregate instr/cycles = %d/%d, want 2000/4000", tel.Instructions, tel.Cycles)
	}
	if tel.PrefIssued != 100 || tel.PrefCross4K != 20 {
		t.Errorf("aggregate prefetches = %d/%d, want 100/20", tel.PrefIssued, tel.PrefCross4K)
	}
	if len(progressed) != 2 {
		t.Fatalf("saw %d progress events, want 2", len(progressed))
	}
	if progressed[0] == nil || progressed[0].Instructions != 1000 {
		t.Errorf("first progress snapshot = %+v, want 1000 instructions", progressed[0])
	}
	if progressed[1] == nil || progressed[1].Instructions != 2000 {
		t.Errorf("second progress snapshot = %+v, want 2000 instructions", progressed[1])
	}
}
