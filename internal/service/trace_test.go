package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/dtrace"
)

// runTraced submits req through c under a context carrying rec and follows
// the job to completion, so every server-side span parents under the client's
// submit span.
func runTraced(t *testing.T, c *Client, rec *dtrace.Recorder, req SimRequest) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ctx = dtrace.NewContext(ctx, rec, dtrace.SpanContext{})
	v, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Follow(ctx, v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("job %s: %s (%s)", final.ID, final.Status, final.Error)
	}
}

// spanNames collects the set of span names in a trace.
func spanNames(spans []dtrace.SpanData, trace string) map[string]int {
	names := map[string]int{}
	for _, d := range spans {
		if d.TraceID == trace {
			names[d.Name]++
		}
	}
	return names
}

// TestTraceSingleNode follows one traced batch through a single daemon: the
// client's submit span must parent the daemon's job tree (job.run with
// job.queue_wait and one sim span per unit) into a single connected trace.
func TestTraceSingleNode(t *testing.T) {
	rec := dtrace.NewRecorder("daemon", 256)
	_, _, c := startServer(t, Config{Workers: 2, Flight: rec}, fixedSim(telemetryFixture()))
	client := dtrace.NewRecorder("pexp", 64)
	runTraced(t, c, client, testRequest(2))

	local := client.Snapshot(dtrace.Filter{})
	if len(local) != 1 || local[0].Name != "submit" {
		t.Fatalf("client recorded %+v, want exactly the submit span", local)
	}
	trace := local[0].TraceID

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	remote, err := c.Flight(ctx, trace)
	if err != nil {
		t.Fatal(err)
	}
	spans := dtrace.Stitch(local, remote)
	st := dtrace.TreeOf(trace, spans)
	if !st.Connected() {
		t.Fatalf("trace %s is not a single connected tree: %+v\nspans: %+v", trace, st, spans)
	}
	if len(st.Nodes) != 2 || st.Nodes[0] != "daemon" || st.Nodes[1] != "pexp" {
		t.Fatalf("trace nodes = %v, want [daemon pexp]", st.Nodes)
	}
	names := spanNames(spans, trace)
	for _, want := range []string{"job.run", "job.queue_wait"} {
		if names[want] != 1 {
			t.Fatalf("trace has %d %q spans, want 1 (all: %v)", names[want], want, names)
		}
	}
	if names["sim"] != 2 {
		t.Fatalf("trace has %d sim spans, want one per unit = 2 (all: %v)", names["sim"], names)
	}
	// The queue-wait span is backdated to admission: it must start no later
	// than job.run and end within it.
	var run, qw dtrace.SpanData
	for _, d := range spans {
		switch d.Name {
		case "job.run":
			run = d
		case "job.queue_wait":
			qw = d
		}
	}
	if qw.StartNS > run.StartNS || qw.EndNS > run.EndNS {
		t.Fatalf("queue_wait [%d,%d] does not nest at the front of job.run [%d,%d]",
			qw.StartNS, qw.EndNS, run.StartNS, run.EndNS)
	}
}

// TestTraceUntracedRequest: a request without a traceparent header must still
// work and, with the recorder enabled, record a self-rooted job tree.
func TestTraceUntracedRequest(t *testing.T) {
	rec := dtrace.NewRecorder("daemon", 256)
	_, _, c := startServer(t, Config{Workers: 1, Flight: rec}, fixedSim(telemetryFixture()))
	runOne(t, c, testRequest(1))

	spans := rec.Snapshot(dtrace.Filter{})
	traces := dtrace.TraceIDs(spans)
	if len(traces) != 1 {
		t.Fatalf("untraced request produced %d traces, want 1 fresh one", len(traces))
	}
	st := dtrace.TreeOf(traces[0], spans)
	if !st.Connected() {
		t.Fatalf("untraced request's spans must self-root into one tree, got %+v", st)
	}
}

// TestFlightEndpoint exercises GET /debug/flight: disabled daemons 404, and
// the trace/errors/limit filters select the right spans.
func TestFlightEndpoint(t *testing.T) {
	t.Run("disabled", func(t *testing.T) {
		_, _, c := startServer(t, Config{Workers: 1}, fixedSim(telemetryFixture()))
		_, err := c.Flight(context.Background(), "")
		if err == nil || !strings.Contains(err.Error(), "404") {
			t.Fatalf("Flight on a recorder-less daemon = %v, want HTTP 404", err)
		}
	})

	rec := dtrace.NewRecorder("daemon", 64)
	_, hs, c := startServer(t, Config{Workers: 1, Flight: rec}, fixedSim(telemetryFixture()))
	ok := rec.StartSpan(dtrace.SpanContext{}, "fine")
	ok.End()
	bad := rec.StartSpan(dtrace.SpanContext{}, "broken")
	bad.Fail(fmt.Errorf("boom"))
	bad.End()

	t.Run("all", func(t *testing.T) {
		spans, err := c.Flight(context.Background(), "")
		if err != nil {
			t.Fatal(err)
		}
		if len(spans) != 2 {
			t.Fatalf("got %d spans, want 2", len(spans))
		}
	})
	t.Run("by trace", func(t *testing.T) {
		spans, err := c.Flight(context.Background(), ok.Context().Trace.String())
		if err != nil {
			t.Fatal(err)
		}
		if len(spans) != 1 || spans[0].Name != "fine" {
			t.Fatalf("trace filter returned %+v, want just the fine span", spans)
		}
	})
	t.Run("errors only", func(t *testing.T) {
		resp, err := http.Get(hs.URL + "/debug/flight?errors=1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if got := resp.Header.Get("Content-Type"); got != "application/jsonl" {
			t.Fatalf("Content-Type = %q, want application/jsonl", got)
		}
		spans, err := dtrace.ReadJSONL(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if len(spans) != 1 || spans[0].Name != "broken" || !spans[0].Error {
			t.Fatalf("errors filter returned %+v, want just the failed span", spans)
		}
	})
	t.Run("limit", func(t *testing.T) {
		resp, err := http.Get(hs.URL + "/debug/flight?limit=1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		spans, err := dtrace.ReadJSONL(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if len(spans) != 1 || spans[0].Name != "broken" {
			t.Fatalf("limit=1 returned %+v, want the newest span", spans)
		}
	})
	t.Run("bad limit", func(t *testing.T) {
		resp, err := http.Get(hs.URL + "/debug/flight?limit=bogus")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("limit=bogus answered %d, want 400", resp.StatusCode)
		}
	})
}

// TestClusterTraceProxy follows one traced simulation through a proxied
// cross-node execution: submitted to the non-owner, the unit must travel
// cache.fill (miss) -> proxy.exec -> cluster.exec on the owner, and the
// stitched spans from the client and both nodes must form one connected tree
// covering all three parties.
func TestClusterTraceProxy(t *testing.T) {
	recs := make([]*dtrace.Recorder, 2)
	nodes := startCluster(t, 2, fixedSim(telemetryFixture()), func(i int, cfg *Config) {
		recs[i] = dtrace.NewRecorder(fmt.Sprintf("node%d", i), 256)
		cfg.Flight = recs[i]
		cfg.Cluster.Flight = recs[i]
	})
	req := victimOwnedRequest(t, nodes, 1, 1)
	client := dtrace.NewRecorder("pexp", 64)
	runTraced(t, nodes[0].c, client, req)

	local := client.Snapshot(dtrace.Filter{})
	if len(local) == 0 {
		t.Fatal("client recorded no spans")
	}
	trace := local[0].TraceID
	spans := dtrace.Stitch(local, recs[0].Snapshot(dtrace.Filter{}), recs[1].Snapshot(dtrace.Filter{}))
	st := dtrace.TreeOf(trace, spans)
	if !st.Connected() {
		t.Fatalf("cross-node trace is not one connected tree: %+v\nspans: %+v", st, spans)
	}
	if len(st.Nodes) != 3 {
		t.Fatalf("trace covers nodes %v, want the client and both daemons", st.Nodes)
	}
	names := spanNames(spans, trace)
	for _, want := range []string{"submit", "job.run", "sim", "cache.fill", "proxy.exec", "cluster.exec", "sim.run"} {
		if names[want] == 0 {
			t.Fatalf("trace is missing a %q span (all: %v)", want, names)
		}
	}
	// The hop crossed onto the owner: cluster.exec must be reported by node1.
	for _, d := range spans {
		if d.TraceID == trace && d.Name == "cluster.exec" && d.Node != "node1" {
			t.Fatalf("cluster.exec reported by %q, want the owner node1", d.Node)
		}
	}
}

// TestClusterTraceRemoteHit: once the owner has the entry cached, a second
// traced request through the non-owner is served by cache.fill alone — the
// owner's cache.serve span joins the requester's trace and no proxied
// execution happens.
func TestClusterTraceRemoteHit(t *testing.T) {
	recs := make([]*dtrace.Recorder, 2)
	nodes := startCluster(t, 2, fixedSim(telemetryFixture()), func(i int, cfg *Config) {
		recs[i] = dtrace.NewRecorder(fmt.Sprintf("node%d", i), 256)
		cfg.Flight = recs[i]
		cfg.Cluster.Flight = recs[i]
	})
	req := victimOwnedRequest(t, nodes, 1, 1)
	// Warm the owner's cache with an untraced run on the owner itself.
	runOne(t, nodes[1].c, req)

	client := dtrace.NewRecorder("pexp", 64)
	runTraced(t, nodes[0].c, client, req)
	trace := client.Snapshot(dtrace.Filter{})[0].TraceID
	spans := dtrace.Stitch(client.Snapshot(dtrace.Filter{}),
		recs[0].Snapshot(dtrace.Filter{}), recs[1].Snapshot(dtrace.Filter{}))
	st := dtrace.TreeOf(trace, spans)
	if !st.Connected() {
		t.Fatalf("remote-hit trace is not connected: %+v", st)
	}
	names := spanNames(spans, trace)
	if names["cache.fill"] != 1 || names["cache.serve"] != 1 {
		t.Fatalf("remote hit should pair cache.fill with the owner's cache.serve, got %v", names)
	}
	if names["proxy.exec"] != 0 || names["cluster.exec"] != 0 {
		t.Fatalf("remote hit must not proxy an execution, got %v", names)
	}
}
