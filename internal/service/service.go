// Package service implements psimd, a long-running simulation daemon: an
// HTTP/JSON API that accepts batches of simulations, runs them on a bounded
// worker pool backed by the shared content-addressed result cache
// (internal/simcache), and streams per-job progress and results over SSE.
//
// The production behaviors are part of the design rather than bolted on:
//
//   - Admission control: a bounded queue of pending jobs; a full queue
//     rejects with 429 + Retry-After instead of accepting unbounded work.
//   - Cross-request dedup: every simulation goes through the store's
//     single-flight DoContext, so two clients asking for the same
//     (config, spec, workload, runopt) key cost one simulation.
//   - Deadlines: a per-job timeout propagates as a context.Context through
//     the batch into the simulator loop, which stops at its next sampling
//     boundary; errors (including cancellations) are never cached.
//   - Graceful drain: Drain stops admission, lets accepted jobs finish, and
//     only force-cancels what is still running when its timeout expires.
//   - Observability: /healthz and /metrics (Prometheus text) expose queue
//     depth, in-flight sims, cache hit ratio, throughput, and job latency
//     quantiles.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config sizes the daemon.
type Config struct {
	// Store memoizes results and provides cross-request single-flight
	// dedup. Nil runs every simulation (no caching, no dedup).
	Store *simcache.Store
	// Workers is the number of jobs making progress concurrently
	// (default 4).
	Workers int
	// SimParallelism bounds concurrent simulations across all jobs
	// (default GOMAXPROCS).
	SimParallelism int
	// QueueDepth bounds jobs accepted but not yet picked up by a worker
	// (default 64). A full queue rejects submissions with ErrQueueFull.
	QueueDepth int
	// MaxBatch bounds simulations per request (default 4096).
	MaxBatch int
	// DefaultTimeout applies to jobs that do not set one; 0 means no
	// deadline.
	DefaultTimeout time.Duration
	// RetryAfter is the backoff hint returned with 429 (default 1s).
	RetryAfter time.Duration
	// KeepFinished is how many terminal jobs remain queryable before the
	// oldest are evicted (default 256).
	KeepFinished int
	// DisableTelemetry turns off live per-simulation instrumentation: jobs
	// then emit no SSE telemetry snapshots from executed sims and /metrics
	// reports no live simulator gauges. Instrumentation is observational
	// (results and cache keys are unaffected), so this only trades the small
	// sampling overhead against visibility.
	DisableTelemetry bool
	// Cluster, when non-nil, joins this daemon to a psimd cluster: a
	// consistent-hash ring over simcache keys routes each simulation to an
	// owner node, peers serve each other's warm cache entries, and idle
	// nodes steal queued work. Requires Store (the ring routes over cache
	// keys); ignored without one.
	Cluster *cluster.Options
	// Flight, when non-nil, is this daemon's span flight recorder: every
	// request path (admission, queue wait, simulation, cluster hops) records
	// spans into it, a traceparent header on POST /v1/sims parents them under
	// the caller's trace, and GET /debug/flight serves the retained spans.
	// Nil (the default) disables tracing for free — the recording paths are
	// nil-check no-ops.
	Flight *dtrace.Recorder
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.SimParallelism <= 0 {
		c.SimParallelism = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.KeepFinished <= 0 {
		c.KeepFinished = 256
	}
	return c
}

// Submission errors, mapped to HTTP statuses by the handlers.
var (
	// ErrQueueFull rejects a submission when the admission queue is at
	// capacity (HTTP 429).
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrDraining rejects a submission during shutdown (HTTP 503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
)

// unit is one resolved simulation of a job.
type unit struct {
	w    trace.Workload
	spec sim.PrefSpec
}

// telAccum sums the headline counters of a job's completed simulations
// (cache hits included — a recalled Result carries the same stats), from
// which snapshot derives the JobTelemetry rates for SSE events.
type telAccum struct {
	sims          int
	instr, cycles uint64

	l1dHits, l1dMisses uint64
	l2Hits, l2Misses   uint64
	llcHits, llcMisses uint64

	l2Useful, l2Late, l2Unused uint64
	pfIssued, pfCross4K        uint64
}

func (a *telAccum) add(r sim.Result) {
	a.sims++
	a.instr += r.Instructions
	a.cycles += uint64(r.Cycles)
	a.l1dHits += r.L1D.DemandHits
	a.l1dMisses += r.L1D.DemandMisses
	a.l2Hits += r.L2.DemandHits
	a.l2Misses += r.L2.DemandMisses
	a.llcHits += r.LLC.DemandHits
	a.llcMisses += r.LLC.DemandMisses
	a.l2Useful += r.L2.PrefetchUseful
	a.l2Late += r.L2.PrefetchLate
	a.l2Unused += r.L2.PrefetchUnused
	a.pfIssued += r.Engine.Issued
	a.pfCross4K += r.Engine.CrossedPage4K
}

// snapshot derives the wire-level aggregate; nil before the first completed
// simulation (a job that has only cache misses pending has nothing to show).
func (a *telAccum) snapshot() *JobTelemetry {
	if a.sims == 0 {
		return nil
	}
	div := func(num, den float64) float64 {
		if den == 0 {
			return 0
		}
		return num / den
	}
	t := &JobTelemetry{
		Instructions: a.instr,
		Cycles:       a.cycles,
		PrefIssued:   a.pfIssued,
		PrefCross4K:  a.pfCross4K,
	}
	t.IPC = div(float64(a.instr), float64(a.cycles))
	t.L1DHitRatio = div(float64(a.l1dHits), float64(a.l1dHits+a.l1dMisses))
	t.L2HitRatio = div(float64(a.l2Hits), float64(a.l2Hits+a.l2Misses))
	t.LLCHitRatio = div(float64(a.llcHits), float64(a.llcHits+a.llcMisses))
	t.L2MPKI = div(float64(a.l2Misses)*1000, float64(a.instr))
	t.L2Accuracy = div(float64(a.l2Useful+a.l2Late), float64(a.l2Useful+a.l2Late+a.l2Unused))
	t.L2Coverage = div(float64(a.l2Useful), float64(a.l2Useful+a.l2Misses))
	t.CrossPageRate = div(float64(a.pfCross4K), float64(a.pfIssued))
	return t
}

// jobState is a job's full server-side state. The events slice is
// append-only; changed is closed and replaced on every append, which lets
// any number of SSE subscribers replay history and then follow live without
// per-subscriber registration.
type jobState struct {
	id      string
	cfg     sim.Config
	opt     sim.RunOpt
	units   []unit
	timeout time.Duration

	// enqueuedAt is when admission accepted the job; the queue-wait
	// histogram and the job.queue_wait span measure from it.
	enqueuedAt time.Time
	// tsc is the submitting client's trace position (zero when the request
	// carried no traceparent); the job's spans parent under it.
	tsc dtrace.SpanContext

	mu       sync.Mutex
	status   JobStatus
	wantStop bool               // cancel requested (DELETE)
	cancel   context.CancelFunc // non-nil while running
	done     int
	hits     int
	executed int
	tel      telAccum
	results  []sim.Result
	errMsg   string
	events   []Event
	changed  chan struct{}
}

// view renders the externally visible state.
func (j *jobState) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.id, Status: j.status, Total: len(j.units),
		Done: j.done, Hits: j.hits, Executed: j.executed, Error: j.errMsg,
		Telemetry: j.tel.snapshot(),
	}
	if j.status == StatusDone {
		v.Results = j.results
	}
	return v
}

// emitLocked appends a lifecycle event and wakes subscribers. Callers hold
// j.mu.
func (j *jobState) emitLocked(typ string) {
	j.events = append(j.events, Event{
		Seq: len(j.events) + 1, Type: typ, Job: j.id, Status: j.status,
		Done: j.done, Total: len(j.units), Hits: j.hits, Executed: j.executed,
		Error: j.errMsg, Telemetry: j.tel.snapshot(),
	})
	close(j.changed)
	j.changed = make(chan struct{})
}

// step records one finished simulation, folds its result into the job's
// telemetry aggregate, and emits a progress event carrying the snapshot.
func (j *jobState) step(hit bool, res sim.Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done++
	if hit {
		j.hits++
	} else {
		j.executed++
	}
	j.tel.add(res)
	j.emitLocked("progress")
}

// Server runs jobs and serves the API. Create with New, start the worker
// pool with Start, expose Handler over HTTP, and stop with Drain (graceful)
// or Close (immediate).
type Server struct {
	cfg    Config
	queue  chan *jobState
	simSem chan struct{}

	baseCtx context.Context // parent of every job; canceled by Close
	stop    context.CancelFunc

	mu       sync.Mutex
	draining bool
	closed   bool // queue channel closed (Drain or Close)
	jobs     map[string]*jobState
	order    []string // submission order, for finished-job eviction
	nextID   uint64

	wg sync.WaitGroup
	m  metrics

	// cluster is this daemon's membership in a multi-node deployment; nil
	// when running single-node (see Config.Cluster).
	cluster *cluster.Node

	// live holds the collector of every currently executing instrumented
	// simulation; /metrics averages their latest epochs into the
	// psimd_live_* gauges.
	liveMu sync.Mutex
	live   map[*telemetry.Collector]struct{}

	// simFn runs one simulation; tests substitute controllable stand-ins.
	simFn func(ctx context.Context, cfg sim.Config, spec sim.PrefSpec, w trace.Workload, opt sim.RunOpt) (sim.Result, error)
}

// New builds a server; call Start to launch its workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *jobState, cfg.QueueDepth),
		simSem:  make(chan struct{}, cfg.SimParallelism),
		baseCtx: ctx,
		stop:    stop,
		jobs:    map[string]*jobState{},
		live:    map[*telemetry.Collector]struct{}{},
		m:       newMetrics(),
		simFn:   sim.RunContext,
	}
	if cfg.Cluster != nil && cfg.Store != nil {
		s.cluster = s.newClusterNode(*cfg.Cluster)
	}
	return s
}

// Start launches the worker pool (and, when clustered, the heartbeat and
// steal loops).
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.cluster != nil {
		s.cluster.Start()
	}
}

// Stats returns the store's cache counters (zero Stats when uncached).
func (s *Server) Stats() simcache.Stats {
	if s.cfg.Store == nil {
		return simcache.Stats{}
	}
	return s.cfg.Store.Stats()
}

// worker executes queued jobs until the queue is closed (drain) or the base
// context is canceled (hard stop).
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j, ok := <-s.queue:
			if !ok {
				return
			}
			s.runJob(j)
		}
	}
}

// Submit validates and enqueues a request, returning the queued job. tsc is
// the caller's trace position (zero for untraced requests).
func (s *Server) submit(req SimRequest, tsc dtrace.SpanContext) (*jobState, error) {
	units, err := validateSimRequest(req, s.cfg.MaxBatch)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig()
	if req.Config != nil {
		cfg = *req.Config
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	j := &jobState{
		cfg: cfg, opt: req.Opt, units: units, timeout: timeout,
		status: StatusQueued, changed: make(chan struct{}),
		enqueuedAt: time.Now(), tsc: tsc,
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.m.jobsRejected.Add(1)
		return nil, ErrDraining
	}
	s.nextID++
	j.id = fmt.Sprintf("j%d", s.nextID)
	// The queued event must precede the enqueue: a worker may pick the job
	// up (and emit "running") the instant it lands in the channel.
	j.mu.Lock()
	j.emitLocked("queued")
	j.mu.Unlock()
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.m.jobsRejected.Add(1)
		return nil, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.gcLocked()
	s.mu.Unlock()
	s.m.jobsSubmitted.Add(1)
	return j, nil
}

// resolve maps a wire spec onto the catalogue and prefetcher registry.
// validateSimRequest checks a submit body's static invariants and resolves
// every job spec against the workload catalogue; maxBatch bounds the batch
// size. It is the pure half of submit — no server state — so the fuzz
// harness can drive it with arbitrary decoded requests. Base is deliberately
// not validated here: an unknown prefetcher fails the job at run time, which
// keeps the submit path independent of the prefetcher registry.
func validateSimRequest(req SimRequest, maxBatch int) ([]unit, error) {
	if len(req.Jobs) == 0 {
		return nil, fmt.Errorf("service: empty batch")
	}
	if len(req.Jobs) > maxBatch {
		return nil, fmt.Errorf("service: batch of %d exceeds limit %d", len(req.Jobs), maxBatch)
	}
	if req.Opt.Instructions == 0 {
		return nil, fmt.Errorf("service: opt.Instructions must be positive")
	}
	units := make([]unit, len(req.Jobs))
	for i, spec := range req.Jobs {
		u, err := resolve(spec)
		if err != nil {
			return nil, fmt.Errorf("service: job %d: %w", i, err)
		}
		units[i] = u
	}
	return units, nil
}

func resolve(spec SimSpec) (unit, error) {
	w, err := trace.ByName(spec.Workload)
	if err != nil {
		return unit{}, err
	}
	v, err := core.ParseVariant(spec.Variant)
	if err != nil {
		return unit{}, err
	}
	switch sim.L1Pref(spec.L1) {
	case sim.L1None, sim.L1NextLine, sim.L1IPCP, sim.L1IPCPPP:
	default:
		return unit{}, fmt.Errorf("unknown L1 prefetcher %q", spec.L1)
	}
	return unit{w: w, spec: sim.PrefSpec{Base: spec.Base, Variant: v, L1: sim.L1Pref(spec.L1)}}, nil
}

// Job looks up a job by ID.
func (s *Server) lookup(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation: queued jobs terminate immediately, running
// jobs have their context canceled and stop at the next simulation boundary.
// Canceling a terminal job is a no-op. Returns false for unknown IDs.
func (s *Server) cancelJob(id string) bool {
	j, ok := s.lookup(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return true
	}
	j.wantStop = true
	if j.cancel != nil {
		j.cancel()
	} else if j.status == StatusQueued {
		// Terminate now; the worker that eventually pops it skips it.
		j.status = StatusCanceled
		j.errMsg = "canceled"
		j.emitLocked("canceled")
		s.m.jobsCanceled.Add(1)
	}
	return true
}

// gcLocked evicts the oldest terminal jobs beyond the retention cap so the
// job table cannot grow without bound. Callers hold s.mu.
func (s *Server) gcLocked() {
	finished := 0
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			j.mu.Lock()
			t := j.status.Terminal()
			j.mu.Unlock()
			if t {
				finished++
			}
		}
	}
	if finished <= s.cfg.KeepFinished {
		return
	}
	keep := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		t := j.status.Terminal()
		j.mu.Unlock()
		if t && finished > s.cfg.KeepFinished {
			delete(s.jobs, id)
			finished--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

// runJob executes one job's batch over the shared simulation semaphore.
func (s *Server) runJob(j *jobState) {
	parent := s.baseCtx
	var ctx context.Context
	var cancel context.CancelFunc
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(parent, j.timeout)
	} else {
		ctx, cancel = context.WithCancel(parent)
	}
	defer cancel()

	j.mu.Lock()
	if j.status.Terminal() { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.cancel = cancel
	j.emitLocked("running")
	j.mu.Unlock()

	s.m.queueWait.Observe(time.Since(j.enqueuedAt).Seconds())
	// job.run is the server-side root of the job's span tree, parented under
	// the submitting client's span when the request carried a traceparent.
	// job.queue_wait hangs off it, backdated to admission, so the trace shows
	// how long the batch sat before a worker picked it up.
	runSpan := s.cfg.Flight.StartSpan(j.tsc, "job.run")
	runSpan.Annotate(j.id)
	if qs := s.cfg.Flight.StartSpan(runSpan.Context(), "job.queue_wait"); qs != nil {
		qs.SetStart(j.enqueuedAt)
		qs.End()
	}
	ctx = dtrace.NewContext(ctx, s.cfg.Flight, runSpan.Context())

	s.m.jobsRunning.Add(1)
	start := time.Now()
	results := make([]sim.Result, len(j.units))
	errs := make([]error, len(j.units))
	var wg sync.WaitGroup
	for i, u := range j.units {
		wg.Add(1)
		go func(i int, u unit) {
			defer wg.Done()
			if errs[i] = ctx.Err(); errs[i] != nil {
				return
			}
			uctx, sp := dtrace.Start(ctx, "sim")
			if sp != nil {
				sp.Annotate(u.w.Name + " " + u.spec.Base)
			}
			// simulate owns slot acquisition: routing decides whether this
			// unit needs a local execution slot at all (a cluster peer may
			// serve or compute it instead), and hit/executed accounting
			// happens at the point the outcome is known.
			var outcome simOutcome
			results[i], outcome, errs[i] = s.simulate(uctx, j.cfg, u, j.opt)
			if sp != nil {
				if errs[i] != nil {
					sp.Fail(errs[i])
				} else {
					sp.Annotate(u.w.Name + " " + outcome.String())
				}
				sp.End()
			}
			if errs[i] == nil {
				s.m.pfIssued.Add(results[i].Engine.Issued)
				s.m.pfCross4K.Add(results[i].Engine.CrossedPage4K)
				j.step(outcome.hit(), results[i])
			}
		}(i, u)
	}
	wg.Wait()
	s.m.jobsRunning.Add(-1)
	s.m.observeLatency(time.Since(start))

	err := errors.Join(errs...)
	runSpan.Fail(err)
	runSpan.End()
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	switch {
	case err == nil:
		j.results = results
		j.status = StatusDone
		j.emitLocked("done")
		s.m.jobsDone.Add(1)
	case j.wantStop || s.baseCtx.Err() != nil:
		j.status = StatusCanceled
		j.errMsg = "canceled"
		j.emitLocked("canceled")
		s.m.jobsCanceled.Add(1)
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
		j.emitLocked("failed")
		s.m.jobsFailed.Add(1)
	}
}

// execUnit runs (or recalls) one simulation locally: it takes a slot on the
// shared semaphore, then goes through the store's single-flight DoContext.
// It is the terminal execution path of every route — local jobs, proxied
// owner requests, and stolen work all land here — and owns the
// hit/executed metric accounting for this daemon.
func (s *Server) execUnit(ctx context.Context, cfg sim.Config, u unit, opt sim.RunOpt) (sim.Result, bool, error) {
	select {
	case s.simSem <- struct{}{}:
	case <-ctx.Done():
		return sim.Result{}, false, ctx.Err()
	}
	defer func() { <-s.simSem }()
	return s.execHeld(ctx, cfg, u, opt)
}

// execHeld is execUnit for callers already holding a semaphore slot. Unless
// telemetry is disabled, each executed simulation (cache hits never execute)
// carries a live collector that /metrics samples while the run is in flight.
func (s *Server) execHeld(ctx context.Context, cfg sim.Config, u unit, opt sim.RunOpt) (sim.Result, bool, error) {
	if err := ctx.Err(); err != nil {
		return sim.Result{}, false, err
	}
	// simEnd is set iff run executed on this goroutine (we were the flight
	// leader); the store write then spans [simEnd, DoContext return].
	var simEnd time.Time
	run := func(ctx context.Context) (sim.Result, error) {
		rctx, rs := dtrace.Start(ctx, "sim.run")
		if !s.cfg.DisableTelemetry {
			_, ts := dtrace.Start(rctx, "telemetry.attach")
			col := telemetry.NewCollector()
			s.addLive(col)
			defer s.removeLive(col)
			rctx = sim.WithInstrumentation(rctx, &sim.Instrumentation{Collector: col})
			ts.End()
		}
		r, err := s.simFn(rctx, cfg, u.spec, u.w, opt)
		rs.Fail(err)
		rs.End()
		simEnd = time.Now()
		return r, err
	}
	if s.cfg.Store == nil {
		r, err := run(ctx)
		if err == nil {
			s.m.simsExecuted.Add(1)
		}
		return r, false, err
	}
	res, hit, err := s.cfg.Store.DoContext(ctx, simcache.Key(cfg, u.spec, u.w, opt), run)
	if err == nil && !hit && !simEnd.IsZero() {
		// The store serialized and persisted the entry between the run's end
		// and DoContext returning; record that window as the cache.store span.
		if rec := dtrace.RecorderFrom(ctx); rec != nil {
			st := rec.StartSpan(dtrace.SpanContextFrom(ctx), "cache.store")
			st.SetStart(simEnd)
			st.End()
		}
	}
	if err == nil {
		if hit {
			s.m.cacheHits.Add(1)
		} else {
			s.m.simsExecuted.Add(1)
		}
	}
	return res, hit, err
}

func (s *Server) addLive(c *telemetry.Collector) {
	s.liveMu.Lock()
	s.live[c] = struct{}{}
	s.liveMu.Unlock()
}

func (s *Server) removeLive(c *telemetry.Collector) {
	s.liveMu.Lock()
	delete(s.live, c)
	s.liveMu.Unlock()
}

// liveMetricKeys are the derived per-epoch metrics averaged across executing
// simulations for the /metrics psimd_live_* gauges (names from the
// simulator's telemetry probes).
var liveMetricKeys = []string{"ipc", "l1d_hit_ratio", "l2_hit_ratio", "llc_hit_ratio", "pf_cross4k_rate"}

// liveTelemetry averages the latest closed epoch of every executing
// simulation's collector. n counts only runs that have closed at least one
// epoch; avg is nil when n is zero.
func (s *Server) liveTelemetry() (n int, avg map[string]float64) {
	s.liveMu.Lock()
	cols := make([]*telemetry.Collector, 0, len(s.live))
	for c := range s.live {
		cols = append(cols, c)
	}
	s.liveMu.Unlock()
	sums := map[string]float64{}
	for _, c := range cols {
		m := c.Latest()
		if m == nil {
			continue // still inside its first epoch
		}
		n++
		for _, k := range liveMetricKeys {
			sums[k] += m[k]
		}
	}
	if n == 0 {
		return 0, nil
	}
	for k := range sums {
		sums[k] /= float64(n)
	}
	return n, sums
}

// Draining reports whether the server has stopped accepting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the pool down: admission stops immediately
// (submissions fail with ErrDraining, /healthz turns 503), accepted jobs
// keep running, and Drain returns once every worker has exited. If the jobs
// have not finished within timeout, their contexts are canceled — they stop
// at the next simulation boundary and report canceled — and Drain returns an
// error naming the force-stop.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if !s.closed {
		s.draining = true
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	if s.cluster != nil {
		// Announce the departure so peers reroute new work immediately;
		// already-accepted jobs below still complete (the cluster handler
		// keeps serving cache fetches while we drain).
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		s.cluster.Leave(ctx)
		cancel()
	}

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	var err error
	select {
	case <-workersDone:
	case <-timer:
		s.stop() // cancel every job's context
		<-workersDone
		err = fmt.Errorf("service: drain timed out after %s; in-flight jobs canceled", timeout)
	}
	if s.cluster != nil {
		s.cluster.Close()
	}
	return err
}

// Close stops immediately: admission ends and every running job's context is
// canceled. Prefer Drain for orderly shutdown.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.draining = true
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
	if s.cluster != nil {
		s.cluster.Close()
	}
}
