package service

import (
	"bytes"
	"testing"
)

// FuzzDecodeSimRequest feeds arbitrary bytes through the daemon's submit
// decode+validate path: it must never panic, and a request that validates
// must have resolved exactly one unit per submitted job. This is the same
// code POST /v1/sims runs on untrusted network input.
func FuzzDecodeSimRequest(f *testing.F) {
	f.Add([]byte(`{"opt":{"Instructions":1000},"jobs":[{"workload":"libquantum","base":"spp","variant":"PSA"}]}`))
	f.Add([]byte(`{"opt":{"Instructions":1},"jobs":[{"workload":"milc"},{"workload":"mcf","base":"ppf","variant":"psa-sd","l1":"ipcp++"}]}`))
	f.Add([]byte(`{"jobs":[]}`))
	f.Add([]byte(`{"opt":{"Instructions":5},"jobs":[{"workload":"nonexistent"}]}`))
	f.Add([]byte(`{"opt":{"Instructions":5},"jobs":[{"workload":"libquantum","variant":"bogus"}]}`))
	f.Add([]byte(`{"opt":{"Instructions":5},"jobs":[{"workload":"libquantum","l1":"bogus"}]}`))
	f.Add([]byte(`{"config":{},"opt":{},"jobs":null}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeSimRequest(bytes.NewReader(data))
		if err != nil {
			return // malformed body: the handler answers 400, nothing to validate
		}
		const maxBatch = 64
		units, verr := validateSimRequest(req, maxBatch)
		if verr == nil {
			if len(units) != len(req.Jobs) {
				t.Fatalf("validated request resolved %d units for %d jobs", len(units), len(req.Jobs))
			}
			if len(units) == 0 || len(units) > maxBatch {
				t.Fatalf("validated batch size %d outside (0, %d]", len(units), maxBatch)
			}
			if req.Opt.Instructions == 0 {
				t.Fatal("validated request with zero instructions")
			}
		}
	})
}
