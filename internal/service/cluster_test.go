package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/trace"
)

// clusterNode is one member of an in-process test cluster: a full Server
// (own store, own worker pool) on a live HTTP listener.
type clusterNode struct {
	srv   *Server
	hs    *httptest.Server
	store *simcache.Store
	c     *Client
	execs atomic.Int64 // simulations this node's simFn actually ran
}

// startCluster builds an n-node cluster. Peer URLs must exist before the
// servers are configured, so each listener starts with a late-bound handler
// that is pointed at its Server once constructed. Background heartbeat/steal
// loops are disabled — tests drive protocol rounds explicitly — and seeds
// start alive, so routing is deterministic from the first request.
func startCluster(t *testing.T, n int, fn simFunc, tweak func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	infos := make([]cluster.NodeInfo, n)
	handlers := make([]atomic.Value, n) // of http.Handler
	for i := range nodes {
		i := i
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h, _ := handlers[i].Load().(http.Handler)
			if h == nil {
				http.Error(w, "starting", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(hs.Close)
		infos[i] = cluster.NodeInfo{ID: fmt.Sprintf("node%d", i), URL: hs.URL}
		nodes[i] = &clusterNode{hs: hs}
	}
	for i, cn := range nodes {
		store, err := simcache.New(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Store: store, Workers: 2, SimParallelism: 2,
			Cluster: &cluster.Options{
				Self:              infos[i],
				Seeds:             infos,
				HeartbeatInterval: -1,
				StealInterval:     -1,
				StealTimeout:      30 * time.Second,
			},
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		srv := New(cfg)
		if fn != nil {
			cn := cn
			srv.simFn = func(ctx context.Context, c sim.Config, spec sim.PrefSpec, w trace.Workload, opt sim.RunOpt) (sim.Result, error) {
				cn.execs.Add(1)
				return fn(ctx, c, spec, w, opt)
			}
		}
		srv.Start()
		t.Cleanup(srv.Close)
		handlers[i].Store(srv.Handler())
		cn.srv, cn.store, cn.c = srv, store, NewClient(infos[i].URL)
	}
	return nodes
}

// keyAndOwner computes the request's cache key the way the daemon will and
// resolves which node owns it.
func keyAndOwner(t *testing.T, nodes []*clusterNode, req SimRequest) (string, int) {
	t.Helper()
	u, err := resolve(req.Jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	if req.Config != nil {
		cfg = *req.Config
	}
	key := simcache.Key(cfg, u.spec, u.w, req.Opt)
	info, self := nodes[0].srv.Cluster().Owner(key)
	if self {
		return key, 0
	}
	for i := range nodes {
		if nodes[i].srv.Cluster().Self().ID == info.ID {
			return key, i
		}
	}
	t.Fatalf("owner %s not among test nodes", info.ID)
	return "", 0
}

func totalExecs(nodes []*clusterNode) int64 {
	var n int64
	for _, cn := range nodes {
		n += cn.execs.Load()
	}
	return n
}

func runOne(t *testing.T, c *Client, req SimRequest) sim.Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	v, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Follow(ctx, v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("job %s: %s (%s)", final.ID, final.Status, final.Error)
	}
	if len(final.Results) != 1 {
		t.Fatalf("job %s returned %d results", final.ID, len(final.Results))
	}
	return final.Results[0]
}

// TestClusterWarmCrossNodeHit is the acceptance check for cross-node cache
// fill: a result simulated and cached on its owning node is served to a
// client of a different node with zero additional simulations — a warm
// remote hit, checksum-verified on the wire and counted in the metrics.
func TestClusterWarmCrossNodeHit(t *testing.T) {
	nodes := startCluster(t, 2, fixedSim(telemetryFixture()), nil)
	req := testRequest(1)
	key, owner := keyAndOwner(t, nodes, req)
	other := 1 - owner

	// Cold: the owner's own client simulates once, filling only its store.
	first := runOne(t, nodes[owner].c, req)
	if got := totalExecs(nodes); got != 1 {
		t.Fatalf("cold run executed %d sims, want 1", got)
	}
	if _, ok := nodes[other].store.Get(key); ok {
		t.Fatal("entry leaked to the non-owner before it ever asked")
	}

	// Warm: the other node's client gets the owner's cached bytes.
	second := runOne(t, nodes[other].c, req)
	if got := totalExecs(nodes); got != 1 {
		t.Fatalf("warm cross-node run re-simulated: %d total execs, want 1", got)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cross-node result differs:\n%+v\n%+v", first, second)
	}
	if got := nodes[other].srv.Cluster().Stats().RemoteHits; got != 1 {
		t.Errorf("non-owner RemoteHits = %d, want 1", got)
	}
	if got := nodes[owner].srv.Cluster().Stats().EntriesServed; got != 1 {
		t.Errorf("owner EntriesServed = %d, want 1", got)
	}
	// The fill landed, so a third request on that node is a purely local hit.
	if _, ok := nodes[other].store.Get(key); !ok {
		t.Error("remote hit did not warm the local store")
	}
	runOne(t, nodes[other].c, req)
	if got := nodes[other].srv.Cluster().Stats().RemoteHits; got != 1 {
		t.Errorf("local re-serve went remote again: RemoteHits = %d", got)
	}

	// And the exposition reflects it.
	resp, err := http.Get(nodes[other].hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "psimd_cluster_remote_hits_total 1") {
		t.Error("/metrics missing psimd_cluster_remote_hits_total 1")
	}
}

// TestClusterProxyExec: a cold request arriving at a non-owner is computed
// on the owner (exactly-once, owner-side accounting) and the result fills
// both stores.
func TestClusterProxyExec(t *testing.T) {
	nodes := startCluster(t, 2, fixedSim(telemetryFixture()), nil)
	req := testRequest(1)
	key, owner := keyAndOwner(t, nodes, req)
	other := 1 - owner

	runOne(t, nodes[other].c, req)
	if got := nodes[owner].execs.Load(); got != 1 {
		t.Errorf("owner executed %d sims, want 1 (proxied to owner)", got)
	}
	if got := nodes[other].execs.Load(); got != 0 {
		t.Errorf("non-owner executed %d sims, want 0", got)
	}
	if got := nodes[other].srv.Cluster().Stats().ProxiedSims; got != 1 {
		t.Errorf("ProxiedSims = %d, want 1", got)
	}
	for i, cn := range nodes {
		if _, ok := cn.store.Get(key); !ok {
			t.Errorf("node %d store missing the entry after proxied execution", i)
		}
	}
	// The owner's executed-counter carries the work; the requester's does not.
	if got := nodes[owner].srv.m.simsExecuted.Load(); got != 1 {
		t.Errorf("owner psimd_sims_executed_total = %d, want 1", got)
	}
	if got := nodes[other].srv.m.simsExecuted.Load(); got != 0 {
		t.Errorf("non-owner psimd_sims_executed_total = %d, want 0", got)
	}
}

// TestClusterFailover: when a key's owner is unreachable, the requesting
// node computes locally — a dead node costs throughput, not availability —
// and the failure immediately removes the owner from the requester's ring.
func TestClusterFailover(t *testing.T) {
	nodes := startCluster(t, 2, fixedSim(telemetryFixture()), nil)
	req := testRequest(1)
	_, owner := keyAndOwner(t, nodes, req)
	other := 1 - owner

	nodes[owner].hs.CloseClientConnections()
	nodes[owner].hs.Close()

	res := runOne(t, nodes[other].c, req)
	if res.Instructions != 1000 {
		t.Fatalf("failover result = %+v", res)
	}
	if got := nodes[other].execs.Load(); got != 1 {
		t.Errorf("survivor executed %d sims, want 1", got)
	}
	if got := nodes[other].srv.Cluster().Stats().Failovers; got != 1 {
		t.Errorf("Failovers = %d, want 1", got)
	}
	if got := nodes[other].srv.Cluster().Membership().Ring().Len(); got != 1 {
		t.Errorf("dead owner still on ring (len %d), want 1", got)
	}
}

// victimOwnedRequest returns a single-sim request whose cache key is owned
// by nodes[victim], found by walking seeds (each seed changes the key).
func victimOwnedRequest(t *testing.T, nodes []*clusterNode, victim int, fromSeed uint64) SimRequest {
	t.Helper()
	for seed := fromSeed; seed < fromSeed+200; seed++ {
		req := testRequest(1)
		req.Opt.Seed = seed
		if _, owner := keyAndOwner(t, nodes, req); owner == victim {
			return req
		}
	}
	t.Fatal("no victim-owned key in 200 seeds (ring distribution broken?)")
	return SimRequest{}
}

// TestClusterStealDelivery: a queued simulation waiting for a local slot is
// claimed by an idle peer's steal round, executed there, and the delivered
// result completes the job on the victim with no local execution.
func TestClusterStealDelivery(t *testing.T) {
	nodes := startCluster(t, 2, nil, func(i int, cfg *Config) {
		cfg.SimParallelism = 1
	})
	victim, thief := nodes[0], nodes[1]
	// The victim's only slot wedges on a gated sim; the thief is fast.
	gate := make(chan struct{})
	victim.srv.simFn = func(ctx context.Context, c sim.Config, spec sim.PrefSpec, w trace.Workload, opt sim.RunOpt) (sim.Result, error) {
		victim.execs.Add(1)
		select {
		case <-gate:
			return telemetryFixture(), nil
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		}
	}
	thief.srv.simFn = func(ctx context.Context, c sim.Config, spec sim.PrefSpec, w trace.Workload, opt sim.RunOpt) (sim.Result, error) {
		thief.execs.Add(1)
		return telemetryFixture(), nil
	}

	// Both keys must be owned by the victim, or the second would proxy to
	// the thief instead of queueing locally as stealable work.
	reqA := victimOwnedRequest(t, nodes, 0, 1)
	reqB := victimOwnedRequest(t, nodes, 0, reqA.Opt.Seed+1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	vA, err := victim.c.Submit(ctx, reqA)
	if err != nil {
		t.Fatal(err)
	}
	vB, err := victim.c.Submit(ctx, reqB)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until B is actually exposed to thieves (A holds the slot).
	deadline := time.Now().Add(10 * time.Second)
	for victim.srv.Cluster().Pending().Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no stealable work materialized")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := thief.srv.Cluster().StealOnce(ctx); got < 1 {
		t.Fatalf("StealOnce = %d, want >= 1", got)
	}

	// The stolen job completes although the victim's only slot is still
	// wedged — the thief computed and delivered it.
	doneB, err := victim.c.Follow(ctx, vB.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if doneB.Status != StatusDone {
		t.Fatalf("stolen job = %s (%s)", doneB.Status, doneB.Error)
	}
	if got := thief.execs.Load(); got != 1 {
		t.Errorf("thief executed %d sims, want 1", got)
	}
	if got := thief.srv.Cluster().Stats().StolenByUs; got != 1 {
		t.Errorf("thief StolenByUs = %d, want 1", got)
	}
	if got := victim.srv.Cluster().Stats().StolenFromUs; got != 1 {
		t.Errorf("victim StolenFromUs = %d, want 1", got)
	}

	// Release the wedged sim; job A finishes locally.
	close(gate)
	doneA, err := victim.c.Follow(ctx, vA.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if doneA.Status != StatusDone {
		t.Fatalf("wedged job = %s (%s)", doneA.Status, doneA.Error)
	}
}
