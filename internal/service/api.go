package service

import "repro/internal/sim"

// Wire types of psimd's HTTP/JSON API. The surface is deliberately small:
//
//	POST   /v1/sims             submit a batch of simulations → 202 + JobView
//	GET    /v1/jobs/{id}        job status (+ results once done)
//	GET    /v1/jobs/{id}/events SSE stream of the job's lifecycle
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /healthz             liveness (503 while draining)
//	GET    /metrics             Prometheus text exposition
type SimSpec struct {
	// Workload names a catalogue workload (see psim -workloads). Trace-file
	// replays cannot be submitted remotely: their identity is the file's
	// contents, which the daemon does not have.
	Workload string `json:"workload"`
	// Base is the L2 prefetcher ("none", "spp", "vldp", "ppf", "bop", ...);
	// empty means no prefetching.
	Base string `json:"base,omitempty"`
	// Variant is the page-size scheme by name ("original", "PSA", "PSA-SD",
	// ... — anything core.ParseVariant accepts). Empty means original.
	Variant string `json:"variant,omitempty"`
	// L1 optionally selects a first-level prefetcher: "nextline", "ipcp",
	// "ipcp++".
	L1 string `json:"l1,omitempty"`
}

// SimRequest is the body of POST /v1/sims: one job holding a batch of
// simulations that run on a shared machine configuration.
type SimRequest struct {
	// Config is the simulated machine; nil uses the server's default
	// (Table I).
	Config *sim.Config `json:"config,omitempty"`
	// Opt controls run length; Opt.Instructions must be positive.
	Opt sim.RunOpt `json:"opt"`
	// Jobs is the batch, at least one entry.
	Jobs []SimSpec `json:"jobs"`
	// TimeoutMS bounds the job's wall-clock execution; 0 uses the server's
	// default deadline (which may be none). The deadline propagates as a
	// context into every simulation, which stops at its next sampling
	// boundary.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job lifecycle: queued → running → done | failed | canceled.
const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// JobTelemetry is an aggregate simulator-telemetry snapshot over a job's
// completed simulations so far: headline rates clients can chart live from
// the SSE stream without waiting for the full result set.
type JobTelemetry struct {
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
	L1DHitRatio  float64 `json:"l1d_hit_ratio"`
	L2HitRatio   float64 `json:"l2_hit_ratio"`
	LLCHitRatio  float64 `json:"llc_hit_ratio"`
	L2MPKI       float64 `json:"l2_mpki"`
	L2Accuracy   float64 `json:"l2_accuracy"`
	L2Coverage   float64 `json:"l2_coverage"`
	// PrefIssued/PrefCross4K count L2-engine prefetches, PrefCross4K the ones
	// crossing a 4KB boundary (the paper's page-size-awareness signal);
	// CrossPageRate is their ratio.
	PrefIssued    uint64  `json:"pf_issued"`
	PrefCross4K   uint64  `json:"pf_cross4k"`
	CrossPageRate float64 `json:"pf_cross4k_rate"`
}

// JobView is the externally visible state of a job.
type JobView struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	// Total/Done/Hits/Executed count the job's simulations: Hits were served
	// from the result cache (disk or a shared in-flight computation),
	// Executed actually simulated.
	Total    int    `json:"total"`
	Done     int    `json:"done"`
	Hits     int    `json:"hits"`
	Executed int    `json:"executed"`
	Error    string `json:"error,omitempty"`
	// Telemetry aggregates the completed simulations' headline metrics; nil
	// until the first simulation finishes.
	Telemetry *JobTelemetry `json:"telemetry,omitempty"`
	// Results, in submission order, present once Status is "done".
	Results []sim.Result `json:"results,omitempty"`
}

// Event is one SSE frame of a job's event stream: the SSE "event:" field
// carries Type, "id:" carries Seq, and "data:" carries this struct as JSON.
// Every stream replays the job's full history from Seq 1, so late or
// reconnecting subscribers converge on the same sequence.
type Event struct {
	Seq      int       `json:"seq"`
	Type     string    `json:"type"` // queued, running, progress, done, failed, canceled
	Job      string    `json:"job"`
	Status   JobStatus `json:"status"`
	Done     int       `json:"done"`
	Total    int       `json:"total"`
	Hits     int       `json:"hits"`
	Executed int       `json:"executed"`
	Error    string    `json:"error,omitempty"`
	// Telemetry aggregates completed simulations' headline metrics so far;
	// nil until the first completion.
	Telemetry *JobTelemetry `json:"telemetry,omitempty"`
}

// Terminal reports whether this event ends the stream.
func (e Event) Terminal() bool {
	return e.Type == "done" || e.Type == "failed" || e.Type == "canceled"
}
