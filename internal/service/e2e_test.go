package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/dtrace"
	"repro/internal/experiments"
	"repro/internal/simcache"
)

// TestE2EServerParity is the end-to-end acceptance test: a figure produced
// through `pexp -server` (the experiments harness with a service.Client as
// its BatchRunner) must be byte-identical to the locally simulated figure,
// concurrent clients asking for the same figure must cost zero additional
// simulations, and /metrics must account for the sharing.
func TestE2EServerParity(t *testing.T) {
	store, err := simcache.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// The flight recorder stays on for the whole test: tracing must never
	// perturb results (the figures below are compared byte-for-byte).
	srv := New(Config{Store: store, Workers: 4, SimParallelism: 8,
		Flight: dtrace.NewRecorder("e2e", 0)})
	srv.Start()
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	ws, err := experiments.WorkloadsByName([]string{"milc", "soplex"})
	if err != nil {
		t.Fatal(err)
	}
	o := experiments.DefaultOptions()
	o.Warmup = 20_000
	o.Instructions = 80_000
	o.Parallelism = 4
	o.Workloads = ws

	// Ground truth: simulate locally, no cache, no daemon.
	local, err := experiments.Figure2(o)
	if err != nil {
		t.Fatal(err)
	}

	remote := o
	remote.Remote = NewClient(hs.URL)
	first, err := experiments.Figure2(remote)
	if err != nil {
		t.Fatal(err)
	}
	if first.Render() != local.Render() {
		t.Fatalf("remote figure differs from local:\n--- local ---\n%s--- remote ---\n%s",
			local.Render(), first.Render())
	}
	simulated := store.Stats().Misses
	if simulated == 0 {
		t.Fatal("first remote run executed no simulations")
	}

	// Two more clients, concurrently: everything must come from the shared
	// cache — zero additional simulations.
	var wg sync.WaitGroup
	renders := make([]string, 2)
	errs := make([]error, 2)
	for i := range renders {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := experiments.Figure2(remote)
			if err != nil {
				errs[i] = err
				return
			}
			renders[i] = r.Render()
		}(i)
	}
	wg.Wait()
	for i := range renders {
		if errs[i] != nil {
			t.Fatalf("concurrent client %d: %v", i, errs[i])
		}
		if renders[i] != local.Render() {
			t.Errorf("concurrent client %d produced a different figure", i)
		}
	}
	st := store.Stats()
	if st.Misses != simulated {
		t.Errorf("concurrent clients executed %d additional simulations, want 0", st.Misses-simulated)
	}
	if st.Hits+st.Shared < 2*simulated {
		t.Errorf("cache stats = %+v, want at least %d hits+shared", st, 2*simulated)
	}

	// The daemon's metrics account for the work and the sharing.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	// The hits/shared split depends on timing (a concurrent request joins the
	// in-flight computation or reads the finished entry), so assert on their
	// sum via Stats above and on the deterministic counters here.
	for _, want := range []string{
		fmt.Sprintf("psimd_sims_executed_total %d", simulated),
		fmt.Sprintf("psimd_cache_misses_total %d", simulated),
		"psimd_cache_hits_total",
		"psimd_cache_shared_total",
		"psimd_cache_hit_ratio",
		"psimd_job_latency_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q\n%s", want, metrics)
		}
	}

	// The crossing study exercises the virtual-candidate path (vamp) and the
	// Markov chain walker (pangloss) through the same service: remote must
	// again match local byte-for-byte, proving the new engine statistics
	// survive the wire format. It runs after the metrics assertions above,
	// which pin exact simulation counts from the Figure 2 runs.
	localCross, err := experiments.Crossing(o)
	if err != nil {
		t.Fatal(err)
	}
	remoteCross, err := experiments.Crossing(remote)
	if err != nil {
		t.Fatal(err)
	}
	if remoteCross.Render() != localCross.Render() {
		t.Fatalf("remote crossing study differs from local:\n--- local ---\n%s--- remote ---\n%s",
			localCross.Render(), remoteCross.Render())
	}
}
