package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/dtrace"
	"repro/internal/experiments"
	"repro/internal/progress"
	"repro/internal/sim"
)

// Client talks to a psimd daemon. It implements experiments.BatchRunner, so
// `pexp -server URL` routes every figure's single-core batches through the
// service — the existing experiment harness doubles as the daemon's traffic
// generator.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to a client without timeout (jobs are
	// long-running; cancellation comes from the context).
	HTTPClient *http.Client
	// Backoff governs transient-failure retries in Submit. The zero value
	// uses the defaults.
	Backoff Backoff
}

// NewClient builds a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/"), HTTPClient: &http.Client{}}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{}
}

// httpStatusError is a non-2xx response, typed so retry policy can
// distinguish transient statuses (429, 5xx) from terminal ones (4xx).
type httpStatusError struct {
	status int
	msg    string
}

func (e *httpStatusError) Error() string { return e.msg }

// errStreamEnded marks an event stream that closed without a terminal event —
// the serving daemon died mid-job, so the work is retryable elsewhere.
var errStreamEnded = errors.New("psimd: event stream ended before job finished")

// transientErr reports whether err is worth retrying: connection-level
// failures, daemon-side 5xx/429, or a stream that died mid-job. Context
// expiry and application errors (4xx) are terminal.
func transientErr(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var he *httpStatusError
	if errors.As(err, &he) {
		return he.status == http.StatusTooManyRequests || he.status >= 500
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		return true // dial failure: endpoint unreachable
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true // read/stream failure: endpoint died mid-response
	}
	return errors.Is(err, errStreamEnded) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)
}

// Backoff is a jittered exponential retry schedule: attempt n waits
// Base·2ⁿ capped at Max, then jittered to 50–100% of that to decorrelate
// clients hammering a recovering daemon.
type Backoff struct {
	// Base is the first retry's nominal delay. Default 100ms.
	Base time.Duration
	// Max caps the exponential growth. Default 5s.
	Max time.Duration
	// Retries bounds transient-failure retries per call (backpressure 429s
	// with a Retry-After hint are waited out without consuming retries —
	// the daemon is healthy, just busy). Default 4.
	Retries int
}

func (b Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return 100 * time.Millisecond
}

func (b Backoff) max() time.Duration {
	if b.Max > 0 {
		return b.Max
	}
	return 5 * time.Second
}

func (b Backoff) retries() int {
	if b.Retries > 0 {
		return b.Retries
	}
	return 4
}

// delay computes the jittered wait before retry number attempt (0-based).
func (b Backoff) delay(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	d := b.base() << uint(attempt)
	if d <= 0 || d > b.max() {
		d = b.max()
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// sleep waits the attempt's delay (or explicit, when the server supplied a
// Retry-After hint), bounded by ctx.
func (b Backoff) sleep(ctx context.Context, attempt int, explicit time.Duration) error {
	wait := b.delay(attempt)
	if explicit > 0 {
		wait = explicit
	}
	select {
	case <-time.After(wait):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// decodeError extracts the server's JSON error message.
func decodeError(resp *http.Response) error {
	var e apiError
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return &httpStatusError{resp.StatusCode, fmt.Sprintf("psimd: %s (HTTP %d)", e.Error, resp.StatusCode)}
	}
	return &httpStatusError{resp.StatusCode, fmt.Sprintf("psimd: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))}
}

// Submit posts one batch, absorbing two kinds of trouble: backpressure
// (429 with a Retry-After hint is waited out and resubmitted, indefinitely —
// bounded only by ctx) and transient failures (connection errors, 5xx, or
// hint-less 429s retry with jittered exponential backoff up to
// Backoff.Retries times).
func (c *Client) Submit(ctx context.Context, req SimRequest) (JobView, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return JobView{}, err
	}
	failures := 0
	for {
		v, retryAfter, err := c.trySubmit(ctx, body)
		if err == nil {
			return v, nil
		}
		if ctx.Err() != nil {
			return JobView{}, ctx.Err()
		}
		if !transientErr(err) {
			return JobView{}, err
		}
		if retryAfter <= 0 {
			// A real failure, not advertised backpressure: count it.
			failures++
			if failures > c.Backoff.retries() {
				return JobView{}, err
			}
		}
		if serr := c.Backoff.sleep(ctx, failures-1, retryAfter); serr != nil {
			return JobView{}, serr
		}
	}
}

// trySubmit performs one POST /v1/sims attempt. retryAfter is non-zero when
// the daemon rejected with explicit backpressure advice.
func (c *Client) trySubmit(ctx context.Context, body []byte) (v JobView, retryAfter time.Duration, err error) {
	// Each attempt is its own span; its context rides the traceparent header,
	// so the daemon's job spans parent under the attempt that landed.
	sctx, sp := dtrace.Start(ctx, "submit")
	sp.Annotate(c.BaseURL)
	defer func() {
		if sp != nil {
			sp.Fail(err)
			sp.End()
		}
	}()
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/sims", bytes.NewReader(body))
	if err != nil {
		return JobView{}, 0, err
	}
	hr.Header.Set("Content-Type", "application/json")
	dtrace.Inject(sctx, hr.Header)
	resp, err := c.httpClient().Do(hr)
	if err != nil {
		return JobView{}, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		if ra, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && ra > 0 {
			retryAfter = time.Duration(ra) * time.Second
		}
	}
	if resp.StatusCode != http.StatusAccepted {
		return JobView{}, retryAfter, decodeError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return JobView{}, 0, fmt.Errorf("psimd: decode submit response: %w", err)
	}
	return v, 0, nil
}

// Job fetches a job's current view (including results once done).
func (c *Client) Job(ctx context.Context, id string) (JobView, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return JobView{}, err
	}
	resp, err := c.httpClient().Do(hr)
	if err != nil {
		return JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobView{}, decodeError(resp)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return JobView{}, fmt.Errorf("psimd: decode job: %w", err)
	}
	return v, nil
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return decodeError(resp)
	}
	return nil
}

// Flight fetches the daemon's span flight-recorder dump (GET /debug/flight),
// optionally filtered to one trace ID. A daemon running without a recorder
// answers 404, which is returned as an error.
func (c *Client) Flight(ctx context.Context, trace string) ([]dtrace.SpanData, error) {
	u := c.BaseURL + "/debug/flight"
	if trace != "" {
		u += "?trace=" + url.QueryEscape(trace)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return dtrace.ReadJSONL(resp.Body)
}

// Events subscribes to a job's SSE stream, invoking fn for every event until
// the terminal one (after which it returns nil) or until ctx/stream failure.
// Every subscription replays the job's history from seq 1; fn must tolerate
// replays (filter on Event.Seq) if it resubscribes.
func (c *Client) Events(ctx context.Context, id string, fn func(Event)) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	hr.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && len(data) > 0:
			var e Event
			if err := json.Unmarshal(data, &e); err != nil {
				return fmt.Errorf("psimd: bad event: %w", err)
			}
			data = nil
			fn(e)
			if e.Terminal() {
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("psimd: event stream: %w", err)
	}
	return errStreamEnded
}

// Follow streams a job to completion — resubscribing with backoff if the
// stream drops while the context is still live — and returns the final view
// (with results for a done job). fn, which may be nil, observes each event
// exactly once, in order.
func (c *Client) Follow(ctx context.Context, id string, fn func(Event)) (JobView, error) {
	lastSeq := 0
	for attempt := 0; ; attempt++ {
		err := c.Events(ctx, id, func(e Event) {
			if e.Seq <= lastSeq {
				return // replayed history after a reconnect
			}
			lastSeq = e.Seq
			if fn != nil {
				fn(e)
			}
		})
		if err == nil {
			return c.Job(ctx, id)
		}
		if ctx.Err() != nil {
			return JobView{}, ctx.Err()
		}
		// The job may have finished while the stream was down.
		if v, jerr := c.Job(ctx, id); jerr == nil && v.Status.Terminal() {
			return v, nil
		}
		if attempt >= 4 {
			return JobView{}, err
		}
		select {
		case <-time.After(time.Duration(attempt+1) * 200 * time.Millisecond):
		case <-ctx.Done():
			return JobView{}, ctx.Err()
		}
	}
}

// buildSimRequest converts an experiment batch into the wire form,
// rejecting workloads that cannot run remotely.
func buildSimRequest(ctx context.Context, cfg sim.Config, jobs []experiments.Job, opt sim.RunOpt) (SimRequest, error) {
	req := SimRequest{Config: &cfg, Opt: opt, Jobs: make([]SimSpec, len(jobs))}
	if d, ok := ctx.Deadline(); ok {
		if ms := time.Until(d).Milliseconds(); ms > 0 {
			req.TimeoutMS = ms
		}
	}
	for i, j := range jobs {
		if j.Workload.ContentID != "" {
			return SimRequest{}, fmt.Errorf("psimd: workload %q is content-addressed (a trace replay) and cannot run remotely", j.Workload.Name)
		}
		req.Jobs[i] = SimSpec{
			Workload: j.Workload.Name,
			Base:     j.Spec.Base,
			Variant:  j.Spec.Variant.String(),
			L1:       string(j.Spec.L1),
		}
	}
	return req, nil
}

// batchProgress carries tracker state across failover attempts: a batch
// resubmitted to a second endpoint restarts its Done count at zero, and the
// high-water mark here keeps the local tracker monotonic (no double steps).
type batchProgress struct {
	done, hits int
}

// RunBatch implements experiments.BatchRunner: it ships the batch to the
// daemon, mirrors its progress events into the local tracker, and returns
// results in job order. Only catalogue workloads can run remotely — a
// trace-file replay's identity is its contents, which the daemon does not
// have.
func (c *Client) RunBatch(ctx context.Context, cfg sim.Config, jobs []experiments.Job, opt sim.RunOpt, tr *progress.Tracker) (res []sim.Result, err error) {
	req, err := buildSimRequest(ctx, cfg, jobs, opt)
	if err != nil {
		return nil, err
	}
	ctx, sp := dtrace.Start(ctx, "batch")
	if sp != nil {
		sp.Annotate(fmt.Sprintf("%d jobs", len(jobs)))
		defer func() {
			sp.Fail(err)
			sp.End()
		}()
	}
	return c.runBatch(ctx, req, len(jobs), tr, &batchProgress{})
}

// runBatch submits req and follows it to completion, stepping tr through bp
// so retried batches never double-count progress.
func (c *Client) runBatch(ctx context.Context, req SimRequest, njobs int, tr *progress.Tracker, bp *batchProgress) ([]sim.Result, error) {
	sub, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	step := func(e Event) {
		if tr == nil || e.Done <= bp.done {
			return
		}
		hits := e.Hits - bp.hits
		for i := 0; i < e.Done-bp.done; i++ {
			tr.Step(i < hits)
		}
		bp.done, bp.hits = e.Done, e.Hits
	}
	final, err := c.Follow(ctx, sub.ID, step)
	if err != nil {
		// Leave no orphaned work behind: a client giving up cancels its job.
		if ctx.Err() != nil {
			cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = c.Cancel(cctx, sub.ID)
			cancel()
		}
		return nil, err
	}
	switch final.Status {
	case StatusDone:
		if len(final.Results) != njobs {
			return nil, fmt.Errorf("psimd: job %s returned %d results for %d jobs", final.ID, len(final.Results), njobs)
		}
		return final.Results, nil
	case StatusCanceled:
		return nil, fmt.Errorf("psimd: job %s canceled", final.ID)
	default:
		return nil, fmt.Errorf("psimd: job %s %s: %s", final.ID, final.Status, final.Error)
	}
}
