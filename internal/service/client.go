package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/progress"
	"repro/internal/sim"
)

// Client talks to a psimd daemon. It implements experiments.BatchRunner, so
// `pexp -server URL` routes every figure's single-core batches through the
// service — the existing experiment harness doubles as the daemon's traffic
// generator.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to a client without timeout (jobs are
	// long-running; cancellation comes from the context).
	HTTPClient *http.Client
}

// NewClient builds a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/"), HTTPClient: &http.Client{}}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{}
}

// decodeError extracts the server's JSON error message.
func decodeError(resp *http.Response) error {
	var e apiError
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("psimd: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("psimd: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

// Submit posts one batch, retrying while the daemon applies backpressure:
// a 429 is waited out for its Retry-After hint (bounded by ctx), then
// resubmitted.
func (c *Client) Submit(ctx context.Context, req SimRequest) (JobView, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return JobView{}, err
	}
	for {
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/sims", bytes.NewReader(body))
		if err != nil {
			return JobView{}, err
		}
		hr.Header.Set("Content-Type", "application/json")
		resp, err := c.httpClient().Do(hr)
		if err != nil {
			return JobView{}, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			wait := time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			resp.Body.Close()
			select {
			case <-time.After(wait):
				continue
			case <-ctx.Done():
				return JobView{}, ctx.Err()
			}
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return JobView{}, decodeError(resp)
		}
		var v JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			return JobView{}, fmt.Errorf("psimd: decode submit response: %w", err)
		}
		return v, nil
	}
}

// Job fetches a job's current view (including results once done).
func (c *Client) Job(ctx context.Context, id string) (JobView, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return JobView{}, err
	}
	resp, err := c.httpClient().Do(hr)
	if err != nil {
		return JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobView{}, decodeError(resp)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return JobView{}, fmt.Errorf("psimd: decode job: %w", err)
	}
	return v, nil
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return decodeError(resp)
	}
	return nil
}

// Events subscribes to a job's SSE stream, invoking fn for every event until
// the terminal one (after which it returns nil) or until ctx/stream failure.
// Every subscription replays the job's history from seq 1; fn must tolerate
// replays (filter on Event.Seq) if it resubscribes.
func (c *Client) Events(ctx context.Context, id string, fn func(Event)) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	hr.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && len(data) > 0:
			var e Event
			if err := json.Unmarshal(data, &e); err != nil {
				return fmt.Errorf("psimd: bad event: %w", err)
			}
			data = nil
			fn(e)
			if e.Terminal() {
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("psimd: event stream: %w", err)
	}
	return fmt.Errorf("psimd: event stream ended before job finished")
}

// Follow streams a job to completion — resubscribing with backoff if the
// stream drops while the context is still live — and returns the final view
// (with results for a done job). fn, which may be nil, observes each event
// exactly once, in order.
func (c *Client) Follow(ctx context.Context, id string, fn func(Event)) (JobView, error) {
	lastSeq := 0
	for attempt := 0; ; attempt++ {
		err := c.Events(ctx, id, func(e Event) {
			if e.Seq <= lastSeq {
				return // replayed history after a reconnect
			}
			lastSeq = e.Seq
			if fn != nil {
				fn(e)
			}
		})
		if err == nil {
			return c.Job(ctx, id)
		}
		if ctx.Err() != nil {
			return JobView{}, ctx.Err()
		}
		// The job may have finished while the stream was down.
		if v, jerr := c.Job(ctx, id); jerr == nil && v.Status.Terminal() {
			return v, nil
		}
		if attempt >= 4 {
			return JobView{}, err
		}
		select {
		case <-time.After(time.Duration(attempt+1) * 200 * time.Millisecond):
		case <-ctx.Done():
			return JobView{}, ctx.Err()
		}
	}
}

// RunBatch implements experiments.BatchRunner: it ships the batch to the
// daemon, mirrors its progress events into the local tracker, and returns
// results in job order. Only catalogue workloads can run remotely — a
// trace-file replay's identity is its contents, which the daemon does not
// have.
func (c *Client) RunBatch(ctx context.Context, cfg sim.Config, jobs []experiments.Job, opt sim.RunOpt, tr *progress.Tracker) ([]sim.Result, error) {
	req := SimRequest{Config: &cfg, Opt: opt, Jobs: make([]SimSpec, len(jobs))}
	if d, ok := ctx.Deadline(); ok {
		if ms := time.Until(d).Milliseconds(); ms > 0 {
			req.TimeoutMS = ms
		}
	}
	for i, j := range jobs {
		if j.Workload.ContentID != "" {
			return nil, fmt.Errorf("psimd: workload %q is content-addressed (a trace replay) and cannot run remotely", j.Workload.Name)
		}
		req.Jobs[i] = SimSpec{
			Workload: j.Workload.Name,
			Base:     j.Spec.Base,
			Variant:  j.Spec.Variant.String(),
			L1:       string(j.Spec.L1),
		}
	}
	sub, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	prevDone, prevHits := 0, 0
	step := func(e Event) {
		if tr == nil || e.Done <= prevDone {
			return
		}
		hits := e.Hits - prevHits
		for i := 0; i < e.Done-prevDone; i++ {
			tr.Step(i < hits)
		}
		prevDone, prevHits = e.Done, e.Hits
	}
	final, err := c.Follow(ctx, sub.ID, step)
	if err != nil {
		// Leave no orphaned work behind: a client giving up cancels its job.
		if ctx.Err() != nil {
			cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = c.Cancel(cctx, sub.ID)
			cancel()
		}
		return nil, err
	}
	switch final.Status {
	case StatusDone:
		if len(final.Results) != len(jobs) {
			return nil, fmt.Errorf("psimd: job %s returned %d results for %d jobs", final.ID, len(final.Results), len(jobs))
		}
		return final.Results, nil
	case StatusCanceled:
		return nil, fmt.Errorf("psimd: job %s canceled", final.ID)
	default:
		return nil, fmt.Errorf("psimd: job %s %s: %s", final.ID, final.Status, final.Error)
	}
}
