package vm

import (
	"repro/internal/mem"
)

// Translation is the result of translating a virtual address: the physical
// address and the size of the backing page — the address-translation metadata
// whose page-size component PPM propagates to the lower-level prefetchers.
type Translation struct {
	PAddr mem.Addr
	Size  mem.PageSize
}

// AddressSpace is one process's virtual address space: a page table populated
// on first touch according to a THP policy, over a shared physical allocator.
type AddressSpace struct {
	alloc  *Allocator
	pt     *PageTable
	policy THPPolicy

	// decided records, per 2MB-aligned virtual region, whether the policy
	// chose a huge page; a region decided "small" is then populated with
	// scattered 4KB frames page by page.
	decided map[mem.Addr]bool
	// decided1G records per 1GB-aligned virtual region whether an explicit
	// 1GB mapping was requested (GigaPolicy, the hugetlbfs analogue).
	decided1G map[mem.Addr]bool
	regions   int
}

// GigaPolicy is an optional extension of THPPolicy: a policy that also
// implements it may claim whole 1GB-aligned virtual regions for explicit 1GB
// pages, the analogue of a manual hugetlbfs mapping (Linux never does this
// transparently).
type GigaPolicy interface {
	Use1GB(vregion mem.Addr) bool
}

// NewAddressSpace creates an address space over alloc with the given THP
// policy. A nil policy maps everything with 4KB pages.
func NewAddressSpace(alloc *Allocator, policy THPPolicy) *AddressSpace {
	if policy == nil {
		policy = FractionTHP{Frac: 0}
	}
	return &AddressSpace{
		alloc:     alloc,
		pt:        NewPageTable(alloc),
		policy:    policy,
		decided:   make(map[mem.Addr]bool),
		decided1G: make(map[mem.Addr]bool),
	}
}

// PageTable exposes the underlying page table (for the walker).
func (as *AddressSpace) PageTable() *PageTable { return as.pt }

// Allocator exposes the underlying allocator (for page-usage statistics).
func (as *AddressSpace) Allocator() *Allocator { return as.alloc }

// mapNew installs a mapping for the page containing v, which must be
// unmapped, consulting the THP policy on the first touch of each 2MB virtual
// region. Split out of ensureMapped so the translate fast paths probe the
// page table exactly once on the hot (already-mapped) path.
func (as *AddressSpace) mapNew(v mem.Addr) {
	if gp, ok := as.policy.(GigaPolicy); ok {
		gregion := mem.PageBase(v, mem.Page1G)
		use, seen := as.decided1G[gregion]
		if !seen {
			use = gp.Use1GB(gregion)
			as.decided1G[gregion] = use
		}
		if use {
			as.pt.Map(gregion, PTE{Frame: as.alloc.Alloc1G(), Size: mem.Page1G, Valid: true})
			return
		}
	}
	region := mem.PageBase(v, mem.Page2M)
	huge, seen := as.decided[region]
	if !seen {
		huge = as.policy.Use2MB(region, as.regions)
		as.decided[region] = huge
		as.regions++
	}
	if huge {
		as.pt.Map(region, PTE{Frame: as.alloc.Alloc2M(), Size: mem.Page2M, Valid: true})
		return
	}
	as.pt.Map(mem.PageBase(v, mem.Page4K),
		PTE{Frame: as.alloc.Alloc4K(), Size: mem.Page4K, Valid: true})
}

// ensureMapped installs a mapping for the page containing v if absent.
func (as *AddressSpace) ensureMapped(v mem.Addr) {
	if _, ok := as.pt.Lookup(v); ok {
		return
	}
	as.mapNew(v)
}

// Translate returns the translation for v, demand-populating the mapping.
// It performs no timing; the MMU models TLB and walk latency separately.
func (as *AddressSpace) Translate(v mem.Addr) Translation {
	pte, ok := as.pt.Lookup(v)
	if !ok {
		as.mapNew(v)
		pte, _ = as.pt.Lookup(v)
	}
	off := v & (pte.Size.Bytes() - 1)
	return Translation{PAddr: pte.Frame + off, Size: pte.Size}
}

// LookupOnly translates v only if it is already mapped, without
// demand-populating. Prefetchers use it so speculation never creates
// mappings.
func (as *AddressSpace) LookupOnly(v mem.Addr) (Translation, bool) {
	pte, ok := as.pt.Lookup(v)
	if !ok {
		return Translation{}, false
	}
	off := v & (pte.Size.Bytes() - 1)
	return Translation{PAddr: pte.Frame + off, Size: pte.Size}, true
}

// WalkFor returns the walk references and translation for v, which must
// already be mapped (Translate demand-populates). The walk itself doubles as
// the residency probe: only a missing mapping pays the extra mapNew + rewalk.
func (as *AddressSpace) WalkFor(v mem.Addr) (WalkResult, Translation) {
	r, ok := as.pt.Walk(v)
	if !ok {
		as.mapNew(v)
		if r, ok = as.pt.Walk(v); !ok {
			panic("vm: walk of unmapped address")
		}
	}
	off := v & (r.PTE.Size.Bytes() - 1)
	return r, Translation{PAddr: r.PTE.Frame + off, Size: r.PTE.Size}
}
