package vm

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// Property and differential tests for the dense-array translation structures
// (FlatVM): the flat page table, TLB and walk cache must be observationally
// identical to the original pointer-radix and struct-slice implementations,
// and the whole walk path must stay allocation-free in steady state.

// withFlatVM runs f twice, once per FlatVM setting, restoring the default.
func withFlatVM(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	saved := FlatVM
	defer func() { FlatVM = saved }()
	for _, flat := range []bool{true, false} {
		FlatVM = flat
		name := "radix"
		if flat {
			name = "flat"
		}
		t.Run(name, f)
	}
}

// gigaSome claims a single 1GB region for an explicit 1GB page (the allocator
// reserves exactly one 1GB frame), so a single address space mixes all three
// page sizes.
type gigaSome struct{ FractionTHP }

func (gigaSome) Use1GB(r mem.Addr) bool { return r>>30 == 3 }

// TestPropTranslationRoundTrip: under a randomized mix of 4KB, 2MB and 1GB
// mappings, translations preserve page-offset bits, are stable, agree with the
// page table, and report walk depths matching the page size — in both table
// representations.
func TestPropTranslationRoundTrip(t *testing.T) {
	withFlatVM(t, func(t *testing.T) {
		as := NewAddressSpace(NewAllocator(8<<30, 21), gigaSome{FractionTHP{Frac: 0.5, Seed: 23}})
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 2000; i++ {
			v := mem.Addr(rng.Int63n(1 << 33))
			tr := as.Translate(v)
			if tr.PAddr&(tr.Size.Bytes()-1) != v&(tr.Size.Bytes()-1) {
				t.Fatalf("offset bits lost: v=%#x tr=%+v", v, tr)
			}
			if tr2 := as.Translate(v); tr2 != tr {
				t.Fatalf("translation unstable: v=%#x %+v vs %+v", v, tr, tr2)
			}
			pte, ok := as.PageTable().Lookup(v)
			if !ok || pte.Size != tr.Size || pte.Frame != mem.PageBase(tr.PAddr, tr.Size) {
				t.Fatalf("Lookup disagrees with Translate: v=%#x pte=%+v tr=%+v", v, pte, tr)
			}
			walk, wtr := as.WalkFor(v)
			if wtr != tr {
				t.Fatalf("WalkFor translation mismatch: v=%#x %+v vs %+v", v, wtr, tr)
			}
			wantLevels := map[mem.PageSize]int{mem.Page4K: 4, mem.Page2M: 3, mem.Page1G: 2}[tr.Size]
			if walk.Levels != wantLevels {
				t.Fatalf("walk levels = %d for %v page", walk.Levels, tr.Size)
			}
		}
	})
}

// mkPageTables builds one flat and one radix page table over allocators with
// identical seeds, so matched Map sequences produce identical frames.
func mkPageTables(t *testing.T, seed uint64) (flat, radix *PageTable, fa, ra *Allocator) {
	t.Helper()
	saved := FlatVM
	defer func() { FlatVM = saved }()
	fa, ra = NewAllocator(8<<30, seed), NewAllocator(8<<30, seed)
	FlatVM = true
	flat = NewPageTable(fa)
	FlatVM = false
	radix = NewPageTable(ra)
	return
}

// TestPropRadixFlatWalkEquivalence: randomized mapping sequences produce
// byte-identical Walk and Lookup results (references, levels, leaf PTEs) from
// the flat and radix representations.
func TestPropRadixFlatWalkEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 1234} {
		flat, radix, fa, ra := mkPageTables(t, seed)
		rng := rand.New(rand.NewSource(int64(seed) * 31))
		sizes := []mem.PageSize{mem.Page4K, mem.Page4K, mem.Page4K, mem.Page2M, mem.Page2M}
		var mapped []mem.Addr
		// One 1GB mapping (the allocator reserves a single 1GB frame), then a
		// randomized mix of 4KB and 2MB mappings around it.
		g := mem.Addr(7) << 30
		gf := fa.Alloc1G()
		ra.Alloc1G()
		flat.Map(g, PTE{Frame: gf, Size: mem.Page1G, Valid: true})
		radix.Map(g, PTE{Frame: gf, Size: mem.Page1G, Valid: true})
		mapped = append(mapped, g, g+512<<20)
		// Like AddressSpace, each 2MB region holds either one 2MB leaf or
		// scattered 4KB pages — never a mix (the tables reject shadowing).
		has4K := map[mem.Addr]bool{}
		for i := 0; i < 600; i++ {
			size := sizes[rng.Intn(len(sizes))]
			v := mem.PageBase(mem.Addr(rng.Int63n(1<<38)), size)
			if v>>30 == 7 {
				continue // covered by the 1GB leaf
			}
			if size == mem.Page2M && has4K[v>>mem.PageBits2M] {
				continue
			}
			// Skip addresses already covered by either table (the address
			// space owns dedup; both tables panic on overlap).
			if _, ok := flat.Lookup(v); ok {
				continue
			}
			if size == mem.Page4K {
				has4K[v>>mem.PageBits2M] = true
			}
			var frame mem.Addr
			switch size {
			case mem.Page1G:
				frame = fa.Alloc1G()
				ra.Alloc1G()
			case mem.Page2M:
				frame = fa.Alloc2M()
				ra.Alloc2M()
			default:
				frame = fa.Alloc4K()
				ra.Alloc4K()
			}
			flat.Map(v, PTE{Frame: frame, Size: size, Valid: true})
			radix.Map(v, PTE{Frame: frame, Size: size, Valid: true})
			mapped = append(mapped, v)
		}
		probe := func(v mem.Addr) {
			fw, fok := flat.Walk(v)
			rw, rok := radix.Walk(v)
			if fok != rok || fw != rw {
				t.Fatalf("seed %d: walk diverged at %#x:\nflat  %v %+v\nradix %v %+v", seed, v, fok, fw, rok, rw)
			}
			fp, fok2 := flat.Lookup(v)
			rp, rok2 := radix.Lookup(v)
			if fok2 != rok2 || fp != rp {
				t.Fatalf("seed %d: lookup diverged at %#x: %v %+v vs %v %+v", seed, v, fok2, fp, rok2, rp)
			}
		}
		for _, v := range mapped {
			probe(v)
			probe(v + mem.Addr(rng.Int63n(int64(mem.PageSize4K))))
		}
		for i := 0; i < 500; i++ {
			probe(mem.Addr(rng.Int63n(1 << 39))) // mostly unmapped
		}
		if flat.Pages() != radix.Pages() {
			t.Fatalf("page counts diverged: %d vs %d", flat.Pages(), radix.Pages())
		}
	}
}

// mkTLBs builds one flat and one legacy TLB with the same geometry.
func mkTLBs(t *testing.T, entries, ways int) (flat, legacy *TLB) {
	t.Helper()
	saved := FlatVM
	defer func() { FlatVM = saved }()
	FlatVM = true
	flat = NewTLB(entries, ways)
	FlatVM = false
	legacy = NewTLB(entries, ways)
	return
}

// TestPropTLBFlatLegacyEquivalence: a randomized lookup/insert/flush sequence
// drives both layouts; every return value and every statistic must match.
func TestPropTLBFlatLegacyEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 17, 404} {
		flat, legacy := mkTLBs(t, 64, 4)
		rng := rand.New(rand.NewSource(seed))
		sizes := []mem.PageSize{mem.Page4K, mem.Page4K, mem.Page2M, mem.Page1G}
		for i := 0; i < 8000; i++ {
			// A small vpn pool forces set conflicts, duplicate inserts and
			// evictions — the interesting transitions.
			v := mem.Addr(rng.Intn(96)) << mem.PageBits4K
			switch rng.Intn(4) {
			case 0, 1:
				ft, fok := flat.Lookup(v)
				lt, lok := legacy.Lookup(v)
				if fok != lok || ft != lt {
					t.Fatalf("seed %d op %d: lookup(%#x) diverged: %v %+v vs %v %+v", seed, i, v, fok, ft, lok, lt)
				}
			case 2:
				size := sizes[rng.Intn(len(sizes))]
				tr := Translation{PAddr: mem.PageBase(mem.Addr(rng.Intn(1<<20))<<mem.PageBits4K, size), Size: size}
				flat.Insert(v, tr)
				legacy.Insert(v, tr)
			case 3:
				if rng.Intn(50) == 0 {
					flat.Flush()
					legacy.Flush()
				}
			}
		}
		if flat.Hits != legacy.Hits || flat.Misses != legacy.Misses || flat.HitsBy != legacy.HitsBy {
			t.Fatalf("seed %d: stats diverged: flat %d/%d/%v legacy %d/%d/%v",
				seed, flat.Hits, flat.Misses, flat.HitsBy, legacy.Hits, legacy.Misses, legacy.HitsBy)
		}
	}
}

// TestPropTLBDenseInvariants checks structural invariants of the dense layout
// directly: tag words are valid or zero, valid ways are exactly the non-zero
// LRU stamps, stamps within a set are unique (the strict-LRU victim order is
// well-defined), and an entry survives exactly ways-1 subsequent distinct
// inserts into its set without a touch.
func TestPropTLBDenseInvariants(t *testing.T) {
	saved := FlatVM
	defer func() { FlatVM = saved }()
	FlatVM = true
	tlb := NewTLB(32, 4)
	rng := rand.New(rand.NewSource(8))
	check := func() {
		for s := 0; s < tlb.sets; s++ {
			seen := map[uint64]bool{}
			for w := 0; w < tlb.ways; w++ {
				i := s*tlb.ways + w
				tag, lru := tlb.tags[i], tlb.lrus[i]
				if (tag == 0) != (lru == 0) && tag == 0 {
					t.Fatalf("set %d way %d: invalid entry with LRU stamp %d", s, w, lru)
				}
				if tag != 0 {
					if tag&tlbTagValid == 0 {
						t.Fatalf("set %d way %d: tag %#x missing valid bit", s, w, tag)
					}
					if seen[lru] {
						t.Fatalf("set %d: duplicate LRU stamp %d", s, lru)
					}
					seen[lru] = true
				}
			}
		}
	}
	for i := 0; i < 4000; i++ {
		v := mem.Addr(rng.Intn(4096)) << mem.PageBits4K
		if rng.Intn(2) == 0 {
			tlb.Lookup(v)
		} else {
			tlb.Insert(v, Translation{PAddr: v, Size: mem.Page4K})
		}
		if i%64 == 0 {
			check()
		}
	}
	check()

	// LRU retention: in a fresh set, an untouched entry survives ways-1
	// further inserts and is evicted by the ways-th.
	tlb2 := NewTLB(4, 4) // one set
	base := mem.Addr(0x100) << mem.PageBits4K
	tlb2.Insert(base, Translation{PAddr: base, Size: mem.Page4K})
	for k := 1; k < 4; k++ {
		tlb2.Insert(base+mem.Addr(k)<<mem.PageBits4K, Translation{PAddr: base, Size: mem.Page4K})
		if _, ok := tlb2.Lookup(base); !ok {
			t.Fatalf("entry evicted after only %d inserts into a 4-way set", k)
		}
		tlb2.Lookup(base) // keep it MRU-adjacent but deterministic
	}
}

// TestPropWalkCacheFlatLegacyEquivalence drives both walk-cache layouts with a
// randomized contains/insert sequence.
func TestPropWalkCacheFlatLegacyEquivalence(t *testing.T) {
	saved := FlatVM
	defer func() { FlatVM = saved }()
	FlatVM = true
	flat := NewWalkCache(8)
	FlatVM = false
	legacy := NewWalkCache(8)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 5000; i++ {
		level := rng.Intn(3)
		key := mem.Addr(rng.Intn(40))
		if rng.Intn(2) == 0 {
			if f, l := flat.contains(level, key), legacy.contains(level, key); f != l {
				t.Fatalf("op %d: contains(%d,%#x) diverged: %v vs %v", i, level, key, f, l)
			}
		} else {
			flat.insert(level, key)
			legacy.insert(level, key)
		}
	}
	if flat.Hits != legacy.Hits || flat.Lookups != legacy.Lookups {
		t.Fatalf("stats diverged: %d/%d vs %d/%d", flat.Hits, flat.Lookups, legacy.Hits, legacy.Lookups)
	}
}

// TestWalkPathZeroAllocs locks down the allocation-free walk path: with a tiny
// TLB over a pre-mapped working set, every translate is a TLB miss and a full
// walk (arena scratch requests, flat-table reads, walk-cache probes), and none
// of it may allocate.
func TestWalkPathZeroAllocs(t *testing.T) {
	as := NewAddressSpace(NewAllocator(1<<30, 31), FractionTHP{Frac: 0.3, Seed: 5})
	cfg := DefaultMMUConfig()
	cfg.L1Entries, cfg.L1Ways = 4, 4 // one set: guarantees misses across a wide sweep
	cfg.L2Entries, cfg.L2Ways = 4, 4
	port := mem.PortFunc(func(req *mem.Request, at mem.Cycle) mem.Cycle { return at + 5 })
	m := NewMMU(as, cfg, 0, port)
	const pages = 512
	for p := 0; p < pages; p++ {
		as.Translate(0x40000000 + mem.Addr(p)<<mem.PageBits4K) // pre-map
	}
	i := 0
	step := func() {
		v := 0x40000000 + mem.Addr(i%pages)<<mem.PageBits4K
		m.Translate(v, mem.Cycle(i))
		i += 37 // stride across sets so the tiny TLBs keep missing
	}
	for k := 0; k < 256; k++ {
		step() // warm the walk arena and any lazily-sized state
	}
	avg := testing.AllocsPerRun(100, func() {
		for k := 0; k < 64; k++ {
			step()
		}
	})
	if avg != 0 {
		t.Errorf("TLB-miss-heavy walk path allocates: %.2f allocs per 64 translates", avg)
	}
	if m.Walks == 0 {
		t.Fatal("test did not exercise the walk path")
	}
}
