package vm

import (
	"testing"

	"repro/internal/mem"
)

// gigaAll requests 1GB backing for every 1GB region (hugetlbfs analogue).
type gigaAll struct{ FractionTHP }

func (gigaAll) Use1GB(mem.Addr) bool { return true }

func TestAlloc1GAlignedAndAccounted(t *testing.T) {
	a := NewAllocator(8<<30, 1)
	f := a.Alloc1G()
	if f%mem.PageSize1G != 0 {
		t.Errorf("1GB frame %#x not aligned", f)
	}
	if a.Bytes1G != mem.PageSize1G {
		t.Errorf("Bytes1G = %d", a.Bytes1G)
	}
	if got := a.PageSizeOf(f + 0x12345); got != mem.Page1G {
		t.Errorf("PageSizeOf inside 1GB page = %v", got)
	}
	if got := a.PageSizeOf(f - 1); got == mem.Page1G {
		t.Errorf("PageSizeOf below the region misreported 1GB")
	}
}

func TestSmallAllocatorHasNoGigaRegion(t *testing.T) {
	a := NewAllocator(1<<30, 1)
	defer func() {
		if recover() == nil {
			t.Error("Alloc1G on a 1GB machine did not panic")
		}
	}()
	a.Alloc1G()
}

func TestSmallFramesAvoidGigaRegion(t *testing.T) {
	a := NewAllocator(8<<30, 3)
	giga := a.Alloc1G()
	for i := 0; i < 4096; i++ {
		f := a.Alloc4K()
		if f >= giga && f < giga+mem.PageSize1G {
			t.Fatalf("4KB frame %#x inside the reserved 1GB region", f)
		}
	}
}

func TestAddressSpace1GBMapping(t *testing.T) {
	a := NewAllocator(8<<30, 5)
	as := NewAddressSpace(a, gigaAll{})
	v := mem.Addr(0x40000000) // 1GB-aligned
	tr := as.Translate(v + 0x123456)
	if tr.Size != mem.Page1G {
		t.Fatalf("size = %v, want 1GB", tr.Size)
	}
	// The whole 1GB region is physically contiguous.
	tr2 := as.Translate(v + 900<<20)
	if tr2.PAddr != mem.PageBase(tr.PAddr, mem.Page1G)+900<<20 {
		t.Errorf("1GB region not contiguous: %#x", tr2.PAddr)
	}
	// A 1GB walk touches only 2 page-table levels.
	walk, _ := as.WalkFor(v)
	if walk.Levels != 2 {
		t.Errorf("1GB walk levels = %d, want 2", walk.Levels)
	}
}

func TestTLB1GBEntryCoversRegion(t *testing.T) {
	tlb := NewTLB(64, 4)
	base := mem.Addr(0x40000000)
	tlb.Insert(base, Translation{PAddr: 1 << 31, Size: mem.Page1G})
	got, ok := tlb.Lookup(base + 512<<20)
	if !ok {
		t.Fatal("1GB entry did not cover in-region address")
	}
	if got.Size != mem.Page1G || got.PAddr != 1<<31+512<<20 {
		t.Errorf("translation = %+v", got)
	}
}

func TestMMU1GBWalkShortest(t *testing.T) {
	a := NewAllocator(8<<30, 7)
	as := NewAddressSpace(a, gigaAll{})
	refs := 0
	port := mem.PortFunc(func(req *mem.Request, at mem.Cycle) mem.Cycle {
		refs++
		return at
	})
	m := NewMMU(as, DefaultMMUConfig(), 0, port)
	m.Translate(0x40000000, 0)
	if refs != 2 {
		t.Errorf("1GB walk refs = %d, want 2", refs)
	}
}

func TestPageSizeConstants(t *testing.T) {
	if mem.Page1G.Bytes() != 1<<30 || mem.Page1G.String() != "1GB" {
		t.Error("Page1G geometry wrong")
	}
	if mem.NumPageSizes != 3 || mem.PPMBits != 2 {
		t.Error("PPM sizing constants wrong")
	}
}
