// Package vm implements the virtual-memory substrate the paper's mechanism
// rests on: a 4-level radix page table with 4KB and 2MB mappings, a physical
// frame allocator that deliberately scatters 4KB frames (so that virtual
// contiguity does NOT imply physical contiguity, the property that makes
// page-boundary crossing unsafe), a THP-like large-page policy, a two-level
// TLB hierarchy, and a page-table walker that issues its references into the
// cache hierarchy.
package vm

import (
	"fmt"

	"repro/internal/mem"
)

// Allocator hands out physical frames. The physical space is partitioned into
// three regions:
//
//   - a page-table region (bump-allocated radix-tree nodes),
//   - a huge-page region (bump-allocated, naturally 2MB-aligned), and
//   - a small-frame region from which 4KB frames are drawn pseudo-randomly,
//     modelling a fragmented physical memory in which consecutive virtual
//     4KB pages land on unrelated physical frames.
type Allocator struct {
	physBytes mem.Addr

	ptNext mem.Addr // bump pointer inside the page-table region
	ptEnd  mem.Addr

	hugeNext mem.Addr // bump pointer inside the 2MB huge region
	hugeEnd  mem.Addr

	gigaNext mem.Addr // bump pointer inside the 1GB page region (may be empty)
	gigaEnd  mem.Addr

	smallBase   mem.Addr
	smallFrames uint64 // number of 4KB frames in the small region
	// smallUsed is a bitset over frame indices (one bit per 4KB frame, ~32KB
	// per mapped GB); it replaced a map[uint64]struct{} whose hashing and
	// growth dominated demand-fault time on 4KB-heavy workloads. The frame
	// sequence is unchanged: same splitmix64 draws, same collision skips.
	smallUsed  []uint64
	smallCount uint64 // number of set bits in smallUsed
	rngState   uint64

	// Mapped memory accounting, used to reproduce Figure 3.
	Bytes4K mem.Addr
	Bytes2M mem.Addr
	Bytes1G mem.Addr
}

// NewAllocator creates an allocator for a physical memory of physBytes bytes
// (e.g. 8GB for the single-core configuration). Seed perturbs the 4KB frame
// scattering.
func NewAllocator(physBytes mem.Addr, seed uint64) *Allocator {
	if physBytes < 64<<20 {
		panic(fmt.Sprintf("vm: physical memory too small: %d", physBytes))
	}
	ptSize := physBytes / 32
	hugeSize := physBytes / 2
	// Align the region boundaries to 2MB.
	ptSize = ptSize &^ (mem.PageSize2M - 1)
	hugeSize = hugeSize &^ (mem.PageSize2M - 1)
	a := &Allocator{
		physBytes: physBytes,
		ptNext:    0,
		ptEnd:     ptSize,
		hugeNext:  ptSize,
		hugeEnd:   ptSize + hugeSize,
		smallBase: ptSize + hugeSize,
		rngState:  seed*2654435761 + 0x9e3779b97f4a7c15,
	}
	a.smallFrames = uint64((physBytes - a.smallBase) >> mem.PageBits4K)
	// Physical memories of 4GB and above reserve one aligned 1GB region at
	// the top of memory for explicitly requested (hugetlbfs-style) 1GB
	// pages; the 4KB frame pool covers the space below it.
	if physBytes >= 4<<30 {
		gigaBase := (physBytes &^ (mem.PageSize1G - 1)) - mem.PageSize1G
		if gigaBase >= a.smallBase+mem.PageSize1G {
			a.gigaNext = gigaBase
			a.gigaEnd = gigaBase + mem.PageSize1G
			a.smallFrames = uint64((gigaBase - a.smallBase) >> mem.PageBits4K)
		}
	}
	a.smallUsed = make([]uint64, (a.smallFrames+63)/64)
	return a
}

// Alloc1G returns a fresh, 1GB-aligned, physically contiguous frame; it
// panics when the reservation is exhausted (mirroring a failed hugetlbfs
// reservation).
func (a *Allocator) Alloc1G() mem.Addr {
	if a.gigaNext+mem.PageSize1G > a.gigaEnd {
		panic("vm: 1GB page region exhausted")
	}
	p := a.gigaNext
	a.gigaNext += mem.PageSize1G
	a.Bytes1G += mem.PageSize1G
	return p
}

// next64 is a splitmix64 step, deterministic per allocator.
func (a *Allocator) next64() uint64 {
	a.rngState += 0x9e3779b97f4a7c15
	z := a.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// AllocPTNode returns the physical base address of a fresh 4KB page-table
// node.
func (a *Allocator) AllocPTNode() mem.Addr {
	if a.ptNext+mem.PageSize4K > a.ptEnd {
		panic("vm: page-table region exhausted")
	}
	p := a.ptNext
	a.ptNext += mem.PageSize4K
	return p
}

// Alloc2M returns a fresh, 2MB-aligned, physically contiguous frame.
func (a *Allocator) Alloc2M() mem.Addr {
	if a.hugeNext+mem.PageSize2M > a.hugeEnd {
		panic("vm: huge-page region exhausted")
	}
	p := a.hugeNext
	a.hugeNext += mem.PageSize2M
	a.Bytes2M += mem.PageSize2M
	return p
}

// Alloc4K returns a fresh 4KB frame chosen pseudo-randomly from the small
// region, so that successive allocations are physically scattered.
func (a *Allocator) Alloc4K() mem.Addr {
	if a.smallCount >= a.smallFrames {
		panic("vm: small-frame region exhausted")
	}
	for {
		f := a.next64() % a.smallFrames
		if a.smallUsed[f>>6]&(1<<(f&63)) != 0 {
			continue
		}
		a.smallUsed[f>>6] |= 1 << (f & 63)
		a.smallCount++
		a.Bytes4K += mem.PageSize4K
		return a.smallBase + mem.Addr(f)<<mem.PageBits4K
	}
}

// PageSizeOf reports the size of the physical page containing paddr. The
// huge region only ever holds 2MB pages, so region membership is exact; this
// is the page-size oracle used by the Magic prefetcher variants and by the
// Figure 2 missed-opportunity accounting.
func (a *Allocator) PageSizeOf(paddr mem.Addr) mem.PageSize {
	if paddr >= a.ptEnd && paddr < a.hugeNext {
		return mem.Page2M
	}
	if a.gigaEnd > 0 && paddr >= a.gigaEnd-mem.PageSize1G && paddr < a.gigaNext {
		return mem.Page1G
	}
	return mem.Page4K
}

// MappedBytes returns the total bytes currently mapped (all page sizes).
func (a *Allocator) MappedBytes() mem.Addr { return a.Bytes4K + a.Bytes2M + a.Bytes1G }

// Frac2M returns the fraction of mapped memory backed by 2MB pages,
// the metric of Figure 3. Returns 0 when nothing is mapped.
func (a *Allocator) Frac2M() float64 {
	total := a.MappedBytes()
	if total == 0 {
		return 0
	}
	return float64(a.Bytes2M) / float64(total)
}

// THPPolicy decides, at first touch of a 2MB-aligned virtual region, whether
// the OS backs it with a single 2MB page (true) or with scattered 4KB pages
// (false). It stands in for Linux's transparent-huge-page machinery.
type THPPolicy interface {
	Use2MB(vregion mem.Addr, regionsMapped int) bool
}

// FractionTHP backs a fixed fraction of 2MB regions with huge pages,
// deterministically derived from the region address.
type FractionTHP struct {
	Frac float64 // 0..1
	Seed uint64
}

// Use2MB implements THPPolicy.
func (p FractionTHP) Use2MB(vregion mem.Addr, _ int) bool {
	if p.Frac >= 1 {
		return true
	}
	if p.Frac <= 0 {
		return false
	}
	h := (uint64(vregion>>mem.PageBits2M) + p.Seed) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return float64(h%1000000)/1000000 < p.Frac
}

// RampTHP starts at StartFrac and ramps linearly to EndFrac as more regions
// are mapped, modelling workloads (e.g. mcf) whose huge-page share grows as
// khugepaged promotes memory during execution.
type RampTHP struct {
	StartFrac, EndFrac float64
	RampRegions        int // regions over which the ramp completes
	Seed               uint64
}

// Use2MB implements THPPolicy.
func (p RampTHP) Use2MB(vregion mem.Addr, regionsMapped int) bool {
	frac := p.EndFrac
	if p.RampRegions > 0 && regionsMapped < p.RampRegions {
		t := float64(regionsMapped) / float64(p.RampRegions)
		frac = p.StartFrac + (p.EndFrac-p.StartFrac)*t
	}
	return FractionTHP{Frac: frac, Seed: p.Seed}.Use2MB(vregion, regionsMapped)
}
