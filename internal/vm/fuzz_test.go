package vm

import (
	"encoding/binary"
	"testing"

	"repro/internal/mem"
)

// FuzzFlatLeafWord drives the flat page-table leaf encoder/decoder with
// arbitrary frame/size inputs: valid inputs must round-trip exactly with the
// documented bit layout, invalid ones (misaligned frame, out-of-range size)
// must be rejected loudly rather than silently encoding a corrupt word.
func FuzzFlatLeafWord(f *testing.F) {
	seed := func(frame uint64, size, align uint8) []byte {
		b := make([]byte, 10)
		binary.LittleEndian.PutUint64(b, frame)
		b[8], b[9] = size, align
		return b
	}
	f.Add(seed(0x1000, 0, 1))
	f.Add(seed(0x200000, 1, 1))
	f.Add(seed(0x40000000, 2, 1))
	f.Add(seed(0x1234, 0, 0))   // misaligned 4KB frame
	f.Add(seed(0x1000, 3, 1))   // size out of range
	f.Add(seed(0x201000, 1, 0)) // 4KB-aligned but not 2MB-aligned

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 10 {
			return
		}
		frame := mem.Addr(binary.LittleEndian.Uint64(data) & (1<<46 - 1))
		size := mem.PageSize(data[8] & 3)
		if data[9]&1 != 0 {
			// Force validity: align the frame and clamp the size.
			if size >= mem.NumPageSizes {
				size = mem.Page4K
			}
			frame = mem.PageBase(frame, size)
		}
		valid := size < mem.NumPageSizes && frame&(size.Bytes()-1) == 0

		defer func() {
			if r := recover(); r != nil && valid {
				t.Fatalf("encode(%#x, %v) panicked on valid input: %v", frame, size, r)
			}
		}()
		w := encodeLeafWord(frame, size)
		if !valid {
			t.Fatalf("encode(%#x, %v) accepted invalid input: %#x", frame, size, w)
		}
		if w&flatPresent == 0 || w&flatLeaf == 0 {
			t.Fatalf("encoded word %#x missing present/leaf bits", w)
		}
		pte := decodeLeafWord(w)
		if pte.Frame != frame || pte.Size != size || !pte.Valid {
			t.Fatalf("round trip lost data: in (%#x, %v), out %+v", frame, size, pte)
		}
	})
}

// FuzzFlatTableOps interprets fuzz bytes as a mapping script and applies it to
// a flat and a radix page table in lockstep: identical frames in, identical
// walks out. This is the randomized radix-vs-flat differential in fuzzable
// form — new table-corruption bugs become crashes or divergences.
func FuzzFlatTableOps(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09})
	f.Add([]byte("\x00\x00\x00\x10\x20\x30\x40\x50\x61\x72\x83\x94\xa5\xb6"))
	f.Add([]byte{0xff, 0xfe, 0xfd, 0x80, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47})

	f.Fuzz(func(t *testing.T, data []byte) {
		saved := FlatVM
		defer func() { FlatVM = saved }()
		fa, ra := NewAllocator(8<<30, 5), NewAllocator(8<<30, 5)
		FlatVM = true
		flat := NewPageTable(fa)
		FlatVM = false
		radix := NewPageTable(ra)

		has4K := map[mem.Addr]bool{}
		var mapped []mem.Addr
		for i := 0; i+4 <= len(data) && i < 400; i += 4 {
			bits := binary.LittleEndian.Uint32(data[i:])
			size := mem.Page4K
			if bits&1 != 0 {
				size = mem.Page2M
			}
			v := mem.PageBase(mem.Addr(bits>>1)<<mem.PageBits4K, size)
			if size == mem.Page2M && has4K[v>>mem.PageBits2M] {
				continue
			}
			if _, ok := flat.Lookup(v); ok {
				continue
			}
			var frame mem.Addr
			if size == mem.Page2M {
				frame = fa.Alloc2M()
				ra.Alloc2M()
			} else {
				frame = fa.Alloc4K()
				ra.Alloc4K()
				has4K[v>>mem.PageBits2M] = true
			}
			flat.Map(v, PTE{Frame: frame, Size: size, Valid: true})
			radix.Map(v, PTE{Frame: frame, Size: size, Valid: true})
			mapped = append(mapped, v)
		}
		for _, v := range mapped {
			for _, probe := range []mem.Addr{v, v + 0x333, v + mem.PageSize4K} {
				fw, fok := flat.Walk(probe)
				rw, rok := radix.Walk(probe)
				if fok != rok || fw != rw {
					t.Fatalf("walk diverged at %#x: %v %+v vs %v %+v", probe, fok, fw, rok, rw)
				}
			}
		}
		if flat.Pages() != radix.Pages() {
			t.Fatalf("page counts diverged: %d vs %d", flat.Pages(), radix.Pages())
		}
	})
}
