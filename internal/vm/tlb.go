package vm

import (
	"repro/internal/mem"
)

// tlbEntry caches one translation. Entries for 2MB pages cover the whole 2MB
// region, increasing TLB reach exactly as in real hardware.
type tlbEntry struct {
	vpn   mem.Addr // page number for the entry's own size
	frame mem.Addr // physical page base
	size  mem.PageSize
	valid bool
	lru   uint64
}

// TLB is a set-associative translation lookaside buffer supporting 4KB and
// 2MB entries in a unified array. Lookups probe the 4KB index first and the
// 2MB index second (a dual-probe unified design).
type TLB struct {
	sets, ways int
	// setMask is sets-1 when sets is a power of two (the default geometries
	// are), letting set selection use a mask instead of a modulo; zero when
	// the geometry forces the generic path.
	setMask mem.Addr
	entries []tlbEntry // sets × ways
	tick    uint64

	// present[s] records whether an entry of page size s was ever inserted:
	// Lookup skips probe passes for sizes the workload never maps (pure 4KB
	// address spaces pay one probe instead of three). Conservatively sticky —
	// Flush invalidates entries but keeps the marks.
	present [mem.NumPageSizes]bool

	Hits, Misses uint64
	// HitsBy breaks Hits down by the hitting entry's page size, indexed by
	// mem.PageSize (telemetry: TLB reach gained from large pages).
	HitsBy [mem.NumPageSizes]uint64
}

// NewTLB creates a TLB with the given geometry. entries must be divisible by
// ways.
func NewTLB(entries, ways int) *TLB {
	if entries%ways != 0 {
		panic("vm: TLB entries not divisible by ways")
	}
	t := &TLB{
		sets:    entries / ways,
		ways:    ways,
		entries: make([]tlbEntry, entries),
	}
	if t.sets&(t.sets-1) == 0 {
		t.setMask = mem.Addr(t.sets - 1)
	}
	return t
}

func (t *TLB) set(vpn mem.Addr) []tlbEntry {
	var s int
	if t.setMask != 0 {
		s = int(vpn & t.setMask)
	} else {
		s = int(vpn) % t.sets
		if s < 0 {
			s = -s
		}
	}
	return t.entries[s*t.ways : (s+1)*t.ways]
}

// Lookup probes the TLB for v. On a hit it returns the translation.
func (t *TLB) Lookup(v mem.Addr) (Translation, bool) {
	t.tick++
	for _, size := range [3]mem.PageSize{mem.Page4K, mem.Page2M, mem.Page1G} {
		if !t.present[size] {
			continue
		}
		vpn := mem.PageNumber(v, size)
		set := t.set(vpn)
		for i := range set {
			e := &set[i]
			if e.valid && e.size == size && e.vpn == vpn {
				e.lru = t.tick
				t.Hits++
				t.HitsBy[size]++
				off := v & (size.Bytes() - 1)
				return Translation{PAddr: e.frame + off, Size: size}, true
			}
		}
	}
	t.Misses++
	return Translation{}, false
}

// Insert installs a translation for v, evicting the set's LRU entry.
func (t *TLB) Insert(v mem.Addr, tr Translation) {
	t.tick++
	t.present[tr.Size] = true
	vpn := mem.PageNumber(v, tr.Size)
	set := t.set(vpn)
	victim := 0
	for i := range set {
		e := &set[i]
		if e.valid && e.size == tr.Size && e.vpn == vpn {
			e.lru = t.tick // refresh duplicate
			return
		}
		if !e.valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = tlbEntry{
		vpn:   vpn,
		frame: mem.PageBase(tr.PAddr, tr.Size),
		size:  tr.Size,
		valid: true,
		lru:   t.tick,
	}
}

// Flush invalidates all entries.
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}
