package vm

import (
	"repro/internal/mem"
)

// tlbEntry caches one translation in the legacy struct-per-way layout, kept
// for the flat-vs-radix differential (see FlatVM). Entries for 2MB pages
// cover the whole 2MB region, increasing TLB reach exactly as in real
// hardware.
type tlbEntry struct {
	vpn   mem.Addr // page number for the entry's own size
	frame mem.Addr // physical page base
	size  mem.PageSize
	valid bool
	lru   uint64
}

// Flat TLB tag word: vpn<<3 | size<<1 | 1, with 0 as the invalid sentinel
// (the valid bit makes the vpn-0 4KB tag distinct from empty). One uint64
// compare replaces the legacy valid/size/vpn triple check, and the probe loop
// scans a dense tag array instead of striding over 40-byte entry structs —
// the same treatment the cache's tag mirror got in the allocation-removal PR.
const (
	tlbTagValid     = 1 << 0
	tlbTagSizeShift = 1
	tlbTagVPNShift  = 3
)

func tlbTag(vpn mem.Addr, size mem.PageSize) uint64 {
	return uint64(vpn)<<tlbTagVPNShift | uint64(size)<<tlbTagSizeShift | tlbTagValid
}

// TLB is a set-associative translation lookaside buffer supporting 4KB, 2MB
// and 1GB entries in a unified array. Lookups probe the 4KB index first, then
// 2MB, then 1GB (a multi-probe unified design). The way storage is chosen at
// construction: dense parallel tag/frame/LRU arrays when FlatVM is set, the
// legacy entry structs otherwise.
type TLB struct {
	sets, ways int
	// setMask is sets-1 when sets is a power of two (the default geometries
	// are), letting set selection use a mask instead of a modulo; zero when
	// the geometry forces the generic path.
	setMask mem.Addr
	tick    uint64

	// Dense parallel-array layout (FlatVM): tags[s*ways+w] is the tag word of
	// way w in set s (0 = invalid), with frames and lrus indexed identically.
	tags   []uint64
	frames []mem.Addr
	lrus   []uint64

	entries []tlbEntry // legacy sets × ways layout; nil when flat

	// present[s] records whether an entry of page size s was ever inserted:
	// Lookup skips probe passes for sizes the workload never maps (pure 4KB
	// address spaces pay one probe instead of three). Conservatively sticky —
	// Flush invalidates entries but keeps the marks.
	present [mem.NumPageSizes]bool

	Hits, Misses uint64
	// HitsBy breaks Hits down by the hitting entry's page size, indexed by
	// mem.PageSize (telemetry: TLB reach gained from large pages).
	HitsBy [mem.NumPageSizes]uint64
}

// NewTLB creates a TLB with the given geometry. entries must be divisible by
// ways.
func NewTLB(entries, ways int) *TLB {
	if entries%ways != 0 {
		panic("vm: TLB entries not divisible by ways")
	}
	t := &TLB{
		sets: entries / ways,
		ways: ways,
	}
	if FlatVM {
		t.tags = make([]uint64, entries)
		t.frames = make([]mem.Addr, entries)
		t.lrus = make([]uint64, entries)
	} else {
		t.entries = make([]tlbEntry, entries)
	}
	if t.sets&(t.sets-1) == 0 {
		t.setMask = mem.Addr(t.sets - 1)
	}
	return t
}

// setBase returns the index of way 0 of vpn's set in the parallel arrays (or
// the legacy entries slice — the layouts index identically).
func (t *TLB) setBase(vpn mem.Addr) int {
	if t.setMask != 0 {
		return int(vpn&t.setMask) * t.ways
	}
	s := int(vpn) % t.sets
	if s < 0 {
		s = -s
	}
	return s * t.ways
}

// Lookup probes the TLB for v. On a hit it returns the translation.
func (t *TLB) Lookup(v mem.Addr) (Translation, bool) {
	t.tick++
	if t.tags != nil {
		for _, size := range [3]mem.PageSize{mem.Page4K, mem.Page2M, mem.Page1G} {
			if !t.present[size] {
				continue
			}
			vpn := mem.PageNumber(v, size)
			base := t.setBase(vpn)
			tag := tlbTag(vpn, size)
			ways := t.tags[base : base+t.ways]
			for i, tg := range ways {
				if tg == tag {
					t.lrus[base+i] = t.tick
					t.Hits++
					t.HitsBy[size]++
					off := v & (size.Bytes() - 1)
					return Translation{PAddr: t.frames[base+i] + off, Size: size}, true
				}
			}
		}
		t.Misses++
		return Translation{}, false
	}
	for _, size := range [3]mem.PageSize{mem.Page4K, mem.Page2M, mem.Page1G} {
		if !t.present[size] {
			continue
		}
		vpn := mem.PageNumber(v, size)
		base := t.setBase(vpn)
		set := t.entries[base : base+t.ways]
		for i := range set {
			e := &set[i]
			if e.valid && e.size == size && e.vpn == vpn {
				e.lru = t.tick
				t.Hits++
				t.HitsBy[size]++
				off := v & (size.Bytes() - 1)
				return Translation{PAddr: e.frame + off, Size: size}, true
			}
		}
	}
	t.Misses++
	return Translation{}, false
}

// Insert installs a translation for v, evicting the set's LRU entry. Victim
// choice is identical across layouts: first invalid way, else the strict
// minimum-LRU way scanning left to right.
func (t *TLB) Insert(v mem.Addr, tr Translation) {
	t.tick++
	t.present[tr.Size] = true
	vpn := mem.PageNumber(v, tr.Size)
	base := t.setBase(vpn)
	if t.tags != nil {
		tag := tlbTag(vpn, tr.Size)
		victim := 0
		for i := 0; i < t.ways; i++ {
			tg := t.tags[base+i]
			if tg == tag {
				t.lrus[base+i] = t.tick // refresh duplicate
				return
			}
			if tg == 0 {
				victim = i
				break
			}
			if t.lrus[base+i] < t.lrus[base+victim] {
				victim = i
			}
		}
		t.tags[base+victim] = tag
		t.frames[base+victim] = mem.PageBase(tr.PAddr, tr.Size)
		t.lrus[base+victim] = t.tick
		return
	}
	set := t.entries[base : base+t.ways]
	victim := 0
	for i := range set {
		e := &set[i]
		if e.valid && e.size == tr.Size && e.vpn == vpn {
			e.lru = t.tick // refresh duplicate
			return
		}
		if !e.valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = tlbEntry{
		vpn:   vpn,
		frame: mem.PageBase(tr.PAddr, tr.Size),
		size:  tr.Size,
		valid: true,
		lru:   t.tick,
	}
}

// Flush invalidates all entries.
func (t *TLB) Flush() {
	for i := range t.tags {
		t.tags[i] = 0
	}
	for i := range t.entries {
		t.entries[i].valid = false
	}
}
