package vm

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newTestAllocator() *Allocator {
	return NewAllocator(1<<30, 42) // 1GB is plenty for unit tests
}

func TestAllocatorRegionsDisjoint(t *testing.T) {
	a := newTestAllocator()
	pt := a.AllocPTNode()
	huge := a.Alloc2M()
	small := a.Alloc4K()
	if pt >= a.ptEnd {
		t.Errorf("PT node %#x outside PT region", pt)
	}
	if huge < a.ptEnd || huge >= a.hugeEnd {
		t.Errorf("2MB frame %#x outside huge region [%#x,%#x)", huge, a.ptEnd, a.hugeEnd)
	}
	if small < a.smallBase {
		t.Errorf("4KB frame %#x below small region base %#x", small, a.smallBase)
	}
	if huge%mem.PageSize2M != 0 {
		t.Errorf("2MB frame %#x not 2MB-aligned", huge)
	}
	if small%mem.PageSize4K != 0 {
		t.Errorf("4KB frame %#x not 4KB-aligned", small)
	}
}

func TestAllocator4KFramesUniqueAndScattered(t *testing.T) {
	a := newTestAllocator()
	const n = 4096
	seen := make(map[mem.Addr]bool, n)
	contiguous := 0
	var prev mem.Addr
	for i := 0; i < n; i++ {
		f := a.Alloc4K()
		if seen[f] {
			t.Fatalf("frame %#x allocated twice", f)
		}
		seen[f] = true
		if i > 0 && f == prev+mem.PageSize4K {
			contiguous++
		}
		prev = f
	}
	// Physical fragmentation is the point: virtually consecutive 4KB pages
	// must almost never be physically consecutive.
	if contiguous > n/100 {
		t.Errorf("%d/%d consecutive 4KB allocations were physically contiguous", contiguous, n)
	}
}

func TestAllocatorAccounting(t *testing.T) {
	a := newTestAllocator()
	a.Alloc2M()
	a.Alloc4K()
	a.Alloc4K()
	if a.Bytes2M != mem.PageSize2M {
		t.Errorf("Bytes2M = %d", a.Bytes2M)
	}
	if a.Bytes4K != 2*mem.PageSize4K {
		t.Errorf("Bytes4K = %d", a.Bytes4K)
	}
	want := float64(mem.PageSize2M) / float64(mem.PageSize2M+2*mem.PageSize4K)
	if got := a.Frac2M(); got != want {
		t.Errorf("Frac2M = %v, want %v", got, want)
	}
}

func TestFrac2MEmptyIsZero(t *testing.T) {
	if got := newTestAllocator().Frac2M(); got != 0 {
		t.Errorf("Frac2M of empty allocator = %v", got)
	}
}

func TestPageTableWalkLevels(t *testing.T) {
	a := newTestAllocator()
	pt := NewPageTable(a)
	v4k := mem.Addr(0x7f000_0000)
	pt.Map(v4k, PTE{Frame: a.Alloc4K(), Size: mem.Page4K, Valid: true})
	r, ok := pt.Walk(v4k)
	if !ok {
		t.Fatal("walk of mapped 4KB page failed")
	}
	if r.Levels != 4 {
		t.Errorf("4KB walk levels = %d, want 4", r.Levels)
	}

	v2m := mem.Addr(0x40000000) // 2MB-aligned, distinct subtree
	pt.Map(v2m, PTE{Frame: a.Alloc2M(), Size: mem.Page2M, Valid: true})
	r, ok = pt.Walk(v2m + 0x12345)
	if !ok {
		t.Fatal("walk of mapped 2MB page failed")
	}
	if r.Levels != 3 {
		t.Errorf("2MB walk levels = %d, want 3", r.Levels)
	}
	if r.PTE.Size != mem.Page2M {
		t.Errorf("walk size = %v, want 2MB", r.PTE.Size)
	}
}

func TestPageTableUnmapped(t *testing.T) {
	a := newTestAllocator()
	pt := NewPageTable(a)
	if _, ok := pt.Walk(0x123456); ok {
		t.Error("walk of unmapped address succeeded")
	}
}

func TestPageTableDoubleMapPanics(t *testing.T) {
	a := newTestAllocator()
	pt := NewPageTable(a)
	pt.Map(0x1000, PTE{Frame: a.Alloc4K(), Size: mem.Page4K, Valid: true})
	defer func() {
		if recover() == nil {
			t.Error("double Map did not panic")
		}
	}()
	pt.Map(0x1000, PTE{Frame: a.Alloc4K(), Size: mem.Page4K, Valid: true})
}

func TestAddressSpaceTranslateStable(t *testing.T) {
	as := NewAddressSpace(newTestAllocator(), FractionTHP{Frac: 0.5, Seed: 7})
	for _, v := range []mem.Addr{0x1000, 0x200000, 0x10200040, 0x7ffff000} {
		tr1 := as.Translate(v)
		tr2 := as.Translate(v)
		if tr1 != tr2 {
			t.Errorf("translation of %#x not stable: %+v vs %+v", v, tr1, tr2)
		}
		if tr1.PAddr&(mem.BlockSize-1) != v&(mem.BlockSize-1) {
			t.Errorf("low bits not preserved for %#x", v)
		}
	}
}

func TestAddressSpaceHugeRegionsContiguous(t *testing.T) {
	as := NewAddressSpace(newTestAllocator(), FractionTHP{Frac: 1})
	base := mem.Addr(0x40000000)
	tr0 := as.Translate(base)
	if tr0.Size != mem.Page2M {
		t.Fatalf("size = %v, want 2MB under Frac=1 policy", tr0.Size)
	}
	// Every 4KB page inside the 2MB region must be physically contiguous.
	for off := mem.Addr(0); off < mem.PageSize2M; off += mem.PageSize4K {
		tr := as.Translate(base + off)
		if tr.PAddr != tr0.PAddr+off {
			t.Fatalf("offset %#x: paddr %#x, want %#x", off, tr.PAddr, tr0.PAddr+off)
		}
	}
}

func TestAddressSpaceSmallPagesScattered(t *testing.T) {
	as := NewAddressSpace(newTestAllocator(), FractionTHP{Frac: 0})
	base := mem.Addr(0x40000000)
	tr0 := as.Translate(base)
	if tr0.Size != mem.Page4K {
		t.Fatalf("size = %v, want 4KB under Frac=0 policy", tr0.Size)
	}
	tr1 := as.Translate(base + mem.PageSize4K)
	if tr1.PAddr == tr0.PAddr+mem.PageSize4K {
		t.Error("virtually consecutive 4KB pages were physically contiguous (fragmentation not modelled)")
	}
}

func TestFractionTHPDeterministicAndProportional(t *testing.T) {
	p := FractionTHP{Frac: 0.7, Seed: 3}
	huge := 0
	const n = 2000
	for i := 0; i < n; i++ {
		r := mem.Addr(i) << mem.PageBits2M
		a := p.Use2MB(r, i)
		b := p.Use2MB(r, i)
		if a != b {
			t.Fatalf("policy not deterministic for region %d", i)
		}
		if a {
			huge++
		}
	}
	frac := float64(huge) / n
	if frac < 0.6 || frac > 0.8 {
		t.Errorf("observed huge fraction %v, want ≈0.7", frac)
	}
}

func TestRampTHP(t *testing.T) {
	p := RampTHP{StartFrac: 0, EndFrac: 1, RampRegions: 100, Seed: 1}
	early, late := 0, 0
	for i := 0; i < 30; i++ {
		if p.Use2MB(mem.Addr(i)<<mem.PageBits2M, i) {
			early++
		}
	}
	for i := 200; i < 230; i++ {
		if p.Use2MB(mem.Addr(i)<<mem.PageBits2M, i) {
			late++
		}
	}
	if early >= late {
		t.Errorf("ramp policy: early=%d late=%d, want early < late", early, late)
	}
	if late != 30 {
		t.Errorf("after ramp completes all regions should be huge, got %d/30", late)
	}
}

func TestTLBHitAfterInsert(t *testing.T) {
	tlb := NewTLB(64, 4)
	tr := Translation{PAddr: 0xabc000, Size: mem.Page4K}
	v := mem.Addr(0x5000)
	if _, ok := tlb.Lookup(v); ok {
		t.Fatal("hit in empty TLB")
	}
	tlb.Insert(v, tr)
	got, ok := tlb.Lookup(v + 0x123)
	if !ok {
		t.Fatal("miss after insert")
	}
	if got.PAddr != 0xabc123 {
		t.Errorf("PAddr = %#x, want 0xabc123", got.PAddr)
	}
}

func TestTLB2MBEntryCoversRegion(t *testing.T) {
	tlb := NewTLB(64, 4)
	base := mem.Addr(0x40000000)
	tlb.Insert(base, Translation{PAddr: 0x80000000, Size: mem.Page2M})
	// Any address within the 2MB region hits the single entry.
	got, ok := tlb.Lookup(base + 0x123456)
	if !ok {
		t.Fatal("2MB entry did not cover in-region address")
	}
	if got.PAddr != 0x80123456 {
		t.Errorf("PAddr = %#x", got.PAddr)
	}
	if got.Size != mem.Page2M {
		t.Errorf("Size = %v", got.Size)
	}
}

func TestTLBEvictionLRU(t *testing.T) {
	tlb := NewTLB(4, 4) // one set
	for i := 0; i < 4; i++ {
		tlb.Insert(mem.Addr(i)<<mem.PageBits4K, Translation{PAddr: mem.Addr(i) << mem.PageBits4K, Size: mem.Page4K})
	}
	// Touch entry 0 so entry 1 becomes LRU.
	tlb.Lookup(0)
	tlb.Insert(mem.Addr(100)<<mem.PageBits4K, Translation{PAddr: 0x1000000, Size: mem.Page4K})
	if _, ok := tlb.Lookup(mem.Addr(1) << mem.PageBits4K); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := tlb.Lookup(0); !ok {
		t.Error("MRU entry was evicted")
	}
}

func TestMMUWalkLatencyAndCaching(t *testing.T) {
	as := NewAddressSpace(newTestAllocator(), FractionTHP{Frac: 0})
	var refs int
	port := mem.PortFunc(func(req *mem.Request, at mem.Cycle) mem.Cycle {
		if req.Type != mem.PageWalk {
			t.Errorf("walker issued %v request", req.Type)
		}
		refs++
		return at + 10
	})
	m := NewMMU(as, DefaultMMUConfig(), 0, port)
	v := mem.Addr(0x40000000)

	_, done := m.Translate(v, 0)
	if refs != 4 {
		t.Errorf("first 4KB walk refs = %d, want 4", refs)
	}
	if done != 8+4*10 {
		t.Errorf("walk completion = %d, want 48", done)
	}
	// Second translation of the same page hits the L1 TLB: no latency.
	_, done = m.Translate(v, 100)
	if done != 100 {
		t.Errorf("TLB hit added latency: %d", done)
	}
	// A different page in the same subtree should hit the MMU caches for the
	// interior levels and only fetch the leaf.
	refs = 0
	m.Translate(v+mem.PageSize4K, 0)
	if refs != 1 {
		t.Errorf("walk refs with warm MMU caches = %d, want 1", refs)
	}
}

func TestMMU2MBWalkShorter(t *testing.T) {
	as := NewAddressSpace(newTestAllocator(), FractionTHP{Frac: 1})
	var refs int
	port := mem.PortFunc(func(req *mem.Request, at mem.Cycle) mem.Cycle {
		refs++
		return at
	})
	m := NewMMU(as, DefaultMMUConfig(), 0, port)
	m.Translate(0x40000000, 0)
	if refs != 3 {
		t.Errorf("2MB walk refs = %d, want 3", refs)
	}
}

func TestMMUResident(t *testing.T) {
	as := NewAddressSpace(newTestAllocator(), FractionTHP{Frac: 0})
	m := NewMMU(as, DefaultMMUConfig(), 0, nil)
	v := mem.Addr(0x1234000)
	if m.Resident(v) {
		t.Error("unmapped address reported resident")
	}
	m.Translate(v, 0)
	if !m.Resident(v) {
		t.Error("just-translated address not resident")
	}
	// Residency probes must not disturb hit/miss statistics.
	h, mi := m.l1.Hits, m.l1.Misses
	m.Resident(v)
	m.Resident(v + mem.PageSize2M)
	if m.l1.Hits != h || m.l1.Misses != mi {
		t.Error("Resident perturbed TLB statistics")
	}
}

// Property: translations preserve page-offset bits and report the size of the
// backing page consistently with the page table.
func TestTranslatePropertyOffsetsPreserved(t *testing.T) {
	as := NewAddressSpace(NewAllocator(1<<32, 9), FractionTHP{Frac: 0.5, Seed: 11})
	f := func(page uint16, off uint16) bool {
		v := mem.Addr(page)<<mem.PageBits4K | mem.Addr(off)&(mem.PageSize4K-1)
		tr := as.Translate(v)
		if tr.PAddr&(tr.Size.Bytes()-1) != v&(tr.Size.Bytes()-1) {
			return false
		}
		pte, ok := as.PageTable().Lookup(v)
		return ok && pte.Size == tr.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTLBPrefetcherReducesWalksOnSweep(t *testing.T) {
	mk := func(prefetch bool) *MMU {
		as := NewAddressSpace(NewAllocator(1<<30, 11), FractionTHP{Frac: 0})
		// Pre-map a contiguous virtual range so the prefetcher has mapped
		// neighbours to translate.
		for p := mem.Addr(0); p < 512; p++ {
			as.Translate(0x40000000 + p<<mem.PageBits4K)
		}
		cfg := DefaultMMUConfig()
		cfg.L1Entries, cfg.L1Ways = 4, 4 // tiny L1 TLB: force L2 traffic
		cfg.L2Entries, cfg.L2Ways = 64, 4
		cfg.TLBPrefetch = prefetch
		return NewMMU(as, cfg, 0, nil)
	}
	walks := func(m *MMU) uint64 {
		for p := mem.Addr(0); p < 256; p++ {
			m.Translate(0x40000000+p<<mem.PageBits4K, 0)
		}
		return m.Walks
	}
	base := walks(mk(false))
	pref := walks(mk(true))
	if pref >= base {
		t.Errorf("TLB prefetcher did not reduce demand walks: %d vs %d", pref, base)
	}
	m := mk(true)
	walks(m)
	if m.TLBPrefetches == 0 {
		t.Error("no TLB prefetches recorded")
	}
}

func TestTLBPrefetcherNeverMapsPages(t *testing.T) {
	as := NewAddressSpace(NewAllocator(1<<30, 13), FractionTHP{Frac: 0})
	cfg := DefaultMMUConfig()
	cfg.TLBPrefetch = true
	m := NewMMU(as, cfg, 0, nil)
	pages := as.PageTable().Pages()
	m.Translate(0x50000000, 0) // neighbour pages are unmapped
	if got := as.PageTable().Pages(); got != pages+1 {
		t.Errorf("TLB prefetch created mappings: %d -> %d", pages, got)
	}
}

func TestAllocator2MExhaustionPanics(t *testing.T) {
	a := NewAllocator(64<<20, 1) // tiny memory: huge region = 32MB
	defer func() {
		if recover() == nil {
			t.Error("exhausting the 2MB region did not panic")
		}
	}()
	for i := 0; i < 1000; i++ {
		a.Alloc2M()
	}
}

func TestWalkCacheAccounting(t *testing.T) {
	w := NewWalkCache(4)
	if w.contains(0, 0x1) {
		t.Error("hit in empty walk cache")
	}
	w.insert(0, 0x1)
	if !w.contains(0, 0x1) {
		t.Error("miss after insert")
	}
	if w.contains(1, 0x1) {
		t.Error("level not part of the key")
	}
	if w.Hits != 1 || w.Lookups != 3 {
		t.Errorf("hits/lookups = %d/%d", w.Hits, w.Lookups)
	}
	// LRU eviction across a full cache.
	for i := 2; i <= 5; i++ {
		w.insert(0, mem.Addr(i))
	}
	if w.contains(0, 0x1) {
		t.Error("LRU entry survived 4 inserts into a 4-entry cache")
	}
}

// TestAddressSpace2MBPromotionUnderFragmentation: a heavily fragmented
// small-frame pool must not break 2MB promotion. The huge region is separate
// by construction, so a region the policy promotes still gets an aligned,
// physically contiguous 2MB frame disjoint from every 4KB frame handed out.
func TestAddressSpace2MBPromotionUnderFragmentation(t *testing.T) {
	a := newTestAllocator()
	// Fragment the 4KB pool first: thousands of scattered frames.
	small := make(map[mem.Addr]bool)
	for i := 0; i < 5000; i++ {
		small[a.Alloc4K()] = true
	}
	as := NewAddressSpace(a, FractionTHP{Frac: 1})
	base := mem.Addr(0x7f200000) // 2MB-aligned
	tr := as.Translate(base)
	if tr.Size != mem.Page2M {
		t.Fatalf("promotion failed under fragmentation: size = %v", tr.Size)
	}
	frame := mem.PageBase(tr.PAddr, mem.Page2M)
	if frame%mem.PageSize2M != 0 {
		t.Errorf("promoted frame %#x not 2MB-aligned", frame)
	}
	for off := mem.Addr(0); off < mem.PageSize2M; off += mem.PageSize4K {
		if tr2 := as.Translate(base + off); tr2.PAddr != tr.PAddr+off {
			t.Fatalf("promoted region not contiguous at offset %#x", off)
		}
		if small[frame+off] {
			t.Fatalf("promoted frame overlaps scattered 4KB frame %#x", frame+off)
		}
	}
}

// TestAddressSpace1GBStraddlingRegion: around a 1GB region boundary where only
// the lower region is gigapage-backed, translations on each side use their own
// page size, walk depth, and disjoint frames — virtual adjacency across the
// boundary implies nothing physically.
func TestAddressSpace1GBStraddlingRegion(t *testing.T) {
	a := NewAllocator(8<<30, 17)
	as := NewAddressSpace(a, gigaLow{FractionTHP{Frac: 0}})
	boundary := mem.Addr(2) << 30 // end of the claimed region at 1<<30

	lo := as.Translate(boundary - 8)
	if lo.Size != mem.Page1G {
		t.Fatalf("below-boundary size = %v, want 1GB", lo.Size)
	}
	hi := as.Translate(boundary)
	if hi.Size != mem.Page4K {
		t.Fatalf("above-boundary size = %v, want 4KB", hi.Size)
	}
	if hi.PAddr == lo.PAddr+8 {
		t.Error("physically contiguous across a 1GB region boundary")
	}
	gbase := mem.PageBase(lo.PAddr, mem.Page1G)
	if hi.PAddr >= gbase && hi.PAddr < gbase+mem.PageSize1G {
		t.Errorf("4KB frame %#x landed inside the 1GB frame", hi.PAddr)
	}
	wlo, _ := as.WalkFor(boundary - 8)
	whi, _ := as.WalkFor(boundary)
	if wlo.Levels != 2 || whi.Levels != 4 {
		t.Errorf("walk levels across boundary = %d/%d, want 2/4", wlo.Levels, whi.Levels)
	}
	// The 1GB side stays one contiguous frame right up to its last byte.
	if end := as.Translate(boundary - mem.PageSize4K); end.PAddr != gbase+mem.PageSize1G-mem.PageSize4K {
		t.Errorf("last 4KB of the 1GB page not contiguous: %#x", end.PAddr)
	}
}

// gigaLow claims only the 1GB region starting at 1GB.
type gigaLow struct{ FractionTHP }

func (gigaLow) Use1GB(r mem.Addr) bool { return r == 1<<30 }

func TestPageTablePagesCount(t *testing.T) {
	a := newTestAllocator()
	pt := NewPageTable(a)
	if pt.Pages() != 0 {
		t.Error("fresh table has pages")
	}
	pt.Map(0x1000, PTE{Frame: a.Alloc4K(), Size: mem.Page4K, Valid: true})
	pt.Map(0x400000, PTE{Frame: a.Alloc2M(), Size: mem.Page2M, Valid: true})
	if pt.Pages() != 2 {
		t.Errorf("Pages() = %d, want 2", pt.Pages())
	}
}
