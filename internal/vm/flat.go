package vm

import (
	"fmt"

	"repro/internal/mem"
)

// FlatVM selects the dense-array translation structures (flat page table,
// parallel-array TLB and walk cache) over the original pointer-radix and
// struct-slice implementations. It exists for the differential determinism
// tests, which run full simulations under both settings and require
// byte-identical results — proving the flattening is an optimisation, never a
// semantic change. It is a package variable rather than a sim.Config field so
// the content-addressed result cache (which marshals Config into its keys) is
// unaffected. Read at construction time: flipping it does not retarget live
// structures.
var FlatVM = true

// Flat page-table entry words. Each radix node is a 512-word slab inside one
// dense []uint64, so a walk reads exactly one word per level instead of
// chasing node pointers and probing separate child/leaf arrays. The low bits
// of each word carry the entry kind (frames and node indices leave them free:
// frames are at least 4KB-aligned, node indices are shifted into place):
//
//	bit 0      present  (0 ⇒ empty slot)
//	bit 1      leaf     (0 ⇒ interior: bits 2.. hold the child node index)
//	bits 2-3   page size of a leaf (mem.PageSize), ready for a NAPOT-style
//	           64KB extension without reshaping the table
//	bits 12..  physical frame base of a leaf
const (
	flatPresent = 1 << 0
	flatLeaf    = 1 << 1
	flatSizeShift = 2
	flatSizeMask  = 3 << flatSizeShift
	flatChildShift = 2
)

// encodeLeafWord packs a leaf PTE into its entry word. The frame must be
// page-aligned for the encoded size (its low 12 bits are always free).
func encodeLeafWord(frame mem.Addr, size mem.PageSize) uint64 {
	if frame&(size.Bytes()-1) != 0 {
		panic(fmt.Sprintf("vm: leaf frame %#x not aligned to %v", frame, size))
	}
	if size >= mem.NumPageSizes {
		panic(fmt.Sprintf("vm: leaf size %d out of range", size))
	}
	return uint64(frame) | uint64(size)<<flatSizeShift | flatLeaf | flatPresent
}

// decodeLeafWord unpacks a leaf entry word. The word must have both present
// and leaf bits set; the caller checks.
func decodeLeafWord(w uint64) PTE {
	return PTE{
		Frame: mem.Addr(w) &^ (mem.PageSize4K - 1),
		Size:  mem.PageSize(w & flatSizeMask >> flatSizeShift),
		Valid: true,
	}
}

// flatTable is the dense-array page table: node n occupies
// words[n*ptFanout : (n+1)*ptFanout], and phys[n] is its simulated physical
// base (walk references target it). Node 0 is the root. Nodes are appended as
// paths populate, so the footprint still tracks the touched fraction of the
// virtual space.
type flatTable struct {
	words []uint64
	phys  []mem.Addr
}

// flatInitialNodes pre-sizes the slab for the common case so early Map calls
// do not re-grow it.
const flatInitialNodes = 64

func newFlatTable(rootPhys mem.Addr) *flatTable {
	ft := &flatTable{
		words: make([]uint64, ptFanout, flatInitialNodes*ptFanout),
		phys:  make([]mem.Addr, 1, flatInitialNodes),
	}
	ft.phys[0] = rootPhys
	return ft
}

// addNode appends a fresh zeroed node and returns its index.
func (ft *flatTable) addNode(phys mem.Addr) uint64 {
	n := uint64(len(ft.phys))
	ft.phys = append(ft.phys, phys)
	if cap(ft.words) >= len(ft.words)+ptFanout {
		ft.words = ft.words[: len(ft.words)+ptFanout]
	} else {
		ft.words = append(ft.words, make([]uint64, ptFanout)...)
	}
	return n
}

// mapLeaf installs a leaf mapping for the page of size pte.Size containing v,
// creating interior nodes along the path. Mapping an already-mapped slot
// panics, mirroring the radix table: the address space owns dedup.
func (ft *flatTable) mapLeaf(alloc *Allocator, v mem.Addr, pte PTE) {
	lastLevel := leafLevel(pte.Size)
	node := uint64(0)
	for level := levelPML4; level < lastLevel; level++ {
		slot := node*ptFanout + uint64(vaIndex(v, level))
		w := ft.words[slot]
		if w&flatPresent == 0 {
			child := ft.addNode(alloc.AllocPTNode())
			ft.words[slot] = child<<flatChildShift | flatPresent
			node = child
			continue
		}
		if w&flatLeaf != 0 {
			// The radix table would shadow the leaf behind a new interior
			// node; nothing reaches this through AddressSpace (dedup happens
			// there), so the flat table rejects it loudly instead.
			panic("vm: mapping below an existing leaf")
		}
		node = w >> flatChildShift
	}
	slot := node*ptFanout + uint64(vaIndex(v, lastLevel))
	if ft.words[slot]&flatPresent != 0 {
		panic("vm: double mapping")
	}
	ft.words[slot] = encodeLeafWord(pte.Frame, pte.Size)
}

// walk resolves v, recording per-level entry addresses.
func (ft *flatTable) walk(v mem.Addr) (WalkResult, bool) {
	var res WalkResult
	words, phys := ft.words, ft.phys
	node := uint64(0)
	for level := levelPML4; level < numLevels; level++ {
		idx := uint64(vaIndex(v, level))
		res.Refs[level] = phys[node] + mem.Addr(idx)*8
		res.Levels = level + 1
		w := words[node*ptFanout+idx]
		if w&flatPresent == 0 {
			return WalkResult{}, false
		}
		if w&flatLeaf != 0 {
			res.PTE = decodeLeafWord(w)
			return res, true
		}
		node = w >> flatChildShift
	}
	return WalkResult{}, false
}

// lookup resolves v without recording walk references (the demand-mapping
// fast path: one word read per level, no Refs writes).
func (ft *flatTable) lookup(v mem.Addr) (PTE, bool) {
	words := ft.words
	node := uint64(0)
	for level := levelPML4; level < numLevels; level++ {
		w := words[node*ptFanout+uint64(vaIndex(v, level))]
		if w&flatPresent == 0 {
			return PTE{}, false
		}
		if w&flatLeaf != 0 {
			return decodeLeafWord(w), true
		}
		node = w >> flatChildShift
	}
	return PTE{}, false
}

// leafLevel returns the radix level at which a mapping of the given size
// terminates: PT for 4KB, PD for 2MB, PDPT for 1GB.
func leafLevel(s mem.PageSize) int {
	switch s {
	case mem.Page2M:
		return levelPD
	case mem.Page1G:
		return levelPDPT
	}
	return levelPT
}
