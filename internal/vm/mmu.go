package vm

import (
	"repro/internal/mem"
)

// pwcEntry caches an interior page-table entry (PML4/PDPT/PD level), keyed by
// the virtual-address prefix it translates, in the legacy struct layout kept
// for the flat-vs-radix differential (see FlatVM). These are the MMU caches /
// page structure caches of Section II-B that let walks skip upper-level
// references.
type pwcEntry struct {
	level int
	key   mem.Addr
	valid bool
	lru   uint64
}

// Flat walk-cache tag word: key<<4 | level<<2 | 1, with 0 as the invalid
// sentinel. The level occupies two bits (only interior levels 0..2 are
// cached), and the key is a virtual-address prefix of at most 36 bits, so the
// packed word cannot collide.
func pwcTag(level int, key mem.Addr) uint64 {
	return uint64(key)<<4 | uint64(level)<<2 | 1
}

// WalkCache is a small fully-associative MMU cache over interior page-table
// entries. Storage is chosen at construction: dense parallel tag/LRU arrays
// when FlatVM is set, the legacy entry structs otherwise.
type WalkCache struct {
	tags    []uint64 // flat layout: tag words, 0 = invalid
	lrus    []uint64
	entries []pwcEntry // legacy layout; nil when flat
	tick    uint64
	Hits    uint64
	Lookups uint64
}

// NewWalkCache creates a walk cache with n entries.
func NewWalkCache(n int) *WalkCache {
	if FlatVM {
		return &WalkCache{tags: make([]uint64, n), lrus: make([]uint64, n)}
	}
	return &WalkCache{entries: make([]pwcEntry, n)}
}

func (w *WalkCache) contains(level int, key mem.Addr) bool {
	w.Lookups++
	w.tick++
	if w.tags != nil {
		tag := pwcTag(level, key)
		for i, tg := range w.tags {
			if tg == tag {
				w.lrus[i] = w.tick
				w.Hits++
				return true
			}
		}
		return false
	}
	for i := range w.entries {
		e := &w.entries[i]
		if e.valid && e.level == level && e.key == key {
			e.lru = w.tick
			w.Hits++
			return true
		}
	}
	return false
}

func (w *WalkCache) insert(level int, key mem.Addr) {
	w.tick++
	if w.tags != nil {
		victim := 0
		for i, tg := range w.tags {
			if tg == 0 {
				victim = i
				break
			}
			if w.lrus[i] < w.lrus[victim] {
				victim = i
			}
		}
		w.tags[victim] = pwcTag(level, key)
		w.lrus[victim] = w.tick
		return
	}
	victim := 0
	for i := range w.entries {
		if !w.entries[i].valid {
			victim = i
			break
		}
		if w.entries[i].lru < w.entries[victim].lru {
			victim = i
		}
	}
	w.entries[victim] = pwcEntry{level: level, key: key, valid: true, lru: w.tick}
}

// MMUConfig sets the TLB hierarchy geometry and latencies (Table I).
type MMUConfig struct {
	L1Entries, L1Ways int
	L2Entries, L2Ways int
	L2Latency         mem.Cycle
	WalkCacheEntries  int

	// TLBPrefetch enables a simple distance-1 TLB prefetcher: after a page
	// walk for page P, the translations of the neighbouring pages are walked
	// in the background (consuming real walk traffic) and installed in the
	// L2 TLB. This is the synergistic TLB prefetcher the paper's footnote 3
	// names as a promising direction for improving the timeliness of
	// page-crossing prefetching.
	TLBPrefetch bool
}

// DefaultMMUConfig mirrors Table I: 64-entry 4-way L1 DTLB (1 cycle, folded
// into the L1D access), 1536-entry 12-way L2 TLB at 8 cycles.
func DefaultMMUConfig() MMUConfig {
	return MMUConfig{
		L1Entries: 64, L1Ways: 4,
		L2Entries: 1536, L2Ways: 12,
		L2Latency:        8,
		WalkCacheEntries: 32,
	}
}

// walkShift[i] is the right-shift that produces the walk-cache key for level
// i: the virtual-address prefix translated by that level's entry.
var walkShift = [numLevels]uint{39, 30, 21, 12}

// MMU models one core's translation machinery: L1 DTLB, L2 TLB, MMU caches,
// and a page-table walker whose references are injected into the cache
// hierarchy through the walk port.
type MMU struct {
	space *AddressSpace
	l1    *TLB
	l2    *TLB
	pwc   *WalkCache
	cfg   MMUConfig
	core  int

	// walkPort receives the walker's PageWalk references; in the assembled
	// system it is the L1D, so walks contend for the same cache hierarchy
	// as demand traffic (L1D→L2→LLC→DRAM).
	walkPort mem.Port

	// walkArena supplies scratch requests for walker references: each
	// reference's Access completes before the next is issued, so a small ring
	// suffices. The assembled system shares one arena across all its MMUs
	// (walk scratch is per-simulation state, like the allocator); unit tests
	// that construct an MMU directly get a private arena by default.
	walkArena *mem.RequestArena

	Walks    uint64
	WalkRefs uint64
	// WalksBy breaks Walks down by the resolved page's size, indexed by
	// mem.PageSize (telemetry: walk traffic by page size).
	WalksBy [mem.NumPageSizes]uint64
	// TLBPrefetches counts background translations installed by the TLB
	// prefetcher; TLBPrefetchHits counts L2 TLB hits on them (approximated
	// by hits following an install).
	TLBPrefetches uint64
}

// NewMMU builds an MMU over space for the given core. walkPort may be nil, in
// which case walks cost zero memory time (useful in unit tests).
func NewMMU(space *AddressSpace, cfg MMUConfig, core int, walkPort mem.Port) *MMU {
	return &MMU{
		space:     space,
		l1:        NewTLB(cfg.L1Entries, cfg.L1Ways),
		l2:        NewTLB(cfg.L2Entries, cfg.L2Ways),
		pwc:       NewWalkCache(cfg.WalkCacheEntries),
		cfg:       cfg,
		core:      core,
		walkPort:  walkPort,
		walkArena: mem.NewRequestArena(0),
	}
}

// SetWalkArena replaces the MMU's private walk-scratch arena; the assembled
// system calls it so all cores draw from one per-simulation arena.
func (m *MMU) SetWalkArena(a *mem.RequestArena) { m.walkArena = a }

// L1 exposes the first-level TLB for statistics.
func (m *MMU) L1() *TLB { return m.l1 }

// L2 exposes the second-level TLB for statistics.
func (m *MMU) L2() *TLB { return m.l2 }

// Space returns the translated address space.
func (m *MMU) Space() *AddressSpace { return m.space }

// Translate resolves v at cycle `at` and returns the translation plus the
// cycle at which it is available. The L1 TLB lookup is folded into the cache
// access (VIPT first-level cache); misses add L2 TLB latency and, on an L2
// miss, a full page walk through the memory hierarchy.
func (m *MMU) Translate(v mem.Addr, at mem.Cycle) (Translation, mem.Cycle) {
	if tr, ok := m.l1.Lookup(v); ok {
		return tr, at
	}
	if tr, ok := m.l2.Lookup(v); ok {
		m.l1.Insert(v, tr)
		return tr, at + m.cfg.L2Latency
	}
	walk, tr := m.space.WalkFor(v)
	m.Walks++
	m.WalksBy[tr.Size]++
	done := at + m.cfg.L2Latency // the L2 TLB miss is discovered first
	for i, ref := range walk.Refs[:walk.Levels] {
		last := i == walk.Levels-1
		// Interior levels may be served by the MMU caches; the leaf entry is
		// always fetched from the memory hierarchy.
		key := v >> walkShift[i]
		if !last && m.pwc.contains(i, key) {
			continue
		}
		if !last {
			m.pwc.insert(i, key)
		}
		m.WalkRefs++
		if m.walkPort != nil {
			req := m.walkArena.Get()
			req.PAddr = mem.BlockAlign(ref)
			req.Type = mem.PageWalk
			req.Core = m.core
			// Page-table nodes live in 4KB frames.
			req.PageSize = mem.Page4K
			req.PageSizeKnown = true
			done = m.walkPort.Access(req, done)
		}
	}
	m.l2.Insert(v, tr)
	m.l1.Insert(v, tr)
	if m.cfg.TLBPrefetch {
		m.prefetchTranslation(v+tr.Size.Bytes(), done)
		if v >= tr.Size.Bytes() {
			m.prefetchTranslation(v-tr.Size.Bytes(), done)
		}
	}
	return tr, done
}

// prefetchTranslation walks the page containing v in the background and
// installs its translation in the L2 TLB. Speculation never creates
// mappings: unmapped neighbours are skipped.
func (m *MMU) prefetchTranslation(v mem.Addr, at mem.Cycle) {
	if _, hit := m.l2.Lookup(v); hit {
		return
	}
	walk, ok := m.space.PageTable().Walk(v)
	if !ok {
		return
	}
	m.TLBPrefetches++
	t := at
	for i, ref := range walk.Refs[:walk.Levels] {
		last := i == walk.Levels-1
		key := v >> walkShift[i]
		if !last && m.pwc.contains(i, key) {
			continue
		}
		m.WalkRefs++
		if m.walkPort != nil {
			req := m.walkArena.Get()
			req.PAddr = mem.BlockAlign(ref)
			req.Type = mem.PageWalk
			req.Core = m.core
			req.PageSize = mem.Page4K
			req.PageSizeKnown = true
			t = m.walkPort.Access(req, t)
		}
	}
	off := v & (walk.PTE.Size.Bytes() - 1)
	m.l2.Insert(v, Translation{PAddr: walk.PTE.Frame + off, Size: walk.PTE.Size})
}

// Resident reports whether the translation for v is present in either TLB
// level, without perturbing hit statistics or LRU state beyond a probe. It is
// used by the IPCP++ variant, which crosses 4KB boundaries only when the
// target page's translation is TLB-resident.
func (m *MMU) Resident(v mem.Addr) bool {
	_, ok := m.ResidentTranslate(v)
	return ok
}

// ResidentTranslate returns the translation for v when it is present in
// either TLB level, probing without perturbing hit statistics. It backs
// TLB-gated virtual-address prefetching (the engine's Translator hook): a
// resident translation costs only the probe, and a non-resident one must
// never trigger a speculative page walk.
func (m *MMU) ResidentTranslate(v mem.Addr) (Translation, bool) {
	h1, mi1, by1 := m.l1.Hits, m.l1.Misses, m.l1.HitsBy
	h2, mi2, by2 := m.l2.Hits, m.l2.Misses, m.l2.HitsBy
	tr, ok := m.l1.Lookup(v)
	if !ok {
		tr, ok = m.l2.Lookup(v)
	}
	m.l1.Hits, m.l1.Misses, m.l1.HitsBy = h1, mi1, by1
	m.l2.Hits, m.l2.Misses, m.l2.HitsBy = h2, mi2, by2
	return tr, ok
}
