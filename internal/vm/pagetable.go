package vm

import (
	"repro/internal/mem"
)

// Radix-tree level indices for x86-64 4-level paging: PML4, PDPT, PD, PT.
// A 1GB mapping terminates at the PDPT level (2 node accesses per walk), a
// 2MB mapping at the PD level (3 accesses), and a 4KB mapping continues to
// the PT level (4 accesses).
const (
	levelPML4 = 0
	levelPDPT = 1
	levelPD   = 2
	levelPT   = 3
	numLevels = 4
)

// vaIndex extracts the 9-bit radix index of v at the given level.
func vaIndex(v mem.Addr, level int) int {
	shift := uint(12 + 9*(numLevels-1-level)) // PML4: 39, PDPT: 30, PD: 21, PT: 12
	return int((v >> shift) & 0x1ff)
}

// PTE is a leaf page-table entry.
type PTE struct {
	Frame mem.Addr // physical base of the mapped page
	Size  mem.PageSize
	Valid bool
}

// ptFanout is the radix of each level: 9 virtual-address bits per level.
const ptFanout = 512

// ptNode is one pointer-radix node, the original representation kept for the
// flat-vs-radix differential (see FlatVM). PTE.Valid marks occupied leaf
// slots.
type ptNode struct {
	phys  mem.Addr // physical base of this node (walk references target it)
	child [ptFanout]*ptNode
	leaf  [ptFanout]PTE
}

func newPTNode(phys mem.Addr) *ptNode {
	return &ptNode{phys: phys}
}

// PageTable is a 4-level x86-64-style radix page table whose nodes occupy
// simulated physical memory, so that page walks generate real references into
// the cache hierarchy. The representation is chosen at construction: the
// dense flatTable when FlatVM is set (one entry word per level per walk), the
// pointer radix otherwise.
type PageTable struct {
	alloc *Allocator
	flat  *flatTable // dense representation; nil when FlatVM was off
	root  *ptNode    // pointer-radix representation; nil when FlatVM was on
	pages int        // number of leaf mappings
}

// NewPageTable creates an empty page table drawing node frames from alloc.
func NewPageTable(alloc *Allocator) *PageTable {
	pt := &PageTable{alloc: alloc}
	if FlatVM {
		pt.flat = newFlatTable(alloc.AllocPTNode())
	} else {
		pt.root = newPTNode(alloc.AllocPTNode())
	}
	return pt
}

// Map installs a leaf mapping for the page of size pte.Size containing v.
// Mapping an already-mapped page panics: the address space owns dedup.
func (pt *PageTable) Map(v mem.Addr, pte PTE) {
	pte.Valid = true
	if pt.flat != nil {
		pt.flat.mapLeaf(pt.alloc, v, pte)
		pt.pages++
		return
	}
	n := pt.root
	lastLevel := leafLevel(pte.Size)
	for level := levelPML4; level < lastLevel; level++ {
		idx := vaIndex(v, level)
		c := n.child[idx]
		if c == nil {
			c = newPTNode(pt.alloc.AllocPTNode())
			n.child[idx] = c
		}
		n = c
	}
	idx := vaIndex(v, lastLevel)
	if n.leaf[idx].Valid {
		panic("vm: double mapping")
	}
	n.leaf[idx] = pte
	pt.pages++
}

// WalkResult describes a completed page-table walk.
type WalkResult struct {
	PTE PTE
	// Refs are the physical addresses of the page-table entries read by the
	// walker, in root-to-leaf order; only Refs[:Levels] are meaningful. The
	// fixed array keeps Walk allocation-free on the TLB-miss path.
	Refs [numLevels]mem.Addr
	// Levels is the number of valid references: 4 for a 4KB mapping, 3 for a
	// 2MB one, 2 for 1GB.
	Levels int
}

// Walk resolves v, returning the leaf PTE and the per-level entry addresses.
// The boolean result is false when v is unmapped.
func (pt *PageTable) Walk(v mem.Addr) (WalkResult, bool) {
	if pt.flat != nil {
		return pt.flat.walk(v)
	}
	var res WalkResult
	n := pt.root
	for level := levelPML4; level < numLevels; level++ {
		idx := vaIndex(v, level)
		res.Refs[level] = n.phys + mem.Addr(idx)*8
		res.Levels = level + 1
		if pte := n.leaf[idx]; pte.Valid {
			// A 2MB leaf sits at the PD level, a 4KB leaf at the PT level.
			res.PTE = pte
			return res, true
		}
		if n = n.child[idx]; n == nil {
			return WalkResult{}, false
		}
	}
	return WalkResult{}, false
}

// Lookup resolves v without recording walk references.
func (pt *PageTable) Lookup(v mem.Addr) (PTE, bool) {
	if pt.flat != nil {
		return pt.flat.lookup(v)
	}
	r, ok := pt.Walk(v)
	return r.PTE, ok
}

// Pages returns the number of installed leaf mappings.
func (pt *PageTable) Pages() int { return pt.pages }
