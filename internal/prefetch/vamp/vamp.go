// Package vamp implements VA-AMPM-lite: Access Map Pattern Matching over
// *virtual* addresses, after the ChampSim va_ampm_lite reference design. Each
// tracked virtual region keeps a bitmap of demanded blocks; on an access the
// prefetcher scans stride candidates k where the blocks at −k and −2k were
// demanded and proposes +k — with the lookups crossing region boundaries, so
// a stride marches straight through 4KB virtual pages.
//
// Candidates are proposed as virtual addresses (Candidate.Virtual): the
// engine translates them before issue, gated on the target page's
// translation being TLB-resident, which is the virtual-side answer to the
// 4KB boundary problem that the paper's PPM answers physically. The
// prefetcher keeps no prefetch map — the engine's Contains dedup fills that
// role — so its state is a pure function of the demand virtual-address
// stream, which the clamp-equivalence differential test relies on.
package vamp

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Config sizes the access-map tracker.
type Config struct {
	// Regions is the number of tracked virtual regions (hash-indexed,
	// direct-mapped: a colliding region replaces the old map).
	Regions int
	// MaxDistance is the largest stride, in blocks, the pattern scan covers.
	MaxDistance int
	// Degree bounds candidates proposed per trigger access.
	Degree int
	// Clamp4K restricts candidates to the trigger's 4KB virtual page. A
	// suppressed crossing candidate still consumes degree — exactly what
	// happens to the unclamped prefetcher under the engine's Original
	// boundary policy, where the crossing proposal spends the degree budget
	// and is then discarded. The clamped prefetcher therefore issues
	// byte-identically to unclamped-under-Original — the invariant behind
	// the clamp-equivalence differential test.
	Clamp4K bool
}

// DefaultConfig mirrors the reference design scaled to this simulator.
func DefaultConfig() Config {
	return Config{Regions: 128, MaxDistance: 64, Degree: 2}
}

// Scale returns a copy with the region count multiplied by k (ISO storage).
func (c Config) Scale(k int) Config {
	c.Regions *= k
	return c
}

// Prefetcher is a VA-AMPM-lite instance. The region table is direct-mapped
// by a hash of the region number: lookups are O(1), which matters because
// every trigger access performs up to 3·MaxDistance·2 of them.
type Prefetcher struct {
	cfg        Config
	regionBits uint
	words      int      // bitmap words per region
	tags       []uint64 // regionNumber<<1|1, 0 = invalid
	bits       []uint64 // Regions × words access bitmaps
	// slotMask is Regions-1 when Regions is a power of two, else 0 (generic
	// modulo path).
	slotMask uint64
}

// New creates a prefetcher tracking virtual regions of 2^regionBits bytes.
func New(cfg Config, regionBits uint) *Prefetcher {
	if regionBits < mem.PageBits4K || regionBits > mem.PageBits2M {
		panic("vamp: regionBits outside [12, 21]")
	}
	blocks := 1 << (regionBits - mem.BlockBits)
	words := (blocks + 63) / 64
	p := &Prefetcher{
		cfg:        cfg,
		regionBits: regionBits,
		words:      words,
		tags:       make([]uint64, cfg.Regions),
		bits:       make([]uint64, cfg.Regions*words),
	}
	if cfg.Regions&(cfg.Regions-1) == 0 {
		p.slotMask = uint64(cfg.Regions - 1)
	}
	return p
}

// Factory adapts New to prefetch.Factory.
func Factory(cfg Config) prefetch.Factory {
	return func(regionBits uint) prefetch.Prefetcher { return New(cfg, regionBits) }
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "vamp" }

func (p *Prefetcher) slot(region uint64) int {
	h := region * 0x9e3779b97f4a7c15
	if p.slotMask != 0 {
		return int(h & p.slotMask)
	}
	return int(h % uint64(p.cfg.Regions))
}

// accessed reports whether the block at virtual address v was demanded in a
// tracked region. Works for any address — this is the cross-region lookup
// that lets strides march through region boundaries.
func (p *Prefetcher) accessed(v mem.Addr) bool {
	region := uint64(v) >> p.regionBits
	s := p.slot(region)
	if p.tags[s] != region<<1|1 {
		return false
	}
	block := uint64(v>>mem.BlockBits) & (uint64(p.words)*64 - 1)
	return p.bits[s*p.words+int(block>>6)]&(1<<(block&63)) != 0
}

// mark records the demand access at virtual address v, evicting a colliding
// region's map if necessary.
func (p *Prefetcher) mark(v mem.Addr) {
	region := uint64(v) >> p.regionBits
	s := p.slot(region)
	tag := region<<1 | 1
	base := s * p.words
	if p.tags[s] != tag {
		for i := base; i < base+p.words; i++ {
			p.bits[i] = 0
		}
		p.tags[s] = tag
	}
	block := uint64(v>>mem.BlockBits) & (uint64(p.words)*64 - 1)
	p.bits[base+int(block>>6)] |= 1 << (block & 63)
}

// vaOf returns the block-aligned virtual trigger address, falling back to
// the physical address when the harness provides no translation (identity
// mapping assumption, matching the engine's own fallback).
func vaOf(ctx prefetch.Context) mem.Addr {
	va := ctx.VAddr
	if va == 0 {
		va = ctx.Addr
	}
	return mem.BlockAlign(va)
}

// Train implements prefetch.Prefetcher: record the access, propose nothing.
func (p *Prefetcher) Train(ctx prefetch.Context) {
	if !ctx.Type.IsDemand() {
		return
	}
	p.mark(vaOf(ctx))
}

// Operate implements prefetch.Prefetcher: record the access, then scan
// strides outward; candidate va+d qualifies when va−d and va−2d were both
// demanded and va+d was not.
func (p *Prefetcher) Operate(ctx prefetch.Context, issue func(prefetch.Candidate)) {
	if !ctx.Type.IsDemand() {
		return
	}
	va := vaOf(ctx)
	p.mark(va)
	issued := 0
	for k := 1; k <= p.cfg.MaxDistance; k++ {
		for _, d := range [2]int64{int64(k), -int64(k)} {
			step := mem.Addr(d) * mem.BlockSize
			cand := va + step
			if !prefetch.InGenLimit(va, cand) {
				continue
			}
			if !p.accessed(va-step) || !p.accessed(va-2*step) {
				continue
			}
			if p.accessed(cand) {
				continue // already demanded
			}
			if p.cfg.Clamp4K && !mem.SamePage(va, cand, mem.Page4K) {
				// Suppressed, but the degree budget is spent (see Config).
				if issued++; issued >= p.cfg.Degree {
					return
				}
				continue
			}
			issue(prefetch.Candidate{Addr: cand, FillL2: true, Virtual: true})
			if issued++; issued >= p.cfg.Degree {
				return
			}
		}
	}
}
