package vamp

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func step(addr mem.Addr) prefetch.Context {
	return prefetch.Context{Addr: addr, VAddr: addr, Type: mem.Load, PageSize: mem.Page4K}
}

// TestStrideDetection: a unit-stride stream must propose the next block
// ahead, as a virtual candidate destined for the L2.
func TestStrideDetection(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	p.Train(step(base))
	p.Train(step(base + mem.BlockSize))
	var got []prefetch.Candidate
	p.Operate(step(base+2*mem.BlockSize), func(c prefetch.Candidate) {
		got = append(got, c)
	})
	if len(got) == 0 {
		t.Fatal("no proposals after a unit-stride warmup")
	}
	if got[0].Addr != base+3*mem.BlockSize {
		t.Errorf("first proposal %#x, want %#x", got[0].Addr, base+3*mem.BlockSize)
	}
	for _, c := range got {
		if !c.Virtual {
			t.Errorf("candidate %#x not marked virtual", c.Addr)
		}
		if !c.FillL2 {
			t.Errorf("candidate %#x not destined for the L2", c.Addr)
		}
	}
}

// TestNegativeStride: a descending stream must propose the block below.
func TestNegativeStride(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40010000)
	p.Train(step(base + 10*mem.BlockSize))
	p.Train(step(base + 9*mem.BlockSize))
	found := false
	p.Operate(step(base+8*mem.BlockSize), func(c prefetch.Candidate) {
		if c.Addr == base+7*mem.BlockSize {
			found = true
		}
	})
	if !found {
		t.Error("descending unit stride never proposed the block below")
	}
}

// TestCrossPageStride: the access-map lookups cross 4KB region boundaries,
// so a stride at a page edge proposes into the next virtual page — the
// property that distinguishes VA-AMPM from a page-local scheme.
func TestCrossPageStride(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	blocks := mem.Addr(mem.PageSize4K / mem.BlockSize)
	// Last three blocks of the page.
	p.Train(step(base + (blocks-3)*mem.BlockSize))
	p.Train(step(base + (blocks-2)*mem.BlockSize))
	trigger := base + (blocks-1)*mem.BlockSize
	crossed := false
	p.Operate(step(trigger), func(c prefetch.Candidate) {
		if !mem.SamePage(trigger, c.Addr, mem.Page4K) {
			crossed = true
		}
	})
	if !crossed {
		t.Error("stride at the page edge never proposed across the 4KB line")
	}
}

// TestClamp4K: with the clamp set, every candidate stays inside the
// trigger's 4KB virtual page even when the pattern points past it.
func TestClamp4K(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clamp4K = true
	p := New(cfg, mem.PageBits4K)
	base := mem.Addr(0x40000000)
	blocks := mem.Addr(mem.PageSize4K / mem.BlockSize)
	p.Train(step(base + (blocks-3)*mem.BlockSize))
	p.Train(step(base + (blocks-2)*mem.BlockSize))
	trigger := base + (blocks-1)*mem.BlockSize
	p.Operate(step(trigger), func(c prefetch.Candidate) {
		if !mem.SamePage(trigger, c.Addr, mem.Page4K) {
			t.Errorf("clamped prefetcher proposed %#x outside the trigger's 4KB page", c.Addr)
		}
	})
}

// TestNoPatternNoProposals: isolated accesses with no −k/−2k support must
// propose nothing.
func TestNoPatternNoProposals(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	n := 0
	p.Operate(step(0x40000000), func(prefetch.Candidate) { n++ })
	p.Operate(step(0x40100000), func(prefetch.Candidate) { n++ })
	p.Operate(step(0x40a00000), func(prefetch.Candidate) { n++ })
	if n != 0 {
		t.Errorf("proposals without any pattern support: %d", n)
	}
}

// TestDemandedBlocksSkipped: a candidate the program already demanded is not
// proposed again.
func TestDemandedBlocksSkipped(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	p.Train(step(base))
	p.Train(step(base + mem.BlockSize))
	p.Train(step(base + 3*mem.BlockSize)) // the +1 candidate's target, pre-demanded
	p.Operate(step(base+2*mem.BlockSize), func(c prefetch.Candidate) {
		if c.Addr == base+3*mem.BlockSize {
			t.Errorf("proposed %#x although it was already demanded", c.Addr)
		}
	})
}

// TestRegionEviction: a colliding region replaces the old map entirely, so
// the evicted region's history no longer supports patterns.
func TestRegionEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Regions = 1 // every region collides
	p := New(cfg, mem.PageBits4K)
	base := mem.Addr(0x40000000)
	p.Train(step(base))
	p.Train(step(base + mem.BlockSize))
	p.Train(step(base + 0x100000)) // different region: evicts the map
	if p.accessed(base) || p.accessed(base+mem.BlockSize) {
		t.Fatal("evicted region's blocks still read as accessed")
	}
	n := 0
	p.Operate(step(base+2*mem.BlockSize), func(prefetch.Candidate) { n++ })
	// The trigger's own mark is the only survivor of the re-installed map:
	// no −k/−2k support remains.
	if n != 0 {
		t.Errorf("proposals from an evicted region's history: %d", n)
	}
}

// TestDegreeBound: proposals per access never exceed the configured degree.
func TestDegreeBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Degree = 2
	p := New(cfg, mem.PageBits2M)
	base := mem.Addr(0x40000000)
	// Dense warmup: many strides have support.
	for i := 0; i < 64; i++ {
		p.Train(step(base + mem.Addr(i)*mem.BlockSize))
	}
	n := 0
	p.Operate(step(base+64*mem.BlockSize), func(prefetch.Candidate) { n++ })
	if n > cfg.Degree {
		t.Errorf("issued %d candidates, degree is %d", n, cfg.Degree)
	}
}

// TestVAddrPreferred: when the context carries a virtual address, the
// pattern state must be keyed by it, not by the physical address.
func TestVAddrPreferred(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	va := mem.Addr(0x7f0000000000)
	// Physical addresses deliberately scattered: a PA-keyed tracker would
	// see no stride.
	ctx := func(i int) prefetch.Context {
		return prefetch.Context{
			Addr:  mem.Addr(0x1000000*uint64(i*7+1)) | mem.Addr(i)*mem.BlockSize,
			VAddr: va + mem.Addr(i)*mem.BlockSize,
			Type:  mem.Load, PageSize: mem.Page4K,
		}
	}
	p.Train(ctx(0))
	p.Train(ctx(1))
	found := false
	p.Operate(ctx(2), func(c prefetch.Candidate) {
		if c.Addr == va+3*mem.BlockSize {
			found = true
		}
	})
	if !found {
		t.Error("VA-keyed stride not detected when physical addresses scatter")
	}
}
