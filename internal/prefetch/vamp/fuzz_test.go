package vamp

import (
	"encoding/binary"
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

// FuzzVampRegionMap interprets fuzz bytes as a demand-access script against a
// deliberately tiny region table, checking the access-map invariants after
// every step: no panic, a marked block always reads back as accessed, and
// every proposal is virtual, inside the generation limit, respects the 4KB
// clamp when set, obeys the degree bound, and never targets an
// already-demanded block.
func FuzzVampRegionMap(f *testing.F) {
	seed := func(words ...uint32) []byte {
		b := make([]byte, 4*len(words))
		for i, w := range words {
			binary.LittleEndian.PutUint32(b[4*i:], w)
		}
		return b
	}
	f.Add(seed(0, 1, 2, 3, 4, 5))                      // unit stride
	f.Add(seed(100, 98, 96, 94, 92))                   // negative stride
	f.Add(seed(61, 62, 63, 64, 65, 66))                // page crossing
	f.Add(seed(0, 1<<16, 2, 1<<17, 4, 1<<18))          // region collisions
	f.Add(seed(7, 7, 7, 7))                            // same block
	f.Add([]byte{0x02, 0x03})                          // short tail
	f.Add(seed(0xffffffff, 0, 0x80000001, 0x7ffffffe)) // extremes

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := DefaultConfig()
		cfg.Regions = 4 // tiny: evictions on nearly every region change
		cfg.MaxDistance = 16
		if len(data) > 0 && data[0]&2 != 0 {
			cfg.Clamp4K = true
		}
		bits := uint(mem.PageBits4K)
		if len(data) > 0 && data[0]&1 != 0 {
			bits = mem.PageBits2M
		}
		p := New(cfg, bits)

		for i := 0; i+4 <= len(data) && i < 400; i += 4 {
			w := binary.LittleEndian.Uint32(data[i:])
			// Blocks within a 16MB window: dense enough to collide regions.
			va := mem.Addr(w&(1<<18-1)) * mem.BlockSize
			ctx := prefetch.Context{Addr: va, VAddr: va, Type: mem.Load, PageSize: mem.Page4K}
			if w&(1<<31) != 0 {
				p.Train(ctx)
			} else {
				issued := 0
				p.Operate(ctx, func(c prefetch.Candidate) {
					issued++
					if !c.Virtual {
						t.Fatalf("Operate(%#x): candidate %#x not marked virtual", va, c.Addr)
					}
					if !prefetch.InGenLimit(va, c.Addr) {
						t.Fatalf("Operate(%#x): candidate %#x outside the generation limit", va, c.Addr)
					}
					if cfg.Clamp4K && !mem.SamePage(va, c.Addr, mem.Page4K) {
						t.Fatalf("Operate(%#x): clamped candidate %#x crossed the 4KB page", va, c.Addr)
					}
					if p.accessed(c.Addr) {
						t.Fatalf("Operate(%#x): candidate %#x was already demanded", va, c.Addr)
					}
				})
				if issued > cfg.Degree {
					t.Fatalf("Operate(%#x): issued %d candidates, degree is %d", va, issued, cfg.Degree)
				}
			}
			if !p.accessed(va) {
				t.Fatalf("block %#x not accessed right after its own demand", va)
			}
		}
	})
}
