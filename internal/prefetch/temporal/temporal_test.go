package temporal

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func missAt(addr mem.Addr) prefetch.Context {
	return prefetch.Context{Addr: mem.BlockAlign(addr), Type: mem.Load, Hit: false, PageSize: mem.Page4K}
}

func TestReplaysRecurringSequence(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	// An irregular (non-spatial) miss sequence within one 2MB region.
	seq := []mem.Addr{base, base + 0x4cc0, base + 0x19400, base + 0x1c0, base + 0xf000}
	for _, a := range seq {
		p.Operate(missAt(a), func(prefetch.Candidate) {})
	}
	// On recurrence of the first address, the successors replay.
	var got []mem.Addr
	p.Operate(missAt(seq[0]), func(c prefetch.Candidate) { got = append(got, c.Addr) })
	if len(got) != DefaultConfig().Degree {
		t.Fatalf("replayed %d successors, want %d: %v", len(got), DefaultConfig().Degree, got)
	}
	for i, want := range seq[1:] {
		if got[i] != want {
			t.Errorf("successor %d = %#x, want %#x", i, got[i], want)
		}
	}
}

func TestCannotCoverCompulsoryMisses(t *testing.T) {
	// The paper's fundamental contrast: a first sweep over fresh addresses
	// yields zero temporal prefetches (spatial prefetchers cover these).
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	n := 0
	for i := 0; i < 500; i++ {
		p.Operate(missAt(base+mem.Addr(i)*mem.BlockSize), func(prefetch.Candidate) { n++ })
	}
	if n != 0 {
		t.Errorf("temporal prefetcher proposed %d candidates on compulsory misses", n)
	}
}

func TestHitsDoNotTrain(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	ctx := missAt(0x40000000)
	ctx.Hit = true
	p.Operate(ctx, func(prefetch.Candidate) { t.Fatal("hit proposed a candidate") })
	if p.head != 0 {
		t.Error("hit was recorded in the miss history")
	}
}

func TestOverwrittenHistoryNotReplayed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HistoryEntries = 16
	p := New(cfg, mem.PageBits4K)
	base := mem.Addr(0x40000000)
	first := base + 0x1000
	p.Operate(missAt(first), func(prefetch.Candidate) {})
	// Flood the history so the entry's successors are overwritten.
	for i := 0; i < 64; i++ {
		p.Operate(missAt(base+mem.Addr(0x2000+i*0x40)), func(prefetch.Candidate) {})
	}
	n := 0
	p.Operate(missAt(first), func(prefetch.Candidate) { n++ })
	if n != 0 {
		t.Errorf("replayed %d successors from overwritten history", n)
	}
}

func TestMetadataOrdersOfMagnitudeLarger(t *testing.T) {
	// The configured temporal tables store ~128KB of full addresses; SPP's
	// pattern state is a few KB of deltas. The ratio is the paper's point.
	m := New(DefaultConfig(), mem.PageBits4K).MetadataBytes()
	if m < 100<<10 {
		t.Errorf("temporal metadata = %d bytes, expected ≥ 100KB", m)
	}
}

func TestGenLimitRespected(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	a := mem.Addr(0x40000000)
	b := a + 3*mem.PageSize2M // different 2MB region
	p.Operate(missAt(a), func(prefetch.Candidate) {})
	p.Operate(missAt(b), func(prefetch.Candidate) {})
	var got []mem.Addr
	p.Operate(missAt(a), func(c prefetch.Candidate) { got = append(got, c.Addr) })
	for _, c := range got {
		if !mem.SamePage(c, a, mem.Page2M) {
			t.Errorf("candidate %#x escaped the trigger's 2MB region", c)
		}
	}
}
