// Package temporal implements a GHB-style temporal (Markov) prefetcher in
// the lineage the paper contrasts spatial prefetching against (Section II-A):
// it records the global sequence of demand misses and, on a recurring miss,
// replays the misses that followed it last time.
//
// The implementation deliberately exhibits the structural trade-offs the
// paper describes: its metadata stores full block addresses (orders of
// magnitude more state than a spatial prefetcher's deltas — see
// MetadataBytes), and it is fundamentally unable to cover compulsory misses,
// because it can only replay addresses it has already seen.
package temporal

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Config sizes the temporal prefetcher.
type Config struct {
	HistoryEntries int // global history buffer of miss addresses (8192)
	IndexEntries   int // block → last history position (4096)
	Degree         int // successors replayed per recurring miss (4)
}

// DefaultConfig returns the configuration used in comparisons.
func DefaultConfig() Config {
	return Config{HistoryEntries: 8192, IndexEntries: 4096, Degree: 4}
}

// Scale returns a copy with table capacities multiplied by k.
func (c Config) Scale(k int) Config {
	c.HistoryEntries *= k
	c.IndexEntries *= k
	return c
}

type indexEntry struct {
	block mem.Addr
	pos   uint64
	valid bool
}

// Prefetcher is a temporal prefetcher instance.
type Prefetcher struct {
	cfg   Config
	hist  []mem.Addr // circular buffer of miss block addresses
	head  uint64     // total misses recorded (next write position mod len)
	index []indexEntry
}

// New creates a temporal prefetcher. regionBits is ignored: temporal
// prefetching has no spatial page-indexed structures at all.
func New(cfg Config, _ uint) *Prefetcher {
	return &Prefetcher{
		cfg:   cfg,
		hist:  make([]mem.Addr, cfg.HistoryEntries),
		index: make([]indexEntry, cfg.IndexEntries),
	}
}

// Factory adapts New to prefetch.Factory.
func Factory(cfg Config) prefetch.Factory {
	return func(regionBits uint) prefetch.Prefetcher { return New(cfg, regionBits) }
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "temporal" }

// MetadataBytes returns the storage the configured tables require — the
// paper's "orders of magnitude more metadata" comparison point (full 8-byte
// addresses per history entry versus a spatial prefetcher's 7-bit deltas).
func (p *Prefetcher) MetadataBytes() int {
	return p.cfg.HistoryEntries*8 + p.cfg.IndexEntries*16
}

func (p *Prefetcher) slot(block mem.Addr) *indexEntry {
	h := uint64(block) * 0x9e3779b97f4a7c15
	return &p.index[h>>32%uint64(p.cfg.IndexEntries)]
}

// Train implements prefetch.Prefetcher: record demand misses in program
// order.
func (p *Prefetcher) Train(ctx prefetch.Context) {
	if !ctx.Type.IsDemand() || ctx.Hit {
		return // temporal prefetchers train on the miss sequence only
	}
	block := mem.BlockAlign(ctx.Addr)
	p.hist[p.head%uint64(len(p.hist))] = block
	*p.slot(block) = indexEntry{block: block, pos: p.head, valid: true}
	p.head++
}

// Operate implements prefetch.Prefetcher.
func (p *Prefetcher) Operate(ctx prefetch.Context, issue func(prefetch.Candidate)) {
	if !ctx.Type.IsDemand() || ctx.Hit {
		return
	}
	block := mem.BlockAlign(ctx.Addr)
	e := *p.slot(block)
	p.Train(ctx)
	if !e.valid || e.block != block {
		return
	}
	// Replay the misses that followed the previous occurrence, if they are
	// still in the history window.
	if p.head-e.pos >= uint64(len(p.hist)) {
		return // overwritten
	}
	for i := uint64(1); i <= uint64(p.cfg.Degree); i++ {
		pos := e.pos + i
		if pos >= p.head {
			return
		}
		if p.head-pos >= uint64(len(p.hist)) {
			continue
		}
		succ := p.hist[pos%uint64(len(p.hist))]
		if succ == block {
			continue
		}
		// Temporal replay is not bounded by spatial regions in principle,
		// but physical-address prefetching still must not leave the
		// residing page; the engine's boundary policy enforces that, and
		// the generation limit bounds what we propose.
		if !prefetch.InGenLimit(ctx.Addr, succ) {
			continue
		}
		issue(prefetch.Candidate{Addr: succ, FillL2: true})
	}
}
