package nextline

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func TestDegreeAndAddresses(t *testing.T) {
	p := New(3)
	var got []mem.Addr
	ctx := prefetch.Context{Addr: 0x40000000, Type: mem.Load}
	p.Operate(ctx, func(c prefetch.Candidate) { got = append(got, c.Addr) })
	if len(got) != 3 {
		t.Fatalf("candidates = %d, want 3", len(got))
	}
	for i, a := range got {
		if want := mem.Addr(0x40000000) + mem.Addr(i+1)*mem.BlockSize; a != want {
			t.Errorf("candidate %d = %#x, want %#x", i, a, want)
		}
	}
}

func TestDefaultDegree(t *testing.T) {
	if New(0).Degree != 1 || New(-3).Degree != 1 {
		t.Error("non-positive degree not defaulted to 1")
	}
}

func TestStopsAtGenLimit(t *testing.T) {
	p := New(4)
	trigger := mem.Addr(0x40000000) + mem.PageSize2M - 2*mem.BlockSize
	var got []mem.Addr
	p.Operate(prefetch.Context{Addr: trigger, Type: mem.Load},
		func(c prefetch.Candidate) { got = append(got, c.Addr) })
	if len(got) != 1 {
		t.Errorf("candidates near the 2MB edge = %d, want 1", len(got))
	}
}

func TestNonDemandIgnored(t *testing.T) {
	p := New(2)
	p.Operate(prefetch.Context{Addr: 0x1000, Type: mem.Writeback},
		func(prefetch.Candidate) { t.Fatal("non-demand access proposed") })
	p.Train(prefetch.Context{}) // stateless no-op must not panic
}
