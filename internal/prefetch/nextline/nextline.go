// Package nextline implements the trivial next-line prefetcher used as the
// reference point in the paper's Figure 13 comparison.
package nextline

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Prefetcher issues the next Degree sequential blocks after every demand
// access.
type Prefetcher struct {
	Degree int
}

// New creates a next-line prefetcher with the given degree (1 if degree<=0).
func New(degree int) *Prefetcher {
	if degree <= 0 {
		degree = 1
	}
	return &Prefetcher{Degree: degree}
}

// Factory adapts New to the prefetch.Factory signature; next-line has no
// page-indexed structures, so regionBits is ignored.
func Factory(degree int) prefetch.Factory {
	return func(uint) prefetch.Prefetcher { return New(degree) }
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "nextline" }

// Operate implements prefetch.Prefetcher.
func (p *Prefetcher) Operate(ctx prefetch.Context, issue func(prefetch.Candidate)) {
	if !ctx.Type.IsDemand() {
		return
	}
	for i := 1; i <= p.Degree; i++ {
		c := ctx.Addr + mem.Addr(i)*mem.BlockSize
		if !prefetch.InGenLimit(ctx.Addr, c) {
			break
		}
		issue(prefetch.Candidate{Addr: c, FillL2: true})
	}
}

// Train implements prefetch.Prefetcher. Next-line is stateless.
func (p *Prefetcher) Train(prefetch.Context) {}
