// Package ppf implements Perceptron-based Prefetch Filtering (Bhatia et al.,
// ISCA 2019): an aggressively configured SPP proposes many candidates, and a
// hashed perceptron — one weight table per feature — accepts each candidate
// into the L2, demotes it to the LLC, or rejects it. The perceptron trains
// online from prefetch outcomes (useful / evicted-unused) and from demand
// misses that a rejected candidate would have covered.
package ppf

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/prefetch/spp"
)

// numFeatures is the number of perceptron feature tables.
const numFeatures = 7

// Config sizes PPF.
type Config struct {
	SPP           spp.Config // underlying proposer (aggressive thresholds)
	TableEntries  int        // entries per feature weight table (1024)
	WeightMax     int        // weight saturation (±31)
	ThresholdHi   int        // sum ≥ → fill L2
	ThresholdLo   int        // sum ≥ → fill LLC, else reject
	TrainMargin   int        // retrain while |sum| below this margin
	RecordEntries int        // prefetch/reject recovery table entries
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	sppCfg := spp.DefaultConfig()
	// The proposer runs with thresholds low enough to surface marginal
	// candidates; the perceptron is the actual gatekeeper.
	sppCfg.FillThreshold = 0.10
	sppCfg.LLCThreshold = 0.03
	sppCfg.MaxLookahead = 12
	return Config{
		SPP:           sppCfg,
		TableEntries:  1024,
		WeightMax:     31,
		ThresholdHi:   2,
		ThresholdLo:   -6,
		TrainMargin:   20,
		RecordEntries: 1024,
	}
}

// Scale returns a copy of c with table capacities multiplied by k.
func (c Config) Scale(k int) Config {
	c.SPP = c.SPP.Scale(k)
	c.TableEntries *= k
	c.RecordEntries *= k
	return c
}

// record remembers the feature indices of a recent decision so the outcome
// can train the same weights.
type record struct {
	block mem.Addr
	idx   [numFeatures]int
	valid bool
}

// Prefetcher is a PPF instance.
type Prefetcher struct {
	cfg Config
	spp *spp.Prefetcher
	w   [numFeatures][]int8
	pft []record // issued prefetches
	rjt []record // rejected candidates

	// sink is the persistent candidate classifier Operate hands to the SPP
	// proposer; the per-call trigger context and downstream issue function
	// ride in opCtx/opIssue so the hot path allocates no closure. Operate is
	// not reentrant.
	sink    func(prefetch.Candidate, spp.Meta)
	opCtx   prefetch.Context
	opIssue func(prefetch.Candidate)
}

// New creates a PPF prefetcher; regionBits configures the underlying SPP's
// Signature Table granularity (PPF itself keys features on 4KB geometry).
func New(cfg Config, regionBits uint) *Prefetcher {
	p := &Prefetcher{
		cfg: cfg,
		spp: spp.New(cfg.SPP, regionBits),
		pft: make([]record, cfg.RecordEntries),
		rjt: make([]record, cfg.RecordEntries),
	}
	for i := range p.w {
		p.w[i] = make([]int8, cfg.TableEntries)
	}
	p.sink = p.classify
	return p
}

// Factory adapts New to prefetch.Factory.
func Factory(cfg Config) prefetch.Factory {
	return func(regionBits uint) prefetch.Prefetcher { return New(cfg, regionBits) }
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "ppf" }

func hash(x uint64, entries int) int {
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 32
	if entries&(entries-1) == 0 {
		return int(x) & (entries - 1) // identical to the modulo for pow2 sizes
	}
	return int(x % uint64(entries))
}

// features derives the perceptron feature indices for a candidate.
func (p *Prefetcher) features(ctx prefetch.Context, cand mem.Addr, m spp.Meta) [numFeatures]int {
	n := p.cfg.TableEntries
	confBucket := int(m.Confidence * 8)
	return [numFeatures]int{
		hash(uint64(ctx.PC), n),
		hash(uint64(ctx.PC)<<4^uint64(m.Depth), n),
		hash(uint64(mem.BlockOffsetInPage(cand, mem.Page4K)), n),
		hash(uint64(mem.PageNumber(cand, mem.Page4K))&0xffff, n),
		hash(uint64(m.Sig), n),
		hash(uint64(confBucket), n),
		hash(uint64(int64(m.Delta))+1<<20, n),
	}
}

func (p *Prefetcher) sum(idx [numFeatures]int) int {
	s := 0
	for i, j := range idx {
		s += int(p.w[i][j])
	}
	return s
}

func (p *Prefetcher) adjust(idx [numFeatures]int, up bool) {
	for i, j := range idx {
		w := int(p.w[i][j])
		if up && w < p.cfg.WeightMax {
			w++
		} else if !up && w > -p.cfg.WeightMax-1 {
			w--
		}
		p.w[i][j] = int8(w)
	}
}

func recIndex(block mem.Addr, entries int) int {
	return hash(uint64(mem.BlockNumber(block)), entries)
}

// Operate implements prefetch.Prefetcher.
func (p *Prefetcher) Operate(ctx prefetch.Context, issue func(prefetch.Candidate)) {
	p.opCtx, p.opIssue = ctx, issue
	p.spp.OperateMeta(ctx, p.sink)
}

// classify runs one SPP proposal through the perceptron and issues, demotes,
// or rejects it. It is the body of the persistent sink; the trigger context
// rides in opCtx/opIssue.
func (p *Prefetcher) classify(c prefetch.Candidate, m spp.Meta) {
	idx := p.features(p.opCtx, c.Addr, m)
	s := p.sum(idx)
	rec := record{block: mem.BlockAlign(c.Addr), idx: idx, valid: true}
	switch {
	case s >= p.cfg.ThresholdHi:
		p.pft[recIndex(c.Addr, p.cfg.RecordEntries)] = rec
		p.opIssue(prefetch.Candidate{Addr: c.Addr, FillL2: true})
	case s >= p.cfg.ThresholdLo:
		p.pft[recIndex(c.Addr, p.cfg.RecordEntries)] = rec
		p.opIssue(prefetch.Candidate{Addr: c.Addr, FillL2: false})
	default:
		p.rjt[recIndex(c.Addr, p.cfg.RecordEntries)] = rec
	}
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ctx prefetch.Context) { p.spp.Train(ctx) }

// PrefetchUseful implements prefetch.FeedbackReceiver: strengthen the weights
// that accepted a prefetch that turned out useful.
func (p *Prefetcher) PrefetchUseful(block mem.Addr) {
	p.spp.PrefetchUseful(block)
	r := &p.pft[recIndex(block, p.cfg.RecordEntries)]
	if r.valid && r.block == mem.BlockAlign(block) {
		if p.sum(r.idx) < p.cfg.TrainMargin {
			p.adjust(r.idx, true)
		}
		r.valid = false
	}
}

// PrefetchUnused implements prefetch.FeedbackReceiver: weaken the weights
// that accepted a prefetch evicted without use.
func (p *Prefetcher) PrefetchUnused(block mem.Addr) {
	p.spp.PrefetchUnused(block)
	r := &p.pft[recIndex(block, p.cfg.RecordEntries)]
	if r.valid && r.block == mem.BlockAlign(block) {
		if p.sum(r.idx) > -p.cfg.TrainMargin {
			p.adjust(r.idx, false)
		}
		r.valid = false
	}
}

// DemandMiss implements prefetch.FeedbackReceiver: a miss on a block whose
// candidate was rejected means the perceptron was wrong to reject.
func (p *Prefetcher) DemandMiss(block mem.Addr) {
	r := &p.rjt[recIndex(block, p.cfg.RecordEntries)]
	if r.valid && r.block == mem.BlockAlign(block) {
		if p.sum(r.idx) < p.cfg.TrainMargin {
			p.adjust(r.idx, true)
		}
		r.valid = false
	}
}
