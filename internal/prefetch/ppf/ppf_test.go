package ppf

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func ctxAt(addr mem.Addr) prefetch.Context {
	return prefetch.Context{Addr: mem.BlockAlign(addr), PC: 0x400123, Type: mem.Load, PageSize: mem.Page4K}
}

func TestProposesOnTrainedPattern(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	var cands []prefetch.Candidate
	for i := 0; i < 16; i++ {
		cands = nil
		p.Operate(ctxAt(base+mem.Addr(i)*mem.BlockSize), func(c prefetch.Candidate) { cands = append(cands, c) })
	}
	if len(cands) == 0 {
		t.Fatal("PPF proposed nothing on a perfect stride")
	}
}

func TestNegativeTrainingSuppresses(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)

	countIssued := func() int {
		n := 0
		for i := 0; i < 32; i++ {
			p.Operate(ctxAt(base+mem.Addr(i)*mem.BlockSize), func(c prefetch.Candidate) {
				n++
				// Report every issued prefetch as useless.
				p.PrefetchUnused(c.Addr)
				p.PrefetchUnused(c.Addr) // idempotent on invalid record
			})
		}
		return n
	}
	first := countIssued()
	var last int
	for round := 0; round < 20; round++ {
		last = countIssued()
	}
	if first == 0 {
		t.Fatal("no prefetches issued at all")
	}
	if last >= first {
		t.Errorf("negative feedback did not reduce issue rate: first=%d last=%d", first, last)
	}
}

func TestPositiveTrainingPromotes(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	// Drive with positive feedback; the L2 share of issued prefetches should
	// not collapse.
	l2, total := 0, 0
	for i := 0; i < 200; i++ {
		p.Operate(ctxAt(base+mem.Addr(i)*mem.BlockSize), func(c prefetch.Candidate) {
			total++
			if c.FillL2 {
				l2++
			}
			p.PrefetchUseful(c.Addr)
		})
	}
	if total == 0 {
		t.Fatal("nothing issued")
	}
	if l2 == 0 {
		t.Error("no candidate promoted to L2 despite positive feedback")
	}
}

func TestRejectThenDemandMissTrainsUp(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	// Force all weights deeply negative so everything is rejected.
	for f := range p.w {
		for i := range p.w[f] {
			p.w[f][i] = -8
		}
	}
	base := mem.Addr(0x40000000)
	rejectedSome := false
	for i := 0; i < 16; i++ {
		p.Operate(ctxAt(base+mem.Addr(i)*mem.BlockSize), func(prefetch.Candidate) {
			t.Fatal("candidate issued despite negative weights")
		})
	}
	for _, r := range p.rjt {
		if r.valid {
			rejectedSome = true
			// A demand miss on the rejected block must raise its weights.
			before := p.sum(r.idx)
			p.DemandMiss(r.block)
			after := p.sum(r.idx)
			if after <= before {
				t.Errorf("DemandMiss did not train up: %d -> %d", before, after)
			}
			break
		}
	}
	if !rejectedSome {
		t.Fatal("no rejections recorded")
	}
}

func TestWeightsSaturate(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	var idx [numFeatures]int // all zeros
	for i := 0; i < 1000; i++ {
		p.adjust(idx, true)
	}
	for f := range p.w {
		if int(p.w[f][0]) > p.cfg.WeightMax {
			t.Errorf("weight exceeded max: %d", p.w[f][0])
		}
	}
	for i := 0; i < 2000; i++ {
		p.adjust(idx, false)
	}
	for f := range p.w {
		if int(p.w[f][0]) < -p.cfg.WeightMax-1 {
			t.Errorf("weight exceeded min: %d", p.w[f][0])
		}
	}
}

func TestTrainOnlyDelegatesToSPP(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	for i := 0; i < 12; i++ {
		p.Train(ctxAt(base + mem.Addr(i)*mem.BlockSize))
	}
	var n int
	p.Operate(ctxAt(base+12*mem.BlockSize), func(prefetch.Candidate) { n++ })
	if n == 0 {
		t.Error("Train-only did not build proposer state")
	}
}

func TestScale(t *testing.T) {
	c := DefaultConfig().Scale(2)
	if c.TableEntries != 2048 || c.RecordEntries != 2048 || c.SPP.PTEntries != 1024 {
		t.Errorf("Scale(2) = %+v", c)
	}
}
