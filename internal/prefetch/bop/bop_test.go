package bop

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func ctxAt(addr mem.Addr) prefetch.Context {
	return prefetch.Context{Addr: mem.BlockAlign(addr), Type: mem.Load, PageSize: mem.Page4K}
}

func TestOffsetList(t *testing.T) {
	offs := offsetList(0)
	if offs[0] != 1 {
		t.Errorf("first offset = %d, want 1", offs[0])
	}
	for _, o := range offs {
		m := o
		for _, p := range []int{2, 3, 5} {
			for m%p == 0 {
				m /= p
			}
		}
		if m != 1 {
			t.Errorf("offset %d has a prime factor > 5", o)
		}
	}
	// Michaud's list has 52 entries in 1..256.
	if len(offs) != 52 {
		t.Errorf("offset list length = %d, want 52", len(offs))
	}
	if got := offsetList(10); len(got) != 10 {
		t.Errorf("limited list length = %d, want 10", len(got))
	}
}

func TestLearnsDominantOffset(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	// A pure +4-block stream: offset 4 should win a learning phase.
	for i := 0; i < 20000; i++ {
		p.Train(ctxAt(base + mem.Addr(i*4)*mem.BlockSize))
	}
	if p.BestOffset() != 4 {
		t.Errorf("BestOffset = %d, want 4", p.BestOffset())
	}
	if !p.Enabled() {
		t.Error("prefetching disabled despite a strong pattern")
	}
}

func TestIssuesBestOffset(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	for i := 0; i < 20000; i++ {
		p.Train(ctxAt(base + mem.Addr(i*2)*mem.BlockSize))
	}
	var cands []prefetch.Candidate
	trigger := base + 40000*2*mem.BlockSize
	_ = trigger
	tr := base
	p.Operate(ctxAt(tr), func(c prefetch.Candidate) { cands = append(cands, c) })
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1 (degree 1)", len(cands))
	}
	want := tr + mem.Addr(p.BestOffset())*mem.BlockSize
	if cands[0].Addr != want {
		t.Errorf("candidate %#x, want %#x", cands[0].Addr, want)
	}
	if !cands[0].FillL2 {
		t.Error("BOP candidate should fill L2")
	}
}

func TestDisablesOnRandomTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RoundMax = 10
	p := New(cfg, mem.PageBits4K)
	x := uint64(777)
	for i := 0; i < 20000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		p.Train(ctxAt(mem.Addr(x) & 0x3fffffffc0))
	}
	if p.Enabled() {
		t.Error("prefetching stayed enabled on random traffic")
	}
	var cands []prefetch.Candidate
	p.Operate(ctxAt(0x40000000), func(c prefetch.Candidate) { cands = append(cands, c) })
	if len(cands) != 0 {
		t.Errorf("disabled BOP issued %d candidates", len(cands))
	}
}

func TestGenLimitRespected(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	for i := 0; i < 20000; i++ {
		p.Train(ctxAt(base + mem.Addr(i*16)*mem.BlockSize))
	}
	// Trigger near the end of a 2MB region: candidate must not escape it.
	trigger := base + mem.PageSize2M - mem.BlockSize
	var cands []prefetch.Candidate
	p.Operate(ctxAt(trigger), func(c prefetch.Candidate) { cands = append(cands, c) })
	for _, c := range cands {
		if !mem.SamePage(c.Addr, trigger, mem.Page2M) {
			t.Errorf("candidate %#x escaped the 2MB region", c.Addr)
		}
	}
}

func TestRegionBitsIrrelevant(t *testing.T) {
	// BOP-PSA-2MB ≡ BOP-PSA: identical construction regardless of regionBits.
	a := New(DefaultConfig(), mem.PageBits4K)
	b := New(DefaultConfig(), mem.PageBits2M)
	base := mem.Addr(0x40000000)
	for i := 0; i < 20000; i++ {
		c := ctxAt(base + mem.Addr(i*8)*mem.BlockSize)
		a.Train(c)
		b.Train(c)
	}
	if a.BestOffset() != b.BestOffset() {
		t.Errorf("regionBits changed BOP behaviour: %d vs %d", a.BestOffset(), b.BestOffset())
	}
}

func TestNonDemandIgnored(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	var called bool
	p.Operate(prefetch.Context{Addr: 0x1000, Type: mem.Writeback}, func(prefetch.Candidate) { called = true })
	if called {
		t.Error("non-demand access proposed candidates")
	}
}
