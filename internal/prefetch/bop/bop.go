// Package bop implements the Best-Offset Prefetcher (Michaud, HPCA 2016): a
// learning phase scores a fixed list of candidate offsets against a table of
// recently requested blocks and, at the end of each round, adopts the
// best-scoring offset for prefetching.
//
// BOP keeps no structure indexed by the physical page number, so — exactly as
// the paper observes — its PSA-2MB variant degenerates to PSA: the regionBits
// parameter is accepted for interface uniformity and ignored.
package bop

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Config sizes BOP's structures.
type Config struct {
	RREntries  int // recent-requests table entries (256)
	ScoreMax   int // round ends early when an offset reaches this (31)
	RoundMax   int // max rounds per learning phase (100)
	BadScore   int // best score below this disables prefetching (1)
	NumOffsets int // length of the offset list (0 = full list)
	Degree     int // consecutive multiples of the best offset issued (1)
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{RREntries: 256, ScoreMax: 31, RoundMax: 100, BadScore: 1, Degree: 1}
}

// Scale returns a copy of c with the RR table scaled by k (ISO storage).
func (c Config) Scale(k int) Config {
	c.RREntries *= k
	return c
}

// offsetList returns Michaud's offset candidates: integers 1..256 whose prime
// factorisation contains only 2, 3, and 5.
func offsetList(limit int) []int {
	var out []int
	for n := 1; n <= 256; n++ {
		m := n
		for _, p := range []int{2, 3, 5} {
			for m%p == 0 {
				m /= p
			}
		}
		if m == 1 {
			out = append(out, n)
		}
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out
}

// Prefetcher is a BOP instance.
type Prefetcher struct {
	cfg     Config
	offsets []int
	scores  []int

	rr []mem.Addr // recent requests, direct-mapped by block-number hash

	testIdx    int // offset under test in the current round-robin sweep
	round      int
	best       int  // currently adopted offset (blocks)
	prefetchOn bool // false when the last phase ended with a bad score
}

// New creates a BOP prefetcher. regionBits is ignored (no page-indexed
// state).
func New(cfg Config, _ uint) *Prefetcher {
	offs := offsetList(cfg.NumOffsets)
	return &Prefetcher{
		cfg:        cfg,
		offsets:    offs,
		scores:     make([]int, len(offs)),
		rr:         make([]mem.Addr, cfg.RREntries),
		best:       1,
		prefetchOn: true,
	}
}

// Factory adapts New to prefetch.Factory.
func Factory(cfg Config) prefetch.Factory {
	return func(regionBits uint) prefetch.Prefetcher { return New(cfg, regionBits) }
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "bop" }

// BestOffset exposes the adopted offset (for tests and diagnostics).
func (p *Prefetcher) BestOffset() int { return p.best }

// Enabled reports whether the last learning phase adopted a usable offset.
func (p *Prefetcher) Enabled() bool { return p.prefetchOn }

func (p *Prefetcher) rrIndex(blk mem.Addr) int {
	h := uint64(blk) * 0x9e3779b97f4a7c15
	return int(h>>40) % p.cfg.RREntries
}

func (p *Prefetcher) rrInsert(blk mem.Addr) { p.rr[p.rrIndex(blk)] = blk }
func (p *Prefetcher) rrContains(blk mem.Addr) bool {
	return p.rr[p.rrIndex(blk)] == blk && blk != 0
}

// endPhase adopts the best-scoring offset and resets the learning state.
func (p *Prefetcher) endPhase() {
	bestScore, bestOff := -1, 1
	for i, s := range p.scores {
		if s > bestScore {
			bestScore, bestOff = s, p.offsets[i]
		}
	}
	p.best = bestOff
	p.prefetchOn = bestScore >= p.cfg.BadScore
	for i := range p.scores {
		p.scores[i] = 0
	}
	p.round = 0
	p.testIdx = 0
}

// Train implements prefetch.Prefetcher: advance the learning phase.
func (p *Prefetcher) Train(ctx prefetch.Context) {
	if !ctx.Type.IsDemand() {
		return
	}
	blk := mem.BlockNumber(ctx.Addr)

	// Score the offset under test: would a prefetch with this offset,
	// triggered when blk-d was accessed, have covered the current access?
	d := p.offsets[p.testIdx]
	if p.rrContains(blk - mem.Addr(d)) {
		p.scores[p.testIdx]++
		if p.scores[p.testIdx] >= p.cfg.ScoreMax {
			p.endPhase()
			p.rrInsert(blk)
			return
		}
	}
	p.testIdx++
	if p.testIdx == len(p.offsets) {
		p.testIdx = 0
		p.round++
		if p.round >= p.cfg.RoundMax {
			p.endPhase()
		}
	}
	p.rrInsert(blk)
}

// Operate implements prefetch.Prefetcher.
func (p *Prefetcher) Operate(ctx prefetch.Context, issue func(prefetch.Candidate)) {
	if !ctx.Type.IsDemand() {
		return
	}
	p.Train(ctx)
	if !p.prefetchOn {
		return
	}
	for k := 1; k <= p.cfg.Degree; k++ {
		cand := ctx.Addr + mem.Addr(k*p.best)*mem.BlockSize
		if !prefetch.InGenLimit(ctx.Addr, cand) {
			return
		}
		issue(prefetch.Candidate{Addr: cand, FillL2: true})
	}
}
