// Differential tests relating the page-size-aware variants to their
// restricted counterparts at the engine level: identical demand streams into
// separately assembled engine+cache stacks, with the full prefetch fill
// sequence as the observable. Engine-level comparison (rather than sim-level)
// keeps MSHR merge timing out of the picture: fills follow synchronously from
// each access, so the equality claims are exact, not statistical.
package prefetch_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/prefetch/pangloss"
	"repro/internal/prefetch/vamp"
)

// diffFill captures one prefetch fill. The fields are copied out inside the
// lifecycle callback: the engine pools its request structs, so the event's
// *mem.Request must not be dereferenced after the callback returns.
type diffFill struct {
	Block   mem.Addr
	FillL2  bool
	Crossed bool
}

// diffStack is one engine plus a private two-level cache stack, recording
// every prefetch fill in order. The caches are sized so the test streams
// never evict: cache contents grow monotonically, which the set-containment
// arguments below rely on.
type diffStack struct {
	l2, llc *cache.Cache
	engine  *core.Engine
	fills   []diffFill
}

func newDiffStack(factory prefetch.Factory, variant core.Variant) *diffStack {
	s := &diffStack{}
	s.llc = cache.New(cache.Config{
		Name: "llc", Sets: 8192, Ways: 16, Latency: 1, MSHREntries: 64,
	}, nil)
	s.l2 = cache.New(cache.Config{
		Name: "l2", Sets: 4096, Ways: 16, Latency: 1, MSHREntries: 64,
	}, s.llc)
	s.engine = core.New(factory, variant, s.l2, s.llc, nil, 0)
	s.l2.SetObserver(s.engine)
	rec := &lifeRecorder{onFill: func(ev cache.LifecycleEvent) {
		s.fills = append(s.fills, diffFill{
			Block:   ev.Block,
			FillL2:  ev.Req.FillL2,
			Crossed: ev.Req.CrossedPage,
		})
	}}
	s.l2.SetLifecycleObserver(rec)
	s.llc.SetLifecycleObserver(rec)
	return s
}

// access feeds one demand access; fills triggered by it are recorded
// synchronously before this returns.
func (s *diffStack) access(va, pa mem.Addr, size mem.PageSize, at mem.Cycle) {
	req := &mem.Request{
		PAddr:         pa,
		VAddr:         va,
		PC:            0x400000,
		Type:          mem.Load,
		Core:          0,
		PageSize:      size,
		PageSizeKnown: true,
	}
	s.l2.Access(req, at)
}

// TestVampClampEquivalence: vamp under the engine's Original variant (no
// page-size knowledge, hard 4KB virtual boundary) must be byte-equivalent to
// the Clamp4K-restricted vamp under PSA — the engine-side discard of every
// crossing candidate and the prefetcher-side suppression are the same
// function. The streams include page-edge strides, so the equivalence has
// teeth: the Original stack must actually discard crossing candidates.
func TestVampClampEquivalence(t *testing.T) {
	unclamped := newDiffStack(vamp.Factory(vamp.DefaultConfig()), core.Original)
	clampedCfg := vamp.DefaultConfig()
	clampedCfg.Clamp4K = true
	clamped := newDiffStack(vamp.Factory(clampedCfg), core.PSA)

	// Identity mapping (VA == PA): virtual candidates inside the trigger's
	// 4KB page resolve from the trigger's own frame, and no candidate in
	// either stack ever reaches the translator (Original discards crossers
	// at the boundary, Clamp4K suppresses them), so none is installed.
	base := mem.Addr(0x40000000)
	at := mem.Cycle(0)
	feed := func(a mem.Addr) {
		at += 100
		unclamped.access(a, a, mem.Page2M, at)
		clamped.access(a, a, mem.Page2M, at)
	}
	// Unit stride across eight 4KB pages: crossing candidates at every edge.
	for i := 0; i < 8*64; i++ {
		feed(base + mem.Addr(i)*mem.BlockSize)
	}
	// Stride-3 walk through two more pages, then a few re-touches.
	for i := 0; i < 48; i++ {
		feed(base + mem.Addr(8*64+i*3)*mem.BlockSize)
	}
	for i := 0; i < 32; i++ {
		feed(base + mem.Addr(i*17%512)*mem.BlockSize)
	}

	if len(unclamped.fills) == 0 {
		t.Fatal("no prefetch fills at all — the differential compared nothing")
	}
	if len(unclamped.fills) != len(clamped.fills) {
		t.Fatalf("fill counts diverge: unclamped-Original %d, clamped-PSA %d",
			len(unclamped.fills), len(clamped.fills))
	}
	for i := range unclamped.fills {
		u, c := unclamped.fills[i], clamped.fills[i]
		if u != c {
			t.Fatalf("fill %d diverges: unclamped-Original %+v, clamped-PSA %+v", i, u, c)
		}
	}
	us, cs := unclamped.engine.Stats, clamped.engine.Stats
	if us.Issued != cs.Issued {
		t.Errorf("issued counts diverge: %d vs %d", us.Issued, cs.Issued)
	}
	if us.DiscardedBoundary == 0 {
		t.Error("Original stack discarded no crossing candidates (no teeth)")
	}
	if cs.DiscardedBoundary != 0 {
		t.Errorf("clamped stack hit the engine boundary %d times; the clamp should suppress first",
			cs.DiscardedBoundary)
	}
	if us.Proposed <= cs.Proposed {
		t.Errorf("unclamped proposed %d <= clamped %d; crossing proposals should exist",
			us.Proposed, cs.Proposed)
	}
	if us.CrossedPage4K != 0 || cs.CrossedPage4K != 0 {
		t.Errorf("crossed fills in a 4KB-restricted differential: %d vs %d",
			us.CrossedPage4K, cs.CrossedPage4K)
	}
}

// TestPanglossPSACrossedFillsOnly: pangloss under PSA differs from pangloss
// under Original exactly in the crossed-4KB fills. Pangloss state is a pure
// function of the demand stream, so both engines see identical proposal
// streams; with no evictions, the Original fill set is contained in the PSA
// fill set, and every PSA-only fill crossed its trigger's 4KB page.
func TestPanglossPSACrossedFillsOnly(t *testing.T) {
	orig := newDiffStack(pangloss.Factory(pangloss.DefaultConfig()), core.Original)
	psa := newDiffStack(pangloss.Factory(pangloss.DefaultConfig()), core.PSA)

	base := mem.Addr(0x40000000)
	at := mem.Cycle(0)
	feed := func(a mem.Addr) {
		at += 200
		orig.access(a, a, mem.Page2M, at)
		psa.access(a, a, mem.Page2M, at)
	}
	// Stride-8 walk through one 2MB region (crossing 4KB lines every 8
	// accesses), then a +3/+1 alternation in a second region.
	for i := 0; i < 256; i++ {
		feed(base + mem.Addr(i*8)*mem.BlockSize)
	}
	second := base + mem.PageSize2M
	off := 0
	for i := 0; i < 128; i++ {
		if i%2 == 0 {
			off += 3
		} else {
			off++
		}
		feed(second + mem.Addr(off)*mem.BlockSize)
	}

	os, ps := orig.engine.Stats, psa.engine.Stats
	if os.Proposed != ps.Proposed {
		t.Fatalf("proposal streams diverge (%d vs %d) although pangloss state is demand-pure",
			os.Proposed, ps.Proposed)
	}
	if os.CrossedPage4K != 0 {
		t.Errorf("Original issued %d crossing prefetches", os.CrossedPage4K)
	}
	if ps.CrossedPage4K == 0 {
		t.Error("PSA never crossed a 4KB line over a stride-8 walk (no teeth)")
	}

	origSet := map[mem.Addr]bool{}
	for _, f := range orig.fills {
		origSet[f.Block] = true
		if f.Crossed {
			t.Errorf("Original fill %#x marked as crossing", f.Block)
		}
	}
	psaSet := map[mem.Addr]bool{}
	psaCrossed := map[mem.Addr]bool{}
	for _, f := range psa.fills {
		psaSet[f.Block] = true
		if f.Crossed {
			psaCrossed[f.Block] = true
		}
	}
	for b := range origSet {
		if !psaSet[b] {
			t.Errorf("block %#x prefetched under Original but never under PSA", b)
		}
	}
	extra := 0
	for b := range psaSet {
		if origSet[b] {
			continue
		}
		extra++
		if !psaCrossed[b] {
			t.Errorf("PSA-only fill %#x never crossed a 4KB line — PSA should differ in crossed fills only", b)
		}
	}
	if extra == 0 {
		t.Error("PSA fill set equals Original's; page-size awareness added nothing (no teeth)")
	}
}
