package vldp

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func ctxAt(addr mem.Addr) prefetch.Context {
	return prefetch.Context{Addr: mem.BlockAlign(addr), Type: mem.Load, PageSize: mem.Page4K}
}

func collect(p *Prefetcher, addr mem.Addr) []prefetch.Candidate {
	var out []prefetch.Candidate
	p.Operate(ctxAt(addr), func(c prefetch.Candidate) { out = append(out, c) })
	return out
}

func TestLearnsConstantDelta(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	var cands []prefetch.Candidate
	for i := 0; i < 10; i++ {
		cands = collect(p, base+mem.Addr(2*i)*mem.BlockSize)
	}
	want := base + 22*mem.BlockSize // next after offset 18 (+2 chain ×2)
	found := false
	for _, c := range cands {
		if c.Addr == base+20*mem.BlockSize || c.Addr == want {
			found = true
		}
	}
	if !found {
		t.Errorf("+2 delta continuation not proposed; got %+v", cands)
	}
	if len(cands) < 2 {
		t.Errorf("degree too low: %d candidates", len(cands))
	}
}

func TestLearnsAlternatingPattern(t *testing.T) {
	// Deltas alternate +1,+3,+1,+3...; the longer-history tables must pick
	// this up, which a single-delta predictor cannot do reliably.
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	off := 0
	deltas := []int{1, 3}
	var cands []prefetch.Candidate
	for i := 0; i < 24; i++ {
		cands = collect(p, base+mem.Addr(off)*mem.BlockSize)
		off += deltas[i%2]
	}
	// After an even number of accesses the last delta was +3, so next is +1.
	want := base + mem.Addr(off)*mem.BlockSize
	found := false
	for _, c := range cands {
		if c.Addr == want {
			found = true
		}
	}
	if !found {
		t.Errorf("alternating pattern continuation %#x not in %+v", want, cands)
	}
}

func TestOPTPredictsFirstDelta(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	// Several pages all start at offset 0 and then touch offset 4: the OPT
	// learns first-offset 0 → delta +4.
	for i := 0; i < 6; i++ {
		base := mem.Addr(0x40000000) + mem.Addr(i)<<mem.PageBits4K
		collect(p, base)
		collect(p, base+4*mem.BlockSize)
	}
	fresh := mem.Addr(0x40000000) + 100<<mem.PageBits4K
	cands := collect(p, fresh)
	found := false
	for _, c := range cands {
		if c.Addr == fresh+4*mem.BlockSize {
			found = true
		}
	}
	if !found {
		t.Errorf("OPT did not predict first delta; got %+v", cands)
	}
}

func TestCandidatesStayInGenLimit(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	// Stride toward the very end of a 2MB region.
	regionEnd := mem.Addr(0x40000000) + mem.PageSize2M
	var all []prefetch.Candidate
	for i := 20; i > 0; i-- {
		addr := regionEnd - mem.Addr(i*3)*mem.BlockSize
		all = append(all, collect(p, addr)...)
	}
	for _, c := range all {
		if !mem.SamePage(c.Addr, 0x40000000, mem.Page2M) {
			t.Errorf("candidate %#x escaped the 2MB generation region", c.Addr)
		}
	}
}

func TestCrosses4KBWithinRegion(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	var all []prefetch.Candidate
	for off := 50; off < 64; off++ {
		all = append(all, collect(p, base+mem.Addr(off)*mem.BlockSize)...)
	}
	crossed := false
	for _, c := range all {
		if !mem.SamePage(c.Addr, base, mem.Page4K) {
			crossed = true
		}
	}
	if !crossed {
		t.Error("no raw candidate crossed the 4KB boundary near page end")
	}
}

func TestTrainOnlyBuildsState(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	for i := 0; i < 10; i++ {
		p.Train(ctxAt(base + mem.Addr(i)*mem.BlockSize))
	}
	cands := collect(p, base+10*mem.BlockSize)
	if len(cands) == 0 {
		t.Error("Train-only state produced no predictions")
	}
}

func TestNonDemandIgnored(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	var called bool
	p.Operate(prefetch.Context{Addr: 0x1000, Type: mem.Prefetch}, func(prefetch.Candidate) { called = true })
	if called {
		t.Error("non-demand access proposed candidates")
	}
}

func TestDPTConfidenceReplacement(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	hist := []int{5}
	for i := 0; i < 4; i++ {
		p.dptUpdate(0, hist, 7)
	}
	if d, ok := p.dptPredict(hist); !ok || d != 7 {
		t.Fatalf("predict = %d,%v; want 7,true", d, ok)
	}
	// Conflicting updates erode confidence and eventually retrain.
	for i := 0; i < 10; i++ {
		p.dptUpdate(0, hist, 9)
	}
	if d, ok := p.dptPredict(hist); !ok || d != 9 {
		t.Errorf("after retraining predict = %d,%v; want 9,true", d, ok)
	}
}

func TestRegionBits2MLargeDeltas(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits2M)
	base := mem.Addr(0x40000000)
	var cands []prefetch.Candidate
	for i := 0; i < 12; i++ {
		cands = collect(p, base+mem.Addr(i*100)*mem.BlockSize)
	}
	want := base + mem.Addr(12*100)*mem.BlockSize
	found := false
	for _, c := range cands {
		if c.Addr == want {
			found = true
		}
	}
	if !found {
		t.Errorf("2MB-indexed VLDP missed +100-block stride; got %+v", cands)
	}
}

func TestScale(t *testing.T) {
	c := DefaultConfig().Scale(2)
	if c.DHBEntries != 32 || c.DPTEntries != 128 || c.OPTEntries != 128 {
		t.Errorf("Scale(2) = %+v", c)
	}
}
