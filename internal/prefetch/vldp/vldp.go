// Package vldp implements the Variable Length Delta Prefetcher (Shevgoor et
// al., MICRO 2015): per-page delta histories (Delta History Buffer) feed a
// cascade of Delta Prediction Tables keyed by delta sequences of increasing
// length, with longer-history tables taking precedence; an Offset Prediction
// Table predicts the first delta of a freshly touched page.
//
// As with SPP, the page granularity used for the DHB is configurable via
// regionBits so the paper's VLDP-PSA-2MB variant can be instantiated.
package vldp

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Config sizes VLDP's structures.
type Config struct {
	DHBEntries int // delta history buffer entries (16)
	DPTEntries int // entries per delta prediction table (64)
	OPTEntries int // offset prediction table entries (64)
	HistoryLen int // delta history per page (3 tables → 3)
	Degree     int // prefetches chained per trigger (4)
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{DHBEntries: 16, DPTEntries: 64, OPTEntries: 64, HistoryLen: 3, Degree: 4}
}

// Scale returns a copy of c with table capacities multiplied by k (ISO
// storage comparison).
func (c Config) Scale(k int) Config {
	c.DHBEntries *= k
	c.DPTEntries *= k
	c.OPTEntries *= k
	return c
}

type dhbEntry struct {
	tag        mem.Addr
	valid      bool
	lastOffset int
	deltas     []int // most recent last
	lru        uint64
}

type dptEntry struct {
	key   uint64
	delta int
	conf  int // 2-bit saturating
	valid bool
}

type optEntry struct {
	delta int
	conf  int
	valid bool
}

// Prefetcher is a VLDP instance.
type Prefetcher struct {
	cfg        Config
	regionBits uint

	dhb  []dhbEntry
	dpt  [][]dptEntry // one table per history length 1..HistoryLen
	opt  []optEntry
	tick uint64

	// histBuf is Operate's scratch copy of the trigger entry's delta history
	// (capacity HistoryLen+1, reused across calls): the prediction chain
	// mutates its copy while dptUpdate may run against the entry's own.
	histBuf []int
}

// New creates a VLDP prefetcher indexing pages of 2^regionBits bytes.
func New(cfg Config, regionBits uint) *Prefetcher {
	p := &Prefetcher{
		cfg:        cfg,
		regionBits: regionBits,
		dhb:        make([]dhbEntry, cfg.DHBEntries),
		opt:        make([]optEntry, cfg.OPTEntries),
		histBuf:    make([]int, 0, cfg.HistoryLen+1),
	}
	for i := range p.dhb {
		p.dhb[i].deltas = make([]int, 0, cfg.HistoryLen)
	}
	p.dpt = make([][]dptEntry, cfg.HistoryLen)
	for i := range p.dpt {
		p.dpt[i] = make([]dptEntry, cfg.DPTEntries)
	}
	return p
}

// Factory adapts New to prefetch.Factory.
func Factory(cfg Config) prefetch.Factory {
	return func(regionBits uint) prefetch.Prefetcher { return New(cfg, regionBits) }
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "vldp" }

func (p *Prefetcher) blocksPerRegion() int       { return 1 << (p.regionBits - mem.BlockBits) }
func (p *Prefetcher) region(a mem.Addr) mem.Addr { return a >> p.regionBits }
func (p *Prefetcher) offset(a mem.Addr) int {
	return int((a >> mem.BlockBits) & mem.Addr(p.blocksPerRegion()-1))
}

// seqKey hashes the most recent n deltas of hist into a table key.
func seqKey(hist []int, n int) uint64 {
	k := uint64(0x9e3779b97f4a7c15)
	for _, d := range hist[len(hist)-n:] {
		enc := uint64(d)
		if d < 0 {
			enc = uint64(-d) | 1<<20
		}
		k = (k ^ enc) * 0x100000001b3
	}
	return k
}

func (p *Prefetcher) dhbLookup(region mem.Addr) *dhbEntry {
	for i := range p.dhb {
		if p.dhb[i].valid && p.dhb[i].tag == region {
			p.tick++
			p.dhb[i].lru = p.tick
			return &p.dhb[i]
		}
	}
	return nil
}

func (p *Prefetcher) dhbInsert(region mem.Addr, off int) *dhbEntry {
	v := &p.dhb[0]
	for i := range p.dhb {
		if !p.dhb[i].valid {
			v = &p.dhb[i]
			break
		}
		if p.dhb[i].lru < v.lru {
			v = &p.dhb[i]
		}
	}
	p.tick++
	// Reuse the victim's delta buffer (preallocated at HistoryLen capacity)
	// so steady-state region churn allocates nothing.
	deltas := v.deltas[:0]
	*v = dhbEntry{tag: region, valid: true, lastOffset: off, deltas: deltas, lru: p.tick}
	return v
}

// dptUpdate trains table level (history length level+1) to predict delta for
// the given history.
func (p *Prefetcher) dptUpdate(level int, hist []int, delta int) {
	if len(hist) < level+1 {
		return
	}
	key := seqKey(hist, level+1)
	e := &p.dpt[level][key%uint64(p.cfg.DPTEntries)]
	if e.valid && e.key == key {
		if e.delta == delta {
			if e.conf < 3 {
				e.conf++
			}
		} else {
			e.conf--
			if e.conf < 0 {
				e.delta = delta
				e.conf = 0
			}
		}
		return
	}
	// Simple replacement: low-confidence entries give way.
	if !e.valid || e.conf == 0 {
		*e = dptEntry{key: key, delta: delta, conf: 0, valid: true}
	} else {
		e.conf--
	}
}

// dptPredict consults the tables from the longest matching history down.
func (p *Prefetcher) dptPredict(hist []int) (int, bool) {
	for level := min(len(hist), p.cfg.HistoryLen) - 1; level >= 0; level-- {
		key := seqKey(hist, level+1)
		e := &p.dpt[level][key%uint64(p.cfg.DPTEntries)]
		if e.valid && e.key == key && e.conf > 0 {
			return e.delta, true
		}
	}
	return 0, false
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ctx prefetch.Context) { p.train(ctx) }

func (p *Prefetcher) train(ctx prefetch.Context) (e *dhbEntry, newRegion bool, ok bool) {
	if !ctx.Type.IsDemand() {
		return nil, false, false
	}
	region := p.region(ctx.Addr)
	off := p.offset(ctx.Addr)
	if e = p.dhbLookup(region); e == nil {
		e = p.dhbInsert(region, off)
		// Train the OPT with the first offset of the region once the first
		// delta is known; prediction for now comes from the OPT.
		return e, true, true
	}
	delta := off - e.lastOffset
	if delta == 0 {
		return e, false, true
	}
	if len(e.deltas) == 0 {
		// The first in-region delta trains the OPT under the first offset.
		first := e.lastOffset % p.cfg.OPTEntries
		oe := &p.opt[first]
		if oe.valid && oe.delta == delta {
			if oe.conf < 3 {
				oe.conf++
			}
		} else if !oe.valid || oe.conf == 0 {
			*oe = optEntry{delta: delta, conf: 0, valid: true}
		} else {
			oe.conf--
		}
	}
	// Train every DPT level against its history prefix.
	for level := 0; level < p.cfg.HistoryLen; level++ {
		p.dptUpdate(level, e.deltas, delta)
	}
	if len(e.deltas) >= p.cfg.HistoryLen {
		// Slide in place instead of re-slicing: e.deltas[1:] would shrink the
		// capacity and force a reallocation on every subsequent train.
		copy(e.deltas, e.deltas[1:])
		e.deltas[len(e.deltas)-1] = delta
	} else {
		e.deltas = append(e.deltas, delta)
	}
	e.lastOffset = off
	return e, false, true
}

// Operate implements prefetch.Prefetcher.
func (p *Prefetcher) Operate(ctx prefetch.Context, issue func(prefetch.Candidate)) {
	e, newRegion, ok := p.train(ctx)
	if !ok {
		return
	}
	bpr := p.blocksPerRegion()
	base := p.offset(ctx.Addr)
	regionBase := ctx.Addr &^ (1<<p.regionBits - 1)

	if newRegion {
		// First access to a region: the OPT predicts the first delta.
		oe := &p.opt[base%p.cfg.OPTEntries]
		if oe.valid && oe.conf > 0 {
			target := base + oe.delta
			cand := regionBase + mem.Addr(target)*mem.BlockSize
			if target >= 0 && prefetch.InGenLimit(ctx.Addr, cand) {
				issue(prefetch.Candidate{Addr: cand, FillL2: true})
			}
		}
		return
	}

	// Chain DPT predictions up to Degree, simulating the history advance in
	// the reusable scratch buffer (capacity HistoryLen+1: one append past the
	// window before each in-place slide, so the chain never reallocates).
	hist := append(p.histBuf[:0], e.deltas...)
	cur := base
	for i := 0; i < p.cfg.Degree; i++ {
		delta, found := p.dptPredict(hist)
		if !found {
			break
		}
		cur += delta
		cand := regionBase + mem.Addr(cur)*mem.BlockSize
		if cur < 0 || !prefetch.InGenLimit(ctx.Addr, cand) {
			break
		}
		_ = bpr
		// Deeper chained prefetches carry less confidence: direct the first
		// two to the L2 and the rest to the LLC.
		issue(prefetch.Candidate{Addr: cand, FillL2: i < 2})
		hist = append(hist, delta)
		if len(hist) > p.cfg.HistoryLen {
			copy(hist, hist[1:])
			hist = hist[:len(hist)-1]
		}
	}
	p.histBuf = hist[:0]
}
