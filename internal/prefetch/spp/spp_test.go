package spp

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func ctxAt(addr mem.Addr) prefetch.Context {
	return prefetch.Context{Addr: mem.BlockAlign(addr), Type: mem.Load, PageSize: mem.Page4K}
}

// drive feeds a sequence of block offsets (within one page at base) and
// collects all proposed candidates after the final access.
func drive(p *Prefetcher, base mem.Addr, offsets []int) []prefetch.Candidate {
	var out []prefetch.Candidate
	for i, off := range offsets {
		addr := base + mem.Addr(off)*mem.BlockSize
		if i == len(offsets)-1 {
			p.Operate(ctxAt(addr), func(c prefetch.Candidate) { out = append(out, c) })
		} else {
			p.Operate(ctxAt(addr), func(prefetch.Candidate) {})
		}
	}
	return out
}

func TestLearnsConstantStride(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	// Train stride +1 on one page, then check prediction continues it.
	cands := drive(p, base, []int{0, 1, 2, 3, 4, 5, 6, 7})
	if len(cands) == 0 {
		t.Fatal("no candidates after training a +1 stride")
	}
	next := base + 8*mem.BlockSize
	found := false
	for _, c := range cands {
		if c.Addr == next {
			found = true
			if !c.FillL2 {
				t.Error("high-confidence next block not directed to L2")
			}
		}
	}
	if !found {
		t.Errorf("stride continuation %#x not among candidates %+v", next, cands)
	}
}

func TestLearnsNegativeStride(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	cands := drive(p, base, []int{40, 38, 36, 34, 32, 30, 28})
	want := base + 26*mem.BlockSize
	for _, c := range cands {
		if c.Addr == want {
			return
		}
	}
	t.Errorf("negative stride continuation %#x not proposed; got %+v", want, cands)
}

func TestLookaheadIssuesMultipleDepths(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	// Long, perfectly regular stride: lookahead should go several blocks deep.
	var offs []int
	for i := 0; i < 30; i++ {
		offs = append(offs, i)
	}
	cands := drive(p, base, offs)
	if len(cands) < 2 {
		t.Errorf("lookahead depth too shallow: %d candidates", len(cands))
	}
	maxDepth := 0
	p.OperateMeta(ctxAt(base+30*mem.BlockSize), func(_ prefetch.Candidate, m Meta) {
		if m.Depth > maxDepth {
			maxDepth = m.Depth
		}
	})
	if maxDepth < 1 {
		t.Errorf("max lookahead depth = %d, want ≥ 1", maxDepth)
	}
}

func TestCandidatesGeneratedBeyond4KBWithinGenLimit(t *testing.T) {
	// SPP generates raw candidates past the 4KB boundary (the engine decides
	// whether to keep them); it must never leave the 2MB region.
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000) + mem.PageSize4K - 8*mem.BlockSize // near end of a 4KB page
	var offs []int
	for i := 56; i < 64; i++ {
		offs = append(offs, i)
	}
	var cands []prefetch.Candidate
	for _, off := range offs {
		addr := mem.Addr(0x40000000) + mem.Addr(off)*mem.BlockSize
		p.Operate(ctxAt(addr), func(c prefetch.Candidate) { cands = append(cands, c) })
	}
	_ = base
	crossed := false
	for _, c := range cands {
		if !mem.SamePage(c.Addr, 0x40000000, mem.Page4K) {
			crossed = true
		}
		if !mem.SamePage(c.Addr, 0x40000000, mem.Page2M) {
			t.Errorf("candidate %#x escaped the 2MB generation region", c.Addr)
		}
	}
	if !crossed {
		t.Error("stride at page end produced no 4KB-crossing raw candidate")
	}
}

func TestGHRBootstrapsNewPage(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	page0 := mem.Addr(0x40000000)
	// Stride +1 to the end of page0: lookahead records a region exit in the GHR.
	var offs []int
	for i := 52; i < 64; i++ {
		offs = append(offs, i)
	}
	drive(p, page0, offs)
	// First access to the next page at the landing offset should bootstrap a
	// signature and immediately predict.
	var cands []prefetch.Candidate
	p.Operate(ctxAt(page0+mem.PageSize4K), func(c prefetch.Candidate) { cands = append(cands, c) })
	if len(cands) == 0 {
		t.Error("no bootstrap prediction on first access to the next page")
	}
}

func TestRegionBits2MUsesLargeDeltas(t *testing.T) {
	// With 2MB indexing, a +128-block stride (crossing 4KB pages every other
	// access) is learnable, which 4KB indexing cannot express (|delta| > 63).
	p2m := New(DefaultConfig(), mem.PageBits2M)
	base := mem.Addr(0x40000000)
	var last []prefetch.Candidate
	for i := 0; i < 12; i++ {
		addr := base + mem.Addr(i*128)*mem.BlockSize
		last = nil
		p2m.Operate(ctxAt(addr), func(c prefetch.Candidate) { last = append(last, c) })
	}
	want := base + mem.Addr(12*128)*mem.BlockSize
	found := false
	for _, c := range last {
		if c.Addr == want {
			found = true
		}
	}
	if !found {
		t.Errorf("2MB-indexed SPP did not continue a +128 stride; got %+v", last)
	}
}

func TestNoCandidatesWithoutPattern(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	// Single cold access: no history, no GHR: nothing to propose.
	var cands []prefetch.Candidate
	p.Operate(ctxAt(0x40000000), func(c prefetch.Candidate) { cands = append(cands, c) })
	if len(cands) != 0 {
		t.Errorf("cold access proposed %d candidates", len(cands))
	}
}

func TestNonDemandIgnored(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	ctx := prefetch.Context{Addr: 0x40000000, Type: mem.PageWalk}
	called := false
	p.Operate(ctx, func(prefetch.Candidate) { called = true })
	if called {
		t.Error("page-walk access triggered prefetching")
	}
}

func TestTrainOnlyDoesNotPropose(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	for i := 0; i < 8; i++ {
		p.Train(ctxAt(base + mem.Addr(i)*mem.BlockSize))
	}
	// Training must have built the same state Operate would have: the next
	// Operate call predicts immediately.
	var cands []prefetch.Candidate
	p.Operate(ctxAt(base+8*mem.BlockSize), func(c prefetch.Candidate) { cands = append(cands, c) })
	if len(cands) == 0 {
		t.Error("Train-only updates did not build predictive state")
	}
}

func TestSignatureFolding(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	s1 := p.nextSig(0, 1)
	s2 := p.nextSig(0, -1)
	if s1 == s2 {
		t.Error("sign not folded into signature")
	}
	if s1 > p.sigMask || s2 > p.sigMask {
		t.Error("signature exceeded mask")
	}
	// Signature depends on history order.
	a := p.nextSig(p.nextSig(0, 1), 2)
	b := p.nextSig(p.nextSig(0, 2), 1)
	if a == b {
		t.Error("signature insensitive to delta order")
	}
}

func TestAccuracyThrottle(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	if a := p.alpha(); a != 0.9 {
		t.Errorf("warm-up alpha = %v, want 0.9", a)
	}
	for i := 0; i < 100; i++ {
		p.PrefetchUnused(0)
	}
	if a := p.alpha(); a != 0.3 {
		t.Errorf("all-useless alpha = %v, want floor 0.3", a)
	}
	for i := 0; i < 2000; i++ {
		p.PrefetchUseful(0)
	}
	if a := p.alpha(); a < 0.8 {
		t.Errorf("mostly-useful alpha = %v, want near 1", a)
	}
}

func TestPTCounterSaturationAges(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	for i := 0; i < 100; i++ {
		p.ptUpdate(5, 1)
	}
	e := &p.pt[5]
	if e.csig > p.cfg.CounterMax || e.deltas[0].c > p.cfg.CounterMax {
		t.Errorf("counters exceeded saturation: csig=%d c=%d", e.csig, e.deltas[0].c)
	}
	if e.deltas[0].c == 0 {
		t.Error("dominant delta lost after aging")
	}
}

func TestScaleConfig(t *testing.T) {
	c := DefaultConfig().Scale(2)
	if c.STSets != 128 || c.PTEntries != 1024 {
		t.Errorf("Scale(2) = %+v", c)
	}
}
