// Package spp implements the Signature Path Prefetcher (Kim et al.,
// MICRO 2016): a confidence-based lookahead L2 prefetcher that compresses
// per-page delta history into signatures (Signature Table), learns
// signature→delta transitions (Pattern Table), and walks the most likely
// signature path to issue prefetches at decreasing confidence, directing
// high-confidence prefetches into the L2 and moderate ones into the LLC.
//
// The page granularity used to index the Signature Table is configurable
// via regionBits: 12 reproduces the original 4KB-indexed SPP, 21 the paper's
// SPP-PSA-2MB variant whose deltas range ±32767 instead of ±63.
package spp

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Config sizes SPP's structures and thresholds.
type Config struct {
	STSets, STWays int     // Signature Table geometry (256 entries default)
	PTEntries      int     // Pattern Table entries (512 default)
	SigBits        uint    // signature width (12 default)
	DeltaSlots     int     // deltas tracked per PT entry (4 default)
	CounterMax     int     // saturation for c_delta / c_sig (15 default)
	FillThreshold  float64 // path confidence for L2 fill (Tp, 0.25)
	LLCThreshold   float64 // path confidence for LLC fill & lookahead stop (Tf, 0.10)
	MaxLookahead   int     // lookahead depth cap
	GHREntries     int     // global history register entries (8)
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		STSets: 64, STWays: 4,
		PTEntries:     512,
		SigBits:       12,
		DeltaSlots:    4,
		CounterMax:    15,
		FillThreshold: 0.25,
		LLCThreshold:  0.10,
		MaxLookahead:  24,
		GHREntries:    8,
	}
}

// Scale returns a copy of c with table capacities multiplied by k; the
// ISO-storage comparison of Figure 11 uses Scale(2) on the original variant.
func (c Config) Scale(k int) Config {
	c.STSets *= k
	c.PTEntries *= k
	return c
}

type stEntry struct {
	tag        mem.Addr
	valid      bool
	lastOffset int
	sig        uint16
	lru        uint64
}

type deltaSlot struct {
	delta int
	c     int
}

type ptEntry struct {
	csig   int
	deltas []deltaSlot
}

type ghrEntry struct {
	valid      bool
	sig        uint16
	conf       float64
	lastOffset int
	delta      int
	lru        uint64
}

// Prefetcher is an SPP instance. It implements prefetch.Prefetcher and
// prefetch.FeedbackReceiver (for global accuracy throttling).
type Prefetcher struct {
	cfg        Config
	regionBits uint
	sigMask    uint16
	// stMask/ptMask are STSets-1 / PTEntries-1 when the respective size is a
	// power of two (the defaults are), replacing the hot-path modulos with
	// masks; -1 selects the generic modulo path.
	stMask, ptMask int

	st   []stEntry
	pt   []ptEntry
	ghr  []ghrEntry
	tick uint64

	// metaWrap is the persistent Meta-discarding adapter Operate hands to
	// OperateMeta; the per-call sink rides in plainIssue so the hot path
	// allocates no closure. Operate is not reentrant.
	metaWrap   func(prefetch.Candidate, Meta)
	plainIssue func(prefetch.Candidate)

	// Global accuracy throttle: path confidence is scaled by the observed
	// useful/issued ratio, halved periodically to track phases.
	fbUseful, fbIssued uint64
}

// New creates an SPP prefetcher that indexes its Signature Table with pages
// of 2^regionBits bytes.
func New(cfg Config, regionBits uint) *Prefetcher {
	if regionBits < mem.PageBits4K || regionBits > mem.PageBits2M {
		panic(fmt.Sprintf("spp: regionBits %d out of range", regionBits))
	}
	p := &Prefetcher{
		cfg:        cfg,
		regionBits: regionBits,
		sigMask:    uint16(1<<cfg.SigBits - 1),
		stMask:     -1,
		ptMask:     -1,
		st:         make([]stEntry, cfg.STSets*cfg.STWays),
		pt:         make([]ptEntry, cfg.PTEntries),
		ghr:        make([]ghrEntry, cfg.GHREntries),
	}
	if cfg.STSets&(cfg.STSets-1) == 0 {
		p.stMask = cfg.STSets - 1
	}
	if cfg.PTEntries&(cfg.PTEntries-1) == 0 {
		p.ptMask = cfg.PTEntries - 1
	}
	for i := range p.pt {
		p.pt[i].deltas = make([]deltaSlot, cfg.DeltaSlots)
	}
	p.metaWrap = func(c prefetch.Candidate, _ Meta) { p.plainIssue(c) }
	return p
}

// Factory adapts New to prefetch.Factory.
func Factory(cfg Config) prefetch.Factory {
	return func(regionBits uint) prefetch.Prefetcher { return New(cfg, regionBits) }
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "spp" }

// blocksPerRegion returns the number of blocks in one indexing region.
func (p *Prefetcher) blocksPerRegion() int { return 1 << (p.regionBits - mem.BlockBits) }

// region and offset decompose a block address under the indexing granularity.
func (p *Prefetcher) region(a mem.Addr) mem.Addr { return a >> p.regionBits }
func (p *Prefetcher) offset(a mem.Addr) int {
	return int((a >> mem.BlockBits) & mem.Addr(p.blocksPerRegion()-1))
}

// nextSig folds a delta into a signature: shift-xor with a sign+magnitude
// encoding of the delta, as in the original design.
func (p *Prefetcher) nextSig(sig uint16, delta int) uint16 {
	enc := delta
	if enc < 0 {
		enc = -enc | 1<<6
	}
	return ((sig << 3) ^ uint16(enc)) & p.sigMask
}

func (p *Prefetcher) stSet(region mem.Addr) []stEntry {
	// The set index hashes the region number: physically contiguous 2MB
	// pages are 512-page aligned, so raw low bits would map concurrent
	// streams into the same set and thrash it.
	h := uint64(region) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	var s int
	if p.stMask >= 0 {
		s = int(h) & p.stMask
	} else {
		s = int(h % uint64(p.cfg.STSets))
	}
	return p.st[s*p.cfg.STWays : (s+1)*p.cfg.STWays]
}

// ptIndex maps a signature to its Pattern Table entry.
func (p *Prefetcher) ptIndex(sig uint16) int {
	if p.ptMask >= 0 {
		return int(sig) & p.ptMask
	}
	return int(sig) % p.cfg.PTEntries
}

func (p *Prefetcher) stLookup(region mem.Addr) *stEntry {
	set := p.stSet(region)
	for i := range set {
		if set[i].valid && set[i].tag == region {
			p.tick++
			set[i].lru = p.tick
			return &set[i]
		}
	}
	return nil
}

func (p *Prefetcher) stInsert(region mem.Addr, off int, sig uint16) *stEntry {
	set := p.stSet(region)
	v := &set[0]
	for i := range set {
		if !set[i].valid {
			v = &set[i]
			break
		}
		if set[i].lru < v.lru {
			v = &set[i]
		}
	}
	p.tick++
	*v = stEntry{tag: region, valid: true, lastOffset: off, sig: sig, lru: p.tick}
	return v
}

// ptUpdate records the observed delta under the signature.
func (p *Prefetcher) ptUpdate(sig uint16, delta int) {
	e := &p.pt[p.ptIndex(sig)]
	if e.csig >= p.cfg.CounterMax {
		// Saturated: age all counters to keep ratios adaptive.
		e.csig >>= 1
		for i := range e.deltas {
			e.deltas[i].c >>= 1
		}
	}
	e.csig++
	slot := -1
	minC := 1 << 30
	minI := 0
	for i := range e.deltas {
		if e.deltas[i].c > 0 && e.deltas[i].delta == delta {
			slot = i
			break
		}
		if e.deltas[i].c < minC {
			minC = e.deltas[i].c
			minI = i
		}
	}
	if slot < 0 {
		e.deltas[minI] = deltaSlot{delta: delta, c: 0}
		slot = minI
	}
	if e.deltas[slot].c < p.cfg.CounterMax {
		e.deltas[slot].c++
	}
}

// ghrRecord remembers a lookahead path that left the region, so the pattern
// can be resumed when the neighbouring region is first accessed.
func (p *Prefetcher) ghrRecord(sig uint16, conf float64, lastOffset, delta int) {
	v := &p.ghr[0]
	for i := range p.ghr {
		if !p.ghr[i].valid {
			v = &p.ghr[i]
			break
		}
		if p.ghr[i].lru < v.lru {
			v = &p.ghr[i]
		}
	}
	p.tick++
	*v = ghrEntry{valid: true, sig: sig, conf: conf, lastOffset: lastOffset, delta: delta, lru: p.tick}
}

// ghrBootstrap looks for a recorded cross-region path that lands on the given
// first offset of a new region, returning the signature to adopt.
func (p *Prefetcher) ghrBootstrap(off int) (uint16, bool) {
	bpr := p.blocksPerRegion()
	for i := range p.ghr {
		e := &p.ghr[i]
		if !e.valid {
			continue
		}
		landing := (e.lastOffset + e.delta) & (bpr - 1)
		if landing == off {
			p.tick++
			e.lru = p.tick
			return p.nextSig(e.sig, e.delta), true
		}
	}
	return 0, false
}

// alpha returns the global accuracy scaling factor applied to path
// confidence.
func (p *Prefetcher) alpha() float64 {
	if p.fbIssued < 32 {
		return 0.9 // warm-up prior
	}
	a := float64(p.fbUseful) / float64(p.fbIssued)
	if a < 0.3 {
		a = 0.3
	}
	if a > 1 {
		a = 1
	}
	return a
}

// PrefetchUseful implements prefetch.FeedbackReceiver.
func (p *Prefetcher) PrefetchUseful(mem.Addr) {
	p.fbUseful++
	p.fbIssued++
	p.decayFeedback()
}

// PrefetchUnused implements prefetch.FeedbackReceiver.
func (p *Prefetcher) PrefetchUnused(mem.Addr) {
	p.fbIssued++
	p.decayFeedback()
}

// DemandMiss implements prefetch.FeedbackReceiver.
func (p *Prefetcher) DemandMiss(mem.Addr) {}

func (p *Prefetcher) decayFeedback() {
	if p.fbIssued >= 1024 {
		p.fbIssued >>= 1
		p.fbUseful >>= 1
	}
}

// Meta describes one lookahead step for a proposed candidate; PPF consumes it
// as perceptron features.
type Meta struct {
	Sig        uint16
	Delta      int
	Depth      int
	Confidence float64
}

// Train implements prefetch.Prefetcher: update ST/PT without proposing.
func (p *Prefetcher) Train(ctx prefetch.Context) {
	p.train(ctx)
}

// train returns the signature to start lookahead from and the trigger offset.
func (p *Prefetcher) train(ctx prefetch.Context) (sig uint16, off int, ok bool) {
	if !ctx.Type.IsDemand() {
		return 0, 0, false
	}
	region := p.region(ctx.Addr)
	off = p.offset(ctx.Addr)
	if e := p.stLookup(region); e != nil {
		delta := off - e.lastOffset
		if delta == 0 {
			return e.sig, off, true
		}
		p.ptUpdate(e.sig, delta)
		e.sig = p.nextSig(e.sig, delta)
		e.lastOffset = off
		return e.sig, off, true
	}
	// First touch of this region: try to resume a cross-region path.
	bootSig, found := p.ghrBootstrap(off)
	if !found {
		bootSig = 0
	}
	p.stInsert(region, off, bootSig)
	return bootSig, off, found
}

// Operate implements prefetch.Prefetcher.
func (p *Prefetcher) Operate(ctx prefetch.Context, issue func(prefetch.Candidate)) {
	p.plainIssue = issue
	p.OperateMeta(ctx, p.metaWrap)
}

// OperateMeta is Operate with per-candidate lookahead metadata, used by PPF.
func (p *Prefetcher) OperateMeta(ctx prefetch.Context, issue func(prefetch.Candidate, Meta)) {
	sig, off, ok := p.train(ctx)
	if !ok {
		return
	}
	p.lookahead(ctx.Addr, sig, off, issue)
}

// lookahead walks the signature path issuing candidates at decreasing path
// confidence.
func (p *Prefetcher) lookahead(trigger mem.Addr, sig uint16, off int, issue func(prefetch.Candidate, Meta)) {
	regionBase := trigger &^ (1<<p.regionBits - 1)
	bpr := p.blocksPerRegion()
	path := p.alpha()
	base := off
	crossRecorded := false

	alpha := path
	for depth := 0; depth < p.cfg.MaxLookahead; depth++ {
		e := &p.pt[p.ptIndex(sig)]
		if e.csig == 0 {
			return
		}
		bestC, bestDelta := 0, 0
		for _, s := range e.deltas {
			if s.c == 0 {
				continue
			}
			conf := path * float64(s.c) / float64(e.csig)
			if conf < p.cfg.LLCThreshold {
				continue
			}
			target := base + s.delta
			cand := regionBase + mem.Addr(target)*mem.BlockSize
			// Candidates may leave the indexing region (that is the whole
			// point of page-size awareness) but never the 2MB generation
			// region of the trigger.
			if target < 0 || !prefetch.InGenLimit(trigger, cand) {
				if !crossRecorded && (target < 0 || target >= bpr) {
					p.ghrRecord(sig, conf, base&(bpr-1), s.delta)
					crossRecorded = true
				}
				continue
			}
			if target >= bpr && !crossRecorded {
				// Leaving the region while still inside the 2MB limit: record
				// for GHR bootstrap too (the original records at 4KB exits).
				p.ghrRecord(sig, conf, base&(bpr-1), s.delta)
				crossRecorded = true
			}
			issue(prefetch.Candidate{Addr: cand, FillL2: conf >= p.cfg.FillThreshold},
				Meta{Sig: sig, Delta: s.delta, Depth: depth, Confidence: conf})
			if s.c > bestC {
				bestC, bestDelta = s.c, s.delta
			}
		}
		if bestC == 0 {
			return
		}
		// Path confidence decays by the delta ratio and by the global
		// accuracy factor at every level, as in the original design — an
		// inaccurate phase cuts lookahead short quickly.
		path *= float64(bestC) / float64(e.csig) * alpha
		if path < p.cfg.LLCThreshold {
			return
		}
		base += bestDelta
		sig = p.nextSig(sig, bestDelta)
	}
}
