// Package sms implements Spatial Memory Streaming (Somogyi et al., ISCA
// 2006): the prefetcher records, per spatial region, the bit pattern of
// blocks touched during a "generation" (from the first access to the region
// until it goes cold), stores the pattern in a history table indexed by the
// trigger's PC⊕offset, and on the next trigger with the same signature
// prefetches the whole recorded footprint at once.
//
// SMS's regions are its own spatial granularity (a few KB) and its history
// table is PC-indexed, not page-number-indexed, so — like BOP — its PSA-2MB
// variant degenerates to PSA; regionBits is accepted and ignored.
package sms

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Config sizes SMS.
type Config struct {
	RegionBlocks int // blocks per spatial region (32 → 2KB regions)
	AGTEntries   int // active generation table entries (32)
	PHTEntries   int // pattern history table entries (1024)
	GenLength    int // accesses after which a generation is committed (24)
	MaxActive    int // live generations before the LRU one is committed (8)
}

// DefaultConfig returns the configuration used in the evaluation.
func DefaultConfig() Config {
	return Config{RegionBlocks: 32, AGTEntries: 32, PHTEntries: 1024, GenLength: 24, MaxActive: 8}
}

// Scale returns a copy with table capacities multiplied by k (ISO storage).
func (c Config) Scale(k int) Config {
	c.AGTEntries *= k
	c.PHTEntries *= k
	return c
}

// agtEntry tracks one in-flight generation.
type agtEntry struct {
	region  mem.Addr
	sig     uint32
	pattern uint64 // bit per block in the region
	base    int    // trigger offset within region
	count   int
	valid   bool
	lru     uint64
}

type phtEntry struct {
	sig     uint32
	pattern uint64
	valid   bool
	lru     uint64
}

// Prefetcher is an SMS instance.
type Prefetcher struct {
	cfg  Config
	agt  []agtEntry
	pht  []phtEntry
	tick uint64
}

// New creates an SMS prefetcher; regionBits is ignored (no page-indexed
// state).
func New(cfg Config, _ uint) *Prefetcher {
	if cfg.RegionBlocks > 64 {
		panic("sms: RegionBlocks must fit a 64-bit pattern")
	}
	return &Prefetcher{
		cfg: cfg,
		agt: make([]agtEntry, cfg.AGTEntries),
		pht: make([]phtEntry, cfg.PHTEntries),
	}
}

// Factory adapts New to prefetch.Factory.
func Factory(cfg Config) prefetch.Factory {
	return func(regionBits uint) prefetch.Prefetcher { return New(cfg, regionBits) }
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "sms" }

func (p *Prefetcher) regionOf(a mem.Addr) (region mem.Addr, off int) {
	blk := mem.BlockNumber(a)
	return blk / mem.Addr(p.cfg.RegionBlocks), int(blk % mem.Addr(p.cfg.RegionBlocks))
}

// signature combines the trigger PC and its offset within the region, the
// original design's generation key.
func signature(pc mem.Addr, off int) uint32 {
	h := uint64(pc)<<6 ^ uint64(off)
	h *= 0x9e3779b97f4a7c15
	return uint32(h >> 32)
}

func (p *Prefetcher) agtLookup(region mem.Addr) *agtEntry {
	for i := range p.agt {
		if p.agt[i].valid && p.agt[i].region == region {
			p.tick++
			p.agt[i].lru = p.tick
			return &p.agt[i]
		}
	}
	return nil
}

// commit stores a finished generation's pattern into the PHT.
func (p *Prefetcher) commit(e *agtEntry) {
	if e.pattern == 0 || e.count < 2 {
		e.valid = false
		return
	}
	slot := &p.pht[e.sig%uint32(p.cfg.PHTEntries)]
	p.tick++
	*slot = phtEntry{sig: e.sig, pattern: e.pattern, valid: true, lru: p.tick}
	e.valid = false
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ctx prefetch.Context) { p.train(ctx, nil) }

func (p *Prefetcher) train(ctx prefetch.Context, issue func(prefetch.Candidate)) {
	if !ctx.Type.IsDemand() {
		return
	}
	region, off := p.regionOf(ctx.Addr)
	if e := p.agtLookup(region); e != nil {
		// Record the access into the live generation.
		e.pattern |= 1 << uint(off)
		e.count++
		if e.count >= p.cfg.GenLength {
			p.commit(e)
		}
		return
	}

	// Trigger access: start a new generation. A generation ends — and its
	// pattern commits — when the table exceeds its active window or when a
	// victim must be evicted, mirroring the original's end-of-generation on
	// region cooldown.
	live := 0
	var lruLive *agtEntry
	victim := &p.agt[0]
	haveInvalid := false
	for i := range p.agt {
		e := &p.agt[i]
		if !e.valid {
			if !haveInvalid {
				victim = e
				haveInvalid = true
			}
			continue
		}
		live++
		if lruLive == nil || e.lru < lruLive.lru {
			lruLive = e
		}
	}
	if live >= p.cfg.MaxActive && lruLive != nil {
		p.commit(lruLive)
		if !haveInvalid {
			victim = lruLive
		}
	} else if !haveInvalid {
		p.commit(lruLive)
		victim = lruLive
	}
	sig := signature(ctx.PC, off)
	p.tick++
	*victim = agtEntry{
		region: region, sig: sig, pattern: 1 << uint(off),
		base: off, count: 1, valid: true, lru: p.tick,
	}

	// Streaming: if the PHT knows this signature, prefetch the recorded
	// footprint relative to the region base.
	if issue == nil {
		return
	}
	slot := &p.pht[sig%uint32(p.cfg.PHTEntries)]
	if !slot.valid || slot.sig != sig {
		return
	}
	regionBase := region * mem.Addr(p.cfg.RegionBlocks) * mem.BlockSize
	for b := 0; b < p.cfg.RegionBlocks; b++ {
		if slot.pattern&(1<<uint(b)) == 0 || b == off {
			continue
		}
		cand := regionBase + mem.Addr(b)*mem.BlockSize
		if !prefetch.InGenLimit(ctx.Addr, cand) {
			continue
		}
		issue(prefetch.Candidate{Addr: cand, FillL2: true})
	}
}

// Operate implements prefetch.Prefetcher.
func (p *Prefetcher) Operate(ctx prefetch.Context, issue func(prefetch.Candidate)) {
	p.train(ctx, issue)
}
