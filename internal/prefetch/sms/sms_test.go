package sms

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func ctxAt(addr, pc mem.Addr) prefetch.Context {
	return prefetch.Context{Addr: mem.BlockAlign(addr), PC: pc, Type: mem.Load, PageSize: mem.Page4K}
}

// touchRegion replays a fixed footprint (offsets within a region) under one
// trigger PC.
func touchRegion(p *Prefetcher, base mem.Addr, pc mem.Addr, offsets []int, issue func(prefetch.Candidate)) {
	for _, off := range offsets {
		cb := issue
		if cb == nil {
			cb = func(prefetch.Candidate) {}
		}
		p.Operate(ctxAt(base+mem.Addr(off)*mem.BlockSize, pc), cb)
	}
}

func TestLearnsAndStreamsFootprint(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	pc := mem.Addr(0x400500)
	footprint := []int{0, 3, 7, 12, 19}
	regionBytes := mem.Addr(DefaultConfig().RegionBlocks) * mem.BlockSize

	// Train the same footprint over several regions so generations commit
	// (each new trigger evicts and commits the previous generation).
	for r := 0; r < 12; r++ {
		base := mem.Addr(0x40000000) + mem.Addr(r)*regionBytes
		touchRegion(p, base, pc, footprint, nil)
	}

	// A fresh region triggered by the same PC+offset must stream the learned
	// footprint immediately.
	fresh := mem.Addr(0x40000000) + 100*regionBytes
	var got []mem.Addr
	p.Operate(ctxAt(fresh, pc), func(c prefetch.Candidate) { got = append(got, c.Addr) })
	want := map[mem.Addr]bool{}
	for _, off := range footprint[1:] { // the trigger itself is not prefetched
		want[fresh+mem.Addr(off)*mem.BlockSize] = true
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d blocks, want %d: %v", len(got), len(want), got)
	}
	for _, a := range got {
		if !want[a] {
			t.Errorf("unexpected streamed block %#x", a)
		}
	}
}

func TestDifferentPCsLearnSeparately(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	regionBytes := mem.Addr(DefaultConfig().RegionBlocks) * mem.BlockSize
	// PC A touches {0,1,2}; PC B touches {0,8,16}.
	for r := 0; r < 12; r++ {
		touchRegion(p, mem.Addr(0x40000000)+mem.Addr(2*r)*regionBytes, 0xA00, []int{0, 1, 2}, nil)
		touchRegion(p, mem.Addr(0x40000000)+mem.Addr(2*r+1)*regionBytes, 0xB00, []int{0, 8, 16}, nil)
		_ = r
	}
	fresh := mem.Addr(0x40000000) + 200*regionBytes
	var gotA []mem.Addr
	p.Operate(ctxAt(fresh, 0xA00), func(c prefetch.Candidate) { gotA = append(gotA, c.Addr) })
	for _, a := range gotA {
		off := int(mem.BlockNumber(a-fresh)) % DefaultConfig().RegionBlocks
		if off != 1 && off != 2 {
			t.Errorf("PC A streamed foreign offset %d", off)
		}
	}
}

func TestSingleAccessGenerationsNotCommitted(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	regionBytes := mem.Addr(DefaultConfig().RegionBlocks) * mem.BlockSize
	// Touch many regions exactly once: nothing learnable.
	for r := 0; r < 40; r++ {
		touchRegion(p, mem.Addr(0x40000000)+mem.Addr(r)*regionBytes, 0xC00, []int{5}, nil)
	}
	var got []mem.Addr
	p.Operate(ctxAt(mem.Addr(0x40000000)+500*regionBytes+5*mem.BlockSize, 0xC00),
		func(c prefetch.Candidate) { got = append(got, c.Addr) })
	if len(got) != 0 {
		t.Errorf("single-access generations streamed %d blocks", len(got))
	}
}

func TestGenLimitRespected(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg, mem.PageBits4K)
	// Train a footprint near the very end of a 2MB region; streaming for a
	// trigger region that straddles the limit must clip.
	regionBytes := mem.Addr(cfg.RegionBlocks) * mem.BlockSize
	for r := 0; r < 12; r++ {
		base := mem.Addr(0x40000000) + mem.Addr(r)*regionBytes
		touchRegion(p, base, 0xD00, []int{0, 31}, nil)
	}
	// Last region of a 2MB page.
	last := mem.Addr(0x40000000) + mem.PageSize2M - regionBytes
	var got []mem.Addr
	p.Operate(ctxAt(last, 0xD00), func(c prefetch.Candidate) { got = append(got, c.Addr) })
	for _, a := range got {
		if !mem.SamePage(a, last, mem.Page2M) {
			t.Errorf("streamed block %#x escaped the 2MB region", a)
		}
	}
}

func TestTrainOnlyRecords(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	regionBytes := mem.Addr(DefaultConfig().RegionBlocks) * mem.BlockSize
	for r := 0; r < 12; r++ {
		base := mem.Addr(0x40000000) + mem.Addr(r)*regionBytes
		for _, off := range []int{0, 2, 4} {
			p.Train(ctxAt(base+mem.Addr(off)*mem.BlockSize, 0xE00))
		}
	}
	var got []mem.Addr
	p.Operate(ctxAt(mem.Addr(0x40000000)+50*regionBytes, 0xE00),
		func(c prefetch.Candidate) { got = append(got, c.Addr) })
	if len(got) == 0 {
		t.Error("Train-only generations did not populate the PHT")
	}
}

func TestRegionBitsIgnored(t *testing.T) {
	// SMS has no page-indexed structure: both granularities are identical.
	a := New(DefaultConfig(), mem.PageBits4K)
	b := New(DefaultConfig(), mem.PageBits2M)
	regionBytes := mem.Addr(DefaultConfig().RegionBlocks) * mem.BlockSize
	var gotA, gotB int
	for r := 0; r < 12; r++ {
		base := mem.Addr(0x40000000) + mem.Addr(r)*regionBytes
		touchRegion(a, base, 0xF00, []int{0, 1, 5}, nil)
		touchRegion(b, base, 0xF00, []int{0, 1, 5}, nil)
	}
	fresh := mem.Addr(0x40000000) + 300*regionBytes
	a.Operate(ctxAt(fresh, 0xF00), func(prefetch.Candidate) { gotA++ })
	b.Operate(ctxAt(fresh, 0xF00), func(prefetch.Candidate) { gotB++ })
	if gotA != gotB {
		t.Errorf("regionBits changed SMS behaviour: %d vs %d", gotA, gotB)
	}
}
