// Package prefetch defines the interface between the cache hierarchy and the
// prefetching algorithms, shared by every prefetcher implementation
// (internal/prefetch/spp, vldp, ppf, bop, ...) and by the page-size-aware
// machinery in internal/core.
//
// A prefetcher observes accesses (Context) and proposes Candidates. Candidate
// generation is deliberately unconstrained by the 4KB page boundary: the
// engine in internal/core applies the boundary policy (4KB always for the
// original variants; the residing page's boundary for the page-size-aware
// variants) and counts discarded page-crossing candidates — the quantity of
// the paper's Figure 2. Prefetchers must stop generating at Context.GenLimit,
// the 2MB region of the trigger, because beyond it physical contiguity can
// never be assumed.
package prefetch

import "repro/internal/mem"

// Context describes one lower-level-cache access as seen by a prefetcher.
type Context struct {
	// Addr is the block-aligned physical address of the access.
	Addr mem.Addr
	// VAddr is the block-aligned virtual address of the access.
	// Physical-side prefetchers ignore it; virtual-side prefetchers (vamp)
	// train on it instead of Addr. The engine falls back to the physical
	// address when a request carries no virtual address (harnesses without
	// translation), so on the engine path VAddr is never zero.
	VAddr mem.Addr
	// PC is the program counter of the triggering instruction (propagated
	// alongside the request).
	PC mem.Addr
	// Hit reports whether the access hit in the prefetcher's cache.
	Hit bool
	// Type is the access type (Load or Store for training purposes).
	Type mem.AccessType
	// PageSize is the effective page size the prefetcher may assume for the
	// block. For original (non-PSA) prefetchers this is always Page4K; for
	// PSA variants it is the PPM-propagated size.
	PageSize mem.PageSize
	// At is the cycle of the access.
	At mem.Cycle
}

// Candidate is one proposed prefetch.
type Candidate struct {
	// Addr is the block-aligned address to prefetch: physical by default,
	// virtual when Virtual is set.
	Addr mem.Addr
	// FillL2 selects the fill level: true for L2 (high confidence), false
	// for LLC only (moderate confidence).
	FillL2 bool
	// Virtual marks Addr as a virtual address. The engine must translate it
	// before issue — gated on a TLB probe so speculation never forces a page
	// walk — and the generation-limit and boundary contracts apply in
	// virtual address space, against the trigger's VAddr.
	Virtual bool
}

// GenLimitBits bounds candidate generation: no prefetcher may propose a
// candidate outside the 2MB-aligned region of the trigger block, because no
// supported page size exceeds 2MB and physical contiguity beyond the residing
// page is never guaranteed.
const GenLimitBits = mem.PageBits2M

// InGenLimit reports whether candidate c lies within the generation region of
// trigger t.
func InGenLimit(t, c mem.Addr) bool {
	return mem.SamePage(t, c, mem.Page2M)
}

// Prefetcher is a lower-level-cache prefetching algorithm.
//
// Operate trains the prefetcher on the access and proposes candidates via
// issue. Train updates internal state without proposing; the set-dueling
// composite uses it to keep the unselected competitor trained on all accesses
// (Section IV-B3).
type Prefetcher interface {
	Name() string
	Operate(ctx Context, issue func(Candidate))
	Train(ctx Context)
}

// Note on batching: engines must dispatch each candidate through the issue
// callback the moment Operate proposes it, never buffer a burst and drain it
// after Operate returns. Issuing a prefetch can evict a line whose
// OnPrefetchUnused feedback synchronously retrains the proposing prefetcher
// (ppf's perceptron, spp's confidence tables), and the next candidate in the
// same lookahead burst must be generated and classified against those updated
// weights — deferred draining reorders that feedback loop and changes
// simulation results.

// FeedbackReceiver is implemented by prefetchers that learn from prefetch
// outcomes (PPF's perceptron, BOP's scoring).
type FeedbackReceiver interface {
	// PrefetchUseful reports a demand hit on a block this prefetcher
	// prefetched.
	PrefetchUseful(block mem.Addr)
	// PrefetchUnused reports the eviction of an untouched prefetched block.
	PrefetchUnused(block mem.Addr)
	// DemandMiss reports a demand miss (a prefetch opportunity that was
	// missed; PPF trains its reject table on these).
	DemandMiss(block mem.Addr)
}

// Factory constructs a prefetcher for a given internal indexing granularity.
// regionBits is the page size the prefetcher inherently assumes when indexing
// its internal structures: 12 (4KB) for original and PSA variants, 21 (2MB)
// for the PSA-2MB variants (Section IV-B1). Implementations without
// page-indexed structures may ignore it (e.g. BOP, making its PSA-2MB variant
// degenerate to PSA exactly as the paper reports).
type Factory func(regionBits uint) Prefetcher
