// Package pangloss implements a Markov delta-chain prefetcher in the style
// of Pangloss (Michelogiannakis et al., 3rd Data Prefetching Championship):
// a delta cache records, per observed block delta, the most frequent next
// deltas under LFU replacement; a page cache records each page's last offset
// and last delta. On an access the prefetcher walks the Markov chain of
// deltas from the trigger block, proposing the strongest successors at every
// step.
//
// Deltas are learned within the prefetcher's indexing granularity
// (regionBits: 4KB pages for the original and PSA variants, 2MB for PSA-2MB)
// but applied in absolute block space, so a chain walk naturally carries a
// learned pattern across 4KB lines inside the 2MB generation region — the
// crossing opportunity the engine's boundary policy then grants or denies
// per variant. The prefetcher's state is a pure function of the demand
// stream (it ignores hit/miss, timing, and prefetch feedback), which the
// differential tests rely on.
package pangloss

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Config sizes the Pangloss tables.
type Config struct {
	// MaxDelta bounds the tracked block-delta magnitude: transitions with
	// |delta| > MaxDelta reset the page's chain instead of training.
	MaxDelta int
	// DeltaWays is the number of successor slots per delta row; rows are
	// LFU-evicted (hit increments a saturating counter, miss replaces the
	// way with the smallest counter).
	DeltaWays int
	// PageSets and PageWays size the set-associative page cache holding each
	// tracked page's last offset and last delta.
	PageSets, PageWays int
	// Degree bounds candidates proposed per trigger access.
	Degree int
	// MaxDepth bounds the Markov chain walk depth.
	MaxDepth int
}

// DefaultConfig mirrors the championship configuration scaled to this
// simulator: 129 delta rows × 8 ways, a 64×8 page cache, and an 8-deep
// walk proposing at most 8 blocks.
func DefaultConfig() Config {
	return Config{
		MaxDelta:  64,
		DeltaWays: 8,
		PageSets:  64,
		PageWays:  8,
		Degree:    8,
		MaxDepth:  8,
	}
}

// Scale returns a copy with the page cache scaled by k (ISO storage).
func (c Config) Scale(k int) Config {
	c.PageSets *= k
	return c
}

// counterMax saturates the LFU counters; on saturation the whole row is
// halved, aging stale transitions exactly as Pangloss does.
const counterMax = 1 << 12

// Prefetcher is a Pangloss instance. All tables are parallel arrays sized at
// construction; steady-state operation allocates nothing.
type Prefetcher struct {
	cfg        Config
	regionBits uint

	// Delta cache: rows indexed by normalized previous delta
	// (delta + MaxDelta), ways holding (successor delta, LFU count) pairs.
	// Row MaxDelta — normalized delta zero — is the entry row: a page's
	// first observed delta trains there, since a zero delta never occurs as
	// a real transition (same-block re-accesses are skipped).
	dNext  []int32
	dCount []uint32

	// Page cache: sets × ways parallel arrays. pTag is pageNumber<<1|1 with
	// 0 as the invalid sentinel.
	pTag   []uint64
	pOff   []int32
	pDelta []int32
	pLRU   []uint64
	tick   uint64

	// setMask is PageSets-1 when PageSets is a power of two, else 0 (generic
	// modulo path).
	setMask uint64
}

// New creates a Pangloss prefetcher indexing its page cache with pages of
// 2^regionBits bytes.
func New(cfg Config, regionBits uint) *Prefetcher {
	if regionBits < mem.PageBits4K || regionBits > mem.PageBits2M {
		panic("pangloss: regionBits outside [12, 21]")
	}
	rows := 2*cfg.MaxDelta + 1
	p := &Prefetcher{
		cfg:        cfg,
		regionBits: regionBits,
		dNext:      make([]int32, rows*cfg.DeltaWays),
		dCount:     make([]uint32, rows*cfg.DeltaWays),
		pTag:       make([]uint64, cfg.PageSets*cfg.PageWays),
		pOff:       make([]int32, cfg.PageSets*cfg.PageWays),
		pDelta:     make([]int32, cfg.PageSets*cfg.PageWays),
		pLRU:       make([]uint64, cfg.PageSets*cfg.PageWays),
	}
	if cfg.PageSets&(cfg.PageSets-1) == 0 {
		p.setMask = uint64(cfg.PageSets - 1)
	}
	return p
}

// Factory adapts New to prefetch.Factory.
func Factory(cfg Config) prefetch.Factory {
	return func(regionBits uint) prefetch.Prefetcher { return New(cfg, regionBits) }
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "pangloss" }

// pageSet returns the index of way 0 of the page's set.
func (p *Prefetcher) pageSet(pageNum uint64) int {
	h := pageNum * 0x9e3779b97f4a7c15
	if p.setMask != 0 {
		return int(h&p.setMask) * p.cfg.PageWays
	}
	return int(h%uint64(p.cfg.PageSets)) * p.cfg.PageWays
}

// rowBase returns the index of way 0 of a delta's row in the delta cache.
func (p *Prefetcher) rowBase(delta int32) int {
	return (int(delta) + p.cfg.MaxDelta) * p.cfg.DeltaWays
}

// updateDelta records a prev→next transition in the delta cache under LFU:
// a matching way's counter increments (halving the row at saturation), a
// miss replaces the way with the smallest counter.
func (p *Prefetcher) updateDelta(prev, next int32) {
	base := p.rowBase(prev)
	victim := base
	for i := base; i < base+p.cfg.DeltaWays; i++ {
		if p.dCount[i] == 0 {
			if p.dCount[victim] != 0 {
				victim = i
			}
			continue
		}
		if p.dNext[i] == next {
			p.dCount[i]++
			if p.dCount[i] >= counterMax {
				for j := base; j < base+p.cfg.DeltaWays; j++ {
					p.dCount[j] >>= 1
				}
			}
			return
		}
		if p.dCount[victim] != 0 && p.dCount[i] < p.dCount[victim] {
			victim = i
		}
	}
	p.dNext[victim] = next
	p.dCount[victim] = 1
}

// observe updates the page and delta caches for one demand access and
// returns the delta just taken (zero when the access starts a new chain:
// first touch of a page, a same-block re-access, or an untracked jump).
func (p *Prefetcher) observe(ctx prefetch.Context) int32 {
	pageNum := uint64(ctx.Addr) >> p.regionBits
	off := int32((ctx.Addr >> mem.BlockBits) & (1<<(p.regionBits-mem.BlockBits) - 1))
	base := p.pageSet(pageNum)
	tag := pageNum<<1 | 1
	p.tick++
	victim := base
	for i := base; i < base+p.cfg.PageWays; i++ {
		if p.pTag[i] == tag {
			p.pLRU[i] = p.tick
			delta := off - p.pOff[i]
			if delta == 0 {
				return 0 // same block: no movement, nothing to learn
			}
			p.pOff[i] = off
			if delta > int32(p.cfg.MaxDelta) || delta < -int32(p.cfg.MaxDelta) {
				p.pDelta[i] = 0 // untracked jump: restart the chain
				return 0
			}
			p.updateDelta(p.pDelta[i], delta)
			p.pDelta[i] = delta
			return delta
		}
		if p.pTag[i] == 0 {
			if p.pTag[victim] != 0 {
				victim = i
			}
			continue
		}
		if p.pTag[victim] != 0 && p.pLRU[i] < p.pLRU[victim] {
			victim = i
		}
	}
	p.pTag[victim] = tag
	p.pOff[victim] = off
	p.pDelta[victim] = 0
	p.pLRU[victim] = p.tick
	return 0
}

// Train implements prefetch.Prefetcher: update the tables without proposing.
func (p *Prefetcher) Train(ctx prefetch.Context) {
	if !ctx.Type.IsDemand() {
		return
	}
	p.observe(ctx)
}

// Operate implements prefetch.Prefetcher: train on the access, then walk the
// Markov chain from the trigger block, proposing the strongest successor
// deltas at every step and following the best one.
func (p *Prefetcher) Operate(ctx prefetch.Context, issue func(prefetch.Candidate)) {
	if !ctx.Type.IsDemand() {
		return
	}
	// A zero delta is the entry state (first touch of a page, or a reset
	// chain): the walk then starts from the entry row, whose successors are
	// the first deltas pages historically take — so a pattern keeps flowing
	// across an indexing-page change instead of stalling on it.
	cur := p.observe(ctx)
	cursor := ctx.Addr
	issued := 0
	for depth := 0; depth < p.cfg.MaxDepth && issued < p.cfg.Degree; depth++ {
		base := p.rowBase(cur)
		// Best and runner-up successors by LFU count (fixed way order breaks
		// ties deterministically), plus the row total for confidence.
		best, second := -1, -1
		var total uint32
		for i := base; i < base+p.cfg.DeltaWays; i++ {
			c := p.dCount[i]
			if c == 0 {
				continue
			}
			total += c
			switch {
			case best < 0 || c > p.dCount[best]:
				second = best
				best = i
			case second < 0 || c > p.dCount[second]:
				second = i
			}
		}
		if best < 0 {
			return
		}
		for _, w := range [2]int{best, second} {
			if w < 0 || issued >= p.cfg.Degree {
				continue
			}
			cand := cursor + mem.Addr(int64(p.dNext[w]))*mem.BlockSize
			if !prefetch.InGenLimit(ctx.Addr, cand) {
				continue
			}
			// Majority-share successors are confident enough for the L2;
			// weaker ones fill the LLC only.
			issue(prefetch.Candidate{Addr: cand, FillL2: 3*p.dCount[w] >= total})
			issued++
		}
		cursor += mem.Addr(int64(p.dNext[best])) * mem.BlockSize
		if !prefetch.InGenLimit(ctx.Addr, cursor) {
			return // the chain drifted out of the generation region
		}
		cur = p.dNext[best]
	}
}
