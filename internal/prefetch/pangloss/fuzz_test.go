package pangloss

import (
	"encoding/binary"
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

// FuzzPanglossDeltaCache interprets fuzz bytes as a demand-access script and
// drives the full train/observe/walk path, checking the table invariants
// after every step: no panic, LFU counters strictly below the saturation
// ceiling, every stored successor delta inside the tracked range, page-cache
// offsets inside the indexing region, and proposals obeying the degree bound
// and the generation limit.
func FuzzPanglossDeltaCache(f *testing.F) {
	seed := func(words ...uint32) []byte {
		b := make([]byte, 4*len(words))
		for i, w := range words {
			binary.LittleEndian.PutUint32(b[4*i:], w)
		}
		return b
	}
	f.Add(seed(0, 1, 2, 3, 4, 5, 6, 7))                      // unit stride
	f.Add(seed(0, 8, 16, 24, 32, 40, 48, 56, 64))            // 8-block stride
	f.Add(seed(0, 3, 4, 7, 8, 11, 12, 15))                   // +3,+1 pattern
	f.Add(seed(0, 1<<20, 2, 1<<21, 4, 1<<22, 6))             // page ping-pong
	f.Add(seed(5, 5, 5, 5))                                  // same-block re-access
	f.Add(seed(0, 200, 0, 200, 0, 200))                      // untracked jumps
	f.Add([]byte{0x01})                                      // short tail
	f.Add(seed(0xffffffff, 0, 0x80000000, 0x7fffffff, 1, 2)) // extremes

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := DefaultConfig()
		cfg.PageSets = 4 // small tables: eviction and aliasing under pressure
		cfg.PageWays = 2
		cfg.DeltaWays = 4
		bits := uint(mem.PageBits4K)
		if len(data) > 0 && data[0]&1 != 0 {
			bits = mem.PageBits2M
		}
		p := New(cfg, bits)

		check := func(op string, addr mem.Addr) {
			t.Helper()
			for i, c := range p.dCount {
				if c >= counterMax {
					t.Fatalf("%s(%#x): LFU counter %d at way %d reached the ceiling", op, addr, c, i)
				}
				if c != 0 {
					if d := p.dNext[i]; d == 0 || d > int32(cfg.MaxDelta) || d < -int32(cfg.MaxDelta) {
						t.Fatalf("%s(%#x): stored successor delta %d out of range", op, addr, d)
					}
				}
			}
			limit := int32(1) << (bits - mem.BlockBits)
			for i, tag := range p.pTag {
				if tag == 0 {
					continue
				}
				if off := p.pOff[i]; off < 0 || off >= limit {
					t.Fatalf("%s(%#x): page-cache offset %d outside region", op, addr, off)
				}
				if d := p.pDelta[i]; d > int32(cfg.MaxDelta) || d < -int32(cfg.MaxDelta) {
					t.Fatalf("%s(%#x): page-cache last delta %d out of range", op, addr, d)
				}
			}
		}

		for i := 0; i+4 <= len(data) && i < 400; i += 4 {
			w := binary.LittleEndian.Uint32(data[i:])
			// Blocks within a 16MB window: dense enough to collide pages.
			addr := mem.Addr(w&(1<<18-1)) * mem.BlockSize
			ctx := prefetch.Context{Addr: addr, VAddr: addr, Type: mem.Load, PageSize: mem.Page4K}
			if w&(1<<31) != 0 {
				p.Train(ctx)
				check("Train", addr)
				continue
			}
			issued := 0
			p.Operate(ctx, func(c prefetch.Candidate) {
				issued++
				if !prefetch.InGenLimit(addr, c.Addr) {
					t.Fatalf("Operate(%#x): candidate %#x outside the generation limit", addr, c.Addr)
				}
				if c.Virtual {
					t.Fatalf("Operate(%#x): pangloss proposed a virtual candidate", addr)
				}
			})
			if issued > cfg.Degree {
				t.Fatalf("Operate(%#x): issued %d candidates, degree is %d", addr, issued, cfg.Degree)
			}
			check("Operate", addr)
		}
	})
}
