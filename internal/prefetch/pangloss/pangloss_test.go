package pangloss

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func step(addr mem.Addr) prefetch.Context {
	return prefetch.Context{Addr: addr, Type: mem.Load, PageSize: mem.Page4K}
}

// TestUnitStrideChain: a unit-stride stream must build a delta-1 Markov
// chain and propose the blocks ahead of the trigger.
func TestUnitStrideChain(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	for i := 0; i < 32; i++ {
		p.Train(step(base + mem.Addr(i)*mem.BlockSize))
	}
	var got []mem.Addr
	p.Operate(step(base+32*mem.BlockSize), func(c prefetch.Candidate) {
		got = append(got, c.Addr)
		if !c.FillL2 {
			t.Errorf("unit stride should be high confidence, %#x fills LLC only", c.Addr)
		}
	})
	if len(got) == 0 {
		t.Fatal("no proposals after 32 unit-stride training steps")
	}
	for i, a := range got {
		want := base + mem.Addr(33+i)*mem.BlockSize
		if a != want {
			t.Errorf("proposal %d = %#x, want %#x", i, a, want)
		}
	}
}

// TestChainFollowsLearnedPattern: a repeating +3,+1 delta pattern must make
// the walk alternate the two deltas instead of extrapolating one stride.
func TestChainFollowsLearnedPattern(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	off := int64(0)
	for i := 0; i < 64; i++ {
		if i%2 == 0 {
			off += 3
		} else {
			off++
		}
		p.Train(step(base + mem.Addr(off)*mem.BlockSize))
	}
	// The last training delta was +1, so the chain from here starts with +3.
	trigger := base + mem.Addr(off)*mem.BlockSize
	var got []mem.Addr
	p.Operate(step(trigger+3*mem.BlockSize), func(c prefetch.Candidate) {
		got = append(got, c.Addr)
	})
	if len(got) < 2 {
		t.Fatalf("got %d proposals, want at least 2", len(got))
	}
	first := trigger + 3*mem.BlockSize
	if got[0] != first+mem.BlockSize {
		t.Errorf("first proposal %#x, want +1 successor %#x", got[0], first+mem.BlockSize)
	}
}

// TestCrossPageWalk: with 4KB indexing, a stride whose chain walks past the
// page's last block must keep proposing into the next 4KB page (inside the
// 2MB generation region) — the raw material of the PSA variants.
func TestCrossPageWalk(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	// Stride of 8 blocks within several consecutive 4KB pages.
	for i := 0; i < 128; i++ {
		p.Train(step(base + mem.Addr(i*8)*mem.BlockSize))
	}
	trigger := base + 128*8*mem.BlockSize
	crossed := false
	p.Operate(step(trigger), func(c prefetch.Candidate) {
		if !mem.SamePage(trigger, c.Addr, mem.Page4K) {
			crossed = true
		}
		if !prefetch.InGenLimit(trigger, c.Addr) {
			t.Errorf("candidate %#x outside generation region of %#x", c.Addr, trigger)
		}
	})
	if !crossed {
		t.Error("8-block stride near the page edge never proposed across the 4KB line")
	}
}

// TestUntrackedJumpResetsChain: a jump beyond MaxDelta must not train a
// transition, and the next access must start a fresh chain.
func TestUntrackedJumpResetsChain(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg, mem.PageBits2M)
	base := mem.Addr(0x40000000)
	p.Train(step(base))
	p.Train(step(base + mem.Addr(cfg.MaxDelta+5)*mem.BlockSize)) // untracked
	n := 0
	p.Operate(step(base+mem.Addr(cfg.MaxDelta+5)*mem.BlockSize), func(prefetch.Candidate) { n++ })
	if n != 0 {
		t.Errorf("proposals after an untracked jump: %d", n)
	}
	for i, c := range p.dCount {
		if c != 0 {
			t.Fatalf("delta cache trained by an untracked jump (way %d)", i)
		}
	}
}

// TestLFUReplacement: with a full row, the weakest successor is the one
// evicted.
func TestLFUReplacement(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg, mem.PageBits4K)
	// Fill row for prev delta 2 with successors 1..DeltaWays, counts rising.
	for s := 1; s <= cfg.DeltaWays; s++ {
		for n := 0; n < s; n++ {
			p.updateDelta(2, int32(s))
		}
	}
	p.updateDelta(2, int32(cfg.DeltaWays+1)) // evicts successor 1 (count 1)
	base := p.rowBase(2)
	seen1, seenNew := false, false
	for i := base; i < base+cfg.DeltaWays; i++ {
		if p.dCount[i] == 0 {
			continue
		}
		if p.dNext[i] == 1 {
			seen1 = true
		}
		if p.dNext[i] == int32(cfg.DeltaWays+1) {
			seenNew = true
		}
	}
	if seen1 || !seenNew {
		t.Errorf("LFU eviction wrong: successor1 present=%v, new successor present=%v", seen1, seenNew)
	}
}
