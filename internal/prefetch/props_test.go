// Package prefetch_test property-tests every prefetcher implementation
// against the framework contracts: candidates are block-aligned and stay
// within the 2MB generation region of their trigger; per-trigger degree is
// bounded by the configuration; steady-state operation allocates nothing
// (table budgets are fixed at construction); Train never proposes;
// implementations tolerate arbitrary access sequences without panicking. A
// second layer drives the full engine and asserts the paper's boundary
// policy: no issued prefetch crosses a 4KB page boundary unless the PPM
// reported the trigger residing in a larger page.
package prefetch_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/prefetch/ampm"
	"repro/internal/prefetch/bop"
	"repro/internal/prefetch/nextline"
	"repro/internal/prefetch/pangloss"
	"repro/internal/prefetch/ppf"
	"repro/internal/prefetch/sms"
	"repro/internal/prefetch/spp"
	"repro/internal/prefetch/vamp"
	"repro/internal/prefetch/vldp"
)

// quickCfg returns a deterministic testing/quick configuration: the default
// time-seeded source made the suite flaky (rare SPP delta chains legally sum
// back to the trigger block, which an earlier over-strict property rejected).
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(1))}
}

// factories lists every prefetcher under test at both indexing granularities.
func factories() map[string]prefetch.Factory {
	return map[string]prefetch.Factory{
		"spp":      spp.Factory(spp.DefaultConfig()),
		"vldp":     vldp.Factory(vldp.DefaultConfig()),
		"ppf":      ppf.Factory(ppf.DefaultConfig()),
		"bop":      bop.Factory(bop.DefaultConfig()),
		"sms":      sms.Factory(sms.DefaultConfig()),
		"ampm":     ampm.Factory(ampm.DefaultConfig()),
		"pangloss": pangloss.Factory(pangloss.DefaultConfig()),
		"vamp":     vamp.Factory(vamp.DefaultConfig()),
		"nextline": nextline.Factory(2),
	}
}

// addrFromSeq turns fuzz bytes into a plausible physical block address within
// a handful of 2MB regions.
func addrFromSeq(region, off uint16) mem.Addr {
	base := mem.Addr(0x40000000) + mem.Addr(region%8)<<mem.PageBits2M
	return base + mem.Addr(off%32768)*mem.BlockSize
}

func TestCandidateContractAllPrefetchers(t *testing.T) {
	for name, factory := range factories() {
		for _, bits := range []uint{mem.PageBits4K, mem.PageBits2M} {
			name, factory, bits := name, factory, bits
			t.Run(name, func(t *testing.T) {
				p := factory(bits)
				f := func(seq []uint32) bool {
					for i, raw := range seq {
						addr := addrFromSeq(uint16(raw>>16), uint16(raw))
						ctx := prefetch.Context{
							Addr:     addr,
							PC:       0x400000 + mem.Addr(raw%7)*4,
							Type:     mem.Load,
							PageSize: mem.Page2M,
							At:       mem.Cycle(i * 10),
						}
						ok := true
						p.Operate(ctx, func(c prefetch.Candidate) {
							if c.Addr != mem.BlockAlign(c.Addr) {
								t.Logf("%s: unaligned candidate %#x", name, c.Addr)
								ok = false
							}
							if !prefetch.InGenLimit(addr, c.Addr) {
								t.Logf("%s: candidate %#x outside 2MB region of %#x", name, c.Addr, addr)
								ok = false
							}
							// Proposing the trigger block itself is legal:
							// SPP's delta chains can wrap back onto the
							// trigger, and the engine drops already-present
							// blocks before they cost a queue slot.
						})
						if !ok {
							return false
						}
					}
					return true
				}
				if err := quick.Check(f, quickCfg(60)); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

func TestTrainNeverProposes(t *testing.T) {
	// Train must build state silently; only Operate proposes. We verify by
	// interleaving Train calls and ensuring no panic / no state corruption
	// that would break a subsequent Operate.
	for name, factory := range factories() {
		p := factory(mem.PageBits4K)
		base := mem.Addr(0x40000000)
		for i := 0; i < 48; i++ {
			p.Train(prefetch.Context{
				Addr: base + mem.Addr(i)*mem.BlockSize, Type: mem.Load, PageSize: mem.Page4K,
			})
		}
		n := 0
		p.Operate(prefetch.Context{
			Addr: base + 48*mem.BlockSize, Type: mem.Load, PageSize: mem.Page4K,
		}, func(prefetch.Candidate) { n++ })
		if name == "spp" || name == "vldp" || name == "pangloss" || name == "vamp" {
			if n == 0 {
				t.Errorf("%s: no proposals after 48 training steps on a unit stride", name)
			}
		}
	}
}

func TestFeedbackReceiversTolerateUnknownBlocks(t *testing.T) {
	// Feedback for blocks the prefetcher never issued must be harmless.
	for name, factory := range factories() {
		p := factory(mem.PageBits4K)
		fr, ok := p.(prefetch.FeedbackReceiver)
		if !ok {
			continue
		}
		for i := 0; i < 100; i++ {
			fr.PrefetchUseful(mem.Addr(i) * 0x1040)
			fr.PrefetchUnused(mem.Addr(i) * 0x2080)
			fr.DemandMiss(mem.Addr(i) * 0x30c0)
		}
		_ = name
	}
}

// maxDegree returns the configuration-derived bound on candidates one
// trigger access may yield for each prefetcher under its default config.
func maxDegree() map[string]int {
	sppCfg := spp.DefaultConfig()
	ppfCfg := ppf.DefaultConfig()
	return map[string]int{
		// SPP's lookahead proposes at most DeltaSlots candidates per depth.
		"spp":      sppCfg.MaxLookahead * sppCfg.DeltaSlots,
		"ppf":      ppfCfg.SPP.MaxLookahead * ppfCfg.SPP.DeltaSlots,
		"vldp":     vldp.DefaultConfig().Degree,
		"bop":      bop.DefaultConfig().Degree,
		"ampm":     ampm.DefaultConfig().Degree,
		"sms":      sms.DefaultConfig().RegionBlocks,
		"pangloss": pangloss.DefaultConfig().Degree,
		"vamp":     vamp.DefaultConfig().Degree,
		"nextline": 2, // factories() builds nextline.New(2)
	}
}

// TestPrefetchDegreeBound: no prefetcher ever yields more candidates for one
// trigger access than its configuration allows — a runaway lookahead would
// flood the prefetch queue and invalidate the paper's traffic accounting.
func TestPrefetchDegreeBound(t *testing.T) {
	bounds := maxDegree()
	for name, factory := range factories() {
		for _, bits := range []uint{mem.PageBits4K, mem.PageBits2M} {
			p := factory(bits)
			bound := bounds[name]
			f := func(seq []uint32) bool {
				for i, raw := range seq {
					n := 0
					p.Operate(prefetch.Context{
						Addr:     addrFromSeq(uint16(raw>>16), uint16(raw)),
						PC:       0x400000 + mem.Addr(raw%7)*4,
						Type:     mem.Load,
						PageSize: mem.Page2M,
						At:       mem.Cycle(i * 10),
					}, func(prefetch.Candidate) { n++ })
					if n > bound {
						t.Logf("%s: %d candidates for one trigger (bound %d)", name, n, bound)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, quickCfg(40)); err != nil {
				t.Errorf("%s/bits=%d: %v", name, bits, err)
			}
		}
	}
}

// TestSteadyStateZeroAllocs is the table-budget invariant in its strongest
// form: every table is sized at construction, so after warmup neither Operate
// nor Train may allocate. Growth of any internal structure — a map rehash, an
// appended slice — shows up here as a nonzero allocation rate.
func TestSteadyStateZeroAllocs(t *testing.T) {
	for name, factory := range factories() {
		p := factory(mem.PageBits4K)
		sink := func(prefetch.Candidate) {}
		step := func(i int) prefetch.Context {
			return prefetch.Context{
				Addr:     addrFromSeq(uint16(i*31), uint16(i*137)),
				PC:       0x400000 + mem.Addr(i%7)*4,
				Type:     mem.Load,
				PageSize: mem.Page4K,
				At:       mem.Cycle(i * 10),
			}
		}
		for i := 0; i < 4096; i++ { // warm every table past its capacity
			p.Operate(step(i), sink)
			p.Train(step(i))
		}
		i := 4096
		avg := testing.AllocsPerRun(200, func() {
			for k := 0; k < 16; k++ {
				p.Operate(step(i), sink)
				p.Train(step(i))
				i++
			}
		})
		if avg != 0 {
			t.Errorf("%s: steady-state Operate/Train allocates (%.2f allocs per 16 accesses)", name, avg)
		}
	}
}

// lifeRecorder captures prefetch fill events so engine-level properties can
// relate every issued prefetch back to its trigger.
type lifeRecorder struct {
	onFill func(ev cache.LifecycleEvent)
}

func (r *lifeRecorder) OnPrefetchLifecycle(_ string, ev cache.LifecycleEvent) {
	if ev.Kind == cache.LifeFill && r.onFill != nil {
		r.onFill(ev)
	}
}

// TestEngineBoundaryInvariant drives the full engine (prefetcher + boundary
// policy + caches) with generated demand streams and asserts the paper's
// central safety property: an issued prefetch never crosses a 4KB page
// boundary unless the PPM reported the trigger residing in a 2MB page — and
// the Original variant never crosses regardless of what the PPM says.
func TestEngineBoundaryInvariant(t *testing.T) {
	variants := []core.Variant{core.Original, core.PSA, core.PSA2MB, core.PSASD}
	for _, base := range []string{"spp", "vldp", "pangloss"} {
		var factory prefetch.Factory
		switch base {
		case "spp":
			factory = spp.Factory(spp.DefaultConfig())
		case "vldp":
			factory = vldp.Factory(vldp.DefaultConfig())
		case "pangloss":
			factory = pangloss.Factory(pangloss.DefaultConfig())
		}
		for _, variant := range variants {
			variant := variant
			t.Run(base+"/"+variant.String(), func(t *testing.T) {
				llc := cache.New(cache.Config{
					Name: "llc", Sets: 128, Ways: 8, Latency: 1, MSHREntries: 32,
				}, nil)
				l2 := cache.New(cache.Config{
					Name: "l2", Sets: 64, Ways: 8, Latency: 1, MSHREntries: 16,
				}, llc)
				// Oracle: odd 2MB regions are 2MB pages, even ones 4KB.
				oracle := func(a mem.Addr) mem.PageSize {
					if (a>>mem.PageBits2M)&1 == 1 {
						return mem.Page2M
					}
					return mem.Page4K
				}
				e := core.New(factory, variant, l2, llc, oracle, 0)
				l2.SetObserver(e)

				// The engine issues prefetches synchronously from OnAccess, so
				// the current trigger is always the last demand access fed in.
				var trigger mem.Addr
				var ppmSize mem.PageSize
				rec := &lifeRecorder{onFill: func(ev cache.LifecycleEvent) {
					enforced := ppmSize
					if variant == core.Original {
						enforced = mem.Page4K // no page-size knowledge
					}
					if !mem.SamePage(ev.Block, trigger, enforced) {
						t.Errorf("prefetch %#x escapes the %v page of trigger %#x",
							ev.Block, enforced, trigger)
					}
					crossed := !mem.SamePage(ev.Block, trigger, mem.Page4K)
					if crossed && enforced == mem.Page4K {
						t.Errorf("prefetch %#x crossed a 4KB boundary without PPM 2MB (trigger %#x)",
							ev.Block, trigger)
					}
					if ev.Req.CrossedPage != crossed {
						t.Errorf("CrossedPage=%v disagrees with trigger geometry (prefetch %#x, trigger %#x)",
							ev.Req.CrossedPage, ev.Block, trigger)
					}
				}}
				l2.SetLifecycleObserver(rec)
				llc.SetLifecycleObserver(rec)

				f := func(seq []uint32) bool {
					for i, raw := range seq {
						addr := addrFromSeq(uint16(raw>>16), uint16(raw))
						trigger = mem.BlockAlign(addr)
						ppmSize = oracle(addr) // PPM truthfully reports the residing page
						req := &mem.Request{
							PAddr:         addr,
							PC:            0x400000 + mem.Addr(raw%5)*4,
							Type:          mem.Load,
							Core:          0,
							PageSize:      ppmSize,
							PageSizeKnown: true,
						}
						l2.Access(req, mem.Cycle(i*20))
					}
					return !t.Failed()
				}
				if err := quick.Check(f, quickCfg(25)); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestEngineVABoundaryInvariant drives the engine with a virtual-address
// prefetcher (vamp) behind a translator stub and asserts the virtual-side
// boundary contract: every fill stays within the 2MB virtual generation
// region of its trigger, the Original variant never crosses a 4KB virtual
// page, a crossing fill only happens when the target page's translation is
// TLB-resident, and every issued candidate is accounted as virtual.
func TestEngineVABoundaryInvariant(t *testing.T) {
	// Virtual and physical address spaces are offset by 4GB: the shift
	// preserves 2MB alignment, so page geometry is identical on both sides
	// and fills map back to virtual addresses by subtraction.
	const shift = mem.Addr(1) << 32
	resident := func(v mem.Addr) bool { return (v>>mem.PageBits4K)%4 != 3 }
	translator := func(v mem.Addr) (mem.Addr, mem.PageSize, bool) {
		if !resident(v) {
			return 0, 0, false
		}
		size := mem.Page4K
		if (v>>mem.PageBits2M)&1 == 1 {
			size = mem.Page2M
		}
		return v + shift, size, true
	}
	for _, variant := range []core.Variant{core.Original, core.PSA, core.PSASD} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			llc := cache.New(cache.Config{
				Name: "llc", Sets: 512, Ways: 8, Latency: 1, MSHREntries: 32,
			}, nil)
			l2 := cache.New(cache.Config{
				Name: "l2", Sets: 256, Ways: 8, Latency: 1, MSHREntries: 16,
			}, llc)
			oracle := func(mem.Addr) mem.PageSize { return mem.Page4K }
			e := core.New(vamp.Factory(vamp.DefaultConfig()), variant, l2, llc, oracle, 0)
			e.SetTranslator(translator)
			l2.SetObserver(e)

			var vaTrigger, paTrigger mem.Addr
			rec := &lifeRecorder{onFill: func(ev cache.LifecycleEvent) {
				vaBlock := ev.Block - shift
				if !prefetch.InGenLimit(vaTrigger, vaBlock) {
					t.Errorf("fill %#x (VA %#x) escapes the 2MB virtual region of trigger VA %#x",
						ev.Block, vaBlock, vaTrigger)
				}
				crossedVA := !mem.SamePage(vaBlock, vaTrigger, mem.Page4K)
				if crossedVA && variant == core.Original {
					t.Errorf("Original variant fill %#x crossed the 4KB virtual page of %#x",
						vaBlock, vaTrigger)
				}
				if crossedVA && !resident(vaBlock) {
					t.Errorf("fill targets VA %#x whose translation is not TLB-resident", vaBlock)
				}
				crossedPA := !mem.SamePage(ev.Block, paTrigger, mem.Page4K)
				if ev.Req.CrossedPage != crossedPA {
					t.Errorf("CrossedPage=%v disagrees with physical geometry (fill %#x, trigger %#x)",
						ev.Req.CrossedPage, ev.Block, paTrigger)
				}
			}}
			l2.SetLifecycleObserver(rec)
			llc.SetLifecycleObserver(rec)

			// A unit stride across 16 virtual pages: every page edge offers a
			// crossing candidate, and every fourth page is non-resident, so
			// both the residency gate and the boundary policy see traffic.
			vaBase := mem.Addr(0x40000000)
			for i := 0; i < 16*64; i++ {
				va := vaBase + mem.Addr(i)*mem.BlockSize
				vaTrigger = va
				paTrigger = va + shift
				req := &mem.Request{
					PAddr:         va + shift,
					VAddr:         va,
					PC:            0x400000,
					Type:          mem.Load,
					Core:          0,
					PageSize:      mem.Page4K,
					PageSizeKnown: true,
				}
				l2.Access(req, mem.Cycle(i*20))
			}

			s := e.Stats
			if s.Issued == 0 {
				t.Fatal("no prefetches issued over a 16-page unit stride")
			}
			if s.VAIssued != s.Issued {
				t.Errorf("VAIssued=%d != Issued=%d for an all-virtual prefetcher", s.VAIssued, s.Issued)
			}
			if variant == core.Original {
				if s.CrossedPage4K != 0 {
					t.Errorf("Original variant crossed %d 4KB lines", s.CrossedPage4K)
				}
				if s.DiscardedBoundary == 0 {
					t.Error("Original variant never discarded a crossing candidate (no teeth)")
				}
			} else {
				if s.CrossedPage4K == 0 {
					t.Errorf("%s never crossed a 4KB line over 16 pages", variant)
				}
				if s.DiscardedUntranslated == 0 {
					t.Errorf("%s never hit the TLB-residency gate although every 4th page is non-resident", variant)
				}
			}
		})
	}
}

func TestInGenLimit(t *testing.T) {
	base := mem.Addr(0x40000000)
	if !prefetch.InGenLimit(base, base+mem.PageSize2M-mem.BlockSize) {
		t.Error("last block of the region rejected")
	}
	if prefetch.InGenLimit(base, base+mem.PageSize2M) {
		t.Error("first block of the next region accepted")
	}
	if prefetch.InGenLimit(base, base-mem.BlockSize) {
		t.Error("block below the region accepted")
	}
}
