// Package prefetch_test property-tests every prefetcher implementation
// against the framework contracts: candidates are block-aligned, stay within
// the 2MB generation region of their trigger, and are never the trigger
// itself; Train never proposes; implementations tolerate arbitrary access
// sequences without panicking.
package prefetch_test

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/prefetch/ampm"
	"repro/internal/prefetch/bop"
	"repro/internal/prefetch/nextline"
	"repro/internal/prefetch/ppf"
	"repro/internal/prefetch/sms"
	"repro/internal/prefetch/spp"
	"repro/internal/prefetch/vldp"
)

// factories lists every prefetcher under test at both indexing granularities.
func factories() map[string]prefetch.Factory {
	return map[string]prefetch.Factory{
		"spp":      spp.Factory(spp.DefaultConfig()),
		"vldp":     vldp.Factory(vldp.DefaultConfig()),
		"ppf":      ppf.Factory(ppf.DefaultConfig()),
		"bop":      bop.Factory(bop.DefaultConfig()),
		"sms":      sms.Factory(sms.DefaultConfig()),
		"ampm":     ampm.Factory(ampm.DefaultConfig()),
		"nextline": nextline.Factory(2),
	}
}

// addrFromSeq turns fuzz bytes into a plausible physical block address within
// a handful of 2MB regions.
func addrFromSeq(region, off uint16) mem.Addr {
	base := mem.Addr(0x40000000) + mem.Addr(region%8)<<mem.PageBits2M
	return base + mem.Addr(off%32768)*mem.BlockSize
}

func TestCandidateContractAllPrefetchers(t *testing.T) {
	for name, factory := range factories() {
		for _, bits := range []uint{mem.PageBits4K, mem.PageBits2M} {
			name, factory, bits := name, factory, bits
			t.Run(name, func(t *testing.T) {
				p := factory(bits)
				f := func(seq []uint32) bool {
					for i, raw := range seq {
						addr := addrFromSeq(uint16(raw>>16), uint16(raw))
						ctx := prefetch.Context{
							Addr:     addr,
							PC:       0x400000 + mem.Addr(raw%7)*4,
							Type:     mem.Load,
							PageSize: mem.Page2M,
							At:       mem.Cycle(i * 10),
						}
						ok := true
						p.Operate(ctx, func(c prefetch.Candidate) {
							if c.Addr != mem.BlockAlign(c.Addr) {
								t.Logf("%s: unaligned candidate %#x", name, c.Addr)
								ok = false
							}
							if !prefetch.InGenLimit(addr, c.Addr) {
								t.Logf("%s: candidate %#x outside 2MB region of %#x", name, c.Addr, addr)
								ok = false
							}
							if c.Addr == addr {
								t.Logf("%s: proposed the trigger itself", name)
								ok = false
							}
						})
						if !ok {
							return false
						}
					}
					return true
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

func TestTrainNeverProposes(t *testing.T) {
	// Train must build state silently; only Operate proposes. We verify by
	// interleaving Train calls and ensuring no panic / no state corruption
	// that would break a subsequent Operate.
	for name, factory := range factories() {
		p := factory(mem.PageBits4K)
		base := mem.Addr(0x40000000)
		for i := 0; i < 48; i++ {
			p.Train(prefetch.Context{
				Addr: base + mem.Addr(i)*mem.BlockSize, Type: mem.Load, PageSize: mem.Page4K,
			})
		}
		n := 0
		p.Operate(prefetch.Context{
			Addr: base + 48*mem.BlockSize, Type: mem.Load, PageSize: mem.Page4K,
		}, func(prefetch.Candidate) { n++ })
		if name == "spp" || name == "vldp" {
			if n == 0 {
				t.Errorf("%s: no proposals after 48 training steps on a unit stride", name)
			}
		}
	}
}

func TestFeedbackReceiversTolerateUnknownBlocks(t *testing.T) {
	// Feedback for blocks the prefetcher never issued must be harmless.
	for name, factory := range factories() {
		p := factory(mem.PageBits4K)
		fr, ok := p.(prefetch.FeedbackReceiver)
		if !ok {
			continue
		}
		for i := 0; i < 100; i++ {
			fr.PrefetchUseful(mem.Addr(i) * 0x1040)
			fr.PrefetchUnused(mem.Addr(i) * 0x2080)
			fr.DemandMiss(mem.Addr(i) * 0x30c0)
		}
		_ = name
	}
}

func TestInGenLimit(t *testing.T) {
	base := mem.Addr(0x40000000)
	if !prefetch.InGenLimit(base, base+mem.PageSize2M-mem.BlockSize) {
		t.Error("last block of the region rejected")
	}
	if prefetch.InGenLimit(base, base+mem.PageSize2M) {
		t.Error("first block of the next region accepted")
	}
	if prefetch.InGenLimit(base, base-mem.BlockSize) {
		t.Error("block below the region accepted")
	}
}
