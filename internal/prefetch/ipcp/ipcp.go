// Package ipcp implements the Instruction Pointer Classifier-based spatial
// Prefetcher (Pakalapati & Panda, ISCA 2020), the state-of-the-art L1D
// prefetcher the paper compares against in Figure 13. IPCP classifies each
// load IP into constant-stride (CS), complex-stride (CPLX), or global-stream
// (GS) classes and prefetches accordingly.
//
// Unlike the L2 prefetchers, IPCP operates on virtual addresses at L1D access
// time. It proposes raw virtual candidates; the simulation driver enforces
// the 4KB virtual page boundary for the original IPCP and the TLB-residency
// rule for the boundary-crossing IPCP++ variant.
package ipcp

import (
	"repro/internal/mem"
)

// Config sizes IPCP's structures.
type Config struct {
	IPTableEntries int // IP tracking table (64)
	CSPTEntries    int // complex stride prediction table (128)
	CSDegree       int // constant-stride prefetch degree (4)
	CPLXDegree     int // complex-stride chained degree (3)
	GSDegree       int // global-stream next-line degree (6)
	RegionTrack    int // recent regions tracked for stream density (8)
}

// DefaultConfig returns the configuration used in the evaluation.
func DefaultConfig() Config {
	return Config{
		IPTableEntries: 64,
		CSPTEntries:    128,
		CSDegree:       4,
		CPLXDegree:     3,
		GSDegree:       6,
		RegionTrack:    8,
	}
}

// Class is an IP classification.
type Class uint8

// IP classes, in priority order.
const (
	ClassNone Class = iota
	ClassGS         // global stream: dense region access
	ClassCS         // constant stride
	ClassCPLX       // complex (recurring) stride sequence
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassGS:
		return "GS"
	case ClassCS:
		return "CS"
	case ClassCPLX:
		return "CPLX"
	}
	return "none"
}

// Candidate is a proposed virtual-address prefetch.
type Candidate struct {
	VAddr mem.Addr
	Class Class
}

type ipEntry struct {
	tag       mem.Addr
	valid     bool
	lastBlock mem.Addr
	stride    int
	conf      int // 2-bit saturating for CS
	sig       uint16
	streamHit int
}

type csptEntry struct {
	stride int
	conf   int
	valid  bool
}

type regionEntry struct {
	region mem.Addr
	bitmap uint64 // one bit per block in a 4KB region
	lru    uint64
}

// Prefetcher is an IPCP instance.
type Prefetcher struct {
	cfg     Config
	ipt     []ipEntry
	cspt    []csptEntry
	regions []regionEntry
	tick    uint64
}

// New creates an IPCP prefetcher.
func New(cfg Config) *Prefetcher {
	return &Prefetcher{
		cfg:     cfg,
		ipt:     make([]ipEntry, cfg.IPTableEntries),
		cspt:    make([]csptEntry, cfg.CSPTEntries),
		regions: make([]regionEntry, cfg.RegionTrack),
	}
}

// regionDensity records the access and returns the population of the 4KB
// region's bitmap, the GS-class signal.
func (p *Prefetcher) regionDensity(vaddr mem.Addr) int {
	reg := mem.PageBase(vaddr, mem.Page4K)
	bit := uint(mem.BlockOffsetInPage(vaddr, mem.Page4K))
	p.tick++
	var slot *regionEntry
	for i := range p.regions {
		if p.regions[i].region == reg && p.regions[i].bitmap != 0 {
			slot = &p.regions[i]
			break
		}
	}
	if slot == nil {
		slot = &p.regions[0]
		for i := range p.regions {
			if p.regions[i].lru < slot.lru {
				slot = &p.regions[i]
			}
		}
		*slot = regionEntry{region: reg}
	}
	slot.bitmap |= 1 << bit
	slot.lru = p.tick
	pop := 0
	for b := slot.bitmap; b != 0; b &= b - 1 {
		pop++
	}
	return pop
}

// Operate observes an L1D access and appends prefetch candidates to out,
// returning the extended slice (callers may reuse the backing array).
func (p *Prefetcher) Operate(pc, vaddr mem.Addr, out []Candidate) []Candidate {
	blk := mem.BlockNumber(vaddr)
	e := &p.ipt[int(uint64(pc)>>2)%p.cfg.IPTableEntries]

	density := p.regionDensity(vaddr)

	if !e.valid || e.tag != pc {
		*e = ipEntry{tag: pc, valid: true, lastBlock: blk}
		return out
	}
	stride := int(int64(blk) - int64(e.lastBlock))
	if stride == 0 {
		return out
	}

	// Train the complex-stride table under the previous signature.
	ce := &p.cspt[int(e.sig)%p.cfg.CSPTEntries]
	if ce.valid && ce.stride == stride {
		if ce.conf < 3 {
			ce.conf++
		}
	} else if !ce.valid || ce.conf == 0 {
		*ce = csptEntry{stride: stride, conf: 0, valid: true}
	} else {
		ce.conf--
	}

	// Constant-stride confidence.
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.conf--
		if e.conf < 0 {
			e.stride = stride
			e.conf = 0
		}
	}

	sig := ((e.sig << 4) ^ uint16(stride&0xf)) & 0xfff
	e.sig = sig
	e.lastBlock = blk

	switch {
	case density >= 12 && (stride == 1 || stride == -1):
		// Dense region + unit stride: global stream. Deep next-line burst.
		e.streamHit++
		dir := mem.Addr(mem.BlockSize)
		if stride < 0 {
			dir = ^mem.Addr(mem.BlockSize) + 1 // -64
		}
		a := mem.BlockAlign(vaddr)
		for i := 0; i < p.cfg.GSDegree; i++ {
			a += dir
			out = append(out, Candidate{VAddr: a, Class: ClassGS})
		}
	case e.conf >= 2:
		// Constant stride.
		a := mem.BlockAlign(vaddr)
		for i := 1; i <= p.cfg.CSDegree; i++ {
			out = append(out, Candidate{
				VAddr: a + mem.Addr(int64(i*e.stride))*mem.BlockSize,
				Class: ClassCS,
			})
		}
	default:
		// Complex stride: chain CSPT predictions.
		a := mem.BlockAlign(vaddr)
		s := sig
		for i := 0; i < p.cfg.CPLXDegree; i++ {
			c := &p.cspt[int(s)%p.cfg.CSPTEntries]
			if !c.valid || c.conf < 1 {
				break
			}
			a += mem.Addr(int64(c.stride)) * mem.BlockSize
			out = append(out, Candidate{VAddr: a, Class: ClassCPLX})
			s = ((s << 4) ^ uint16(c.stride&0xf)) & 0xfff
		}
	}
	return out
}
