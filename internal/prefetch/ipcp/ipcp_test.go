package ipcp

import (
	"testing"

	"repro/internal/mem"
)

func TestConstantStrideClass(t *testing.T) {
	p := New(DefaultConfig())
	pc := mem.Addr(0x400100)
	base := mem.Addr(0x7f0000000000)
	var cands []Candidate
	for i := 0; i < 8; i++ {
		cands = p.Operate(pc, base+mem.Addr(i*3)*mem.BlockSize, nil)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates on constant stride")
	}
	for _, c := range cands {
		if c.Class != ClassCS {
			t.Errorf("class = %v, want CS", c.Class)
		}
	}
	want := base + mem.Addr(7*3+3)*mem.BlockSize
	if cands[0].VAddr != want {
		t.Errorf("first candidate %#x, want %#x", cands[0].VAddr, want)
	}
	if len(cands) != DefaultConfig().CSDegree {
		t.Errorf("degree = %d, want %d", len(cands), DefaultConfig().CSDegree)
	}
}

func TestNegativeStride(t *testing.T) {
	p := New(DefaultConfig())
	pc := mem.Addr(0x400200)
	base := mem.Addr(0x7f0000100000)
	var cands []Candidate
	for i := 0; i < 8; i++ {
		cands = p.Operate(pc, base-mem.Addr(i*2)*mem.BlockSize, nil)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates on negative stride")
	}
	want := base - mem.Addr(7*2+2)*mem.BlockSize
	if cands[0].VAddr != want {
		t.Errorf("candidate %#x, want %#x", cands[0].VAddr, want)
	}
}

func TestGlobalStreamClass(t *testing.T) {
	p := New(DefaultConfig())
	pc := mem.Addr(0x400300)
	base := mem.Addr(0x7f0000200000)
	var cands []Candidate
	// Dense unit-stride sweep through a 4KB region triggers GS.
	for i := 0; i < 20; i++ {
		cands = p.Operate(pc, base+mem.Addr(i)*mem.BlockSize, nil)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates on dense stream")
	}
	sawGS := false
	for _, c := range cands {
		if c.Class == ClassGS {
			sawGS = true
		}
	}
	if !sawGS {
		t.Errorf("dense unit stream not classified GS: %+v", cands)
	}
	if len(cands) < DefaultConfig().CSDegree {
		t.Errorf("GS degree %d not deeper than CS %d", len(cands), DefaultConfig().CSDegree)
	}
}

func TestComplexStrideClass(t *testing.T) {
	p := New(DefaultConfig())
	pc := mem.Addr(0x400400)
	base := mem.Addr(0x7f0000300000)
	// Repeating stride sequence +1,+7 is not constant but is signature-
	// predictable.
	strides := []int{1, 7}
	off := 0
	var cands []Candidate
	for i := 0; i < 40; i++ {
		cands = p.Operate(pc, base+mem.Addr(off)*mem.BlockSize, nil)
		off += strides[i%2]
	}
	if len(cands) == 0 {
		t.Fatal("no candidates on periodic stride sequence")
	}
	sawCPLX := false
	for _, c := range cands {
		if c.Class == ClassCPLX {
			sawCPLX = true
		}
	}
	if !sawCPLX {
		t.Errorf("periodic strides not classified CPLX: %+v", cands)
	}
}

func TestDistinctIPsIndependent(t *testing.T) {
	p := New(DefaultConfig())
	base := mem.Addr(0x7f0000400000)
	// Two IPs with different strides interleaved must both be learnable.
	var c1, c2 []Candidate
	for i := 0; i < 10; i++ {
		c1 = p.Operate(0x400500, base+mem.Addr(i*2)*mem.BlockSize, nil)
		c2 = p.Operate(0x400504, base+0x100000+mem.Addr(i*5)*mem.BlockSize, nil)
	}
	if len(c1) == 0 || len(c2) == 0 {
		t.Fatalf("interleaved IPs not both predicted: %d, %d", len(c1), len(c2))
	}
	if c1[0].VAddr != base+mem.Addr(9*2+2)*mem.BlockSize {
		t.Errorf("IP1 candidate %#x wrong", c1[0].VAddr)
	}
	if c2[0].VAddr != base+0x100000+mem.Addr(9*5+5)*mem.BlockSize {
		t.Errorf("IP2 candidate %#x wrong", c2[0].VAddr)
	}
}

func TestSameBlockNoCandidates(t *testing.T) {
	p := New(DefaultConfig())
	var cands []Candidate
	for i := 0; i < 5; i++ {
		cands = p.Operate(0x400600, 0x7f0000500000, nil)
	}
	if len(cands) != 0 {
		t.Errorf("repeated same-block access produced %d candidates", len(cands))
	}
}

func TestClassString(t *testing.T) {
	if ClassGS.String() != "GS" || ClassCS.String() != "CS" ||
		ClassCPLX.String() != "CPLX" || ClassNone.String() != "none" {
		t.Error("Class.String mismatch")
	}
}
