// Package ampm implements the Access Map Pattern Matching prefetcher (Ishii
// et al., ICS 2009): each tracked memory zone keeps a 2-bit state per cache
// block (init / accessed / prefetched); on every access the prefetcher scans
// the map for stride candidates k where blocks at −k and −2k were already
// accessed, and prefetches +k.
//
// AMPM's zones are indexed by the page number, so — unlike BOP or SMS — its
// PSA-2MB variant is a real design change: 2MB zones track 32768 blocks and
// can match strides far beyond 64 blocks. This is an extension beyond the
// paper's four evaluated prefetchers, demonstrating that the PPM machinery
// accepts further spatial designs unmodified.
package ampm

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Block states in the access map.
const (
	stateInit uint8 = iota
	stateAccess
	statePrefetch
)

// Config sizes AMPM.
type Config struct {
	Zones     int // tracked zones (64)
	MaxStride int // largest stride scanned (32)
	Degree    int // prefetches issued per access (2)
}

// DefaultConfig returns the configuration used in the evaluation.
func DefaultConfig() Config { return Config{Zones: 64, MaxStride: 32, Degree: 2} }

// Scale returns a copy with the zone count multiplied by k (ISO storage).
func (c Config) Scale(k int) Config {
	c.Zones *= k
	return c
}

type zone struct {
	tag   mem.Addr
	m     []uint8
	valid bool
	lru   uint64
}

// Prefetcher is an AMPM instance.
type Prefetcher struct {
	cfg        Config
	regionBits uint
	zones      []zone
	tick       uint64
}

// New creates an AMPM prefetcher tracking zones of 2^regionBits bytes.
func New(cfg Config, regionBits uint) *Prefetcher {
	p := &Prefetcher{cfg: cfg, regionBits: regionBits, zones: make([]zone, cfg.Zones)}
	return p
}

// Factory adapts New to prefetch.Factory.
func Factory(cfg Config) prefetch.Factory {
	return func(regionBits uint) prefetch.Prefetcher { return New(cfg, regionBits) }
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "ampm" }

func (p *Prefetcher) blocksPerZone() int { return 1 << (p.regionBits - mem.BlockBits) }

func (p *Prefetcher) zoneFor(a mem.Addr) *zone {
	tag := a >> p.regionBits
	p.tick++
	victim := &p.zones[0]
	for i := range p.zones {
		z := &p.zones[i]
		if z.valid && z.tag == tag {
			z.lru = p.tick
			return z
		}
	}
	for i := range p.zones {
		z := &p.zones[i]
		if !z.valid {
			victim = z
			break
		}
		if z.lru < victim.lru {
			victim = z
		}
	}
	n := p.blocksPerZone()
	if victim.m == nil || len(victim.m) != n {
		victim.m = make([]uint8, n)
	} else {
		for i := range victim.m {
			victim.m[i] = stateInit
		}
	}
	victim.tag = tag
	victim.valid = true
	victim.lru = p.tick
	return victim
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ctx prefetch.Context) {
	if !ctx.Type.IsDemand() {
		return
	}
	z := p.zoneFor(ctx.Addr)
	off := int((ctx.Addr >> mem.BlockBits) & mem.Addr(p.blocksPerZone()-1))
	z.m[off] = stateAccess
}

// Operate implements prefetch.Prefetcher.
func (p *Prefetcher) Operate(ctx prefetch.Context, issue func(prefetch.Candidate)) {
	if !ctx.Type.IsDemand() {
		return
	}
	z := p.zoneFor(ctx.Addr)
	n := p.blocksPerZone()
	off := int((ctx.Addr >> mem.BlockBits) & mem.Addr(n-1))
	z.m[off] = stateAccess

	zoneBase := ctx.Addr &^ (1<<p.regionBits - 1)
	issued := 0
	try := func(k int) bool {
		// Pattern match: if −k and −2k were accessed, +k is a candidate.
		a, b, t := off-k, off-2*k, off+k
		if a < 0 || a >= n || b < 0 || b >= n || t < 0 || t >= n {
			return false
		}
		if z.m[a] != stateAccess || z.m[b] != stateAccess {
			return false
		}
		if z.m[t] != stateInit {
			return false // already accessed or prefetched
		}
		cand := zoneBase + mem.Addr(t)*mem.BlockSize
		if !prefetch.InGenLimit(ctx.Addr, cand) {
			return false
		}
		z.m[t] = statePrefetch
		issue(prefetch.Candidate{Addr: cand, FillL2: true})
		issued++
		return issued >= p.cfg.Degree
	}
	for k := 1; k <= p.cfg.MaxStride; k++ {
		if try(k) || try(-k) {
			return
		}
	}
}
