package ampm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func ctxAt(addr mem.Addr) prefetch.Context {
	return prefetch.Context{Addr: mem.BlockAlign(addr), Type: mem.Load, PageSize: mem.Page4K}
}

func drive(p *Prefetcher, base mem.Addr, offs []int) []prefetch.Candidate {
	var out []prefetch.Candidate
	for i, off := range offs {
		cb := func(prefetch.Candidate) {}
		if i == len(offs)-1 {
			cb = func(c prefetch.Candidate) { out = append(out, c) }
		}
		p.Operate(ctxAt(base+mem.Addr(off)*mem.BlockSize), cb)
	}
	return out
}

func TestMatchesForwardStride(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	// After accessing offsets 0,3,6 the map has −3 and −6 relative to 6:
	// stride 3 matches, prefetch 9.
	cands := drive(p, base, []int{0, 3, 6})
	if len(cands) == 0 {
		t.Fatal("no candidates after a +3 stride")
	}
	if cands[0].Addr != base+9*mem.BlockSize {
		t.Errorf("candidate %#x, want %#x", cands[0].Addr, base+9*mem.BlockSize)
	}
}

func TestMatchesBackwardStride(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	cands := drive(p, base, []int{40, 36, 32})
	found := false
	for _, c := range cands {
		if c.Addr == base+28*mem.BlockSize {
			found = true
		}
	}
	if !found {
		t.Errorf("backward stride continuation not proposed: %+v", cands)
	}
}

func TestNoPrefetchOnRandomMap(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	cands := drive(p, base, []int{0, 17, 5})
	for _, c := range cands {
		// 17 and 5 do not form a matched ±k,±2k pattern around 5 except by
		// coincidence; at most Degree candidates may appear.
		_ = c
	}
	if len(cands) > DefaultConfig().Degree {
		t.Errorf("more candidates (%d) than degree", len(cands))
	}
}

func TestPrefetchedBlocksNotReproposed(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	base := mem.Addr(0x40000000)
	drive(p, base, []int{0, 1, 2}) // proposes 3 (and maybe 4)
	var again []prefetch.Candidate
	p.Operate(ctxAt(base+2*mem.BlockSize), func(c prefetch.Candidate) { again = append(again, c) })
	for _, c := range again {
		if c.Addr == base+3*mem.BlockSize {
			t.Error("already-prefetched block proposed again")
		}
	}
}

func Test2MBZoneMatchesLargeStride(t *testing.T) {
	// A +100-block stride fits within one 2MB zone but spans 4KB zones.
	p4k := New(DefaultConfig(), mem.PageBits4K)
	cfg := DefaultConfig()
	cfg.MaxStride = 128
	p2m := New(cfg, mem.PageBits2M)
	base := mem.Addr(0x40000000)
	c4 := drive(p4k, base, []int{0, 100, 200})
	c2 := drive(p2m, base, []int{0, 100, 200})
	if len(c4) != 0 {
		t.Errorf("4KB zones matched a 100-block stride: %+v", c4)
	}
	found := false
	for _, c := range c2 {
		if c.Addr == base+300*mem.BlockSize {
			found = true
		}
	}
	if !found {
		t.Errorf("2MB zone missed the 100-block stride: %+v", c2)
	}
}

func TestZoneEvictionLRU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Zones = 2
	p := New(cfg, mem.PageBits4K)
	a := mem.Addr(0x40000000)
	b := a + mem.PageSize4K
	c := b + mem.PageSize4K
	p.Train(ctxAt(a))
	p.Train(ctxAt(b))
	p.Train(ctxAt(a)) // refresh a
	p.Train(ctxAt(c)) // evicts b
	if p.zoneFor(b).m[0] != stateInit {
		t.Error("evicted zone retained state")
	}
}

func TestNonDemandIgnored(t *testing.T) {
	p := New(DefaultConfig(), mem.PageBits4K)
	called := false
	p.Operate(prefetch.Context{Addr: 0x1000, Type: mem.Prefetch}, func(prefetch.Candidate) { called = true })
	if called {
		t.Error("non-demand access proposed candidates")
	}
}
