package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// EventKind is a prefetch lifecycle transition.
type EventKind uint8

// Lifecycle transitions. A prefetched block's life is
// issue→fill→(first-use | evict); drops never enter the cache.
const (
	// EvFill is an issued prefetch filling a cache level: Issue is the issue
	// cycle, At the fill-completion cycle.
	EvFill EventKind = iota + 1
	// EvUse is the first demand hit on a prefetched line (Late marks hits
	// that merged with the still-in-flight fill).
	EvUse
	// EvEvict is a prefetched line evicted without ever being demanded.
	EvEvict
	// EvDrop is a prefetch dropped at the MSHR demand reserve.
	EvDrop
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvFill:
		return "fill"
	case EvUse:
		return "use"
	case EvEvict:
		return "evict"
	case EvDrop:
		return "drop"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one prefetch lifecycle record with the page-size and
// boundary-crossing attribution the paper's analysis turns on.
type Event struct {
	Kind  EventKind `json:"-"`
	Level string    `json:"level"` // cache name ("L2", "LLC", ...)
	Block uint64    `json:"block"`
	PC    uint64    `json:"pc,omitempty"`
	// Issue is the prefetch issue cycle (fill events); At the cycle of the
	// event itself (fill completion, use, or evict).
	Issue int64 `json:"issue,omitempty"`
	At    int64 `json:"at"`
	// PageSize is the residing page's size as propagated by PPM ("4KB",
	// "2MB", "1GB"); CrossedPage marks prefetches whose target lies outside
	// the trigger's 4KB page — the accesses page-size awareness unlocks.
	PageSize    string `json:"page_size,omitempty"`
	CrossedPage bool   `json:"crossed_4k,omitempty"`
	Late        bool   `json:"late,omitempty"`
	PrefID      uint8  `json:"pref_id,omitempty"`
	Core        uint8  `json:"core"`
}

// jsonEvent adds the kind as a string for the JSONL export.
type jsonEvent struct {
	Kind string `json:"kind"`
	Event
}

// record is an Event packed pointer-free for the ring: the Level and
// PageSize strings are interned into small per-tracer tables and stored as
// indices, so the preallocated ring contains no heap pointers — the GC never
// scans it and allocating it is a plain memclr.
type record struct {
	kind     EventKind
	level    uint8 // index into Tracer.levels
	pageSize uint8 // 1+index into Tracer.pageSizes; 0 = unknown
	flags    uint8
	prefID   uint8
	core     uint8
	block    uint64
	pc       uint64
	issue    int64
	at       int64
}

const (
	flagCrossed = 1 << iota
	flagLate
)

// Tracer records lifecycle events into a preallocated ring: recording is a
// bounds check and a pointer-free struct store, no allocation, so tracing
// large runs keeps the newest Cap events instead of growing without bound.
// A nil Tracer drops events for free, which is the telemetry-off fast path.
//
// Tracer is not safe for concurrent Record calls; each simulation owns its
// tracer and exports after the run.
type Tracer struct {
	records []record
	head    int    // next write position
	total   uint64 // lifetime records

	levels    []string // interned Event.Level values
	pageSizes []string // interned Event.PageSize values
}

// DefaultTraceCap is the default event-ring capacity (~3MB of records).
const DefaultTraceCap = 1 << 16

// NewTracer creates a tracer keeping the newest capacity events
// (DefaultTraceCap if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{records: make([]record, 0, capacity)}
}

// intern returns s's index in table, appending on first sight. Tables hold
// a handful of distinct values (cache names, page sizes); the linear scan's
// first comparison is almost always an identical string header from the
// same call site. Index 255 absorbs any further values once a table is
// full, which cannot happen with the simulator's fixed name sets.
func intern(table *[]string, s string) uint8 {
	for i, v := range *table {
		if v == s {
			return uint8(i)
		}
	}
	if len(*table) >= 255 {
		return 255
	}
	*table = append(*table, s)
	return uint8(len(*table) - 1)
}

// Record appends an event, overwriting the oldest once the ring is full.
// Nil-safe: a nil tracer drops the event.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	t.total++
	r := record{
		kind:   e.Kind,
		level:  intern(&t.levels, e.Level),
		prefID: e.PrefID,
		core:   e.Core,
		block:  e.Block,
		pc:     e.PC,
		issue:  e.Issue,
		at:     e.At,
	}
	if e.PageSize != "" {
		r.pageSize = intern(&t.pageSizes, e.PageSize) + 1
	}
	if e.CrossedPage {
		r.flags |= flagCrossed
	}
	if e.Late {
		r.flags |= flagLate
	}
	if len(t.records) < cap(t.records) {
		t.records = append(t.records, r)
		return
	}
	t.records[t.head] = r
	t.head = (t.head + 1) % len(t.records)
}

// Total returns the lifetime number of records (including overwritten
// ones). Nil-safe.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.total - uint64(len(t.records))
}

// unpack reconstructs the exported event form of a ring record.
func (t *Tracer) unpack(r record) Event {
	e := Event{
		Kind:        r.kind,
		Level:       t.levels[r.level],
		Block:       r.block,
		PC:          r.pc,
		Issue:       r.issue,
		At:          r.at,
		CrossedPage: r.flags&flagCrossed != 0,
		Late:        r.flags&flagLate != 0,
		PrefID:      r.prefID,
		Core:        r.core,
	}
	if r.pageSize > 0 {
		e.PageSize = t.pageSizes[r.pageSize-1]
	}
	return e
}

// Events returns the retained events oldest-first. Nil-safe.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.records))
	for _, r := range t.records[t.head:] {
		out = append(out, t.unpack(r))
	}
	for _, r := range t.records[:t.head] {
		out = append(out, t.unpack(r))
	}
	return out
}

// WriteJSONL writes the retained events as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		if err := enc.Encode(jsonEvent{Kind: e.Kind.String(), Event: e}); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one trace_event record; see the Chrome Trace Event Format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   string         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the retained events in Chrome trace_event JSON
// (the array form chrome://tracing and Perfetto load directly). Fill events
// become complete ("X") slices spanning issue→fill; uses, evicts, and drops
// become instant ("i") events. Timestamps are simulated cycles presented as
// microseconds, emitted in non-decreasing order.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		ce := chromeEvent{
			PID: int(e.Core),
			TID: e.Level,
			Args: map[string]any{
				"block":     fmt.Sprintf("%#x", e.Block),
				"page_size": e.PageSize,
			},
		}
		if e.CrossedPage {
			ce.Args["crossed_4k"] = true
		}
		switch e.Kind {
		case EvFill:
			ce.Name = "prefetch"
			ce.Phase = "X"
			ce.TS = e.Issue
			ce.Dur = e.At - e.Issue
		default:
			ce.Name = e.Kind.String()
			ce.Phase = "i"
			ce.TS = e.At
			ce.Scope = "t"
			if e.Kind == EvUse && e.Late {
				ce.Name = "use (late)"
			}
		}
		out = append(out, ce)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
