package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Lookup resolves a metric computed earlier in the same epoch (registration
// order), plus the builtin "instructions" and "cycles" deltas. Unknown names
// resolve to 0.
type Lookup func(name string) float64

// probeKind distinguishes how a probe's epoch value is produced.
type probeKind uint8

const (
	counterProbe probeKind = iota // cumulative source → per-epoch delta
	gaugeProbe                    // instantaneous value at the boundary
	derivedProbe                  // computed from this epoch's values
)

type probe struct {
	name    string
	kind    probeKind
	u64     func() uint64
	f64     func() float64
	derived func(Lookup) float64
	last    uint64 // previous cumulative value (counter probes)
}

// Epoch is one sampled interval of the series.
type Epoch struct {
	Index        int                `json:"epoch"`
	Instructions uint64             `json:"instructions"`
	Cycles       uint64             `json:"cycles"`
	Metrics      map[string]float64 `json:"metrics"`
}

// Collector samples registered probes at epoch boundaries into a time
// series. Registration happens once at system construction; EndEpoch runs
// on the simulation goroutine at epoch boundaries only, so nothing here is
// on the per-access hot path. Latest and Series may be called concurrently
// with EndEpoch (psimd scrapes live runs).
type Collector struct {
	mu        sync.Mutex
	probes    []probe
	seen      map[string]bool
	epochs    []Epoch
	lastInstr uint64
	lastCycle uint64
	latest    map[string]float64
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{seen: map[string]bool{}}
}

func (c *Collector) register(p probe) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen[p.name] {
		panic(fmt.Sprintf("telemetry: duplicate probe %q", p.name))
	}
	c.seen[p.name] = true
	if p.kind == counterProbe {
		// Snapshot the current cumulative value as the baseline, so counts
		// accumulated before registration (e.g. during warm-up) never leak
		// into the first epoch's delta.
		p.last = p.u64()
	}
	c.probes = append(c.probes, p)
}

// AddCounter registers a cumulative counter source; each epoch records the
// delta since the previous boundary (the value at registration time is the
// baseline). Nil-safe.
func (c *Collector) AddCounter(name string, fn func() uint64) {
	c.register(probe{name: name, kind: counterProbe, u64: fn})
}

// AddGauge registers an instantaneous value sampled at each boundary.
// Nil-safe.
func (c *Collector) AddGauge(name string, fn func() float64) {
	c.register(probe{name: name, kind: gaugeProbe, f64: fn})
}

// AddDerived registers a metric computed from values already recorded this
// epoch (probes registered before it, plus "instructions" and "cycles").
// Nil-safe.
func (c *Collector) AddDerived(name string, fn func(Lookup) float64) {
	c.register(probe{name: name, kind: derivedProbe, derived: fn})
}

// EndEpoch closes the current epoch at the given cumulative instruction and
// cycle counts, sampling every probe. Nil-safe.
func (c *Collector) EndEpoch(instructions, cycles uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ep := Epoch{
		Index:        len(c.epochs),
		Instructions: instructions - c.lastInstr,
		Cycles:       cycles - c.lastCycle,
		Metrics:      make(map[string]float64, len(c.probes)),
	}
	c.lastInstr, c.lastCycle = instructions, cycles
	lookup := func(name string) float64 {
		switch name {
		case "instructions":
			return float64(ep.Instructions)
		case "cycles":
			return float64(ep.Cycles)
		}
		return ep.Metrics[name]
	}
	for i := range c.probes {
		p := &c.probes[i]
		switch p.kind {
		case counterProbe:
			cur := p.u64()
			ep.Metrics[p.name] = float64(cur - p.last)
			p.last = cur
		case gaugeProbe:
			ep.Metrics[p.name] = finite(p.f64())
		case derivedProbe:
			// Zero-cycle or zero-instruction epochs (back-to-back boundaries,
			// e.g. a final flush landing on a period edge) make naive rate
			// probes divide by zero. encoding/json rejects NaN/Inf outright,
			// so one bad sample would abort the whole JSONL export; record 0
			// instead — "no activity this epoch" — and keep the series
			// machine-readable.
			ep.Metrics[p.name] = finite(p.derived(lookup))
		}
	}
	c.epochs = append(c.epochs, ep)
	c.latest = ep.Metrics
}

// finite maps NaN and ±Inf to 0 so epoch series stay JSON-encodable.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Epochs returns the recorded series (shared backing array; callers must
// not mutate). Nil-safe.
func (c *Collector) Epochs() []Epoch {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epochs
}

// Latest returns the most recent epoch's metric values (nil before the
// first boundary). The map is the epoch's own and must not be mutated.
// Nil-safe.
func (c *Collector) Latest() map[string]float64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.latest
}

// WriteJSONL writes the series as one JSON object per line:
//
//	{"epoch":0,"instructions":100000,"cycles":182345,"metrics":{...}}
//
// Metric keys are sorted (Go's map marshalling), so the schema is stable
// and diffable.
func (c *Collector) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ep := range c.Epochs() {
		if err := enc.Encode(ep); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the series as CSV with a header of
// epoch,instructions,cycles followed by the metric names in sorted order.
func (c *Collector) WriteCSV(w io.Writer) error {
	epochs := c.Epochs()
	if len(epochs) == 0 {
		return nil
	}
	names := make([]string, 0, len(epochs[0].Metrics))
	for n := range epochs[0].Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	header := "epoch,instructions,cycles"
	for _, n := range names {
		header += "," + n
	}
	if _, err := io.WriteString(w, header+"\n"); err != nil {
		return err
	}
	for _, ep := range epochs {
		row := strconv.Itoa(ep.Index) + "," +
			strconv.FormatUint(ep.Instructions, 10) + "," +
			strconv.FormatUint(ep.Cycles, 10)
		for _, n := range names {
			row += "," + strconv.FormatFloat(ep.Metrics[n], 'g', -1, 64)
		}
		if _, err := io.WriteString(w, row+"\n"); err != nil {
			return err
		}
	}
	return nil
}
