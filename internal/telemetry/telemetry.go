// Package telemetry is the simulator's zero-dependency instrumentation
// layer. It provides three pieces:
//
//   - Registry primitives (Counter, Gauge, Histogram): allocation-free
//     atomic metrics that components bump on their hot paths and exporters
//     read concurrently.
//   - Collector: an epoch-series sampler. Components register probes once
//     (cumulative counters, instantaneous gauges, or derived ratios); the
//     run loop calls EndEpoch at each epoch boundary and the collector turns
//     cumulative values into per-epoch deltas, building a time series
//     exportable as JSONL or CSV.
//   - Tracer (tracer.go): a preallocated ring of prefetch lifecycle events
//     (issue→fill→first-use/evict) exportable as JSONL or Chrome
//     trace_event JSON.
//
// Everything is observational: probes read component state, they never
// mutate it, so an instrumented run retires the same instructions in the
// same cycles as an uninstrumented one. All exported types tolerate nil
// receivers on their hot-path methods so call sites need no telemetry-off
// branches.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe (zero).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float value, stored atomically so scrapers can
// read it from other goroutines.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the gauge value. Nil-safe (zero).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into explicit upper-bound buckets plus an
// overflow bucket. Bounds are inclusive upper edges and must be ascending.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1: last is the overflow bucket
	sum    atomic.Uint64
	n      atomic.Uint64
}

// NewHistogram creates a histogram with the given ascending inclusive
// upper-bound bucket edges.
func NewHistogram(bounds ...uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one observation. Nil-safe.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Bucket is one histogram bucket: observations ≤ UpperBound (the overflow
// bucket has UpperBound 0 and Overflow true).
type Bucket struct {
	UpperBound uint64
	Overflow   bool
	Count      uint64
}

// Buckets returns a snapshot of the bucket counts.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	out := make([]Bucket, 0, len(h.bounds)+1)
	for i, b := range h.bounds {
		out = append(out, Bucket{UpperBound: b, Count: h.counts[i].Load()})
	}
	out = append(out, Bucket{Overflow: true, Count: h.counts[len(h.bounds)].Load()})
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Registry is a named collection of metrics. Components register metrics
// once at construction; exporters enumerate them at scrape time. Lookups
// and registrations are concurrency-safe; the returned metric objects are
// themselves atomic, so hot paths touch no locks.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls ignore the bounds).
func (r *Registry) Histogram(name string, bounds ...uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.histograms[name] = h
	}
	return h
}

// Each calls fn for every counter and gauge in name order (histograms are
// exported by their owners, which know how to render buckets).
func (r *Registry) Each(fn func(name string, value float64)) {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	counters := r.counters
	gauges := r.gauges
	r.mu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		if c, ok := counters[n]; ok {
			fn(n, float64(c.Value()))
		} else {
			fn(n, gauges[n].Value())
		}
	}
}
