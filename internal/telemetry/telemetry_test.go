package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/tracecheck"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(3.5)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Buckets() != nil {
		t.Fatal("nil histogram must be empty")
	}
}

func TestDisabledHotPathAllocatesNothing(t *testing.T) {
	var c *Counter
	var tr *Tracer
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		tr.Record(Event{Kind: EvFill})
	}); n != 0 {
		t.Fatalf("disabled telemetry allocated %.1f objects per op", n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 4, 16)
	for _, v := range []uint64{0, 1, 2, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	b := h.Buckets()
	// ≤1: {0,1}; ≤4: {2,4}; ≤16: {5,16}; overflow: {17,1000}.
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if b[i].Count != w {
			t.Errorf("bucket %d count = %d, want %d", i, b[i].Count, w)
		}
	}
	if !b[3].Overflow {
		t.Error("last bucket should be the overflow bucket")
	}
	if h.Count() != 8 || h.Sum() != 0+1+2+4+5+16+17+1000 {
		t.Errorf("count/sum = %d/%d", h.Count(), h.Sum())
	}
}

func TestRegistryReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	a, b := r.Counter("x"), r.Counter("x")
	if a != b {
		t.Fatal("registry must intern counters by name")
	}
	a.Inc()
	r.Gauge("y").Set(2)
	var got []string
	r.Each(func(name string, v float64) { got = append(got, name) })
	if strings.Join(got, ",") != "x,y" {
		t.Fatalf("Each order = %v, want [x y]", got)
	}
}

func TestCollectorDeltasAndDerived(t *testing.T) {
	var cum uint64
	c := NewCollector()
	c.AddCounter("misses", func() uint64 { return cum })
	c.AddGauge("level", func() float64 { return float64(cum) / 2 })
	c.AddDerived("mpki", func(get Lookup) float64 {
		return get("misses") / get("instructions") * 1000
	})

	cum = 10
	c.EndEpoch(1000, 2000)
	cum = 30
	c.EndEpoch(2000, 5000)

	eps := c.Epochs()
	if len(eps) != 2 {
		t.Fatalf("epochs = %d, want 2", len(eps))
	}
	if eps[0].Metrics["misses"] != 10 || eps[1].Metrics["misses"] != 20 {
		t.Errorf("counter deltas = %v, %v; want 10, 20",
			eps[0].Metrics["misses"], eps[1].Metrics["misses"])
	}
	if eps[1].Instructions != 1000 || eps[1].Cycles != 3000 {
		t.Errorf("epoch 1 instr/cycles = %d/%d", eps[1].Instructions, eps[1].Cycles)
	}
	if eps[1].Metrics["mpki"] != 20 {
		t.Errorf("derived mpki = %v, want 20", eps[1].Metrics["mpki"])
	}
	if eps[1].Metrics["level"] != 15 {
		t.Errorf("gauge = %v, want 15", eps[1].Metrics["level"])
	}
	if c.Latest()["misses"] != 20 {
		t.Errorf("Latest misses = %v", c.Latest()["misses"])
	}
}

// A zero-cycle (or zero-instruction) epoch turns naive rate probes into 0/0.
// The collector must record 0 instead of NaN/Inf: encoding/json rejects
// non-finite values, so a single poisoned sample would abort the whole JSONL
// export.
func TestCollectorZeroCycleEpochStaysFinite(t *testing.T) {
	c := NewCollector()
	c.AddDerived("ipc", func(get Lookup) float64 {
		return get("instructions") / get("cycles") // unguarded on purpose
	})
	c.AddDerived("inf", func(get Lookup) float64 {
		return (get("instructions") + 1) / get("cycles")
	})
	c.AddGauge("gnan", func() float64 { return math.NaN() })

	c.EndEpoch(1000, 2000)
	c.EndEpoch(1000, 2000) // back-to-back boundary: zero-delta epoch

	eps := c.Epochs()
	if len(eps) != 2 {
		t.Fatalf("epochs = %d, want 2", len(eps))
	}
	if eps[1].Cycles != 0 || eps[1].Instructions != 0 {
		t.Fatalf("epoch 1 deltas = %d/%d, want 0/0", eps[1].Instructions, eps[1].Cycles)
	}
	for _, name := range []string{"ipc", "inf", "gnan"} {
		if v := eps[1].Metrics[name]; v != 0 {
			t.Errorf("zero-cycle epoch %s = %v, want 0", name, v)
		}
	}
	if v := eps[0].Metrics["ipc"]; v != 0.5 {
		t.Errorf("normal epoch ipc = %v, want 0.5", v)
	}

	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL after zero-cycle epoch: %v", err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Errorf("JSONL lines = %d, want 2", lines)
	}
}

func TestCollectorJSONLRoundTrips(t *testing.T) {
	c := NewCollector()
	n := uint64(0)
	c.AddCounter("n", func() uint64 { return n })
	n = 5
	c.EndEpoch(100, 200)
	n = 9
	c.EndEpoch(200, 400)

	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	for i, line := range lines {
		var ep Epoch
		if err := json.Unmarshal([]byte(line), &ep); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if ep.Index != i {
			t.Errorf("line %d epoch index = %d", i, ep.Index)
		}
	}
}

func TestCollectorCSV(t *testing.T) {
	c := NewCollector()
	v := uint64(0)
	c.AddCounter("b", func() uint64 { return v })
	c.AddCounter("a", func() uint64 { return v * 2 })
	v = 3
	c.EndEpoch(10, 20)

	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "epoch,instructions,cycles,a,b" {
		t.Errorf("header = %q (metric names must be sorted)", lines[0])
	}
	if lines[1] != "0,10,20,6,3" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestTracerRingKeepsNewest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Kind: EvFill, At: int64(i)})
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d, want 4", len(ev))
	}
	for i, e := range ev {
		if e.At != int64(6+i) {
			t.Errorf("event %d at %d, want %d (oldest-first)", i, e.At, 6+i)
		}
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Errorf("total/dropped = %d/%d", tr.Total(), tr.Dropped())
	}
}

func TestTracerJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{Kind: EvFill, Level: "L2", Block: 0x1000, Issue: 5, At: 90,
		PageSize: "2MB", CrossedPage: true, Core: 0})
	tr.Record(Event{Kind: EvUse, Level: "L2", Block: 0x1000, At: 120, Late: true})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["kind"] != "fill" || first["crossed_4k"] != true || first["page_size"] != "2MB" {
		t.Errorf("fill event = %v", first)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["kind"] != "use" || second["late"] != true {
		t.Errorf("use event = %v", second)
	}
}

// TestChromeTraceStructure pins the acceptance criterion: a JSON array of
// ph/ts/name events with non-decreasing timestamps.
func TestChromeTraceStructure(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Event{Kind: EvFill, Level: "L2", Block: 0x40, Issue: 100, At: 250})
	tr.Record(Event{Kind: EvUse, Level: "L2", Block: 0x40, At: 400})
	tr.Record(Event{Kind: EvFill, Level: "LLC", Block: 0x80, Issue: 50, At: 300})
	tr.Record(Event{Kind: EvEvict, Level: "L2", Block: 0xc0, At: 120})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// Structural validation is shared with the dtrace exporter: one
	// definition of Perfetto-loadable across the repo.
	events := tracecheck.ValidateChromeTrace(t, buf.Bytes())
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
}
