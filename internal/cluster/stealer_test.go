package cluster

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestPendingClaimDeliver(t *testing.T) {
	tb := NewPendingTable()
	p := tb.Register("k1", []byte(`{"x":1}`), "")
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
	items := tb.Claim(8)
	if len(items) != 1 || items[0].Key != "k1" || string(items[0].Payload) != `{"x":1}` {
		t.Fatalf("Claim = %+v", items)
	}
	if tb.Len() != 0 {
		t.Fatalf("claimed item still counted stealable: Len = %d", tb.Len())
	}
	if tb.Claim(8) != nil {
		t.Fatal("double claim handed the same work out twice")
	}
	if !tb.Deliver("k1", []byte("result")) {
		t.Fatal("Deliver found no waiter")
	}
	select {
	case <-p.Done():
	default:
		t.Fatal("Done not closed after Deliver")
	}
	if string(p.Result()) != "result" {
		t.Fatalf("Result = %q", p.Result())
	}
	if tb.Deliver("k1", []byte("late")) {
		t.Fatal("stale re-delivery claimed to find waiters")
	}
}

// TestPendingDuplicateWaiters: the same key registered twice is one
// stealable item, and one delivery wakes every waiter with the same bytes —
// the in-cluster form of the cache's single-flight dedup.
func TestPendingDuplicateWaiters(t *testing.T) {
	tb := NewPendingTable()
	p1 := tb.Register("k", []byte("{}"), "")
	p2 := tb.Register("k", []byte("{}"), "")
	if tb.Len() != 1 {
		t.Fatalf("duplicate key counted twice: Len = %d", tb.Len())
	}
	if items := tb.Claim(8); len(items) != 1 {
		t.Fatalf("Claim = %d items, want 1", len(items))
	}
	var wg sync.WaitGroup
	for _, p := range []*Pending{p1, p2} {
		wg.Add(1)
		go func(p *Pending) {
			defer wg.Done()
			body, ok := p.Wait(context.Background(), time.Second)
			if !ok || string(body) != "shared" {
				t.Errorf("Wait = %q, %v", body, ok)
			}
		}(p)
	}
	time.Sleep(10 * time.Millisecond)
	tb.Deliver("k", []byte("shared"))
	wg.Wait()
}

// TestPendingWithdraw: a waiter that gets a local slot first takes the work
// back (the steal never happened); one that lost the race to a thief must
// wait instead of duplicating the computation.
func TestPendingWithdraw(t *testing.T) {
	tb := NewPendingTable()
	p := tb.Register("k", []byte("{}"), "")
	if !p.Withdraw() {
		t.Fatal("unclaimed Withdraw refused")
	}
	if tb.Len() != 0 {
		t.Fatal("withdrawn key still stealable")
	}

	p = tb.Register("k2", []byte("{}"), "")
	tb.Claim(1)
	if p.Withdraw() {
		t.Fatal("Withdraw succeeded on a claimed key — the sim would run twice")
	}
}

// TestPendingWaitTimeout: a dead thief must not wedge the victim — Wait
// gives up after the steal timeout and the key's late delivery is dropped.
func TestPendingWaitTimeout(t *testing.T) {
	tb := NewPendingTable()
	p := tb.Register("k", []byte("{}"), "")
	tb.Claim(1)
	start := time.Now()
	if _, ok := p.Wait(context.Background(), 20*time.Millisecond); ok {
		t.Fatal("Wait reported a result nobody delivered")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Wait ignored its timeout")
	}
	if tb.Deliver("k", []byte("late")) {
		t.Fatal("delivery after timeout found a waiter")
	}
}

// TestPendingAbandonKeepsOtherWaiters: one waiter's context death must not
// tear down a delivery another live waiter is depending on.
func TestPendingAbandonKeepsOtherWaiters(t *testing.T) {
	tb := NewPendingTable()
	p1 := tb.Register("k", []byte("{}"), "")
	p2 := tb.Register("k", []byte("{}"), "")
	tb.Claim(1)
	p1.Abandon()
	if !tb.Deliver("k", []byte("res")) {
		t.Fatal("delivery dropped though a live waiter remains")
	}
	if body, ok := p2.Wait(context.Background(), time.Second); !ok || string(body) != "res" {
		t.Fatalf("surviving waiter got %q, %v", body, ok)
	}

	// With every waiter gone the entry disappears and delivery is stale.
	p3 := tb.Register("k2", []byte("{}"), "")
	tb.Claim(1)
	p3.Abandon()
	if tb.Deliver("k2", []byte("res")) {
		t.Fatal("delivery to fully abandoned key found waiters")
	}
}
