// Package cluster turns N psimd nodes into one logical simulation service.
// It provides the pieces the service layer composes: a consistent-hash ring
// that assigns every content-addressed simulation key an owner node, a
// gossip-light membership table driven by peer heartbeats, an HTTP transport
// for the cluster protocol (heartbeats, checksum-verified cache entry
// transfer, work stealing), and a pending-work table that lets idle peers
// steal queued simulations from overloaded ones.
//
// The package deliberately knows nothing about simulations: work items and
// results travel as opaque JSON payloads, and the owning process wires
// storage and execution in through Hooks. That keeps the protocol reusable
// and the dependency arrow pointing one way (service → cluster, never back).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultVirtualNodes is the number of ring points per member. More points
// flatten the load distribution (at 160, an 8-node ring keeps the max/min
// keyspace share under ~1.3x) at a small cost in ring-build time; lookups
// stay O(log(members·vnodes)).
const DefaultVirtualNodes = 160

// Ring is an immutable consistent-hash ring over node IDs. A key is owned by
// the first virtual node clockwise of its hash. Because membership changes
// only add or remove one node's virtual points, they remap only the keys
// whose clockwise successor changed — on average K/N of K keys for an
// N-node ring — instead of rehashing the world.
type Ring struct {
	points []ringPoint // sorted by hash
	ids    []string    // distinct member IDs, sorted
}

type ringPoint struct {
	hash uint64
	id   string
}

// hash64 maps a string to a point on the ring. SHA-256 is already the
// cluster's key currency (simcache keys are hex SHA-256 digests); reusing it
// here keeps the placement independent of Go's seeded runtime hashes, so
// every node computes the identical ring.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over ids with the given number of virtual nodes per
// member (DefaultVirtualNodes if vnodes <= 0). Duplicate IDs are collapsed.
// An empty id set yields an empty ring whose Owner returns "".
func NewRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	var distinct []string
	for _, id := range ids {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		distinct = append(distinct, id)
	}
	sort.Strings(distinct)
	r := &Ring{ids: distinct}
	if len(distinct) == 0 {
		return r
	}
	r.points = make([]ringPoint, 0, len(distinct)*vnodes)
	var buf [10]byte
	for _, id := range distinct {
		for v := 0; v < vnodes; v++ {
			binary.BigEndian.PutUint16(buf[:2], uint16(v))
			h := sha256.New()
			h.Write(buf[:2])
			h.Write([]byte(id))
			var sum [sha256.Size]byte
			h.Sum(sum[:0])
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(sum[:8]), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full-width hash collision is astronomically unlikely; break the
		// tie on ID so the order is still deterministic everywhere.
		return r.points[i].id < r.points[j].id
	})
	return r
}

// Members returns the distinct member IDs, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.ids...) }

// Len reports the number of members.
func (r *Ring) Len() int { return len(r.ids) }

// Owner returns the member owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.successor(hash64(key))].id
}

// successor finds the index of the first point at or clockwise of h.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the smallest point owns the top arc
	}
	return i
}

// OwnerOrder returns up to n distinct members in preference order for key:
// the owner first, then the members whose virtual nodes follow clockwise.
// This is the failover order — when the owner is unreachable, the next entry
// is the natural fallback every node agrees on.
func (r *Ring) OwnerOrder(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.ids) {
		n = len(r.ids)
	}
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for i, start := 0, r.successor(hash64(key)); len(out) < n && i < len(r.points); i++ {
		id := r.points[(start+i)%len(r.points)].id
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
