package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

// testNode is a cluster node mounted on a live httptest server, with an
// in-memory entry store behind its hooks. The URL is only known after the
// listener exists, so the handler is bound late through the mux indirection.
type testNode struct {
	*Node
	srv   *httptest.Server
	mu    sync.Mutex
	store map[string][]byte
	execs int // Execute invocations (thief-side work counter)
}

// startTestNodes builds n interconnected nodes named prefix0..prefixN-1,
// each seeded with all others, with background loops disabled (tests drive
// HeartbeatOnce/StealOnce).
func startTestNodes(t *testing.T, prefix string, n int, execute func(item StealItem) ([]byte, error)) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	infos := make([]NodeInfo, n)
	for i := range nodes {
		tn := &testNode{store: map[string][]byte{}}
		mux := http.NewServeMux()
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			tn.Handler().ServeHTTP(w, r)
		})
		tn.srv = httptest.NewServer(mux)
		t.Cleanup(tn.srv.Close)
		infos[i] = NodeInfo{ID: fmt.Sprintf("%s%d", prefix, i), URL: tn.srv.URL}
		nodes[i] = tn
	}
	for i, tn := range nodes {
		tn := tn
		hooks := Hooks{
			FetchLocal: func(key string) ([]byte, bool) {
				tn.mu.Lock()
				defer tn.mu.Unlock()
				b, ok := tn.store[key]
				return b, ok
			},
			StoreEntry: func(key string, body []byte) error {
				tn.mu.Lock()
				tn.store[key] = body
				tn.mu.Unlock()
				tn.Pending().Deliver(key, body)
				return nil
			},
			IdleSlots: func() int { return 4 },
		}
		if execute != nil {
			hooks.Execute = func(ctx context.Context, item StealItem) ([]byte, error) {
				tn.mu.Lock()
				tn.execs++
				tn.mu.Unlock()
				return execute(item)
			}
		}
		tn.Node = NewNode(Options{
			Self:              infos[i],
			Seeds:             infos,
			HeartbeatInterval: -1,
			StealInterval:     -1,
		}, hooks)
		t.Cleanup(tn.Close)
	}
	return nodes
}

// TestHeartbeatGossip: a two-way heartbeat exchanges drain state, and a
// third node only one member knows spreads to the rest through gossip.
func TestHeartbeatGossip(t *testing.T) {
	nodes := startTestNodes(t, "n", 2, nil)
	a, b := nodes[0], nodes[1]

	// A late joiner c announces itself to a only.
	c := startTestNodes(t, "late", 1, nil)[0]
	req := HeartbeatRequest{From: c.Self(), Peers: c.Membership().Peers()}
	resp, err := (&Transport{}).Heartbeat(context.Background(), a.srv.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.From.ID != "n0" {
		t.Fatalf("heartbeat answered by %s, want n0", resp.From.ID)
	}
	if got := a.Membership().Ring().Members(); len(got) != 3 {
		t.Fatalf("a's ring after c's heartbeat = %v, want 3 members", got)
	}

	// a heartbeats b: b learns about c second-hand (alive-vouched → routable).
	a.HeartbeatOnce(context.Background())
	if got := b.Membership().Ring().Members(); len(got) != 3 {
		t.Fatalf("b's ring after gossip = %v, want 3 members (c via rumor)", got)
	}

	// Drain a; its next heartbeat tells b, which reroutes immediately.
	a.Leave(context.Background())
	bView := b.Membership().Ring().Members()
	for _, id := range bView {
		if id == a.Self().ID {
			t.Fatalf("draining node %s still on b's ring: %v", a.Self().ID, bView)
		}
	}
}

// TestHeartbeatFailureThreshold: an unreachable peer leaves the ring after
// FailThreshold missed rounds and rejoins on recovery.
func TestHeartbeatFailureThreshold(t *testing.T) {
	nodes := startTestNodes(t, "n", 2, nil)
	a, b := nodes[0], nodes[1]
	b.srv.Close() // b goes dark

	for i := 0; i < 3; i++ { // default FailThreshold = 3
		a.HeartbeatOnce(context.Background())
	}
	if got := a.Membership().Ring().Members(); !reflect.DeepEqual(got, []string{a.Self().ID}) {
		t.Fatalf("dead peer still routable after threshold: %v", got)
	}
	_ = b
}

// TestCacheTransfer: GET serves stored entries with a checksum; PUT verifies
// the checksum and rejects corruption instead of poisoning the store.
func TestCacheTransfer(t *testing.T) {
	nodes := startTestNodes(t, "n", 2, nil)
	a, b := nodes[0], nodes[1]
	entry := []byte(`{"result":42}`)
	a.mu.Lock()
	a.store["deadbeef"] = entry
	a.mu.Unlock()

	tr := &Transport{}
	body, ok, err := tr.FetchEntry(context.Background(), a.srv.URL, "deadbeef")
	if err != nil || !ok || string(body) != string(entry) {
		t.Fatalf("FetchEntry = %q, %v, %v", body, ok, err)
	}
	if a.Stats().EntriesServed != 1 {
		t.Errorf("EntriesServed = %d, want 1", a.Stats().EntriesServed)
	}
	if _, ok, err := tr.FetchEntry(context.Background(), a.srv.URL, "missing"); ok || err != nil {
		t.Fatalf("missing key: ok=%v err=%v, want clean miss", ok, err)
	}

	if err := tr.DeliverEntry(context.Background(), b.srv.URL, "deadbeef", entry); err != nil {
		t.Fatalf("DeliverEntry: %v", err)
	}
	b.mu.Lock()
	got := b.store["deadbeef"]
	b.mu.Unlock()
	if string(got) != string(entry) {
		t.Fatalf("delivered entry = %q", got)
	}

	// Corrupted transfer: body does not match the declared checksum.
	hr, _ := http.NewRequest(http.MethodPut, b.srv.URL+PathCache+"bad", nil)
	hr.Body = http.NoBody
	hr.Header.Set(ChecksumHeader, Checksum([]byte("other bytes")))
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt PUT accepted with HTTP %d", resp.StatusCode)
	}
}

// TestStealRoundTrip: a victim's pending work is claimed by an idle peer,
// executed there, and the result delivered back wakes the victim's waiter.
func TestStealRoundTrip(t *testing.T) {
	nodes := startTestNodes(t, "n", 2, func(item StealItem) ([]byte, error) {
		return []byte(`computed:` + item.Key), nil
	})
	victim, thief := nodes[0], nodes[1]

	p := victim.Pending().Register("job-1", json.RawMessage(`{"work":true}`), "")
	done := make(chan []byte, 1)
	go func() {
		body, ok := p.Wait(context.Background(), 5*time.Second)
		if !ok {
			body = nil
		}
		done <- body
	}()

	if got := thief.StealOnce(context.Background()); got != 1 {
		t.Fatalf("StealOnce = %d, want 1", got)
	}
	select {
	case body := <-done:
		if string(body) != "computed:job-1" {
			t.Fatalf("stolen result = %q", body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("victim never woke")
	}
	if victim.Stats().StolenFromUs != 1 || thief.Stats().StolenByUs != 1 {
		t.Fatalf("steal counters: victim %+v thief %+v", victim.Stats(), thief.Stats())
	}
	// The victim's store received the entry through the same PUT path.
	victim.mu.Lock()
	stored := victim.store["job-1"]
	victim.mu.Unlock()
	if string(stored) != "computed:job-1" {
		t.Fatalf("victim store after steal = %q", stored)
	}
}

// TestStealRespectsDrainingAndIdle: a draining node does not thieve, and a
// node with no idle slots does not either.
func TestStealSkipsWhenBusyOrDraining(t *testing.T) {
	nodes := startTestNodes(t, "n", 2, func(item StealItem) ([]byte, error) { return []byte("x"), nil })
	victim, thief := nodes[0], nodes[1]
	victim.Pending().Register("job", json.RawMessage(`{}`), "")

	thief.Membership().SetDraining(true)
	if got := thief.StealOnce(context.Background()); got != 0 {
		t.Fatalf("draining thief stole %d items", got)
	}
	thief.Membership().SetDraining(false)
	thief.hooks.IdleSlots = func() int { return 0 }
	if got := thief.StealOnce(context.Background()); got != 0 {
		t.Fatalf("busy thief stole %d items", got)
	}
}

func TestParsePeers(t *testing.T) {
	got, err := ParsePeers(" a=http://h1:8080 , http://h2:9090/ ,,b=https://h3 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeInfo{
		{ID: "a", URL: "http://h1:8080"},
		{ID: "h2:9090", URL: "http://h2:9090"},
		{ID: "b", URL: "https://h3"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParsePeers = %+v, want %+v", got, want)
	}
	if _, err := ParsePeers("nonsense"); err == nil {
		t.Error("schemeless peer accepted")
	}
	if out, err := ParsePeers(""); err != nil || out != nil {
		t.Errorf("empty peers = %v, %v", out, err)
	}
}
