package cluster

import (
	"fmt"
	"testing"
)

// testKeys returns n deterministic pseudo-content-addressed keys shaped like
// real simcache keys (hex digests are what the ring routes in production).
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", uint64(i)*0x9e3779b97f4a7c15+0xabcdef)
	}
	return keys
}

func nodeIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%02d", i)
	}
	return ids
}

// TestRingUniformity pins the load-balance guarantee the virtual-node count
// was chosen for: across 8 members and a large keyspace, no member owns more
// than ~1.4x the mean and none less than ~0.6x — so the max/min spread stays
// well under 2x and a cluster's throughput scales with its node count
// instead of being gated by one hot member.
func TestRingUniformity(t *testing.T) {
	const members, nkeys = 8, 40000
	r := NewRing(nodeIDs(members), DefaultVirtualNodes)
	load := map[string]int{}
	for _, k := range testKeys(nkeys) {
		owner := r.Owner(k)
		if owner == "" {
			t.Fatalf("key %s has no owner on a populated ring", k)
		}
		load[owner]++
	}
	if len(load) != members {
		t.Fatalf("only %d of %d members own keys: %v", len(load), members, load)
	}
	mean := float64(nkeys) / members
	minLoad, maxLoad := nkeys, 0
	for id, n := range load {
		t.Logf("%s: %d keys (%.2fx mean)", id, n, float64(n)/mean)
		if n < minLoad {
			minLoad = n
		}
		if n > maxLoad {
			maxLoad = n
		}
	}
	if f := float64(maxLoad) / mean; f > 1.4 {
		t.Errorf("hottest member owns %.2fx the mean share (max %d, mean %.0f); want <= 1.4x", f, maxLoad, mean)
	}
	if f := float64(minLoad) / mean; f < 0.6 {
		t.Errorf("coldest member owns %.2fx the mean share (min %d, mean %.0f); want >= 0.6x", f, minLoad, mean)
	}
	if ratio := float64(maxLoad) / float64(minLoad); ratio > 2.0 {
		t.Errorf("max/min load ratio %.2f; want <= 2.0", ratio)
	}
}

// TestRingBoundedRemapJoin verifies the consistent-hash contract on growth:
// adding a 9th member moves only the keys the new member now owns — roughly
// K/N of them — and every moved key moves TO the new member, never between
// survivors. (A modulo-hash table would reshuffle ~8/9 of the keyspace.)
func TestRingBoundedRemapJoin(t *testing.T) {
	const nkeys = 40000
	ids := nodeIDs(8)
	before := NewRing(ids, DefaultVirtualNodes)
	after := NewRing(append(append([]string{}, ids...), "node-joining"), DefaultVirtualNodes)

	moved := 0
	for _, k := range testKeys(nkeys) {
		oldOwner, newOwner := before.Owner(k), after.Owner(k)
		if oldOwner == newOwner {
			continue
		}
		moved++
		if newOwner != "node-joining" {
			t.Fatalf("key %s moved %s -> %s, bypassing the joining node", k, oldOwner, newOwner)
		}
	}
	// Expected share: K/9. Allow 2x slack for virtual-node placement variance.
	bound := 2 * nkeys / 9
	if moved > bound {
		t.Errorf("join remapped %d of %d keys; want <= %d (~K/N)", moved, nkeys, bound)
	}
	if moved == 0 {
		t.Error("join remapped nothing; the new member owns no keyspace")
	}
	t.Logf("join moved %d/%d keys (ideal %d)", moved, nkeys, nkeys/9)
}

// TestRingBoundedRemapLeave is the mirror: removing a member strands only
// its own keys, which redistribute across survivors; keys owned by survivors
// never move.
func TestRingBoundedRemapLeave(t *testing.T) {
	const nkeys = 40000
	ids := nodeIDs(8)
	before := NewRing(ids, DefaultVirtualNodes)
	after := NewRing(ids[:7], DefaultVirtualNodes) // node-07 leaves

	moved := 0
	for _, k := range testKeys(nkeys) {
		oldOwner, newOwner := before.Owner(k), after.Owner(k)
		if oldOwner == newOwner {
			continue
		}
		moved++
		if oldOwner != "node-07" {
			t.Fatalf("key %s moved %s -> %s though its owner never left", k, oldOwner, newOwner)
		}
	}
	bound := 2 * nkeys / 8
	if moved > bound {
		t.Errorf("leave remapped %d of %d keys; want <= %d (~K/N)", moved, nkeys, bound)
	}
	t.Logf("leave moved %d/%d keys (ideal %d)", moved, nkeys, nkeys/8)
}

// TestRingDeterminism: every node must build byte-identical rings from the
// same member set, regardless of input order, or routing would disagree.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"a", "b", "c"}, 64)
	b := NewRing([]string{"c", "a", "b", "a"}, 64) // shuffled + duplicate
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("Len: got %d and %d, want 3", a.Len(), b.Len())
	}
	for _, k := range testKeys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on %s: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil, 0).Owner("k"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	one := NewRing([]string{"solo"}, 0)
	for _, k := range testKeys(10) {
		if got := one.Owner(k); got != "solo" {
			t.Errorf("single ring owner(%s) = %q, want solo", k, got)
		}
	}
}

func TestOwnerOrder(t *testing.T) {
	r := NewRing(nodeIDs(5), DefaultVirtualNodes)
	for _, k := range testKeys(100) {
		order := r.OwnerOrder(k, 3)
		if len(order) != 3 {
			t.Fatalf("OwnerOrder(%s, 3) = %v, want 3 distinct members", k, order)
		}
		if order[0] != r.Owner(k) {
			t.Fatalf("OwnerOrder(%s)[0] = %s, want owner %s", k, order[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, id := range order {
			if seen[id] {
				t.Fatalf("OwnerOrder(%s) repeats %s: %v", k, id, order)
			}
			seen[id] = true
		}
	}
	if got := r.OwnerOrder("k", 99); len(got) != 5 {
		t.Errorf("OwnerOrder capped at %d members, want 5", len(got))
	}
}
