package cluster

import (
	"sort"
	"sync"
	"time"
)

// NodeInfo identifies one cluster member: a stable ID (the ring is hashed
// over IDs) and the base URL peers use to reach it.
type NodeInfo struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// PeerState is the gossiped view of one member: identity plus liveness. It
// is what heartbeats exchange, so a node learns about members it was never
// seeded with.
type PeerState struct {
	NodeInfo
	// Alive is the reporter's current belief. A dead report never kills a
	// peer the receiver can still reach (liveness is learned first-hand),
	// but it does introduce unknown members as probe candidates.
	Alive bool `json:"alive"`
	// Draining marks a member that is shutting down gracefully: it still
	// answers, but must leave the ring so no new work routes to it.
	Draining bool `json:"draining"`
}

// peer is the membership table's record of one remote member.
type peer struct {
	info     NodeInfo
	alive    bool
	draining bool
	fails    int // consecutive failed probes
	lastSeen time.Time
}

// Membership tracks the cluster's member set and derives the routing ring
// from it. Seeds (and self) start alive: a statically configured cluster
// routes correctly from the first request, and heartbeats then handle
// failures, drains, and late joiners. All methods are safe for concurrent
// use.
type Membership struct {
	self   NodeInfo
	vnodes int

	mu       sync.Mutex
	peers    map[string]*peer // keyed by NodeInfo.ID, self excluded
	draining bool             // self
	ring     *Ring            // rebuilt on any liveness change
	epoch    uint64           // bumped per rebuild, for cheap change detection
}

// NewMembership builds a table for self with the given seed peers (self is
// filtered out of seeds, so a shared static peer list works verbatim on
// every node).
func NewMembership(self NodeInfo, seeds []NodeInfo, vnodes int) *Membership {
	m := &Membership{self: self, vnodes: vnodes, peers: map[string]*peer{}}
	now := time.Now()
	for _, s := range seeds {
		if s.ID == "" || s.ID == self.ID {
			continue
		}
		m.peers[s.ID] = &peer{info: s, alive: true, lastSeen: now}
	}
	m.rebuildLocked()
	return m
}

// Self returns this node's identity.
func (m *Membership) Self() NodeInfo { return m.self }

// rebuildLocked recomputes the ring over self plus every alive, non-draining
// peer. Callers hold m.mu.
func (m *Membership) rebuildLocked() {
	ids := make([]string, 0, len(m.peers)+1)
	if !m.draining {
		ids = append(ids, m.self.ID)
	}
	for id, p := range m.peers {
		if p.alive && !p.draining {
			ids = append(ids, id)
		}
	}
	m.ring = NewRing(ids, m.vnodes)
	m.epoch++
}

// Ring returns the current routing ring (immutable; a membership change
// installs a new one).
func (m *Membership) Ring() *Ring {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring
}

// Lookup resolves a member ID (self included) to its info.
func (m *Membership) Lookup(id string) (NodeInfo, bool) {
	if id == m.self.ID {
		return m.self, true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.peers[id]; ok {
		return p.info, true
	}
	return NodeInfo{}, false
}

// Peers returns every known remote member's state, sorted by ID.
func (m *Membership) Peers() []PeerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerState, 0, len(m.peers))
	for _, p := range m.peers {
		out = append(out, PeerState{NodeInfo: p.info, Alive: p.alive, Draining: p.draining})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AlivePeers returns the remote members currently routable (alive and not
// draining), sorted by ID.
func (m *Membership) AlivePeers() []NodeInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeInfo, 0, len(m.peers))
	for _, p := range m.peers {
		if p.alive && !p.draining {
			out = append(out, p.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Counts returns how many remote members are routable vs not.
func (m *Membership) Counts() (alive, dead int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.peers {
		if p.alive && !p.draining {
			alive++
		} else {
			dead++
		}
	}
	return alive, dead
}

// MarkAlive records a successful contact with id (optionally updating its
// draining state from the peer's own report).
func (m *Membership) MarkAlive(id string, draining bool) {
	if id == m.self.ID {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok {
		return
	}
	changed := !p.alive || p.draining != draining
	p.alive, p.draining, p.fails, p.lastSeen = true, draining, 0, time.Now()
	if changed {
		m.rebuildLocked()
	}
}

// MarkFailure records a failed probe of id; after threshold consecutive
// failures the peer is ruled dead and leaves the ring. threshold <= 1 kills
// on the first failure — what the proxy path uses, since a connection
// refused mid-request is much stronger evidence than a missed heartbeat.
func (m *Membership) MarkFailure(id string, threshold int) {
	if id == m.self.ID {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok {
		return
	}
	p.fails++
	if p.alive && p.fails >= max(threshold, 1) {
		p.alive = false
		m.rebuildLocked()
	}
}

// Merge folds a gossiped peer list into the table. Unknown members are
// added (dead, to be proven by our own probe — second-hand liveness is a
// rumor, not a fact) unless the reporter vouches they are alive, in which
// case they join routable immediately; known members only pick up identity
// changes (a member restarted under a new URL).
func (m *Membership) Merge(states []PeerState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	changed := false
	for _, st := range states {
		if st.ID == "" || st.ID == m.self.ID {
			continue
		}
		p, ok := m.peers[st.ID]
		if !ok {
			m.peers[st.ID] = &peer{info: st.NodeInfo, alive: st.Alive, draining: st.Draining, lastSeen: time.Now()}
			changed = changed || st.Alive
			continue
		}
		if st.URL != "" && st.URL != p.info.URL {
			p.info.URL = st.URL
		}
	}
	if changed {
		m.rebuildLocked()
	}
}

// SetDraining flags this node as draining: it leaves its own ring view and
// reports the state to peers via heartbeats, so the cluster routes around
// it while it finishes accepted work.
func (m *Membership) SetDraining(v bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining == v {
		return
	}
	m.draining = v
	m.rebuildLocked()
}

// Draining reports this node's own draining flag.
func (m *Membership) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Epoch returns the ring-rebuild counter; two equal epochs mean the ring
// has not changed between the calls.
func (m *Membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}
