package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dtrace"
)

// Options configures a cluster node.
type Options struct {
	// Self identifies this node; Self.URL is the address peers dial.
	Self NodeInfo
	// Seeds is the static bootstrap peer list (self tolerated and ignored).
	Seeds []NodeInfo
	// VirtualNodes per member on the ring (DefaultVirtualNodes if <= 0).
	VirtualNodes int
	// HeartbeatInterval between gossip rounds (default 1s; < 0 disables the
	// background loop — tests drive HeartbeatOnce directly).
	HeartbeatInterval time.Duration
	// FailThreshold is how many consecutive missed heartbeats rule a peer
	// dead (default 3). Proxy failures kill immediately regardless.
	FailThreshold int
	// StealInterval between idle-node steal rounds (default 500ms; < 0
	// disables the background loop — tests drive StealOnce directly).
	StealInterval time.Duration
	// StealTimeout bounds how long a victim waits for a thief's result
	// before reclaiming the work and computing locally (default 60s).
	StealTimeout time.Duration
	// Transport defaults to a fresh Transport over http.DefaultClient.
	Transport *Transport
	// Flight, when non-nil, records spans for the cluster protocol's server
	// side (cache entries served to peers) into the node's flight ring. Nil
	// disables span recording for free.
	Flight *dtrace.Recorder
}

func (o Options) withDefaults() Options {
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = DefaultVirtualNodes
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.StealInterval == 0 {
		o.StealInterval = 500 * time.Millisecond
	}
	if o.StealTimeout <= 0 {
		o.StealTimeout = 60 * time.Second
	}
	if o.Transport == nil {
		o.Transport = &Transport{}
	}
	return o
}

// Hooks is how the owning subsystem (psimd's service layer) plugs storage
// and execution into the cluster protocol. All hooks must be safe for
// concurrent use; any may be nil, which disables the behavior it backs.
type Hooks struct {
	// FetchLocal returns the locally stored serialized entry for key, if
	// present. Backs GET /v1/cache/{key}.
	FetchLocal func(key string) ([]byte, bool)
	// StoreEntry persists a serialized entry delivered by a peer (PUT
	// /v1/cache/{key}, checksum already verified) and wakes any local
	// waiter on that key. Backs cross-node cache fill and steal delivery.
	StoreEntry func(key string, body []byte) error
	// Execute runs one stolen work item locally and returns its serialized
	// result. Backs the thief side of StealOnce.
	Execute func(ctx context.Context, item StealItem) ([]byte, error)
	// IdleSlots reports how many local execution slots are currently free;
	// the steal loop only asks peers for work when it is positive.
	IdleSlots func() int
	// Draining reports whether the owning server has stopped accepting
	// work; a draining node neither steals nor serves steal requests.
	Draining func() bool
}

// Node is one member's cluster runtime: membership + routing + the steal
// and heartbeat loops + the protocol's server side.
type Node struct {
	opts    Options
	mem     *Membership
	tr      *Transport
	pending *PendingTable

	// Cluster traffic counters (see StatsView / WriteMetrics).
	remoteHits    atomic.Uint64 // results obtained from a peer (fetch or proxy hit)
	proxiedSims   atomic.Uint64 // sims executed remotely on their owner
	failovers     atomic.Uint64 // remote attempts abandoned for local execution
	stolenByUs    atomic.Uint64 // items this node stole and completed
	stolenFromUs  atomic.Uint64 // items peers claimed from this node
	entriesServed atomic.Uint64 // cache entries served to peers
	proxyLatency  Histogram     // seconds per remote fetch/exec round-trip

	loopCtx  context.Context
	loopStop context.CancelFunc
	wg       sync.WaitGroup
	started  atomic.Bool

	hooks Hooks
}

// NewNode builds a node from options and hooks; call Start to launch the
// heartbeat and steal loops (tests may instead drive HeartbeatOnce and
// StealOnce manually).
func NewNode(opts Options, hooks Hooks) *Node {
	opts = opts.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	return &Node{
		opts:         opts,
		mem:          NewMembership(opts.Self, opts.Seeds, opts.VirtualNodes),
		tr:           opts.Transport,
		pending:      NewPendingTable(),
		proxyLatency: NewLatencyHistogram(),
		loopCtx:      ctx,
		loopStop:     stop,
		hooks:        hooks,
	}
}

// Self returns this node's identity.
func (n *Node) Self() NodeInfo { return n.mem.Self() }

// Membership exposes the peer table (for state endpoints and tests).
func (n *Node) Membership() *Membership { return n.mem }

// Pending exposes the stealable-work table the service registers into.
func (n *Node) Pending() *PendingTable { return n.pending }

// StealTimeout is how long a victim should wait on a claimed key before
// falling back to local execution.
func (n *Node) StealTimeout() time.Duration { return n.opts.StealTimeout }

// Owner resolves the key's owning member. self reports whether that is this
// node (also true for an empty ring, so callers degrade to local execution).
func (n *Node) Owner(key string) (info NodeInfo, self bool) {
	id := n.mem.Ring().Owner(key)
	if id == "" || id == n.mem.Self().ID {
		return n.mem.Self(), true
	}
	info, ok := n.mem.Lookup(id)
	if !ok {
		return n.mem.Self(), true
	}
	return info, false
}

// ReportFailure records first-hand evidence that peer id is unreachable
// (a failed proxy or fetch): the peer leaves the ring immediately and the
// heartbeat loop takes over probing for its return.
func (n *Node) ReportFailure(id string) {
	n.mem.MarkFailure(id, 1)
}

// ObserveRemote folds one remote round-trip (cache fetch or proxied
// execution) into the proxy latency histogram.
func (n *Node) ObserveRemote(d time.Duration) { n.proxyLatency.Observe(d.Seconds()) }

// CountRemoteHit / CountProxied / CountFailover tick the routing counters;
// the service's simulate path calls them as it routes.
func (n *Node) CountRemoteHit() { n.remoteHits.Add(1) }
func (n *Node) CountProxied()   { n.proxiedSims.Add(1) }
func (n *Node) CountFailover()  { n.failovers.Add(1) }

// Start launches the heartbeat and steal loops.
func (n *Node) Start() {
	if !n.started.CompareAndSwap(false, true) {
		return
	}
	if n.opts.HeartbeatInterval > 0 {
		n.wg.Add(1)
		go n.loop(n.opts.HeartbeatInterval, n.HeartbeatOnce)
	}
	if n.opts.StealInterval > 0 && n.hooks.Execute != nil {
		n.wg.Add(1)
		go n.loop(n.opts.StealInterval, func(ctx context.Context) { n.StealOnce(ctx) })
	}
}

// Close stops the background loops (in-flight exchanges are canceled).
func (n *Node) Close() {
	n.loopStop()
	n.wg.Wait()
}

func (n *Node) loop(every time.Duration, fn func(context.Context)) {
	defer n.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-n.loopCtx.Done():
			return
		case <-t.C:
			fn(n.loopCtx)
		}
	}
}

// Leave announces departure: the node flags itself draining and pushes one
// final heartbeat round so peers re-route without waiting to time it out.
func (n *Node) Leave(ctx context.Context) {
	n.mem.SetDraining(true)
	n.HeartbeatOnce(ctx)
}

// HeartbeatOnce runs one gossip round: every known peer (dead ones
// included, so a returning node is noticed) receives our identity, draining
// state, and peer view, and their response is merged back.
func (n *Node) HeartbeatOnce(ctx context.Context) {
	req := HeartbeatRequest{
		From:     n.mem.Self(),
		Draining: n.draining(),
		Peers:    n.mem.Peers(),
	}
	for _, p := range n.mem.Peers() {
		hctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		resp, err := n.tr.Heartbeat(hctx, p.URL, req)
		cancel()
		if err != nil {
			n.mem.MarkFailure(p.ID, n.opts.FailThreshold)
			continue
		}
		n.mem.MarkAlive(p.ID, resp.Draining)
		n.mem.Merge(resp.Peers)
	}
}

func (n *Node) draining() bool {
	if n.mem.Draining() {
		return true
	}
	return n.hooks.Draining != nil && n.hooks.Draining()
}

// StealOnce runs one thief round: if this node has idle execution slots, it
// asks alive peers (in ID order) for queued work, executes what it gets,
// and delivers the results back to the victims. It returns how many items
// it completed.
func (n *Node) StealOnce(ctx context.Context) int {
	if n.hooks.Execute == nil || n.draining() {
		return 0
	}
	idle := 1
	if n.hooks.IdleSlots != nil {
		idle = n.hooks.IdleSlots()
	}
	if idle <= 0 {
		return 0
	}
	completed := 0
	for _, p := range n.mem.AlivePeers() {
		if idle <= 0 {
			break
		}
		resp, err := n.tr.Steal(ctx, p.URL, StealRequest{Thief: n.mem.Self(), Max: idle})
		if err != nil {
			n.mem.MarkFailure(p.ID, n.opts.FailThreshold)
			continue
		}
		var wg sync.WaitGroup
		var done atomic.Uint64
		for _, item := range resp.Items {
			idle--
			wg.Add(1)
			go func(item StealItem) {
				defer wg.Done()
				body, err := n.hooks.Execute(ctx, item)
				if err != nil {
					return // the victim's steal timeout reclaims the key
				}
				if err := n.tr.DeliverEntry(ctx, p.URL, item.Key, body); err != nil {
					return
				}
				done.Add(1)
			}(item)
		}
		wg.Wait()
		n.stolenByUs.Add(done.Load())
		completed += int(done.Load())
	}
	return completed
}

// Handler serves the cluster protocol: heartbeat, steal, state, and the
// cache entry transfer endpoints. The owning server mounts it alongside its
// own API.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathHeartbeat, n.handleHeartbeat)
	mux.HandleFunc("POST "+PathSteal, n.handleSteal)
	mux.HandleFunc("GET "+PathState, n.handleState)
	mux.HandleFunc("GET "+PathCache+"{key}", n.handleCacheGet)
	mux.HandleFunc("PUT "+PathCache+"{key}", n.handleCachePut)
	return mux
}

func (n *Node) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad heartbeat: "+err.Error(), http.StatusBadRequest)
		return
	}
	// The sender just proved itself alive first-hand; fold it and its view in.
	if req.From.ID != "" {
		n.mem.Merge([]PeerState{{NodeInfo: req.From, Alive: true, Draining: req.Draining}})
		n.mem.MarkAlive(req.From.ID, req.Draining)
	}
	n.mem.Merge(req.Peers)
	writeJSON(w, HeartbeatResponse{
		From:     n.mem.Self(),
		Draining: n.draining(),
		Peers:    n.mem.Peers(),
	})
}

func (n *Node) handleSteal(w http.ResponseWriter, r *http.Request) {
	var req StealRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad steal request: "+err.Error(), http.StatusBadRequest)
		return
	}
	// A draining victim still hands work away — that is exactly how its
	// backlog drains fastest; only thieving stops while draining.
	items := n.pending.Claim(req.Max)
	n.stolenFromUs.Add(uint64(len(items)))
	writeJSON(w, StealResponse{Items: items})
}

func (n *Node) handleState(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, StateView{
		Self:      n.mem.Self(),
		Draining:  n.draining(),
		RingNodes: n.mem.Ring().Members(),
		Peers:     n.mem.Peers(),
		Stats: StatsView{
			RemoteHits:    n.remoteHits.Load(),
			ProxiedSims:   n.proxiedSims.Load(),
			Failovers:     n.failovers.Load(),
			StolenByUs:    n.stolenByUs.Load(),
			StolenFromUs:  n.stolenFromUs.Load(),
			EntriesServed: n.entriesServed.Load(),
		},
	})
}

func (n *Node) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	// Only traced fetches record a span: an orphan-free tree needs the
	// requester's traceparent, and untraced peers should stay free.
	if sc, ok := dtrace.Extract(r.Header); ok {
		sp := n.opts.Flight.StartSpan(sc, "cache.serve")
		sp.Annotate(shortKey(key))
		defer sp.End()
	}
	if n.hooks.FetchLocal == nil {
		http.Error(w, "no local store", http.StatusNotFound)
		return
	}
	body, ok := n.hooks.FetchLocal(key)
	if !ok {
		http.Error(w, "not cached", http.StatusNotFound)
		return
	}
	n.entriesServed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(ChecksumHeader, Checksum(body))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (n *Node) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if n.hooks.StoreEntry == nil {
		http.Error(w, "no local store", http.StatusNotImplemented)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	if want := r.Header.Get(ChecksumHeader); want != "" && want != Checksum(body) {
		http.Error(w, "checksum mismatch", http.StatusBadRequest)
		return
	}
	if err := n.hooks.StoreEntry(key, body); err != nil {
		http.Error(w, "store: "+err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(v)
}

// Stats snapshots the node's counters.
func (n *Node) Stats() StatsView {
	return StatsView{
		RemoteHits:    n.remoteHits.Load(),
		ProxiedSims:   n.proxiedSims.Load(),
		Failovers:     n.failovers.Load(),
		StolenByUs:    n.stolenByUs.Load(),
		StolenFromUs:  n.stolenFromUs.Load(),
		EntriesServed: n.entriesServed.Load(),
	}
}

// FetchRemote retrieves (and checksum-verifies) key's entry from the peer at
// base, accounting the round-trip.
func (n *Node) FetchRemote(ctx context.Context, base, key string) ([]byte, bool, error) {
	start := time.Now()
	body, ok, err := n.tr.FetchEntry(ctx, base, key)
	n.ObserveRemote(time.Since(start))
	return body, ok, err
}

// shortKey truncates a content-addressed key to a span-annotation-sized
// prefix (keys are digests; the prefix is enough to correlate).
func shortKey(key string) string {
	if len(key) > 16 {
		return key[:16]
	}
	return key
}

// String renders a short identity for logs.
func (n *Node) String() string {
	return fmt.Sprintf("cluster node %s (%s)", n.mem.Self().ID, strings.TrimRight(n.mem.Self().URL, "/"))
}
