package cluster

import (
	"fmt"
	"net/url"
	"strings"
)

// ParsePeers decodes a -peers flag: comma-separated entries, each either
// "id=http://host:port" or a bare URL (the node ID then defaults to the URL's
// host:port). IDs are ring identities, so every member must use the same ID
// for a given node that its own -node-id declares.
func ParsePeers(s string) ([]NodeInfo, error) {
	var out []NodeInfo
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, raw, found := strings.Cut(entry, "=")
		if !found {
			raw, id = entry, ""
		}
		raw = strings.TrimRight(strings.TrimSpace(raw), "/")
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q: want id=http://host:port or a full URL", entry)
		}
		if id = strings.TrimSpace(id); id == "" {
			id = u.Host
		}
		out = append(out, NodeInfo{ID: id, URL: raw})
	}
	return out, nil
}
