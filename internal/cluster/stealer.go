package cluster

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// PendingTable is the victim side of work stealing: simulations that are
// admitted but waiting for a local execution slot register here, where an
// idle peer's steal request can claim them. A claimed item is executed by
// the thief, which delivers the serialized result back (PUT /v1/cache/{key});
// Deliver then wakes every waiter registered under that key.
//
// The table is keyed by the content-addressed simulation key, so duplicate
// waiters (the same sim queued twice in one batch, or across batches)
// collapse into one stealable item — a thief computes the key once and all
// waiters share the result, preserving the cluster-wide exactly-once
// property.
type PendingTable struct {
	mu    sync.Mutex
	items map[string]*pendingItem
}

type pendingItem struct {
	payload json.RawMessage
	tp      string // traceparent of the waiter, handed to the thief
	claimed bool
	result  []byte        // set before done is closed
	done    chan struct{} // closed by Deliver; result is then readable
	waiters int
}

// Pending is one waiter's handle on a registered key.
type Pending struct {
	t   *PendingTable
	key string
	it  *pendingItem
}

// NewPendingTable builds an empty table.
func NewPendingTable() *PendingTable {
	return &PendingTable{items: map[string]*pendingItem{}}
}

// Register announces that the caller is about to wait for a local slot to
// execute key, exposing it (with its opaque execution payload) to thieves.
// Duplicate keys share one item. traceparent (may be empty) rides along to
// the thief, so spans it records parent under the victim's trace.
func (t *PendingTable) Register(key string, payload json.RawMessage, traceparent string) *Pending {
	t.mu.Lock()
	defer t.mu.Unlock()
	it, ok := t.items[key]
	if !ok {
		it = &pendingItem{payload: payload, done: make(chan struct{})}
		t.items[key] = it
	}
	if it.tp == "" {
		it.tp = traceparent
	}
	it.waiters++
	return &Pending{t: t, key: key, it: it}
}

// Len reports how many unclaimed keys are currently stealable.
func (t *PendingTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, it := range t.items {
		if !it.claimed {
			n++
		}
	}
	return n
}

// Claim hands over up to maxItems unclaimed keys to a thief, marking them
// claimed so a second thief (or the local fallback) does not duplicate the
// work while the first is computing.
func (t *PendingTable) Claim(maxItems int) []StealItem {
	if maxItems <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []StealItem
	for key, it := range t.items {
		if it.claimed {
			continue
		}
		it.claimed = true
		out = append(out, StealItem{Key: key, Payload: it.payload, Traceparent: it.tp})
		if len(out) >= maxItems {
			break
		}
	}
	return out
}

// Deliver completes a claimed key with its serialized result, waking every
// waiter. It reports whether anyone was waiting (false for a stale delivery
// — e.g. the waiters timed out and fell back to computing locally).
func (t *PendingTable) Deliver(key string, result []byte) bool {
	t.mu.Lock()
	it, ok := t.items[key]
	if ok {
		delete(t.items, key)
	}
	t.mu.Unlock()
	if !ok {
		return false
	}
	it.result = result // happens-before the close, so every waiter sees it
	close(it.done)
	return true
}

// Withdraw removes this waiter's interest because it got a local execution
// slot. It returns true when the caller should proceed to execute locally;
// false when a thief already claimed the key (or a result already landed) —
// the caller must then wait for the stolen result instead of duplicating
// the computation.
func (p *Pending) Withdraw() bool {
	p.t.mu.Lock()
	defer p.t.mu.Unlock()
	it, ok := p.t.items[p.key]
	if !ok || it != p.it {
		// Already delivered or superseded: the result is (or will be) in
		// p.it.done / the local store.
		return false
	}
	if it.claimed {
		return false
	}
	it.waiters--
	if it.waiters <= 0 {
		delete(p.t.items, p.key)
	}
	return true
}

// Abandon drops this waiter's interest entirely (typically because its
// context died). The entry is removed once no waiters remain — claimed or
// not — so a late thief delivery is dropped instead of waking nobody, while
// other live waiters keep their claim on the result.
func (p *Pending) Abandon() {
	p.t.mu.Lock()
	defer p.t.mu.Unlock()
	it, ok := p.t.items[p.key]
	if !ok || it != p.it {
		return
	}
	it.waiters--
	if it.waiters <= 0 {
		delete(p.t.items, p.key)
	}
}

// Done is closed once a thief delivers the key's result; Result is then
// readable.
func (p *Pending) Done() <-chan struct{} { return p.it.done }

// Result returns the delivered serialized result; valid only after Done is
// closed.
func (p *Pending) Result() []byte { return p.it.result }

// Wait blocks for the stolen result until timeout or ctx expiry. ok is
// false on timeout/cancellation — the caller should compute locally (the
// thief died or is too slow; a late delivery is then dropped harmlessly by
// Deliver).
func (p *Pending) Wait(ctx context.Context, timeout time.Duration) (result []byte, ok bool) {
	var timer <-chan time.Time
	if timeout > 0 {
		tm := time.NewTimer(timeout)
		defer tm.Stop()
		timer = tm.C
	}
	select {
	case <-p.it.done:
		return p.it.result, true
	case <-timer:
	case <-ctx.Done():
	}
	// Give up: drop this waiter so a late delivery with no waiters left is
	// ignored rather than waking nobody.
	p.Abandon()
	// A delivery may have raced the timeout; prefer it over recomputing.
	select {
	case <-p.it.done:
		return p.it.result, true
	default:
	}
	return nil, false
}
