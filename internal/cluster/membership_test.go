package cluster

import (
	"reflect"
	"testing"
)

func info(id string) NodeInfo { return NodeInfo{ID: id, URL: "http://" + id} }

func newTestMembership(selfID string, seedIDs ...string) *Membership {
	seeds := make([]NodeInfo, len(seedIDs))
	for i, id := range seedIDs {
		seeds[i] = info(id)
	}
	return NewMembership(info(selfID), seeds, 16)
}

// TestMembershipSeedsRouteImmediately: a statically configured cluster must
// route correctly before any heartbeat completes, so seeds (and self) start
// on the ring.
func TestMembershipSeedsRouteImmediately(t *testing.T) {
	m := newTestMembership("a", "a", "b", "c") // self listed in shared seeds: filtered
	if got := m.Ring().Members(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("initial ring = %v, want [a b c]", got)
	}
	if alive, dead := m.Counts(); alive != 2 || dead != 0 {
		t.Fatalf("counts = %d alive %d dead, want 2/0", alive, dead)
	}
	if _, ok := m.Lookup("a"); !ok {
		t.Error("Lookup(self) failed")
	}
}

// TestMembershipFailThreshold: a peer survives threshold-1 missed heartbeats,
// dies on the threshold-th, and one successful contact fully resurrects it.
func TestMembershipFailThreshold(t *testing.T) {
	m := newTestMembership("a", "b")
	for i := 0; i < 2; i++ {
		m.MarkFailure("b", 3)
		if m.Ring().Len() != 2 {
			t.Fatalf("peer b dead after %d failures with threshold 3", i+1)
		}
	}
	m.MarkFailure("b", 3)
	if got := m.Ring().Members(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("ring after death = %v, want [a]", got)
	}
	m.MarkAlive("b", false)
	if m.Ring().Len() != 2 {
		t.Fatal("peer b not restored after successful contact")
	}
	// The failure streak must have reset: one new miss is not fatal again.
	m.MarkFailure("b", 3)
	if m.Ring().Len() != 2 {
		t.Fatal("single failure after recovery killed peer b (stale fail count)")
	}
}

// TestMembershipProxyFailureKillsImmediately: threshold 1 is the proxy path's
// contract — connection refused mid-request removes the peer at once.
func TestMembershipFirstFailureThresholdOne(t *testing.T) {
	m := newTestMembership("a", "b")
	m.MarkFailure("b", 1)
	if m.Ring().Len() != 1 {
		t.Fatal("threshold-1 failure did not remove peer")
	}
}

// TestMembershipMergeRumors: gossip adds unknown members — routable at once
// when the reporter vouches they are alive, as probe-only candidates when
// the report says dead. A dead rumor about a peer we can still reach must
// not kill it (liveness is first-hand).
func TestMembershipMergeRumors(t *testing.T) {
	m := newTestMembership("a", "b")
	m.Merge([]PeerState{
		{NodeInfo: info("c"), Alive: true},
		{NodeInfo: info("d"), Alive: false},
		{NodeInfo: info("b"), Alive: false}, // rumor: b is dead
		{NodeInfo: info("a"), Alive: false}, // rumor about self: ignored
	})
	if got := m.Ring().Members(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("ring after merge = %v, want [a b c] (vouched c joins, rumored-dead d probes only, b survives rumor)", got)
	}
	if _, ok := m.Lookup("d"); !ok {
		t.Error("rumored member d not retained as probe candidate")
	}
	// A member that restarted under a new URL is re-addressed by gossip.
	m.Merge([]PeerState{{NodeInfo: NodeInfo{ID: "b", URL: "http://b-new"}, Alive: true}})
	if got, _ := m.Lookup("b"); got.URL != "http://b-new" {
		t.Errorf("peer b URL = %s, want http://b-new", got.URL)
	}
}

// TestMembershipDraining: a draining node leaves its own ring view (so
// nothing new routes to itself) and a peer reported draining leaves ours.
func TestMembershipDraining(t *testing.T) {
	m := newTestMembership("a", "b")
	m.SetDraining(true)
	if got := m.Ring().Members(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("draining self still on own ring: %v", got)
	}
	m.SetDraining(false)
	m.MarkAlive("b", true) // b reports itself draining
	if got := m.Ring().Members(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("draining peer still on ring: %v", got)
	}
	m.MarkAlive("b", false) // b finished its restart
	if m.Ring().Len() != 2 {
		t.Fatal("peer b not restored after drain ended")
	}
}

// TestMembershipEpoch: the epoch moves only on ring changes, giving callers
// cheap change detection.
func TestMembershipEpoch(t *testing.T) {
	m := newTestMembership("a", "b")
	e0 := m.Epoch()
	m.MarkAlive("b", false) // no state change
	if m.Epoch() != e0 {
		t.Error("no-op MarkAlive bumped the epoch")
	}
	m.MarkFailure("b", 1)
	if m.Epoch() == e0 {
		t.Error("ring change did not bump the epoch")
	}
}
