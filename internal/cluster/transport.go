package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/dtrace"
)

// Cluster protocol paths. The cache path is public-ish (any node may fetch
// or fill an entry); the /v1/cluster/* paths are the control plane.
const (
	PathHeartbeat = "/v1/cluster/heartbeat"
	PathSteal     = "/v1/cluster/steal"
	PathState     = "/v1/cluster/state"
	PathCache     = "/v1/cache/" // + {key}
)

// ChecksumHeader carries the hex SHA-256 of a transferred cache entry's
// bytes. Entry bodies are JSON-encoded simulation results whose cache key is
// a digest of the *inputs*, so the body needs its own integrity check — a
// truncated proxy response must not poison a peer's store.
const ChecksumHeader = "X-Entry-Checksum"

// Checksum returns the hex SHA-256 of body.
func Checksum(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// HeartbeatRequest is one node announcing itself (and its world view) to a
// peer.
type HeartbeatRequest struct {
	From     NodeInfo    `json:"from"`
	Draining bool        `json:"draining"`
	Peers    []PeerState `json:"peers,omitempty"`
}

// HeartbeatResponse returns the receiver's state and view, completing the
// two-way gossip exchange.
type HeartbeatResponse struct {
	From     NodeInfo    `json:"from"`
	Draining bool        `json:"draining"`
	Peers    []PeerState `json:"peers,omitempty"`
}

// StealRequest asks a peer to hand over up to Max queued work items.
type StealRequest struct {
	Thief NodeInfo `json:"thief"`
	Max   int      `json:"max"`
}

// StealItem is one unit of transferable work: the content-addressed key and
// an opaque payload the owning subsystem knows how to execute. Traceparent
// (optional) is the victim-side trace position, so the thief's execution
// spans attach to the same distributed trace.
type StealItem struct {
	Key         string          `json:"key"`
	Payload     json.RawMessage `json:"payload"`
	Traceparent string          `json:"traceparent,omitempty"`
}

// StealResponse hands over the claimed items (possibly none).
type StealResponse struct {
	Items []StealItem `json:"items,omitempty"`
}

// StateView is the diagnostic snapshot served at /v1/cluster/state.
type StateView struct {
	Self      NodeInfo    `json:"self"`
	Draining  bool        `json:"draining"`
	RingNodes []string    `json:"ring_nodes"`
	Peers     []PeerState `json:"peers,omitempty"`
	Stats     StatsView   `json:"stats"`
}

// StatsView mirrors the node's cluster counters for the state endpoint.
type StatsView struct {
	RemoteHits    uint64 `json:"remote_hits"`
	ProxiedSims   uint64 `json:"proxied_sims"`
	Failovers     uint64 `json:"failovers"`
	StolenByUs    uint64 `json:"stolen_by_us"`
	StolenFromUs  uint64 `json:"stolen_from_us"`
	EntriesServed uint64 `json:"entries_served"`
}

// Transport is the HTTP client side of the cluster protocol.
type Transport struct {
	// Client defaults to http.DefaultClient. Cluster calls are bounded by
	// their context, not a client timeout, so long proxied simulations work.
	Client *http.Client
}

func (t *Transport) client() *http.Client {
	if t != nil && t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

// postJSON round-trips a JSON request/response pair.
func (t *Transport) postJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	dtrace.Inject(ctx, req.Header)
	resp, err := t.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: %s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Heartbeat exchanges liveness and peer views with the node at base.
func (t *Transport) Heartbeat(ctx context.Context, base string, req HeartbeatRequest) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := t.postJSON(ctx, strings.TrimRight(base, "/")+PathHeartbeat, req, &resp)
	return resp, err
}

// Steal asks the node at base for up to req.Max work items.
func (t *Transport) Steal(ctx context.Context, base string, req StealRequest) (StealResponse, error) {
	var resp StealResponse
	err := t.postJSON(ctx, strings.TrimRight(base, "/")+PathSteal, req, &resp)
	return resp, err
}

// FetchEntry retrieves the cache entry for key from the node at base,
// verifying the body against the peer's checksum. ok is false on a clean
// 404 (the peer simply does not have it); any other failure — including a
// checksum mismatch — is an error.
func (t *Transport) FetchEntry(ctx context.Context, base, key string) (body []byte, ok bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+PathCache+key, nil)
	if err != nil {
		return nil, false, err
	}
	dtrace.Inject(ctx, req.Header)
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("cluster: fetch %s from %s: HTTP %d", key, base, resp.StatusCode)
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	if want := resp.Header.Get(ChecksumHeader); want != "" && want != Checksum(body) {
		return nil, false, fmt.Errorf("cluster: fetch %s from %s: checksum mismatch (truncated or corrupted transfer)", key, base)
	}
	return body, true, nil
}

// DeliverEntry PUTs a computed entry to the node at base (cross-node cache
// fill / steal result delivery), with the checksum the receiver verifies.
func (t *Transport) DeliverEntry(ctx context.Context, base, key string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, strings.TrimRight(base, "/")+PathCache+key, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ChecksumHeader, Checksum(body))
	dtrace.Inject(ctx, req.Header)
	resp, err := t.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: deliver %s to %s: HTTP %d: %s", key, base, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}
