package cluster

import (
	"fmt"
	"io"
	"sync"
)

// Histogram is a fixed-bucket cumulative histogram in the Prometheus mold:
// Observe files a value into every bucket whose upper bound admits it, and
// Write emits _bucket{le=...}, _sum, and _count samples. Exported so sibling
// packages (the service's queue-wait histogram) reuse one implementation.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; +Inf implied
	counts []uint64  // len(bounds)+1, last is the overflow (+Inf) bucket
	sum    float64
	total  uint64
}

// NewLatencyHistogram covers 1ms..10s — the plausible span of a cross-node
// cache fetch (sub-ms on localhost) through a proxied full simulation, and
// equally of a job's queue wait on a loaded daemon.
func NewLatencyHistogram() Histogram {
	bounds := []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	return Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe files one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := len(h.bounds) // overflow bucket
	for b, bound := range h.bounds {
		if v <= bound {
			i = b
			break
		}
	}
	h.counts[i]++
	h.sum += v
	h.total++
}

// Write emits the histogram family in exposition format.
func (h *Histogram) Write(w io.Writer, name, help string) {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i, bound := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, bound, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(w, "%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, total)
}

// WriteMetrics renders the node's psimd_cluster_* metric families in
// Prometheus text exposition format; the service appends it to /metrics.
func (n *Node) WriteMetrics(w io.Writer) {
	alive, dead := n.mem.Counts()
	fmt.Fprintf(w, "# HELP psimd_cluster_peers Known remote members by routability.\n# TYPE psimd_cluster_peers gauge\n")
	fmt.Fprintf(w, "psimd_cluster_peers{state=\"alive\"} %d\n", alive)
	fmt.Fprintf(w, "psimd_cluster_peers{state=\"dead\"} %d\n", dead)
	fmt.Fprintf(w, "# HELP psimd_cluster_ring_nodes Members on the routing ring (self included).\n# TYPE psimd_cluster_ring_nodes gauge\npsimd_cluster_ring_nodes %d\n", n.mem.Ring().Len())
	fmt.Fprintf(w, "# HELP psimd_cluster_stealable Simulations currently exposed to thieves.\n# TYPE psimd_cluster_stealable gauge\npsimd_cluster_stealable %d\n", n.pending.Len())

	st := n.Stats()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("psimd_cluster_remote_hits_total", "Results served by a peer's cache instead of simulating here.", st.RemoteHits)
	counter("psimd_cluster_proxied_total", "Simulations executed remotely on their owning node.", st.ProxiedSims)
	counter("psimd_cluster_failovers_total", "Remote attempts abandoned for local execution.", st.Failovers)
	counter("psimd_cluster_entries_served_total", "Cache entries served to peers.", st.EntriesServed)
	fmt.Fprintf(w, "# HELP psimd_cluster_steals_total Work items moved by stealing, by this node's role.\n# TYPE psimd_cluster_steals_total counter\n")
	fmt.Fprintf(w, "psimd_cluster_steals_total{role=\"thief\"} %d\n", st.StolenByUs)
	fmt.Fprintf(w, "psimd_cluster_steals_total{role=\"victim\"} %d\n", st.StolenFromUs)

	n.proxyLatency.Write(w, "psimd_cluster_proxy_latency_seconds",
		"Round-trip seconds of remote cache fetches and proxied simulations.")
}
