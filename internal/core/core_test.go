package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/prefetch/spp"
)

// testSystem is an L2+LLC pair over a fixed-latency memory.
type testSystem struct {
	l2, llc *cache.Cache
	engine  *Engine
}

func newSystem(v Variant, oracle Oracle) *testSystem {
	memPort := mem.PortFunc(func(_ *mem.Request, at mem.Cycle) mem.Cycle { return at + 200 })
	llc := cache.New(cache.Config{Name: "LLC", Sets: 512, Ways: 16, Latency: 20, MSHREntries: 64}, memPort)
	l2 := cache.New(cache.Config{Name: "L2", Sets: 1024, Ways: 8, Latency: 10, MSHREntries: 32}, llc)
	e := New(spp.Factory(spp.DefaultConfig()), v, l2, llc, oracle, 0)
	l2.SetObserver(e)
	llc.SetObserver(&LLCFeedback{Engines: []*Engine{e}})
	return &testSystem{l2: l2, llc: llc, engine: e}
}

// stream drives a unit-stride load stream of n blocks starting at base, with
// the PPM page-size bit set to size.
func (s *testSystem) stream(base mem.Addr, n int, size mem.PageSize, known bool) {
	for i := 0; i < n; i++ {
		req := &mem.Request{
			PAddr:         base + mem.Addr(i)*mem.BlockSize,
			PC:            0x400000,
			Type:          mem.Load,
			PageSize:      size,
			PageSizeKnown: known,
		}
		s.l2.Access(req, mem.Cycle(i*50))
	}
}

func oracleAll2M(mem.Addr) mem.PageSize { return mem.Page2M }
func oracleAll4K(mem.Addr) mem.PageSize { return mem.Page4K }

func TestOriginalStopsAt4KBAndCountsMissedOpportunity(t *testing.T) {
	s := newSystem(Original, oracleAll2M)
	// Stream through a full 4KB page and into the next: SPP's raw candidates
	// cross the boundary, the Original engine must discard them.
	s.stream(0x40000000, 80, mem.Page2M, true) // PPM bit present but ignored
	if s.engine.Stats.DiscardedBoundary == 0 {
		t.Fatal("original variant discarded nothing at the 4KB boundary")
	}
	if s.engine.Stats.DiscardedSafe == 0 {
		t.Error("discards within a 2MB-resident page not counted as missed opportunity")
	}
	if s.engine.Stats.DiscardedSafe > s.engine.Stats.DiscardedBoundary {
		t.Error("safe discards exceed total discards")
	}
	// Every issued prefetch stayed within the trigger's 4KB page... verify
	// via probability bounds.
	p := s.engine.Stats.DiscardProbability()
	if p <= 0 || p > 1 {
		t.Errorf("discard probability = %v", p)
	}
}

func TestPSACrosses4KBWhenIn2MBPage(t *testing.T) {
	orig := newSystem(Original, oracleAll2M)
	psa := newSystem(PSA, oracleAll2M)
	// Stream stays inside the first 4KB page; only prefetches can reach the
	// second page of the 2MB region.
	orig.stream(0x40000000, 60, mem.Page2M, true)
	psa.stream(0x40000000, 60, mem.Page2M, true)
	if psa.engine.Stats.DiscardedBoundary >= orig.engine.Stats.DiscardedBoundary {
		t.Errorf("PSA discards (%d) not fewer than original (%d)",
			psa.engine.Stats.DiscardedBoundary, orig.engine.Stats.DiscardedBoundary)
	}
	nextPage := mem.Addr(0x40000000) + mem.PageSize4K
	crossed := false
	for b := mem.Addr(0); b < 8; b++ {
		if psa.l2.Contains(nextPage+b*mem.BlockSize) || psa.llc.Contains(nextPage+b*mem.BlockSize) {
			crossed = true
		}
		if orig.l2.Contains(nextPage + b*mem.BlockSize) {
			t.Errorf("original prefetched %#x beyond the 4KB boundary", nextPage+b*mem.BlockSize)
		}
	}
	if !crossed {
		t.Error("PSA never prefetched into the next 4KB page of a 2MB region")
	}
}

func TestPSARespects4KBWhenIn4KBPage(t *testing.T) {
	s := newSystem(PSA, oracleAll4K)
	s.stream(0x40000000, 80, mem.Page4K, true)
	// The PPM bit says 4KB: crossings must be discarded exactly as original.
	if s.engine.Stats.DiscardedBoundary == 0 {
		t.Error("PSA with 4KB-resident blocks discarded nothing at the boundary")
	}
	// And none of these discards are missed opportunities.
	if s.engine.Stats.DiscardedSafe != 0 {
		t.Errorf("4KB-resident discards misclassified as safe: %d", s.engine.Stats.DiscardedSafe)
	}
}

func TestPSAWithoutPPMBitDefaultsTo4KB(t *testing.T) {
	s := newSystem(PSA, oracleAll2M)
	s.stream(0x40000000, 80, mem.Page2M, false) // bit not propagated
	if s.engine.Stats.DiscardedBoundary == 0 {
		t.Error("missing PPM bit should force the 4KB boundary")
	}
}

func TestMagicUsesOracleWithoutPPMBit(t *testing.T) {
	s := newSystem(PSAMagic, oracleAll2M)
	s.stream(0x40000000, 80, mem.Page4K, false) // request says nothing useful
	if s.engine.Stats.DiscardedBoundary != 0 {
		t.Errorf("magic variant discarded %d despite oracle reporting 2MB",
			s.engine.Stats.DiscardedBoundary)
	}
	if s.engine.Stats.Issued == 0 {
		t.Error("magic variant issued nothing")
	}
}

func TestPrefetchesReachCaches(t *testing.T) {
	s := newSystem(PSA, oracleAll2M)
	s.stream(0x40000000, 100, mem.Page2M, true)
	if s.l2.Stats.PrefetchIssued == 0 {
		t.Error("no prefetches allocated L2 MSHRs")
	}
	// A trained stream should make later demand accesses hit prefetched
	// lines.
	if s.l2.Stats.PrefetchUseful+s.l2.Stats.PrefetchLate == 0 {
		t.Error("no useful prefetches recorded at L2")
	}
}

func TestSetDuelingLeaderMapping(t *testing.T) {
	s := newSystem(PSASD, oracleAll2M)
	e := s.engine
	nA, nB, nF := 0, 0, 0
	for set := 0; set < s.l2.Sets(); set++ {
		switch e.leaderOf(set) {
		case prefA:
			nA++
		case prefB:
			nB++
		default:
			nF++
		}
	}
	if nA != LeaderSetsPerPrefetcher || nB != LeaderSetsPerPrefetcher {
		t.Errorf("leader sets = %d/%d, want %d each", nA, nB, LeaderSetsPerPrefetcher)
	}
	if nF != s.l2.Sets()-2*LeaderSetsPerPrefetcher {
		t.Errorf("follower sets = %d", nF)
	}
}

func TestCselMovesWithFeedback(t *testing.T) {
	s := newSystem(PSASD, oracleAll2M)
	e := s.engine
	start := e.Csel()
	// Useful hits on non-voting (follower-triggered) prefetches leave Csel
	// untouched.
	e.OnPrefetchUseful(0x1000, prefB, 0)
	e.OnPrefetchUseful(0x1000, prefA, 0)
	if e.Csel() != start {
		t.Errorf("non-voting feedback moved Csel: %d", e.Csel())
	}
	// Useful prefetches triggered from B's leader sets push Csel up.
	for i := 0; i < 10; i++ {
		e.OnPrefetchUseful(0x1000, prefB|voteFlag, 0)
	}
	if e.Csel() != 1<<CselBits-1 {
		t.Errorf("Csel = %d after B-useful streak, want saturated %d", e.Csel(), 1<<CselBits-1)
	}
	// And A-leader useful hits push it down to zero.
	for i := 0; i < 20; i++ {
		e.OnPrefetchUseful(0x1000, prefA|voteFlag, 0)
	}
	if e.Csel() != 0 {
		t.Errorf("Csel = %d after A-useful streak, want 0", e.Csel())
	}
}

func TestFollowerSelectionTracksCsel(t *testing.T) {
	s := newSystem(PSASD, oracleAll2M)
	e := s.engine
	followerSet := 2 // set%groups==2 → follower for 1024-set L2
	if e.leaderOf(followerSet) != 0 {
		t.Fatal("set 2 expected to be a follower")
	}
	e.csel = 0
	if e.selectFor(followerSet) != prefA {
		t.Error("low Csel should select Pref-PSA")
	}
	e.csel = 1<<CselBits - 1
	if e.selectFor(followerSet) != prefB {
		t.Error("high Csel should select Pref-PSA-2MB")
	}
	if e.Stats.SelectedA == 0 || e.Stats.SelectedB == 0 {
		t.Error("selection stats not recorded")
	}
}

func TestSDPageSizeSelectsBySize(t *testing.T) {
	s := newSystem(SDPageSize, oracleAll2M)
	// 2MB-resident stream: competitor B (2MB-indexed) handles it; its
	// candidates carry prefB annotations.
	s.stream(0x40000000, 100, mem.Page2M, true)
	sawB := false
	// Inspect issued requests indirectly: engine stats can't tell, so drive a
	// 4KB stream and confirm different competitor via csel-independent path.
	// Instead verify through leader-independent behaviour: with all-2MB
	// traffic, pA must still have been trained (Train on all accesses).
	var cands []prefetch.Candidate
	e := s.engine
	ctx := prefetch.Context{
		Addr: 0x40000000 + 100*mem.BlockSize, Type: mem.Load,
		PageSize: mem.Page2M, PC: 0x400000,
	}
	e.pA.Operate(ctx, func(c prefetch.Candidate) { cands = append(cands, c) })
	if len(cands) == 0 {
		t.Error("SD-Page-Size did not keep the unselected competitor trained")
	}
	_ = sawB
}

func TestSDStandardTrainsOnlySelected(t *testing.T) {
	s := newSystem(SDStandard, oracleAll2M)
	e := s.engine
	e.csel = 0 // followers pick A
	// Stream over follower sets only would still hit B-leader sets sometimes;
	// drive traffic and check B saw less training than A by comparing their
	// predictive readiness on the stream.
	s.stream(0x40000000, 200, mem.Page2M, true)
	var aCands, bCands int
	ctx := prefetch.Context{
		Addr: 0x40000000 + 200*mem.BlockSize, Type: mem.Load,
		PageSize: mem.Page2M, PC: 0x400000,
	}
	e.pA.Operate(ctx, func(prefetch.Candidate) { aCands++ })
	e.pB.Operate(ctx, func(prefetch.Candidate) { bCands++ })
	if aCands == 0 {
		t.Error("selected competitor was not trained")
	}
}

func TestVariantString(t *testing.T) {
	want := map[Variant]string{
		Original: "original", PSA: "PSA", PSA2MB: "PSA-2MB", PSASD: "PSA-SD",
		PSAMagic: "PSA-Magic", PSAMagic2MB: "PSA-Magic-2MB",
		SDStandard: "SD-Standard", SDPageSize: "SD-Page-Size", ISOStorage: "ISO-Storage",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), s)
		}
	}
	if Variant(99).String() != "Variant(99)" {
		t.Error("unknown variant String")
	}
}

func TestNonDataAccessesIgnored(t *testing.T) {
	s := newSystem(PSA, oracleAll2M)
	req := &mem.Request{PAddr: 0x40000000, Type: mem.PageWalk, PageSize: mem.Page4K, PageSizeKnown: true}
	for i := 0; i < 50; i++ {
		req.PAddr += mem.BlockSize
		s.l2.Access(req, mem.Cycle(i*10))
	}
	if s.engine.Stats.Proposed != 0 {
		t.Errorf("page walks trained the prefetcher: %d proposals", s.engine.Stats.Proposed)
	}
}

func TestLLCFeedbackRoutesToCore(t *testing.T) {
	memPort := mem.PortFunc(func(_ *mem.Request, at mem.Cycle) mem.Cycle { return at + 200 })
	llc := cache.New(cache.Config{Name: "LLC", Sets: 512, Ways: 16, Latency: 20, MSHREntries: 64}, memPort)
	l2 := cache.New(cache.Config{Name: "L2", Sets: 1024, Ways: 8, Latency: 10, MSHREntries: 32}, llc)
	e := New(spp.Factory(spp.DefaultConfig()), PSASD, l2, llc, oracleAll2M, 3)
	fb := &LLCFeedback{Engines: make([]*Engine, 4)}
	fb.Engines[3] = e
	cselBefore := e.Csel()
	// LLC feedback must not move Csel (annotation lives on L2 blocks).
	fb.OnPrefetchUseful(0x1000, prefB|voteFlag, 3)
	if e.Csel() != cselBefore {
		t.Error("LLC feedback moved Csel")
	}
	// Out-of-range core IDs are ignored.
	fb.OnPrefetchUseful(0x1000, prefB, 9)
	fb.OnPrefetchUnused(0x1000, prefA, -1)
}

func TestISOStorageUsesScaledPrefetcher(t *testing.T) {
	// ISO is constructed by the caller passing a scaled factory; the engine
	// behaves exactly like Original.
	s := newSystem(ISOStorage, oracleAll2M)
	s.stream(0x40000000, 80, mem.Page2M, true)
	if s.engine.Stats.DiscardedBoundary == 0 {
		t.Error("ISO-storage variant must keep the hard 4KB boundary")
	}
}

func TestPSAWith1GBPage(t *testing.T) {
	// A block in a 1GB page may cross both 4KB and 2MB boundaries; candidate
	// generation itself is bounded by the prefetchers' 2MB delta reach, so
	// the observable behaviour matches a 2MB page while the PPM bit carries
	// the larger size (2 bits for three concurrent sizes, Section IV-A).
	oracle1G := func(mem.Addr) mem.PageSize { return mem.Page1G }
	s := newSystem(PSA, oracle1G)
	s.stream(0x40000000, 60, mem.Page1G, true)
	if s.engine.Stats.DiscardedBoundary != 0 {
		t.Errorf("PSA discarded %d candidates despite a 1GB residing page",
			s.engine.Stats.DiscardedBoundary)
	}
	// And the original variant counts those crossings as missed
	// opportunities even when the page is 1GB.
	o := newSystem(Original, oracle1G)
	o.stream(0x40000000, 60, mem.Page1G, true)
	if o.engine.Stats.DiscardedSafe == 0 {
		t.Error("1GB-resident crossings not counted as safe discards")
	}
}

func TestPQDepthBoundsBacklogAndDrops(t *testing.T) {
	s := newSystem(PSA, oracleAll2M)
	s.engine.PQDepth = 0 // every queued (non-immediate) candidate drops
	// Drive a stream so lookahead produces candidate bursts at one cycle.
	for i := 0; i < 64; i++ {
		req := &mem.Request{
			PAddr: 0x40000000 + mem.Addr(i)*mem.BlockSize, PC: 1,
			Type: mem.Load, PageSize: mem.Page2M, PageSizeKnown: true,
		}
		s.l2.Access(req, 0) // identical timestamps force queueing
	}
	if s.engine.Stats.QueueDropped == 0 {
		t.Error("zero-depth prefetch queue dropped nothing under a burst")
	}

	deep := newSystem(PSA, oracleAll2M)
	deep.engine.PQDepth = 1 << 40
	for i := 0; i < 64; i++ {
		req := &mem.Request{
			PAddr: 0x40000000 + mem.Addr(i)*mem.BlockSize, PC: 1,
			Type: mem.Load, PageSize: mem.Page2M, PageSizeKnown: true,
		}
		deep.l2.Access(req, 0)
	}
	if deep.engine.Stats.QueueDropped != 0 {
		t.Errorf("unbounded queue dropped %d candidates", deep.engine.Stats.QueueDropped)
	}
}

func TestStatsDiscardProbabilityEmpty(t *testing.T) {
	var s Stats
	if s.DiscardProbability() != 0 {
		t.Error("empty stats discard probability not 0")
	}
}

func TestEngineVariantAccessor(t *testing.T) {
	s := newSystem(SDPageSize, oracleAll2M)
	if s.engine.Variant() != SDPageSize {
		t.Errorf("Variant() = %v", s.engine.Variant())
	}
}
