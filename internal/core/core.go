// Package core implements the paper's contribution: the Page-size
// Propagation Module (PPM) that carries the page size of a missed block from
// the L1D's address-translation metadata to the L2 prefetcher via one extra
// MSHR bit, the page-size-aware prefetcher variants built on it (PSA,
// PSA-2MB), and the composite set-dueling prefetcher (PSA-SD) that
// dynamically enables the better of the two, together with the alternative
// selection-logic implementations evaluated in Figure 11.
//
// The Engine sits beside the L2: it observes every L2 access, consults the
// PPM bit (or a page-size oracle for the Magic variants), runs the configured
// prefetcher variant, enforces the page-boundary policy on every candidate,
// and issues the survivors into the L2 (or LLC, per candidate confidence).
// Boundary-discarded candidates that would have been safe — crossings of a
// 4KB boundary while the block resides in a 2MB page — are counted, giving
// the paper's Figure 2 statistic.
package core

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Variant selects the page-size exploitation scheme wrapped around a base
// prefetcher.
type Variant int

// Variants, mirroring the paper's nomenclature.
const (
	// Original is the baseline: no page-size information, prefetching always
	// stops at 4KB physical page boundaries.
	Original Variant = iota
	// PSA exploits PPM: prefetching stops at the residing page's boundary
	// (4KB or 2MB) with no change to the prefetcher's design.
	PSA
	// PSA2MB additionally indexes the prefetcher's page-indexed structures
	// with 2MB pages (Section IV-B1).
	PSA2MB
	// PSASD is the composite: PSA and PSA-2MB compete under set dueling with
	// both training on all accesses (SD-Proposed, the paper's design).
	PSASD
	// PSAMagic is PSA with an oracle page size instead of the PPM bit
	// (Section III-B1's SPP-PSA-Magic). In this simulator the PPM bit always
	// matches the oracle for data accesses, so results coincide with PSA;
	// the variant exists to reproduce Figures 4 and 5 faithfully.
	PSAMagic
	// PSAMagic2MB is PSA2MB with the oracle (Figure 5's SPP-PSA-Magic-2MB).
	PSAMagic2MB
	// SDStandard is PSASD but trains each competitor only when selected, the
	// original Set-Dueling discipline (Figure 11's SD-Standard).
	SDStandard
	// SDPageSize blindly selects PSA for 4KB-resident blocks and PSA-2MB for
	// 2MB-resident blocks (Figure 11's SD-Page-Size).
	SDPageSize
	// ISOStorage is Original with the prefetcher's storage budget doubled,
	// isolating capacity from page-size awareness (Figure 11's ISO bar).
	ISOStorage
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Original:
		return "original"
	case PSA:
		return "PSA"
	case PSA2MB:
		return "PSA-2MB"
	case PSASD:
		return "PSA-SD"
	case PSAMagic:
		return "PSA-Magic"
	case PSAMagic2MB:
		return "PSA-Magic-2MB"
	case SDStandard:
		return "SD-Standard"
	case SDPageSize:
		return "SD-Page-Size"
	case ISOStorage:
		return "ISO-Storage"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// ParseVariant resolves a variant name: the String form of any variant, or
// the CLI aliases psim has always accepted ("psa-sd", "magic", "iso", ...).
// The empty string parses as Original.
func ParseVariant(s string) (Variant, error) {
	switch strings.ToLower(s) {
	case "", "original":
		return Original, nil
	case "psa":
		return PSA, nil
	case "psa-2mb", "psa2mb":
		return PSA2MB, nil
	case "psa-sd", "psasd":
		return PSASD, nil
	case "psa-magic", "magic":
		return PSAMagic, nil
	case "psa-magic-2mb", "magic-2mb":
		return PSAMagic2MB, nil
	case "sd-standard":
		return SDStandard, nil
	case "sd-page-size":
		return SDPageSize, nil
	case "iso", "iso-storage":
		return ISOStorage, nil
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}

// Prefetcher IDs used in the set-dueling annotation bit. The voteFlag marks
// blocks whose trigger access fell in a leader set: only those update Csel
// (exactly as in set dueling for replacement, where only leader-set events
// vote); the annotation is still needed because the prefetched block may land
// in a different set than its trigger (Section IV-B2).
const (
	prefA    uint8 = 1 // the 4KB-indexed competitor (PSA)
	prefB    uint8 = 2 // the 2MB-indexed competitor (PSA-2MB)
	prefMask uint8 = 3
	voteFlag uint8 = 4
)

// Oracle reports the true size of the physical page containing an address;
// the allocator provides it. It backs the Magic variants and the Figure 2
// missed-opportunity accounting.
type Oracle func(mem.Addr) mem.PageSize

// Translator resolves a virtual candidate address to its physical address
// and residing page size. Implementations must be side-effect-free beyond a
// TLB probe and must never walk the page table: ok is false when the
// translation is not TLB-resident, and the engine then drops the candidate.
// The assembled system wires vm.MMU.ResidentTranslate; a nil translator
// restricts virtual candidates to the trigger's own 4KB page, whose frame is
// known from the trigger.
type Translator func(v mem.Addr) (paddr mem.Addr, size mem.PageSize, ok bool)

// Stats aggregates the engine's counters.
type Stats struct {
	Proposed          uint64 // candidates proposed by the prefetcher(s)
	Issued            uint64 // candidates that passed the boundary policy
	DiscardedBoundary uint64 // dropped at the enforced boundary
	// DiscardedSafe counts drops that crossed a 4KB boundary while the block
	// resides in a 2MB page — prefetches that page-size awareness would have
	// saved (the probability of Figure 2 is DiscardedSafe/Proposed).
	DiscardedSafe uint64
	SelectedA     uint64 // follower accesses handled by Pref-PSA
	SelectedB     uint64 // follower accesses handled by Pref-PSA-2MB
	QueueDropped  uint64 // candidates dropped at a full prefetch queue

	// CrossedPage4K counts issued prefetches whose target lies outside the
	// trigger's 4KB page — exactly the prefetches page-size awareness
	// unlocks, and the core signal behind the paper's coverage gains.
	// Virtual-side crossings (translated VA candidates) land here too, so
	// PPM physical crossing and VA crossing share one telemetry axis.
	CrossedPage4K uint64
	// VAIssued counts issued prefetches that originated as virtual-address
	// candidates (translated before issue); DiscardedUntranslated counts
	// virtual candidates dropped because the target page's translation was
	// not TLB-resident — the probe gate that keeps VA prefetching from ever
	// forcing a page walk.
	VAIssued              uint64
	DiscardedUntranslated uint64
	// PPM4K/PPM2M/PPM1G count trigger accesses whose PPM bit carried each
	// page size to the engine (propagations by page size).
	PPM4K, PPM2M, PPM1G uint64
}

// DiscardProbability returns the Figure 2 statistic.
func (s *Stats) DiscardProbability() float64 {
	if s.Proposed == 0 {
		return 0
	}
	return float64(s.DiscardedSafe) / float64(s.Proposed)
}

// CselBits is the width of the set-dueling selection counter (Section IV-B2).
const CselBits = 3

// LeaderSetsPerPrefetcher is the number of L2 sets dedicated to each
// competing prefetcher (Section IV-B2).
const LeaderSetsPerPrefetcher = 32

// Engine drives a page-size-aware prefetching variant at the L2.
type Engine struct {
	variant Variant
	l2      *cache.Cache
	llc     *cache.Cache
	oracle  Oracle
	core    int

	// translator resolves virtual candidates (TLB-probe-gated); nil outside
	// an assembled system.
	translator Translator

	// pA is the 4KB-indexed prefetcher; pB the 2MB-indexed one (nil unless
	// the variant duels or is PSA2MB/Magic2MB, which use only pB).
	pA, pB prefetch.Prefetcher

	csel        int // saturating selector, MSB picks the follower prefetcher
	leaderEvery int // one A-leader and one B-leader per this many sets

	// lastIssue serialises prefetch injection: the prefetch queue drains at
	// one request per cycle, so a lookahead burst trickles into the
	// hierarchy instead of hitting the DRAM banks in one instant. The queue
	// is finite: candidates that would sit more than PQDepth cycles behind
	// the trigger are dropped, as a full hardware prefetch queue would do.
	lastIssue mem.Cycle

	// PQDepth bounds the prefetch-queue backlog in cycles; candidates that
	// would sit further behind their trigger are dropped, as a full hardware
	// prefetch queue would. Set by New to DefaultPQDepth; override before
	// first use for ablation studies.
	PQDepth mem.Cycle

	// pfPool supplies the scratch request for issued prefetches: each
	// candidate's Access completes synchronously before the next candidate is
	// considered, so one entry suffices.
	pfPool mem.RequestPool
	// issueFn is the persistent candidate sink handed to Prefetcher.Operate;
	// the per-call trigger state lives in opCtx/opSize/opID. operate is not
	// reentrant (prefetch requests never fire OnAccess), so one set of fields
	// suffices and the hot path allocates no closure.
	issueFn func(prefetch.Candidate)
	opCtx   prefetch.Context
	opSize  mem.PageSize
	opID    uint8

	Stats Stats
}

// DefaultPQDepth is the default prefetch-queue backlog bound in cycles.
const DefaultPQDepth = 48

// New builds an engine for the given variant over the factory. l2 and llc
// are the caches the engine issues into; oracle may be nil (Figure 2
// accounting and Magic variants then treat every page as 4KB).
func New(factory prefetch.Factory, v Variant, l2, llc *cache.Cache, oracle Oracle, coreID int) *Engine {
	e := &Engine{
		variant: v,
		l2:      l2,
		llc:     llc,
		oracle:  oracle,
		core:    coreID,
		csel:    1<<(CselBits-1) - 1, // start just below the MSB: followers begin on the safer Pref-PSA
		PQDepth: DefaultPQDepth,
	}
	e.issueFn = e.issueCandidate
	switch v {
	case Original, PSA, PSAMagic, ISOStorage:
		e.pA = factory(mem.PageBits4K)
	case PSA2MB, PSAMagic2MB:
		e.pB = factory(mem.PageBits2M)
	case PSASD, SDStandard, SDPageSize:
		e.pA = factory(mem.PageBits4K)
		e.pB = factory(mem.PageBits2M)
	default:
		panic(fmt.Sprintf("core: unknown variant %v", v))
	}
	groups := l2.Sets() / LeaderSetsPerPrefetcher
	if groups < 2 {
		groups = 2 // degenerate small caches: half the sets lead each way
	}
	e.leaderEvery = groups
	return e
}

// Variant returns the engine's configured variant.
func (e *Engine) Variant() Variant { return e.variant }

// SetTranslator installs the virtual-candidate translator. Call before the
// first access; the engine never mutates it afterwards.
func (e *Engine) SetTranslator(tr Translator) { e.translator = tr }

// Csel returns the current selection counter (for tests and diagnostics).
func (e *Engine) Csel() int { return e.csel }

// PrefersB reports whether the dueling selector currently favours the
// 2MB-indexed competitor (the MSB of Csel) — the "PSA-SD winner" telemetry
// series samples this at epoch boundaries.
func (e *Engine) PrefersB() bool { return e.csel>>(CselBits-1) != 0 }

// leaderOf classifies an L2 set: prefA leader, prefB leader, or 0 (follower).
func (e *Engine) leaderOf(set int) uint8 {
	switch set % e.leaderEvery {
	case 0:
		return prefA
	case 1:
		return prefB
	}
	return 0
}

// effectiveSize returns the page size the variant is allowed to assume for
// the access, and whether that knowledge is real (PPM/oracle) or the 4KB
// default.
func (e *Engine) effectiveSize(req *mem.Request) mem.PageSize {
	switch e.variant {
	case Original, ISOStorage:
		return mem.Page4K // no page-size knowledge: hard 4KB boundary
	case PSAMagic, PSAMagic2MB:
		if e.oracle != nil {
			return e.oracle(req.PAddr)
		}
		return mem.Page4K
	default:
		// PPM: the page-size bit travels with the request (propagated from
		// the L1D MSHR on the miss that produced this L2 access).
		if req.PageSizeKnown {
			return req.PageSize
		}
		return mem.Page4K
	}
}

// OnAccess implements cache.Observer for the L2: run the variant's
// prefetcher(s) and issue surviving candidates.
func (e *Engine) OnAccess(info cache.AccessInfo) {
	req := info.Req
	if req.Type != mem.Load && req.Type != mem.Store {
		return // prefetchers train on demand data accesses only
	}
	if req.PageSizeKnown {
		switch req.PageSize {
		case mem.Page2M:
			e.Stats.PPM2M++
		case mem.Page1G:
			e.Stats.PPM1G++
		default:
			e.Stats.PPM4K++
		}
	}
	size := e.effectiveSize(req)
	va := req.VAddr
	if va == 0 {
		// Harnesses without translation leave VAddr unset; virtual-side
		// prefetchers then see the physical stream as an identity mapping.
		va = req.PAddr
	}
	ctx := prefetch.Context{
		Addr:     mem.BlockAlign(req.PAddr),
		VAddr:    mem.BlockAlign(va),
		PC:       req.PC,
		Hit:      info.Hit,
		Type:     req.Type,
		PageSize: size,
		At:       info.At,
	}
	if !info.Hit {
		// Give reject-table learners their missed-opportunity signal.
		notifyDemandMiss(e.pA, ctx.Addr)
		notifyDemandMiss(e.pB, ctx.Addr)
	}

	switch e.variant {
	case Original, PSA, PSAMagic, ISOStorage:
		e.operate(e.pA, prefA, ctx, size)
	case PSA2MB, PSAMagic2MB:
		e.operate(e.pB, prefB, ctx, size)
	case PSASD:
		sel := e.selectFor(info.Set)
		id := sel
		if e.leaderOf(info.Set) != 0 {
			id |= voteFlag // only leader-set-triggered prefetches vote
		}
		if sel == prefA {
			e.operate(e.pA, id, ctx, size)
			e.pB.Train(ctx) // both train on all accesses (SD-Proposed)
		} else {
			e.operate(e.pB, id, ctx, size)
			e.pA.Train(ctx)
		}
	case SDStandard:
		// Original Set-Dueling: only the selected prefetcher trains.
		sel := e.selectFor(info.Set)
		id := sel
		if e.leaderOf(info.Set) != 0 {
			id |= voteFlag
		}
		if sel == prefA {
			e.operate(e.pA, id, ctx, size)
		} else {
			e.operate(e.pB, id, ctx, size)
		}
	case SDPageSize:
		// Blind page-size selection; both keep training. No Csel, no votes.
		if size == mem.Page2M {
			e.operate(e.pB, prefB, ctx, size)
			e.pA.Train(ctx)
		} else {
			e.operate(e.pA, prefA, ctx, size)
			e.pB.Train(ctx)
		}
	}
}

// selectFor returns which competitor handles an access to the given L2 set.
func (e *Engine) selectFor(set int) uint8 {
	if lead := e.leaderOf(set); lead != 0 {
		return lead
	}
	if e.csel>>(CselBits-1) == 0 {
		e.Stats.SelectedA++
		return prefA
	}
	e.Stats.SelectedB++
	return prefB
}

// operate runs one prefetcher and funnels its candidates through the
// boundary policy into the caches, each dispatched the moment it is
// proposed.
func (e *Engine) operate(p prefetch.Prefetcher, id uint8, ctx prefetch.Context, size mem.PageSize) {
	e.opCtx, e.opSize, e.opID = ctx, size, id
	// Candidates must be dispatched the moment they are proposed, never
	// batched to the end of Operate: issuing a prefetch can evict a line
	// whose OnPrefetchUnused feedback synchronously retrains the proposing
	// prefetcher (ppf's perceptron, spp's confidence tables), and the next
	// candidate in the same lookahead burst must be classified against those
	// updated weights. Deferring the drain reorders that feedback loop and
	// changes simulation results (caught by TestFusedPathEquivalence).
	p.Operate(ctx, e.issueFn)
}

// issueCandidate vets one proposed candidate against the boundary policy and
// issues survivors into the caches. It is the body of the candidate sink
// operate hands to the prefetcher; the trigger context rides in opCtx/opSize/
// opID so no closure is allocated per access.
func (e *Engine) issueCandidate(c prefetch.Candidate) {
	trigger := e.opCtx.Addr
	size := e.opSize
	e.Stats.Proposed++
	paddr := c.Addr
	psize := size
	var vaddr mem.Addr
	if c.Virtual {
		// Virtual-side candidate: the boundary policy and translation run in
		// virtual address space. Variants without page-size machinery stop at
		// the trigger's 4KB virtual page; every other variant ranges over the
		// 2MB generation region, gated not by the PPM bit but by the
		// candidate page's own translation being TLB-resident — the VA-side
		// answer to the same 4KB boundary problem.
		vtrig := e.opCtx.VAddr
		crossesVA := !mem.SamePage(vtrig, c.Addr, mem.Page4K)
		hardVA := e.variant == Original || e.variant == ISOStorage
		if (crossesVA && hardVA) || !prefetch.InGenLimit(vtrig, c.Addr) {
			e.Stats.DiscardedBoundary++
			return
		}
		if !crossesVA {
			// Same 4KB virtual page as the trigger: virtual and physical
			// addresses share the page offset, so the trigger's own frame
			// resolves the candidate without a probe.
			paddr = mem.PageBase(trigger, mem.Page4K) | (c.Addr & (mem.PageSize4K - 1))
		} else {
			var ok bool
			if e.translator != nil {
				paddr, psize, ok = e.translator(c.Addr)
			}
			if !ok {
				e.Stats.DiscardedUntranslated++
				return
			}
			paddr = mem.BlockAlign(paddr)
		}
		vaddr = c.Addr
	} else if !mem.SamePage(trigger, c.Addr, size) {
		// The candidate crosses the enforced boundary: discard. If the
		// block actually resides in a 2MB page and the candidate stays
		// inside it, page-size awareness would have saved this prefetch.
		e.Stats.DiscardedBoundary++
		if e.oracle != nil && size == mem.Page4K {
			if real := e.oracle(trigger); real != mem.Page4K && mem.SamePage(trigger, c.Addr, real) {
				e.Stats.DiscardedSafe++
			}
		}
		return
	}
	// Candidates already present (or in flight) at the target level are
	// dropped before consuming a prefetch-queue slot.
	if e.l2.Contains(paddr) || (!c.FillL2 && e.llc.Contains(paddr)) {
		return
	}
	e.Stats.Issued++
	if c.Virtual {
		e.Stats.VAIssued++
	}
	crossed := !mem.SamePage(trigger, paddr, mem.Page4K)
	if crossed {
		e.Stats.CrossedPage4K++
	}
	at := e.opCtx.At
	if e.lastIssue >= at {
		at = e.lastIssue + 1
	}
	if at-e.opCtx.At > e.PQDepth {
		e.Stats.QueueDropped++
		return
	}
	e.lastIssue = at
	if e.l2.TryDropPrefetch(at) {
		// The L2's MSHR drop watermark proves this prefetch (absent per the
		// Contains probe above) cannot allocate outside the demand reserve:
		// its only effect is the drop counter, already recorded, so skip
		// building the request and walking the access path. During a
		// lookahead burst under MSHR saturation this is most candidates.
		return
	}
	req := e.pfPool.GetDirty()
	*req = mem.Request{
		PAddr:         paddr,
		VAddr:         vaddr,
		PC:            e.opCtx.PC,
		Type:          mem.Prefetch,
		Core:          e.core,
		PageSize:      psize,
		PageSizeKnown: true,
		FillL2:        c.FillL2,
		PrefID:        e.opID,
		CrossedPage:   crossed,
	}
	if c.FillL2 {
		e.l2.Access(req, at)
	} else {
		e.l2.AccessNoFill(req, at)
	}
}

// OnPrefetchUseful implements cache.Observer: update Csel from the
// annotation bit (leader-set-triggered prefetches only) and forward
// usefulness feedback to the issuer.
func (e *Engine) OnPrefetchUseful(block mem.Addr, prefID uint8, _ int) {
	votes := prefID&voteFlag != 0
	switch prefID & prefMask {
	case prefA:
		if votes && e.csel > 0 {
			e.csel--
		}
		notifyUseful(e.pA, block)
	case prefB:
		if votes && e.csel < 1<<CselBits-1 {
			e.csel++
		}
		notifyUseful(e.pB, block)
	}
}

// OnPrefetchUnused implements cache.Observer.
func (e *Engine) OnPrefetchUnused(block mem.Addr, prefID uint8, _ int) {
	switch prefID & prefMask {
	case prefA:
		notifyUnused(e.pA, block)
	case prefB:
		notifyUnused(e.pB, block)
	}
}

func notifyUseful(p prefetch.Prefetcher, block mem.Addr) {
	if fr, ok := p.(prefetch.FeedbackReceiver); ok {
		fr.PrefetchUseful(block)
	}
}

func notifyUnused(p prefetch.Prefetcher, block mem.Addr) {
	if fr, ok := p.(prefetch.FeedbackReceiver); ok {
		fr.PrefetchUnused(block)
	}
}

func notifyDemandMiss(p prefetch.Prefetcher, block mem.Addr) {
	if p == nil {
		return
	}
	if fr, ok := p.(prefetch.FeedbackReceiver); ok {
		fr.DemandMiss(block)
	}
}

// LLCFeedback adapts the engine as an LLC observer that forwards only
// prefetch-outcome feedback (the prefetcher lives at the L2; LLC demand
// accesses must not retrain it). At a shared LLC each event is routed to the
// issuing core's engine.
type LLCFeedback struct {
	cache.NopObserver
	// Engines maps core ID to that core's L2 prefetch engine.
	Engines []*Engine
}

// WantsOnAccess implements cache.AccessSink: the embedded no-op OnAccess
// consumes nothing, so the LLC can skip per-access dispatch entirely (and
// arm its line-hit memo on the fused path).
func (f *LLCFeedback) WantsOnAccess() bool { return false }

// OnPrefetchUseful implements cache.Observer. LLC outcomes train the
// prefetchers (accuracy throttles, perceptron weights) but do not vote in
// Csel: the paper's annotation bit lives on L2 blocks only.
func (f *LLCFeedback) OnPrefetchUseful(block mem.Addr, prefID uint8, core int) {
	if e := f.engine(core); e != nil {
		switch prefID & prefMask {
		case prefA:
			notifyUseful(e.pA, block)
		case prefB:
			notifyUseful(e.pB, block)
		}
	}
}

// OnPrefetchUnused implements cache.Observer.
func (f *LLCFeedback) OnPrefetchUnused(block mem.Addr, prefID uint8, core int) {
	if e := f.engine(core); e != nil {
		switch prefID & prefMask {
		case prefA:
			notifyUnused(e.pA, block)
		case prefB:
			notifyUnused(e.pB, block)
		}
	}
}

func (f *LLCFeedback) engine(core int) *Engine {
	if core >= 0 && core < len(f.Engines) {
		return f.Engines[core]
	}
	return nil
}
