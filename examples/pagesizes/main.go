// Page-size walkthrough: the virtual-memory substrate end to end. Shows how
// the OS-side page-size decision (4KB vs THP 2MB vs explicit 1GB) changes TLB
// reach, page-walk depth, and — through PPM — the prefetcher's legal
// speculation range, using the library's components directly.
//
//	go run ./examples/pagesizes
package main

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/vm"
)

// giga requests 1GB backing for every region (the hugetlbfs analogue).
type giga struct{ vm.FractionTHP }

func (giga) Use1GB(mem.Addr) bool { return true }

func main() {
	fmt.Println("Sweeping 64MB of virtual memory under three page-size policies:")
	fmt.Printf("%-22s %10s %10s %12s %14s\n",
		"policy", "TLB misses", "walks", "walk refs", "mapped pages")

	type policyCase struct {
		name   string
		policy vm.THPPolicy
	}
	for _, pc := range []policyCase{
		{"4KB only", vm.FractionTHP{Frac: 0}},
		{"THP 2MB", vm.FractionTHP{Frac: 1}},
		{"hugetlbfs 1GB", giga{}},
	} {
		alloc := vm.NewAllocator(8<<30, 1)
		space := vm.NewAddressSpace(alloc, pc.policy)
		walkRefs := 0
		port := mem.PortFunc(func(req *mem.Request, at mem.Cycle) mem.Cycle {
			walkRefs++
			return at + 100
		})
		mmu := vm.NewMMU(space, vm.DefaultMMUConfig(), 0, port)

		base := mem.Addr(0x40000000)
		at := mem.Cycle(0)
		for off := mem.Addr(0); off < 64<<20; off += 4096 {
			_, done := mmu.Translate(base+off, at)
			at = done + 1
		}
		fmt.Printf("%-22s %10d %10d %12d %14d\n",
			pc.name, mmu.L1().Misses+mmu.L2().Misses, mmu.Walks, walkRefs,
			space.PageTable().Pages())
	}

	fmt.Println("\nEach step up in page size multiplies TLB reach by 512 and removes one")
	fmt.Println("radix level from every walk (4 refs for 4KB, 3 for 2MB, 2 for 1GB).")
	fmt.Println("PPM carries exactly this size — ⌈log₂ 3⌉ = 2 bits per L1D MSHR entry —")
	fmt.Println("to the L2 prefetcher, which may then speculate across 4KB boundaries")
	fmt.Println("anywhere inside the residing page.")
}
