// Graph analytics walkthrough: run the GAP road-graph workloads under the
// original and page-size-aware SPP, reproducing the paper's observation that
// graph workloads with fine-grain (4KB) patterns gain little from 2MB-grain
// indexing while still profiting from safe boundary crossing — and that
// tc.road is the canonical case where PSA-2MB backfires.
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	graphs := trace.BySuite(trace.SuiteGAP)
	cfg := sim.DefaultConfig()
	opt := sim.RunOpt{Warmup: 200_000, Instructions: 600_000, Seed: 7, Samples: 4}

	variants := []core.Variant{core.Original, core.PSA, core.PSA2MB, core.PSASD}

	type key struct {
		w string
		v core.Variant
	}
	results := make(map[key]sim.Result)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for _, w := range graphs {
		for _, v := range variants {
			wg.Add(1)
			go func(w trace.Workload, v core.Variant) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				res, err := sim.Run(cfg, sim.PrefSpec{Base: "spp", Variant: v}, w, opt)
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				results[key{w.Name, v}] = res
				mu.Unlock()
			}(w, v)
		}
	}
	wg.Wait()

	fmt.Println("GAP road graphs under SPP — speedup % over SPP original")
	fmt.Printf("%-12s %8s %8s %8s %10s\n", "graph", "PSA", "PSA-2MB", "PSA-SD", "2MB-pages")
	for _, w := range graphs {
		base := results[key{w.Name, core.Original}].IPC
		pct := func(v core.Variant) float64 {
			return (results[key{w.Name, v}].IPC/base - 1) * 100
		}
		fmt.Printf("%-12s %8.1f %8.1f %8.1f %9.0f%%\n",
			w.Name, pct(core.PSA), pct(core.PSA2MB), pct(core.PSASD),
			results[key{w.Name, core.Original}].Frac2MFinal*100)
	}
	fmt.Println("\ntc.road's tight 4KB-grain reuse makes 2MB-grain indexing generalise")
	fmt.Println("unrelated patterns into shared table entries; the set-dueling composite")
	fmt.Println("detects this and keeps the 4KB-indexed competitor enabled.")
}
