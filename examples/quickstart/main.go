// Quickstart: simulate one workload under the four page-size exploitation
// schemes the paper proposes, and print the speedup story of Figure 8 for a
// single benchmark.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// milc is the paper's showcase for 2MB-grain pattern tracking: its long
	// strides cross a 4KB page on every access.
	workload, err := trace.ByName("milc")
	if err != nil {
		log.Fatal(err)
	}

	cfg := sim.DefaultConfig() // Table I
	opt := sim.RunOpt{Warmup: 200_000, Instructions: 800_000, Seed: 1, Samples: 8}

	variants := []struct {
		label string
		spec  sim.PrefSpec
	}{
		{"no prefetching", sim.PrefSpec{Base: "none"}},
		{"SPP original (4KB boundary)", sim.PrefSpec{Base: "spp", Variant: core.Original}},
		{"SPP-PSA (PPM page-size bit)", sim.PrefSpec{Base: "spp", Variant: core.PSA}},
		{"SPP-PSA-2MB (2MB-indexed)", sim.PrefSpec{Base: "spp", Variant: core.PSA2MB}},
		{"SPP-PSA-SD (set dueling)", sim.PrefSpec{Base: "spp", Variant: core.PSASD}},
	}

	var baseline float64
	fmt.Printf("workload: %s (%.0f%% of memory on 2MB pages)\n\n", workload.Name, 98.0)
	for i, v := range variants {
		res, err := sim.Run(cfg, v.spec, workload, opt)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseline = res.IPC
		}
		fmt.Printf("%-30s IPC %.3f  (%+6.1f%% vs no-prefetch)  L2 coverage %4.1f%%  discarded-at-boundary %d\n",
			v.label, res.IPC, (res.IPC/baseline-1)*100,
			res.L2.Coverage()*100, res.Engine.DiscardedBoundary)
	}

	fmt.Println("\nThe page-size-aware variants may cross 4KB physical page boundaries when")
	fmt.Println("the block resides in a 2MB page; the set-dueling composite picks the")
	fmt.Println("better page-size granularity per execution phase.")
}
