// Custom prefetcher walkthrough: the paper's PPM is transparent to which
// prefetcher it wraps ("compatible with any cache prefetcher without implying
// design modifications"). This example defines a brand-new stride prefetcher
// against the prefetch.Prefetcher interface, wraps it in the PPM engine, and
// shows it crossing 4KB boundaries on 2MB pages with zero changes to its own
// code — exactly the property Section IV-A claims.
//
//	go run ./examples/customprefetcher
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/vm"
)

// stridePrefetcher is a minimal PC-agnostic stride prefetcher: it tracks the
// last block and delta per region and prefetches degree blocks ahead. Note it
// contains no page-size logic whatsoever.
type stridePrefetcher struct {
	regionBits uint
	last       map[mem.Addr]int // region → last block offset
	delta      map[mem.Addr]int
	degree     int
}

func newStride(regionBits uint) *stridePrefetcher {
	return &stridePrefetcher{
		regionBits: regionBits,
		last:       map[mem.Addr]int{},
		delta:      map[mem.Addr]int{},
		degree:     4,
	}
}

func (p *stridePrefetcher) Name() string { return "example-stride" }

func (p *stridePrefetcher) Train(ctx prefetch.Context) {
	region := ctx.Addr >> p.regionBits
	off := int((ctx.Addr >> mem.BlockBits) & (1<<(p.regionBits-mem.BlockBits) - 1))
	if last, ok := p.last[region]; ok {
		p.delta[region] = off - last
	}
	p.last[region] = off
}

func (p *stridePrefetcher) Operate(ctx prefetch.Context, issue func(prefetch.Candidate)) {
	p.Train(ctx)
	region := ctx.Addr >> p.regionBits
	d := p.delta[region]
	if d == 0 {
		return
	}
	for i := 1; i <= p.degree; i++ {
		cand := ctx.Addr + mem.Addr(int64(i*d))*mem.BlockSize
		if !prefetch.InGenLimit(ctx.Addr, cand) {
			return
		}
		issue(prefetch.Candidate{Addr: cand, FillL2: true})
	}
}

func main() {
	// Assemble a minimal hierarchy by hand: DRAM ← LLC ← L2, plus a 2MB-page
	// address space whose allocator doubles as the page-size oracle.
	alloc := vm.NewAllocator(1<<30, 42)
	space := vm.NewAddressSpace(alloc, vm.FractionTHP{Frac: 1}) // everything on 2MB pages

	factory := func(regionBits uint) prefetch.Prefetcher { return newStride(regionBits) }

	run := func(variant core.Variant) (issued, discarded uint64, crossed int) {
		dramDev := dram.New(dram.DefaultConfig())
		llc := cache.New(cache.Config{Name: "LLC", Sets: 2048, Ways: 16, Latency: 20, MSHREntries: 64}, dramDev)
		l2f := cache.New(cache.Config{Name: "L2", Sets: 1024, Ways: 8, Latency: 10, MSHREntries: 32}, llc)
		engine := core.New(factory, variant, l2f, llc, alloc.PageSizeOf, 0)
		l2f.SetObserver(engine)

		// Drive a +3-block stride over the FIRST 4KB page only: any block in
		// the second page can only have arrived via a boundary-crossing
		// prefetch.
		base := space.Translate(0x40000000).PAddr
		for i := 0; i < 21; i++ {
			req := &mem.Request{
				PAddr:         base + mem.Addr(i*3)*mem.BlockSize,
				Type:          mem.Load,
				PageSize:      mem.Page2M,
				PageSizeKnown: true, // the PPM bit from the L1D MSHR
			}
			l2f.Access(req, mem.Cycle(i*40))
		}
		// Count prefetched blocks beyond the first 4KB page.
		for b := mem.Addr(mem.PageSize4K); b < 2*mem.PageSize4K; b += mem.BlockSize {
			if l2f.Contains(base + b) {
				crossed++
			}
		}
		return engine.Stats.Issued, engine.Stats.DiscardedBoundary, crossed
	}

	if _, err := fmt.Println("A custom stride prefetcher wrapped by PPM — no page-size logic inside it:"); err != nil {
		log.Fatal(err)
	}
	for _, v := range []core.Variant{core.Original, core.PSA} {
		issued, discarded, crossed := run(v)
		fmt.Printf("  %-9s issued %3d prefetches, %2d discarded at boundary, %2d blocks prefetched into the next 4KB page\n",
			v, issued, discarded, crossed)
	}
	fmt.Println("\nThe PSA wrapper let the same unmodified prefetcher speculate past the")
	fmt.Println("4KB boundary because the PPM bit says the block resides in a 2MB page.")
}
